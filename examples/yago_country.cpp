// Place-country classification on the YAGO4-style KG (the paper's second
// benchmark, Figure 14), exercising budget-driven method selection: the
// same TrainGML request is issued with three different budgets and the
// platform picks a different method each time.
#include <cstdio>
#include <string>

#include "core/kgnet.h"
#include "core/method_selector.h"
#include "workload/yago_gen.h"

namespace {
constexpr char kPrefixes[] =
    "PREFIX yago: <http://yago-knowledge.org/resource/>\n"
    "PREFIX kgnet: <https://www.kgnet.com/>\n";
}

int main() {
  using namespace kgnet;

  core::KgNet kg;
  workload::YagoOptions opts;
  opts.num_places = 600;
  opts.num_countries = 6;
  opts.num_people = 300;
  opts.num_orgs = 100;
  Status gen = workload::GenerateYago(opts, &kg.store());
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.ToString().c_str());
    return 1;
  }
  std::printf("YAGO4-mini: %zu triples, task: place -> country.\n\n",
              kg.store().size());

  struct BudgetCase {
    const char* label;
    const char* budget_json;
  };
  const BudgetCase cases[] = {
      {"unconstrained (ModelScore)",
       "TaskBudget: {Priority: ModelScore}"},
      {"tight memory (2MB)",
       "TaskBudget: {MaxMemory: 2MB, Priority: ModelScore}"},
      {"time priority",
       "TaskBudget: {Priority: Time}"},
  };

  std::printf("%-30s %-14s %10s %10s\n", "budget", "method", "accuracy",
              "time (s)");
  for (const BudgetCase& c : cases) {
    auto r = kg.Execute(std::string(kPrefixes) +
                        "INSERT INTO <kgnet> { ?s ?p ?o } WHERE { "
                        "SELECT * FROM kgnet.TrainGML(\n"
                        "{Name: 'yago-place-country',\n"
                        " GML-Task: {TaskType: kgnet:NodeClassifier,\n"
                        "   TargetNode: yago:Place,\n"
                        "   NodeLabel: yago:inCountry},\n"
                        " Hyperparameters: {Epochs: 40, Patience: 15, "
                        "HiddenDim: 16},\n " +
                        std::string(c.budget_json) + "})}");
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    double acc = 0;
    r->rows[0][1].AsDouble(&acc);
    const std::string& uri = r->rows[0][0].lexical;
    auto info = kg.service().kgmeta().Get(uri);
    std::printf("%-30s %-14s %9.1f%% %10.2f\n", c.label,
                r->rows[0][2].lexical.c_str(), acc * 100.0,
                info.ok() ? info->train_seconds : 0.0);
  }

  // Query the best model, Figure-2 style, over YAGO.
  auto preds = kg.Execute(std::string(kPrefixes) +
                          "SELECT ?place ?country WHERE {\n"
                          "  ?place a yago:Place .\n"
                          "  ?place ?clf ?country .\n"
                          "  ?clf a kgnet:NodeClassifier .\n"
                          "  ?clf kgnet:TargetNode yago:Place .\n"
                          "} LIMIT 5");
  if (!preds.ok()) {
    std::fprintf(stderr, "%s\n", preds.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSample predictions:\n%s", preds->ToTable().c_str());
  return 0;
}
