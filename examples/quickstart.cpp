// Quickstart: load a KG, ask plain SPARQL, train a GML model through a
// SPARQL-ML INSERT (TrainGML), and query it with a GML-enabled SELECT.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/kgnet.h"
#include "workload/dblp_gen.h"

namespace {
constexpr char kPrefixes[] =
    "PREFIX dblp: <https://dblp.org/rdf/>\n"
    "PREFIX kgnet: <https://www.kgnet.com/>\n";
}

int main() {
  using namespace kgnet;

  // ---------------------------------------------------------------------
  // 1. Create the platform and fill the data KG. Here we use the bundled
  //    DBLP-style generator; LoadNTriples() accepts real data too.
  // ---------------------------------------------------------------------
  core::KgNet kg;
  workload::DblpOptions opts;
  opts.num_papers = 300;
  opts.num_authors = 150;
  opts.num_venues = 5;
  opts.num_affiliations = 12;
  Status gen = workload::GenerateDblp(opts, &kg.store());
  if (!gen.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", gen.ToString().c_str());
    return 1;
  }
  std::printf("Loaded KG with %zu triples.\n\n", kg.store().size());

  // ---------------------------------------------------------------------
  // 2. Plain SPARQL works out of the box.
  // ---------------------------------------------------------------------
  auto titles = kg.Execute(std::string(kPrefixes) +
                           "SELECT ?title WHERE { "
                           "?p a dblp:Publication . ?p dblp:title ?title . } "
                           "LIMIT 3");
  if (!titles.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 titles.status().ToString().c_str());
    return 1;
  }
  std::printf("Three paper titles via plain SPARQL:\n%s\n",
              titles->ToTable().c_str());

  // ---------------------------------------------------------------------
  // 3. Train a paper->venue node classifier with a SPARQL-ML INSERT
  //    (paper Figure 8). KGNet meta-samples a task-specific subgraph,
  //    picks a GML method within the budget, trains, and records the
  //    model in KGMeta.
  // ---------------------------------------------------------------------
  auto trained = kg.Execute(std::string(kPrefixes) + R"(
INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM kgnet.TrainGML(
  {Name: 'DBLP_Paper-Venue',
   GML-Task: {TaskType: kgnet:NodeClassifier,
              TargetNode: dblp:Publication,
              NodeLabel: dblp:publishedIn},
   Hyperparameters: {Epochs: 60, Patience: 25, HiddenDim: 16},
   TaskBudget: {MaxMemory: 8GB, MaxTime: 2m, Priority: ModelScore}})})");
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  std::printf("Trained model:\n%s\n", trained->ToTable().c_str());

  // ---------------------------------------------------------------------
  // 4. Query with the trained model: a SPARQL-ML SELECT (paper Figure 2).
  //    ?NodeClassifier is a user-defined predicate; the optimizer picks
  //    the model from KGMeta, rewrites the query and serves predictions.
  // ---------------------------------------------------------------------
  core::ExecutionStats stats;
  auto venues = kg.Execute(std::string(kPrefixes) +
                               "SELECT ?title ?venue WHERE {\n"
                               "  ?paper a dblp:Publication .\n"
                               "  ?paper dblp:title ?title .\n"
                               "  ?paper ?NodeClassifier ?venue .\n"
                               "  ?NodeClassifier a kgnet:NodeClassifier .\n"
                               "  ?NodeClassifier kgnet:TargetNode "
                               "dblp:Publication .\n"
                               "  ?NodeClassifier kgnet:NodeLabel "
                               "dblp:publishedIn .\n"
                               "} LIMIT 5",
                           &stats);
  if (!venues.ok()) {
    std::fprintf(stderr, "SPARQL-ML query failed: %s\n",
                 venues.status().ToString().c_str());
    return 1;
  }
  std::printf("Predicted venues (plan=%s, HTTP calls=%llu):\n%s\n",
              stats.plan == core::RewritePlan::kDictionary ? "dictionary"
                                                           : "per-instance",
              static_cast<unsigned long long>(stats.http_calls),
              venues->ToTable().c_str());
  return 0;
}
