// Venue classification: the paper's headline experiment in miniature.
//
// Trains the same GNN method twice on the DBLP-style KG — once on the full
// graph, once on the meta-sampled task-specific subgraph KG' (d1h1) — and
// prints accuracy, training time and training memory side by side, the
// comparison behind Figure 13.
#include <cstdio>
#include <string>

#include "core/kgnet.h"
#include "workload/dblp_gen.h"

int main() {
  using namespace kgnet;
  using workload::DblpSchema;

  core::KgNet kg;
  workload::DblpOptions opts;
  opts.num_papers = 1200;
  opts.num_authors = 600;
  opts.num_venues = 10;
  opts.num_affiliations = 30;
  opts.periphery_scale = 4.0;
  opts.noise = 0.05;
  opts.social_edges_per_author = 4;
  opts.past_affiliations_per_author = 3;
  // Low affiliation-community bias: the NC experiment's KG keeps its
  // beyond-1-hop structure task-irrelevant (the paper's premise).
  opts.affiliation_community_bias = 0.1;
  Status gen = workload::GenerateDblp(opts, &kg.store());
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.ToString().c_str());
    return 1;
  }
  std::printf("DBLP-mini: %zu triples, 10 venues, 1200 labeled papers.\n\n",
              kg.store().size());

  std::printf("%-22s %10s %10s %12s %8s\n", "pipeline", "accuracy",
              "time (s)", "memory (MB)", "epochs");
  for (bool use_kgprime : {false, true}) {
    core::TrainTaskSpec spec;
    spec.task = gml::TaskType::kNodeClassification;
    spec.target_type_iri = DblpSchema::Publication();
    spec.label_predicate_iri = DblpSchema::PublishedIn();
    spec.forced_method = gml::GmlMethod::kGraphSaint;
    spec.use_meta_sampling = use_kgprime;
    spec.config.epochs = 200;
    spec.config.patience = 0;
    spec.config.hidden_dim = 16;
    spec.config.embed_dim = 16;
    // The paper's task budget: both pipelines get the same wall-clock
    // allowance; the smaller KG' completes far more epochs within it.
    spec.budget.max_seconds = 3.0;
    spec.model_name = use_kgprime ? "venue-kgprime" : "venue-full";

    auto outcome = kg.TrainTask(spec);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %9.1f%% %10.2f %12.1f %8zu\n",
                use_kgprime ? "KGNet (KG', d1h1)" : "full KG",
                outcome->report.metric * 100.0,
                outcome->report.train_seconds,
                outcome->report.peak_memory_bytes / 1e6,
                outcome->report.epochs_run);
    if (use_kgprime) {
      std::printf("\nKG' kept %zu of %zu triples (%.0f%% reduction).\n",
                  outcome->sample_stats.extracted_triples,
                  outcome->sample_stats.original_triples,
                  outcome->sample_stats.reduction_ratio() * 100.0);
    }
  }
  return 0;
}
