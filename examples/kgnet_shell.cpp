#include <algorithm>
// kgnet_shell: an interactive SPARQL / SPARQL-ML shell over a KGNet
// instance — the closest thing to the paper's "data scientist at a SPARQL
// endpoint" workflow.
//
// Usage:
//   kgnet_shell                 # starts with the DBLP-mini demo KG
//   kgnet_shell --yago          # starts with the YAGO4-mini demo KG
//   kgnet_shell --load FILE.nt  # loads an N-Triples file
//
// Commands (everything else is executed as a query):
//   .help                this text
//   .stats               KG statistics (Table I style)
//   .models              trained models registered in KGMeta
//   .explain QUERY       show the optimizer's rewrite without executing
//   .plan QUERY          show the streaming executor's physical plan
//   .quit                exit
//
// Multi-line queries: end the query with a line containing only ";".
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/kgnet.h"
#include "rdf/graph_stats.h"
#include "rdf/ntriples.h"
#include "serving/client.h"
#include "workload/dblp_gen.h"
#include "workload/yago_gen.h"

namespace {

void PrintHelp() {
  std::printf(
      "Commands:\n"
      "  .help            this text\n"
      "  .stats           KG statistics\n"
      "  .models          trained models in KGMeta\n"
      "  .explain QUERY   show the SPARQL-ML rewrite without executing\n"
      "  .plan QUERY      show the streaming executor's physical plan\n"
      "  .connect PORT    route queries to a kgnet_serve on 127.0.0.1\n"
      "  .health          remote server health (breaker/queue/epoch)\n"
      "  .disconnect      back to the in-process KG\n"
      "  .quit            exit\n"
      "Anything else is executed as SPARQL / SPARQL-ML. End multi-line\n"
      "queries with a line containing only ';'.\n\n"
      "Try:\n"
      "  PREFIX dblp: <https://dblp.org/rdf/>\n"
      "  PREFIX kgnet: <https://www.kgnet.com/>\n"
      "  INSERT INTO <kgnet> { ?s ?p ?o } WHERE { SELECT * FROM\n"
      "  kgnet.TrainGML({Name: 'venues', GML-Task: {TaskType:\n"
      "  kgnet:NodeClassifier, TargetNode: dblp:Publication, NodeLabel:\n"
      "  dblp:publishedIn}, Hyperparameters: {Epochs: 60}})}\n"
      "  ;\n");
}

void PrintStats(const kgnet::rdf::TripleStore& store) {
  kgnet::rdf::GraphStats stats = kgnet::rdf::ComputeGraphStats(store);
  std::printf("%s", kgnet::rdf::FormatStatsTable("(loaded)", stats).c_str());
  // Versioned-storage introspection: generation runs, delta layer, and
  // compaction/GC counters (see docs/STORAGE.md).
  const kgnet::rdf::TripleStore::Stats st = store.GetStats();
  std::printf("\nstorage (epoch %llu, generation sealed at %llu)\n",
              static_cast<unsigned long long>(st.epoch),
              static_cast<unsigned long long>(st.generation_epoch));
  for (int i = 0; i < kgnet::rdf::kNumIndexOrders; ++i) {
    const auto order = static_cast<kgnet::rdf::IndexOrder>(i);
    if (!store.has_index(order)) continue;
    std::printf("  run %-3s  %10zu bytes\n", kgnet::rdf::IndexOrderName(order),
                st.run_bytes[static_cast<size_t>(i)]);
  }
  std::printf("  runs total       %10zu bytes (%zu triples)\n",
              st.total_run_bytes, st.generation_triples);
  std::printf("  delta            %10zu ops (%zu inserts, %zu tombstones)\n",
              st.delta_ops, st.delta_inserts, st.delta_tombstones);
  std::printf("  generations live %10lld   compactions %llu\n",
              static_cast<long long>(st.live_generations),
              static_cast<unsigned long long>(st.compactions));
}

void PrintModels(kgnet::core::KgNet& kg) {
  auto uris = kg.service().kgmeta().ListModelUris();
  if (uris.empty()) {
    std::printf("no trained models; use a TrainGML INSERT first\n");
    return;
  }
  for (const std::string& uri : uris) {
    auto info = kg.service().kgmeta().Get(uri);
    if (!info.ok()) continue;
    std::printf("%s\n  task=%s method=%s metric=%.3f sampler=%s "
                "inference=%.1fus cardinality=%zu\n",
                uri.c_str(), kgnet::gml::TaskTypeName(info->task),
                info->method.c_str(), info->accuracy,
                info->sampler_label.c_str(), info->inference_us,
                info->cardinality);
  }
}

void RunQuery(kgnet::core::KgNet& kg, const std::string& text) {
  kgnet::core::ExecutionStats stats;
  auto result = kg.Execute(text, &stats);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (!result->columns.empty()) {
    std::printf("%s", result->ToTable().c_str());
    std::printf("(%zu rows", result->NumRows());
    if (stats.http_calls > 0)
      std::printf(", %llu inference calls, plan=%s",
                  static_cast<unsigned long long>(stats.http_calls),
                  stats.plan == kgnet::core::RewritePlan::kDictionary
                      ? "dictionary"
                      : "per-instance");
    std::printf(")\n");
  } else if (result->num_inserted > 0 || result->num_deleted > 0) {
    std::printf("ok: +%zu / -%zu triples\n", result->num_inserted,
                result->num_deleted);
  } else {
    std::printf("%s\n", result->ask_result ? "yes" : "ok");
  }
}

void RunRemoteQuery(kgnet::serving::KgClient& client,
                    const std::string& text) {
  auto resp = client.Query(text);
  if (!resp.ok()) {
    std::printf("error: %s\n", resp.status().ToString().c_str());
    return;
  }
  const kgnet::sparql::QueryResult& result = resp->result;
  if (!result.columns.empty()) {
    std::printf("%s", result.ToTable().c_str());
    std::printf("(%zu rows", result.NumRows());
    if (resp->has_snapshot)
      std::printf(", snapshot epoch %llu",
                  static_cast<unsigned long long>(resp->epoch));
    std::printf(")\n");
  } else if (result.num_inserted > 0 || result.num_deleted > 0) {
    std::printf("ok: +%zu / -%zu triples\n", result.num_inserted,
                result.num_deleted);
  } else {
    std::printf("%s\n", result.ask_result ? "yes" : "ok");
  }
}

void RunPlan(kgnet::core::KgNet& kg, const std::string& text) {
  auto plan = kg.service().engine().ExplainString(text);
  if (!plan.ok()) {
    std::printf("error: %s\n", plan.status().ToString().c_str());
    return;
  }
  std::printf("%s", plan->c_str());
}

void RunExplain(kgnet::core::KgNet& kg, const std::string& text) {
  auto ex = kg.service().Explain(text);
  if (!ex.ok()) {
    std::printf("error: %s\n", ex.status().ToString().c_str());
    return;
  }
  if (!ex->is_sparql_ml) {
    std::printf("plain SPARQL (no user-defined predicates)\n");
  } else {
    for (const auto& uri : ex->model_uris)
      std::printf("model: %s\n", uri.c_str());
    std::printf("plan: %s\n",
                ex->plan == kgnet::core::RewritePlan::kDictionary
                    ? "dictionary (Fig. 12)"
                    : "per-instance (Fig. 11)");
  }
  std::printf("rewritten query:\n%s\n", ex->rewritten_sparql.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  kgnet::core::KgNet kg;

  bool loaded = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--yago") == 0) {
      kgnet::workload::YagoOptions opts;
      if (!kgnet::workload::GenerateYago(opts, &kg.store()).ok()) return 1;
      loaded = true;
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      std::ifstream in(argv[++i], std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      auto n = kg.LoadNTriples(buf.str());
      if (!n.ok()) {
        std::fprintf(stderr, "%s\n", n.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded %zu triples from %s\n", *n, argv[i]);
      loaded = true;
    }
  }
  if (!loaded) {
    kgnet::workload::DblpOptions opts;
    opts.num_papers = 500;
    opts.num_authors = 250;
    opts.num_venues = 5;
    opts.num_affiliations = 15;
    if (!kgnet::workload::GenerateDblp(opts, &kg.store()).ok()) return 1;
    std::printf("demo DBLP-mini KG loaded (%zu triples); .help for help\n",
                kg.store().size());
  }

  kgnet::serving::KgClient remote;

  std::string buffer;
  std::string line;
  std::printf("kgnet> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (buffer.empty() && !line.empty() && line[0] == '.') {
      // Dot-command.
      if (line == ".quit" || line == ".exit") break;
      if (line == ".help") {
        PrintHelp();
      } else if (line == ".stats") {
        PrintStats(kg.store());
      } else if (line == ".models") {
        PrintModels(kg);
      } else if (line.rfind(".connect", 0) == 0) {
        const int port = line.size() > 8 ? std::atoi(line.c_str() + 9) : 0;
        if (port <= 0 || port > 65535) {
          std::printf("usage: .connect PORT (a kgnet_serve port)\n");
        } else {
          remote.Close();
          auto st = remote.Connect("127.0.0.1", port);
          if (st.ok())
            std::printf("connected to 127.0.0.1:%d; queries now run "
                        "remotely (.disconnect to return)\n", port);
          else
            std::printf("error: %s\n", st.ToString().c_str());
        }
      } else if (line == ".disconnect") {
        if (remote.connected()) {
          remote.Close();
          std::printf("disconnected; queries run in-process again\n");
        } else {
          std::printf("not connected\n");
        }
      } else if (line == ".health") {
        if (!remote.connected()) {
          std::printf("not connected (.connect PORT first)\n");
        } else {
          auto h = remote.Health();
          if (!h.ok()) {
            std::printf("error: %s\n", h.status().ToString().c_str());
          } else {
            std::printf(
                "breaker=%s retry_after_ms=%lld queue=%zu/%zu epoch=%llu "
                "draining=%s served=%llu\n",
                h->breaker.c_str(), static_cast<long long>(h->retry_after_ms),
                h->queue_depth, h->queue_capacity,
                static_cast<unsigned long long>(h->epoch),
                h->draining ? "true" : "false",
                static_cast<unsigned long long>(h->requests_served));
          }
        }
      } else if (line.rfind(".explain", 0) == 0) {
        std::string q = line.size() > 8 ? line.substr(9) : "";
        if (q.empty()) {
          std::printf("usage: .explain QUERY (single line)\n");
        } else {
          RunExplain(kg, q);
        }
      } else if (line.rfind(".plan", 0) == 0) {
        std::string q = line.size() > 5 ? line.substr(6) : "";
        if (q.empty()) {
          std::printf("usage: .plan QUERY (single line)\n");
        } else {
          RunPlan(kg, q);
        }
      } else {
        std::printf("unknown command; .help for help\n");
      }
      std::printf("kgnet> ");
      std::fflush(stdout);
      continue;
    }
    if (line == ";") {
      if (!buffer.empty()) {
        if (remote.connected())
          RunRemoteQuery(remote, buffer);
        else
          RunQuery(kg, buffer);
      }
      buffer.clear();
      std::printf("kgnet> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += '\n';
    // Queries auto-execute once their braces balance; PREFIX-only
    // fragments wait for more input (or an explicit ';').
    if (buffer.find('{') != std::string::npos &&
        std::count(buffer.begin(), buffer.end(), '{') ==
            std::count(buffer.begin(), buffer.end(), '}')) {
      if (remote.connected())
        RunRemoteQuery(remote, buffer);
      else
        RunQuery(kg, buffer);
      buffer.clear();
      std::printf("kgnet> ");
      std::fflush(stdout);
    }
  }
  return 0;
}
