// Author-affiliation link prediction and entity similarity (the paper's
// Figure 10 query and the ES task of Table I).
//
// Trains a MorsE-style inductive link predictor on the d2h1 task-specific
// subgraph, runs the SPARQL-ML affiliation query, then uses the model's
// embedding store for entity-similarity search.
#include <cstdio>
#include <string>

#include "core/kgnet.h"
#include "workload/dblp_gen.h"

namespace {
constexpr char kPrefixes[] =
    "PREFIX dblp: <https://dblp.org/rdf/>\n"
    "PREFIX kgnet: <https://www.kgnet.com/>\n";
}

int main() {
  using namespace kgnet;
  using workload::DblpSchema;

  core::KgNet kg;
  workload::DblpOptions opts;
  opts.num_papers = 600;
  opts.num_authors = 300;
  opts.num_venues = 6;
  opts.num_affiliations = 24;
  // Strong community->affiliation structure, as in the LP experiment.
  opts.affiliation_community_bias = 0.9;
  Status gen = workload::GenerateDblp(opts, &kg.store());
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.ToString().c_str());
    return 1;
  }

  // Train the link predictor (MorsE, meta-sampled d2h1 as in the paper).
  core::TrainTaskSpec spec;
  spec.task = gml::TaskType::kLinkPrediction;
  spec.target_type_iri = DblpSchema::Person();
  spec.destination_type_iri = DblpSchema::Affiliation();
  spec.task_predicate_iri = DblpSchema::PrimaryAffiliation();
  spec.forced_method = gml::GmlMethod::kMorse;
  spec.config.epochs = 60;
  spec.config.embed_dim = 16;
  spec.config.lr = 0.05f;
  spec.config.eval_candidates = 0;  // rank against every affiliation
  spec.model_name = "author-affiliation";
  auto outcome = kg.TrainTask(spec);
  if (!outcome.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("Trained %s on %s: Hits@10=%.2f, MRR=%.2f\n\n",
              outcome->report.method.c_str(), outcome->sampler_label.c_str(),
              outcome->report.metric, outcome->report.mrr);

  // Figure 10: predict each author's affiliation through SPARQL-ML.
  auto links = kg.Execute(std::string(kPrefixes) +
                          "SELECT ?author ?affiliation WHERE {\n"
                          "  ?author a dblp:Person .\n"
                          "  ?author ?LinkPredictor ?affiliation .\n"
                          "  ?LinkPredictor a kgnet:LinkPredictor .\n"
                          "  ?LinkPredictor kgnet:SourceNode dblp:Person .\n"
                          "  ?LinkPredictor kgnet:DestinationNode "
                          "dblp:Affiliation .\n"
                          "  ?LinkPredictor kgnet:TopK-Links 1 .\n"
                          "} LIMIT 8");
  if (!links.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 links.status().ToString().c_str());
    return 1;
  }
  std::printf("Predicted affiliations:\n%s\n", links->ToTable().c_str());

  // Entity similarity: nearest authors in embedding space.
  const std::string author = "https://dblp.org/rdf/person/0";
  auto sims = kg.GetSimilarEntities(outcome->model_uri, author, 5);
  if (!sims.ok()) {
    std::fprintf(stderr, "similarity failed: %s\n",
                 sims.status().ToString().c_str());
    return 1;
  }
  std::printf("Entities most similar to <%s>:\n", author.c_str());
  for (const auto& iri : *sims) std::printf("  %s\n", iri.c_str());
  return 0;
}
