// kgnet_serve: the KGNet network server (docs/SERVING.md).
//
// Serves one KgNet instance over TCP on 127.0.0.1, speaking the framed-
// JSON protocol of src/serving/protocol.h. Connect with the client
// library, or interactively with `kgnet_shell` and `.connect PORT`.
//
// Usage:
//   kgnet_serve                       # DBLP-mini demo KG, ephemeral port
//   kgnet_serve --port 7687           # fixed port
//   kgnet_serve --workers 8 --queue-depth 128
//   kgnet_serve --yago                # YAGO4-mini demo KG
//   kgnet_serve --load FILE.nt        # serve an N-Triples file
//   kgnet_serve --smoke               # start, self-query, exit (CI)
//
// Environment (strictly validated, see docs/SERVING.md and
// docs/RESILIENCE.md):
//   KGNET_SERVE_PORT, KGNET_SERVE_WORKERS, KGNET_SERVE_QUEUE_DEPTH,
//   KGNET_DRAIN_TIMEOUT_MS
// Command-line flags override the environment.
//
// The server runs until stdin reaches EOF (or `quit` on a line), so it
// composes with shells and test drivers without signal games. SIGTERM
// and SIGINT trigger a graceful drain instead (docs/RESILIENCE.md):
// stop accepting, finish in-flight requests within --drain-timeout-ms,
// hard-cancel the rest.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/kgnet.h"
#include "serving/client.h"
#include "serving/server.h"
#include "workload/dblp_gen.h"
#include "workload/yago_gen.h"

namespace {

/// Last termination signal received; polled by the stdin loop. Handlers
/// are installed without SA_RESTART so a blocked read returns EINTR and
/// the loop notices promptly.
std::atomic<int> g_signal{0};

void OnTerminate(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

int Smoke(kgnet::serving::KgServer& server) {
  kgnet::serving::KgClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) {
    std::fprintf(stderr, "smoke: connect failed\n");
    return 1;
  }
  if (!client.Ping().ok()) {
    std::fprintf(stderr, "smoke: ping failed\n");
    return 1;
  }
  auto count = client.Query(
      "SELECT ?s ?o WHERE { ?s "
      "<https://dblp.org/rdf/publishedIn> ?o . } LIMIT 5");
  if (!count.ok()) {
    std::fprintf(stderr, "smoke: query failed: %s\n",
                 count.status().ToString().c_str());
    return 1;
  }
  // A malformed request must produce an error response, not a crash.
  auto bad = client.Call("{\"op\":\"no_such_op\"}");
  if (!bad.ok()) {
    std::fprintf(stderr, "smoke: malformed-op round-trip failed\n");
    return 1;
  }
  auto after = client.Ping();  // connection survived the error
  if (!after.ok()) {
    std::fprintf(stderr, "smoke: connection died after error response\n");
    return 1;
  }
  std::printf(
      "smoke ok: ping, %zu-row query (snapshot epoch %llu), error "
      "response, ping\n",
      count->result.NumRows(), static_cast<unsigned long long>(count->epoch));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  kgnet::serving::ServerOptions options =
      kgnet::serving::ApplyServerEnv(kgnet::serving::ServerOptions{});

  bool smoke = false;
  bool yago = false;
  const char* load_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--yago") == 0) {
      yago = true;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      options.num_workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--queue-depth") == 0 && i + 1 < argc) {
      options.queue_depth = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0 &&
               i + 1 < argc) {
      options.drain_timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--load") == 0 && i + 1 < argc) {
      load_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  kgnet::core::KgNet kg;
  if (load_path != nullptr) {
    std::ifstream in(load_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", load_path);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto n = kg.LoadNTriples(buf.str());
    if (!n.ok()) {
      std::fprintf(stderr, "%s\n", n.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %zu triples from %s\n", *n, load_path);
  } else if (yago) {
    kgnet::workload::YagoOptions opts;
    if (!kgnet::workload::GenerateYago(opts, &kg.store()).ok()) return 1;
  } else {
    kgnet::workload::DblpOptions opts;
    opts.num_papers = 500;
    opts.num_authors = 250;
    opts.num_venues = 5;
    opts.num_affiliations = 15;
    if (!kgnet::workload::GenerateDblp(opts, &kg.store()).ok()) return 1;
  }

  kgnet::serving::KgServer server(&kg.service(), options);
  const kgnet::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("kgnet_serve listening on 127.0.0.1:%d (%d workers, queue %d, "
              "%zu triples)\n",
              server.port(), server.options().num_workers,
              server.options().queue_depth, kg.store().size());
  std::fflush(stdout);

  if (smoke) {
    const int rc = Smoke(server);
    server.Stop();
    return rc;
  }

  // Graceful shutdown on SIGTERM / SIGINT: no SA_RESTART, so the stdin
  // read below is interrupted and the drain starts within one loop turn.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &OnTerminate;
  sa.sa_flags = 0;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  // Command loop: complete lines from stdin ("quit"/"exit" stop the
  // server), polled so a termination signal is noticed even while no
  // input arrives.
  std::string pending;
  bool quit = false;
  while (!quit && g_signal.load(std::memory_order_relaxed) == 0) {
    struct pollfd pfd;
    pfd.fd = STDIN_FILENO;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = poll(&pfd, 1, 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    char buf[256];
    const ssize_t n = read(STDIN_FILENO, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // stdin EOF
    pending.append(buf, static_cast<size_t>(n));
    size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      const std::string line = pending.substr(0, pos);
      pending.erase(0, pos + 1);
      if (line == "quit" || line == "exit") {
        quit = true;
        break;
      }
    }
  }

  const int sig = g_signal.load(std::memory_order_relaxed);
  if (sig != 0) {
    std::printf("signal %d: draining (timeout %dms)\n", sig,
                server.options().drain_timeout_ms);
    std::fflush(stdout);
    server.Drain();
  } else {
    server.Stop();
  }
  const kgnet::serving::KgServer::Stats st = server.stats();
  std::printf("served %llu requests on %llu connections (%llu errors, "
              "%llu overload rejects, %llu drain rejects, %llu cancelled)\n",
              static_cast<unsigned long long>(st.requests_served),
              static_cast<unsigned long long>(st.connections_accepted),
              static_cast<unsigned long long>(st.error_responses),
              static_cast<unsigned long long>(st.overload_rejects),
              static_cast<unsigned long long>(st.drain_rejects),
              static_cast<unsigned long long>(st.cancelled));
  return 0;
}
