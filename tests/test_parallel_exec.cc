// Targeted tests for the morsel-driven parallel executor: the serial
// latch, the bitwise-identical-output contract of the parallel
// IndexScan / HashJoin / SortMergeJoin paths, LIMIT short-circuiting
// through the wave/batch ramps, and the EXPLAIN annotation. The
// randomized differential coverage lives in test_exec_oracle.cc; this
// file pins the operator-level mechanics on hand-built graphs large
// enough to engage the parallel paths for real.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "sparql/exec.h"
#include "sparql/parser.h"
#include "tests/parallel_test_util.h"

namespace kgnet::sparql {
namespace {

using kgnet::testing::ThreadCountGuard;
using rdf::Term;

/// Saves/restores the process-wide MorselConfig around a test.
class MorselConfigGuard {
 public:
  MorselConfigGuard() : saved_(GetMorselConfig()) {}
  ~MorselConfigGuard() { GetMorselConfig() = saved_; }
  MorselConfigGuard(const MorselConfigGuard&) = delete;
  MorselConfigGuard& operator=(const MorselConfigGuard&) = delete;

 private:
  MorselConfig saved_;
};

/// A bipartite graph big enough to clear the default parallel
/// thresholds: kFanOut objects per subject under <p>, plus a <rank>
/// attribute per subject for join/filter shapes.
void FillStore(rdf::TripleStore* store, int subjects, int fan_out) {
  for (int s = 0; s < subjects; ++s) {
    const std::string subj = "s" + std::to_string(s);
    for (int o = 0; o < fan_out; ++o)
      store->InsertIris(subj, "p", "o" + std::to_string((s * 7 + o) % 97));
    store->InsertIris(subj, "rank", "r" + std::to_string(s % 5));
  }
}

std::vector<std::vector<Term>> RunRows(QueryEngine* engine,
                                       const std::string& query) {
  auto r = engine->ExecuteString(query);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r->rows : std::vector<std::vector<Term>>{};
}

// The serial latch: with one configured thread and force_parallel off,
// even a huge range takes the serial cursor path (wave state untouched),
// so single-threaded deployments pay zero overhead and keep byte-stable
// ExecInfo counters.
TEST(ParallelExecTest, OneThreadTakesSerialPathByDefault) {
  ThreadCountGuard guard;
  common::ThreadPool::SetNumThreads(1);
  rdf::TripleStore store;
  FillStore(&store, 200, 30);  // 6200 triples > scan_min_parallel_rows

  QueryEngine engine(&store);
  auto q = ParseQuery("SELECT * WHERE { ?s <p> ?o . } LIMIT 5");
  ASSERT_TRUE(q.ok()) << q.status();
  ExecInfo info;
  auto r = engine.Execute(*q, &info);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 5u);
  // Serial pull-based scan: exactly LIMIT rows leave the cursor.
  EXPECT_EQ(info.rows_scanned, 5u);
}

// The core contract: the parallel scan emits the exact serial row
// stream — same rows, same order — at any thread count.
TEST(ParallelExecTest, MorselScanMatchesSerialOrderAtAnyThreadCount) {
  ThreadCountGuard guard;
  MorselConfigGuard cfg_guard;
  rdf::TripleStore store;
  FillStore(&store, 120, 25);
  QueryEngine engine(&store);
  const std::string query =
      "SELECT * WHERE { ?s <p> ?o . ?s <rank> ?r . }";

  common::ThreadPool::SetNumThreads(1);
  const auto serial = RunRows(&engine, query);
  ASSERT_FALSE(serial.empty());

  MorselConfig& cfg = GetMorselConfig();
  cfg.scan_min_parallel_rows = 8;
  cfg.scan_morsel_rows = 64;
  cfg.smj_min_parallel_group = 4;
  cfg.join_min_parallel_batch = 8;
  cfg.force_parallel = true;
  for (int threads : {1, 2, 4}) {
    common::ThreadPool::SetNumThreads(threads);
    EXPECT_TRUE(RunRows(&engine, query) == serial)
        << "diverged at " << threads << " threads";
  }
}

// LIMIT must keep short-circuiting through the parallel scan: the wave
// ramp (1, 2, 4, ... morsels) bounds decode-ahead, so a LIMIT consuming
// a handful of rows scans a handful of morsels, not the whole range.
TEST(ParallelExecTest, LimitShortCircuitsParallelScan) {
  ThreadCountGuard guard;
  MorselConfigGuard cfg_guard;
  common::ThreadPool::SetNumThreads(4);
  rdf::TripleStore store;
  FillStore(&store, 300, 30);  // ~9300 triples
  const size_t total = store.size();

  MorselConfig& cfg = GetMorselConfig();
  cfg.scan_min_parallel_rows = 8;
  cfg.scan_morsel_rows = 16;
  cfg.scan_max_wave_morsels = 4;
  cfg.force_parallel = true;

  QueryEngine engine(&store);
  auto q = ParseQuery("SELECT * WHERE { ?s <p> ?o . } LIMIT 3");
  ASSERT_TRUE(q.ok()) << q.status();
  ExecInfo info;
  auto r = engine.Execute(*q, &info);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 3u);
  // One 16-row wave already covers LIMIT 3; allow the ramp a little
  // slack but require a hard stop far below the full range.
  EXPECT_LE(info.rows_scanned, 64u);
  EXPECT_LT(info.rows_scanned, total / 10);
}

// LIMIT through a parallel hash join stops *both* inputs: the batch
// ramp starts at join_min_parallel_batch rows, so a LIMIT needing few
// matches pulls a bounded number of rows from each side. The classic
// trio lacks a cheap scan ordered on a *subject*-position join variable
// under a bound predicate, so `?o <p2> ?b` forces the planner off the
// merge join and onto the hash join.
TEST(ParallelExecTest, LimitShortCircuitsParallelHashJoin) {
  ThreadCountGuard guard;
  MorselConfigGuard cfg_guard;
  common::ThreadPool::SetNumThreads(4);
  rdf::TripleStore::Options sopts;
  sopts.index_set = rdf::TripleStore::Options::IndexSet::kClassicTrio;
  rdf::TripleStore store(sopts);
  for (int i = 0; i < 2000; ++i) {
    store.InsertIris("a" + std::to_string(i), "p1",
                     "o" + std::to_string(i % 50));
    store.InsertIris("o" + std::to_string(i % 50), "p2",
                     "b" + std::to_string(i));
  }
  const size_t total = store.size();

  MorselConfig& cfg = GetMorselConfig();
  cfg.scan_min_parallel_rows = 8;
  cfg.scan_morsel_rows = 16;
  cfg.join_min_parallel_batch = 8;
  cfg.join_max_batch_rows = 64;
  cfg.force_parallel = true;

  QueryEngine engine(&store);
  const std::string query =
      "SELECT * WHERE { ?a <p1> ?o . ?o <p2> ?b . } LIMIT 4";
  auto plan = engine.ExplainString(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_NE(plan->find("HashJoin"), std::string::npos) << *plan;
  auto q = ParseQuery(query);
  ASSERT_TRUE(q.ok()) << q.status();
  ExecInfo info;
  auto r = engine.Execute(*q, &info);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 4u);
  EXPECT_LT(info.rows_scanned, total / 4);
}

// The batched partitioned hash join and the chunked merge-join group
// emission reproduce the serial stream exactly, across thread counts.
TEST(ParallelExecTest, ParallelJoinsMatchSerialOrder) {
  ThreadCountGuard guard;
  MorselConfigGuard cfg_guard;
  // Hash shape: trio store + subject-position join variable (see above).
  rdf::TripleStore::Options trio;
  trio.index_set = rdf::TripleStore::Options::IndexSet::kClassicTrio;
  rdf::TripleStore hash_store(trio);
  // Merge shape: full permutations, both sides stream ordered on ?o.
  rdf::TripleStore merge_store;
  for (int i = 0; i < 200; ++i) {
    hash_store.InsertIris("a" + std::to_string(i), "p1",
                          "o" + std::to_string(i % 23));
    hash_store.InsertIris("o" + std::to_string(i % 23), "p2",
                          "b" + std::to_string(i));
    merge_store.InsertIris("a" + std::to_string(i), "p1",
                           "o" + std::to_string(i % 23));
    merge_store.InsertIris("c" + std::to_string(i), "p2",
                           "o" + std::to_string(i % 23));
  }
  struct Shape {
    rdf::TripleStore* store;
    std::string query;
    const char* join;
  };
  const Shape shapes[] = {
      {&hash_store, "SELECT * WHERE { ?a <p1> ?o . ?o <p2> ?b . }",
       "HashJoin"},
      {&merge_store, "SELECT * WHERE { ?a <p1> ?o . ?c <p2> ?o . }",
       "MergeJoin"},
  };
  for (const Shape& shape : shapes) {
    QueryEngine engine(shape.store);
    auto plan = engine.ExplainString(shape.query);
    ASSERT_TRUE(plan.ok()) << plan.status();
    ASSERT_NE(plan->find(shape.join), std::string::npos) << *plan;

    common::ThreadPool::SetNumThreads(1);
    GetMorselConfig() = MorselConfig{};
    const auto serial = RunRows(&engine, shape.query);
    ASSERT_FALSE(serial.empty()) << shape.query;

    MorselConfig& cfg = GetMorselConfig();
    cfg.scan_min_parallel_rows = 8;
    cfg.scan_morsel_rows = 32;
    cfg.join_min_parallel_batch = 4;
    cfg.join_max_batch_rows = 32;
    cfg.join_partitions = 8;
    cfg.smj_min_parallel_group = 4;
    cfg.force_parallel = true;
    for (int threads : {1, 2, 4}) {
      common::ThreadPool::SetNumThreads(threads);
      EXPECT_TRUE(RunRows(&engine, shape.query) == serial)
          << shape.query << "\ndiverged at " << threads << " threads";
    }
  }
}

// EXPLAIN marks fixed-order scans whose planned range clears the
// parallel threshold — and only those.
TEST(ParallelExecTest, ExplainMarksParallelEligibleScans) {
  ThreadCountGuard guard;
  MorselConfigGuard cfg_guard;
  rdf::TripleStore store;
  FillStore(&store, 200, 30);
  QueryEngine engine(&store);
  const std::string big = "SELECT * WHERE { ?s <p> ?o . }";      // 6000 rows
  const std::string small = "SELECT * WHERE { ?s <rank> ?r . }";  // 200 rows

  // Serial configuration: no marker even on the big scan.
  common::ThreadPool::SetNumThreads(1);
  auto plain = engine.ExplainString(big);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->find("[parallel]"), std::string::npos) << *plain;

  // Wide pool: the 6000-row scan qualifies, the 200-row one does not.
  common::ThreadPool::SetNumThreads(4);
  GetMorselConfig().scan_min_parallel_rows = 1024;
  auto wide = engine.ExplainString(big);
  ASSERT_TRUE(wide.ok()) << wide.status();
  EXPECT_NE(wide->find("[parallel]"), std::string::npos) << *wide;
  auto narrow = engine.ExplainString(small);
  ASSERT_TRUE(narrow.ok()) << narrow.status();
  EXPECT_EQ(narrow->find("[parallel]"), std::string::npos) << *narrow;
}

// Degenerate knob values must not crash or change results: zero morsel
// rows, one partition, zero-size batches.
TEST(ParallelExecTest, DegenerateConfigValuesStaySafe) {
  ThreadCountGuard guard;
  MorselConfigGuard cfg_guard;
  common::ThreadPool::SetNumThreads(4);
  rdf::TripleStore store;
  FillStore(&store, 60, 10);
  QueryEngine engine(&store);
  const std::string query = "SELECT * WHERE { ?s <p> ?o . ?s <rank> ?r . }";

  common::ThreadPool::SetNumThreads(1);
  const auto serial = RunRows(&engine, query);

  MorselConfig& cfg = GetMorselConfig();
  cfg.scan_morsel_rows = 0;       // clamped to 1
  cfg.scan_min_parallel_rows = 0;
  cfg.scan_max_wave_morsels = 1;  // smallest legal ramp
  cfg.join_partitions = 1;        // single partition
  cfg.join_min_parallel_batch = 1;
  cfg.join_max_batch_rows = 1;
  cfg.smj_min_parallel_group = 1;
  cfg.force_parallel = true;
  common::ThreadPool::SetNumThreads(4);
  EXPECT_TRUE(RunRows(&engine, query) == serial);
}

}  // namespace
}  // namespace kgnet::sparql
