#include "sparql/serializer.h"

#include <gtest/gtest.h>

#include "sparql/engine.h"
#include "sparql/parser.h"

namespace kgnet::sparql {
namespace {

using rdf::Term;

/// Parse -> serialize -> parse -> serialize must be a fixpoint.
void ExpectRoundTrip(const std::string& text) {
  auto q1 = ParseQuery(text);
  ASSERT_TRUE(q1.ok()) << q1.status() << "\n" << text;
  const std::string s1 = SerializeQuery(*q1);
  auto q2 = ParseQuery(s1);
  ASSERT_TRUE(q2.ok()) << q2.status() << "\nserialized:\n" << s1;
  const std::string s2 = SerializeQuery(*q2);
  EXPECT_EQ(s1, s2) << "not a fixpoint for:\n" << text;
}

TEST(SerializerTest, TermForms) {
  EXPECT_EQ(SerializeTerm(Term::Iri("http://x/a")), "<http://x/a>");
  EXPECT_EQ(SerializeTerm(Term::Literal("hi")), "\"hi\"");
  EXPECT_EQ(SerializeTerm(Term::IntLiteral(5)),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(SerializeTerm(Term::Blank("b")), "_:b");
}

TEST(SerializerTest, NodeForms) {
  EXPECT_EQ(SerializeNode(NodeRef::Var("x")), "?x");
  EXPECT_EQ(SerializeNode(NodeRef::Const(Term::Iri("a"))), "<a>");
}

TEST(SerializerTest, ExprForms) {
  auto e = Expr::Binary(ExprOp::kAnd,
                        Expr::Binary(ExprOp::kGt, Expr::Var("y"),
                                     Expr::Const(Term::IntLiteral(3))),
                        Expr::Binary(ExprOp::kNe, Expr::Var("y"),
                                     Expr::Const(Term::IntLiteral(7))));
  const std::string s = SerializeExpr(e);
  EXPECT_NE(s.find("?y"), std::string::npos);
  EXPECT_NE(s.find(">"), std::string::npos);
  EXPECT_NE(s.find("&&"), std::string::npos);

  auto call = Expr::Call("sql:UDFS.getNodeClass",
                         {Expr::Const(Term::Iri("m")), Expr::Var("p")});
  EXPECT_EQ(SerializeExpr(call), "sql:UDFS.getNodeClass(<m>, ?p)");
}

TEST(SerializerTest, RoundTripsSelect) {
  ExpectRoundTrip(
      "SELECT DISTINCT ?s ?o WHERE { ?s <http://p> ?o . "
      "FILTER(?o > 3) } LIMIT 5 OFFSET 2");
}

TEST(SerializerTest, RoundTripsAsk) {
  ExpectRoundTrip("ASK { <http://a> <http://p> \"v\" . }");
}

TEST(SerializerTest, RoundTripsUpdates) {
  ExpectRoundTrip("INSERT DATA { <a> <p> <b> . }");
  ExpectRoundTrip("INSERT { ?s <flag> \"y\" } WHERE { ?s <p> ?o . }");
  ExpectRoundTrip("DELETE { ?s ?p ?o } WHERE { ?s ?p ?o . }");
}

TEST(SerializerTest, RoundTripsSubSelect) {
  ExpectRoundTrip(
      "SELECT ?x WHERE { ?x <p> ?y . { SELECT ?y WHERE { ?y <q> ?z . } } }");
}

TEST(SerializerTest, RoundTripsUdfProjection) {
  ExpectRoundTrip(
      "SELECT ?t sql:UDFS.getNodeClass(<http://m>, ?p) AS ?venue "
      "WHERE { ?p <title> ?t . }");
}

TEST(SerializerTest, SerializedQueryExecutesIdentically) {
  rdf::TripleStore store;
  store.InsertIris("http://a", "http://p", "http://b");
  store.InsertIris("http://a", "http://p", "http://c");
  store.InsertIris("http://b", "http://p", "http://c");
  QueryEngine engine(&store);

  const std::string text =
      "SELECT ?o WHERE { <http://a> <http://p> ?o . }";
  auto direct = engine.ExecuteString(text);
  ASSERT_TRUE(direct.ok());
  auto parsed = ParseQuery(text);
  ASSERT_TRUE(parsed.ok());
  auto via_serializer = engine.ExecuteString(SerializeQuery(*parsed));
  ASSERT_TRUE(via_serializer.ok()) << via_serializer.status();
  EXPECT_EQ(direct->NumRows(), via_serializer->NumRows());
}

}  // namespace
}  // namespace kgnet::sparql
