#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "tests/parallel_test_util.h"
#include "tensor/csr_matrix.h"
#include "tensor/matrix.h"
#include "tensor/memory_meter.h"
#include "tensor/optimizer.h"
#include "tensor/rng.h"

namespace kgnet::tensor {
namespace {

TEST(MatrixTest, MatMulAgainstHandComputed) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Matrix c = Matrix::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154);
}

TEST(MatrixTest, TransposedProductsMatchExplicitTranspose) {
  Rng rng(3);
  Matrix a(4, 5), b(4, 6);
  a.XavierInit(&rng);
  b.XavierInit(&rng);
  // AᵀB via MatMulTransA vs building Aᵀ explicitly.
  Matrix at(5, 4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 5; ++j) at.At(j, i) = a.At(i, j);
  Matrix want = Matrix::MatMul(at, b);
  Matrix got = Matrix::MatMulTransA(a, b);
  for (size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-5);

  Matrix c(6, 5);
  c.XavierInit(&rng);
  // A·Cᵀ (4x5 · 5x6) via MatMulTransB.
  Matrix ct(5, 6);
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 5; ++j) ct.At(j, i) = c.At(i, j);
  Matrix want2 = Matrix::MatMul(a, ct);
  Matrix got2 = Matrix::MatMulTransB(a, c);
  for (size_t i = 0; i < want2.size(); ++i)
    EXPECT_NEAR(got2.data()[i], want2.data()[i], 1e-5);
}

TEST(MatrixTest, ReluMaskMatchesActivation) {
  Matrix m(1, 4);
  float v[] = {-1, 0, 2, -3};
  std::copy(v, v + 4, m.data());
  Matrix mask;
  m.ReluInPlace(&mask);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0);
  EXPECT_FLOAT_EQ(m.At(0, 2), 2);
  EXPECT_FLOAT_EQ(mask.At(0, 0), 0);
  EXPECT_FLOAT_EQ(mask.At(0, 2), 1);
}

TEST(MatrixTest, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Matrix m(3, 7);
  m.UniformInit(&rng, -10, 10);
  m.SoftmaxRowsInPlace();
  for (size_t r = 0; r < 3; ++r) {
    float sum = 0;
    for (size_t c = 0; c < 7; ++c) {
      sum += m.At(r, c);
      EXPECT_GE(m.At(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(MatrixTest, GatherScatterRoundTrip) {
  Matrix m(5, 2);
  for (size_t i = 0; i < 5; ++i) {
    m.At(i, 0) = static_cast<float>(i);
    m.At(i, 1) = static_cast<float>(10 * i);
  }
  Matrix g = m.GatherRows({4, 1});
  EXPECT_FLOAT_EQ(g.At(0, 0), 4);
  EXPECT_FLOAT_EQ(g.At(1, 1), 10);
  Matrix zero(5, 2);
  zero.ScatterAddRows({4, 1}, g);
  EXPECT_FLOAT_EQ(zero.At(4, 0), 4);
  EXPECT_FLOAT_EQ(zero.At(1, 1), 10);
  EXPECT_FLOAT_EQ(zero.At(0, 0), 0);
}

TEST(MatrixTest, XavierInitBounded) {
  Rng rng(7);
  Matrix m(64, 64);
  m.XavierInit(&rng);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), bound + 1e-6);
  }
  // Not all zeros.
  EXPECT_GT(m.FrobeniusNorm(), 0.1f);
}

TEST(CsrTest, BuildsFromCooWithDuplicateSummation) {
  CsrMatrix m(3, 3, {{0, 1, 1.0f}, {0, 1, 2.0f}, {2, 0, 5.0f}});
  EXPECT_EQ(m.nnz(), 2u);
  Matrix x(3, 1);
  x.At(0, 0) = 1;
  x.At(1, 0) = 10;
  x.At(2, 0) = 100;
  Matrix y = m.SpMM(x);
  EXPECT_FLOAT_EQ(y.At(0, 0), 30.0f);  // (1+2) * 10
  EXPECT_FLOAT_EQ(y.At(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.At(2, 0), 5.0f);
}

TEST(CsrTest, SpMMTransposedMatchesDenseTranspose) {
  Rng rng(11);
  std::vector<CooEntry> entries;
  for (int i = 0; i < 30; ++i)
    entries.push_back({static_cast<uint32_t>(rng.NextUint(6)),
                       static_cast<uint32_t>(rng.NextUint(4)),
                       rng.NextFloat()});
  CsrMatrix m(6, 4, entries);
  Matrix x(6, 3);
  x.XavierInit(&rng);
  Matrix got = m.SpMMTransposed(x);
  // Dense oracle.
  Matrix dense(6, 4);
  for (size_t r = 0; r < 6; ++r)
    for (uint64_t e = m.row_ptr()[r]; e < m.row_ptr()[r + 1]; ++e)
      dense.At(r, m.col_idx()[e]) += m.values()[e];
  Matrix want = Matrix::MatMulTransA(dense, x);
  ASSERT_EQ(got.rows(), want.rows());
  for (size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-5);
}

TEST(CsrTest, RowNormalizedRowsSumToOne) {
  CsrMatrix m(3, 3, {{0, 0, 2.0f}, {0, 1, 2.0f}, {1, 2, 5.0f}});
  CsrMatrix n = m.RowNormalized();
  std::vector<float> sums = n.RowSums();
  EXPECT_NEAR(sums[0], 1.0f, 1e-6);
  EXPECT_NEAR(sums[1], 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(sums[2], 0.0f);  // empty row stays empty
}

TEST(CsrTest, SymNormalizedMatchesFormula) {
  // Single edge (0 -> 1) with self patterns absent: value / sqrt(d0*d1).
  CsrMatrix m(2, 2, {{0, 1, 1.0f}, {1, 0, 1.0f}, {1, 1, 1.0f}});
  CsrMatrix n = m.SymNormalized();
  // Row sums of original: d0=1, d1=2. Col sums: c0=1, c1=2.
  // entry (0,1) = 1/sqrt(1*2)
  Matrix x(2, 1);
  x.At(0, 0) = 0;
  x.At(1, 0) = 1;
  Matrix y = n.SpMM(x);
  EXPECT_NEAR(y.At(0, 0), 1.0f / std::sqrt(2.0f), 1e-5);
}

TEST(MemoryMeterTest, TracksPeakAcrossMatrixLifetimes) {
  MemoryMeter::Instance().Reset();
  PeakMemoryScope scope;
  {
    Matrix a(100, 100);  // 40 KB
    EXPECT_GE(MemoryMeter::Instance().Current(), 40000u);
    {
      Matrix b(200, 100);  // +80 KB
      (void)b;
      EXPECT_GE(scope.PeakBytes(), 120000u);
    }
  }
  // Peak persists after frees.
  EXPECT_GE(scope.PeakBytes(), 120000u);
}

TEST(MemoryMeterTest, MoveDoesNotDoubleCount) {
  MemoryMeter::Instance().Reset();
  const size_t before = MemoryMeter::Instance().Current();
  {
    Matrix a(100, 100);
    Matrix b = std::move(a);
    Matrix c(10, 10);
    c = std::move(b);
    EXPECT_EQ(MemoryMeter::Instance().Current(), before + 40000u);
  }
  EXPECT_EQ(MemoryMeter::Instance().Current(), before);
}

TEST(MemoryMeterTest, CsrAccountingBalances) {
  MemoryMeter::Instance().Reset();
  const size_t before = MemoryMeter::Instance().Current();
  {
    CsrMatrix m(10, 10, {{0, 1, 1.0f}, {2, 3, 1.0f}});
    CsrMatrix copy = m;
    CsrMatrix moved = std::move(copy);
    m = moved;  // copy-assign
  }
  EXPECT_EQ(MemoryMeter::Instance().Current(), before);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||W - target||^2.
  Rng rng(1);
  Matrix w(4, 4);
  w.XavierInit(&rng);
  Matrix target(4, 4);
  target.UniformInit(&rng, -1, 1);
  AdamOptimizer::Options opts;
  opts.lr = 0.05f;
  AdamOptimizer opt(opts);
  opt.Register(&w);
  for (int step = 0; step < 400; ++step) {
    Matrix grad = w;
    grad.Sub(target);
    grad.Scale(2.0f);
    opt.Step({&grad});
  }
  Matrix diff = w;
  diff.Sub(target);
  EXPECT_LT(diff.FrobeniusNorm(), 1e-2);
}

TEST(SgdTest, MomentumDescendsQuadratic) {
  Matrix w(2, 2, 5.0f);
  SgdOptimizer opt(0.1f, 0.9f);
  opt.Register(&w);
  for (int step = 0; step < 250; ++step) {
    Matrix grad = w;
    grad.Scale(2.0f);
    opt.Step({&grad});
  }
  EXPECT_LT(w.FrobeniusNorm(), 1e-2);
}

TEST(LossTest, SoftmaxCrossEntropyGradientFiniteDifference) {
  Rng rng(17);
  Matrix logits(3, 4);
  logits.UniformInit(&rng, -2, 2);
  std::vector<int> labels = {2, 0, kIgnoreLabel};

  Matrix grad;
  const float base = SoftmaxCrossEntropy(logits, labels, &grad);
  (void)base;
  const float eps = 1e-3f;
  for (size_t i = 0; i < logits.size(); ++i) {
    Matrix plus = logits, minus = logits;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    Matrix g_unused;
    const float lp = SoftmaxCrossEntropy(plus, labels, &g_unused);
    const float lm = SoftmaxCrossEntropy(minus, labels, &g_unused);
    const float numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, 5e-3)
        << "logit index " << i;
  }
}

TEST(LossTest, IgnoredRowsGetZeroGradient) {
  Matrix logits(2, 3, 1.0f);
  std::vector<int> labels = {kIgnoreLabel, 1};
  Matrix grad;
  SoftmaxCrossEntropy(logits, labels, &grad);
  for (size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(grad.At(0, c), 0.0f);
}

TEST(LossTest, LogisticLossGradientFiniteDifference) {
  std::vector<float> scores = {0.5f, -1.2f, 3.0f};
  std::vector<float> targets = {1.0f, -1.0f, 1.0f};
  std::vector<float> grad;
  LogisticLoss(scores, targets, &grad);
  const float eps = 1e-3f;
  for (size_t i = 0; i < scores.size(); ++i) {
    auto sp = scores, sm = scores;
    sp[i] += eps;
    sm[i] -= eps;
    std::vector<float> unused;
    const float lp = LogisticLoss(sp, targets, &unused);
    const float lm = LogisticLoss(sm, targets, &unused);
    EXPECT_NEAR(grad[i], (lp - lm) / (2 * eps), 1e-3);
  }
}

// ---- parallel kernels: bitwise determinism across thread counts ----
//
// Every tensor kernel routed through the shared pool must produce the
// exact same bits at 1, 2 and 4 threads (the accuracy suites and the
// exec oracle rely on it). Shapes are chosen to actually hit the
// parallel paths: several GEMM row tiles and, for SpMMTransposed, more
// than one fixed input partition (rows >= 512).

using kgnet::testing::SameBits;

TEST(ParallelKernelsTest, BitwiseIdenticalAcrossThreadCounts) {
  kgnet::testing::ThreadCountGuard thread_guard;
  Rng rng(11);
  Matrix a(150, 40), b(40, 24), c(150, 24), d2(96, 40);
  a.XavierInit(&rng);
  b.XavierInit(&rng);
  c.XavierInit(&rng);
  d2.XavierInit(&rng);

  constexpr size_t kRows = 1500, kCols = 700, kDim = 8;
  std::vector<CooEntry> entries;
  for (int i = 0; i < 6000; ++i) {
    entries.push_back({static_cast<uint32_t>(rng.NextUint(kRows)),
                       static_cast<uint32_t>(rng.NextUint(kCols)),
                       rng.NextUniform(-1.0f, 1.0f)});
  }
  CsrMatrix sparse(kRows, kCols, std::move(entries));
  Matrix x(kCols, kDim), xt(kRows, kDim);
  x.XavierInit(&rng);
  xt.XavierInit(&rng);

  struct Results {
    Matrix mm, ta, tb, spmm, spmmt;
  };
  auto run = [&](int threads) {
    common::ThreadPool::SetNumThreads(threads);
    Results r;
    r.mm = Matrix::MatMul(a, b);
    r.ta = Matrix::MatMulTransA(a, c);
    r.tb = Matrix::MatMulTransB(a, d2);
    r.spmm = sparse.SpMM(x);
    r.spmmt = sparse.SpMMTransposed(xt);
    return r;
  };

  const Results want = run(1);
  for (int threads : {2, 4}) {
    const Results got = run(threads);
    EXPECT_TRUE(SameBits(want.mm, got.mm)) << "MatMul @ " << threads;
    EXPECT_TRUE(SameBits(want.ta, got.ta)) << "MatMulTransA @ " << threads;
    EXPECT_TRUE(SameBits(want.tb, got.tb)) << "MatMulTransB @ " << threads;
    EXPECT_TRUE(SameBits(want.spmm, got.spmm)) << "SpMM @ " << threads;
    EXPECT_TRUE(SameBits(want.spmmt, got.spmmt))
        << "SpMMTransposed @ " << threads;
  }
}

TEST(MemoryMeterTest, ConcurrentAccountingStaysExact) {
  kgnet::testing::ThreadCountGuard thread_guard;
  common::ThreadPool::SetNumThreads(4);
  auto& meter = MemoryMeter::Instance();
  const size_t before = meter.Current();
  // Allocate/release in matched pairs from many chunks at once: the
  // atomic counters must come back to the starting level exactly.
  common::ParallelFor(0, 512, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      Matrix m(8, 8);
      meter.AllocateIndex(static_cast<int>(i % 6), 128);
      meter.ReleaseIndex(static_cast<int>(i % 6), 128);
    }
  });
  EXPECT_EQ(meter.Current(), before);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint(1000), b.NextUint(1000));
}

TEST(RngTest, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.NextUniform(-0.5f, 0.5f);
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

}  // namespace
}  // namespace kgnet::tensor
