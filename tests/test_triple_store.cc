#include "rdf/triple_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rdf/term.h"
#include "tensor/memory_meter.h"
#include "tensor/rng.h"

namespace kgnet::rdf {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternIri("http://x/a");
  TermId b = dict.InternIri("http://x/b");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.InternIri("http://x/a"), a);
  EXPECT_EQ(dict.num_terms(), 2u);
  EXPECT_EQ(dict.Lookup(a).lexical, "http://x/a");
}

TEST(DictionaryTest, DistinguishesTermKinds) {
  Dictionary dict;
  TermId iri = dict.Intern(Term::Iri("x"));
  TermId lit = dict.Intern(Term::Literal("x"));
  TermId blank = dict.Intern(Term::Blank("x"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
  EXPECT_NE(iri, blank);
}

TEST(DictionaryTest, DistinguishesDatatypeAndLang) {
  Dictionary dict;
  TermId plain = dict.Intern(Term::Literal("5"));
  TermId typed = dict.Intern(Term::IntLiteral(5));
  Term lang = Term::Literal("5");
  lang.lang = "en";
  TermId tagged = dict.Intern(lang);
  EXPECT_NE(plain, typed);
  EXPECT_NE(plain, tagged);
  EXPECT_NE(typed, tagged);
}

TEST(DictionaryTest, FindDoesNotIntern) {
  Dictionary dict;
  EXPECT_EQ(dict.Find(Term::Iri("nope")), kNullTermId);
  EXPECT_EQ(dict.num_terms(), 0u);
}

TEST(DictionaryTest, RoundTripsAcrossBlockBoundaries) {
  // Terms live in doubling-size blocks (4096, 8192, ...); 100k interns
  // cross four block boundaries. Every id must round-trip and every
  // Lookup reference taken early must survive all later interning —
  // with the old std::vector storage a reallocation invalidated them.
  Dictionary dict;
  const TermId first = dict.InternIri("iri-0");
  const Term* early_ref = &dict.Lookup(first);
  std::vector<TermId> ids;
  ids.reserve(100000);
  for (int i = 0; i < 100000; ++i)
    ids.push_back(dict.InternIri("iri-" + std::to_string(i)));
  EXPECT_EQ(dict.num_terms(), 100000u);
  EXPECT_EQ(early_ref, &dict.Lookup(first));  // never moved
  for (int i = 0; i < 100000; i += 997) {
    EXPECT_EQ(dict.Lookup(ids[i]).lexical, "iri-" + std::to_string(i)) << i;
    EXPECT_EQ(dict.FindIri("iri-" + std::to_string(i)), ids[i]) << i;
  }
  // The ids right at the 4096/12288/28672/61440 boundaries.
  for (TermId id : {4095u, 4096u, 12287u, 12288u, 28671u, 28672u, 61439u,
                    61440u}) {
    ASSERT_TRUE(dict.Contains(id));
    EXPECT_EQ(dict.Find(dict.Lookup(id)), id);
  }
}

TEST(DictionaryTest, LookupsAreSafeAgainstConcurrentInterning) {
  // The MVCC read-path contract (docs/STORAGE.md): result projection
  // Lookups race one interning writer. Readers copy terms they learned
  // before the writer started; the writer pushes the dictionary through
  // several block allocations. Run under TSan/ASan this is the
  // regression test for the vector-reallocation use-after-free that
  // crashed test_serving_stress.
  Dictionary dict;
  std::vector<TermId> warm;
  for (int i = 0; i < 512; ++i)
    warm.push_back(dict.InternIri("warm-" + std::to_string(i)));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<uint64_t> lookups{0};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&dict, &warm, &stop, &lookups, t] {
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const TermId id = warm[(n * 31 + static_cast<uint64_t>(t)) %
                               warm.size()];
        Term copy = dict.Lookup(id);  // the crash site: copy mid-realloc
        if (copy.lexical.empty()) break;
        // Find shares the string index with the writer's interns.
        if (dict.Find(copy) != id) break;
        ++n;
      }
      lookups.fetch_add(n);
    });
  }
  for (int i = 0; i < 30000; ++i) dict.InternIri("new-" + std::to_string(i));
  stop.store(true);
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(dict.num_terms(), 512u + 30000u);
  EXPECT_GT(lookups.load(), 0u);
  for (int t = 0; t < 3; ++t)
    EXPECT_EQ(dict.Lookup(warm[static_cast<size_t>(t)]).lexical,
              "warm-" + std::to_string(t));
}

class TripleStoreTest : public ::testing::Test {
 protected:
  TripleStore store_;
  TermId Add(const std::string& s, const std::string& p,
             const std::string& o) {
    store_.InsertIris(s, p, o);
    return store_.dict().FindIri(s);
  }
};

TEST_F(TripleStoreTest, InsertAndContains) {
  EXPECT_TRUE(store_.InsertIris("s", "p", "o"));
  EXPECT_FALSE(store_.InsertIris("s", "p", "o"));  // duplicate
  EXPECT_EQ(store_.size(), 1u);
  Triple t(store_.dict().FindIri("s"), store_.dict().FindIri("p"),
           store_.dict().FindIri("o"));
  EXPECT_TRUE(store_.Contains(t));
}

TEST_F(TripleStoreTest, MatchByEveryBoundCombination) {
  Add("a", "p", "x");
  Add("a", "p", "y");
  Add("a", "q", "x");
  Add("b", "p", "x");
  const Dictionary& d = store_.dict();
  TermId a = d.FindIri("a"), p = d.FindIri("p"), x = d.FindIri("x");

  EXPECT_EQ(store_.Match(TriplePattern()).size(), 4u);
  EXPECT_EQ(store_.Match(TriplePattern(a, 0, 0)).size(), 3u);
  EXPECT_EQ(store_.Match(TriplePattern(0, p, 0)).size(), 3u);
  EXPECT_EQ(store_.Match(TriplePattern(0, 0, x)).size(), 3u);
  EXPECT_EQ(store_.Match(TriplePattern(a, p, 0)).size(), 2u);
  EXPECT_EQ(store_.Match(TriplePattern(0, p, x)).size(), 2u);
  EXPECT_EQ(store_.Match(TriplePattern(a, 0, x)).size(), 2u);
  EXPECT_EQ(store_.Match(TriplePattern(a, p, x)).size(), 1u);
}

TEST_F(TripleStoreTest, EraseRemovesFromAllIndexes) {
  Add("a", "p", "x");
  Add("a", "p", "y");
  const Dictionary& d = store_.dict();
  Triple t(d.FindIri("a"), d.FindIri("p"), d.FindIri("x"));
  EXPECT_TRUE(store_.Erase(t));
  EXPECT_FALSE(store_.Erase(t));
  EXPECT_EQ(store_.size(), 1u);
  EXPECT_TRUE(store_.Match(TriplePattern(0, 0, d.FindIri("x"))).empty());
  EXPECT_EQ(store_.Match(TriplePattern(d.FindIri("a"), 0, 0)).size(), 1u);
}

TEST_F(TripleStoreTest, EraseMatchingPattern) {
  Add("a", "p", "x");
  Add("a", "p", "y");
  Add("b", "q", "z");
  TermId a = store_.dict().FindIri("a");
  EXPECT_EQ(store_.EraseMatching(TriplePattern(a, 0, 0)), 2u);
  EXPECT_EQ(store_.size(), 1u);
}

TEST_F(TripleStoreTest, CountsAndDistincts) {
  Add("a", "p", "x");
  Add("a", "q", "x");
  Add("b", "p", "y");
  EXPECT_EQ(store_.NumDistinctSubjects(), 2u);
  EXPECT_EQ(store_.NumDistinctPredicates(), 2u);
  EXPECT_EQ(store_.NumDistinctObjects(), 2u);
}

TEST_F(TripleStoreTest, CardinalityEstimateIsExactForIndexPrefixes) {
  for (int i = 0; i < 50; ++i)
    Add("s" + std::to_string(i % 7), "p" + std::to_string(i % 3),
        "o" + std::to_string(i));
  const Dictionary& d = store_.dict();
  TermId s0 = d.FindIri("s0"), p1 = d.FindIri("p1");
  EXPECT_EQ(store_.EstimateCardinality(TriplePattern(s0, 0, 0)),
            store_.Count(TriplePattern(s0, 0, 0)));
  EXPECT_EQ(store_.EstimateCardinality(TriplePattern(0, p1, 0)),
            store_.Count(TriplePattern(0, p1, 0)));
  EXPECT_EQ(store_.EstimateCardinality(TriplePattern(s0, p1, 0)),
            store_.Count(TriplePattern(s0, p1, 0)));
  EXPECT_EQ(store_.EstimateCardinality(TriplePattern()), store_.size());
}

TEST_F(TripleStoreTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) Add("s", "p", "o" + std::to_string(i));
  size_t seen = 0;
  store_.Scan(TriplePattern(), [&](const Triple&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

TEST_F(TripleStoreTest, InterleavedInsertEraseScan) {
  Add("a", "p", "x");
  store_.FlushInserts();
  Add("b", "p", "y");  // in the delta, not yet compacted
  // Scan must see both (run ∪ delta merge).
  EXPECT_EQ(store_.Match(TriplePattern()).size(), 2u);
  Add("c", "p", "z");
  const Dictionary& d = store_.dict();
  store_.Erase(Triple(d.FindIri("a"), d.FindIri("p"), d.FindIri("x")));
  EXPECT_EQ(store_.Match(TriplePattern()).size(), 2u);
}

TEST_F(TripleStoreTest, AllSixIndexOrdersStreamSortedAndComplete) {
  tensor::Rng rng(99);
  for (int i = 0; i < 200; ++i)
    Add("s" + std::to_string(rng.NextUint(15)),
        "p" + std::to_string(rng.NextUint(4)),
        "o" + std::to_string(rng.NextUint(20)));
  const size_t total = store_.size();
  for (int oi = 0; oi < kNumIndexOrders; ++oi) {
    const IndexOrder order = static_cast<IndexOrder>(oi);
    auto positions = IndexOrderPositions(order);
    auto key_of = [&](const Triple& t) {
      auto at = [&](int pos) { return pos == 0 ? t.s : (pos == 1 ? t.p : t.o); };
      return std::array<TermId, 3>{at(positions[0]), at(positions[1]),
                                   at(positions[2])};
    };
    TripleCursor c = store_.OpenCursor(order, TriplePattern());
    Triple t, prev;
    size_t n = 0;
    bool first = true;
    while (c.Next(&t)) {
      if (!first) {
        EXPECT_LE(key_of(prev), key_of(t)) << IndexOrderName(order);
      }
      prev = t;
      first = false;
      ++n;
    }
    EXPECT_EQ(n, total) << IndexOrderName(order);
  }
}

TEST_F(TripleStoreTest, PsoStreamsSubjectsInOrderUnderBoundPredicate) {
  // The motivating case for the second index trio: a bound predicate with
  // the subject as the first free key position. PSO must answer it with a
  // seekable range streaming subjects in sorted order (the merge-join
  // input shape), and the range estimate must be exact.
  for (int i = 0; i < 40; ++i) {
    Add("s" + std::to_string(i % 10), "p0", "o" + std::to_string(i));
    Add("s" + std::to_string(i % 10), "p1", "z" + std::to_string(i));
  }
  TriplePattern pat(0, store_.dict().FindIri("p0"), 0);
  EXPECT_EQ(store_.EstimateRange(IndexOrder::kPso, pat),
            store_.Count(pat));
  TripleCursor c = store_.OpenCursor(IndexOrder::kPso, pat);
  Triple t;
  TermId prev_s = 0;
  size_t n = 0;
  while (c.Next(&t)) {
    EXPECT_EQ(t.p, pat.p);
    EXPECT_GE(t.s, prev_s);
    prev_s = t.s;
    ++n;
  }
  EXPECT_EQ(n, store_.Count(pat));
}

TEST_F(TripleStoreTest, OpsAndSopPrefixRangesAreExact) {
  for (int i = 0; i < 60; ++i)
    Add("s" + std::to_string(i % 6), "p" + std::to_string(i % 3),
        "o" + std::to_string(i % 5));
  const Dictionary& d = store_.dict();
  // OPS: (?,p,o) is the two-term prefix (o,p); (?,?,o) the one-term o.
  TriplePattern po(0, d.FindIri("p1"), d.FindIri("o2"));
  EXPECT_EQ(store_.EstimateRange(IndexOrder::kOps, po), store_.Count(po));
  TriplePattern o_only(0, 0, d.FindIri("o3"));
  EXPECT_EQ(store_.EstimateRange(IndexOrder::kOps, o_only),
            store_.Count(o_only));
  // SOP: (s,?,o) is the two-term prefix (s,o); (s,?,?) the one-term s.
  TriplePattern so(d.FindIri("s2"), 0, d.FindIri("o1"));
  EXPECT_EQ(store_.EstimateRange(IndexOrder::kSop, so), store_.Count(so));
  TriplePattern s_only(d.FindIri("s4"), 0, 0);
  EXPECT_EQ(store_.EstimateRange(IndexOrder::kSop, s_only),
            store_.Count(s_only));
}

TEST_F(TripleStoreTest, EraseRemovesFromAllSixIndexes) {
  Add("a", "p", "x");
  Add("b", "p", "x");
  const Dictionary& d = store_.dict();
  Triple t(d.FindIri("a"), d.FindIri("p"), d.FindIri("x"));
  ASSERT_TRUE(store_.Erase(t));
  Triple probe;
  for (int oi = 0; oi < kNumIndexOrders; ++oi) {
    TripleCursor c = store_.OpenCursor(static_cast<IndexOrder>(oi),
                                       TriplePattern());
    size_t n = 0;
    while (c.Next(&probe)) {
      EXPECT_FALSE(probe.s == t.s && probe.p == t.p && probe.o == t.o);
      ++n;
    }
    EXPECT_EQ(n, 1u) << IndexOrderName(static_cast<IndexOrder>(oi));
  }
}

TEST_F(TripleStoreTest, InsertEraseInsertLandsInIndexes) {
  // Regression for the delta path: a triple erased while its insert was
  // still in the log, then re-inserted, must end up in the next
  // generation exactly once — last-op-wins collapse, no double entry.
  Add("a", "p", "x");
  const Dictionary& d = store_.dict();
  Triple t(d.FindIri("a"), d.FindIri("p"), d.FindIri("x"));
  EXPECT_TRUE(store_.Erase(t));   // still in the log: cancels the insert
  EXPECT_TRUE(store_.Insert(t));  // logged again
  EXPECT_EQ(store_.Match(TriplePattern()).size(), 1u);
  store_.Compact();               // seal into the generation
  EXPECT_TRUE(store_.Erase(t));   // now in the runs: logged tombstone
  EXPECT_TRUE(store_.Insert(t));  // re-insert cancels the tombstone
  EXPECT_EQ(store_.Match(TriplePattern()).size(), 1u);
  EXPECT_TRUE(store_.Contains(t));
}

// ------------------------------------------- compressed-index accounting --

TEST(TripleStoreMemoryTest, CompressedIndexesBeatFlatRowsOnASeededGraph) {
  tensor::Rng rng(4242);
  TripleStore store;
  const size_t meter_before = tensor::MemoryMeter::Instance().TotalIndexBytes();
  for (int i = 0; i < 3000; ++i) {
    store.InsertIris("s" + std::to_string(rng.NextUint(200)),
                     "p" + std::to_string(rng.NextUint(12)),
                     "o" + std::to_string(rng.NextUint(400)));
  }
  const size_t raw = store.size() * sizeof(Triple);
  const size_t flat_six = raw * static_cast<size_t>(kNumIndexOrders);

  // Per-order bytes sum to the total, and every maintained order is
  // smaller than its flat sorted-row equivalent.
  size_t sum = 0;
  for (int oi = 0; oi < kNumIndexOrders; ++oi) {
    const IndexOrder order = static_cast<IndexOrder>(oi);
    ASSERT_TRUE(store.has_index(order));
    const size_t bytes = store.IndexBytes(order);
    EXPECT_GT(bytes, 0u) << IndexOrderName(order);
    EXPECT_LT(bytes, raw) << IndexOrderName(order);
    sum += bytes;
  }
  EXPECT_EQ(sum, store.TotalIndexBytes());

  // The headline claim: the full six-order set compresses to well under
  // the flat layout — and under the ISSUE's 2.4x-of-raw acceptance bar.
  EXPECT_LT(store.TotalIndexBytes(), flat_six / 2);
  EXPECT_LE(static_cast<double>(store.TotalIndexBytes()),
            2.4 * static_cast<double>(raw));

  // The thread-local MemoryMeter index pool tracks the same bytes.
  EXPECT_EQ(tensor::MemoryMeter::Instance().TotalIndexBytes() - meter_before,
            store.TotalIndexBytes());
  for (int oi = 0; oi < kNumIndexOrders; ++oi)
    EXPECT_GE(tensor::MemoryMeter::Instance().IndexBytes(oi),
              store.IndexBytes(static_cast<IndexOrder>(oi)));
}

TEST(TripleStoreMemoryTest, MeterReleasesOnDestructionAndMove) {
  auto& meter = tensor::MemoryMeter::Instance();
  const size_t before = meter.TotalIndexBytes();
  {
    TripleStore store;
    store.InsertIris("a", "p", "b");
    store.FlushInserts();
    EXPECT_GT(meter.TotalIndexBytes(), before);
    TripleStore moved = std::move(store);
    EXPECT_EQ(moved.size(), 1u);
    EXPECT_GT(meter.TotalIndexBytes(), before);  // bytes moved, not doubled
  }
  EXPECT_EQ(meter.TotalIndexBytes(), before);
}

TEST(TripleStoreMemoryTest, ClassicTrioHalvesIndexStorage) {
  TripleStore::Options trio_opts;
  trio_opts.index_set = TripleStore::Options::IndexSet::kClassicTrio;
  TripleStore six, trio(trio_opts);
  tensor::Rng rng(7);
  for (int i = 0; i < 1500; ++i) {
    const std::string s = "s" + std::to_string(rng.NextUint(100));
    const std::string p = "p" + std::to_string(rng.NextUint(8));
    const std::string o = "o" + std::to_string(rng.NextUint(150));
    six.InsertIris(s, p, o);
    trio.InsertIris(s, p, o);
  }
  EXPECT_EQ(six.num_indexes(), 6);
  EXPECT_EQ(trio.num_indexes(), 3);
  EXPECT_FALSE(trio.has_index(IndexOrder::kPso));
  EXPECT_FALSE(trio.has_index(IndexOrder::kOps));
  EXPECT_FALSE(trio.has_index(IndexOrder::kSop));
  EXPECT_EQ(trio.IndexBytes(IndexOrder::kPso), 0u);
  // Identical content, half the orders: roughly half the bytes (the
  // orders compress differently, so allow a broad band).
  EXPECT_LT(trio.TotalIndexBytes(), six.TotalIndexBytes() * 2 / 3);
  EXPECT_GT(trio.TotalIndexBytes(), six.TotalIndexBytes() / 3);
}

TEST(TripleStoreConfigTest, TrioAnswersEveryBoundCombinationExactly) {
  TripleStore::Options opts;
  opts.index_set = TripleStore::Options::IndexSet::kClassicTrio;
  opts.block_size = 3;  // stress block boundaries too
  TripleStore store(opts);
  tensor::Rng rng(31);
  for (int i = 0; i < 400; ++i)
    store.InsertIris("s" + std::to_string(rng.NextUint(25)),
                     "p" + std::to_string(rng.NextUint(5)),
                     "o" + std::to_string(rng.NextUint(30)));
  std::vector<Triple> all = store.Match(TriplePattern());
  tensor::Rng probe_rng(32);
  for (int trial = 0; trial < 60; ++trial) {
    const Triple& probe = all[probe_rng.NextUint(all.size())];
    TriplePattern pat;
    if (probe_rng.NextFloat() < 0.5f) pat.s = probe.s;
    if (probe_rng.NextFloat() < 0.5f) pat.p = probe.p;
    if (probe_rng.NextFloat() < 0.5f) pat.o = probe.o;
    size_t want = 0;
    for (const Triple& t : all)
      if (pat.Matches(t)) ++want;
    EXPECT_EQ(store.Count(pat), want);
    // Cardinality estimates stay exact with the trio: every bound
    // combination is still a full prefix of SPO, POS or OSP.
    EXPECT_EQ(store.EstimateCardinality(pat), want);
  }
}

TEST(TripleStoreConfigTest, CursorStreamsAgreeAcrossBlockSizes) {
  // Cursor-equivalence: the same graph under block sizes 1 (every row its
  // own block), a mid-size, and one block for everything must stream
  // identical sequences on every index order — and match a flat
  // sort-by-permuted-key reference.
  std::vector<std::array<std::string, 3>> facts;
  tensor::Rng rng(55);
  for (int i = 0; i < 250; ++i)
    facts.push_back({"s" + std::to_string(rng.NextUint(20)),
                     "p" + std::to_string(rng.NextUint(4)),
                     "o" + std::to_string(rng.NextUint(25))});

  std::vector<std::unique_ptr<TripleStore>> stores;
  for (size_t bs : {1u, 16u, 100000u}) {
    TripleStore::Options opts;
    opts.block_size = bs;
    auto store = std::make_unique<TripleStore>(opts);
    for (const auto& f : facts) store->InsertIris(f[0], f[1], f[2]);
    stores.push_back(std::move(store));
  }

  for (int oi = 0; oi < kNumIndexOrders; ++oi) {
    const IndexOrder order = static_cast<IndexOrder>(oi);
    // Flat reference: permuted-key sort of the deduplicated triples.
    std::vector<Triple> want = stores[0]->Match(TriplePattern());
    auto positions = IndexOrderPositions(order);
    std::sort(want.begin(), want.end(), [&](const Triple& a, const Triple& b) {
      auto at = [&](const Triple& t, int pos) {
        return pos == 0 ? t.s : (pos == 1 ? t.p : t.o);
      };
      return std::array<TermId, 3>{at(a, positions[0]), at(a, positions[1]),
                                   at(a, positions[2])} <
             std::array<TermId, 3>{at(b, positions[0]), at(b, positions[1]),
                                   at(b, positions[2])};
    });
    for (const auto& store : stores) {
      TripleCursor c = store->OpenCursor(order, TriplePattern());
      Triple t;
      size_t i = 0;
      while (c.Next(&t)) {
        ASSERT_LT(i, want.size());
        EXPECT_EQ(t, want[i]) << IndexOrderName(order) << " row " << i;
        ++i;
      }
      EXPECT_EQ(i, want.size()) << IndexOrderName(order);
    }
  }
}

/// Property test: Match() agrees with a naive scan-and-filter oracle on a
/// randomized store, across all 8 bound/unbound pattern shapes.
class TripleStorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TripleStorePropertyTest, MatchAgreesWithNaiveOracle) {
  tensor::Rng rng(GetParam());
  // The store configuration rotates with the seed so the oracle also
  // covers the trio index subset and odd compressed-block boundaries.
  TripleStore::Options opts;
  opts.block_size = static_cast<size_t>(GetParam());
  if (GetParam() % 2 == 0)
    opts.index_set = TripleStore::Options::IndexSet::kClassicTrio;
  TripleStore store(opts);
  std::vector<Triple> inserted;
  for (int i = 0; i < 300; ++i) {
    std::string s = "s" + std::to_string(rng.NextUint(20));
    std::string p = "p" + std::to_string(rng.NextUint(5));
    std::string o = "o" + std::to_string(rng.NextUint(30));
    store.InsertIris(s, p, o);
  }
  store.Scan(TriplePattern(), [&](const Triple& t) {
    inserted.push_back(t);
    return true;
  });
  // Randomly delete a tenth.
  for (size_t i = 0; i < inserted.size() / 10; ++i)
    store.Erase(inserted[rng.NextUint(inserted.size())]);

  std::vector<Triple> all = store.Match(TriplePattern());
  for (int trial = 0; trial < 50; ++trial) {
    const Triple& probe = all[rng.NextUint(all.size())];
    TriplePattern pat;
    if (rng.NextFloat() < 0.5f) pat.s = probe.s;
    if (rng.NextFloat() < 0.5f) pat.p = probe.p;
    if (rng.NextFloat() < 0.5f) pat.o = probe.o;

    std::vector<Triple> got = store.Match(pat);
    std::vector<Triple> want;
    for (const Triple& t : all)
      if (pat.Matches(t)) want.push_back(t);
    auto key = [](const Triple& t) {
      return std::tuple(t.s, t.p, t.o);
    };
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(key(got[i]), key(want[i]));
    // Cardinality estimate never undercounts the true match size for
    // index-prefix patterns.
    EXPECT_GE(store.EstimateCardinality(pat) + 1, want.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(TripleStoreConcurrencyTest, ConcurrentReadersOnADirtyStoreStayExact) {
  // MVCC read path: several readers hitting a dirty store (hundreds of
  // uncompacted log entries) each open their own snapshot and merge the
  // delta over the shared immutable generation — no reader ever
  // rebuilds an index, and every count/estimate is exact. The first
  // snapshot of the epoch builds the shared DeltaView under mu_; the
  // rest reuse it (this test under the tsan preset pins the cache
  // handoff and the shared-generation refcounting).
  TripleStore store;
  tensor::Rng rng(77);
  size_t p0_expected = 0;
  for (int i = 0; i < 400; ++i) {
    const uint64_t p = rng.NextUint(4);
    if (store.InsertIris("s" + std::to_string(rng.NextUint(40)),
                         "p" + std::to_string(p),
                         "o" + std::to_string(rng.NextUint(50))) &&
        p == 0)
      ++p0_expected;
  }
  const TermId p0 = store.dict().FindIri("p0");
  const size_t total = store.size();
  ASSERT_NE(p0, kNullTermId);
  ASSERT_GT(store.GetStats().delta_ops, 0u) << "store should still be dirty";

  constexpr int kReaders = 8;
  std::vector<size_t> counts(kReaders, 0), estimates(kReaders, 0);
  {
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        Snapshot snap = store.OpenSnapshot();
        TriplePattern by_pred;
        by_pred.p = p0;
        counts[r] = snap.Count(by_pred);
        estimates[r] = snap.EstimateCardinality(TriplePattern());
      });
    }
    for (std::thread& t : readers) t.join();
  }
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(counts[r], p0_expected) << "reader " << r;
    EXPECT_EQ(estimates[r], total) << "reader " << r;
  }
  // The reads left the store exactly as dirty as they found it.
  EXPECT_GT(store.GetStats().delta_ops, 0u);
}

// ------------------------------------------------------- MVCC snapshots --

TEST(TripleStoreSnapshotTest, SnapshotIsUnaffectedByLaterMutations) {
  TripleStore store;
  store.InsertIris("a", "p", "x");
  store.InsertIris("b", "p", "y");
  const Dictionary& d = store.dict();
  const Triple ax(d.FindIri("a"), d.FindIri("p"), d.FindIri("x"));

  Snapshot snap = store.OpenSnapshot();
  const uint64_t epoch = snap.epoch();
  const std::vector<Triple> before = snap.Match(TriplePattern());
  ASSERT_EQ(before.size(), 2u);

  // Mutate underneath: erase one, add two, then compact.
  EXPECT_TRUE(store.Erase(ax));
  store.InsertIris("c", "p", "z");
  store.InsertIris("a", "q", "w");
  EXPECT_EQ(snap.Match(TriplePattern()), before);
  store.Compact();
  EXPECT_EQ(snap.Match(TriplePattern()), before);
  EXPECT_EQ(snap.epoch(), epoch);
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap.Contains(ax));
  EXPECT_FALSE(store.Contains(ax));
  EXPECT_EQ(store.size(), 3u);
}

TEST(TripleStoreSnapshotTest, SnapshotOutlivesTheStore) {
  Snapshot snap;
  Triple t;
  {
    TripleStore store;
    for (int i = 0; i < 50; ++i)
      store.InsertIris("s" + std::to_string(i), "p", "o");
    const Dictionary& d = store.dict();
    t = Triple(d.FindIri("s7"), d.FindIri("p"), d.FindIri("o"));
    snap = store.OpenSnapshot();
  }  // store destroyed; the snapshot pins the generation and delta view
  EXPECT_EQ(snap.size(), 50u);
  EXPECT_TRUE(snap.Contains(t));
  EXPECT_EQ(snap.Match(TriplePattern()).size(), 50u);
}

TEST(TripleStoreSnapshotTest, EstimatesStayExactOnADirtyStore) {
  // The delta view keeps only *definite* entries (inserts the generation
  // lacks, tombstones for rows it has), so every range estimate is
  // exact even with a large uncompacted delta in play.
  TripleStore store;
  tensor::Rng rng(2024);
  for (int i = 0; i < 300; ++i)
    store.InsertIris("s" + std::to_string(rng.NextUint(25)),
                     "p" + std::to_string(rng.NextUint(4)),
                     "o" + std::to_string(rng.NextUint(30)));
  store.Compact();
  // Dirty it: erase some sealed rows, insert fresh ones, re-insert an
  // erased one (the log holds redundant + cancelling entries).
  std::vector<Triple> all = store.Match(TriplePattern());
  for (size_t i = 0; i < 40; ++i) store.Erase(all[rng.NextUint(all.size())]);
  for (int i = 0; i < 60; ++i)
    store.InsertIris("t" + std::to_string(rng.NextUint(20)),
                     "p" + std::to_string(rng.NextUint(4)),
                     "o" + std::to_string(rng.NextUint(30)));
  ASSERT_GT(store.GetStats().delta_ops, 0u);

  Snapshot snap = store.OpenSnapshot();
  EXPECT_EQ(snap.size(), snap.Match(TriplePattern()).size());
  tensor::Rng probe(2025);
  std::vector<Triple> live = snap.Match(TriplePattern());
  for (int trial = 0; trial < 60; ++trial) {
    const Triple& p = live[probe.NextUint(live.size())];
    TriplePattern pat;
    if (probe.NextFloat() < 0.5f) pat.s = p.s;
    if (probe.NextFloat() < 0.5f) pat.p = p.p;
    if (probe.NextFloat() < 0.5f) pat.o = p.o;
    const size_t want = snap.Count(pat);
    EXPECT_EQ(snap.EstimateCardinality(pat), want);
    EXPECT_EQ(snap.EstimateRange(snap.ChooseIndex(pat), pat), want);
  }
  // And compaction does not change what any reader sees.
  store.Compact();
  EXPECT_EQ(store.Match(TriplePattern()), live);
}

TEST(TripleStoreSnapshotTest, CursorsAreSliceableOnlyWhenRangeIsClean) {
  TripleStore store;
  for (int i = 0; i < 100; ++i)
    store.InsertIris("s" + std::to_string(i), "p", "o");
  store.Compact();
  Snapshot clean = store.OpenSnapshot();
  EXPECT_TRUE(
      clean.OpenCursor(IndexOrder::kSpo, TriplePattern()).sliceable());

  store.InsertIris("zz", "p", "o");  // dirties the full-scan range
  Snapshot dirty = store.OpenSnapshot();
  EXPECT_EQ(dirty.delta_size(), 1u);
  EXPECT_FALSE(
      dirty.OpenCursor(IndexOrder::kSpo, TriplePattern()).sliceable());
  // A bound range the delta entry does not touch stays sliceable.
  TriplePattern s0(store.dict().FindIri("s0"), 0, 0);
  EXPECT_TRUE(dirty.OpenCursor(IndexOrder::kSpo, s0).sliceable());
}

TEST(TripleStoreSnapshotTest, WriterTriggeredCompactionKeepsLogBounded) {
  TripleStore::Options opts;
  opts.delta_compact_threshold = 32;
  TripleStore store(opts);
  for (int i = 0; i < 500; ++i)
    store.InsertIris("s" + std::to_string(i), "p", "o" + std::to_string(i));
  const TripleStore::Stats stats = store.GetStats();
  EXPECT_GT(stats.compactions, 0u);
  // The trigger is max(32, generation/4), so the log stays within one
  // trigger window of the geometric bound.
  EXPECT_LE(stats.delta_ops, std::max<size_t>(32, stats.generation_triples / 4));
  EXPECT_EQ(store.size(), 500u);
}

// ------------------------------------------------------------- GetStats --

TEST(TripleStoreStatsTest, StatsReportStorageStateWithoutCompacting) {
  TripleStore store;
  tensor::Rng rng(11);
  for (int i = 0; i < 200; ++i)
    store.InsertIris("s" + std::to_string(rng.NextUint(30)),
                     "p" + std::to_string(rng.NextUint(5)),
                     "o" + std::to_string(rng.NextUint(40)));
  store.Compact();
  const size_t sealed = store.size();
  std::vector<Triple> all = store.Match(TriplePattern());
  ASSERT_TRUE(store.Erase(all[0]));
  ASSERT_TRUE(store.Erase(all[1]));
  store.InsertIris("fresh", "p0", "fresh");

  const TripleStore::Stats stats = store.GetStats();
  EXPECT_EQ(stats.num_triples, sealed - 2 + 1);
  EXPECT_EQ(stats.generation_triples, sealed);
  EXPECT_EQ(stats.delta_ops, 3u);
  EXPECT_EQ(stats.delta_inserts, 1u);
  EXPECT_EQ(stats.delta_tombstones, 2u);
  EXPECT_EQ(stats.epoch, stats.generation_epoch + 3);
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_EQ(stats.live_generations, 1);
  size_t sum = 0;
  for (int oi = 0; oi < kNumIndexOrders; ++oi) {
    EXPECT_GT(stats.run_bytes[static_cast<size_t>(oi)], 0u);
    sum += stats.run_bytes[static_cast<size_t>(oi)];
  }
  EXPECT_EQ(stats.total_run_bytes, sum);
  // Taking stats was pure: the delta is still uncompacted.
  EXPECT_EQ(store.GetStats().delta_ops, 3u);

  // A pinned superseded generation shows up in live_generations until
  // the snapshot drops.
  {
    Snapshot pin = store.OpenSnapshot();
    store.Compact();
    EXPECT_EQ(store.GetStats().live_generations, 2);
  }
  EXPECT_EQ(store.GetStats().live_generations, 1);
  EXPECT_EQ(store.GetStats().delta_ops, 0u);
}

// ------------------------------- KGNET_DELTA_COMPACT_THRESHOLD parsing --

TEST(CompactThresholdEnvTest, AcceptsPlainPositiveIntegers) {
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("1"), 1u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("4096"), 4096u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("  42  "), 42u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("\t7\t"), 7u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("001"), 1u);
}

TEST(CompactThresholdEnvTest, RejectsEverythingElse) {
  // Same strict contract as ThreadPool::ParseThreadCountEnv: a plain
  // positive decimal integer or nothing. 0 is the error value.
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv(nullptr), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv(""), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("   "), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("0"), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("-2"), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("+4"), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("abc"), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("12x"), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("4 2"), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("3.5"), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("0x10"), 0u);
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("1e3"), 0u);
  // Overflow past size_t is rejected, not wrapped.
  EXPECT_EQ(TripleStore::ParseCompactThresholdEnv("99999999999999999999999"),
            0u);
}

}  // namespace
}  // namespace kgnet::rdf
