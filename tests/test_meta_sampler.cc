#include "core/meta_sampler.h"

#include <gtest/gtest.h>

#include "workload/dblp_gen.h"

namespace kgnet::core {
namespace {

using workload::DblpSchema;

/// Hand-built KG:
///   t1 a T ; t1 -> m1 -> far1 (2 hops out)
///   in1 -> t1 (incoming)
///   t1 label L1 (supervision)
///   island (unreachable)
class MetaSamplerTest : public ::testing::Test {
 protected:
  MetaSamplerTest() {
    const std::string type = std::string(rdf::kRdfType);
    store_.InsertIris("t1", type, "T");
    store_.InsertIris("t2", type, "T");
    store_.InsertIris("t1", "out", "m1");
    store_.InsertIris("m1", "out", "far1");
    store_.InsertIris("far1", "out", "far2");
    store_.InsertIris("in1", "in", "t1");
    store_.InsertIris("before_in1", "in", "in1");
    store_.InsertIris("t1", "label", "L1");
    store_.InsertIris("t2", "label", "L2");
    store_.InsertIris("island", "out", "island2");
    store_.InsertIris("m1", type, "M");
  }

  MetaSampleSpec Spec(SampleDirection d, uint32_t h) {
    MetaSampleSpec s;
    s.target_type_iri = "T";
    s.supervision_predicate_iris = {"label"};
    s.direction = d;
    s.hops = h;
    return s;
  }

  bool Has(const rdf::TripleStore& kg, const std::string& s,
           const std::string& p, const std::string& o) {
    rdf::TermId si = kg.dict().FindIri(s), pi = kg.dict().FindIri(p),
                oi = kg.dict().FindIri(o);
    if (si == rdf::kNullTermId || pi == rdf::kNullTermId ||
        oi == rdf::kNullTermId)
      return false;
    return kg.Contains(rdf::Triple(si, pi, oi));
  }

  rdf::TripleStore store_;
};

TEST_F(MetaSamplerTest, D1H1KeepsOutgoingOneHop) {
  MetaSampler sampler(&store_);
  MetaSampleStats stats;
  auto kg = sampler.Extract(Spec(SampleDirection::kOutgoing, 1), &stats);
  ASSERT_TRUE(kg.ok()) << kg.status();
  EXPECT_TRUE(Has(**kg, "t1", "out", "m1"));
  EXPECT_FALSE(Has(**kg, "m1", "out", "far1"));   // 2 hops out
  EXPECT_FALSE(Has(**kg, "in1", "in", "t1"));     // incoming
  EXPECT_FALSE(Has(**kg, "island", "out", "island2"));
  EXPECT_TRUE(Has(**kg, "t1", "label", "L1"));    // supervision kept
  EXPECT_TRUE(Has(**kg, "t2", "label", "L2"));
  EXPECT_EQ(stats.seed_nodes, 2u);
  EXPECT_LT(stats.extracted_triples, stats.original_triples);
  EXPECT_GT(stats.reduction_ratio(), 0.0);
}

TEST_F(MetaSamplerTest, D2H1AddsIncomingEdges) {
  MetaSampler sampler(&store_);
  auto kg = sampler.Extract(Spec(SampleDirection::kBidirectional, 1));
  ASSERT_TRUE(kg.ok());
  EXPECT_TRUE(Has(**kg, "in1", "in", "t1"));
  EXPECT_FALSE(Has(**kg, "before_in1", "in", "in1"));  // 2 hops in
}

TEST_F(MetaSamplerTest, D1H2ReachesTwoHops) {
  MetaSampler sampler(&store_);
  auto kg = sampler.Extract(Spec(SampleDirection::kOutgoing, 2));
  ASSERT_TRUE(kg.ok());
  EXPECT_TRUE(Has(**kg, "m1", "out", "far1"));
  EXPECT_FALSE(Has(**kg, "far1", "out", "far2"));  // 3 hops
}

TEST_F(MetaSamplerTest, TypeTriplesOfIncludedNodesKept) {
  MetaSampler sampler(&store_);
  auto kg = sampler.Extract(Spec(SampleDirection::kOutgoing, 1));
  ASSERT_TRUE(kg.ok());
  EXPECT_TRUE(Has(**kg, "t1", std::string(rdf::kRdfType), "T"));
  EXPECT_TRUE(Has(**kg, "m1", std::string(rdf::kRdfType), "M"));
}

TEST_F(MetaSamplerTest, ErrorsOnUnknownTargets) {
  MetaSampler sampler(&store_);
  MetaSampleSpec s = Spec(SampleDirection::kOutgoing, 1);
  s.target_type_iri = "Nonexistent";
  EXPECT_FALSE(sampler.Extract(s).ok());
  s = Spec(SampleDirection::kOutgoing, 1);
  s.supervision_predicate_iris = {"nope"};
  EXPECT_FALSE(sampler.Extract(s).ok());
}

TEST_F(MetaSamplerTest, LabelsAndDescription) {
  MetaSampleSpec s = Spec(SampleDirection::kOutgoing, 1);
  EXPECT_EQ(SampleSpecLabel(s), "d1h1");
  s.direction = SampleDirection::kBidirectional;
  s.hops = 2;
  EXPECT_EQ(SampleSpecLabel(s), "d2h2");
  const std::string sparql = MetaSampler::DescribeAsSparql(s);
  EXPECT_NE(sparql.find("CONSTRUCT"), std::string::npos);
  EXPECT_NE(sparql.find("T"), std::string::npos);
}

TEST(MetaSamplerDblpTest, ReductionOnRealisticKg) {
  rdf::TripleStore store;
  workload::DblpOptions opts;
  opts.num_papers = 300;
  opts.num_authors = 150;
  opts.num_venues = 5;
  opts.num_affiliations = 10;
  opts.periphery_scale = 2.0;
  ASSERT_TRUE(workload::GenerateDblp(opts, &store).ok());

  MetaSampler sampler(&store);
  MetaSampleSpec spec;
  spec.target_type_iri = DblpSchema::Publication();
  spec.supervision_predicate_iris = {DblpSchema::PublishedIn()};
  spec.direction = SampleDirection::kOutgoing;
  spec.hops = 1;
  MetaSampleStats stats;
  auto kg = sampler.Extract(spec, &stats);
  ASSERT_TRUE(kg.ok()) << kg.status();
  // The periphery (topics, editors, events) must be pruned away: expect a
  // substantial reduction.
  EXPECT_GT(stats.reduction_ratio(), 0.3);
  // Every paper keeps its label edge.
  rdf::TermId label = (*kg)->dict().FindIri(DblpSchema::PublishedIn());
  ASSERT_NE(label, rdf::kNullTermId);
  EXPECT_EQ((*kg)->Count(rdf::TriplePattern(rdf::kNullTermId, label,
                                            rdf::kNullTermId)),
            300u);
}

}  // namespace
}  // namespace kgnet::core
