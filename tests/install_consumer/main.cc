// Out-of-tree smoke test for the installed kgnet package: loads a tiny
// graph into a trio-configured compressed store, runs a SPARQL query
// through the streaming engine, and checks the rows. Exercises the
// kgnet::sparql -> kgnet::rdf -> kgnet::common link chain and the
// installed include layout (src-relative includes, like in-tree code).
#include <cstdio>

#include "rdf/triple_store.h"
#include "sparql/engine.h"

int main() {
  using namespace kgnet;

  rdf::TripleStore::Options opts;
  opts.index_set = rdf::TripleStore::Options::IndexSet::kClassicTrio;
  opts.block_size = 2;
  rdf::TripleStore store(opts);
  store.InsertIris("alice", "knows", "bob");
  store.InsertIris("bob", "knows", "carol");
  store.InsertIris("carol", "knows", "alice");
  store.InsertIris("alice", "likes", "carol");

  sparql::QueryEngine engine(&store);
  auto result = engine.ExecuteString(
      "SELECT ?a ?c WHERE { ?a <knows> ?b . ?b <knows> ?c . }");
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (result->NumRows() != 3) {
    std::fprintf(stderr, "expected 3 rows, got %zu\n", result->NumRows());
    return 1;
  }
  if (store.TotalIndexBytes() == 0 || store.num_indexes() != 3) {
    std::fprintf(stderr, "index accounting looks wrong\n");
    return 1;
  }
  std::printf("kgnet install-tree consumer: OK (%zu rows, %zu index bytes)\n",
              result->NumRows(), store.TotalIndexBytes());
  return 0;
}
