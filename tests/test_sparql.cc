#include <gtest/gtest.h>

#include "sparql/engine.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"

namespace kgnet::sparql {
namespace {

using rdf::Term;

// ---------------------------------------------------------------- lexer --

TEST(LexerTest, TokenizesCoreForms) {
  auto toks = Tokenize("SELECT ?x WHERE { ?x <http://p> \"lit\" . }");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 9u);
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*toks)[1].kind, TokenKind::kVar);
  EXPECT_EQ((*toks)[1].text, "x");
  EXPECT_TRUE((*toks)[2].IsKeyword("WHERE"));
  EXPECT_TRUE((*toks)[3].IsPunct("{"));
}

TEST(LexerTest, DistinguishesIriFromLessThan) {
  auto toks = Tokenize("FILTER(?x < 5) ?y <http://iri>");
  ASSERT_TRUE(toks.ok());
  bool saw_lt = false, saw_iri = false;
  for (const auto& t : *toks) {
    if (t.IsPunct("<")) saw_lt = true;
    if (t.kind == TokenKind::kIri && t.text == "http://iri") saw_iri = true;
  }
  EXPECT_TRUE(saw_lt);
  EXPECT_TRUE(saw_iri);
}

TEST(LexerTest, PrefixedNamesKeepDotsButNotTrailingDot) {
  auto toks = Tokenize("sql:UDFS.getNodeClass dblp:title.");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "sql:UDFS.getNodeClass");
  EXPECT_EQ((*toks)[1].text, "dblp:title");
  EXPECT_TRUE((*toks)[2].IsPunct("."));
}

TEST(LexerTest, DollarVariables) {
  auto toks = Tokenize("$m ?n");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kVar);
  EXPECT_EQ((*toks)[0].text, "m");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto toks = Tokenize("SELECT # all of it\n ?x");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].kind, TokenKind::kVar);
}

// --------------------------------------------------------------- parser --

TEST(ParserTest, ParsesSelectWithPrefixes) {
  auto q = ParseQuery(
      "PREFIX dblp: <https://dblp.org/rdf/>\n"
      "SELECT ?paper ?title WHERE {\n"
      "  ?paper a dblp:Publication .\n"
      "  ?paper dblp:title ?title .\n"
      "} LIMIT 5 OFFSET 2");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, QueryKind::kSelect);
  ASSERT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->select[0].alias, "paper");
  ASSERT_EQ(q->where.triples.size(), 2u);
  // 'a' expanded to rdf:type; prefix resolved.
  EXPECT_EQ(q->where.triples[0].p.term.lexical, std::string(rdf::kRdfType));
  EXPECT_EQ(q->where.triples[1].p.term.lexical,
            "https://dblp.org/rdf/title");
  EXPECT_EQ(q->limit, 5);
  EXPECT_EQ(q->offset, 2);
}

TEST(ParserTest, ParsesSemicolonPredicateLists) {
  auto q = ParseQuery(
      "SELECT ?s WHERE { ?s <p1> ?a ; <p2> ?b . }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->where.triples.size(), 2u);
  EXPECT_EQ(q->where.triples[0].s.var, "s");
  EXPECT_EQ(q->where.triples[1].s.var, "s");
  EXPECT_EQ(q->where.triples[1].p.term.lexical, "p2");
}

TEST(ParserTest, ParsesFilters) {
  auto q = ParseQuery(
      "SELECT ?s WHERE { ?s <p> ?v . FILTER(?v > 3 && ?v != 7) }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->where.filters.size(), 1u);
  EXPECT_EQ(q->where.filters[0]->op, ExprOp::kAnd);
}

TEST(ParserTest, ParsesDistinct) {
  auto q = ParseQuery("SELECT DISTINCT ?s WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
}

TEST(ParserTest, ParsesAsk) {
  auto q = ParseQuery("ASK { <a> <p> <b> . }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, QueryKind::kAsk);
}

TEST(ParserTest, ParsesInsertData) {
  auto q = ParseQuery("INSERT DATA { <a> <p> <b> . <a> <p> <c> . }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, QueryKind::kInsertData);
  EXPECT_EQ(q->update_template.size(), 2u);
}

TEST(ParserTest, ParsesDeleteWhere) {
  auto q = ParseQuery(
      "DELETE { ?m ?p ?o } WHERE { ?m a <http://kgnet/NodeClassifier> . "
      "?m ?p ?o . }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, QueryKind::kDeleteWhere);
  EXPECT_EQ(q->update_template.size(), 1u);
  EXPECT_EQ(q->where.triples.size(), 2u);
}

TEST(ParserTest, ParsesUdfProjection) {
  auto q = ParseQuery(
      "SELECT ?t sql:UDFS.getNodeClass($m, ?paper) AS ?venue "
      "WHERE { ?paper <title> ?t . }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->select[1].alias, "venue");
  EXPECT_EQ(q->select[1].expr->op, ExprOp::kCall);
  EXPECT_EQ(q->select[1].expr->fn, "sql:UDFS.getNodeClass");
  EXPECT_EQ(q->select[1].expr->args.size(), 2u);
}

TEST(ParserTest, ParsesSubSelect) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x <p> ?y . { SELECT ?y WHERE { ?y <q> ?z . } } }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->where.subselects.size(), 1u);
  EXPECT_EQ(q->where.subselects[0]->select[0].alias, "y");
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseQuery("SELECT WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> }").ok());
  EXPECT_FALSE(ParseQuery("FROB ?x").ok());
}

// Regression: an empty or whitespace-only query used to walk off the
// token vector in Parser::Peek/Next (UB, crashed under ASan). It must be
// a graceful parse error instead.
TEST(ParserTest, EmptyQueryIsGracefulParseError) {
  auto r = ParseQuery("");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("empty query"), std::string::npos)
      << r.status();
}

TEST(ParserTest, WhitespaceOnlyQueryIsGracefulParseError) {
  for (const char* text : {" ", "\n\t  \r\n", "# just a comment\n",
                           "PREFIX x: <http://x/>"}) {
    auto r = ParseQuery(text);
    ASSERT_FALSE(r.ok()) << "input: '" << text << "'";
    EXPECT_NE(r.status().ToString().find("empty query"), std::string::npos)
        << r.status();
  }
}

TEST(ParserTest, TruncatedMidClauseQueriesFailCleanly) {
  // Every prefix cut mid-clause must produce a parse error, never a
  // crash or an accepted query.
  for (const char* text :
       {"SELECT", "SELECT ?x", "SELECT ?x WHERE", "SELECT ?x WHERE {",
        "SELECT ?x WHERE { ?x", "SELECT ?x WHERE { ?x <p>",
        "SELECT ?x WHERE { ?x <p> ?y", "SELECT ?x WHERE { ?x <p> ?y .",
        "SELECT ?x WHERE { FILTER(?x =", "ASK {", "ASK { ?x",
        "INSERT DATA {", "DELETE { ?x <p> ?y } WHERE",
        "SELECT ?x WHERE { OPTIONAL {", "SELECT ?x WHERE { { ?x <p> ?y }",
        "SELECT ?x WHERE { { ?x <p> ?y } UNION"}) {
    auto r = ParseQuery(text);
    EXPECT_FALSE(r.ok()) << "accepted truncated query: '" << text << "'";
  }
}

// --------------------------------------------------------------- engine --

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(&store_) {
    store_.InsertIris("http://x/p1", std::string(rdf::kRdfType),
                      "http://x/Paper");
    store_.InsertIris("http://x/p2", std::string(rdf::kRdfType),
                      "http://x/Paper");
    store_.Insert(Term::Iri("http://x/p1"), Term::Iri("http://x/title"),
                  Term::Literal("Alpha"));
    store_.Insert(Term::Iri("http://x/p2"), Term::Iri("http://x/title"),
                  Term::Literal("Beta"));
    store_.Insert(Term::Iri("http://x/p1"), Term::Iri("http://x/year"),
                  Term::IntLiteral(2001));
    store_.Insert(Term::Iri("http://x/p2"), Term::Iri("http://x/year"),
                  Term::IntLiteral(2010));
    store_.InsertIris("http://x/p1", "http://x/cites", "http://x/p2");
  }
  rdf::TripleStore store_;
  QueryEngine engine_;
};

TEST_F(EngineTest, BasicBgpJoin) {
  auto r = engine_.ExecuteString(
      "PREFIX x: <http://x/> SELECT ?t WHERE { "
      "?p a x:Paper . ?p x:title ?t . ?p x:cites ?q . }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0][0].lexical, "Alpha");
}

TEST_F(EngineTest, FilterNumericComparison) {
  auto r = engine_.ExecuteString(
      "PREFIX x: <http://x/> SELECT ?t WHERE { "
      "?p x:title ?t . ?p x:year ?y . FILTER(?y >= 2005) }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0][0].lexical, "Beta");
}

TEST_F(EngineTest, FilterStringEquality) {
  auto r = engine_.ExecuteString(
      "PREFIX x: <http://x/> SELECT ?p WHERE { "
      "?p x:title ?t . FILTER(?t = \"Alpha\") }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0][0].lexical, "http://x/p1");
}

TEST_F(EngineTest, DistinctAndLimit) {
  auto r = engine_.ExecuteString(
      "SELECT DISTINCT ?type WHERE { ?s a ?type . } LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 1u);  // only x:Paper
}

TEST_F(EngineTest, AskTrueAndFalse) {
  auto yes = engine_.ExecuteString(
      "PREFIX x: <http://x/> ASK { x:p1 x:cites x:p2 . }");
  ASSERT_TRUE(yes.ok()) << yes.status();
  EXPECT_TRUE(yes->ask_result);
  auto no = engine_.ExecuteString(
      "PREFIX x: <http://x/> ASK { x:p2 x:cites x:p1 . }");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->ask_result);
}

TEST_F(EngineTest, InsertDataThenQuery) {
  auto ins = engine_.ExecuteString(
      "INSERT DATA { <http://x/p3> <http://x/title> \"Gamma\" . }");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(ins->num_inserted, 1u);
  auto r = engine_.ExecuteString(
      "PREFIX x: <http://x/> SELECT ?t WHERE { x:p3 x:title ?t . }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
}

TEST_F(EngineTest, InsertWhereInstantiatesTemplate) {
  auto ins = engine_.ExecuteString(
      "PREFIX x: <http://x/> INSERT { ?p x:flagged \"yes\" } "
      "WHERE { ?p a x:Paper . }");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(ins->num_inserted, 2u);
}

TEST_F(EngineTest, DeleteWhereRemovesMatches) {
  auto del = engine_.ExecuteString(
      "PREFIX x: <http://x/> DELETE { ?p x:title ?t } "
      "WHERE { ?p x:title ?t . }");
  ASSERT_TRUE(del.ok()) << del.status();
  EXPECT_EQ(del->num_deleted, 2u);
  auto r = engine_.ExecuteString(
      "PREFIX x: <http://x/> SELECT ?t WHERE { ?p x:title ?t . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
}

TEST_F(EngineTest, UdfInProjection) {
  engine_.udfs().Register(
      "my:upper", [](const std::vector<Term>& args) -> Result<Term> {
        std::string out = args[0].lexical;
        for (char& c : out) c = static_cast<char>(std::toupper(c));
        return Term::Literal(out);
      });
  auto r = engine_.ExecuteString(
      "PREFIX x: <http://x/> SELECT my:upper(?t) AS ?u WHERE { "
      "?p x:title ?t . } ");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 2u);
  EXPECT_EQ(engine_.udfs().CallCount("my:upper"), 2u);
}

TEST_F(EngineTest, SubSelectJoinsWithOuter) {
  auto r = engine_.ExecuteString(
      "PREFIX x: <http://x/> SELECT ?t WHERE { "
      "?p x:title ?t . { SELECT ?p WHERE { ?p x:cites ?q . } } }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0][0].lexical, "Alpha");
}

TEST_F(EngineTest, RepeatedVariableInPattern) {
  store_.InsertIris("http://x/self", "http://x/cites", "http://x/self");
  auto r = engine_.ExecuteString(
      "PREFIX x: <http://x/> SELECT ?p WHERE { ?p x:cites ?p . }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0][0].lexical, "http://x/self");
}

TEST_F(EngineTest, UnknownConstantYieldsEmpty) {
  auto r = engine_.ExecuteString(
      "SELECT ?o WHERE { <http://nowhere> <http://nope> ?o . }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 0u);
}

TEST_F(EngineTest, CartesianProductOfDisconnectedPatterns) {
  auto r = engine_.ExecuteString(
      "PREFIX x: <http://x/> SELECT ?a ?b WHERE { "
      "?a x:title ?t1 . ?b x:year ?y1 . }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 4u);  // 2 x 2
}

}  // namespace
}  // namespace kgnet::sparql
