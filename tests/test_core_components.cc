// Unit tests for KGMeta, the embedding store, the method selector and the
// JSON parser.
#include <gtest/gtest.h>

#include <cmath>

#include "core/embedding_store.h"
#include "core/json.h"
#include "core/kgmeta.h"
#include "core/method_selector.h"
#include "sparql/engine.h"
#include "tensor/rng.h"

namespace kgnet::core {
namespace {

// --------------------------------------------------------------- KGMeta --

ModelInfo NcModel(const std::string& uri, double acc, double infer_us) {
  ModelInfo m;
  m.uri = uri;
  m.task = gml::TaskType::kNodeClassification;
  m.method = "RGCN";
  m.target_type_iri = "http://x/Paper";
  m.label_predicate_iri = "http://x/venue";
  m.accuracy = acc;
  m.inference_us = infer_us;
  m.cardinality = 100;
  m.sampler_label = "d1h1";
  m.train_seconds = 1.5;
  m.train_memory_bytes = 1 << 20;
  m.mrr = 0.5;
  return m;
}

TEST(KgMetaTest, RegisterGetRoundTrip) {
  KgMeta meta;
  ModelInfo in = NcModel(KgnetVocab::Name("model/m1"), 0.9, 10.0);
  ASSERT_TRUE(meta.RegisterModel(in).ok());
  auto out = meta.Get(in.uri);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->task, in.task);
  EXPECT_EQ(out->method, "RGCN");
  EXPECT_EQ(out->target_type_iri, in.target_type_iri);
  EXPECT_EQ(out->label_predicate_iri, in.label_predicate_iri);
  EXPECT_NEAR(out->accuracy, 0.9, 1e-9);
  EXPECT_NEAR(out->inference_us, 10.0, 1e-9);
  EXPECT_EQ(out->cardinality, 100u);
  EXPECT_EQ(out->sampler_label, "d1h1");
}

TEST(KgMetaTest, DuplicateRegistrationRejected) {
  KgMeta meta;
  ModelInfo m = NcModel("u", 0.5, 1);
  ASSERT_TRUE(meta.RegisterModel(m).ok());
  EXPECT_EQ(meta.RegisterModel(m).code(), StatusCode::kAlreadyExists);
}

TEST(KgMetaTest, DeleteRemovesAllTriples) {
  KgMeta meta;
  ASSERT_TRUE(meta.RegisterModel(NcModel("u1", 0.5, 1)).ok());
  ASSERT_TRUE(meta.RegisterModel(NcModel("u2", 0.6, 1)).ok());
  EXPECT_EQ(meta.NumModels(), 2u);
  ASSERT_TRUE(meta.DeleteModel("u1").ok());
  EXPECT_EQ(meta.NumModels(), 1u);
  EXPECT_FALSE(meta.Get("u1").ok());
  EXPECT_EQ(meta.DeleteModel("u1").code(), StatusCode::kNotFound);
}

TEST(KgMetaTest, FindModelsFiltersByConstraints) {
  KgMeta meta;
  ASSERT_TRUE(meta.RegisterModel(NcModel("u1", 0.5, 1)).ok());
  ModelInfo other = NcModel("u2", 0.6, 1);
  other.target_type_iri = "http://x/Author";
  ASSERT_TRUE(meta.RegisterModel(other).ok());
  ModelInfo lp;
  lp.uri = "u3";
  lp.task = gml::TaskType::kLinkPrediction;
  lp.source_type_iri = "http://x/Author";
  lp.destination_type_iri = "http://x/Affil";
  lp.task_predicate_iri = "http://x/affiliatedWith";
  ASSERT_TRUE(meta.RegisterModel(lp).ok());

  ModelInfo pattern;
  pattern.task = gml::TaskType::kNodeClassification;
  pattern.target_type_iri = "http://x/Paper";
  auto found = meta.FindModels(pattern);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].uri, "u1");

  ModelInfo lp_pattern;
  lp_pattern.task = gml::TaskType::kLinkPrediction;
  lp_pattern.source_type_iri = "http://x/Author";
  EXPECT_EQ(meta.FindModels(lp_pattern).size(), 1u);

  // Empty constraints match all NC models.
  ModelInfo all_nc;
  all_nc.task = gml::TaskType::kNodeClassification;
  EXPECT_EQ(meta.FindModels(all_nc).size(), 2u);
}

TEST(KgMetaTest, KgMetaIsQueryableViaSparql) {
  KgMeta meta;
  ASSERT_TRUE(
      meta.RegisterModel(NcModel(KgnetVocab::Name("model/m9"), 0.77, 3))
          .ok());
  sparql::QueryEngine engine(&meta.mutable_store());
  auto r = engine.ExecuteString(
      "PREFIX kgnet: <https://www.kgnet.com/>\n"
      "SELECT ?m ?acc WHERE { ?m a kgnet:NodeClassifier . "
      "?m kgnet:modelAccuracy ?acc . }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0][0].lexical, KgnetVocab::Name("model/m9"));
  double acc;
  EXPECT_TRUE(r->rows[0][1].AsDouble(&acc));
  EXPECT_NEAR(acc, 0.77, 1e-9);
}

// ------------------------------------------------------- EmbeddingStore --

TEST(EmbeddingStoreTest, FlatSearchExact) {
  EmbeddingStore store(2, Metric::kL2);
  ASSERT_TRUE(store.Add(10, {0, 0}).ok());
  ASSERT_TRUE(store.Add(11, {1, 0}).ok());
  ASSERT_TRUE(store.Add(12, {5, 5}).ok());
  auto hits = store.SearchFlat({0.4f, 0}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 10u);
  EXPECT_EQ(hits[1].id, 11u);
}

TEST(EmbeddingStoreTest, CosineIgnoresMagnitude) {
  EmbeddingStore store(2, Metric::kCosine);
  ASSERT_TRUE(store.Add(1, {10, 0}).ok());
  ASSERT_TRUE(store.Add(2, {0, 0.1f}).ok());
  auto hits = store.SearchFlat({1, 0.01f}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);
}

TEST(EmbeddingStoreTest, DimensionMismatchRejected) {
  EmbeddingStore store(3);
  EXPECT_FALSE(store.Add(1, {1, 2}).ok());
  EXPECT_TRUE(store.SearchFlat({1, 2}, 1).empty());
}

TEST(EmbeddingStoreTest, RemoveInvalidatesIvf) {
  EmbeddingStore store(2);
  for (uint64_t i = 0; i < 10; ++i)
    ASSERT_TRUE(store.Add(i, {static_cast<float>(i), 1}).ok());
  ASSERT_TRUE(store.BuildIvf(2).ok());
  EXPECT_TRUE(store.HasIvf());
  ASSERT_TRUE(store.Remove(3).ok());
  EXPECT_FALSE(store.HasIvf());
  EXPECT_EQ(store.size(), 9u);
  EXPECT_FALSE(store.Remove(3).ok());
}

class IvfRecallTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IvfRecallTest, IvfRecallIncreasesWithNprobe) {
  const size_t nprobe = GetParam();
  tensor::Rng rng(21);
  EmbeddingStore store(8, Metric::kL2);
  // 10 well-separated clusters.
  for (uint64_t i = 0; i < 500; ++i) {
    std::vector<float> v(8);
    const float center = static_cast<float>(i % 10) * 20.0f;
    for (auto& x : v) x = center + rng.NextGaussian();
    ASSERT_TRUE(store.Add(i, v).ok());
  }
  ASSERT_TRUE(store.BuildIvf(10).ok());

  size_t agree = 0;
  const size_t trials = 40;
  for (size_t t = 0; t < trials; ++t) {
    std::vector<float> q(8);
    const float center = static_cast<float>(t % 10) * 20.0f;
    for (auto& x : q) x = center + rng.NextGaussian();
    auto exact = store.SearchFlat(q, 1);
    auto approx = store.SearchIvf(q, 1, nprobe);
    ASSERT_FALSE(exact.empty());
    if (!approx.empty() && approx[0].id == exact[0].id) ++agree;
  }
  // With clearly separated clusters even nprobe=1 should mostly agree;
  // recall must be monotone-ish in nprobe, here simply high.
  EXPECT_GE(agree, trials * 7 / 10) << "nprobe=" << nprobe;
}

INSTANTIATE_TEST_SUITE_P(Nprobe, IvfRecallTest,
                         ::testing::Values(1, 2, 4, 10));

// -------------------------------------------------------- MethodSelector --

GraphSummary MediumGraph() {
  GraphSummary s;
  s.num_nodes = 10000;
  s.num_edges = 50000;
  s.num_relations = 20;
  s.num_classes = 10;
  s.feature_dim = 32;
  return s;
}

TEST(MethodSelectorTest, RgcnEstimateDominatesSamplingInMemory) {
  gml::TrainConfig c;
  auto rgcn = MethodSelector::Estimate(gml::GmlMethod::kRgcn, MediumGraph(), c);
  auto saint =
      MethodSelector::Estimate(gml::GmlMethod::kGraphSaint, MediumGraph(), c);
  auto morse =
      MethodSelector::Estimate(gml::GmlMethod::kMorse, MediumGraph(), c);
  EXPECT_GT(rgcn.memory_bytes, saint.memory_bytes);
  EXPECT_GT(saint.memory_bytes, morse.memory_bytes);
}

TEST(MethodSelectorTest, EstimatesScaleWithGraphSize) {
  gml::TrainConfig c;
  GraphSummary small = MediumGraph();
  GraphSummary big = MediumGraph();
  big.num_nodes *= 10;
  big.num_edges *= 10;
  for (auto m : {gml::GmlMethod::kGcn, gml::GmlMethod::kRgcn,
                 gml::GmlMethod::kTransE}) {
    auto es = MethodSelector::Estimate(m, small, c);
    auto eb = MethodSelector::Estimate(m, big, c);
    EXPECT_GT(eb.memory_bytes, es.memory_bytes) << gml::GmlMethodName(m);
    EXPECT_GT(eb.seconds, es.seconds) << gml::GmlMethodName(m);
  }
}

TEST(MethodSelectorTest, UnconstrainedPicksHighestPrior) {
  gml::TrainConfig c;
  TaskBudget budget;  // unconstrained, ModelScore priority
  auto sel = MethodSelector::Select(gml::TaskType::kNodeClassification,
                                    MediumGraph(), c, budget);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->method, gml::GmlMethod::kShadowSaint);
  EXPECT_TRUE(sel->within_budget);
  EXPECT_EQ(sel->candidates.size(), 5u);
}

TEST(MethodSelectorTest, TightMemoryBudgetExcludesRgcn) {
  gml::TrainConfig c;
  auto rgcn = MethodSelector::Estimate(gml::GmlMethod::kRgcn, MediumGraph(), c);
  TaskBudget budget;
  budget.max_memory_bytes = rgcn.memory_bytes / 2;
  auto sel = MethodSelector::Select(gml::TaskType::kNodeClassification,
                                    MediumGraph(), c, budget);
  ASSERT_TRUE(sel.ok());
  EXPECT_NE(sel->method, gml::GmlMethod::kRgcn);
}

TEST(MethodSelectorTest, TimePriorityPicksFastest) {
  gml::TrainConfig c;
  TaskBudget budget;
  budget.priority = BudgetPriority::kTime;
  auto sel = MethodSelector::Select(gml::TaskType::kLinkPrediction,
                                    MediumGraph(), c, budget);
  ASSERT_TRUE(sel.ok());
  double best_seconds = sel->candidates.front().seconds;
  for (const auto& cand : sel->candidates)
    EXPECT_GE(cand.seconds, best_seconds);
}

TEST(MethodSelectorTest, ImpossibleBudgetFallsBackToCheapest) {
  gml::TrainConfig c;
  TaskBudget budget;
  budget.max_memory_bytes = 1;  // nothing fits
  auto sel = MethodSelector::Select(gml::TaskType::kNodeClassification,
                                    MediumGraph(), c, budget);
  ASSERT_TRUE(sel.ok());
  EXPECT_FALSE(sel->within_budget);
}

TEST(MethodSelectorTest, ParseBudgetStrings) {
  EXPECT_EQ(*ParseMemoryBudget("50GB"), size_t(50e9));
  EXPECT_EQ(*ParseMemoryBudget("512MB"), size_t(512e6));
  EXPECT_EQ(*ParseMemoryBudget("100"), 100u);
  EXPECT_FALSE(ParseMemoryBudget("abc").ok());
  EXPECT_FALSE(ParseMemoryBudget("5XB").ok());
  EXPECT_DOUBLE_EQ(*ParseTimeBudget("1h"), 3600.0);
  EXPECT_DOUBLE_EQ(*ParseTimeBudget("15m"), 900.0);
  EXPECT_DOUBLE_EQ(*ParseTimeBudget("90s"), 90.0);
  EXPECT_DOUBLE_EQ(*ParseTimeBudget("2.5"), 2.5);
  EXPECT_FALSE(ParseTimeBudget("yesterday").ok());
}

// ------------------------------------------------------------------ JSON --

TEST(JsonTest, ParsesStandardJson) {
  auto v = ParseJson(R"({"a": 1, "b": [true, null, "s"], "c": {"d": -2.5}})");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_DOUBLE_EQ(v->Find("a")->AsNumber(), 1.0);
  EXPECT_EQ(v->Find("b")->AsArray().size(), 3u);
  EXPECT_TRUE(v->Find("b")->AsArray()[0].AsBool());
  EXPECT_DOUBLE_EQ(v->Find("c")->Find("d")->AsNumber(), -2.5);
}

TEST(JsonTest, ParsesPaperStyleRelaxedSyntax) {
  // Figure 8 of the paper: unquoted keys, single quotes, prefixed-name
  // values, unit-suffixed numbers.
  auto v = ParseJson(
      "{Name: 'MAG_Paper-Venue_Classifier',\n"
      " GML-Task:{ TaskType: kgnet:NodeClassifier,\n"
      "   TargetNode: dblp:publication,\n"
      "   NodeLable: dblp:venue},\n"
      " Task Budget:{ MaxMemory:50GB, MaxTime:1h,\n"
      "   Priority:ModelScore} }");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->GetString("Name"), "MAG_Paper-Venue_Classifier");
  const JsonValue* task = v->FindRelaxed("GML-Task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->GetString("TaskType"), "kgnet:NodeClassifier");
  EXPECT_EQ(task->GetString("NodeLable"), "dblp:venue");
  const JsonValue* budget = v->FindRelaxed("TaskBudget");
  ASSERT_NE(budget, nullptr);
  EXPECT_EQ(budget->GetString("MaxMemory"), "50GB");
  EXPECT_EQ(budget->GetString("MaxTime"), "1h");
}

TEST(JsonTest, RelaxedKeyLookup) {
  auto v = ParseJson("{\"GML-Task\": 1}");
  ASSERT_TRUE(v.ok());
  EXPECT_NE(v->FindRelaxed("gmltask"), nullptr);
  EXPECT_NE(v->FindRelaxed("GML_task"), nullptr);
  EXPECT_EQ(v->FindRelaxed("other"), nullptr);
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{a: }").ok());
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_FALSE(ParseJson("{a: 1} trailing").ok());
  EXPECT_FALSE(ParseJson("{'unterminated: 1}").ok());
}

}  // namespace
}  // namespace kgnet::core
