// End-to-end integration tests for the KGNet platform: the paper's query
// lifecycle — TrainGML INSERT (Figure 8), SPARQL-ML SELECT with a node
// classifier (Figure 2), link prediction SELECT (Figure 10), model DELETE
// (Figure 9) — plus the two rewrite plans (Figures 11/12) and entity
// similarity.
#include <gtest/gtest.h>

#include "common/cancel.h"
#include "core/kgnet.h"
#include "workload/dblp_gen.h"

namespace kgnet::core {
namespace {

using workload::DblpSchema;

constexpr char kPrefixes[] =
    "PREFIX dblp: <https://dblp.org/rdf/>\n"
    "PREFIX kgnet: <https://www.kgnet.com/>\n";

class SparqlMlE2eTest : public ::testing::Test {
 protected:
  SparqlMlE2eTest() {
    workload::DblpOptions opts;
    opts.num_papers = 200;
    opts.num_authors = 100;
    opts.num_venues = 4;
    opts.num_affiliations = 8;
    opts.noise = 0.05;
    opts.periphery_scale = 0.5;
    opts.seed = 31;
    EXPECT_TRUE(workload::GenerateDblp(opts, &kg_.store()).ok());
  }

  /// Trains a paper-venue classifier through the TrainGML query path.
  std::string TrainVenueClassifier(const std::string& method = "") {
    std::string hyper =
        ", Hyperparameters: {Epochs: 60, HiddenDim: 16, EmbedDim: 16, "
        "Patience: 25}";
    std::string m = method.empty() ? "" : ", Method: '" + method + "'";
    auto r = kg_.Execute(std::string(kPrefixes) +
                         "INSERT INTO <kgnet> { ?s ?p ?o } WHERE { "
                         "SELECT * FROM kgnet.TrainGML(\n"
                         "{Name: 'DBLP_Paper-Venue',\n"
                         " GML-Task: {TaskType: kgnet:NodeClassifier,\n"
                         "  TargetNode: dblp:Publication,\n"
                         "  NodeLabel: dblp:publishedIn},\n"
                         " TaskBudget: {MaxMemory: 10GB, MaxTime: 2m,"
                         " Priority: ModelScore}" +
                         hyper + m + "})}");
    EXPECT_TRUE(r.ok()) << r.status();
    if (!r.ok()) return "";
    EXPECT_EQ(r->columns[0], "model");
    return r->rows[0][0].lexical;
  }

  KgNet kg_;
};

TEST_F(SparqlMlE2eTest, PlainSparqlStillWorks) {
  auto r = kg_.Execute(std::string(kPrefixes) +
                       "SELECT ?p WHERE { ?p a dblp:Publication . } LIMIT 7");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 7u);
}

TEST_F(SparqlMlE2eTest, TrainGmlInsertRegistersModel) {
  const std::string uri = TrainVenueClassifier();
  ASSERT_FALSE(uri.empty());
  EXPECT_EQ(kg_.service().kgmeta().NumModels(), 1u);
  auto info = kg_.service().kgmeta().Get(uri);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->target_type_iri, DblpSchema::Publication());
  EXPECT_EQ(info->label_predicate_iri, DblpSchema::PublishedIn());
  EXPECT_GT(info->accuracy, 0.3);
  EXPECT_EQ(info->sampler_label, "d1h1");
  EXPECT_GT(info->cardinality, 0u);
  // The trained artifact is servable.
  EXPECT_TRUE(kg_.service().model_store().Get(uri).ok());
}

TEST_F(SparqlMlE2eTest, CancelledTrainGmlRegistersNothing) {
  // A tripped cancel token (here: a draining server's hard-cancel)
  // aborts training at the next epoch boundary and the pipeline
  // registers nothing — unlike the time budget, which keeps the
  // partially trained model.
  common::CancelSource source;
  source.Cancel(common::CancelReason::kDrain);
  auto r = kg_.service().Execute(
      std::string(kPrefixes) +
          "INSERT INTO <kgnet> { ?s ?p ?o } WHERE { "
          "SELECT * FROM kgnet.TrainGML(\n"
          "{Name: 'DBLP_Paper-Venue',\n"
          " GML-Task: {TaskType: kgnet:NodeClassifier,\n"
          "  TargetNode: dblp:Publication,\n"
          "  NodeLabel: dblp:publishedIn},\n"
          " TaskBudget: {MaxMemory: 10GB, MaxTime: 2m,"
          " Priority: ModelScore},"
          " Hyperparameters: {Epochs: 60, HiddenDim: 16, EmbedDim: 16,"
          " Patience: 25}})}",
      nullptr, source.token());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(kg_.service().kgmeta().NumModels(), 0u);
}

TEST_F(SparqlMlE2eTest, Figure2VenueQueryPredictsForEveryPaper) {
  TrainVenueClassifier();
  ExecutionStats stats;
  auto r = kg_.Execute(std::string(kPrefixes) +
                           "SELECT ?title ?venue WHERE {\n"
                           " ?paper a dblp:Publication .\n"
                           " ?paper dblp:title ?title .\n"
                           " ?paper ?NodeClassifier ?venue .\n"
                           " ?NodeClassifier a kgnet:NodeClassifier .\n"
                           " ?NodeClassifier kgnet:TargetNode "
                           "dblp:Publication .\n"
                           " ?NodeClassifier kgnet:NodeLabel "
                           "dblp:publishedIn . }",
                       &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 200u);
  // Every returned venue is one of the 4 real venue IRIs.
  int venue_col = r->ColumnIndex("venue");
  ASSERT_GE(venue_col, 0);
  size_t predicted = 0;
  for (const auto& row : r->rows) {
    if (row[venue_col].lexical.find("venue") != std::string::npos)
      ++predicted;
  }
  EXPECT_EQ(predicted, 200u);
  // With 200 papers the optimizer should pick the dictionary plan: 1 call.
  EXPECT_EQ(stats.plan, RewritePlan::kDictionary);
  EXPECT_EQ(stats.http_calls, 1u);
}

TEST_F(SparqlMlE2eTest, PredictionsBeatChanceAgainstGroundTruth) {
  TrainVenueClassifier();
  auto r = kg_.Execute(std::string(kPrefixes) +
                       "SELECT ?paper ?venue WHERE {\n"
                       " ?paper a dblp:Publication .\n"
                       " ?paper ?clf ?venue .\n"
                       " ?clf a kgnet:NodeClassifier .\n"
                       " ?clf kgnet:TargetNode dblp:Publication . }");
  ASSERT_TRUE(r.ok()) << r.status();
  // Compare with the ground-truth publishedIn edges in the KG.
  size_t correct = 0;
  const auto& dict = kg_.store().dict();
  rdf::TermId label = dict.FindIri(DblpSchema::PublishedIn());
  for (const auto& row : r->rows) {
    rdf::TermId paper = dict.FindIri(row[0].lexical);
    rdf::TermId venue = dict.FindIri(row[1].lexical);
    if (paper != rdf::kNullTermId && venue != rdf::kNullTermId &&
        kg_.store().Contains(rdf::Triple(paper, label, venue)))
      ++correct;
  }
  // 4 balanced venues: chance = 25%. The trained model must beat this
  // substantially even counting train nodes.
  EXPECT_GT(static_cast<double>(correct) / r->NumRows(), 0.5);
}

TEST_F(SparqlMlE2eTest, BothPlansReturnSameRows) {
  TrainVenueClassifier();
  const std::string query = std::string(kPrefixes) +
                            "SELECT ?paper ?venue WHERE {\n"
                            " ?paper a dblp:Publication .\n"
                            " ?paper ?clf ?venue .\n"
                            " ?clf a kgnet:NodeClassifier .\n"
                            " ?clf kgnet:TargetNode dblp:Publication . }";
  ExecutionStats s1, s2;
  auto per = kg_.service().ExecuteWithPlan(query, RewritePlan::kPerInstance,
                                           &s1);
  auto dict = kg_.service().ExecuteWithPlan(query, RewritePlan::kDictionary,
                                            &s2);
  ASSERT_TRUE(per.ok()) << per.status();
  ASSERT_TRUE(dict.ok()) << dict.status();
  ASSERT_EQ(per->NumRows(), dict->NumRows());
  // Same predictions, row by row (order preserved by identical BGP).
  for (size_t i = 0; i < per->NumRows(); ++i)
    EXPECT_EQ(per->rows[i][1].lexical, dict->rows[i][1].lexical);
  // Figure 11 vs 12: per-instance costs one call per paper, dictionary one.
  EXPECT_EQ(s1.http_calls, 200u);
  EXPECT_EQ(s2.http_calls, 1u);
}

TEST_F(SparqlMlE2eTest, Figure9DeleteRemovesModel) {
  const std::string uri = TrainVenueClassifier();
  ASSERT_FALSE(uri.empty());
  auto del = kg_.Execute(std::string(kPrefixes) +
                         "DELETE {?NodeClassifier ?p ?o} WHERE {\n"
                         " ?NodeClassifier a kgnet:NodeClassifier .\n"
                         " ?NodeClassifier kgnet:TargetNode "
                         "dblp:Publication .\n"
                         " ?NodeClassifier kgnet:NodeLabel "
                         "dblp:publishedIn . }");
  ASSERT_TRUE(del.ok()) << del.status();
  EXPECT_EQ(del->num_deleted, 1u);
  EXPECT_EQ(kg_.service().kgmeta().NumModels(), 0u);
  EXPECT_FALSE(kg_.service().model_store().Get(uri).ok());
  // Queries now fail with a clear error: no model matches.
  auto r = kg_.Execute(std::string(kPrefixes) +
                       "SELECT ?venue WHERE {\n"
                       " ?paper a dblp:Publication .\n"
                       " ?paper ?clf ?venue .\n"
                       " ?clf a kgnet:NodeClassifier . }");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(SparqlMlE2eTest, Figure10LinkPredictionQuery) {
  // Train an author-affiliation link predictor programmatically.
  TrainTaskSpec spec;
  spec.task = gml::TaskType::kLinkPrediction;
  spec.target_type_iri = DblpSchema::Person();
  spec.destination_type_iri = DblpSchema::Affiliation();
  spec.task_predicate_iri = DblpSchema::PrimaryAffiliation();
  spec.config.epochs = 20;
  spec.config.embed_dim = 16;
  spec.config.lr = 0.05f;
  spec.model_name = "author-affiliation";
  auto outcome = kg_.TrainTask(spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->sampler_label, "d2h1");

  auto r = kg_.Execute(std::string(kPrefixes) +
                       "SELECT ?author ?affiliation WHERE {\n"
                       " ?author a dblp:Person .\n"
                       " ?author ?LinkPredictor ?affiliation .\n"
                       " ?LinkPredictor a kgnet:LinkPredictor .\n"
                       " ?LinkPredictor kgnet:SourceNode dblp:Person .\n"
                       " ?LinkPredictor kgnet:DestinationNode "
                       "dblp:Affiliation .\n"
                       " ?LinkPredictor kgnet:TopK-Links 1 . } LIMIT 20");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 20u);
  // Predicted objects are affiliation IRIs.
  for (const auto& row : r->rows)
    EXPECT_NE(row[1].lexical.find("affiliation"), std::string::npos)
        << row[1].lexical;
}

TEST_F(SparqlMlE2eTest, EntitySimilaritySearch) {
  TrainTaskSpec spec;
  spec.task = gml::TaskType::kLinkPrediction;
  spec.target_type_iri = DblpSchema::Person();
  spec.destination_type_iri = DblpSchema::Affiliation();
  spec.task_predicate_iri = DblpSchema::PrimaryAffiliation();
  spec.config.epochs = 10;
  spec.config.embed_dim = 16;
  spec.model_name = "es";
  auto outcome = kg_.TrainTask(spec);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  auto model = kg_.service().model_store().Get(outcome->model_uri);
  ASSERT_TRUE(model.ok());
  ASSERT_NE((*model)->embeddings, nullptr);
  // Find a person IRI that exists in the model's encoding store.
  auto sims = kg_.GetSimilarEntities(outcome->model_uri,
                                     "https://dblp.org/rdf/person/0", 5);
  ASSERT_TRUE(sims.ok()) << sims.status();
  EXPECT_EQ(sims->size(), 5u);
  for (const auto& iri : *sims)
    EXPECT_NE(iri, "https://dblp.org/rdf/person/0");  // self excluded
}

TEST_F(SparqlMlE2eTest, BudgetSelectsCheaperMethodUnderMemoryPressure) {
  // With a tiny memory budget the selector must avoid full-batch RGCN.
  auto r = kg_.Execute(std::string(kPrefixes) +
                       "INSERT INTO <kgnet> { ?s ?p ?o } WHERE { "
                       "SELECT * FROM kgnet.TrainGML(\n"
                       "{Name: 'tight-budget',\n"
                       " GML-Task: {TaskType: kgnet:NodeClassifier,\n"
                       "  TargetNode: dblp:Publication,\n"
                       "  NodeLabel: dblp:publishedIn},\n"
                       " Hyperparameters: {Epochs: 3},\n"
                       " TaskBudget: {MaxMemory: 2MB, Priority: "
                       "ModelScore}})}");
  ASSERT_TRUE(r.ok()) << r.status();
  const std::string method = r->rows[0][2].lexical;
  EXPECT_NE(method, "RGCN");
}

TEST_F(SparqlMlE2eTest, ForcedMethodIsRespected) {
  TrainVenueClassifier("RGCN");
  auto uris = kg_.service().kgmeta().ListModelUris();
  ASSERT_EQ(uris.size(), 1u);
  auto info = kg_.service().kgmeta().Get(uris[0]);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->method, "RGCN");
}

TEST_F(SparqlMlE2eTest, TrainGmlErrorsOnBadPayload) {
  auto r = kg_.Execute("SELECT * FROM kgnet.TrainGML({Name: 'x'})");
  EXPECT_FALSE(r.ok());  // missing GML-Task
  auto r2 = kg_.Execute(
      "SELECT * FROM kgnet.TrainGML({GML-Task: {TaskType: "
      "kgnet:NodeClassifier, TargetNode: <http://nope>, NodeLabel: "
      "<http://nope2>}})");
  EXPECT_FALSE(r2.ok());  // unknown IRIs in the KG
}

TEST_F(SparqlMlE2eTest, SelectModelPrefersAccurateThenFast) {
  KgMeta& meta = kg_.service().kgmeta();
  ModelInfo slow_accurate;
  slow_accurate.uri = "m/slow";
  slow_accurate.task = gml::TaskType::kNodeClassification;
  slow_accurate.target_type_iri = DblpSchema::Publication();
  slow_accurate.label_predicate_iri = DblpSchema::PublishedIn();
  slow_accurate.accuracy = 0.90;
  slow_accurate.inference_us = 1000;
  ModelInfo fast_similar = slow_accurate;
  fast_similar.uri = "m/fast";
  fast_similar.accuracy = 0.895;  // within 1% of best
  fast_similar.inference_us = 10;
  ModelInfo fast_bad = slow_accurate;
  fast_bad.uri = "m/bad";
  fast_bad.accuracy = 0.50;
  fast_bad.inference_us = 1;
  ASSERT_TRUE(meta.RegisterModel(slow_accurate).ok());
  ASSERT_TRUE(meta.RegisterModel(fast_similar).ok());
  ASSERT_TRUE(meta.RegisterModel(fast_bad).ok());

  UserDefinedPredicate udp;
  udp.var = "clf";
  udp.task = gml::TaskType::kNodeClassification;
  udp.constraints.task = gml::TaskType::kNodeClassification;
  udp.constraints.target_type_iri = DblpSchema::Publication();
  auto chosen = kg_.service().SelectModel(udp);
  ASSERT_TRUE(chosen.ok()) << chosen.status();
  EXPECT_EQ(chosen->uri, "m/fast");
}

}  // namespace
}  // namespace kgnet::core
