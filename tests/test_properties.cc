// Cross-cutting property tests: scoring-function identities, term
// serialization edge cases, N-Triples fuzz round-trips and store
// cardinality invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gml/kge.h"
#include "rdf/ntriples.h"
#include "tensor/rng.h"
#include "workload/dblp_gen.h"

namespace kgnet {
namespace {

// ------------------------------------------------ KGE score identities --

/// Trains a KGE model for a single epoch so its tables exist, then checks
/// algebraic identities of the scoring function on the live embeddings.
class KgeScorePropertyTest : public ::testing::Test {
 protected:
  gml::GraphData Graph() {
    rdf::TripleStore store;
    workload::DblpOptions opts;
    opts.num_papers = 60;
    opts.num_authors = 30;
    opts.num_venues = 3;
    opts.num_affiliations = 6;
    opts.include_periphery = false;
    EXPECT_TRUE(workload::GenerateDblp(opts, &store).ok());
    gml::TransformOptions t;
    t.target_type_iri = workload::DblpSchema::Person();
    t.task_predicate_iri = workload::DblpSchema::PrimaryAffiliation();
    t.feature_dim = 8;
    auto g = gml::BuildGraphData(store, t);
    EXPECT_TRUE(g.ok());
    return std::move(*g);
  }

  void TrainBriefly(gml::KgeModel* model, gml::GraphData* graph) {
    gml::TrainConfig c;
    c.epochs = 1;
    c.embed_dim = 8;
    c.patience = 0;
    gml::TrainReport r;
    ASSERT_TRUE(model->Train(*graph, c, &r).ok());
  }
};

TEST_F(KgeScorePropertyTest, DistMultIsSymmetricInHeadAndTail) {
  gml::GraphData g = Graph();
  gml::KgeModel model(gml::KgeScore::kDistMult);
  TrainBriefly(&model, &g);
  for (uint32_t h = 0; h < 6; ++h) {
    for (uint32_t t = 6; t < 12; ++t) {
      // Multiplication grouping differs, so allow float rounding.
      EXPECT_NEAR(model.Score(h, 0, t), model.Score(t, 0, h), 1e-5);
    }
  }
}

TEST_F(KgeScorePropertyTest, ComplExIsAsymmetric) {
  gml::GraphData g = Graph();
  gml::KgeModel model(gml::KgeScore::kComplEx);
  TrainBriefly(&model, &g);
  // At least one ordered pair must score differently in each direction —
  // ComplEx can model antisymmetric relations, DistMult cannot.
  bool found_asymmetry = false;
  for (uint32_t h = 0; h < 8 && !found_asymmetry; ++h)
    for (uint32_t t = 8; t < 16 && !found_asymmetry; ++t)
      if (std::fabs(model.Score(h, 0, t) - model.Score(t, 0, h)) > 1e-6)
        found_asymmetry = true;
  EXPECT_TRUE(found_asymmetry);
}

TEST_F(KgeScorePropertyTest, TransEAndRotatEScoresAreNonPositive) {
  gml::GraphData g = Graph();
  for (auto kind : {gml::KgeScore::kTransE, gml::KgeScore::kRotatE}) {
    gml::KgeModel model(kind);
    TrainBriefly(&model, &g);
    for (uint32_t h = 0; h < 10; ++h) {
      for (uint32_t t = 10; t < 20; ++t) {
        EXPECT_LE(model.Score(h, 0, t), 1e-6)
            << "distance-based scores are -||.||, always <= 0";
      }
    }
  }
}

TEST_F(KgeScorePropertyTest, TopKIsSortedByScore) {
  gml::GraphData g = Graph();
  gml::KgeModel model(gml::KgeScore::kTransE);
  TrainBriefly(&model, &g);
  const uint32_t rel = g.task_relation;
  std::vector<uint32_t> top = model.TopKTails(0, rel, 10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(model.Score(0, rel, top[i - 1]),
              model.Score(0, rel, top[i]));
  }
}

// ------------------------------------------------ Term edge cases --

TEST(TermPropertyTest, AsDoubleParsesOnlyCompleteNumbers) {
  double v;
  EXPECT_TRUE(rdf::Term::Literal("3.5").AsDouble(&v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(rdf::Term::Literal("-2").AsDouble(&v));
  EXPECT_FALSE(rdf::Term::Literal("3.5abc").AsDouble(&v));
  EXPECT_FALSE(rdf::Term::Literal("").AsDouble(&v));
  EXPECT_FALSE(rdf::Term::Iri("5").AsDouble(&v));  // not a literal
}

TEST(TermPropertyTest, EncodeKeyIsInjectiveOverKindAndMeta) {
  using rdf::Term;
  std::vector<Term> terms = {
      Term::Iri("x"),
      Term::Literal("x"),
      Term::Blank("x"),
      Term::TypedLiteral("x", "dt1"),
      Term::TypedLiteral("x", "dt2"),
  };
  Term lang = Term::Literal("x");
  lang.lang = "en";
  terms.push_back(lang);
  for (size_t i = 0; i < terms.size(); ++i)
    for (size_t j = i + 1; j < terms.size(); ++j)
      EXPECT_NE(terms[i].EncodeKey(), terms[j].EncodeKey())
          << i << " vs " << j;
}

// ------------------------------------------------ N-Triples fuzz --

class NtriplesFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NtriplesFuzzTest, RandomStoreSurvivesRoundTrip) {
  tensor::Rng rng(GetParam());
  rdf::TripleStore store;
  const std::string chars =
      "abcXYZ019 _-\\\"\n\t.<>#@^|{}";
  auto random_string = [&](size_t max_len) {
    std::string s;
    const size_t len = 1 + rng.NextUint(max_len);
    for (size_t i = 0; i < len; ++i)
      s += chars[rng.NextUint(chars.size())];
    return s;
  };
  for (int i = 0; i < 60; ++i) {
    rdf::Term s = rdf::Term::Iri("http://n/" + std::to_string(rng.NextUint(20)));
    rdf::Term p = rdf::Term::Iri("http://p/" + std::to_string(rng.NextUint(5)));
    rdf::Term o;
    switch (rng.NextUint(4)) {
      case 0:
        o = rdf::Term::Iri("http://n/" + std::to_string(rng.NextUint(20)));
        break;
      case 1:
        o = rdf::Term::Literal(random_string(12));
        break;
      case 2:
        o = rdf::Term::IntLiteral(static_cast<int64_t>(rng.NextUint(1000)));
        break;
      default:
        o = rdf::Term::Blank("b" + std::to_string(rng.NextUint(9)));
    }
    store.Insert(s, p, o);
  }

  std::ostringstream os;
  ASSERT_TRUE(rdf::WriteNTriples(store, os).ok());
  rdf::TripleStore reloaded;
  auto n = rdf::LoadNTriples(os.str(), &reloaded);
  ASSERT_TRUE(n.ok()) << n.status() << "\ndocument:\n" << os.str();
  EXPECT_EQ(*n, store.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NtriplesFuzzTest,
                         ::testing::Values(101, 202, 303, 404));

// ------------------------------------------------ store invariants --

TEST(StoreInvariantTest, CountNeverExceedsEstimate) {
  tensor::Rng rng(7);
  rdf::TripleStore store;
  for (int i = 0; i < 400; ++i)
    store.InsertIris("s" + std::to_string(rng.NextUint(30)),
                     "p" + std::to_string(rng.NextUint(6)),
                     "o" + std::to_string(rng.NextUint(40)));
  // For any pattern, the estimate is an upper bound on the exact count and
  // exact for index-prefix shapes.
  std::vector<rdf::Triple> all = store.Match(rdf::TriplePattern());
  for (int trial = 0; trial < 60; ++trial) {
    const rdf::Triple& probe = all[rng.NextUint(all.size())];
    rdf::TriplePattern pat;
    if (rng.NextFloat() < 0.5f) pat.s = probe.s;
    if (rng.NextFloat() < 0.5f) pat.p = probe.p;
    if (rng.NextFloat() < 0.5f) pat.o = probe.o;
    EXPECT_GE(store.EstimateCardinality(pat), store.Count(pat));
  }
}

}  // namespace
}  // namespace kgnet
