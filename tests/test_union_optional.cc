// UNION and OPTIONAL coverage for the SPARQL engine.
#include <gtest/gtest.h>

#include "sparql/engine.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"

namespace kgnet::sparql {
namespace {

using rdf::Term;

class UnionOptionalTest : public ::testing::Test {
 protected:
  UnionOptionalTest() : engine_(&store_) {
    store_.InsertIris("http://x/a", "http://x/cat", "http://x/C1");
    store_.InsertIris("http://x/b", "http://x/cat", "http://x/C2");
    store_.InsertIris("http://x/c", "http://x/cat", "http://x/C3");
    store_.Insert(Term::Iri("http://x/a"), Term::Iri("http://x/name"),
                  Term::Literal("Alice"));
    store_.Insert(Term::Iri("http://x/b"), Term::Iri("http://x/name"),
                  Term::Literal("Bob"));
    // c intentionally has no name.
    store_.InsertIris("http://x/a", "http://x/knows", "http://x/b");
  }
  rdf::TripleStore store_;
  QueryEngine engine_;
};

TEST_F(UnionOptionalTest, ParsesUnion) {
  auto q = ParseQuery(
      "SELECT ?s WHERE { { ?s <http://x/cat> <http://x/C1> . } UNION "
      "{ ?s <http://x/cat> <http://x/C2> . } }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->where.unions.size(), 1u);
  EXPECT_EQ(q->where.unions[0].size(), 2u);
}

TEST_F(UnionOptionalTest, UnionCombinesBranches) {
  auto r = engine_.ExecuteString(
      "SELECT ?s WHERE { { ?s <http://x/cat> <http://x/C1> . } UNION "
      "{ ?s <http://x/cat> <http://x/C2> . } }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 2u);
}

TEST_F(UnionOptionalTest, ThreeWayUnion) {
  auto r = engine_.ExecuteString(
      "SELECT ?s WHERE { { ?s <http://x/cat> <http://x/C1> . } UNION "
      "{ ?s <http://x/cat> <http://x/C2> . } UNION "
      "{ ?s <http://x/cat> <http://x/C3> . } }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 3u);
}

TEST_F(UnionOptionalTest, UnionJoinsWithOuterPattern) {
  // Outer pattern restricts ?s to things with a name; union branches
  // partition by category.
  auto r = engine_.ExecuteString(
      "SELECT ?s ?n WHERE { ?s <http://x/name> ?n . "
      "{ ?s <http://x/cat> <http://x/C1> . } UNION "
      "{ ?s <http://x/cat> <http://x/C3> . } }");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);  // only a: C1 with a name (c has no name)
  EXPECT_EQ(r->rows[0][1].lexical, "Alice");
}

TEST_F(UnionOptionalTest, OptionalKeepsUnmatchedRows) {
  auto r = engine_.ExecuteString(
      "SELECT ?s ?n WHERE { ?s <http://x/cat> ?c . "
      "OPTIONAL { ?s <http://x/name> ?n . } }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 3u);
  // c's name cell is empty; a and b have names.
  size_t named = 0;
  for (const auto& row : r->rows)
    if (!row[1].lexical.empty()) ++named;
  EXPECT_EQ(named, 2u);
}

TEST_F(UnionOptionalTest, OptionalBindingsJoinCorrectly) {
  auto r = engine_.ExecuteString(
      "SELECT ?s ?friend WHERE { ?s <http://x/name> ?n . "
      "OPTIONAL { ?s <http://x/knows> ?friend . } }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 2u);
  for (const auto& row : r->rows) {
    if (row[0].lexical == "http://x/a") {
      EXPECT_EQ(row[1].lexical, "http://x/b");
    } else {
      EXPECT_TRUE(row[1].lexical.empty());
    }
  }
}

TEST_F(UnionOptionalTest, NestedPlainGroupIsInlined) {
  auto r = engine_.ExecuteString(
      "SELECT ?s WHERE { { ?s <http://x/cat> <http://x/C1> . } }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 1u);
}

TEST_F(UnionOptionalTest, OptionalWithFilterInside) {
  auto r = engine_.ExecuteString(
      "SELECT ?s ?n WHERE { ?s <http://x/cat> ?c . "
      "OPTIONAL { ?s <http://x/name> ?n . FILTER(?n = \"Alice\") } }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 3u);  // Bob's name filtered out -> row kept bare
  size_t named = 0;
  for (const auto& row : r->rows)
    if (!row[1].lexical.empty()) ++named;
  EXPECT_EQ(named, 1u);
}

TEST_F(UnionOptionalTest, SerializerRoundTripsUnionAndOptional) {
  const std::string text =
      "SELECT ?s WHERE { { ?s <http://x/cat> <http://x/C1> . } UNION "
      "{ ?s <http://x/cat> <http://x/C2> . } "
      "OPTIONAL { ?s <http://x/name> ?n . } }";
  auto q1 = ParseQuery(text);
  ASSERT_TRUE(q1.ok()) << q1.status();
  const std::string s1 = SerializeQuery(*q1);
  auto q2 = ParseQuery(s1);
  ASSERT_TRUE(q2.ok()) << q2.status() << "\n" << s1;
  EXPECT_EQ(s1, SerializeQuery(*q2));
  // Execution equivalence.
  auto r1 = engine_.ExecuteString(text);
  auto r2 = engine_.ExecuteString(s1);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->NumRows(), r2->NumRows());
}

}  // namespace
}  // namespace kgnet::sparql
