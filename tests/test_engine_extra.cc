// Additional SPARQL engine coverage: solution modifiers, aliases, result
// rendering, error paths, cardinality estimation and randomized BGP
// correctness against a brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sparql/engine.h"
#include "sparql/parser.h"
#include "tensor/rng.h"

namespace kgnet::sparql {
namespace {

using rdf::Term;

class EngineExtraTest : public ::testing::Test {
 protected:
  EngineExtraTest() : engine_(&store_) {
    for (int i = 0; i < 10; ++i) {
      const std::string node = "http://x/n" + std::to_string(i);
      store_.InsertIris(node, std::string(rdf::kRdfType), "http://x/T");
      store_.Insert(Term::Iri(node), Term::Iri("http://x/rank"),
                    Term::IntLiteral(i));
      if (i > 0)
        store_.InsertIris(node, "http://x/next",
                          "http://x/n" + std::to_string(i - 1));
    }
  }
  rdf::TripleStore store_;
  QueryEngine engine_;
};

TEST_F(EngineExtraTest, OffsetAndLimitPaginate) {
  std::set<std::string> seen;
  for (int page = 0; page < 5; ++page) {
    auto r = engine_.ExecuteString(
        "SELECT ?n WHERE { ?n a <http://x/T> . } LIMIT 2 OFFSET " +
        std::to_string(page * 2));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->NumRows(), 2u);
    for (const auto& row : r->rows) seen.insert(row[0].lexical);
  }
  EXPECT_EQ(seen.size(), 10u);  // pages partition the result
}

TEST_F(EngineExtraTest, OffsetBeyondResultIsEmpty) {
  auto r = engine_.ExecuteString(
      "SELECT ?n WHERE { ?n a <http://x/T> . } OFFSET 99");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 0u);
}

TEST_F(EngineExtraTest, VariableAliasInProjection) {
  auto r = engine_.ExecuteString(
      "SELECT ?n AS ?node WHERE { ?n a <http://x/T> . } LIMIT 1");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->columns.size(), 1u);
  EXPECT_EQ(r->columns[0], "node");
}

TEST_F(EngineExtraTest, ColumnIndexAndToTable) {
  auto r = engine_.ExecuteString(
      "SELECT ?n ?v WHERE { ?n <http://x/rank> ?v . } LIMIT 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ColumnIndex("n"), 0);
  EXPECT_EQ(r->ColumnIndex("v"), 1);
  EXPECT_EQ(r->ColumnIndex("nope"), -1);
  const std::string table = r->ToTable();
  EXPECT_NE(table.find("n"), std::string::npos);
  EXPECT_NE(table.find(" | "), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);  // header + 3
}

// Regression: a hand-built QueryResult whose rows are wider than its
// column list used to write past the per-column width array in
// ToTable(); extra cells must be clamped away instead.
TEST(QueryResultTest, ToTableClampsRowsWiderThanColumns) {
  QueryResult r;
  r.columns = {"a", "b"};
  r.rows.push_back({rdf::Term::Literal("one"), rdf::Term::Literal("two"),
                    rdf::Term::Literal("overflow")});
  r.rows.push_back({rdf::Term::Literal("shorty")});
  const std::string table = r.ToTable();
  EXPECT_NE(table.find("one"), std::string::npos);
  EXPECT_NE(table.find("two"), std::string::npos);
  EXPECT_EQ(table.find("overflow"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);  // header + 2
}

TEST_F(EngineExtraTest, FilterChainAndNot) {
  auto r = engine_.ExecuteString(
      "SELECT ?n WHERE { ?n <http://x/rank> ?v . "
      "FILTER(!(?v < 3) && ?v <= 5) }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 3u);  // ranks 3, 4, 5
}

TEST_F(EngineExtraTest, FilterOrShortCircuits) {
  auto r = engine_.ExecuteString(
      "SELECT ?n WHERE { ?n <http://x/rank> ?v . "
      "FILTER(?v = 0 || ?v = 9) }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumRows(), 2u);
}

TEST_F(EngineExtraTest, UnknownUdfFailsCleanly) {
  auto r = engine_.ExecuteString(
      "SELECT my:missing(?n) AS ?x WHERE { ?n a <http://x/T> . }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineExtraTest, UdfErrorPropagates) {
  engine_.udfs().Register(
      "my:fails", [](const std::vector<Term>&) -> Result<Term> {
        return Status::Internal("boom");
      });
  auto r = engine_.ExecuteString(
      "SELECT my:fails(?n) AS ?x WHERE { ?n a <http://x/T> . }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST_F(EngineExtraTest, ChainJoinFollowsPath) {
  // n9 -> n8 -> n7 via two hops.
  auto r = engine_.ExecuteString(
      "SELECT ?c WHERE { <http://x/n9> <http://x/next> ?b . "
      "?b <http://x/next> ?c . }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->rows[0][0].lexical, "http://x/n7");
}

TEST_F(EngineExtraTest, EstimateWhereCardinality) {
  auto q = ParseQuery("SELECT ?n WHERE { ?n a <http://x/T> . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(engine_.EstimateWhereCardinality(*q), 10u);
  auto zero = ParseQuery("SELECT ?n WHERE { ?n a <http://x/Missing> . }");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(engine_.EstimateWhereCardinality(*zero), 0u);
}

TEST_F(EngineExtraTest, InsertWhereIsIdempotentOnRerun) {
  const std::string update =
      "INSERT { ?n <http://x/flag> \"y\" } WHERE { ?n a <http://x/T> . }";
  auto first = engine_.ExecuteString(update);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->num_inserted, 10u);
  auto second = engine_.ExecuteString(update);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->num_inserted, 0u);  // duplicates ignored
}

TEST_F(EngineExtraTest, DeleteWithUnboundTemplateVariableFails) {
  auto r = engine_.ExecuteString(
      "DELETE { ?ghost <http://x/p> ?n } WHERE { ?n a <http://x/T> . }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

/// Randomized property test: the engine's 2-pattern BGP join agrees with a
/// brute-force nested-loop oracle over random graphs.
class BgpOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BgpOracleTest, TwoPatternJoinMatchesOracle) {
  tensor::Rng rng(GetParam());
  rdf::TripleStore store;
  struct T {
    std::string s, p, o;
  };
  std::vector<T> triples;
  for (int i = 0; i < 120; ++i) {
    T t{"n" + std::to_string(rng.NextUint(12)),
        "p" + std::to_string(rng.NextUint(3)),
        "n" + std::to_string(rng.NextUint(12))};
    triples.push_back(t);
    store.InsertIris(t.s, t.p, t.o);
  }
  // Deduplicate the oracle's triples the same way the store does.
  std::sort(triples.begin(), triples.end(), [](const T& a, const T& b) {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  });
  triples.erase(std::unique(triples.begin(), triples.end(),
                            [](const T& a, const T& b) {
                              return a.s == b.s && a.p == b.p && a.o == b.o;
                            }),
                triples.end());

  QueryEngine engine(&store);
  // ?a p0 ?b . ?b p1 ?c
  auto r = engine.ExecuteString(
      "SELECT ?a ?b ?c WHERE { ?a <p0> ?b . ?b <p1> ?c . }");
  ASSERT_TRUE(r.ok()) << r.status();

  size_t oracle = 0;
  for (const T& x : triples)
    for (const T& y : triples)
      if (x.p == "p0" && y.p == "p1" && x.o == y.s) ++oracle;
  EXPECT_EQ(r->NumRows(), oracle);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpOracleTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace kgnet::sparql
