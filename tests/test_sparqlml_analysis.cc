// Unit tests for the SPARQL-ML pipeline stages: Analyze, ChoosePlan,
// Rewrite, Explain — plus the entity-similarity task end to end.
#include <gtest/gtest.h>

#include "core/kgnet.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "workload/dblp_gen.h"

namespace kgnet::core {
namespace {

using workload::DblpSchema;

constexpr char kPrefixes[] =
    "PREFIX dblp: <https://dblp.org/rdf/>\n"
    "PREFIX kgnet: <https://www.kgnet.com/>\n";

class SparqlMlAnalysisTest : public ::testing::Test {
 protected:
  SparqlMlAnalysisTest() {
    workload::DblpOptions opts;
    opts.num_papers = 120;
    opts.num_authors = 60;
    opts.num_venues = 4;
    opts.num_affiliations = 8;
    opts.include_periphery = false;
    EXPECT_TRUE(workload::GenerateDblp(opts, &kg_.store()).ok());
  }

  SparqlMlAnalysis Analyze(const std::string& query) {
    auto parsed = sparql::ParseQuery(query);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    auto analysis = kg_.service().Analyze(*parsed);
    EXPECT_TRUE(analysis.ok()) << analysis.status();
    return std::move(*analysis);
  }

  KgNet kg_;
};

TEST_F(SparqlMlAnalysisTest, PlainSparqlHasNoUdps) {
  auto a = Analyze(std::string(kPrefixes) +
                   "SELECT ?t WHERE { ?p dblp:title ?t . }");
  EXPECT_FALSE(a.is_sparql_ml());
}

TEST_F(SparqlMlAnalysisTest, VariablePredicateWithoutKgnetTypeIsNotUdp) {
  // A generic join variable in predicate position must not be mistaken
  // for a user-defined predicate.
  auto a = Analyze(std::string(kPrefixes) +
                   "SELECT ?p WHERE { ?s ?p ?o . }");
  EXPECT_FALSE(a.is_sparql_ml());
}

TEST_F(SparqlMlAnalysisTest, DetectsNodeClassifierUdp) {
  auto a = Analyze(std::string(kPrefixes) +
                   "SELECT ?venue WHERE {\n"
                   " ?paper a dblp:Publication .\n"
                   " ?paper ?clf ?venue .\n"
                   " ?clf a kgnet:NodeClassifier .\n"
                   " ?clf kgnet:TargetNode dblp:Publication .\n"
                   " ?clf kgnet:NodeLabel dblp:publishedIn . }");
  ASSERT_EQ(a.udps.size(), 1u);
  const UserDefinedPredicate& udp = a.udps[0];
  EXPECT_EQ(udp.var, "clf");
  EXPECT_EQ(udp.task, gml::TaskType::kNodeClassification);
  EXPECT_EQ(udp.subject_var, "paper");
  EXPECT_EQ(udp.object_var, "venue");
  EXPECT_EQ(udp.constraints.target_type_iri, DblpSchema::Publication());
  EXPECT_EQ(udp.constraints.label_predicate_iri, DblpSchema::PublishedIn());
  EXPECT_EQ(udp.meta_triples.size(), 3u);
}

TEST_F(SparqlMlAnalysisTest, DetectsLinkPredictorWithTopK) {
  auto a = Analyze(std::string(kPrefixes) +
                   "SELECT ?aff WHERE {\n"
                   " ?author a dblp:Person .\n"
                   " ?author ?lp ?aff .\n"
                   " ?lp a kgnet:LinkPredictor .\n"
                   " ?lp kgnet:SourceNode dblp:Person .\n"
                   " ?lp kgnet:DestinationNode dblp:Affiliation .\n"
                   " ?lp kgnet:TopK-Links 7 . }");
  ASSERT_EQ(a.udps.size(), 1u);
  EXPECT_EQ(a.udps[0].task, gml::TaskType::kLinkPrediction);
  EXPECT_EQ(a.udps[0].topk, 7u);
  EXPECT_EQ(a.udps[0].constraints.source_type_iri, DblpSchema::Person());
}

TEST_F(SparqlMlAnalysisTest, DetectsSimilarEntitiesUdp) {
  auto a = Analyze(std::string(kPrefixes) +
                   "SELECT ?sim WHERE {\n"
                   " ?author a dblp:Person .\n"
                   " ?author ?es ?sim .\n"
                   " ?es a kgnet:SimilarEntities .\n"
                   " ?es kgnet:TargetNode dblp:Person . }");
  ASSERT_EQ(a.udps.size(), 1u);
  EXPECT_EQ(a.udps[0].task, gml::TaskType::kEntitySimilarity);
  // For non-NC tasks TargetNode maps to the source type.
  EXPECT_EQ(a.udps[0].constraints.source_type_iri, DblpSchema::Person());
}

TEST_F(SparqlMlAnalysisTest, SelectModelFailsWithoutTrainedModels) {
  auto a = Analyze(std::string(kPrefixes) +
                   "SELECT ?v WHERE { ?p ?clf ?v . "
                   "?clf a kgnet:NodeClassifier . }");
  ASSERT_EQ(a.udps.size(), 1u);
  auto model = kg_.service().SelectModel(a.udps[0]);
  EXPECT_EQ(model.status().code(), StatusCode::kNotFound);
}

TEST_F(SparqlMlAnalysisTest, ChoosePlanScalesWithInstanceCount) {
  ModelInfo model;
  model.uri = "m";
  model.task = gml::TaskType::kNodeClassification;
  model.cardinality = 120;

  auto a = Analyze(std::string(kPrefixes) +
                   "SELECT ?v WHERE { ?p a dblp:Publication . ?p ?clf ?v . "
                   "?clf a kgnet:NodeClassifier . }");
  ASSERT_EQ(a.udps.size(), 1u);
  // 120 papers >> break-even: dictionary plan.
  EXPECT_EQ(kg_.service().ChoosePlan(a, a.udps[0], model),
            RewritePlan::kDictionary);

  // A single bound instance: per-instance plan. Constrain ?p to one title.
  auto single =
      Analyze(std::string(kPrefixes) +
              "SELECT ?v WHERE { ?p dblp:title \"Paper 5\" . ?p ?clf ?v . "
              "?clf a kgnet:NodeClassifier . }");
  ASSERT_EQ(single.udps.size(), 1u);
  EXPECT_EQ(kg_.service().ChoosePlan(single, single.udps[0], model),
            RewritePlan::kPerInstance);
}

TEST_F(SparqlMlAnalysisTest, RewriteStripsMetaTriplesAndAddsUdf) {
  auto a = Analyze(std::string(kPrefixes) +
                   "SELECT ?title ?venue WHERE {\n"
                   " ?paper a dblp:Publication .\n"
                   " ?paper dblp:title ?title .\n"
                   " ?paper ?clf ?venue .\n"
                   " ?clf a kgnet:NodeClassifier .\n"
                   " ?clf kgnet:TargetNode dblp:Publication . }");
  ASSERT_EQ(a.udps.size(), 1u);
  ModelInfo model;
  model.uri = KgnetVocab::Name("model/test-1");
  model.task = gml::TaskType::kNodeClassification;

  auto per = kg_.service().Rewrite(a, a.udps[0], model,
                                   RewritePlan::kPerInstance);
  ASSERT_TRUE(per.ok()) << per.status();
  // Only the two data triples survive.
  EXPECT_EQ(per->where.triples.size(), 2u);
  const std::string per_text = sparql::SerializeQuery(*per);
  EXPECT_NE(per_text.find("sql:UDFS.getNodeClass"), std::string::npos);
  EXPECT_NE(per_text.find(model.uri), std::string::npos);

  auto dict = kg_.service().Rewrite(a, a.udps[0], model,
                                    RewritePlan::kDictionary);
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ(dict->where.subselects.size(), 1u);
  const std::string dict_text = sparql::SerializeQuery(*dict);
  EXPECT_NE(dict_text.find("sql:UDFS.getNodeClassDict"), std::string::npos);
  EXPECT_NE(dict_text.find("sql:UDFS.getKeyValue"), std::string::npos);
}

TEST_F(SparqlMlAnalysisTest, ExplainReportsModelPlanAndRewrite) {
  // Train a tiny model first so SelectModel succeeds.
  TrainTaskSpec spec;
  spec.task = gml::TaskType::kNodeClassification;
  spec.target_type_iri = DblpSchema::Publication();
  spec.label_predicate_iri = DblpSchema::PublishedIn();
  spec.config.epochs = 2;
  spec.config.hidden_dim = 8;
  spec.config.embed_dim = 8;
  spec.model_name = "explain-test";
  ASSERT_TRUE(kg_.TrainTask(spec).ok());

  auto ex = kg_.service().Explain(std::string(kPrefixes) +
                                  "SELECT ?venue WHERE {\n"
                                  " ?paper a dblp:Publication .\n"
                                  " ?paper ?clf ?venue .\n"
                                  " ?clf a kgnet:NodeClassifier . }");
  ASSERT_TRUE(ex.ok()) << ex.status();
  EXPECT_TRUE(ex->is_sparql_ml);
  ASSERT_EQ(ex->model_uris.size(), 1u);
  EXPECT_NE(ex->model_uris[0].find("explain-test"), std::string::npos);
  EXPECT_EQ(ex->plan, RewritePlan::kDictionary);
  EXPECT_NE(ex->rewritten_sparql.find("sql:UDFS."), std::string::npos);
  // The rewritten text parses as plain SPARQL.
  EXPECT_TRUE(sparql::ParseQuery(ex->rewritten_sparql).ok());
}

TEST_F(SparqlMlAnalysisTest, ExplainOnPlainSparql) {
  auto ex = kg_.service().Explain(
      std::string(kPrefixes) + "SELECT ?t WHERE { ?p dblp:title ?t . }");
  ASSERT_TRUE(ex.ok());
  EXPECT_FALSE(ex->is_sparql_ml);
}

TEST_F(SparqlMlAnalysisTest, EntitySimilarityEndToEnd) {
  // Train an ES model through TrainGML and query it through SPARQL-ML.
  auto train = kg_.Execute(std::string(kPrefixes) +
                           "INSERT INTO <kgnet> { ?s ?p ?o } WHERE { "
                           "SELECT * FROM kgnet.TrainGML(\n"
                           "{Name: 'person-similarity',\n"
                           " GML-Task: {TaskType: kgnet:SimilarEntities,\n"
                           "  SourceNode: dblp:Person,\n"
                           "  DestinationNode: dblp:Affiliation,\n"
                           "  TaskPredicate: dblp:primaryAffiliation},\n"
                           " Hyperparameters: {Epochs: 8, EmbedDim: 8}})}");
  ASSERT_TRUE(train.ok()) << train.status();
  auto info = kg_.service().kgmeta().Get(train->rows[0][0].lexical);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->task, gml::TaskType::kEntitySimilarity);

  auto r = kg_.Execute(std::string(kPrefixes) +
                       "SELECT ?author ?similar WHERE {\n"
                       " ?author a dblp:Person .\n"
                       " ?author ?es ?similar .\n"
                       " ?es a kgnet:SimilarEntities .\n"
                       " ?es kgnet:TargetNode dblp:Person . } LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 10u);
  for (const auto& row : r->rows) {
    EXPECT_TRUE(row[1].is_iri());
    EXPECT_NE(row[0].lexical, row[1].lexical);  // self excluded
  }
}

TEST_F(SparqlMlAnalysisTest, TwoUdpsInOneQuery) {
  // Train both an NC and an LP model, then use two user-defined
  // predicates in a single query.
  TrainTaskSpec nc;
  nc.task = gml::TaskType::kNodeClassification;
  nc.target_type_iri = DblpSchema::Publication();
  nc.label_predicate_iri = DblpSchema::PublishedIn();
  nc.config.epochs = 2;
  nc.config.hidden_dim = 8;
  nc.config.embed_dim = 8;
  nc.model_name = "nc";
  ASSERT_TRUE(kg_.TrainTask(nc).ok());

  TrainTaskSpec lp;
  lp.task = gml::TaskType::kLinkPrediction;
  lp.target_type_iri = DblpSchema::Person();
  lp.destination_type_iri = DblpSchema::Affiliation();
  lp.task_predicate_iri = DblpSchema::PrimaryAffiliation();
  lp.config.epochs = 2;
  lp.config.embed_dim = 8;
  lp.model_name = "lp";
  ASSERT_TRUE(kg_.TrainTask(lp).ok());

  ExecutionStats stats;
  auto r = kg_.Execute(
      std::string(kPrefixes) +
          "SELECT ?paper ?venue ?author ?aff WHERE {\n"
          " ?paper a dblp:Publication .\n"
          " ?paper dblp:authoredBy ?author .\n"
          " ?paper ?clf ?venue .\n"
          " ?clf a kgnet:NodeClassifier .\n"
          " ?clf kgnet:TargetNode dblp:Publication .\n"
          " ?author ?lp ?aff .\n"
          " ?lp a kgnet:LinkPredictor .\n"
          " ?lp kgnet:SourceNode dblp:Person . } LIMIT 5",
      &stats);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 5u);
  EXPECT_EQ(r->columns.size(), 4u);
  for (const auto& row : r->rows) {
    EXPECT_NE(row[1].lexical.find("venue"), std::string::npos);
    EXPECT_NE(row[3].lexical.find("affiliation"), std::string::npos);
  }
}

}  // namespace
}  // namespace kgnet::core
