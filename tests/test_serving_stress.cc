// Serving concurrency soak: N clients hammer a KgServer over loopback
// while a writer thread mutates (and compacts) the backing TripleStore.
// What must hold, under TSan as much as under the default build
// (the CI TSan job re-runs this suite):
//
//   - snapshot isolation at the wire: responses never observe a torn
//     mutation batch (the batch-marker invariant below);
//   - per-connection snapshot epochs are monotonically non-decreasing;
//   - concurrent batched SPARQL-ML inference against a frozen model
//     returns bitwise-stable answers while the store churns;
//   - overloaded and disconnecting clients never wedge the server.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/kgnet.h"
#include "tests/serving_test_util.h"
#include "workload/dblp_gen.h"

namespace kgnet::serving {
namespace {

using core::KgNet;
using rdf::Term;
using testing::ScopedServer;
using workload::DblpSchema;

constexpr int kItemsPerBatch = 5;

std::string BatchValue(int round) { return "v" + std::to_string(round); }
std::string BatchItem(int round, int j) {
  return "s" + std::to_string(round) + "_" + std::to_string(j);
}

/// The writer's protocol, mirrored by the readers' invariant: each round
/// inserts kItemsPerBatch items under <batch> then a <marker> row LAST;
/// teardown erases the marker FIRST, then the items. So in any snapshot
/// a visible marker for round r implies all kItemsPerBatch items of
/// round r are visible too.
void WriterRounds(KgNet* kg, const std::atomic<bool>* stop, int* rounds) {
  rdf::TripleStore& store = kg->store();
  int r = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    for (int j = 0; j < kItemsPerBatch; ++j)
      store.Insert(Term::Iri(BatchItem(r, j)), Term::Iri("batch"),
                   Term::Iri(BatchValue(r)));
    store.Insert(Term::Iri("marker"), Term::Iri("batch"),
                 Term::Iri(BatchValue(r)));

    if (r >= 3) {
      // Retire round r-3: marker first, then its items.
      const int old = r - 3;
      auto erase = [&](const std::string& s, const std::string& o) {
        const rdf::Triple t(store.dict().Find(Term::Iri(s)),
                            store.dict().Find(Term::Iri("batch")),
                            store.dict().Find(Term::Iri(o)));
        store.Erase(t);
      };
      erase("marker", BatchValue(old));
      for (int j = 0; j < kItemsPerBatch; ++j)
        erase(BatchItem(old, j), BatchValue(old));
    }
    if (r % 7 == 3) store.Compact();  // churn the generation layer too
    ++r;
  }
  *rounds = r;
}

TEST(ServingStressTest, SnapshotIsolationUnderConcurrentMutation) {
  KgNet kg;
  kg.store().InsertIris("warm", "batch", "v-warm");  // non-empty store
  ServerOptions options;
  options.num_workers = 4;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok()) << scope.start_status();

  std::atomic<bool> stop{false};
  int writer_rounds = 0;
  std::thread writer(
      [&] { WriterRounds(&kg, &stop, &writer_rounds); });

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 60;
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int c = 0; c < kReaders; ++c) {
    readers.emplace_back([&] {
      KgClient client;
      if (!scope.Connect(&client).ok()) {
        ++failures;
        return;
      }
      uint64_t last_epoch = 0;
      for (int q = 0; q < kQueriesPerReader; ++q) {
        auto resp = client.Query("SELECT ?s ?o WHERE { ?s <batch> ?o . }");
        if (!resp.ok()) {
          ++failures;
          continue;
        }
        // Plain reads always run on the concurrent snapshot path, and a
        // connection's snapshots never go back in time.
        if (!resp->has_snapshot || resp->epoch < last_epoch) ++violations;
        last_epoch = resp->epoch;

        // Batch-marker invariant: a visible marker for a round means the
        // snapshot saw the complete batch of that round.
        std::map<std::string, int> items;
        std::map<std::string, bool> markers;
        for (const auto& row : resp->result.rows) {
          if (row.size() != 2 || !row[0].is_iri() || !row[1].is_iri()) {
            ++violations;
            continue;
          }
          if (row[0].lexical == "marker")
            markers[row[1].lexical] = true;
          else if (row[0].lexical != "warm")
            ++items[row[1].lexical];
        }
        for (const auto& [value, present] : markers)
          if (present && items[value] != kItemsPerBatch) ++violations;
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(writer_rounds, 3) << "writer barely ran; soak proved nothing";
  const KgServer::Stats stats = scope.server().stats();
  EXPECT_GE(stats.requests_served,
            static_cast<uint64_t>(kReaders * kQueriesPerReader));
}

TEST(ServingStressTest, InferenceStableWhileStoreChurns) {
  KgNet kg;
  workload::DblpOptions opts;
  opts.num_papers = 80;
  opts.num_authors = 40;
  opts.num_venues = 4;
  opts.num_affiliations = 8;
  opts.include_periphery = false;
  ASSERT_TRUE(workload::GenerateDblp(opts, &kg.store()).ok());

  core::TrainTaskSpec nc;
  nc.task = gml::TaskType::kNodeClassification;
  nc.target_type_iri = DblpSchema::Publication();
  nc.label_predicate_iri = DblpSchema::PublishedIn();
  nc.config.epochs = 3;
  nc.config.hidden_dim = 8;
  nc.config.embed_dim = 8;
  nc.model_name = "stress-nc";
  auto trained = kg.TrainTask(nc);
  ASSERT_TRUE(trained.ok()) << trained.status();
  const std::string model_uri = trained->model_uri;

  std::vector<std::string> nodes;
  for (int i = 0; i < 12; ++i)
    nodes.push_back("https://dblp.org/rdf/publication/" + std::to_string(i));
  // Ground truth from the frozen model, before any churn.
  std::vector<std::string> want;
  for (const std::string& n : nodes) {
    auto r = kg.service().inference_manager().GetNodeClass(model_uri, n);
    ASSERT_TRUE(r.ok()) << r.status();
    want.push_back(*r);
  }

  ServerOptions options;
  options.num_workers = 4;
  options.batcher.window_us = 1000;
  options.batcher.max_batch = 6;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());

  std::atomic<bool> stop{false};
  int writer_rounds = 0;
  std::thread writer(
      [&] { WriterRounds(&kg, &stop, &writer_rounds); });

  constexpr int kClients = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      KgClient client;
      if (!scope.Connect(&client).ok()) {
        ++failures;
        return;
      }
      for (int q = 0; q < 40; ++q) {
        const size_t i = (c + q) % nodes.size();
        auto r = client.NodeClass(model_uri, nodes[i]);
        if (!r.ok())
          ++failures;
        else if (*r != want[i])
          ++mismatches;
        // Interleave a plain read so the snapshot and inference paths
        // contend inside the same connections' worker threads.
        if (q % 5 == 0 &&
            !client.Query("SELECT ?s WHERE { ?s <batch> ?o . }").ok())
          ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "batched inference answers drifted under store churn";
  EXPECT_GT(writer_rounds, 0);
}

TEST(ServingStressTest, ChaoticClientsNeverWedgeTheServer) {
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  ServerOptions options;
  options.num_workers = 2;
  options.queue_depth = 4;
  options.idle_timeout_ms = 300;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());

  std::atomic<bool> stop{false};
  int writer_rounds = 0;
  std::thread writer(
      [&] { WriterRounds(&kg, &stop, &writer_rounds); });

  // Chaos: connect, occasionally send garbage or half a frame, drop.
  std::vector<std::thread> chaos;
  for (int c = 0; c < 3; ++c) {
    chaos.emplace_back([&, c] {
      for (int i = 0; i < 25; ++i) {
        KgClient client;
        if (!scope.Connect(&client).ok()) continue;
        switch ((c + i) % 4) {
          case 0:
            client.Ping();
            break;
          case 1:
            client.Call("garbage!");
            break;
          case 2: {
            const char half[3] = {0, 0, 7};  // prefix fragment, then drop
            client.SendRaw(half, 3);
            break;
          }
          case 3:
            client.Query("SELECT ?s WHERE { ?s <p1> ?o . }");
            break;
        }
      }
    });
  }
  for (auto& t : chaos) t.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  // After the dust settles the server still serves a clean session.
  KgClient probe;
  ASSERT_TRUE(scope.Connect(&probe).ok());
  EXPECT_TRUE(probe.Ping().ok());
  auto r = probe.Query("SELECT ?s WHERE { ?s <p1> ?o . }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->result.NumRows(), 1u);
}

}  // namespace
}  // namespace kgnet::serving
