// Planner-choice unit tests: asserts, via QueryEngine::Explain() and the
// ExecInfo counters, that the cost-based planner picks the intended join
// algorithm per query shape and that LIMIT short-circuits the scans.
#include <gtest/gtest.h>

#include <string>

#include "rdf/term.h"
#include "sparql/engine.h"
#include "sparql/parser.h"

namespace kgnet::sparql {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : engine_(&store_) {
    // Star data: 100 typed subjects, 4 colors (25 subjects each).
    for (int i = 0; i < 100; ++i) {
      const std::string s = "s" + std::to_string(i);
      store_.InsertIris(s, std::string(rdf::kRdfType), "T");
      store_.InsertIris(s, "color", "c" + std::to_string(i % 4));
    }
    // Chain data: u -> e0 -> v -> e1 -> w -> e2 -> x, ~200 triples each.
    for (int i = 0; i < 200; ++i) {
      store_.InsertIris("u" + std::to_string(i % 50), "e0",
                        "v" + std::to_string((i * 7) % 60));
      store_.InsertIris("v" + std::to_string(i % 60), "e1",
                        "w" + std::to_string((i * 3) % 40));
      store_.InsertIris("w" + std::to_string(i % 40), "e2",
                        "x" + std::to_string((i * 11) % 30));
    }
  }

  std::string Plan(const std::string& query) {
    auto p = engine_.ExplainString(query);
    EXPECT_TRUE(p.ok()) << p.status();
    return p.ok() ? *p : std::string();
  }

  /// Executes `query` and returns (rows, scanned) from ExecInfo.
  std::pair<size_t, size_t> Run(const std::string& query) {
    auto q = ParseQuery(query);
    EXPECT_TRUE(q.ok()) << q.status();
    if (!q.ok()) return {0, 0};
    ExecInfo info;
    auto r = engine_.Execute(*q, &info);
    EXPECT_TRUE(r.ok()) << r.status();
    if (!r.ok()) return {0, 0};
    return {r->NumRows(), info.rows_scanned};
  }

  rdf::TripleStore store_;
  QueryEngine engine_;
};

TEST_F(PlanTest, StarJoinUsesMergeJoinWhenOrdersAlign) {
  // Both patterns scan a (p,o)-bound range ordered by ?x, so the planner
  // must pick the merge join over hash/bind.
  const std::string plan =
      Plan("SELECT ?x WHERE { ?x a <T> . ?x <color> <c1> . }");
  EXPECT_NE(plan.find("MergeJoin(?x)"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("HashJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("IndexScan["), std::string::npos) << plan;
}

TEST_F(PlanTest, ChainJoinStreamsMergeViaPsoIndex) {
  // An object-subject chain. ?b sits in subject position of the second
  // pattern with its predicate the only bound term; before the PSO index
  // existed, streaming that side ordered by ?b needed a full SPO scan,
  // forcing a HashJoin. Now the planner must ride PSO into a merge join.
  const std::string plan =
      Plan("SELECT ?a ?c WHERE { ?a <e0> ?b . ?b <e1> ?c . }");
  EXPECT_NE(plan.find("MergeJoin(?b)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("IndexScan[pso]"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("HashJoin"), std::string::npos) << plan;
}

TEST_F(PlanTest, ThreeChainTailFallsBackToHashJoin) {
  // The middle and last hops merge on ?c (PSO again); the running plan
  // then streams ordered by ?c, so the remaining hop's shared variable
  // ?b cannot merge and hashes instead.
  const std::string plan = Plan(
      "SELECT ?a ?d WHERE { ?a <e0> ?b . ?b <e1> ?c . ?c <e2> ?d . }");
  EXPECT_NE(plan.find("MergeJoin(?c)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("HashJoin(?b)"), std::string::npos) << plan;
}

TEST_F(PlanTest, DisconnectedPatternsUseCrossHashJoin) {
  const std::string plan =
      Plan("SELECT ?a ?x WHERE { ?a <e0> ?b . ?x <e2> ?y . }");
  EXPECT_NE(plan.find("HashJoin(cross)"), std::string::npos) << plan;
}

TEST_F(PlanTest, SelectiveOuterUsesBindJoin) {
  // <u1> binds the first pattern to a handful of rows; seeking the inner
  // index once per outer row beats scanning the full e1 range.
  const std::string plan =
      Plan("SELECT ?c WHERE { <u1> <e0> ?b . ?b <e1> ?c . }");
  EXPECT_NE(plan.find("BindJoin(?b)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("IndexScan[auto]"), std::string::npos) << plan;
}

TEST_F(PlanTest, FiltersAttachInsidePlan) {
  const std::string plan = Plan(
      "SELECT ?x WHERE { ?x a <T> . ?x <color> <c1> . "
      "FILTER(?x != <s5>) }");
  EXPECT_NE(plan.find("Filter("), std::string::npos) << plan;
}

TEST_F(PlanTest, SelectModifiersWrapThePlan) {
  const std::string plan =
      Plan("SELECT DISTINCT ?x WHERE { ?x a <T> . } LIMIT 7 OFFSET 2");
  EXPECT_NE(plan.find("Limit(7 offset=2)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Project(distinct ?x)"), std::string::npos) << plan;
}

TEST_F(PlanTest, PlannerEstimatesAppearInExplain) {
  const std::string plan = Plan("SELECT ?x WHERE { ?x <color> <c1> . }");
  EXPECT_NE(plan.find("est=25"), std::string::npos) << plan;
}

TEST_F(PlanTest, MergeAndHashPlansProduceCorrectRows) {
  auto star = Run("SELECT ?x WHERE { ?x a <T> . ?x <color> <c1> . }");
  EXPECT_EQ(star.first, 25u);
  // The chain result must agree between the streaming plan and the
  // legacy evaluator.
  auto chain = Run("SELECT ?a ?c WHERE { ?a <e0> ?b . ?b <e1> ?c . }");
  engine_.set_exec_mode(ExecMode::kMaterialized);
  auto legacy = Run("SELECT ?a ?c WHERE { ?a <e0> ?b . ?b <e1> ?c . }");
  engine_.set_exec_mode(ExecMode::kStreaming);
  EXPECT_EQ(chain.first, legacy.first);
  EXPECT_GT(chain.first, 0u);
}

TEST_F(PlanTest, LimitShortCircuitsScanCounts) {
  const std::string query =
      "SELECT ?x WHERE { ?x a <T> . ?x <color> <c1> . }";
  auto [full_rows, full_scanned] = Run(query);
  auto [lim_rows, lim_scanned] = Run(query + " LIMIT 3");
  EXPECT_EQ(full_rows, 25u);
  EXPECT_EQ(lim_rows, 3u);
  // Streaming LIMIT must stop the scans well before a full evaluation.
  EXPECT_LT(lim_scanned, full_scanned / 2) << "full=" << full_scanned
                                           << " limited=" << lim_scanned;
}

TEST_F(PlanTest, LimitZeroReturnsNoRows) {
  auto [rows, scanned] = Run("SELECT ?x WHERE { ?x a <T> . } LIMIT 0");
  EXPECT_EQ(rows, 0u);
  EXPECT_EQ(scanned, 0u);
}

TEST_F(PlanTest, LazyHashBuildShortCircuitsUnderLimit) {
  // The three-hop chain ends in a HashJoin (see above). Its build side is
  // pulled lazily (symmetric hash join), so a LIMIT above the join must
  // stop the build-side scan early too, not just the probe.
  const std::string query =
      "SELECT ?a ?d WHERE { ?a <e0> ?b . ?b <e1> ?c . ?c <e2> ?d . }";
  auto [full_rows, full_scanned] = Run(query);
  auto [lim_rows, lim_scanned] = Run(query + " LIMIT 3");
  ASSERT_GT(full_rows, 3u);
  EXPECT_EQ(lim_rows, 3u);
  EXPECT_LT(lim_scanned, full_scanned / 2) << "full=" << full_scanned
                                           << " limited=" << lim_scanned;
}

TEST_F(PlanTest, UnionStreamsAsUnionAllNode) {
  const std::string plan = Plan(
      "SELECT ?s WHERE { { ?s a <T> . } UNION { ?s <color> <c1> . } }");
  EXPECT_NE(plan.find("Union(2 branches)"), std::string::npos) << plan;
  auto [rows, scanned] = Run(
      "SELECT ?s WHERE { { ?s a <T> . } UNION { ?s <color> <c1> . } }");
  (void)scanned;
  EXPECT_EQ(rows, 125u);  // 100 typed + 25 color-c1
}

TEST_F(PlanTest, OptionalStreamsAsLeftJoinNode) {
  const std::string plan = Plan(
      "SELECT ?x ?c WHERE { ?x a <T> . OPTIONAL { ?x <color> ?c . } }");
  EXPECT_NE(plan.find("LeftJoin(optional)"), std::string::npos) << plan;
  auto [rows, scanned] = Run(
      "SELECT ?x ?c WHERE { ?x a <T> . OPTIONAL { ?x <color> ?c . } }");
  (void)scanned;
  EXPECT_EQ(rows, 100u);  // every subject has exactly one color
}

TEST_F(PlanTest, StreamingUnionLimitShortCircuitsScans) {
  const std::string query =
      "SELECT ?s WHERE { { ?s a <T> . } UNION { ?s <color> <c1> . } }";
  auto [full_rows, full_scanned] = Run(query);
  auto [lim_rows, lim_scanned] = Run(query + " LIMIT 5");
  EXPECT_EQ(full_rows, 125u);
  EXPECT_EQ(lim_rows, 5u);
  EXPECT_LT(lim_scanned, full_scanned / 2) << "full=" << full_scanned
                                           << " limited=" << lim_scanned;
}

class TrioPlanTest : public ::testing::Test {
 protected:
  TrioPlanTest() : store_(TrioOptions()), engine_(&store_) {
    for (int i = 0; i < 200; ++i) {
      store_.InsertIris("u" + std::to_string(i % 50), "e0",
                        "v" + std::to_string((i * 7) % 60));
      store_.InsertIris("v" + std::to_string(i % 60), "e1",
                        "w" + std::to_string((i * 3) % 40));
    }
  }
  static rdf::TripleStore::Options TrioOptions() {
    rdf::TripleStore::Options opts;
    opts.index_set = rdf::TripleStore::Options::IndexSet::kClassicTrio;
    return opts;
  }
  rdf::TripleStore store_;
  QueryEngine engine_;
};

TEST_F(TrioPlanTest, PlannerFallsBackGracefullyWithoutSecondTrio) {
  // The chain shape whose merge join rides PSO under the full index set:
  // with only SPO/POS/OSP maintained, the planner must not reference the
  // absent permutations and must still answer correctly (hash or bind
  // join instead of the PSO-fed merge).
  const std::string query =
      "SELECT ?a ?c WHERE { ?a <e0> ?b . ?b <e1> ?c . }";
  auto plan = engine_.ExplainString(query);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->find("IndexScan[pso]"), std::string::npos) << *plan;
  EXPECT_EQ(plan->find("IndexScan[ops]"), std::string::npos) << *plan;
  EXPECT_EQ(plan->find("IndexScan[sop]"), std::string::npos) << *plan;

  auto streamed = engine_.ExecuteString(query);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  engine_.set_exec_mode(ExecMode::kMaterialized);
  auto legacy = engine_.ExecuteString(query);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(streamed->NumRows(), legacy->NumRows());
  EXPECT_GT(streamed->NumRows(), 0u);
}

TEST_F(PlanTest, AskStopsAtFirstRow) {
  auto q = ParseQuery("ASK { ?x a <T> . ?x <color> <c1> . }");
  ASSERT_TRUE(q.ok());
  ExecInfo info;
  auto r = engine_.Execute(*q, &info);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ask_result);
  EXPECT_LT(info.rows_scanned, 30u);
}

}  // namespace
}  // namespace kgnet::sparql
