// Resilience tests (docs/RESILIENCE.md), in six parts:
//
//  1. CancelToken / CancelSource units: latch-once semantics, the
//     deadline trip (including an already-expired deadline tripping the
//     very first poll), the abandon probe, poll accounting.
//  2. FaultInjector: the pure decision function, determinism, counter
//     bookkeeping, the scoped guard, and env-style arming.
//  3. Retry policy: the per-class retryable predicate and the pinned
//     deterministic backoff schedule.
//  4. CircuitBreaker unit: closed -> open -> half-open -> closed/reopen,
//     single-probe admission, Abort() releasing a probe slot.
//  5. Server end-to-end: deadline edge cases (0, queue-expired,
//     exec-expired) with per-request stats, worker reclaim after a
//     deadline, client-abandonment cancellation, drain, the `.health`
//     verb, rid deduplication under injected response loss, and the
//     breaker opening/recovering against an injected wedged model.
//  6. Transport hardening satellites: EINTR storms mid round-trip and
//     SIGPIPE-free writes to half-closed sockets.
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/fault_injection.h"
#include "core/kgnet.h"
#include "serving/circuit_breaker.h"
#include "sparql/parser.h"
#include "tests/serving_test_util.h"

namespace kgnet::serving {
namespace {

using common::CancelReason;
using common::CancelSource;
using common::CancelToken;
using common::FaultInjector;
using common::FaultSite;
using common::ScopedFaultInjection;
using core::KgNet;
using testing::LocalExpectedResponse;
using testing::ScopedServer;

// ------------------------------------------------------- cancellation --

TEST(CancelTest, DefaultTokenIsInert) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(token.Check().ok());
  EXPECT_EQ(token.checks(), 0u);
}

TEST(CancelTest, ExplicitCancelLatches) {
  CancelSource source;
  CancelToken token = source.token();
  EXPECT_TRUE(token.valid());
  EXPECT_TRUE(token.Check().ok());
  source.Cancel();
  const Status st = token.Check();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_TRUE(source.cancel_requested());
  // The first reason wins: a later drain cancel does not change it.
  source.Cancel(CancelReason::kDrain);
  EXPECT_EQ(token.Check(), st);
}

TEST(CancelTest, AlreadyExpiredDeadlineTripsFirstPoll) {
  CancelSource source;
  source.set_deadline(std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1));
  CancelToken token = source.token();
  // The deadline is only evaluated every kDeadlineStride polls, but
  // poll 0 lands on the stride, so an already-dead request never runs.
  const Status st = token.Check();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTest, FutureDeadlineTripsAfterPassing) {
  CancelSource source;
  source.set_deadline(std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(50));
  CancelToken token = source.token();
  EXPECT_TRUE(token.Check().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  Status st = Status::OK();
  // At most one deadline stride of OK polls before the trip.
  for (int i = 0; i < 100 && st.ok(); ++i) st = token.Check();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTest, AbandonProbeTripsOnProbeStride) {
  CancelSource source;
  int probes = 0;
  source.set_abandon_probe([&probes] {
    ++probes;
    return true;
  });
  CancelToken token = source.token();
  Status st = Status::OK();
  int polls = 0;
  while (st.ok() && polls < 5000) {
    st = token.Check();
    ++polls;
  }
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(probes, 1);       // evaluated once per probe stride
  EXPECT_LE(polls, 1024);     // tripped within the first stride
  EXPECT_EQ(token.checks(), static_cast<uint64_t>(polls));
}

TEST(CancelTest, ExecutorReportsCancelChecks) {
  KgNet kg;
  for (int i = 0; i < 20; ++i)
    kg.store().InsertIris("n" + std::to_string(i), "p1",
                          "n" + std::to_string((i + 1) % 20));
  auto parsed = sparql::ParseQuery("SELECT * WHERE { ?a <p1> ?b . }");
  ASSERT_TRUE(parsed.ok());
  CancelSource source;
  sparql::ExecInfo info;
  const rdf::Snapshot snapshot = kg.store().OpenSnapshot();
  auto result =
      kg.service().engine().Execute(*parsed, snapshot, &info, source.token());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->NumRows(), 20u);
  EXPECT_GT(info.cancel_checks, 0u);
}

TEST(CancelTest, CheckNowEvaluatesDeadlineOffStride) {
  // Trainers poll once per epoch; the 64-poll deadline stride would let
  // a deadline slide for dozens of epochs, so they use CheckNow, which
  // consults the clock on every call.
  CancelSource source;
  source.set_deadline(std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(30));
  CancelToken token = source.token();
  EXPECT_TRUE(token.Check().ok());  // poll 0 lands on the stride, pre-deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Polls 1..62 sit between stride landings: the expired deadline is
  // invisible to Check() until poll 64.
  for (int i = 1; i < 63; ++i) EXPECT_TRUE(token.Check().ok()) << i;
  // CheckNow sees it immediately, and the reason latches for later polls.
  EXPECT_EQ(token.CheckNow().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------- fault injection --

TEST(FaultInjectionTest, DecisionIsPureAndRateBounded) {
  for (uint64_t n = 0; n < 50; ++n) {
    const bool a = FaultInjector::Decision(42, FaultSite::kSocketRead, n, 0.3);
    const bool b = FaultInjector::Decision(42, FaultSite::kSocketRead, n, 0.3);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(FaultInjector::Decision(42, FaultSite::kSocketRead, n, 0.0));
    EXPECT_TRUE(FaultInjector::Decision(42, FaultSite::kSocketRead, n, 1.0));
  }
  // Distinct sites get distinct decision streams from the same seed.
  int diffs = 0;
  for (uint64_t n = 0; n < 200; ++n)
    if (FaultInjector::Decision(9, FaultSite::kSocketRead, n, 0.5) !=
        FaultInjector::Decision(9, FaultSite::kModelCall, n, 0.5))
      ++diffs;
  EXPECT_GT(diffs, 0);
}

TEST(FaultInjectionTest, EmpiricalRateNearConfigured) {
  int fired = 0;
  const int kTrials = 10000;
  for (uint64_t n = 0; n < kTrials; ++n)
    if (FaultInjector::Decision(7, FaultSite::kFrameParse, n, 0.1)) ++fired;
  EXPECT_GT(fired, kTrials / 20);      // > 5%
  EXPECT_LT(fired, kTrials * 3 / 20);  // < 15%
}

TEST(FaultInjectionTest, DisabledInjectorNeverFires) {
  ScopedFaultInjection guard;  // disarm for the scope
  FaultInjector& fi = FaultInjector::Instance();
  EXPECT_FALSE(fi.enabled());
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(fi.ShouldFail(FaultSite::kSocketRead));
  EXPECT_EQ(fi.invocations(FaultSite::kSocketRead), 0u);
  EXPECT_EQ(fi.total_fired(), 0u);
}

TEST(FaultInjectionTest, ShouldFailMatchesDecisionSchedule) {
  ScopedFaultInjection guard(1234, 0.25);
  FaultInjector& fi = FaultInjector::Instance();
  for (uint64_t n = 0; n < 100; ++n) {
    const bool expected =
        FaultInjector::Decision(1234, FaultSite::kModelCall, n, 0.25);
    EXPECT_EQ(fi.ShouldFail(FaultSite::kModelCall), expected) << n;
  }
  EXPECT_EQ(fi.invocations(FaultSite::kModelCall), 100u);
}

TEST(FaultInjectionTest, SiteRestrictionKeepsOtherSitesCounting) {
  ScopedFaultInjection guard;
  FaultInjector& fi = FaultInjector::Instance();
  fi.ConfigureSite(5, 1.0, FaultSite::kModelCall);
  EXPECT_TRUE(fi.ShouldFail(FaultSite::kModelCall));
  EXPECT_FALSE(fi.ShouldFail(FaultSite::kSocketRead));
  // The restricted site still counts, preserving the schedule.
  EXPECT_EQ(fi.invocations(FaultSite::kSocketRead), 1u);
  EXPECT_EQ(fi.fired(FaultSite::kSocketRead), 0u);
}

TEST(FaultInjectionTest, ScopedGuardRestoresPreviousConfig) {
  ScopedFaultInjection outer(77, 0.5);
  {
    ScopedFaultInjection inner;  // disarm
    EXPECT_FALSE(FaultInjector::Instance().enabled());
  }
  FaultInjector& fi = FaultInjector::Instance();
  EXPECT_TRUE(fi.enabled());
  EXPECT_EQ(fi.seed(), 77u);
  EXPECT_DOUBLE_EQ(fi.rate(), 0.5);
}

TEST(FaultInjectionTest, SiteNamesAreStable) {
  EXPECT_STREQ(FaultSiteName(FaultSite::kSocketRead), "socket_read");
  EXPECT_STREQ(FaultSiteName(FaultSite::kModelCall), "model_call");
}

// ------------------------------------------------------- retry policy --

TEST(RetryTest, RetryableStatusClasses) {
  EXPECT_TRUE(RetryableStatus(Status::Unavailable("reset")));
  EXPECT_TRUE(RetryableStatus(Status::ResourceExhausted("overload")));
  EXPECT_FALSE(RetryableStatus(Status::OK()));
  EXPECT_FALSE(RetryableStatus(Status::InvalidArgument("bad")));
  EXPECT_FALSE(RetryableStatus(Status::NotFound("gone")));
  EXPECT_FALSE(RetryableStatus(Status::ParseError("syntax")));
  EXPECT_FALSE(RetryableStatus(Status::Internal("bug")));
  EXPECT_FALSE(RetryableStatus(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(RetryableStatus(Status::Cancelled("stopped")));
}

TEST(RetryTest, BackoffScheduleDeterministicAndBounded) {
  RetryOptions options;
  options.initial_backoff_ms = 10;
  options.max_backoff_ms = 80;
  options.jitter_seed = 3;
  int64_t prev_base = 0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const int a = RetryBackoffMs(options, attempt);
    const int b = RetryBackoffMs(options, attempt);
    EXPECT_EQ(a, b) << "schedule must be a pure function";
    // Base doubles 10, 20, 40, 80, 80, ... and jitter adds <= base/2.
    int64_t base = 10;
    for (int i = 1; i < attempt && base < 80; ++i) base *= 2;
    if (base > 80) base = 80;
    EXPECT_GE(a, base);
    EXPECT_LE(a, base + base / 2);
    EXPECT_GE(base, prev_base);
    prev_base = base;
  }
  // Different seeds give different jitter somewhere in the schedule.
  RetryOptions other = options;
  other.jitter_seed = 4;
  bool any_diff = false;
  for (int attempt = 1; attempt <= 8; ++attempt)
    if (RetryBackoffMs(options, attempt) != RetryBackoffMs(other, attempt))
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(RetryTest, RetryMaxEnvStrictlyValidated) {
  KgClient client;
  setenv("KGNET_RETRY_MAX", "7", 1);
  client.ApplyRetryEnv();
  EXPECT_EQ(client.retry_options().max_attempts, 7);
  setenv("KGNET_RETRY_MAX", "0", 1);  // out of range: keep current
  client.ApplyRetryEnv();
  EXPECT_EQ(client.retry_options().max_attempts, 7);
  setenv("KGNET_RETRY_MAX", "3x", 1);  // trailing junk: keep current
  client.ApplyRetryEnv();
  EXPECT_EQ(client.retry_options().max_attempts, 7);
  unsetenv("KGNET_RETRY_MAX");
}

// --------------------------------------------------- breaker unit tests --

TEST(CircuitBreakerTest, OpensAfterConsecutiveInfraFailures) {
  BreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown_ms = 50;
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.Record(Status::Internal("model wedged"));
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A success resets the run: two more failures do not open it...
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.Record(Status::OK());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.Record(Status::Unavailable("down"));
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // ...but the third consecutive one does.
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.Record(Status::Internal("still wedged"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_GT(breaker.retry_after_ms(), 0);
  const Status rejected = breaker.Admit();
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.message().find("retry after"), std::string::npos);
  EXPECT_EQ(breaker.fast_fails(), 1u);
}

TEST(CircuitBreakerTest, ClientErrorsDoNotTrip) {
  BreakerOptions options;
  options.failure_threshold = 2;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.Record(Status::NotFound("no such model"));
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenSingleProbeThenCloseOrReopen) {
  BreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_ms = 30;
  CircuitBreaker breaker(options);
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.Record(Status::Internal("boom"));
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  // Past the cooldown: exactly one probe admitted, others fast-fail.
  ASSERT_TRUE(breaker.Admit().ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  const Status second = breaker.Admit();
  EXPECT_EQ(second.code(), StatusCode::kUnavailable);
  // Probe failure reopens and restarts the cooldown.
  breaker.Record(Status::Internal("still boom"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.Record(Status::OK());  // probe success closes
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit().ok());
}

TEST(CircuitBreakerTest, AbortReleasesProbeSlotWithoutVerdict) {
  BreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_ms = 20;
  CircuitBreaker breaker(options);
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.Record(Status::Internal("boom"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(breaker.Admit().ok());  // claims the probe slot
  breaker.Abort();                    // never reached the model
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.Admit().ok());  // slot free for the next request
  breaker.Record(Status::OK());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ------------------------------------------------- server: deadlines --

/// A deterministic dense graph (out-degree `degree` per node) whose
/// 4-hop chain query streams nodes*degree^4 rows — enough to outlive
/// any test deadline by a wide margin.
void LoadDenseGraph(KgNet* kg, int nodes, int degree) {
  for (int s = 0; s < nodes; ++s)
    for (int k = 0; k < degree; ++k)
      kg->store().InsertIris("n" + std::to_string(s), "p",
                             "n" + std::to_string((s * 31 + k * 17 + 7) %
                                                  nodes));
}

const char kChainQuery[] =
    "SELECT * WHERE { ?a <p> ?b . ?b <p> ?c . ?c <p> ?d . ?d <p> ?e . }";

/// The same 4-hop chain with variable predicates: RoutesToService is
/// true for it (potential SPARQL-ML), so it runs on the serialized
/// service path with the same row volume as kChainQuery.
const char kServiceChainQuery[] =
    "SELECT * WHERE { ?a ?p ?b . ?b ?q ?c . ?c ?r ?d . ?d ?s ?e . }";

TEST(DeadlineTest, ZeroDeadlineFailsImmediately) {
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  auto raw = client.Call(
      BuildQueryRequest(1, "SELECT * WHERE { ?a <p1> ?b . }", 0));
  ASSERT_TRUE(raw.ok()) << raw.status();
  auto parsed = ParseQueryResponse(*raw);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(scope.server().stats().deadline_immediate, 1u);
}

TEST(DeadlineTest, QueueWaitCountsAgainstTheDeadline) {
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  // The connection sat idle past the request's whole budget before the
  // first frame arrived; the budget anchors at enqueue time.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto raw = client.Call(
      BuildQueryRequest(2, "SELECT * WHERE { ?a <p1> ?b . }", 100));
  ASSERT_TRUE(raw.ok()) << raw.status();
  auto parsed = ParseQueryResponse(*raw);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(scope.server().stats().deadline_queue_expired, 1u);
}

TEST(DeadlineTest, ExpiredQueryFreesWorkerForImmediateReuse) {
  KgNet kg;
  LoadDenseGraph(&kg, 200, 15);
  ServerOptions options;
  options.num_workers = 2;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());

  KgClient slow;
  ASSERT_TRUE(scope.Connect(&slow).ok());
  slow.set_request_deadline_ms(250);
  const auto begin = std::chrono::steady_clock::now();
  auto r = slow.Query(kChainQuery);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - begin)
          .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // Cooperative cancellation must unwind the scan promptly (the strict
  // <2x-deadline bound is pinned by bench_serving; sanitizer builds get
  // headroom here).
  EXPECT_LT(elapsed_ms, 2500);
  EXPECT_GE(scope.server().stats().deadline_exec_expired, 1u);

  // Full capacity again: with the slow connection gone, hold
  // num_workers connections open simultaneously and serve a query on
  // each — only possible if the cancelled query's worker was released.
  slow.Close();
  std::vector<std::unique_ptr<KgClient>> clients;
  for (int i = 0; i < options.num_workers; ++i) {
    clients.push_back(std::make_unique<KgClient>());
    ASSERT_TRUE(scope.Connect(clients.back().get()).ok());
  }
  for (std::unique_ptr<KgClient>& c : clients) {
    auto quick = c->Query("SELECT * WHERE { <n1> <p> ?b . } LIMIT 1");
    EXPECT_TRUE(quick.ok()) << quick.status();
  }
}

TEST(DeadlineTest, AbandonedClientQueryIsCancelled) {
  KgNet kg;
  LoadDenseGraph(&kg, 200, 15);
  ServerOptions options;
  options.num_workers = 1;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());

  {
    KgClient ghost;
    ASSERT_TRUE(scope.Connect(&ghost).ok());
    // Send the long query and vanish without reading the response.
    const std::string frame = EncodeFrame(BuildQueryRequest(3, kChainQuery));
    ASSERT_TRUE(ghost.SendRaw(frame.data(), frame.size()).ok());
  }  // ghost closes here

  // The abandon probe reclaims the only worker; a live client's query
  // must get through long before the chain query could finish.
  KgClient live;
  ASSERT_TRUE(scope.Connect(&live).ok());
  live.set_timeout_ms(20000);
  auto r = live.Query("SELECT * WHERE { <n1> <p> ?b . } LIMIT 1");
  EXPECT_TRUE(r.ok()) << r.status();
  EXPECT_GE(scope.server().stats().cancelled, 1u);
}

TEST(DeadlineTest, SerializedServicePathHonorsDeadline) {
  // Deadline coverage for the serialized (ml_mu_) path: a
  // variable-predicate chain query routes to the service, where the
  // token now rides through SparqlMlService::Execute into the engine.
  KgNet kg;
  LoadDenseGraph(&kg, 200, 15);
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  client.set_timeout_ms(20000);
  auto raw = client.Call(BuildQueryRequest(4, kServiceChainQuery, 150));
  ASSERT_TRUE(raw.ok()) << raw.status();
  auto parsed = ParseQueryResponse(*raw);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(scope.server().stats().deadline_exec_expired, 1u);
}

// ------------------------------------------------------ server: drain --

TEST(DrainTest, DrainCancelsInFlightAndRejectsNewWork) {
  KgNet kg;
  LoadDenseGraph(&kg, 200, 15);
  ServerOptions options;
  options.num_workers = 2;
  options.drain_timeout_ms = 200;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());

  std::atomic<bool> got_response{false};
  Status slow_status = Status::OK();
  std::thread slow_thread([&scope, &slow_status, &got_response] {
    KgClient slow;
    if (!scope.Connect(&slow).ok()) return;
    slow.set_timeout_ms(20000);
    auto r = slow.Query(kChainQuery);
    slow_status = r.status();
    got_response.store(true);
  });
  // Let the slow query reach execution, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto begin = std::chrono::steady_clock::now();
  scope.server().Drain();
  const auto drain_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - begin)
                            .count();
  slow_thread.join();
  EXPECT_TRUE(scope.server().draining());
  ASSERT_TRUE(got_response.load());
  EXPECT_EQ(slow_status.code(), StatusCode::kCancelled) << slow_status;
  EXPECT_GE(scope.server().stats().cancelled, 1u);
  // Bounded shutdown: drain timeout plus cancellation latency, not the
  // full runtime of the chain query.
  EXPECT_LT(drain_ms, 5000);
  // The server is stopped; new connections are refused outright.
  KgClient after;
  EXPECT_FALSE(scope.Connect(&after).ok());
}

TEST(DrainTest, DrainCancelsSerializedServicePathRequests) {
  // Regression: the serialized path used to register a null
  // CancelSource, so a drain's hard-cancel never reached it and Stop()
  // blocked in the worker join until the query ran dry. Service-path
  // requests now register like plain reads.
  KgNet kg;
  LoadDenseGraph(&kg, 200, 15);
  ServerOptions options;
  options.num_workers = 1;
  options.drain_timeout_ms = 200;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());

  std::atomic<bool> got_response{false};
  Status slow_status = Status::OK();
  std::thread slow_thread([&scope, &slow_status, &got_response] {
    KgClient slow;
    if (!scope.Connect(&slow).ok()) return;
    slow.set_timeout_ms(20000);
    auto r = slow.Query(kServiceChainQuery);
    slow_status = r.status();
    got_response.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto begin = std::chrono::steady_clock::now();
  scope.server().Drain();
  const auto drain_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - begin)
                            .count();
  slow_thread.join();
  ASSERT_TRUE(got_response.load());
  EXPECT_EQ(slow_status.code(), StatusCode::kCancelled) << slow_status;
  EXPECT_GE(scope.server().stats().cancelled, 1u);
  EXPECT_LT(drain_ms, 5000);
}

TEST(DrainTest, RapidStartStopNeverStrandsAWorker) {
  // Regression: Stop() used to flip the stop flag *outside* queue_mu_, so
  // a worker that had just evaluated its wait predicate — but not yet
  // blocked — missed both the flag and the broadcast and slept forever,
  // deadlocking the join. Start/Stop back-to-back lands workers in exactly
  // that window; without the fix this loop eventually hangs (and the ctest
  // timeout flags it).
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  ServerOptions options;
  options.num_workers = 4;
  options.queue_depth = 2;
  for (int i = 0; i < 200; ++i) {
    KgServer server(&kg.service(), options);
    ASSERT_TRUE(server.Start().ok()) << "iteration " << i;
    server.Stop();
  }
}

// ----------------------------------------------------- server: health --

TEST(HealthTest, ReportsBreakerQueueEpochAndServed) {
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  ServerOptions options;
  options.queue_depth = 16;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  ASSERT_TRUE(client.Ping().ok());
  auto h = client.Health();
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_EQ(h->breaker, "closed");
  EXPECT_EQ(h->retry_after_ms, 0);
  EXPECT_EQ(h->queue_capacity, 16u);
  EXPECT_FALSE(h->draining);
  EXPECT_GE(h->requests_served, 1u);  // the ping
  EXPECT_EQ(h->epoch, kg.store().OpenSnapshot().epoch());
}

// -------------------------------------------- server: rid deduplication --

TEST(RidDedupTest, ReplayedUpdateAppliesOnceAndReturnsCachedBytes) {
  KgNet kg;
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());

  const std::string body = BuildQueryRequest(
      7, "INSERT DATA { <n9> <p1> <n1> . }", -1, "rid-test-1");
  auto first = client.Call(body);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = client.Call(body);  // byte-identical retry
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*first, *second);  // cached response, byte-for-byte
  EXPECT_EQ(scope.server().stats().rid_replays, 1u);
  // Applied exactly once.
  KgClient reader;
  ASSERT_TRUE(scope.Connect(&reader).ok());
  auto rows = reader.Query("SELECT * WHERE { <n9> <p1> ?o . }");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->result.NumRows(), 1u);
}

TEST(RidDedupTest, RetryUnderInjectedResponseLossAppliesOnce) {
  // Pick a seed whose socket-write schedule drops the first response and
  // lets the retry through — the decision function makes this a
  // deterministic, replayable scenario rather than a race.
  uint64_t seed = 0;
  for (uint64_t s = 1; s < 10000; ++s) {
    if (FaultInjector::Decision(s, FaultSite::kSocketWrite, 0, 0.5) &&
        !FaultInjector::Decision(s, FaultSite::kSocketWrite, 1, 0.5) &&
        !FaultInjector::Decision(s, FaultSite::kSocketWrite, 2, 0.5)) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u);

  KgNet kg;
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 1;
  retry.max_backoff_ms = 10;
  client.set_retry_options(retry);

  ScopedFaultInjection guard;
  FaultInjector::Instance().ConfigureSite(seed, 0.5, FaultSite::kSocketWrite);
  auto r = client.Query("INSERT DATA { <n8> <p2> <n1> . }");
  ASSERT_TRUE(r.ok()) << r.status();
  FaultInjector::Instance().Disable();

  EXPECT_GE(scope.server().stats().rid_replays, 1u);
  KgClient reader;
  ASSERT_TRUE(scope.Connect(&reader).ok());
  auto rows = reader.Query("SELECT * WHERE { <n8> <p2> ?o . }");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->result.NumRows(), 1u);
}

TEST(RidDedupTest, DistinctClientsWithDefaultOptionsNeverCollide) {
  // Regression: auto-generated rids used to be a pure function of
  // (jitter_seed, request id), so two clients running the default
  // options emitted identical rid sequences and the second client's
  // *different* update was answered from the first one's cache entry —
  // a silently lost write. Rids now mix a per-client nonce.
  KgNet kg;
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());

  RetryOptions retry;  // defaults, identical for both clients
  retry.max_attempts = 3;
  KgClient a;
  KgClient b;
  a.set_retry_options(retry);
  b.set_retry_options(retry);
  EXPECT_NE(a.rid_nonce(), b.rid_nonce());
  ASSERT_TRUE(scope.Connect(&a).ok());
  ASSERT_TRUE(scope.Connect(&b).ok());

  // Same request id (1) on both connections, different payloads.
  auto ra = a.Query("INSERT DATA { <ca> <p1> <n1> . }");
  ASSERT_TRUE(ra.ok()) << ra.status();
  auto rb = b.Query("INSERT DATA { <cb> <p1> <n1> . }");
  ASSERT_TRUE(rb.ok()) << rb.status();

  EXPECT_EQ(scope.server().stats().rid_replays, 0u);
  KgClient reader;
  ASSERT_TRUE(scope.Connect(&reader).ok());
  for (const char* q : {"SELECT * WHERE { <ca> <p1> ?o . }",
                        "SELECT * WHERE { <cb> <p1> ?o . }"}) {
    auto rows = reader.Query(q);
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_EQ(rows->result.NumRows(), 1u) << q;
  }
}

TEST(RidDedupTest, OnlyDefinitiveOutcomesAreCacheable) {
  // Success and deterministic request errors replay; transient classes
  // must re-execute or the retry carrying the same rid can never
  // succeed.
  EXPECT_TRUE(CacheableRidOutcome(Status::OK()));
  EXPECT_TRUE(CacheableRidOutcome(Status::InvalidArgument("bad")));
  EXPECT_TRUE(CacheableRidOutcome(Status::ParseError("bad")));
  EXPECT_TRUE(CacheableRidOutcome(Status::NotFound("missing")));
  EXPECT_FALSE(CacheableRidOutcome(Status::Unavailable("later")));
  EXPECT_FALSE(CacheableRidOutcome(Status::ResourceExhausted("full")));
  EXPECT_FALSE(CacheableRidOutcome(Status::Cancelled("gone")));
  EXPECT_FALSE(CacheableRidOutcome(Status::DeadlineExceeded("late")));
}

TEST(RidDedupTest, TransientErrorIsNotCachedSoTheRetryCanSucceed) {
  // An update that dies on its deadline must not poison its rid: the
  // follow-up attempt with the same rid has to execute, not replay the
  // cached error forever.
  KgNet kg;
  LoadDenseGraph(&kg, 200, 15);
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  client.set_timeout_ms(20000);

  // A mutating INSERT..WHERE whose chain scan cannot finish in 100ms.
  auto first = client.Call(BuildQueryRequest(
      11,
      "INSERT { ?a <marker> <done> } WHERE "
      "{ ?a <p> ?b . ?b <p> ?c . ?c <p> ?d . ?d <p> ?e . }",
      100, "rid-transient-1"));
  ASSERT_TRUE(first.ok()) << first.status();
  auto parsed = ParseQueryResponse(*first);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDeadlineExceeded);

  // Same rid, fresh budget, cheap payload: must execute and succeed.
  auto second = client.Call(BuildQueryRequest(
      12, "INSERT DATA { <t1> <marker> <done> . }", -1, "rid-transient-1"));
  ASSERT_TRUE(second.ok()) << second.status();
  auto ok = ParseQueryResponse(*second);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(scope.server().stats().rid_replays, 0u);
  KgClient reader;
  ASSERT_TRUE(scope.Connect(&reader).ok());
  auto rows = reader.Query("SELECT * WHERE { <t1> <marker> ?o . }");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->result.NumRows(), 1u);
}

// ---------------------------------------------- server: breaker e2e --

TEST(BreakerE2ETest, OpensUnderInjectedModelFaultsAndRecovers) {
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  ServerOptions options;
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_ms = 100;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());

  const std::string q = "SELECT * WHERE { ?a <p1> ?b . }";
  const std::string expected = LocalExpectedResponse(&kg.service(), 42, q);
  {
    ScopedFaultInjection guard;
    FaultInjector::Instance().ConfigureSite(7, 1.0, FaultSite::kModelCall);
    for (int i = 0; i < 3; ++i) {
      auto r = client.NodeClass("m", "n1");
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kInternal) << r.status();
    }
    ASSERT_EQ(scope.server().breaker().state(), CircuitBreaker::State::kOpen);
    // Fast fail: the model site is not even reached.
    const uint64_t calls_before =
        FaultInjector::Instance().invocations(FaultSite::kModelCall);
    auto rejected = client.NodeClass("m", "n1");
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
    EXPECT_NE(rejected.status().message().find("breaker open"),
              std::string::npos);
    EXPECT_EQ(FaultInjector::Instance().invocations(FaultSite::kModelCall),
              calls_before);
    // Plain reads keep serving byte-identical responses throughout.
    auto raw = client.Call(BuildQueryRequest(42, q));
    ASSERT_TRUE(raw.ok()) << raw.status();
    EXPECT_EQ(*raw, expected);
    // `.health` reports the degradation.
    auto h = client.Health();
    ASSERT_TRUE(h.ok()) << h.status();
    EXPECT_EQ(h->breaker, "open");
    EXPECT_GT(h->retry_after_ms, 0);
  }  // injected faults rescinded: the model path works again

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // The half-open probe goes through; NotFound (no model "m") is the
  // request's fault, not the runtime's, so the breaker closes.
  auto probe = client.NodeClass("m", "n1");
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kNotFound) << probe.status();
  EXPECT_EQ(scope.server().breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_GE(scope.server().stats().breaker_fast_fails, 1u);
}

// ----------------------------------------- transport hardening (EINTR) --

std::atomic<int> g_usr1_seen{0};
void OnUsr1(int) { g_usr1_seen.fetch_add(1, std::memory_order_relaxed); }

TEST(TransportTest, SignalStormMidRoundTripDoesNotCorruptFrames) {
  struct sigaction sa;
  struct sigaction old_sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &OnUsr1;
  sa.sa_flags = 0;  // no SA_RESTART: reads really see EINTR
  sigemptyset(&sa.sa_mask);
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old_sa), 0);

  KgNet kg;
  for (int i = 0; i < 50; ++i)
    kg.store().InsertIris("n" + std::to_string(i), "p1",
                          "n" + std::to_string((i + 1) % 50));
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  const std::string q = "SELECT * WHERE { ?a <p1> ?b . }";
  const std::string expected = LocalExpectedResponse(&kg.service(), 11, q);

  std::atomic<bool> done{false};
  const pthread_t target = pthread_self();
  std::thread pummel([&done, target] {
    while (!done.load(std::memory_order_relaxed)) {
      pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 30; ++i) {
    auto raw = client.Call(BuildQueryRequest(11, q));
    ASSERT_TRUE(raw.ok()) << raw.status() << " (iteration " << i << ")";
    ASSERT_EQ(*raw, expected) << "iteration " << i;
  }
  done.store(true);
  pummel.join();
  EXPECT_GT(g_usr1_seen.load(), 0) << "the storm never landed a signal";
  sigaction(SIGUSR1, &old_sa, nullptr);
}

// --------------------------------------- transport hardening (SIGPIPE) --

TEST(TransportTest, WriteToHalfClosedPeerIsUnavailableNotSigpipe) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  close(sv[1]);  // peer is gone
  // Without MSG_NOSIGNAL this would raise SIGPIPE and kill the process;
  // with it, the write fails over to the retryable transport class.
  const Status st = WriteFrame(sv[0], std::string(1 << 16, 'x'));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st;
  close(sv[0]);
}

TEST(TransportTest, ServerSurvivesClientsThatVanishBeforeTheReply) {
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  for (int i = 0; i < 5; ++i) {
    KgClient ghost;
    ASSERT_TRUE(scope.Connect(&ghost).ok());
    const std::string frame =
        EncodeFrame(BuildQueryRequest(1, "SELECT * WHERE { ?a <p1> ?b . }"));
    ASSERT_TRUE(ghost.SendRaw(frame.data(), frame.size()).ok());
    ghost.Close();  // half-close before the server can reply
  }
  // The server took every EPIPE on the chin and keeps serving.
  KgClient live;
  ASSERT_TRUE(scope.Connect(&live).ok());
  EXPECT_TRUE(live.Ping().ok());
  auto r = live.Query("SELECT * WHERE { ?a <p1> ?b . }");
  EXPECT_TRUE(r.ok()) << r.status();
}

// -------------------------------------------------- wire-format compat --

TEST(WireCompatTest, ResilienceFieldsOmittedWhenUnset) {
  const std::string legacy = BuildQueryRequest(1, "SELECT * WHERE { }");
  EXPECT_EQ(legacy.find("deadline_ms"), std::string::npos);
  EXPECT_EQ(legacy.find("rid"), std::string::npos);
  const std::string armed =
      BuildQueryRequest(1, "SELECT * WHERE { }", 100, "r1");
  EXPECT_NE(armed.find("\"deadline_ms\":100"), std::string::npos);
  EXPECT_NE(armed.find("\"rid\":\"r1\""), std::string::npos);
  auto parsed = ParseRequest(armed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->deadline_ms, 100);
  EXPECT_EQ(parsed->rid, "r1");
  auto unset = ParseRequest(legacy);
  ASSERT_TRUE(unset.ok());
  EXPECT_EQ(unset->deadline_ms, -1);
  EXPECT_TRUE(unset->rid.empty());
}

TEST(WireCompatTest, DeadlineFieldStrictlyValidated) {
  auto bad_type = ParseRequest(
      "{\"op\":\"ping\",\"id\":1,\"deadline_ms\":\"soon\"}");
  EXPECT_FALSE(bad_type.ok());
  EXPECT_EQ(bad_type.status().code(), StatusCode::kInvalidArgument);
  auto negative =
      ParseRequest("{\"op\":\"ping\",\"id\":1,\"deadline_ms\":-5}");
  EXPECT_FALSE(negative.ok());
  auto huge = ParseRequest(
      "{\"op\":\"ping\",\"id\":1,\"deadline_ms\":99999999999}");
  EXPECT_FALSE(huge.ok());
  auto bad_rid = ParseRequest("{\"op\":\"ping\",\"id\":1,\"rid\":7}");
  EXPECT_FALSE(bad_rid.ok());
}

}  // namespace
}  // namespace kgnet::serving
