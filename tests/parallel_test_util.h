// Helpers shared by the suites that sweep thread counts to check the
// parallel hot paths' determinism contract.
#ifndef KGNET_TESTS_PARALLEL_TEST_UTIL_H_
#define KGNET_TESTS_PARALLEL_TEST_UTIL_H_

#include <cstdint>
#include <cstring>

#include "common/thread_pool.h"

namespace kgnet::testing {

/// RAII: restores the configured pool thread count on scope exit, so a
/// test cannot leak its override into later suites in the same binary —
/// even when a fatal ASSERT returns out of the test body early.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(common::ThreadPool::num_threads()) {}
  ~ThreadCountGuard() { common::ThreadPool::SetNumThreads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

/// Bitwise equality of two matrix-like payloads (anything with rows(),
/// cols(), data() and ByteSize()).
template <typename M>
bool SameBits(const M& a, const M& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.ByteSize()) == 0;
}

/// The exact bit pattern of a float/double, for EXPECT_EQ comparisons
/// that must not tolerate even a one-ulp divergence.
inline uint64_t BitsOf(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}
inline uint32_t BitsOf(float v) {
  uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace kgnet::testing

#endif  // KGNET_TESTS_PARALLEL_TEST_UTIL_H_
