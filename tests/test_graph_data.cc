#include "gml/graph_data.h"

#include <gtest/gtest.h>

#include <set>

#include "gml/metrics.h"
#include "rdf/term.h"
#include "workload/dblp_gen.h"

namespace kgnet::gml {
namespace {

using rdf::Term;
using workload::DblpSchema;

rdf::TripleStore SmallDblp() {
  rdf::TripleStore store;
  workload::DblpOptions opts;
  opts.num_papers = 100;
  opts.num_authors = 60;
  opts.num_venues = 4;
  opts.num_affiliations = 8;
  opts.include_periphery = true;
  opts.periphery_scale = 0.5;
  EXPECT_TRUE(workload::GenerateDblp(opts, &store).ok());
  return store;
}

TransformOptions NcOptions() {
  TransformOptions t;
  t.target_type_iri = DblpSchema::Publication();
  t.label_predicate_iri = DblpSchema::PublishedIn();
  t.feature_dim = 8;
  return t;
}

TEST(GraphDataTest, NcTransformBasics) {
  rdf::TripleStore store = SmallDblp();
  auto g = BuildGraphData(store, NcOptions());
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_classes, 4u);
  EXPECT_EQ(g->target_nodes.size(), 100u);
  EXPECT_GT(g->num_nodes, 100u);
  EXPECT_GT(g->num_relations, 3u);
  EXPECT_EQ(g->features.rows(), g->num_nodes);
  EXPECT_EQ(g->features.cols(), 8u);
}

TEST(GraphDataTest, LabelEdgesExcludedFromMessagePassing) {
  rdf::TripleStore store = SmallDblp();
  auto g = BuildGraphData(store, NcOptions());
  ASSERT_TRUE(g.ok());
  // The label predicate must not appear among graph relations.
  rdf::TermId label = store.dict().FindIri(DblpSchema::PublishedIn());
  for (rdf::TermId rel : g->relation_terms) EXPECT_NE(rel, label);
}

TEST(GraphDataTest, LiteralsDropped) {
  rdf::TripleStore store = SmallDblp();
  auto g = BuildGraphData(store, NcOptions());
  ASSERT_TRUE(g.ok());
  for (rdf::TermId t : g->node_terms)
    EXPECT_FALSE(store.dict().Lookup(t).is_literal());
}

TEST(GraphDataTest, SplitsPartitionTargets) {
  rdf::TripleStore store = SmallDblp();
  auto g = BuildGraphData(store, NcOptions());
  ASSERT_TRUE(g.ok());
  std::set<uint32_t> seen;
  for (uint32_t i : g->train_idx) seen.insert(i);
  for (uint32_t i : g->valid_idx) EXPECT_TRUE(seen.insert(i).second);
  for (uint32_t i : g->test_idx) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), g->target_nodes.size());
  // Roughly 60/20/20.
  EXPECT_NEAR(g->train_idx.size(), 60, 3);
  EXPECT_NEAR(g->valid_idx.size(), 20, 3);
}

TEST(GraphDataTest, DeterministicForSeed) {
  rdf::TripleStore store = SmallDblp();
  TransformOptions t = NcOptions();
  t.seed = 555;
  auto a = BuildGraphData(store, t);
  auto b = BuildGraphData(store, t);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->train_idx, b->train_idx);
  EXPECT_EQ(a->features.At(0, 0), b->features.At(0, 0));
}

TEST(GraphDataTest, LpTransformSplitsTaskEdges) {
  rdf::TripleStore store = SmallDblp();
  TransformOptions t;
  t.target_type_iri = DblpSchema::Person();
  t.task_predicate_iri = DblpSchema::PrimaryAffiliation();
  t.feature_dim = 8;
  auto g = BuildGraphData(store, t);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_NE(g->task_relation, UINT32_MAX);
  const size_t total = g->train_edges.size() + g->valid_edges.size() +
                       g->test_edges.size();
  EXPECT_EQ(total, 60u);  // one affiliation edge per author
  EXPECT_GT(g->train_edges.size(), g->test_edges.size());
  // Valid/test edges must NOT be in the message-passing edge list.
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> mp;
  for (const Edge& e : g->edges) mp.insert({e.src, e.rel, e.dst});
  for (const Edge& e : g->valid_edges)
    EXPECT_EQ(mp.count({e.src, e.rel, e.dst}), 0u);
  for (const Edge& e : g->test_edges)
    EXPECT_EQ(mp.count({e.src, e.rel, e.dst}), 0u);
  // Training edges ARE in it.
  for (const Edge& e : g->train_edges)
    EXPECT_EQ(mp.count({e.src, e.rel, e.dst}), 1u);
}

TEST(GraphDataTest, CommunitySplitKeepsComponentsTogether) {
  // Two disconnected cliques of labeled nodes.
  rdf::TripleStore store;
  const std::string type = std::string(rdf::kRdfType);
  for (int comp = 0; comp < 2; ++comp) {
    for (int i = 0; i < 10; ++i) {
      std::string node =
          "http://n/" + std::to_string(comp) + "_" + std::to_string(i);
      store.InsertIris(node, type, "http://T");
      store.InsertIris(node, "http://label", "http://class" +
                                                 std::to_string(comp));
      if (i > 0)
        store.InsertIris(node, "http://link",
                         "http://n/" + std::to_string(comp) + "_" +
                             std::to_string(i - 1));
    }
  }
  TransformOptions t;
  t.target_type_iri = "http://T";
  t.label_predicate_iri = "http://label";
  t.split = SplitStrategy::kCommunity;
  t.train_fraction = 0.5;
  t.valid_fraction = 0.25;
  auto g = BuildGraphData(store, t);
  ASSERT_TRUE(g.ok()) << g.status();
  // All nodes of a component share a fold: component == label here, so
  // every fold must be label-pure.
  auto fold_labels = [&](const std::vector<uint32_t>& fold) {
    std::set<int> labels;
    for (uint32_t idx : fold) labels.insert(g->labels[g->target_nodes[idx]]);
    return labels;
  };
  EXPECT_LE(fold_labels(g->train_idx).size(), 1u);
  EXPECT_LE(fold_labels(g->valid_idx).size(), 1u);
}

TEST(GraphDataTest, GcnAdjacencyRowsNormalized) {
  rdf::TripleStore store = SmallDblp();
  auto g = BuildGraphData(store, NcOptions());
  ASSERT_TRUE(g.ok());
  tensor::CsrMatrix adj = g->BuildGcnAdjacency();
  EXPECT_EQ(adj.rows(), g->num_nodes);
  // Symmetric normalization bounds every entry by 1.
  for (float v : adj.values()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f + 1e-5f);
  }
}

TEST(GraphDataTest, RelationalAdjacenciesCoverAllEdges) {
  rdf::TripleStore store = SmallDblp();
  auto g = BuildGraphData(store, NcOptions());
  ASSERT_TRUE(g.ok());
  auto adj = g->BuildRelationalAdjacencies();
  ASSERT_EQ(adj.size(), g->num_relations * 2);
  size_t fwd_nnz = 0;
  for (size_t r = 0; r < g->num_relations; ++r) fwd_nnz += adj[r].nnz();
  // Forward nnz == number of distinct (dst, src) pairs per relation;
  // duplicates collapse, so <= edges but > 0.
  EXPECT_GT(fwd_nnz, 0u);
  EXPECT_LE(fwd_nnz, g->edges.size());
}

TEST(GraphDataTest, ErrorsOnMissingIris) {
  rdf::TripleStore store = SmallDblp();
  TransformOptions t = NcOptions();
  t.target_type_iri = "http://nonexistent";
  EXPECT_FALSE(BuildGraphData(store, t).ok());
  t = NcOptions();
  t.label_predicate_iri = "http://nonexistent";
  EXPECT_FALSE(BuildGraphData(store, t).ok());
}

TEST(MetricsTest, AccuracyIgnoresUnlabeled) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, -1, 0}), 0.5);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MetricsTest, MacroF1PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2}, {0, 1, 2}, 3), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1({1, 2, 0}, {0, 1, 2}, 3), 0.0);
}

TEST(MetricsTest, MrrAndHits) {
  std::vector<size_t> ranks = {1, 2, 10, 100};
  EXPECT_NEAR(MeanReciprocalRank(ranks), (1.0 + 0.5 + 0.1 + 0.01) / 4, 1e-9);
  EXPECT_DOUBLE_EQ(HitsAtK(ranks, 10), 0.75);
  EXPECT_DOUBLE_EQ(HitsAtK(ranks, 1), 0.25);
}

}  // namespace
}  // namespace kgnet::gml
