#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "tests/parallel_test_util.h"

namespace kgnet::common {
namespace {

using testing::ThreadCountGuard;

/// Collects the (begin, end) chunk pairs a ParallelFor produced.
std::vector<std::pair<size_t, size_t>> CollectChunks(size_t begin, size_t end,
                                                     size_t grain) {
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelFor(begin, end, grain, [&](size_t b, size_t e) {
    std::lock_guard<std::mutex> lk(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    ThreadPool::SetNumThreads(threads);
    std::atomic<int> calls{0};
    ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
    ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
  }
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsOneChunk) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    ThreadPool::SetNumThreads(threads);
    auto chunks = CollectChunks(3, 10, 100);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], (std::pair<size_t, size_t>{3, 10}));
  }
}

TEST(ThreadPoolTest, ZeroGrainActsAsOne) {
  ThreadCountGuard guard;
  ThreadPool::SetNumThreads(2);
  auto chunks = CollectChunks(0, 4, 0);
  ASSERT_EQ(chunks.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunks[i].first, i);
    EXPECT_EQ(chunks[i].second, i + 1);
  }
}

// The determinism contract: chunk bounds are a pure function of
// (begin, end, grain), never of the thread count.
TEST(ThreadPoolTest, ChunkBoundsAreFixedByGrainOnly) {
  ThreadCountGuard guard;
  ThreadPool::SetNumThreads(1);
  const auto want = CollectChunks(7, 103, 10);
  // The formula itself, pinned: chunk i = [7 + 10i, min(103, 7 + 10(i+1))).
  ASSERT_EQ(want.size(), 10u);
  EXPECT_EQ(want.front(), (std::pair<size_t, size_t>{7, 17}));
  EXPECT_EQ(want.back(), (std::pair<size_t, size_t>{97, 103}));
  for (int threads : {2, 3, 4, 8}) {
    ThreadPool::SetNumThreads(threads);
    EXPECT_EQ(CollectChunks(7, 103, 10), want) << threads << " threads";
  }
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  ThreadPool::SetNumThreads(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 64, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    ThreadPool::SetNumThreads(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(ParallelFor(0, 100, 1,
                             [&](size_t b, size_t) {
                               ++ran;
                               if (b == 37) throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // Same contract at every thread count: the remaining chunks still
    // run; the first exception is rethrown only after all of them.
    EXPECT_EQ(ran.load(), 100) << threads << " threads";
    // The pool must stay fully usable after a throwing job.
    std::atomic<size_t> sum{0};
    ParallelFor(0, 1000, 16, [&](size_t b, size_t e) {
      size_t local = 0;
      for (size_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  }
}

TEST(ThreadPoolTest, SetNumThreadsClampsToOne) {
  ThreadCountGuard guard;
  ThreadPool::SetNumThreads(0);
  EXPECT_EQ(ThreadPool::num_threads(), 1);
  ThreadPool::SetNumThreads(-3);
  EXPECT_EQ(ThreadPool::num_threads(), 1);
  ThreadPool::SetNumThreads(6);
  EXPECT_EQ(ThreadPool::num_threads(), 6);
}

// Regression: KGNET_NUM_THREADS used to go through atoi, so "0", "-4"
// and "8abc" silently produced nonsense thread counts. The strict parser
// returns 0 (= fall back to hardware_concurrency) for everything that is
// not a plain positive integer.
TEST(ThreadPoolTest, ParseThreadCountEnvAcceptsPositiveIntegers) {
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("1"), 1);
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("8"), 8);
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("128"), 128);
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv(" 4 "), 4);   // whitespace ok
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("\t2"), 2);
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("007"), 7);   // leading zeros ok
}

TEST(ThreadPoolTest, ParseThreadCountEnvRejectsGarbage) {
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv(nullptr), 0);
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv(""), 0);
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv(" "), 0);
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("0"), 0);      // zero threads
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("-4"), 0);     // negative
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("+4"), 0);     // explicit sign
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("abc"), 0);    // non-numeric
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("8abc"), 0);   // trailing junk
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("4.5"), 0);    // not an integer
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("4 2"), 0);    // two numbers
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("0x8"), 0);    // no hex
  // int overflow: atoi's UB territory, now a clean rejection.
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("99999999999999999999"), 0);
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("2147483648"), 0);  // INT_MAX+1
  EXPECT_EQ(ThreadPool::ParseThreadCountEnv("2147483647"), 2147483647);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadCountGuard guard;
  ThreadPool::SetNumThreads(4);
  std::atomic<int> calls{0};
  // A chunk that re-enters the pool must not deadlock; the inner loop
  // runs inline on the worker with the same chunk bounds.
  ParallelFor(0, 8, 1, [&](size_t, size_t) {
    ParallelFor(0, 8, 1, [&](size_t, size_t) { ++calls; });
  });
  EXPECT_EQ(calls.load(), 64);
}

}  // namespace
}  // namespace kgnet::common
