// Fixture: violates KL001 (unordered-iteration). Linted as if it lived
// in src/sparql/, where hash-order iteration is banned.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> RenderBindings() {
  std::unordered_map<std::string, int> bindings;
  bindings["?x"] = 1;
  std::vector<std::string> out;
  // Violation: hash iteration order leaks straight into the output rows.
  for (const auto& [name, slot] : bindings) {
    out.push_back(name + std::to_string(slot));
  }
  // Violation: explicit iterator walk over the same table.
  for (auto it = bindings.begin(); it != bindings.end(); ++it) {
    out.push_back(it->first);
  }
  return out;
}
