// Fixture: violates KL003 (layering). Linted as if it lived in
// src/tensor/, which may include only tensor/ and common/ headers.
#include "common/status.h"       // fine: tensor -> common is in the graph
#include "rdf/triple_store.h"    // violation: tensor must not reach up into rdf
#include "sparql/engine.h"       // violation: nor into sparql

int Dummy() { return 0; }
