// Fixture: violates KL005 (thread-local-justification): a thread_local
// missing its justification marker. This is the PR 5 MemoryMeter bug
// class — per-thread counters that scatter accounting across pool
// workers. (The marker string itself must not appear anywhere near the
// declaration, or the rule would be satisfied by accident.)
thread_local int t_bytes_allocated = 0;

void Track(int bytes) { t_bytes_allocated += bytes; }
