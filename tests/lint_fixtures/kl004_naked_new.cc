// Fixture: violates KL004 (naked-new-delete). Linted as if it lived in
// src/core/. The `= delete` declaration below must NOT fire.
struct Buffer {
  Buffer() = default;
  Buffer(const Buffer&) = delete;  // fine: deleted function, not a delete-expr
  int* data = nullptr;
};

Buffer* MakeBuffer() {
  Buffer* b = new Buffer;   // violation: naked new
  b->data = new int[16];    // violation: naked array new
  return b;
}

void FreeBuffer(Buffer* b) {
  delete[] b->data;  // violation: naked delete
  delete b;          // violation: naked delete
}
