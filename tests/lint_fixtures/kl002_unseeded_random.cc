// Fixture: violates KL002 (unseeded-random) three ways.
#include <cstdlib>
#include <random>

int SampleNode(int n) {
  std::random_device rd;  // violation: nondeterministic seed source
  std::srand(rd());       // violation: srand
  return std::rand() % n; // violation: rand
}
