// Fixture: clean under every kgnet_lint rule, while *mentioning* each
// banned construct in comments and strings — proving the linter strips
// them instead of pattern-matching raw text. Linted as if it lived in
// src/sparql/.
//
// Mentions that must NOT fire: new delete rand() thread_local
// for (auto& kv : some_unordered_map) {}
#include <memory>
#include <string>
#include <unordered_map>

// kgnet-lint: thread_local-ok — fixture: justified per-thread scratch.
thread_local int t_scratch = 0;

int Lookup(const std::string& key) {
  std::unordered_map<std::string, int> table;  // lookups only, no iteration
  table[key] = 42;
  const char* msg = "never call rand() or new int[] in here";
  auto owned = std::make_unique<std::string>(msg);
  auto it = table.find(*owned);
  return it == table.end() ? t_scratch : it->second;
}
