// Serving front-end tests (docs/SERVING.md), in four parts:
//
//  1. The loopback differential harness: ~100 seeded graph/query cases
//     where the server's response bytes must equal the locally built
//     response — same routing, same snapshot discipline, same
//     deterministic serialization (tests/serving_test_util.h).
//  2. Protocol hardening: malformed, truncated, oversized and hostile
//     frames, garbage JSON, wrong-typed fields, half-closed sockets,
//     slow writers and idle peers — the server must answer with a clean
//     error or drop the connection, and always keep serving others.
//  3. Strict env validation for the KGNET_SERVE_* knobs.
//  4. Batching/caching identity: the batched inference path and the
//     embedding-row cache return answers identical to the direct
//     unbatched calls — including identical error statuses — at 1, 2
//     and 4 pool threads.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/kgnet.h"
#include "core/model_io.h"
#include "tests/parallel_test_util.h"
#include "tests/serving_test_util.h"
#include "workload/dblp_gen.h"

namespace kgnet::serving {
namespace {

using core::KgNet;
using testing::GenerateServingCase;
using testing::LoadCase;
using testing::LocalExpectedResponse;
using testing::ScopedServer;
using testing::ServingCase;
using workload::DblpSchema;

// ------------------------------------------------- differential harness --

void RunServingSeeds(uint64_t first_seed, int count) {
  for (int i = 0; i < count; ++i) {
    const uint64_t seed = first_seed + static_cast<uint64_t>(i);
    tensor::Rng rng(seed);
    const ServingCase c = GenerateServingCase(&rng);

    KgNet kg;
    LoadCase(c, &kg.store());
    ServerOptions options;
    options.num_workers = 2;
    ScopedServer scope(&kg.service(), options);
    ASSERT_TRUE(scope.start_status().ok()) << scope.start_status();
    KgClient client;
    ASSERT_TRUE(scope.Connect(&client).ok());

    const double id = 1000 + static_cast<double>(i);
    // No writes happen between the local and the remote execution, so
    // the MVCC snapshots they open are identical — and therefore the
    // response bytes must be too.
    const std::string expected =
        LocalExpectedResponse(&kg.service(), id, c.sparql);
    auto raw = client.Call(BuildQueryRequest(id, c.sparql));
    ASSERT_TRUE(raw.ok()) << raw.status() << "\nseed=" << seed;
    ASSERT_EQ(*raw, expected)
        << "server response diverged from local execution\nseed=" << seed
        << "\n" << c.sparql;
  }
}

TEST(ServingDifferentialTest, SeededQueriesByteIdentical) {
  RunServingSeeds(100, 60);
}

TEST(ServingDifferentialTest, SeededQueriesByteIdenticalSecondBand) {
  RunServingSeeds(40000, 40);
}

TEST(ServingDifferentialTest, SnapshotKeysOnlyOnPlainReadPath) {
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  kg.store().InsertIris("n2", "p2", "n3");
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok()) << scope.start_status();
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());

  // Plain read: concurrent snapshot path, epoch/delta attached.
  auto plain = client.Query("SELECT ?s WHERE { ?s <p1> ?o . }");
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_TRUE(plain->has_snapshot);
  EXPECT_GT(plain->epoch, 0u);

  // Variable predicate: potential SPARQL-ML, serialized service path —
  // no snapshot keys on the wire.
  auto ml = client.Query("SELECT ?s WHERE { ?s ?p <n3> . }");
  ASSERT_TRUE(ml.ok()) << ml.status();
  EXPECT_FALSE(ml->has_snapshot);

  // Both must still match the local oracle byte-for-byte.
  for (const char* q : {"SELECT ?s WHERE { ?s <p1> ?o . }",
                        "SELECT ?s WHERE { ?s ?p <n3> . }"}) {
    const std::string expected = LocalExpectedResponse(&kg.service(), 5, q);
    auto raw = client.Call(BuildQueryRequest(5, q));
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(*raw, expected) << q;
  }
}

TEST(ServingDifferentialTest, ParseErrorsByteIdentical) {
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok()) << scope.start_status();
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  const char* broken[] = {"SELECT WHERE {", "nonsense", "SELECT * WHERE"};
  for (const char* q : broken) {
    const std::string expected = LocalExpectedResponse(&kg.service(), 9, q);
    auto raw = client.Call(BuildQueryRequest(9, q));
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(*raw, expected) << q;
    EXPECT_NE(raw->find("\"ok\":false"), std::string::npos) << q;
  }
  // The connection survived every error response.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServingDifferentialTest, UpdatesRouteToServiceAndApply) {
  KgNet kg;
  kg.store().InsertIris("n1", "p1", "n2");
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok()) << scope.start_status();
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  auto ins = client.Query("INSERT DATA { <n9> <p1> <n1> . }");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_FALSE(ins->has_snapshot);  // serialized single-writer path
  EXPECT_EQ(ins->result.num_inserted, 1u);
  auto readback = client.Query("SELECT ?s WHERE { ?s <p1> <n1> . }");
  ASSERT_TRUE(readback.ok()) << readback.status();
  EXPECT_EQ(readback->result.NumRows(), 1u);
}

// ---------------------------------------------------------- hardening --

int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// The one invariant every hardening case ends with: a fresh client can
/// still connect, ping and query. Whatever the hostile peer did, the
/// server must keep serving everyone else.
void ExpectStillServing(ScopedServer* scope) {
  KgClient probe;
  ASSERT_TRUE(scope->Connect(&probe).ok());
  EXPECT_TRUE(probe.Ping().ok());
  auto r = probe.Query("SELECT ?s WHERE { ?s <p1> ?o . }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->result.NumRows(), 1u);
}

class ServingHardeningTest : public ::testing::Test {
 protected:
  void Seed(KgNet* kg) { kg->store().InsertIris("n1", "p1", "n2"); }
};

TEST_F(ServingHardeningTest, GarbageJsonGetsErrorKeepsConnection) {
  KgNet kg;
  Seed(&kg);
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  const char* garbage[] = {"this is not json", "{\"op\":", "[1,2,3]",
                           "null", "{}", "\"query\""};
  for (const char* body : garbage) {
    auto raw = client.Call(body);
    ASSERT_TRUE(raw.ok()) << body;  // transport ok; payload is an error
    EXPECT_NE(raw->find("\"ok\":false"), std::string::npos) << body;
    EXPECT_TRUE(client.Ping().ok()) << body;  // connection survived
  }
  ExpectStillServing(&scope);
}

TEST_F(ServingHardeningTest, WrongTypedFieldsRejected) {
  KgNet kg;
  Seed(&kg);
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  const char* bad[] = {
      "{\"op\":42}",
      "{\"op\":\"query\"}",
      "{\"op\":\"query\",\"query\":7}",
      "{\"op\":\"query\",\"query\":[\"SELECT\"]}",
      "{\"op\":\"infer_class\",\"model\":true,\"node\":\"n\"}",
      "{\"op\":\"infer_links\",\"model\":\"m\",\"node\":\"n\",\"k\":\"x\"}",
      "{\"op\":\"infer_links\",\"model\":\"m\",\"node\":\"n\",\"k\":-1}",
      "{\"op\":\"no_such_op\"}",
  };
  for (const char* body : bad) {
    auto raw = client.Call(body);
    ASSERT_TRUE(raw.ok()) << body;
    EXPECT_NE(raw->find("\"ok\":false"), std::string::npos) << body;
    EXPECT_NE(raw->find("InvalidArgument"), std::string::npos) << body;
  }
  EXPECT_TRUE(client.Ping().ok());
  ExpectStillServing(&scope);
}

TEST_F(ServingHardeningTest, TruncatedFramesAndAbruptCloses) {
  KgNet kg;
  Seed(&kg);
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());

  // Half a length prefix, then close.
  int fd = RawConnect(scope.port());
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::send(fd, "\x00\x00", 2, 0), 2);
  ::close(fd);

  // A full prefix promising 100 bytes, 10 delivered, then close.
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  const std::string frame = EncodeFrame(std::string(100, 'x'));
  ASSERT_TRUE(client.SendRaw(frame.data(), 14).ok());
  client.Close();

  // Twenty drive-by connects, some with stray bytes.
  for (int i = 0; i < 20; ++i) {
    const int f = RawConnect(scope.port());
    ASSERT_GE(f, 0);
    if (i % 3 == 0) ::send(f, "\xff", 1, 0);
    ::close(f);
  }
  ExpectStillServing(&scope);
}

TEST_F(ServingHardeningTest, OverCapLengthPrefixAnsweredThenDropped) {
  KgNet kg;
  Seed(&kg);
  ServerOptions options;
  options.max_frame_bytes = 1024;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());
  for (const uint32_t hostile : {uint32_t{4096}, uint32_t{0xffffffff}}) {
    KgClient client;
    ASSERT_TRUE(scope.Connect(&client).ok());
    client.set_timeout_ms(2000);
    const unsigned char prefix[4] = {
        static_cast<unsigned char>(hostile >> 24),
        static_cast<unsigned char>(hostile >> 16),
        static_cast<unsigned char>(hostile >> 8),
        static_cast<unsigned char>(hostile)};
    ASSERT_TRUE(client.SendRaw(prefix, 4).ok());
    // The server explains, then drops the unresynchronizable stream.
    auto explain = client.ReadResponse();
    ASSERT_TRUE(explain.ok()) << explain.status();
    EXPECT_NE(explain->find("InvalidArgument"), std::string::npos);
    auto after = client.ReadResponse();
    EXPECT_FALSE(after.ok());
  }
  EXPECT_GE(scope.server().stats().malformed_frames, 2u);
  ExpectStillServing(&scope);
}

TEST_F(ServingHardeningTest, EmptyFrameBodyIsAnErrorNotACrash) {
  KgNet kg;
  Seed(&kg);
  ScopedServer scope(&kg.service());
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  const std::string frame = EncodeFrame("");
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  auto resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_NE(resp->find("\"ok\":false"), std::string::npos);
  EXPECT_TRUE(client.Ping().ok());
  ExpectStillServing(&scope);
}

TEST_F(ServingHardeningTest, HalfClosedSocketReleasesWorker) {
  KgNet kg;
  Seed(&kg);
  ServerOptions options;
  options.num_workers = 1;  // a leaked worker would hang ExpectStillServing
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());
  const int fd = RawConnect(scope.port());
  ASSERT_GE(fd, 0);
  ::shutdown(fd, SHUT_WR);  // half-close: we write nothing, keep reading
  char buf[16];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // server closes: EOF
  EXPECT_LE(n, 0);
  ::close(fd);
  ExpectStillServing(&scope);
}

TEST_F(ServingHardeningTest, SlowWriterIsServedWhileMakingProgress) {
  KgNet kg;
  Seed(&kg);
  ServerOptions options;
  options.idle_timeout_ms = 400;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());
  KgClient client;
  ASSERT_TRUE(scope.Connect(&client).ok());
  // Dribble a ping frame one byte at a time, total time > idle timeout;
  // every byte is progress, so the idle clock keeps resetting.
  const std::string frame = EncodeFrame(BuildPingRequest(3));
  for (char byte : frame) {
    ASSERT_TRUE(client.SendRaw(&byte, 1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  auto resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_NE(resp->find("\"ok\":true"), std::string::npos);
}

TEST_F(ServingHardeningTest, IdlePeerIsDroppedNotLeaked) {
  KgNet kg;
  Seed(&kg);
  ServerOptions options;
  options.num_workers = 1;
  options.idle_timeout_ms = 150;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());
  KgClient idle;
  ASSERT_TRUE(scope.Connect(&idle).ok());
  idle.set_timeout_ms(2000);
  // Send nothing; the server must hang up on us, freeing its one worker.
  auto resp = idle.ReadResponse();
  EXPECT_FALSE(resp.ok());
  ExpectStillServing(&scope);
}

TEST_F(ServingHardeningTest, QueueFullAnsweredWithOverload) {
  KgNet kg;
  Seed(&kg);
  ServerOptions options;
  options.num_workers = 1;
  options.queue_depth = 1;
  options.request_deadline_ms = 10000;
  ScopedServer scope(&kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());
  // Pin the single worker with a live session...
  KgClient pinned;
  ASSERT_TRUE(scope.Connect(&pinned).ok());
  ASSERT_TRUE(pinned.Ping().ok());
  // ...fill the one queue slot, then the next connection must be
  // answered with ResourceExhausted immediately.
  KgClient queued;
  ASSERT_TRUE(scope.Connect(&queued).ok());
  KgClient rejected;
  ASSERT_TRUE(scope.Connect(&rejected).ok());
  rejected.set_timeout_ms(3000);
  auto resp = rejected.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_NE(resp->find("ResourceExhausted"), std::string::npos);
  EXPECT_GE(scope.server().stats().overload_rejects, 1u);
  // Releasing the pinned session lets the queued connection be served.
  pinned.Close();
  EXPECT_TRUE(queued.Ping().ok());
}

// ------------------------------------------------------ env validation --

TEST(ServingEnvTest, PortEnvStrictlyValidated) {
  EXPECT_EQ(KgServer::ParsePortEnv(nullptr), 0);
  EXPECT_EQ(KgServer::ParsePortEnv(""), 0);
  EXPECT_EQ(KgServer::ParsePortEnv("abc"), 0);
  EXPECT_EQ(KgServer::ParsePortEnv("-1"), 0);
  EXPECT_EQ(KgServer::ParsePortEnv("+4"), 0);
  EXPECT_EQ(KgServer::ParsePortEnv("4.5"), 0);
  EXPECT_EQ(KgServer::ParsePortEnv("8abc"), 0);
  EXPECT_EQ(KgServer::ParsePortEnv("0"), 0);
  EXPECT_EQ(KgServer::ParsePortEnv("65536"), 0);
  EXPECT_EQ(KgServer::ParsePortEnv("99999999999999999999"), 0);
  EXPECT_EQ(KgServer::ParsePortEnv("7687"), 7687);
  EXPECT_EQ(KgServer::ParsePortEnv(" 42 "), 42);
  EXPECT_EQ(KgServer::ParsePortEnv("65535"), 65535);
}

TEST(ServingEnvTest, WorkersEnvStrictlyValidated) {
  EXPECT_EQ(KgServer::ParseWorkersEnv("sixteen"), 0);
  EXPECT_EQ(KgServer::ParseWorkersEnv("16 threads"), 0);
  EXPECT_EQ(KgServer::ParseWorkersEnv("1025"), 0);
  EXPECT_EQ(KgServer::ParseWorkersEnv("0"), 0);
  EXPECT_EQ(KgServer::ParseWorkersEnv("16"), 16);
  EXPECT_EQ(KgServer::ParseWorkersEnv("1024"), 1024);
}

TEST(ServingEnvTest, QueueDepthEnvStrictlyValidated) {
  EXPECT_EQ(KgServer::ParseQueueDepthEnv("1000001"), 0);
  EXPECT_EQ(KgServer::ParseQueueDepthEnv("-64"), 0);
  EXPECT_EQ(KgServer::ParseQueueDepthEnv("64"), 64);
  EXPECT_EQ(KgServer::ParseQueueDepthEnv("1000000"), 1000000);
}

TEST(ServingEnvTest, ApplyServerEnvKeepsBaseOnGarbage) {
  setenv("KGNET_SERVE_PORT", "notaport", 1);
  setenv("KGNET_SERVE_WORKERS", "-3", 1);
  setenv("KGNET_SERVE_QUEUE_DEPTH", "1e9", 1);
  ServerOptions base;
  base.port = 7000;
  base.num_workers = 6;
  base.queue_depth = 48;
  const ServerOptions applied = ApplyServerEnv(base);
  EXPECT_EQ(applied.port, 7000);
  EXPECT_EQ(applied.num_workers, 6);
  EXPECT_EQ(applied.queue_depth, 48);

  setenv("KGNET_SERVE_PORT", "7777", 1);
  setenv("KGNET_SERVE_WORKERS", "2", 1);
  setenv("KGNET_SERVE_QUEUE_DEPTH", "9", 1);
  const ServerOptions valid = ApplyServerEnv(base);
  EXPECT_EQ(valid.port, 7777);
  EXPECT_EQ(valid.num_workers, 2);
  EXPECT_EQ(valid.queue_depth, 9);

  unsetenv("KGNET_SERVE_PORT");
  unsetenv("KGNET_SERVE_WORKERS");
  unsetenv("KGNET_SERVE_QUEUE_DEPTH");
}

// --------------------------------------- batching / caching identity --

/// Trains the tiny NC + LP models once per binary (the same fast specs
/// as test_inference_manager), plus a bundle-served LP copy so the
/// batched GEMM scoring kernel is exercised too.
struct MlSetup {
  KgNet kg;
  std::string nc_uri, lp_uri, lp_bundle_uri;
  std::vector<std::string> papers, people;
  bool ok = false;

  MlSetup() {
    workload::DblpOptions opts;
    opts.num_papers = 80;
    opts.num_authors = 40;
    opts.num_venues = 4;
    opts.num_affiliations = 8;
    opts.include_periphery = false;
    if (!workload::GenerateDblp(opts, &kg.store()).ok()) return;

    core::TrainTaskSpec nc;
    nc.task = gml::TaskType::kNodeClassification;
    nc.target_type_iri = DblpSchema::Publication();
    nc.label_predicate_iri = DblpSchema::PublishedIn();
    nc.config.epochs = 3;
    nc.config.hidden_dim = 8;
    nc.config.embed_dim = 8;
    nc.model_name = "serving-nc";
    auto nc_out = kg.TrainTask(nc);
    if (!nc_out.ok()) return;
    nc_uri = nc_out->model_uri;

    core::TrainTaskSpec lp;
    lp.task = gml::TaskType::kLinkPrediction;
    lp.target_type_iri = DblpSchema::Person();
    lp.destination_type_iri = DblpSchema::Affiliation();
    lp.task_predicate_iri = DblpSchema::PrimaryAffiliation();
    lp.config.epochs = 3;
    lp.config.embed_dim = 8;
    lp.model_name = "serving-lp";
    auto lp_out = kg.TrainTask(lp);
    if (!lp_out.ok()) return;
    lp_uri = lp_out->model_uri;

    auto& store = kg.service().model_store();
    auto model = store.Get(lp_uri);
    if (!model.ok()) return;
    auto bundle = core::BuildServingBundle(**model);
    if (!bundle.ok()) return;
    auto served = std::make_shared<core::TrainedModel>();
    served->info = (*model)->info;
    served->info.uri = lp_uri + "-bundle";
    served->bundle =
        std::make_shared<core::ServingBundle>(std::move(*bundle));
    store.Put(served);
    lp_bundle_uri = served->info.uri;

    for (int i = 0; i < 16; ++i)
      papers.push_back("https://dblp.org/rdf/publication/" +
                       std::to_string(i));
    papers.push_back("https://dblp.org/rdf/publication/no-such-node");
    for (int i = 0; i < 16; ++i)
      people.push_back("https://dblp.org/rdf/person/" + std::to_string(i));
    people.push_back("https://dblp.org/rdf/person/no-such-node");
    ok = true;
  }
};

MlSetup* GetMlSetup() {
  static MlSetup* setup = new MlSetup();
  return setup;
}

/// Outcome of one inference request, comparable between the direct
/// in-process call and the remote batched/cached call: the value on
/// success, the verbatim Status string otherwise.
std::string Outcome(const Result<std::string>& r) {
  return r.ok() ? "v:" + *r : "e:" + r.status().ToString();
}
std::string Outcome(const Result<std::vector<std::string>>& r) {
  if (!r.ok()) return "e:" + r.status().ToString();
  std::string out = "v:";
  for (const std::string& v : *r) out += v + "|";
  return out;
}

TEST(ServingBatchIdentityTest, BatchedClassIdenticalAcrossThreadCounts) {
  MlSetup* ml = GetMlSetup();
  ASSERT_TRUE(ml->ok);
  core::InferenceManager& im = ml->kg.service().inference_manager();
  std::vector<std::string> want;
  for (const std::string& n : ml->papers)
    want.push_back(Outcome(im.GetNodeClass(ml->nc_uri, n)));

  kgnet::testing::ThreadCountGuard thread_guard;
  for (int threads : {1, 2, 4}) {
    common::ThreadPool::SetNumThreads(threads);
    for (int window_us : {0, 1500}) {  // unbatched passthrough and batched
      ServerOptions options;
      options.num_workers = 4;
      options.batcher.window_us = window_us;
      options.batcher.max_batch = 8;
      ScopedServer scope(&ml->kg.service(), options);
      ASSERT_TRUE(scope.start_status().ok());
      std::vector<std::string> got(ml->papers.size());
      std::vector<std::thread> clients;
      for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
          KgClient client;
          if (!scope.Connect(&client).ok()) return;
          for (size_t i = c; i < ml->papers.size(); i += 4)
            got[i] = Outcome(client.NodeClass(ml->nc_uri, ml->papers[i]));
        });
      }
      for (auto& t : clients) t.join();
      EXPECT_EQ(got, want)
          << threads << " threads, window " << window_us << "us";
    }
  }
}

TEST(ServingBatchIdentityTest, BatchedLinksIdenticalAcrossThreadCounts) {
  MlSetup* ml = GetMlSetup();
  ASSERT_TRUE(ml->ok);
  core::InferenceManager& im = ml->kg.service().inference_manager();
  for (const std::string& uri : {ml->lp_uri, ml->lp_bundle_uri}) {
    std::vector<std::string> want;
    for (const std::string& n : ml->people)
      want.push_back(Outcome(im.GetTopKLinks(uri, n, 3)));

    kgnet::testing::ThreadCountGuard thread_guard;
    for (int threads : {1, 2, 4}) {
      common::ThreadPool::SetNumThreads(threads);
      ServerOptions options;
      options.num_workers = 4;
      options.batcher.window_us = 1500;
      options.batcher.max_batch = 8;
      ScopedServer scope(&ml->kg.service(), options);
      ASSERT_TRUE(scope.start_status().ok());
      std::vector<std::string> got(ml->people.size());
      std::vector<std::thread> clients;
      for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
          KgClient client;
          if (!scope.Connect(&client).ok()) return;
          for (size_t i = c; i < ml->people.size(); i += 4)
            got[i] = Outcome(client.TopKLinks(uri, ml->people[i], 3));
        });
      }
      for (auto& t : clients) t.join();
      EXPECT_EQ(got, want) << uri << " at " << threads << " threads";
    }
  }
}

TEST(ServingBatchIdentityTest, CachedSimilarIdenticalAcrossThreadCounts) {
  MlSetup* ml = GetMlSetup();
  ASSERT_TRUE(ml->ok);
  core::InferenceManager& im = ml->kg.service().inference_manager();
  std::vector<std::string> want;
  for (const std::string& n : ml->people)
    want.push_back(Outcome(im.GetSimilarEntities(ml->lp_uri, n, 3)));

  kgnet::testing::ThreadCountGuard thread_guard;
  for (int threads : {1, 2, 4}) {
    common::ThreadPool::SetNumThreads(threads);
    ServerOptions options;
    options.num_workers = 2;
    options.embed_cache_rows = 8;  // smaller than the node set: evictions
    ScopedServer scope(&ml->kg.service(), options);
    ASSERT_TRUE(scope.start_status().ok());
    KgClient client;
    ASSERT_TRUE(scope.Connect(&client).ok());
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<std::string> got;
      for (const std::string& n : ml->people)
        got.push_back(Outcome(client.SimilarEntities(ml->lp_uri, n, 3)));
      EXPECT_EQ(got, want) << "pass " << pass << ", " << threads
                           << " threads";
    }
    EXPECT_GT(scope.server().embed_cache().hits() +
                  scope.server().embed_cache().misses(),
              0u);
  }
}

TEST(ServingBatchIdentityTest, BatcherCoalescesUnderConcurrency) {
  MlSetup* ml = GetMlSetup();
  ASSERT_TRUE(ml->ok);
  core::InferenceManager& im = ml->kg.service().inference_manager();
  ServerOptions options;
  options.num_workers = 4;
  options.batcher.window_us = 5000;
  options.batcher.max_batch = 4;
  ScopedServer scope(&ml->kg.service(), options);
  ASSERT_TRUE(scope.start_status().ok());
  im.ResetCounters();
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      KgClient client;
      if (!scope.Connect(&client).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 8; ++i) {
        auto r = client.NodeClass(ml->nc_uri,
                                  ml->papers[(c * 8 + i) % 16]);
        if (!r.ok()) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // 32 requests; how much coalescing happens is timing-dependent, but
  // the batched path can never make MORE model calls than requests, and
  // every request went through the batcher.
  EXPECT_LE(im.http_calls(), 32u);
  EXPECT_GE(scope.server().batcher().batched_calls(), 1u);
}

}  // namespace
}  // namespace kgnet::serving
