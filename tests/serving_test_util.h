// Shared fixtures for the serving-layer tests: an ephemeral-port server
// scope, a seeded graph/query generator (compact cousin of the
// exec-oracle generator), and the local response oracle that builds the
// byte-exact response the server must produce — same routing predicate
// (KgServer::RoutesToService), same snapshot discipline, same
// serialization (protocol.h builders over deterministic DumpJson).
#ifndef KGNET_TESTS_SERVING_TEST_UTIL_H_
#define KGNET_TESTS_SERVING_TEST_UTIL_H_

#include <set>
#include <string>
#include <vector>

#include "core/sparqlml.h"
#include "rdf/triple_store.h"
#include "serving/client.h"
#include "serving/protocol.h"
#include "serving/server.h"
#include "sparql/parser.h"
#include "tensor/rng.h"

namespace kgnet::serving::testing {

/// Starts a KgServer on an ephemeral loopback port for the lifetime of
/// the scope. `service` must outlive the scope.
class ScopedServer {
 public:
  explicit ScopedServer(core::SparqlMlService* service,
                        ServerOptions options = ServerOptions{})
      : server_(service, options), start_status_(server_.Start()) {}
  ~ScopedServer() { server_.Stop(); }
  ScopedServer(const ScopedServer&) = delete;
  ScopedServer& operator=(const ScopedServer&) = delete;

  const Status& start_status() const { return start_status_; }
  KgServer& server() { return server_; }
  int port() const { return server_.port(); }
  Status Connect(KgClient* client) {
    return client->Connect("127.0.0.1", server_.port());
  }

 private:
  KgServer server_;
  Status start_status_;
};

// ----------------------------------------------------- case generation --

struct ServingFact {
  std::string s, p, o;
  bool o_is_literal = false;  // numeric literal (rank attribute)
  bool operator<(const ServingFact& f) const {
    return std::tie(s, p, o, o_is_literal) <
           std::tie(f.s, f.p, f.o, f.o_is_literal);
  }
};

struct ServingCase {
  std::vector<ServingFact> facts;
  std::string sparql;
};

/// A seeded random graph plus one read-only SELECT over it: 1-3 BGP
/// patterns from a small variable pool, sometimes a variable predicate
/// (which must route to the serialized service path), plus optional
/// FILTER / UNION / OPTIONAL / DISTINCT / LIMIT / OFFSET features.
inline ServingCase GenerateServingCase(tensor::Rng* rng) {
  ServingCase c;
  const int nodes = 4 + static_cast<int>(rng->NextUint(10));
  const int preds = 2 + static_cast<int>(rng->NextUint(3));
  const int ntrip = 15 + static_cast<int>(rng->NextUint(45));
  auto node = [](uint64_t i) { return "n" + std::to_string(i); };
  auto pred = [](uint64_t i) { return "p" + std::to_string(i); };

  std::set<ServingFact> fact_set;
  for (int i = 0; i < ntrip; ++i)
    fact_set.insert({node(rng->NextUint(nodes)), pred(rng->NextUint(preds)),
                     node(rng->NextUint(nodes)), false});
  const bool with_ranks = rng->NextFloat() < 0.5f;
  if (with_ranks)
    for (int i = 0; i < nodes; ++i)
      fact_set.insert(
          {node(i), "rank", std::to_string(rng->NextUint(10)), true});
  c.facts.assign(fact_set.begin(), fact_set.end());

  const char* pool[] = {"a", "b", "c"};
  const int npat = 1 + static_cast<int>(rng->NextUint(3));
  std::vector<std::string> parts;
  std::set<std::string> vars;
  bool used_var_pred = false;
  for (int i = 0; i < npat; ++i) {
    std::string s, p, o;
    if (rng->NextFloat() < 0.7f) {
      const std::string v = pool[rng->NextUint(3)];
      vars.insert(v);
      s = "?" + v;
    } else {
      s = "<" + node(rng->NextUint(nodes)) + ">";
    }
    if (!used_var_pred && rng->NextFloat() < 0.15f) {
      p = "?pp";  // variable predicate: serialized service-path routing
      used_var_pred = true;
    } else {
      p = "<" + pred(rng->NextUint(preds)) + ">";
    }
    if (rng->NextFloat() < 0.6f) {
      const std::string v = pool[rng->NextUint(3)];
      vars.insert(v);
      o = "?" + v;
    } else {
      o = "<" + node(rng->NextUint(nodes)) + ">";
    }
    parts.push_back(s + " " + p + " " + o + " . ");
  }

  std::vector<std::string> var_list(vars.begin(), vars.end());
  if (!var_list.empty() && rng->NextFloat() < 0.4f) {
    if (with_ranks && rng->NextFloat() < 0.5f) {
      const std::string v = var_list[rng->NextUint(var_list.size())];
      parts.push_back("?" + v + " <rank> ?r . ");
      const char* ops[] = {"<", "<=", ">", ">=", "=", "!="};
      parts.push_back("FILTER(?r " + std::string(ops[rng->NextUint(6)]) +
                      " " + std::to_string(rng->NextUint(10)) + ") ");
    } else {
      parts.push_back("FILTER(?" + var_list[rng->NextUint(var_list.size())] +
                      (rng->NextFloat() < 0.5f ? " = <" : " != <") +
                      node(rng->NextUint(nodes)) + ">) ");
    }
  }
  if (!var_list.empty() && rng->NextFloat() < 0.35f) {
    const std::string v = var_list[rng->NextUint(var_list.size())];
    parts.push_back("{ ?" + v + " <" + pred(rng->NextUint(preds)) +
                    "> ?u0 . } UNION { ?" + v + " <" +
                    pred(rng->NextUint(preds)) + "> ?u1 . } ");
  }
  if (!var_list.empty() && rng->NextFloat() < 0.35f) {
    const std::string v = var_list[rng->NextUint(var_list.size())];
    parts.push_back("OPTIONAL { ?" + v + " <" + pred(rng->NextUint(preds)) +
                    "> ?x . } ");
  }

  std::string q = rng->NextFloat() < 0.3f ? "SELECT DISTINCT * WHERE { "
                                          : "SELECT * WHERE { ";
  for (const std::string& part : parts) q += part;
  q += "}";
  if (rng->NextFloat() < 0.4f)
    q += " LIMIT " + std::to_string(1 + rng->NextUint(8));
  if (rng->NextFloat() < 0.2f)
    q += " OFFSET " + std::to_string(rng->NextUint(4));
  c.sparql = q;
  return c;
}

inline void LoadCase(const ServingCase& c, rdf::TripleStore* store) {
  for (const ServingFact& f : c.facts) {
    const rdf::Term o =
        f.o_is_literal
            ? rdf::Term::TypedLiteral(
                  f.o, "http://www.w3.org/2001/XMLSchema#integer")
            : rdf::Term::Iri(f.o);
    store->Insert(rdf::Term::Iri(f.s), rdf::Term::Iri(f.p), o);
  }
}

// -------------------------------------------------------- local oracle --

/// The byte-exact response the server must send for {"op":"query"}:
/// mirrors KgServer::HandleQuery — same parse, same RoutesToService
/// routing, one MVCC snapshot on the plain path (epoch/delta attached),
/// the serialized service on the ML path (no snapshot keys), and the
/// verbatim error Status otherwise. Callers must hold writes still
/// between computing this and the server round-trip.
inline std::string LocalExpectedResponse(core::SparqlMlService* service,
                                         double id, const std::string& text) {
  auto parsed = sparql::ParseQuery(text);
  if (!parsed.ok()) return BuildErrorResponse(id, parsed.status());
  if (KgServer::RoutesToService(*parsed, text)) {
    auto result = service->Execute(text);
    if (!result.ok()) return BuildErrorResponse(id, result.status());
    return BuildQueryResponse(id, *result, nullptr);
  }
  sparql::ExecInfo info;
  const rdf::Snapshot snapshot = service->engine().store()->OpenSnapshot();
  auto result = service->engine().Execute(*parsed, snapshot, &info);
  if (!result.ok()) return BuildErrorResponse(id, result.status());
  return BuildQueryResponse(id, *result, &info);
}

}  // namespace kgnet::serving::testing

#endif  // KGNET_TESTS_SERVING_TEST_UTIL_H_
