#include "rdf/index_block.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "tensor/rng.h"

namespace kgnet::rdf {
namespace {

std::vector<IndexKey> RandomSortedKeys(uint64_t seed, size_t n,
                                       uint32_t max_id) {
  tensor::Rng rng(seed);
  auto id = [&] { return static_cast<TermId>(1 + rng.NextUint(max_id)); };
  std::set<IndexKey> keys;
  while (keys.size() < n) keys.insert({id(), id(), id()});
  return {keys.begin(), keys.end()};
}

TEST(CompressedRunTest, EmptyRun) {
  CompressedRun run(8);
  EXPECT_EQ(run.size(), 0u);
  EXPECT_EQ(run.ByteSize(), 0u);
  auto [lo, hi] = run.PrefixRange(1, {5, 0, 0});
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0u);
  RunCursor c = run.Cursor(0, 0);
  IndexKey k;
  EXPECT_FALSE(c.Next(&k));
}

TEST(CompressedRunTest, RoundTripAcrossBlockSizes) {
  const std::vector<IndexKey> keys = RandomSortedKeys(7, 500, 40);
  for (size_t bs : {1u, 2u, 3u, 7u, 64u, 128u, 1024u}) {
    CompressedRun run(bs);
    run.Assign(keys);
    ASSERT_EQ(run.size(), keys.size());
    std::vector<IndexKey> back;
    run.DecodeAll(&back);
    EXPECT_EQ(back, keys) << "block_size=" << bs;
  }
}

TEST(CompressedRunTest, CompressesSortedRuns) {
  // Clustered keys (the shape real permutation indexes have): compressed
  // bytes must land well under the 12 raw bytes per key.
  const std::vector<IndexKey> keys = RandomSortedKeys(11, 2000, 60);
  CompressedRun run;  // default block size
  run.Assign(keys);
  EXPECT_LT(run.ByteSize(), keys.size() * sizeof(IndexKey) / 2);
}

TEST(CompressedRunTest, MidRangeCursorStartsInsideABlock) {
  const std::vector<IndexKey> keys = RandomSortedKeys(3, 300, 50);
  CompressedRun run(16);
  run.Assign(keys);
  for (size_t lo : {0u, 1u, 15u, 16u, 17u, 250u, 299u, 300u}) {
    for (size_t hi : {lo, lo + 1, lo + 40, keys.size()}) {
      const size_t end = std::min(hi, keys.size());
      if (lo > end) continue;
      RunCursor c = run.Cursor(lo, end);
      EXPECT_EQ(c.remaining(), end - lo);
      IndexKey k;
      size_t i = lo;
      while (c.Next(&k)) {
        ASSERT_LT(i, end);
        EXPECT_EQ(k, keys[i]) << "lo=" << lo << " i=" << i;
        ++i;
      }
      EXPECT_EQ(i, end);
    }
  }
}

/// PrefixRange must agree with std::equal_range over the decoded keys
/// for every prefix length, including prefixes that match nothing.
TEST(CompressedRunTest, PrefixRangeMatchesFlatEqualRange) {
  const std::vector<IndexKey> keys = RandomSortedKeys(21, 400, 12);
  for (size_t bs : {1u, 5u, 32u, 4096u}) {
    CompressedRun run(bs);
    run.Assign(keys);
    tensor::Rng rng(99);
    auto id = [&] { return static_cast<TermId>(1 + rng.NextUint(14)); };
    for (int trial = 0; trial < 200; ++trial) {
      IndexKey probe = {id(), id(), id()};
      for (int plen = 0; plen <= 3; ++plen) {
        auto [lo, hi] = run.PrefixRange(plen, probe);
        auto pred = [&](const IndexKey& k) {
          for (int i = 0; i < plen; ++i) {
            if (k[static_cast<size_t>(i)] != probe[static_cast<size_t>(i)])
              return k[static_cast<size_t>(i)] < probe[static_cast<size_t>(i)];
          }
          return false;  // equal prefix: neither less
        };
        const size_t want_lo = static_cast<size_t>(
            std::partition_point(keys.begin(), keys.end(), pred) -
            keys.begin());
        size_t want_hi = want_lo;
        while (want_hi < keys.size() &&
               std::equal(keys[want_hi].begin(),
                          keys[want_hi].begin() + plen, probe.begin()))
          ++want_hi;
        EXPECT_EQ(lo, want_lo) << "bs=" << bs << " plen=" << plen;
        EXPECT_EQ(hi, want_hi) << "bs=" << bs << " plen=" << plen;
      }
    }
  }
}

TEST(CompressedRunTest, SkipTableBoundsDecodeWork) {
  // A prefix lookup on a large run must not decode the whole run; this
  // pins the skip-table contract indirectly by checking exactness on a
  // run big enough that full decodes would dominate the suite's runtime
  // if every one of these lookups were O(n).
  const std::vector<IndexKey> keys = RandomSortedKeys(5, 20000, 300);
  CompressedRun run(64);
  run.Assign(keys);
  for (const IndexKey& probe : keys) {
    auto [lo, hi] = run.PrefixRange(3, probe);
    ASSERT_EQ(hi - lo, 1u);
  }
}

}  // namespace
}  // namespace kgnet::rdf
