#include "core/inference_manager.h"

#include <gtest/gtest.h>

#include "core/kgnet.h"
#include "workload/dblp_gen.h"

namespace kgnet::core {
namespace {

using workload::DblpSchema;

class InferenceManagerTest : public ::testing::Test {
 protected:
  InferenceManagerTest() {
    workload::DblpOptions opts;
    opts.num_papers = 80;
    opts.num_authors = 40;
    opts.num_venues = 4;
    opts.num_affiliations = 8;
    opts.include_periphery = false;
    EXPECT_TRUE(workload::GenerateDblp(opts, &kg_.store()).ok());

    TrainTaskSpec nc;
    nc.task = gml::TaskType::kNodeClassification;
    nc.target_type_iri = DblpSchema::Publication();
    nc.label_predicate_iri = DblpSchema::PublishedIn();
    nc.config.epochs = 3;
    nc.config.hidden_dim = 8;
    nc.config.embed_dim = 8;
    nc.model_name = "nc";
    auto nc_out = kg_.TrainTask(nc);
    EXPECT_TRUE(nc_out.ok()) << nc_out.status();
    nc_uri_ = nc_out->model_uri;

    TrainTaskSpec lp;
    lp.task = gml::TaskType::kLinkPrediction;
    lp.target_type_iri = DblpSchema::Person();
    lp.destination_type_iri = DblpSchema::Affiliation();
    lp.task_predicate_iri = DblpSchema::PrimaryAffiliation();
    lp.config.epochs = 3;
    lp.config.embed_dim = 8;
    lp.model_name = "lp";
    auto lp_out = kg_.TrainTask(lp);
    EXPECT_TRUE(lp_out.ok()) << lp_out.status();
    lp_uri_ = lp_out->model_uri;
  }

  InferenceManager& manager() { return kg_.service().inference_manager(); }

  KgNet kg_;
  std::string nc_uri_;
  std::string lp_uri_;
};

TEST_F(InferenceManagerTest, GetNodeClassReturnsVenueIri) {
  auto cls = manager().GetNodeClass(nc_uri_,
                                    "https://dblp.org/rdf/publication/0");
  ASSERT_TRUE(cls.ok()) << cls.status();
  EXPECT_NE(cls->find("venue"), std::string::npos);
}

TEST_F(InferenceManagerTest, GetNodeClassErrors) {
  EXPECT_EQ(manager()
                .GetNodeClass("https://nope/model", "https://nope/node")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(manager()
                .GetNodeClass(nc_uri_, "https://nope/node")
                .status()
                .code(),
            StatusCode::kNotFound);
  // LP model asked for node classification.
  EXPECT_EQ(manager()
                .GetNodeClass(lp_uri_, "https://dblp.org/rdf/person/0")
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(InferenceManagerTest, DictionaryCoversAllTargets) {
  auto dict = manager().GetNodeClassDictionary(nc_uri_);
  ASSERT_TRUE(dict.ok()) << dict.status();
  EXPECT_EQ(dict->size(), 80u);
  for (const auto& [paper, venue] : *dict) {
    EXPECT_NE(paper.find("publication"), std::string::npos);
    EXPECT_NE(venue.find("venue"), std::string::npos);
  }
}

TEST_F(InferenceManagerTest, DictionaryAgreesWithPerInstance) {
  auto dict = manager().GetNodeClassDictionary(nc_uri_);
  ASSERT_TRUE(dict.ok());
  for (int i = 0; i < 5; ++i) {
    const std::string paper =
        "https://dblp.org/rdf/publication/" + std::to_string(i);
    auto single = manager().GetNodeClass(nc_uri_, paper);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(dict->at(paper), *single);
  }
}

TEST_F(InferenceManagerTest, TopKLinksReturnsAffiliations) {
  auto links =
      manager().GetTopKLinks(lp_uri_, "https://dblp.org/rdf/person/0", 3);
  ASSERT_TRUE(links.ok()) << links.status();
  EXPECT_EQ(links->size(), 3u);
  for (const auto& iri : *links)
    EXPECT_NE(iri.find("affiliation"), std::string::npos) << iri;
}

TEST_F(InferenceManagerTest, TopKLinksRejectsClassifier) {
  EXPECT_EQ(manager()
                .GetTopKLinks(nc_uri_,
                              "https://dblp.org/rdf/publication/0", 3)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(InferenceManagerTest, SimilarEntitiesExcludesSelf) {
  auto sims = manager().GetSimilarEntities(
      lp_uri_, "https://dblp.org/rdf/person/1", 4);
  ASSERT_TRUE(sims.ok()) << sims.status();
  EXPECT_EQ(sims->size(), 4u);
  for (const auto& iri : *sims)
    EXPECT_NE(iri, "https://dblp.org/rdf/person/1");
}

TEST_F(InferenceManagerTest, SimilarEntitiesRequiresEmbeddings) {
  EXPECT_EQ(manager()
                .GetSimilarEntities(nc_uri_,
                                    "https://dblp.org/rdf/publication/0", 3)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(InferenceManagerTest, CountsEveryApiCall) {
  manager().ResetCounters();
  EXPECT_EQ(manager().http_calls(), 0u);
  (void)manager().GetNodeClass(nc_uri_, "https://dblp.org/rdf/publication/0");
  (void)manager().GetNodeClassDictionary(nc_uri_);
  (void)manager().GetTopKLinks(lp_uri_, "https://dblp.org/rdf/person/0", 1);
  (void)manager().GetNodeClass("bogus", "bogus");  // failed calls count too
  EXPECT_EQ(manager().http_calls(), 4u);
}

TEST_F(InferenceManagerTest, SimulatedLatencyAccumulates) {
  manager().ResetCounters();
  manager().set_per_call_latency_us(250.0);
  const double before = manager().simulated_latency_us();
  (void)manager().GetNodeClass(nc_uri_, "https://dblp.org/rdf/publication/1");
  (void)manager().GetNodeClass(nc_uri_, "https://dblp.org/rdf/publication/2");
  EXPECT_DOUBLE_EQ(manager().simulated_latency_us() - before, 500.0);
  manager().set_per_call_latency_us(0.0);
}

}  // namespace
}  // namespace kgnet::core
