// Model persistence: save/load round trips for NC and LP models, and
// serving parity between live models and loaded bundles.
#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "core/kgnet.h"
#include "workload/dblp_gen.h"

namespace kgnet::core {
namespace {

using workload::DblpSchema;

class ModelIoTest : public ::testing::Test {
 protected:
  ModelIoTest() {
    dir_ = std::filesystem::temp_directory_path() /
           ("kgnet_model_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    workload::DblpOptions opts;
    opts.num_papers = 80;
    opts.num_authors = 40;
    opts.num_venues = 4;
    opts.num_affiliations = 8;
    opts.include_periphery = false;
    EXPECT_TRUE(workload::GenerateDblp(opts, &kg_.store()).ok());

    TrainTaskSpec nc;
    nc.task = gml::TaskType::kNodeClassification;
    nc.target_type_iri = DblpSchema::Publication();
    nc.label_predicate_iri = DblpSchema::PublishedIn();
    nc.config.epochs = 3;
    nc.config.hidden_dim = 8;
    nc.config.embed_dim = 8;
    nc.model_name = "nc";
    auto nc_out = kg_.TrainTask(nc);
    EXPECT_TRUE(nc_out.ok());
    nc_uri_ = nc_out->model_uri;

    TrainTaskSpec lp;
    lp.task = gml::TaskType::kLinkPrediction;
    lp.target_type_iri = DblpSchema::Person();
    lp.destination_type_iri = DblpSchema::Affiliation();
    lp.task_predicate_iri = DblpSchema::PrimaryAffiliation();
    lp.config.epochs = 3;
    lp.config.embed_dim = 8;
    lp.model_name = "lp";
    auto lp_out = kg_.TrainTask(lp);
    EXPECT_TRUE(lp_out.ok());
    lp_uri_ = lp_out->model_uri;
  }

  ~ModelIoTest() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  KgNet kg_;
  std::filesystem::path dir_;
  std::string nc_uri_;
  std::string lp_uri_;
};

TEST_F(ModelIoTest, NcBundleCoversAllTargets) {
  auto model = kg_.service().model_store().Get(nc_uri_);
  ASSERT_TRUE(model.ok());
  auto bundle = BuildServingBundle(**model);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle->nc_predictions.size(), 80u);
}

TEST_F(ModelIoTest, SaveLoadRoundTripPreservesInfo) {
  auto model = kg_.service().model_store().Get(nc_uri_);
  ASSERT_TRUE(model.ok());
  const std::string path = (dir_ / "nc.kgm").string();
  ASSERT_TRUE(SaveTrainedModel(**model, path).ok());

  auto loaded = LoadTrainedModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const ModelInfo& a = (*model)->info;
  const ModelInfo& b = (*loaded)->info;
  EXPECT_EQ(a.uri, b.uri);
  EXPECT_EQ(a.task, b.task);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.target_type_iri, b.target_type_iri);
  EXPECT_EQ(a.sampler_label, b.sampler_label);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.cardinality, b.cardinality);
  ASSERT_NE((*loaded)->bundle, nullptr);
}

TEST_F(ModelIoTest, LoadedNcModelServesIdenticalPredictions) {
  auto& manager = kg_.service().inference_manager();
  auto live = manager.GetNodeClassDictionary(nc_uri_);
  ASSERT_TRUE(live.ok());

  const std::string path = (dir_ / "nc.kgm").string();
  auto model = kg_.service().model_store().Get(nc_uri_);
  ASSERT_TRUE(SaveTrainedModel(**model, path).ok());

  // Replace the live model with the loaded bundle under the same URI.
  auto loaded = LoadTrainedModel(path);
  ASSERT_TRUE(loaded.ok());
  kg_.service().model_store().Put(*loaded);

  auto served = manager.GetNodeClassDictionary(nc_uri_);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(*served, *live);
  // Per-instance path too.
  auto one = manager.GetNodeClass(nc_uri_,
                                  "https://dblp.org/rdf/publication/3");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, live->at("https://dblp.org/rdf/publication/3"));
}

TEST_F(ModelIoTest, LoadedLpModelServesLinksAndSimilarity) {
  const std::string path = (dir_ / "lp.kgm").string();
  auto model = kg_.service().model_store().Get(lp_uri_);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(SaveTrainedModel(**model, path).ok());
  auto loaded = LoadTrainedModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  kg_.service().model_store().Put(*loaded);

  auto& manager = kg_.service().inference_manager();
  auto links =
      manager.GetTopKLinks(lp_uri_, "https://dblp.org/rdf/person/0", 3);
  ASSERT_TRUE(links.ok()) << links.status();
  EXPECT_EQ(links->size(), 3u);
  for (const auto& iri : *links)
    EXPECT_NE(iri.find("affiliation"), std::string::npos) << iri;

  auto sims = manager.GetSimilarEntities(
      lp_uri_, "https://dblp.org/rdf/person/1", 4);
  ASSERT_TRUE(sims.ok()) << sims.status();
  EXPECT_EQ(sims->size(), 4u);
}

TEST_F(ModelIoTest, SaveLoadWholeStore) {
  const std::string store_dir = (dir_ / "models").string();
  auto n = SaveModelStore(kg_.service().model_store(),
                          kg_.service().kgmeta(), store_dir);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
  EXPECT_TRUE(std::filesystem::exists(store_dir + "/kgmeta.nt"));

  ModelStore fresh_store;
  KgMeta fresh_meta;
  auto loaded = LoadModelStore(store_dir, &fresh_store, &fresh_meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 2u);
  EXPECT_EQ(fresh_store.size(), 2u);
  EXPECT_EQ(fresh_meta.NumModels(), 2u);
  EXPECT_TRUE(fresh_store.Get(nc_uri_).ok());
  EXPECT_TRUE(fresh_store.Get(lp_uri_).ok());
  auto info = fresh_meta.Get(nc_uri_);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->target_type_iri, DblpSchema::Publication());
}

TEST_F(ModelIoTest, LoadRejectsGarbage) {
  const std::string path = (dir_ / "junk.kgm").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a model", f);
    std::fclose(f);
  }
  EXPECT_EQ(LoadTrainedModel(path).status().code(), StatusCode::kParseError);
  EXPECT_EQ(LoadTrainedModel((dir_ / "missing.kgm").string())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ModelIoTest, SparqlMlWorksAgainstLoadedModels) {
  // Persist, wipe, reload — then answer a Figure-2-style query from the
  // restored bundle.
  const std::string store_dir = (dir_ / "models").string();
  ASSERT_TRUE(SaveModelStore(kg_.service().model_store(),
                             kg_.service().kgmeta(), store_dir)
                  .ok());
  for (const auto& uri : kg_.service().model_store().ListUris())
    (void)kg_.service().model_store().Remove(uri);
  ASSERT_EQ(kg_.service().model_store().size(), 0u);
  auto loaded = LoadModelStore(store_dir, &kg_.service().model_store(),
                               &kg_.service().kgmeta());
  ASSERT_TRUE(loaded.ok());

  auto r = kg_.Execute(
      "PREFIX dblp: <https://dblp.org/rdf/>\n"
      "PREFIX kgnet: <https://www.kgnet.com/>\n"
      "SELECT ?paper ?venue WHERE {\n"
      " ?paper a dblp:Publication .\n"
      " ?paper ?clf ?venue .\n"
      " ?clf a kgnet:NodeClassifier .\n"
      " ?clf kgnet:TargetNode dblp:Publication . } LIMIT 6");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 6u);
  for (const auto& row : r->rows)
    EXPECT_NE(row[1].lexical.find("venue"), std::string::npos);
}

}  // namespace
}  // namespace kgnet::core
