#include <gtest/gtest.h>

#include "rdf/graph_stats.h"
#include "workload/dblp_gen.h"
#include "workload/yago_gen.h"

namespace kgnet::workload {
namespace {

TEST(DblpGenTest, ProducesExpectedShape) {
  rdf::TripleStore store;
  DblpOptions opts;
  opts.num_papers = 500;
  opts.num_authors = 200;
  opts.num_venues = 10;
  opts.num_affiliations = 30;
  ASSERT_TRUE(GenerateDblp(opts, &store).ok());
  rdf::GraphStats stats = rdf::ComputeGraphStats(store);
  EXPECT_GT(stats.num_triples, 2000u);
  EXPECT_GT(stats.num_node_types, 6u);   // Publication, Person, Venue, ...
  EXPECT_GT(stats.num_edge_types, 10u);
  EXPECT_EQ(stats.class_counts["https://dblp.org/rdf/Publication"], 500u);
  EXPECT_EQ(stats.class_counts["https://dblp.org/rdf/Person"], 200u);
  EXPECT_EQ(stats.class_counts["https://dblp.org/rdf/Venue"], 10u);
  // Exactly one venue label per paper, one affiliation per author.
  EXPECT_EQ(stats.predicate_counts["https://dblp.org/rdf/publishedIn"],
            500u);
  EXPECT_EQ(
      stats.predicate_counts["https://dblp.org/rdf/primaryAffiliation"],
      200u);
  EXPECT_GT(stats.num_literal_triples, 500u);
}

TEST(DblpGenTest, DeterministicForSeed) {
  rdf::TripleStore a, b;
  DblpOptions opts;
  opts.num_papers = 100;
  opts.num_authors = 50;
  opts.num_venues = 5;
  opts.num_affiliations = 10;
  ASSERT_TRUE(GenerateDblp(opts, &a).ok());
  ASSERT_TRUE(GenerateDblp(opts, &b).ok());
  EXPECT_EQ(a.size(), b.size());
}

TEST(DblpGenTest, PeripheryTogglesSize) {
  rdf::TripleStore with, without;
  DblpOptions opts;
  opts.num_papers = 200;
  opts.num_authors = 80;
  opts.num_venues = 5;
  opts.num_affiliations = 10;
  opts.include_periphery = true;
  ASSERT_TRUE(GenerateDblp(opts, &with).ok());
  opts.include_periphery = false;
  ASSERT_TRUE(GenerateDblp(opts, &without).ok());
  EXPECT_GT(with.size(), without.size() + 100);
}

TEST(DblpGenTest, RejectsZeroSizes) {
  rdf::TripleStore store;
  DblpOptions opts;
  opts.num_venues = 0;
  EXPECT_FALSE(GenerateDblp(opts, &store).ok());
}

TEST(YagoGenTest, ProducesExpectedShape) {
  rdf::TripleStore store;
  YagoOptions opts;
  opts.num_places = 400;
  opts.num_countries = 8;
  opts.num_people = 200;
  opts.num_orgs = 50;
  ASSERT_TRUE(GenerateYago(opts, &store).ok());
  rdf::GraphStats stats = rdf::ComputeGraphStats(store);
  EXPECT_EQ(
      stats.class_counts["http://yago-knowledge.org/resource/Place"], 400u);
  EXPECT_EQ(
      stats.class_counts["http://yago-knowledge.org/resource/Country"], 8u);
  EXPECT_EQ(stats.predicate_counts
                ["http://yago-knowledge.org/resource/inCountry"],
            400u);
  EXPECT_GT(stats.num_node_types, 5u);
}

TEST(YagoGenTest, PlantedSignalIsConsistent) {
  // Places laid out round-robin: place p belongs to country p % C; its
  // same-country neighbours must share that residue.
  rdf::TripleStore store;
  YagoOptions opts;
  opts.num_places = 200;
  opts.num_countries = 4;
  opts.num_people = 0;
  opts.num_orgs = 0;
  opts.noise = 0.0;
  opts.include_periphery = false;
  ASSERT_TRUE(GenerateYago(opts, &store).ok());
  const auto& dict = store.dict();
  rdf::TermId nb = dict.FindIri(YagoSchema::NeighborOf());
  ASSERT_NE(nb, rdf::kNullTermId);
  store.Scan(rdf::TriplePattern(rdf::kNullTermId, nb, rdf::kNullTermId),
             [&](const rdf::Triple& t) {
               const std::string& s = dict.Lookup(t.s).lexical;
               const std::string& o = dict.Lookup(t.o).lexical;
               const int si = std::stoi(s.substr(s.rfind('_') + 1));
               const int oi = std::stoi(o.substr(o.rfind('_') + 1));
               EXPECT_EQ(si % 4, oi % 4) << s << " -> " << o;
               return true;
             });
}

TEST(YagoGenTest, RejectsZeroSizes) {
  rdf::TripleStore store;
  YagoOptions opts;
  opts.num_countries = 0;
  EXPECT_FALSE(GenerateYago(opts, &store).ok());
}

}  // namespace
}  // namespace kgnet::workload
