// Randomized differential harness for the streaming executor.
//
// Each seeded case generates a random graph and a random query mixing
// BGP joins, FILTERs, UNION chains, OPTIONAL groups and LIMIT/OFFSET,
// then checks that
// the engine's row multiset matches a deliberately naive brute-force
// reference evaluator (nested loops over the full triple list, no
// indexes, no planner). Both executor modes are checked: kStreaming
// against the oracle and against kMaterialized, so a divergence pins the
// bug to the new operator tree rather than to shared helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <charconv>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "sparql/engine.h"
#include "sparql/exec.h"
#include "sparql/parser.h"
#include "tensor/rng.h"
#include "tests/parallel_test_util.h"

namespace kgnet::sparql {
namespace {

using rdf::Term;

/// Saves and restores the process-wide MorselConfig, and installs tiny
/// thresholds (plus force_parallel) so the 15-60-triple oracle graphs
/// actually drive the morsel-parallel scan, batched hash join and group
/// merge code paths that production sizes would leave dormant.
class TinyMorselGuard {
 public:
  TinyMorselGuard() : saved_(GetMorselConfig()) {
    MorselConfig& cfg = GetMorselConfig();
    cfg.scan_morsel_rows = 3;
    cfg.scan_min_parallel_rows = 4;
    cfg.scan_max_wave_morsels = 4;
    cfg.join_min_parallel_batch = 2;
    cfg.join_max_batch_rows = 8;
    cfg.join_partitions = 4;
    cfg.smj_min_parallel_group = 2;
    cfg.force_parallel = true;
  }
  ~TinyMorselGuard() { GetMorselConfig() = saved_; }
  TinyMorselGuard(const TinyMorselGuard&) = delete;
  TinyMorselGuard& operator=(const TinyMorselGuard&) = delete;

 private:
  MorselConfig saved_;
};

// ------------------------------------------------------ reference model --

/// A term as the reference sees it: an IRI or a literal lexical form.
struct RTerm {
  bool iri = true;
  std::string lex;

  bool operator==(const RTerm& o) const {
    return iri == o.iri && lex == o.lex;
  }
  bool operator<(const RTerm& o) const {
    return std::tie(iri, lex) < std::tie(o.iri, o.lex);
  }
};

struct RTriple {
  RTerm s, p, o;
  bool operator<(const RTriple& t) const {
    return std::tie(s, p, o) < std::tie(t.s, t.p, t.o);
  }
};

/// A pattern position: a variable name or a constant.
struct RNode {
  bool is_var = false;
  std::string var;
  RTerm term;

  static RNode Var(std::string v) {
    RNode n;
    n.is_var = true;
    n.var = std::move(v);
    return n;
  }
  static RNode Const(RTerm t) {
    RNode n;
    n.term = std::move(t);
    return n;
  }
};

struct RPattern {
  RNode s, p, o;
};

enum class ROp { kEq, kNe, kLt, kLe, kGt, kGe };

struct RFilter {
  ROp op;
  RNode lhs, rhs;  // variables or constants
};

using Binding = std::map<std::string, RTerm>;

bool TryDouble(const RTerm& t, double* out) {
  // Mirrors Term::AsDouble: literals whose full lexical form parses.
  if (t.iri || t.lex.empty()) return false;
  const char* begin = t.lex.data();
  const char* end = begin + t.lex.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

/// Mirrors the engine's comparison semantics (EvalExpr in exec.cc):
/// numeric when both sides parse as numbers, otherwise kind-aware
/// lexical comparison.
bool RefCompare(ROp op, const RTerm& l, const RTerm& r) {
  double ld, rd;
  int cmp;
  if (TryDouble(l, &ld) && TryDouble(r, &rd)) {
    cmp = ld < rd ? -1 : (ld > rd ? 1 : 0);
  } else {
    if (l.iri != r.iri && (op == ROp::kEq || op == ROp::kNe))
      return op == ROp::kNe;
    int c = l.lex.compare(r.lex);
    cmp = c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  switch (op) {
    case ROp::kEq:
      return cmp == 0;
    case ROp::kNe:
      return cmp != 0;
    case ROp::kLt:
      return cmp < 0;
    case ROp::kLe:
      return cmp <= 0;
    case ROp::kGt:
      return cmp > 0;
    case ROp::kGe:
      return cmp >= 0;
  }
  return false;
}

const RTerm* ResolveRef(const RNode& n, const Binding& b) {
  if (!n.is_var) return &n.term;
  auto it = b.find(n.var);
  return it == b.end() ? nullptr : &it->second;
}

bool MatchPosition(const RNode& n, const RTerm& value, Binding* b) {
  if (!n.is_var) return n.term == value;
  auto it = b->find(n.var);
  if (it != b->end()) return it->second == value;
  b->emplace(n.var, value);
  return true;
}

std::vector<Binding> RefEvalBgp(const std::vector<RPattern>& patterns,
                                const std::vector<RTriple>& facts,
                                std::vector<Binding> sols) {
  for (const RPattern& pat : patterns) {
    std::vector<Binding> next;
    for (const Binding& sol : sols) {
      for (const RTriple& f : facts) {
        Binding ext = sol;
        if (MatchPosition(pat.s, f.s, &ext) &&
            MatchPosition(pat.p, f.p, &ext) &&
            MatchPosition(pat.o, f.o, &ext))
          next.push_back(std::move(ext));
      }
    }
    sols = std::move(next);
  }
  return sols;
}

/// Full reference evaluation: BGP, then filters (all their variables are
/// core BGP variables, so they are always bound), then dependent UNION
/// chains (each solution multiplies by its matching alternatives and is
/// dropped when none match), then OPTIONAL left joins — mirroring the
/// engine's group-evaluation order.
std::vector<Binding> RefEval(const std::vector<RPattern>& patterns,
                             const std::vector<RFilter>& filters,
                             const std::vector<std::vector<RPattern>>& unions,
                             const std::vector<RPattern>& optionals,
                             const std::vector<RTriple>& facts) {
  std::vector<Binding> sols = RefEvalBgp(patterns, facts, {Binding{}});
  std::vector<Binding> filtered;
  for (const Binding& sol : sols) {
    bool pass = true;
    for (const RFilter& f : filters) {
      const RTerm* l = ResolveRef(f.lhs, sol);
      const RTerm* r = ResolveRef(f.rhs, sol);
      if (l == nullptr || r == nullptr) continue;  // never-ready: ignored
      if (!RefCompare(f.op, *l, *r)) {
        pass = false;
        break;
      }
    }
    if (pass) filtered.push_back(sol);
  }
  sols = std::move(filtered);
  for (const std::vector<RPattern>& alternatives : unions) {
    std::vector<Binding> merged;
    for (const RPattern& alt : alternatives) {
      std::vector<Binding> branch = RefEvalBgp({alt}, facts, sols);
      merged.insert(merged.end(), branch.begin(), branch.end());
    }
    sols = std::move(merged);
  }
  for (const RPattern& opt : optionals) {
    std::vector<Binding> joined;
    for (const Binding& sol : sols) {
      std::vector<Binding> ext = RefEvalBgp({opt}, facts, {sol});
      if (ext.empty())
        joined.push_back(sol);
      else
        joined.insert(joined.end(), ext.begin(), ext.end());
    }
    sols = std::move(joined);
  }
  return sols;
}

// -------------------------------------------------------- case generator --

std::string NodeSparql(const RNode& n) {
  if (n.is_var) return "?" + n.var;
  if (n.term.iri) return "<" + n.term.lex + ">";
  return n.term.lex;  // numeric literal
}

const char* OpSparql(ROp op) {
  switch (op) {
    case ROp::kEq:
      return "=";
    case ROp::kNe:
      return "!=";
    case ROp::kLt:
      return "<";
    case ROp::kLe:
      return "<=";
    case ROp::kGt:
      return ">";
    case ROp::kGe:
      return ">=";
  }
  return "=";
}

struct Case {
  std::vector<RTriple> facts;
  std::vector<RPattern> patterns;
  std::vector<RFilter> filters;
  std::vector<std::vector<RPattern>> unions;  // chains of alternatives
  std::vector<RPattern> optionals;
  bool distinct = false;
  int64_t limit = -1;
  int64_t offset = 0;
  std::string sparql;
};

/// Feature toggles so each TEST below emphasizes one query shape while
/// all of them share the generator.
struct GenOptions {
  bool filters = false;
  bool unions = false;
  bool optionals = false;
  bool modifiers = false;  // LIMIT / OFFSET
  bool distinct = false;   // SELECT DISTINCT
};

Case GenerateCase(tensor::Rng* rng, const GenOptions& opts) {
  Case c;
  const int nodes = 4 + static_cast<int>(rng->NextUint(10));
  const int preds = 2 + static_cast<int>(rng->NextUint(3));
  const int ntrip = 15 + static_cast<int>(rng->NextUint(45));

  auto node = [&](int i) {
    return RTerm{true, "n" + std::to_string(i)};
  };
  auto pred = [&](int i) {
    return RTerm{true, "p" + std::to_string(i)};
  };

  std::set<RTriple> fact_set;
  for (int i = 0; i < ntrip; ++i) {
    fact_set.insert({node(static_cast<int>(rng->NextUint(nodes))),
                     pred(static_cast<int>(rng->NextUint(preds))),
                     node(static_cast<int>(rng->NextUint(nodes)))});
  }
  // Half the cases also carry a numeric attribute for range filters.
  const bool with_ranks = rng->NextFloat() < 0.5f;
  if (with_ranks) {
    for (int i = 0; i < nodes; ++i)
      fact_set.insert({node(i), RTerm{true, "rank"},
                       RTerm{false, std::to_string(rng->NextUint(10))}});
  }
  c.facts.assign(fact_set.begin(), fact_set.end());

  // Core BGP: 1-3 patterns over a small variable pool; constant
  // predicates except for an occasional variable-predicate pattern.
  const char* pool[] = {"a", "b", "c"};
  const int npat = 1 + static_cast<int>(rng->NextUint(3));
  bool used_var_pred = false;
  std::set<std::string> node_vars;
  for (int i = 0; i < npat; ++i) {
    RPattern pat;
    if (rng->NextFloat() < 0.7f) {
      std::string v = pool[rng->NextUint(3)];
      pat.s = RNode::Var(v);
      node_vars.insert(v);
    } else {
      pat.s = RNode::Const(node(static_cast<int>(rng->NextUint(nodes))));
    }
    if (!used_var_pred && rng->NextFloat() < 0.1f) {
      pat.p = RNode::Var("pp");
      used_var_pred = true;
    } else {
      pat.p = RNode::Const(pred(static_cast<int>(rng->NextUint(preds))));
    }
    if (rng->NextFloat() < 0.6f) {
      std::string v = pool[rng->NextUint(3)];
      pat.o = RNode::Var(v);
      node_vars.insert(v);
    } else {
      pat.o = RNode::Const(node(static_cast<int>(rng->NextUint(nodes))));
    }
    c.patterns.push_back(std::move(pat));
  }

  if (opts.filters && !node_vars.empty() && rng->NextFloat() < 0.8f) {
    std::vector<std::string> vars(node_vars.begin(), node_vars.end());
    if (with_ranks && rng->NextFloat() < 0.5f) {
      // Numeric range filter over a rank attribute of a bound variable.
      std::string v = vars[rng->NextUint(vars.size())];
      RPattern rank_pat;
      rank_pat.s = RNode::Var(v);
      rank_pat.p = RNode::Const(RTerm{true, "rank"});
      rank_pat.o = RNode::Var("r");
      c.patterns.push_back(std::move(rank_pat));
      const ROp ops[] = {ROp::kLt, ROp::kLe, ROp::kGt, ROp::kGe,
                         ROp::kEq, ROp::kNe};
      RFilter f;
      f.op = ops[rng->NextUint(6)];
      f.lhs = RNode::Var("r");
      f.rhs = RNode::Const(
          RTerm{false, std::to_string(rng->NextUint(10))});
      c.filters.push_back(std::move(f));
    } else if (vars.size() >= 2 && rng->NextFloat() < 0.4f) {
      RFilter f;
      f.op = rng->NextFloat() < 0.5f ? ROp::kEq : ROp::kNe;
      f.lhs = RNode::Var(vars[0]);
      f.rhs = RNode::Var(vars[1]);
      c.filters.push_back(std::move(f));
    } else {
      RFilter f;
      f.op = rng->NextFloat() < 0.5f ? ROp::kEq : ROp::kNe;
      f.lhs = RNode::Var(vars[rng->NextUint(vars.size())]);
      f.rhs = RNode::Const(node(static_cast<int>(rng->NextUint(nodes))));
      c.filters.push_back(std::move(f));
    }
  }

  if (opts.unions && !node_vars.empty() && rng->NextFloat() < 0.8f) {
    // One UNION chain of 2-3 single-pattern alternatives. Each branch
    // shares a variable with the core BGP (so the chain is a dependent
    // union) and may bind a branch-private variable — the heterogeneous
    // case where some output rows leave slots unbound.
    std::vector<std::string> vars(node_vars.begin(), node_vars.end());
    const int nalts = 2 + (rng->NextFloat() < 0.3f ? 1 : 0);
    std::vector<RPattern> alternatives;
    for (int i = 0; i < nalts; ++i) {
      RPattern alt;
      alt.s = RNode::Var(vars[rng->NextUint(vars.size())]);
      alt.p = RNode::Const(pred(static_cast<int>(rng->NextUint(preds))));
      const float kind = rng->NextFloat();
      if (kind < 0.4f) {
        alt.o = RNode::Var("u" + std::to_string(i));  // branch-private
      } else if (kind < 0.7f) {
        alt.o = RNode::Var(vars[rng->NextUint(vars.size())]);
      } else {
        alt.o = RNode::Const(node(static_cast<int>(rng->NextUint(nodes))));
      }
      alternatives.push_back(std::move(alt));
    }
    c.unions.push_back(std::move(alternatives));
  }

  if (opts.optionals && !node_vars.empty() && rng->NextFloat() < 0.7f) {
    std::vector<std::string> vars(node_vars.begin(), node_vars.end());
    RPattern opt;
    opt.s = RNode::Var(vars[rng->NextUint(vars.size())]);
    opt.p = RNode::Const(pred(static_cast<int>(rng->NextUint(preds))));
    opt.o = rng->NextFloat() < 0.7f
                ? RNode::Var("x")
                : RNode::Const(node(static_cast<int>(rng->NextUint(nodes))));
    c.optionals.push_back(std::move(opt));
  }

  if (opts.modifiers) {
    if (rng->NextFloat() < 0.7f)
      c.limit = 1 + static_cast<int64_t>(rng->NextUint(8));
    if (rng->NextFloat() < 0.3f)
      c.offset = static_cast<int64_t>(rng->NextUint(4));
  }
  if (opts.distinct) c.distinct = rng->NextFloat() < 0.8f;

  std::string q = c.distinct ? "SELECT DISTINCT * WHERE { "
                             : "SELECT * WHERE { ";
  for (const RPattern& p : c.patterns)
    q += NodeSparql(p.s) + " " + NodeSparql(p.p) + " " + NodeSparql(p.o) +
         " . ";
  for (const RFilter& f : c.filters)
    q += "FILTER(" + NodeSparql(f.lhs) + " " + OpSparql(f.op) + " " +
         NodeSparql(f.rhs) + ") ";
  for (const auto& alternatives : c.unions) {
    for (size_t i = 0; i < alternatives.size(); ++i) {
      if (i > 0) q += "UNION ";
      const RPattern& p = alternatives[i];
      q += "{ " + NodeSparql(p.s) + " " + NodeSparql(p.p) + " " +
           NodeSparql(p.o) + " . } ";
    }
  }
  for (const RPattern& p : c.optionals)
    q += "OPTIONAL { " + NodeSparql(p.s) + " " + NodeSparql(p.p) + " " +
         NodeSparql(p.o) + " . } ";
  q += "}";
  if (c.limit >= 0) q += " LIMIT " + std::to_string(c.limit);
  if (c.offset > 0) q += " OFFSET " + std::to_string(c.offset);
  c.sparql = q;
  return c;
}

// ------------------------------------------------------------ comparison --

/// Engine rows rendered as comparable string tuples, sorted.
std::vector<std::vector<std::string>> EngineRows(const QueryResult& r) {
  std::vector<std::vector<std::string>> rows;
  for (const auto& row : r.rows) {
    std::vector<std::string> cells;
    for (const Term& t : row)
      cells.push_back(t.is_undef() ? "u:"
                                   : (t.is_iri() ? "i:" : "l:") + t.lexical);
    rows.push_back(std::move(cells));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Reference bindings rendered against the engine's column list.
std::vector<std::vector<std::string>> RefRows(
    const std::vector<Binding>& sols, const std::vector<std::string>& cols) {
  std::vector<std::vector<std::string>> rows;
  for (const Binding& sol : sols) {
    std::vector<std::string> cells;
    for (const std::string& col : cols) {
      auto it = sol.find(col);
      if (it == sol.end()) {
        cells.push_back("u:");  // unbound projects as an explicit UNDEF
      } else {
        cells.push_back((it->second.iri ? "i:" : "l:") + it->second.lex);
      }
    }
    rows.push_back(std::move(cells));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// True when `sub` is a sub-multiset of `full` (both sorted).
bool IsSubMultiset(const std::vector<std::vector<std::string>>& sub,
                   const std::vector<std::vector<std::string>>& full) {
  size_t j = 0;
  for (const auto& row : sub) {
    while (j < full.size() && full[j] < row) ++j;
    if (j >= full.size() || full[j] != row) return false;
    ++j;
  }
  return true;
}

void RunSeeds(uint64_t first_seed, int count, const GenOptions& opts) {
  for (int i = 0; i < count; ++i) {
    const uint64_t seed = first_seed + static_cast<uint64_t>(i);
    tensor::Rng rng(seed);
    Case c = GenerateCase(&rng, opts);

    // The store configuration rotates with the seed so the differential
    // cases also cover the classic-trio index subset (planner fallback
    // when a permutation is absent) and tiny compressed-block sizes
    // (cursor decode across many block boundaries).
    rdf::TripleStore::Options sopts;
    if (seed % 3 == 1)
      sopts.index_set = rdf::TripleStore::Options::IndexSet::kClassicTrio;
    if (seed % 2 == 1) sopts.block_size = 1 + seed % 5;
    rdf::TripleStore store(sopts);
    for (const RTriple& f : c.facts) {
      auto to_term = [](const RTerm& t) {
        return t.iri ? Term::Iri(t.lex)
                     : Term::TypedLiteral(
                           t.lex, "http://www.w3.org/2001/XMLSchema#integer");
      };
      store.Insert(to_term(f.s), to_term(f.p), to_term(f.o));
    }

    QueryEngine engine(&store);
    engine.set_exec_mode(ExecMode::kStreaming);
    auto streamed = engine.ExecuteString(c.sparql);
    ASSERT_TRUE(streamed.ok())
        << streamed.status() << "\nseed=" << seed << "\n" << c.sparql;
    engine.set_exec_mode(ExecMode::kMaterialized);
    auto legacy = engine.ExecuteString(c.sparql);
    ASSERT_TRUE(legacy.ok())
        << legacy.status() << "\nseed=" << seed << "\n" << c.sparql;

    // Third pass: the same streaming plan driven through the
    // morsel-parallel operators (tiny thresholds + force_parallel). The
    // determinism contract says the parallel operators emit the exact
    // serial row stream, so even LIMIT/OFFSET results — free to pick any
    // rows — must be *identical* to the serial streaming run.
    {
      TinyMorselGuard morsels;
      engine.set_exec_mode(ExecMode::kStreaming);
      auto parallel = engine.ExecuteString(c.sparql);
      ASSERT_TRUE(parallel.ok())
          << parallel.status() << "\nseed=" << seed << "\n" << c.sparql;
      ASSERT_EQ(parallel->rows, streamed->rows)
          << "parallel operators diverged from serial\nseed=" << seed << "\n"
          << c.sparql;
    }

    std::vector<Binding> oracle =
        RefEval(c.patterns, c.filters, c.unions, c.optionals, c.facts);
    auto engine_rows = EngineRows(*streamed);
    auto legacy_rows = EngineRows(*legacy);
    auto oracle_rows = RefRows(oracle, streamed->columns);
    if (c.distinct)
      oracle_rows.erase(std::unique(oracle_rows.begin(), oracle_rows.end()),
                        oracle_rows.end());

    const size_t total = oracle_rows.size();
    const size_t after_offset =
        c.offset >= static_cast<int64_t>(total)
            ? 0
            : total - static_cast<size_t>(c.offset);
    const size_t expected =
        c.limit >= 0 ? std::min<size_t>(after_offset, c.limit) : after_offset;

    ASSERT_EQ(engine_rows.size(), expected)
        << "seed=" << seed << "\n" << c.sparql;
    ASSERT_EQ(legacy_rows.size(), expected)
        << "seed=" << seed << "\n" << c.sparql;
    if (c.limit < 0 && c.offset == 0) {
      // Full result: exact multiset equality, in both modes.
      ASSERT_EQ(engine_rows, oracle_rows)
          << "seed=" << seed << "\n" << c.sparql;
      ASSERT_EQ(legacy_rows, oracle_rows)
          << "seed=" << seed << "\n" << c.sparql;
    } else {
      // LIMIT/OFFSET may pick any rows, but only oracle rows.
      ASSERT_TRUE(IsSubMultiset(engine_rows, oracle_rows))
          << "seed=" << seed << "\n" << c.sparql;
      ASSERT_TRUE(IsSubMultiset(legacy_rows, oracle_rows))
          << "seed=" << seed << "\n" << c.sparql;
    }
  }
}

// Regression: a FILTER inside a nested group whose variable is bound by
// only one UNION branch reaches the streaming planner through seed rows
// with heterogeneous bindings. It must be applied leniently per row
// (when the row binds the variable), exactly like the legacy evaluator —
// not dropped.
TEST(ExecOracleTest, FilterOnHeterogeneousSeedBindingsMatchesLegacy) {
  rdf::TripleStore store;
  store.InsertIris("n1", "p1", "n2");
  store.InsertIris("n1", "p2", "x1");
  store.InsertIris("n2", "p2", "good");
  store.InsertIris("n2", "p2", "bad");
  const std::string query =
      "SELECT * WHERE { ?s <p1> ?o . "
      "{ ?s <p2> ?x } UNION { ?o <p2> ?y } "
      "{ ?s <p1> ?o . FILTER(?y = <good>) } UNION { ?s <p3> ?z } }";

  QueryEngine engine(&store);
  auto streamed = engine.ExecuteString(query);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  engine.set_exec_mode(ExecMode::kMaterialized);
  auto legacy = engine.ExecuteString(query);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(EngineRows(*streamed), EngineRows(*legacy));
  // ?y=<bad> fails the filter; ?y unbound (first branch) passes it.
  EXPECT_EQ(streamed->NumRows(), 2u);
}

// 300 randomized cases total, weighted across the query shapes the
// streaming executor must get right. The random graphs and BGPs exercise
// every bound-position combination, so the planner's scans cover all six
// permutation indexes (spo/pos/osp/pso/ops/sop) in both executor modes.
TEST(ExecOracleTest, BasicGraphPatternsMatchBruteForce) {
  RunSeeds(1000, 60, GenOptions{});
}

TEST(ExecOracleTest, FiltersMatchBruteForce) {
  GenOptions opts;
  opts.filters = true;
  RunSeeds(2000, 60, opts);
}

TEST(ExecOracleTest, OptionalsMatchBruteForce) {
  GenOptions opts;
  opts.filters = true;
  opts.optionals = true;
  RunSeeds(3000, 50, opts);
}

TEST(ExecOracleTest, UnionsMatchBruteForce) {
  GenOptions opts;
  opts.unions = true;
  RunSeeds(5000, 50, opts);
}

TEST(ExecOracleTest, UnionsWithFiltersAndOptionalsMatchBruteForce) {
  GenOptions opts;
  opts.filters = true;
  opts.unions = true;
  opts.optionals = true;
  RunSeeds(6000, 40, opts);
}

TEST(ExecOracleTest, LimitOffsetMatchBruteForce) {
  GenOptions opts;
  opts.filters = true;
  opts.unions = true;
  opts.optionals = true;
  opts.modifiers = true;
  RunSeeds(4000, 40, opts);
}

// DISTINCT composed with OFFSET and LIMIT (dedup happens before the
// modifiers), over union/optional shapes whose rows carry unbound slots
// — the case where DISTINCT must not merge an unbound cell with a bound
// one.
TEST(ExecOracleTest, DistinctLimitOffsetMatchBruteForce) {
  GenOptions opts;
  opts.filters = true;
  opts.unions = true;
  opts.optionals = true;
  opts.modifiers = true;
  opts.distinct = true;
  RunSeeds(7000, 40, opts);
}

// Regression: unbound projection cells used to materialize as empty
// *literals*, so DISTINCT merged a row whose ?x is genuinely "" with a
// row whose ?x is unbound. With the explicit UNDEF representation the
// two rows stay distinct (and serialize distinguishably).
TEST(ExecOracleTest, DistinctKeepsUnboundApartFromEmptyLiteral) {
  rdf::TripleStore store;
  store.Insert(Term::Iri("s"), Term::Iri("p"), Term::Literal(""));
  store.InsertIris("s", "q", "o");
  const std::string query =
      "SELECT DISTINCT ?s ?x WHERE { { ?s <p> ?x } UNION { ?s <q> <o> } }";
  QueryEngine engine(&store);
  for (ExecMode mode : {ExecMode::kStreaming, ExecMode::kMaterialized}) {
    engine.set_exec_mode(mode);
    auto r = engine.ExecuteString(query);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->NumRows(), 2u) << "DISTINCT merged unbound with \"\"";
    // One row binds ?x to the empty literal, the other leaves it UNDEF.
    int undef = 0, empty_lit = 0;
    for (const auto& row : r->rows) {
      if (row[1].is_undef()) ++undef;
      if (row[1].is_literal() && row[1].lexical.empty()) ++empty_lit;
    }
    EXPECT_EQ(undef, 1);
    EXPECT_EQ(empty_lit, 1);
  }
}

// The MVCC guarantee at the query layer: a query executed against a
// snapshot opened *before* a mutation batch returns exactly the
// pre-batch answer, while the same parsed query on the live store
// tracks the updated graph — both sides differentially checked against
// the brute-force reference on their respective fact sets, across
// interleaved insert/erase batches and a mid-sequence compaction.
TEST(ExecOracleTest, SnapshotQueriesSurviveInterleavedMutationBatches) {
  for (uint64_t seed = 9200; seed < 9212; ++seed) {
    tensor::Rng rng(seed);
    GenOptions opts;
    opts.filters = true;
    opts.unions = seed % 2 == 0;
    opts.optionals = seed % 3 == 0;
    Case c = GenerateCase(&rng, opts);

    rdf::TripleStore::Options sopts;
    if (seed % 2 == 1) sopts.block_size = 1 + seed % 5;
    rdf::TripleStore store(sopts);
    auto to_term = [](const RTerm& t) {
      return t.iri ? Term::Iri(t.lex)
                   : Term::TypedLiteral(
                         t.lex, "http://www.w3.org/2001/XMLSchema#integer");
    };
    std::set<RTriple> live(c.facts.begin(), c.facts.end());
    for (const RTriple& f : c.facts)
      store.Insert(to_term(f.s), to_term(f.p), to_term(f.o));

    auto parsed = ParseQuery(c.sparql);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << c.sparql;
    QueryEngine engine(&store);

    for (int round = 0; round < 3; ++round) {
      const std::vector<RTriple> frozen(live.begin(), live.end());
      rdf::Snapshot snap = store.OpenSnapshot();

      // Mutation batch: erase a handful of live facts, insert fresh
      // ones (duplicates skipped in both the store and the model).
      for (int i = 0; i < 6 && !live.empty(); ++i) {
        auto it = live.begin();
        std::advance(it, rng.NextUint(live.size()));
        const RTriple victim = *it;
        const rdf::Triple t(store.dict().Find(to_term(victim.s)),
                            store.dict().Find(to_term(victim.p)),
                            store.dict().Find(to_term(victim.o)));
        ASSERT_TRUE(store.Erase(t)) << "seed=" << seed;
        live.erase(it);
      }
      for (int i = 0; i < 8; ++i) {
        const RTriple f{{true, "n" + std::to_string(rng.NextUint(14))},
                        {true, "p" + std::to_string(rng.NextUint(5))},
                        {true, "n" + std::to_string(rng.NextUint(14))}};
        if (live.insert(f).second) {
          ASSERT_TRUE(store.Insert(to_term(f.s), to_term(f.p), to_term(f.o)));
        }
      }
      if (round == 1) store.Compact();

      // The pre-batch snapshot answers from the pre-batch graph.
      ExecInfo info;
      auto snap_result = engine.Execute(*parsed, snap, &info);
      ASSERT_TRUE(snap_result.ok())
          << snap_result.status() << "\nseed=" << seed << "\n" << c.sparql;
      EXPECT_EQ(info.snapshot_epoch, snap.epoch());
      EXPECT_EQ(info.snapshot_delta, snap.delta_size());
      const std::vector<Binding> oracle_pre =
          RefEval(c.patterns, c.filters, c.unions, c.optionals, frozen);
      ASSERT_EQ(EngineRows(*snap_result),
                RefRows(oracle_pre, snap_result->columns))
          << "pre-mutation snapshot diverged\nseed=" << seed << " round="
          << round << "\n" << c.sparql;

      // The live store answers from the updated graph.
      const std::vector<RTriple> now(live.begin(), live.end());
      auto live_result = engine.Execute(*parsed);
      ASSERT_TRUE(live_result.ok())
          << live_result.status() << "\nseed=" << seed << "\n" << c.sparql;
      const std::vector<Binding> oracle_now =
          RefEval(c.patterns, c.filters, c.unions, c.optionals, now);
      ASSERT_EQ(EngineRows(*live_result),
                RefRows(oracle_now, live_result->columns))
          << "post-mutation store diverged\nseed=" << seed << " round="
          << round << "\n" << c.sparql;
    }
  }
}

// The store's index flush (and the N-Triples bulk load above it) runs on
// the shared thread pool; every query result table must be identical no
// matter how many pool threads rebuilt the permutation runs. Full result
// tables (rendered rows, both executor modes) are compared across
// thread counts on a spread of seeded graph/query cases.
TEST(ExecOracleTest, ResultTablesIdenticalAcrossThreadCounts) {
  kgnet::testing::ThreadCountGuard thread_guard;
  GenOptions opts;
  opts.filters = true;
  opts.unions = true;
  opts.optionals = true;

  using Table = std::vector<std::vector<std::string>>;
  auto run = [&](int threads) {
    common::ThreadPool::SetNumThreads(threads);
    std::vector<Table> tables;
    for (uint64_t seed = 9000; seed < 9012; ++seed) {
      tensor::Rng rng(seed);
      Case c = GenerateCase(&rng, opts);
      rdf::TripleStore store;
      for (const RTriple& f : c.facts) {
        auto to_term = [](const RTerm& t) {
          return t.iri ? Term::Iri(t.lex)
                       : Term::TypedLiteral(
                             t.lex,
                             "http://www.w3.org/2001/XMLSchema#integer");
        };
        store.Insert(to_term(f.s), to_term(f.p), to_term(f.o));
      }
      QueryEngine engine(&store);
      for (ExecMode mode : {ExecMode::kStreaming, ExecMode::kMaterialized}) {
        engine.set_exec_mode(mode);
        auto result = engine.ExecuteString(c.sparql);
        EXPECT_TRUE(result.ok())
            << result.status() << "\nseed=" << seed << "\n" << c.sparql;
        tables.push_back(result.ok() ? EngineRows(*result) : Table{});
      }
    }
    return tables;
  };

  const std::vector<Table> want = run(1);
  for (int threads : {2, 4})
    EXPECT_EQ(want, run(threads)) << threads << " threads";
}

// The tentpole guarantee for the morsel-driven executor: with the
// parallel operators engaged (tiny thresholds + force_parallel), the
// result tables — in emission order, not just as multisets — are
// bitwise-identical at 1, 2 and 4 pool threads, and identical to the
// plain serial streaming run. DISTINCT/LIMIT/OFFSET cases are included
// so the modifier pipeline sees the same stream too.
TEST(ExecOracleTest, ParallelOperatorsIdenticalAcrossThreadCounts) {
  kgnet::testing::ThreadCountGuard thread_guard;
  GenOptions opts;
  opts.filters = true;
  opts.unions = true;
  opts.optionals = true;
  opts.modifiers = true;
  opts.distinct = true;

  using OrderedTable = std::vector<std::vector<Term>>;
  auto run = [&](int threads, bool parallel_ops) {
    common::ThreadPool::SetNumThreads(threads);
    std::unique_ptr<TinyMorselGuard> morsels;
    if (parallel_ops) morsels = std::make_unique<TinyMorselGuard>();
    std::vector<OrderedTable> tables;
    for (uint64_t seed = 9100; seed < 9116; ++seed) {
      tensor::Rng rng(seed);
      Case c = GenerateCase(&rng, opts);
      rdf::TripleStore store;
      for (const RTriple& f : c.facts) {
        auto to_term = [](const RTerm& t) {
          return t.iri ? Term::Iri(t.lex)
                       : Term::TypedLiteral(
                             t.lex,
                             "http://www.w3.org/2001/XMLSchema#integer");
        };
        store.Insert(to_term(f.s), to_term(f.p), to_term(f.o));
      }
      QueryEngine engine(&store);
      engine.set_exec_mode(ExecMode::kStreaming);
      auto result = engine.ExecuteString(c.sparql);
      EXPECT_TRUE(result.ok())
          << result.status() << "\nseed=" << seed << "\n" << c.sparql;
      tables.push_back(result.ok() ? result->rows : OrderedTable{});
    }
    return tables;
  };

  const std::vector<OrderedTable> serial = run(1, /*parallel_ops=*/false);
  for (int threads : {1, 2, 4}) {
    EXPECT_TRUE(serial == run(threads, /*parallel_ops=*/true))
        << "parallel executor diverged at " << threads << " threads";
  }
}

}  // namespace
}  // namespace kgnet::sparql
