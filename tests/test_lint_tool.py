#!/usr/bin/env python3
"""Fixture tests for tools/kgnet_lint.py (ctest: lint_tool_fixtures).

Each violating fixture under tests/lint_fixtures/ must make *exactly*
its rule fire (right rule ID, right count, nonzero exit); the clean
fixture — which mentions every banned construct inside comments and
strings — must pass. This pins both the rules and the comment/string
stripper, so the linter itself cannot rot silently.
"""

import os
import re
import subprocess
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "tools", "kgnet_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")


def run_lint(fixture, virtual_path):
    proc = subprocess.run(
        [sys.executable, LINT, "--as", virtual_path,
         os.path.join(FIXTURES, fixture)],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def rule_hits(output, rule):
    return len(re.findall(rf"\b{rule}\b \(", output))


class ViolatingFixtures(unittest.TestCase):
    """One test per rule: the fixture fires its rule and only its rule."""

    def check(self, fixture, virtual_path, rule, expected_hits):
        code, out = run_lint(fixture, virtual_path)
        self.assertNotEqual(code, 0, f"{fixture} should fail the gate:\n{out}")
        self.assertEqual(rule_hits(out, rule), expected_hits, out)
        for other in ("KL001", "KL002", "KL003", "KL004", "KL005"):
            if other != rule:
                self.assertEqual(
                    rule_hits(out, other), 0,
                    f"{fixture} unexpectedly fired {other}:\n{out}")

    def test_kl001_unordered_iteration(self):
        # One range-for plus one .begin() walk.
        self.check("kl001_unordered_iteration.cc",
                   "src/sparql/fixture.cc", "KL001", 2)

    def test_kl001_is_scoped_to_sparql_and_rdf(self):
        # The same file is legal outside the query/storage hot paths.
        code, out = run_lint("kl001_unordered_iteration.cc",
                             "src/gml/fixture.cc")
        self.assertEqual(code, 0, out)

    def test_kl002_unseeded_random(self):
        # random_device + srand + rand.
        self.check("kl002_unseeded_random.cc",
                   "src/gml/fixture.cc", "KL002", 3)

    def test_kl003_layering(self):
        # tensor -> rdf and tensor -> sparql; the common include is legal.
        self.check("kl003_layering.cc",
                   "src/tensor/fixture.cc", "KL003", 2)

    def test_kl004_naked_new(self):
        # Two news + two deletes; `= delete` must not count.
        self.check("kl004_naked_new.cc",
                   "src/core/fixture.cc", "KL004", 4)

    def test_kl005_thread_local(self):
        self.check("kl005_thread_local.cc",
                   "src/tensor/fixture.cc", "KL005", 1)


class CleanFixture(unittest.TestCase):
    def test_clean_passes_every_rule(self):
        code, out = run_lint("clean.cc", "src/sparql/fixture.cc")
        self.assertEqual(code, 0,
                         f"clean fixture must pass the full gate:\n{out}")


class WholeTree(unittest.TestCase):
    def test_repo_is_lint_clean(self):
        proc = subprocess.run([sys.executable, LINT],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
