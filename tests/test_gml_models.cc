#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "gml/gcn.h"
#include "tests/parallel_test_util.h"
#include "gml/rgcn.h"
#include "gml/kge.h"
#include "gml/metrics.h"
#include "gml/model.h"
#include "gml/morse.h"
#include "gml/rgcn_net.h"
#include "gml/sampler.h"
#include "workload/dblp_gen.h"

namespace kgnet::gml {
namespace {

using workload::DblpSchema;

// Debug (-O0) builds trim graph sizes, epochs and the accuracy bars so
// this slow-labeled suite stays under ~3 s in a developer loop; optimized
// builds (NDEBUG, e.g. the default RelWithDebInfo tier-1 run) keep the
// paper-faithful assertions. (ROADMAP open item "test_gml_models cost".)
#ifdef NDEBUG
constexpr bool kOptimizedBuild = true;
#else
constexpr bool kOptimizedBuild = false;
#endif

/// Full-strength accuracy bars apply only to optimized builds; Debug
/// keeps a weaker better-than-chance check.
double MinMetric(double release_bar, double debug_bar) {
  return kOptimizedBuild ? release_bar : debug_bar;
}

/// Small DBLP KG with a strong planted venue/community signal.
GraphData NcGraph(uint64_t seed = 7) {
  rdf::TripleStore store;
  workload::DblpOptions opts;
  opts.num_papers = kOptimizedBuild ? 240 : 100;
  opts.num_authors = kOptimizedBuild ? 120 : 60;
  opts.num_venues = 4;
  opts.num_affiliations = 8;
  opts.noise = 0.05;
  opts.include_periphery = false;
  opts.seed = seed;
  EXPECT_TRUE(workload::GenerateDblp(opts, &store).ok());
  TransformOptions t;
  t.target_type_iri = DblpSchema::Publication();
  t.label_predicate_iri = DblpSchema::PublishedIn();
  t.feature_dim = 16;
  t.seed = seed;
  auto g = BuildGraphData(store, t);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(*g);
}

GraphData LpGraph(uint64_t seed = 7) {
  rdf::TripleStore store;
  workload::DblpOptions opts;
  opts.num_papers = kOptimizedBuild ? 200 : 100;
  opts.num_authors = kOptimizedBuild ? 120 : 60;
  opts.num_venues = 4;
  opts.num_affiliations = 8;
  opts.noise = 0.05;
  opts.include_periphery = false;
  opts.seed = seed;
  EXPECT_TRUE(workload::GenerateDblp(opts, &store).ok());
  TransformOptions t;
  t.target_type_iri = DblpSchema::Person();
  t.task_predicate_iri = DblpSchema::PrimaryAffiliation();
  t.feature_dim = 16;
  t.seed = seed;
  auto g = BuildGraphData(store, t);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(*g);
}

TrainConfig FastConfig() {
  TrainConfig c;
  c.epochs = kOptimizedBuild ? 30 : 15;
  c.hidden_dim = 16;
  c.embed_dim = 16;
  c.patience = 30;
  c.saint_sample_nodes = 256;
  c.batch_size = 64;
  return c;
}

// ------------------------------------------------------------- RgcnNet --

TEST(RgcnNetTest, TrainStepReducesLossOnToyGraph) {
  tensor::Rng rng(3);
  // 8 nodes, 1 relation, labels = two cliques.
  GraphData g;
  g.num_nodes = 8;
  g.num_relations = 1;
  for (uint32_t i = 0; i < 4; ++i)
    for (uint32_t j = 0; j < 4; ++j)
      if (i != j) {
        g.edges.push_back({i, 0, j});
        g.edges.push_back({i + 4, 0, j + 4});
      }
  g.feature_dim = 4;
  g.features = tensor::Matrix(8, 4);
  g.features.XavierInit(&rng);
  std::vector<int> labels = {0, 0, 0, 0, 1, 1, 1, 1};

  auto adj = g.BuildRelationalAdjacencies();
  RgcnNet net(4, 8, 2, adj.size(), &rng);
  tensor::AdamOptimizer::Options opts;
  opts.lr = 0.05f;
  tensor::AdamOptimizer opt(opts);
  net.RegisterParams(&opt);

  float first = 0, last = 0;
  for (int e = 0; e < 60; ++e) {
    const float loss = net.TrainStep(adj, g.features, labels, &opt);
    if (e == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.5f);
  // Perfect separation expected on this toy graph.
  tensor::Matrix logits = net.Forward(adj, g.features);
  for (uint32_t v = 0; v < 8; ++v) {
    const int pred = logits.At(v, 0) > logits.At(v, 1) ? 0 : 1;
    EXPECT_EQ(pred, labels[v]) << "node " << v;
  }
}

// ------------------------------------------------------------ samplers --

TEST(SamplerTest, SaintSubgraphIsInduced) {
  GraphData g = NcGraph();
  AdjacencyList adj(g);
  tensor::Rng rng(5);
  Subgraph sub = SampleSaintSubgraph(g, adj, 80, &rng);
  EXPECT_GT(sub.nodes.size(), 10u);
  EXPECT_LE(sub.nodes.size(), 80u);
  // Every edge endpoint is a sampled node with a consistent local id.
  for (const Edge& e : sub.edges) {
    ASSERT_LT(e.src, sub.nodes.size());
    ASSERT_LT(e.dst, sub.nodes.size());
  }
  // Every full-graph edge among sampled nodes is present.
  size_t expected = 0;
  for (const Edge& e : g.edges)
    if (sub.Contains(e.src) && sub.Contains(e.dst)) ++expected;
  EXPECT_EQ(sub.edges.size(), expected);
}

TEST(SamplerTest, ShadowSubgraphContainsSeeds) {
  GraphData g = NcGraph();
  AdjacencyList adj(g);
  tensor::Rng rng(5);
  std::vector<uint32_t> seeds = {g.target_nodes[0], g.target_nodes[1],
                                 g.target_nodes[2]};
  Subgraph sub = SampleShadowSubgraph(g, adj, seeds, 2, 5, &rng);
  for (uint32_t s : seeds) EXPECT_TRUE(sub.Contains(s));
  // Bounded expansion: |sub| <= seeds * (1 + b + b^2) roughly.
  EXPECT_LE(sub.nodes.size(), 3u * (1 + 5 + 25) + 1);
}

TEST(SamplerTest, SubgraphAdjacencySizesMatch) {
  GraphData g = NcGraph();
  AdjacencyList adj(g);
  tensor::Rng rng(5);
  Subgraph sub = SampleSaintSubgraph(g, adj, 60, &rng);
  auto mats = BuildSubgraphAdjacencies(sub, g.num_relations);
  ASSERT_EQ(mats.size(), g.num_relations * 2);
  for (const auto& m : mats) {
    EXPECT_EQ(m.rows(), sub.nodes.size());
    EXPECT_EQ(m.cols(), sub.nodes.size());
  }
}

// -------------------------------------------------- node classification --

struct NcCase {
  GmlMethod method;
  double min_accuracy;
};

class NodeClassifierTest : public ::testing::TestWithParam<NcCase> {};

TEST_P(NodeClassifierTest, LearnsPlantedVenueSignal) {
  GraphData g = NcGraph();
  auto model = MakeNodeClassifier(GetParam().method);
  ASSERT_TRUE(model.ok()) << model.status();
  TrainReport report;
  Status st = (*model)->Train(g, FastConfig(), &report);
  ASSERT_TRUE(st.ok()) << st;
  // Debug bar: strictly above the 4-class chance level (~0.25).
  EXPECT_GT(report.metric, MinMetric(GetParam().min_accuracy, 0.27))
      << GmlMethodName(GetParam().method) << " test accuracy too low";
  EXPECT_GT(report.epochs_run, 0u);
  EXPECT_GT(report.train_seconds, 0.0);
  EXPECT_GT(report.peak_memory_bytes, 0u);
  // Predict() covers all target nodes.
  std::vector<int> preds = (*model)->Predict(g, g.target_nodes);
  ASSERT_EQ(preds.size(), g.target_nodes.size());
  for (int p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, static_cast<int>(g.num_classes));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, NodeClassifierTest,
    ::testing::Values(NcCase{GmlMethod::kGcn, 0.30},
                      NcCase{GmlMethod::kGraphSage, 0.35},
                      NcCase{GmlMethod::kRgcn, 0.45},
                      NcCase{GmlMethod::kGraphSaint, 0.45},
                      NcCase{GmlMethod::kShadowSaint, 0.45}),
    [](const ::testing::TestParamInfo<NcCase>& info) {
      std::string name = GmlMethodName(info.param.method);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(NodeClassifierTest, TimeBudgetCutsTrainingShort) {
  GraphData g = NcGraph();
  TrainConfig c = FastConfig();
  c.epochs = 1000;
  c.patience = 0;
  c.max_seconds = 0.05;  // far less than 1000 epochs need
  RgcnClassifier model;
  TrainReport report;
  ASSERT_TRUE(model.Train(g, c, &report).ok());
  EXPECT_LT(report.epochs_run, 1000u);
}

// The parallel kernels promise bitwise-identical results for any thread
// count; a whole training run is the end-to-end check (losses feed
// through Adam, ReLU masks and early stopping, so a single diverging bit
// anywhere would surface here).
TEST(NodeClassifierTest, GcnTrainingBitwiseIdenticalAcrossThreadCounts) {
  kgnet::testing::ThreadCountGuard thread_guard;
  GraphData g = NcGraph();
  TrainConfig c = FastConfig();
  c.epochs = 5;
  c.patience = 0;
  c.max_seconds = 0.0;  // no wall-clock dependence

  auto run = [&](int threads) {
    common::ThreadPool::SetNumThreads(threads);
    GcnClassifier model;
    TrainReport report;
    EXPECT_TRUE(model.Train(g, c, &report).ok());
    return report;
  };
  const TrainReport want = run(1);
  for (int threads : {2, 4}) {
    const TrainReport got = run(threads);
    EXPECT_EQ(kgnet::testing::BitsOf(want.final_loss),
              kgnet::testing::BitsOf(got.final_loss))
        << threads << " threads";
    EXPECT_EQ(want.metric, got.metric) << threads << " threads";
    EXPECT_EQ(want.valid_metric, got.valid_metric) << threads << " threads";
    EXPECT_EQ(want.macro_f1, got.macro_f1) << threads << " threads";
    EXPECT_EQ(want.epochs_run, got.epochs_run) << threads << " threads";
  }
}

TEST(NodeClassifierTest, FactoryRejectsLinkMethods) {
  EXPECT_FALSE(MakeNodeClassifier(GmlMethod::kTransE).ok());
  EXPECT_FALSE(MakeLinkPredictor(GmlMethod::kGcn).ok());
}

TEST(NodeClassifierTest, TrainFailsWithoutLabels) {
  GraphData g = LpGraph();  // LP graph has no class labels
  RgcnClassifier model;
  TrainReport report;
  EXPECT_FALSE(model.Train(g, FastConfig(), &report).ok());
}

// ------------------------------------------------------ link prediction --

struct LpCase {
  GmlMethod method;
  double min_hits10;
};

class LinkPredictorTest : public ::testing::TestWithParam<LpCase> {};

TEST_P(LinkPredictorTest, BeatsRandomRanking) {
  GraphData g = LpGraph();
  auto model = MakeLinkPredictor(GetParam().method);
  ASSERT_TRUE(model.ok()) << model.status();
  TrainConfig c = FastConfig();
  c.epochs = kOptimizedBuild ? 25 : 10;
  c.lr = 0.05f;
  TrainReport report;
  Status st = (*model)->Train(g, c, &report);
  ASSERT_TRUE(st.ok()) << st;
  // Random ranking against 100 candidates gives Hits@10 ~= 0.10.
  EXPECT_GT(report.metric, MinMetric(GetParam().min_hits10, 0.12))
      << GmlMethodName(GetParam().method) << " Hits@10 too low";
  EXPECT_GT(report.mrr, 0.0);
  // Scores are finite and usable for ranking.
  if (!g.test_edges.empty()) {
    const Edge& e = g.test_edges.front();
    const float s = (*model)->Score(e.src, e.rel, e.dst);
    EXPECT_TRUE(std::isfinite(s));
    std::vector<uint32_t> top = (*model)->TopKTails(e.src, e.rel, 5);
    EXPECT_EQ(top.size(), 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, LinkPredictorTest,
    ::testing::Values(LpCase{GmlMethod::kTransE, 0.25},
                      LpCase{GmlMethod::kDistMult, 0.25},
                      LpCase{GmlMethod::kComplEx, 0.25},
                      LpCase{GmlMethod::kRotatE, 0.25},
                      LpCase{GmlMethod::kMorse, 0.25}),
    [](const ::testing::TestParamInfo<LpCase>& info) {
      return GmlMethodName(info.param.method);
    });

TEST(LinkPredictorTest, EntityEmbeddingsHaveStableDimension) {
  GraphData g = LpGraph();
  KgeModel model(KgeScore::kComplEx);
  TrainConfig c = FastConfig();
  c.epochs = 2;
  c.embed_dim = 15;  // odd: complex models round up
  TrainReport report;
  ASSERT_TRUE(model.Train(g, c, &report).ok());
  std::vector<float> e0 = model.EntityEmbedding(0);
  std::vector<float> e1 = model.EntityEmbedding(1);
  EXPECT_EQ(e0.size(), 16u);
  EXPECT_EQ(e0.size(), e1.size());
}

TEST(LinkPredictorTest, MorseIsInductiveAcrossEntities) {
  // Entities with identical relation signatures and anchor bucket get the
  // same derived embedding; at minimum embeddings must be finite.
  GraphData g = LpGraph();
  MorseModel model;
  TrainConfig c = FastConfig();
  c.epochs = 3;
  TrainReport report;
  ASSERT_TRUE(model.Train(g, c, &report).ok());
  for (uint32_t v = 0; v < std::min<size_t>(g.num_nodes, 20); ++v) {
    for (float x : model.EntityEmbedding(v)) {
      EXPECT_TRUE(std::isfinite(x));
      EXPECT_LE(std::fabs(x), 1.0f + 1e-5f);  // tanh-bounded
    }
  }
}

TEST(LinkPredictorTest, RanksImproveWithTraining) {
  GraphData g = LpGraph();
  TrainConfig c = FastConfig();
  TrainReport untrained, trained;
  {
    KgeModel model(KgeScore::kTransE);
    TrainConfig c0 = c;
    c0.epochs = 1;
    ASSERT_TRUE(model.Train(g, c0, &untrained).ok());
  }
  {
    KgeModel model(KgeScore::kTransE);
    TrainConfig c1 = c;
    c1.epochs = kOptimizedBuild ? 30 : 12;
    c1.lr = 0.05f;
    ASSERT_TRUE(model.Train(g, c1, &trained).ok());
  }
  EXPECT_GE(trained.metric, untrained.metric);
}

}  // namespace
}  // namespace kgnet::gml
