/// Concurrency stress suite for the MVCC storage layer: N snapshot
/// readers racing one mutating writer and running compactions, with
/// bitwise snapshot-isolation checks throughout. CI runs this file
/// under ThreadSanitizer at 1, 2 and 4 pool threads (the tsan preset +
/// KGNET_NUM_THREADS); the assertions themselves are valid under any
/// interleaving.
///
/// Contract exercised (docs/STORAGE.md): one mutating writer, any
/// number of snapshot readers, concurrent Compact() calls. Dictionary
/// interning is writer-role work, so the whole term universe is
/// interned up front and the racing threads touch encoded ids only.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "rdf/triple_store.h"
#include "tensor/rng.h"

namespace kgnet::rdf {
namespace {

/// Pre-interns a term universe and returns every (s, p, o) combination
/// as an encoded triple. Nothing after this touches the dictionary.
std::vector<Triple> BuildUniverse(TripleStore* store, uint64_t n_s,
                                  uint64_t n_p, uint64_t n_o) {
  Dictionary* dict = &store->dict();
  std::vector<TermId> s_ids, p_ids, o_ids;
  for (uint64_t i = 0; i < n_s; ++i)
    s_ids.push_back(dict->InternIri("s" + std::to_string(i)));
  for (uint64_t i = 0; i < n_p; ++i)
    p_ids.push_back(dict->InternIri("p" + std::to_string(i)));
  for (uint64_t i = 0; i < n_o; ++i)
    o_ids.push_back(dict->InternIri("o" + std::to_string(i)));
  std::vector<Triple> universe;
  universe.reserve(n_s * n_p * n_o);
  for (TermId s : s_ids)
    for (TermId p : p_ids)
      for (TermId o : o_ids) universe.emplace_back(s, p, o);
  return universe;
}

/// One writer mutating + explicitly compacting, `n_readers` readers
/// verifying bitwise snapshot isolation, one dedicated compactor
/// thread. Returns nothing — failures surface as gtest assertions.
void RunStress(int n_readers) {
  TripleStore::Options opts;
  opts.delta_compact_threshold = 64;  // force frequent auto-compactions
  TripleStore store(opts);
  const std::vector<Triple> universe = BuildUniverse(&store, 12, 3, 10);

  // Seed a third of the universe so erases hit from the start.
  tensor::Rng seed_rng(1);
  std::vector<bool> present(universe.size(), false);
  for (size_t i = 0; i < universe.size() / 3; ++i) {
    const size_t k = seed_rng.NextUint(universe.size());
    if (store.Insert(universe[k])) present[k] = true;
  }
  store.Compact();

  std::atomic<bool> writer_done{false};
  constexpr int kWriterOps = 4000;

  std::thread writer([&] {
    tensor::Rng rng(2);
    for (int op = 0; op < kWriterOps; ++op) {
      const size_t k = rng.NextUint(universe.size());
      if (present[k]) {
        EXPECT_TRUE(store.Erase(universe[k])) << "op " << op;
        present[k] = false;
      } else {
        EXPECT_TRUE(store.Insert(universe[k])) << "op " << op;
        present[k] = true;
      }
      if (op % 512 == 511) store.Compact();
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::thread compactor([&] {
    while (!writer_done.load(std::memory_order_acquire)) store.Compact();
  });

  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(n_readers));
  for (int r = 0; r < n_readers; ++r) {
    readers.emplace_back([&, r] {
      tensor::Rng rng(100 + static_cast<uint64_t>(r));
      uint64_t last_epoch = 0;
      while (!writer_done.load(std::memory_order_acquire)) {
        Snapshot snap = store.OpenSnapshot();
        // Epochs only move forward.
        EXPECT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();

        // Bitwise isolation: the same snapshot materializes the same
        // rows no matter how much the writer/compactor churn between
        // the two reads.
        const std::vector<Triple> first = snap.Match(TriplePattern());
        EXPECT_EQ(first.size(), snap.size());
        const std::vector<Triple> again = snap.Match(TriplePattern());
        EXPECT_EQ(first, again);

        // Counts, estimates and cursors agree with the materialization
        // inside one snapshot — exactness holds on dirty ranges too.
        const Triple& probe = universe[rng.NextUint(universe.size())];
        TriplePattern pat;
        if (rng.NextFloat() < 0.6f) pat.p = probe.p;
        if (rng.NextFloat() < 0.4f) pat.s = probe.s;
        size_t want = 0;
        for (const Triple& t : first)
          if (pat.Matches(t)) ++want;
        EXPECT_EQ(snap.Count(pat), want);
        EXPECT_EQ(snap.EstimateCardinality(pat), want);
        TripleCursor c = snap.OpenCursor(snap.ChooseIndex(pat), pat);
        size_t streamed = 0;
        Triple row;
        while (c.Next(&row)) ++streamed;
        EXPECT_EQ(streamed, want);
      }
    });
  }

  writer.join();
  compactor.join();
  for (std::thread& t : readers) t.join();

  // Post-race: the store converged to the writer's serial model.
  store.Compact();
  size_t want_size = 0;
  for (size_t k = 0; k < universe.size(); ++k) {
    EXPECT_EQ(store.Contains(universe[k]), static_cast<bool>(present[k]));
    if (present[k]) ++want_size;
  }
  EXPECT_EQ(store.size(), want_size);
  // Every superseded generation was reclaimed once its snapshots died.
  EXPECT_EQ(store.GetStats().live_generations, 1);
}

TEST(SnapshotStressTest, OneReaderVsWriterAndCompaction) { RunStress(1); }
TEST(SnapshotStressTest, TwoReadersVsWriterAndCompaction) { RunStress(2); }
TEST(SnapshotStressTest, FourReadersVsWriterAndCompaction) { RunStress(4); }

TEST(SnapshotStressTest, PinnedSnapshotSurvivesManyCompactionCycles) {
  // One long-lived snapshot held across many generation swaps must stay
  // bitwise identical and keep exactly one superseded generation alive.
  TripleStore::Options opts;
  opts.delta_compact_threshold = 16;
  TripleStore store(opts);
  const std::vector<Triple> universe = BuildUniverse(&store, 8, 2, 8);
  tensor::Rng rng(3);
  for (size_t i = 0; i < universe.size() / 2; ++i)
    store.Insert(universe[rng.NextUint(universe.size())]);
  store.Compact();

  Snapshot pinned = store.OpenSnapshot();
  const std::vector<Triple> frozen = pinned.Match(TriplePattern());
  const uint64_t gens_before = store.GetStats().compactions;
  for (int round = 0; round < 8; ++round) {
    for (int op = 0; op < 40; ++op) {
      const size_t k = rng.NextUint(universe.size());
      if (store.Contains(universe[k]))
        store.Erase(universe[k]);
      else
        store.Insert(universe[k]);
    }
    store.Compact();
    EXPECT_EQ(pinned.Match(TriplePattern()), frozen) << "round " << round;
  }
  EXPECT_GT(store.GetStats().compactions, gens_before);
  // The pinned snapshot holds the one superseded generation; the store
  // holds the live one.
  EXPECT_EQ(store.GetStats().live_generations, 2);
  pinned = Snapshot();  // drop the pin
  EXPECT_EQ(store.GetStats().live_generations, 1);
}

}  // namespace
}  // namespace kgnet::rdf
