// Chaos soak (docs/RESILIENCE.md): seeded clients hammer a fault-injected
// mutating server; the run must neither hang nor crash, every write must
// land exactly once, and the final store state must replay byte-for-byte
// under the same seed.
//
// Determinism argument: the fault schedule at each site is a pure
// function of (seed, site, invocation index), so a seed pins *which*
// invocations fail even though thread interleaving varies *who* suffers
// them. The writer retries each INSERT until acknowledged (auto-rids make
// retried updates at-most-once, and re-asserting an existing triple is a
// set-semantics no-op anyway), and readers tolerate every outcome — so
// the final visible triple set is independent of interleaving and depends
// only on the seeded inputs. We run each seed twice against fresh servers
// and compare a canonical dump byte-for-byte.
//
// CI runs this binary in the TSan job (data races under injected faults
// are exactly what this soak exists to flush out) and re-runs it at
// KGNET_NUM_THREADS=4.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/kgnet.h"
#include "serving/client.h"
#include "serving/protocol.h"
#include "tests/serving_test_util.h"

namespace kgnet::serving {
namespace {

using common::FaultInjector;
using common::ScopedFaultInjection;
using core::KgNet;
using testing::ScopedServer;

constexpr int kWriterInserts = 30;
constexpr int kReaderThreads = 2;
constexpr int kReaderOps = 20;
constexpr double kFaultRate = 0.1;

std::string WriterSubject(int i) { return "w" + std::to_string(i); }
std::string WriterObject(int i) { return "o" + std::to_string(i % 7); }

/// One client op that must eventually succeed despite injected faults:
/// reconnect + retry (bounded by `max_rounds` outer rounds on top of the
/// client's own retry policy) — the soak's liveness guarantee is that a
/// 10% fault rate can delay an op but never kill it permanently.
Status InsistentQuery(ScopedServer* scope, KgClient* client,
                      const std::string& text, int max_rounds) {
  Status last = Status::Unavailable("never attempted");
  for (int round = 0; round < max_rounds; ++round) {
    if (!client->connected()) {
      if (!scope->Connect(client).ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
    }
    auto r = client->Query(text);
    if (r.ok()) return Status::OK();
    last = r.status();
    client->Close();  // a fresh connection for the next round
  }
  return last;
}

struct SoakOutcome {
  bool ok = false;
  std::string failure;
  /// Canonical final-state dump: the writer-predicate SELECT response
  /// re-serialized without its snapshot keys (epoch/delta track how many
  /// update transactions ran, which legitimately varies with retries).
  std::string canonical_dump;
  size_t writer_rows = 0;
  size_t store_size = 0;
  uint64_t faults_fired = 0;
};

SoakOutcome RunSoak(uint64_t seed) {
  SoakOutcome out;
  KgNet kg;
  // A seeded base graph so readers have something nontrivial to scan.
  for (int i = 0; i < 40; ++i)
    kg.store().InsertIris("n" + std::to_string(i % 10), "p",
                          "n" + std::to_string((i * 7 + 3) % 10));
  ServerOptions options;
  options.num_workers = 3;
  options.queue_depth = 8;
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_ms = 50;
  ScopedServer scope(&kg.service(), options);
  if (!scope.start_status().ok()) {
    out.failure = "server start: " + scope.start_status().ToString();
    return out;
  }

  ScopedFaultInjection guard;  // restore whatever the process had
  FaultInjector::Instance().Configure(seed, kFaultRate);

  std::atomic<int> writer_failures{0};
  std::string writer_detail;
  std::thread writer([&scope, &writer_failures, &writer_detail, seed] {
    KgClient client;
    client.set_timeout_ms(2000);
    RetryOptions retry;
    retry.max_attempts = 6;
    retry.initial_backoff_ms = 1;
    retry.max_backoff_ms = 20;
    retry.total_deadline_ms = 4000;
    retry.jitter_seed = seed;
    client.set_retry_options(retry);
    for (int i = 0; i < kWriterInserts; ++i) {
      const std::string text = "INSERT DATA { <" + WriterSubject(i) +
                               "> <pw> <" + WriterObject(i) + "> . }";
      const Status st = InsistentQuery(&scope, &client, text, 50);
      if (!st.ok()) {
        writer_failures.fetch_add(1);
        if (writer_detail.empty())
          writer_detail = "insert " + std::to_string(i) + ": " + st.ToString();
      }
    }
  });

  // Off-path compaction racing the whole soak: folding the delta into a
  // new generation must never change what any snapshot-pinned reader or
  // the final dump observes.
  std::atomic<bool> soak_done{false};
  std::thread compactor([&kg, &soak_done] {
    while (!soak_done.load(std::memory_order_relaxed)) {
      kg.store().Compact();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaderThreads; ++r) {
    readers.emplace_back([&scope, r] {
      KgClient client;
      client.set_timeout_ms(1000);
      for (int op = 0; op < kReaderOps; ++op) {
        if (!client.connected() && !scope.Connect(&client).ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          continue;
        }
        // A mix of traffic; every outcome (success, injected fault,
        // deadline, breaker rejection) is legal — the soak only demands
        // that nothing hangs or crashes.
        Status st = Status::OK();
        switch ((op + r) % 5) {
          case 0:
            st = client.Ping();
            break;
          case 1:
            st = client.Query("SELECT * WHERE { ?a <p> ?b . }").status();
            break;
          case 2: {
            auto raw = client.Call(BuildQueryRequest(
                op, "SELECT * WHERE { ?a <p> ?b . ?b <p> ?c . }", 50));
            st = raw.status();
            break;
          }
          case 3:
            st = client.Health().status();
            break;
          case 4:
            st = client.NodeClass("no-such-model", "n1").status();
            break;
        }
        if (!st.ok()) client.Close();  // transport may be poisoned: refresh
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  soak_done.store(true);
  compactor.join();
  out.faults_fired = FaultInjector::Instance().total_fired();
  FaultInjector::Instance().Disable();  // clean verification traffic

  if (writer_failures.load() != 0) {
    out.failure = "writer gave up: " + writer_detail;
    return out;
  }

  KgClient check;
  if (!scope.Connect(&check).ok()) {
    out.failure = "verification connect failed";
    return out;
  }
  auto raw = check.Call(BuildQueryRequest(1, "SELECT * WHERE { ?s <pw> ?o . }"));
  if (!raw.ok()) {
    out.failure = "dump failed: " + raw.status().ToString();
    return out;
  }
  auto parsed = ParseQueryResponse(*raw);
  if (!parsed.ok()) {
    out.failure = "dump parse failed: " + parsed.status().ToString();
    return out;
  }
  out.writer_rows = parsed->result.NumRows();
  out.store_size = kg.store().size();
  out.canonical_dump = BuildQueryResponse(1, parsed->result, nullptr);
  out.ok = true;
  return out;
}

class ChaosSoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSoakTest, SeededFaultsNoHangsExactOnceWritesIdenticalReplay) {
  const uint64_t seed = GetParam();
  SoakOutcome first = RunSoak(seed);
  ASSERT_TRUE(first.ok) << first.failure;
  // The rate is 10% over hundreds of injection-site invocations: a soak
  // that never injected anything is not testing resilience.
  EXPECT_GT(first.faults_fired, 0u) << "no faults fired for seed " << seed;
  // Every write landed exactly once (at-most-once rids + set semantics).
  EXPECT_EQ(first.writer_rows, static_cast<size_t>(kWriterInserts));

  SoakOutcome second = RunSoak(seed);
  ASSERT_TRUE(second.ok) << second.failure;
  EXPECT_EQ(second.writer_rows, static_cast<size_t>(kWriterInserts));
  // Same seed -> same final visible state, byte-for-byte.
  EXPECT_EQ(first.canonical_dump, second.canonical_dump);
  EXPECT_EQ(first.store_size, second.store_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest,
                         ::testing::Values(11u, 12u, 13u));

}  // namespace
}  // namespace kgnet::serving
