#include "rdf/ntriples.h"

#include <gtest/gtest.h>

#include <sstream>

namespace kgnet::rdf {
namespace {

TEST(NTriplesTest, ParsesIriTriple) {
  auto r = ParseNTriplesLine("<http://a> <http://p> <http://b> .");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->s.lexical, "http://a");
  EXPECT_EQ(r->p.lexical, "http://p");
  EXPECT_EQ(r->o.lexical, "http://b");
  EXPECT_TRUE(r->o.is_iri());
}

TEST(NTriplesTest, ParsesLiteralForms) {
  auto plain = ParseNTriplesLine("<a> <p> \"hello world\" .");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->o.is_literal());
  EXPECT_EQ(plain->o.lexical, "hello world");

  auto typed = ParseNTriplesLine(
      "<a> <p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->o.datatype, "http://www.w3.org/2001/XMLSchema#integer");

  auto tagged = ParseNTriplesLine("<a> <p> \"bonjour\"@fr .");
  ASSERT_TRUE(tagged.ok());
  EXPECT_EQ(tagged->o.lang, "fr");
}

TEST(NTriplesTest, ParsesEscapes) {
  auto r = ParseNTriplesLine("<a> <p> \"line\\nbreak \\\"q\\\" \\\\\" .");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->o.lexical, "line\nbreak \"q\" \\");
}

TEST(NTriplesTest, ParsesGrammarEscapes) {
  // The full ECHAR set: \t \b \n \r \f \" \' \\.
  auto r = ParseNTriplesLine("<a> <p> \"\\t\\b\\n\\r\\f\\\"\\'\\\\\" .");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->o.lexical, "\t\b\n\r\f\"'\\");
}

TEST(NTriplesTest, DecodesUcharEscapes) {
  auto ascii = ParseNTriplesLine("<a> <p> \"\\u0041\\u005A\" .");
  ASSERT_TRUE(ascii.ok()) << ascii.status();
  EXPECT_EQ(ascii->o.lexical, "AZ");

  auto two_byte = ParseNTriplesLine("<a> <p> \"caf\\u00E9\" .");
  ASSERT_TRUE(two_byte.ok()) << two_byte.status();
  EXPECT_EQ(two_byte->o.lexical, "caf\xC3\xA9");  // é

  auto three_byte = ParseNTriplesLine("<a> <p> \"\\u20AC\" .");
  ASSERT_TRUE(three_byte.ok()) << three_byte.status();
  EXPECT_EQ(three_byte->o.lexical, "\xE2\x82\xAC");  // €

  auto four_byte = ParseNTriplesLine("<a> <p> \"\\U0001F600\" .");
  ASSERT_TRUE(four_byte.ok()) << four_byte.status();
  EXPECT_EQ(four_byte->o.lexical, "\xF0\x9F\x98\x80");  // 😀

  // Mixed with ordinary text and other escapes.
  auto mixed = ParseNTriplesLine("<a> <p> \"a\\u0062c\\nd\" .");
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_EQ(mixed->o.lexical, "abc\nd");
}

TEST(NTriplesTest, RejectsInvalidUcharEscapes) {
  // Truncated digit runs.
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> \"\\u12\" .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> \"\\U0001F60\" .").ok());
  // Non-hex digits.
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> \"\\u12G4\" .").ok());
  // Surrogate halves and beyond-Unicode code points are not characters.
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> \"\\uD800\" .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> \"\\uDFFF\" .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> \"\\U00110000\" .").ok());
}

TEST(NTriplesTest, UcharLiteralsRoundTripThroughStore) {
  TripleStore store;
  auto n = LoadNTriples(
      "<http://s> <http://p> \"caf\\u00E9 \\U0001F600\" .\n"
      "<http://s> <http://p> \"plain\" .\n",
      &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);

  std::ostringstream os;
  ASSERT_TRUE(WriteNTriples(store, os).ok());
  TripleStore reloaded;
  auto m = LoadNTriples(os.str(), &reloaded);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(*m, 2u);
  // The decoded UTF-8 form is what survives the round trip.
  EXPECT_NE(reloaded.dict().Find(Term::Literal("caf\xC3\xA9 \xF0\x9F\x98\x80")),
            kNullTermId);
}

TEST(NTriplesTest, ParsesBlankNodes) {
  auto r = ParseNTriplesLine("_:b1 <p> _:b2 .");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->s.is_blank());
  EXPECT_EQ(r->s.lexical, "b1");
  EXPECT_TRUE(r->o.is_blank());
}

TEST(NTriplesTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> <b>").ok());   // missing dot
  EXPECT_FALSE(ParseNTriplesLine("<a> \"lit\" <b> .").ok());  // literal pred
  EXPECT_FALSE(ParseNTriplesLine("<a <p> <b> .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> \"unterminated .").ok());
}

TEST(NTriplesTest, SkipsCommentsAndBlanks) {
  TripleStore store;
  auto n = LoadNTriples("# comment\n\n<a> <p> <b> .\n  \n<a> <p> <c> .\n",
                        &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
}

TEST(NTriplesTest, ReportsLineNumberOnError) {
  TripleStore store;
  auto n = LoadNTriples("<a> <p> <b> .\ngarbage here\n", &store);
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RoundTripsThroughSerialization) {
  TripleStore store;
  store.Insert(Term::Iri("http://s"), Term::Iri("http://p"),
               Term::Literal("v with \"quotes\" and\nnewline"));
  store.Insert(Term::Iri("http://s"), Term::Iri("http://p"),
               Term::IntLiteral(7));
  store.Insert(Term::Blank("x"), Term::Iri("http://p"), Term::Iri("http://o"));

  std::ostringstream os;
  ASSERT_TRUE(WriteNTriples(store, os).ok());

  TripleStore reloaded;
  auto n = LoadNTriples(os.str(), &reloaded);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, store.size());
  // Every original triple survives the round trip.
  store.Scan(TriplePattern(), [&](const Triple& t) {
    Triple mapped(reloaded.dict().Find(store.dict().Lookup(t.s)),
                  reloaded.dict().Find(store.dict().Lookup(t.p)),
                  reloaded.dict().Find(store.dict().Lookup(t.o)));
    EXPECT_TRUE(reloaded.Contains(mapped));
    return true;
  });
}

}  // namespace
}  // namespace kgnet::rdf
