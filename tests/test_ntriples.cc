#include "rdf/ntriples.h"

#include <gtest/gtest.h>

#include <sstream>

namespace kgnet::rdf {
namespace {

TEST(NTriplesTest, ParsesIriTriple) {
  auto r = ParseNTriplesLine("<http://a> <http://p> <http://b> .");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->s.lexical, "http://a");
  EXPECT_EQ(r->p.lexical, "http://p");
  EXPECT_EQ(r->o.lexical, "http://b");
  EXPECT_TRUE(r->o.is_iri());
}

TEST(NTriplesTest, ParsesLiteralForms) {
  auto plain = ParseNTriplesLine("<a> <p> \"hello world\" .");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->o.is_literal());
  EXPECT_EQ(plain->o.lexical, "hello world");

  auto typed = ParseNTriplesLine(
      "<a> <p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->o.datatype, "http://www.w3.org/2001/XMLSchema#integer");

  auto tagged = ParseNTriplesLine("<a> <p> \"bonjour\"@fr .");
  ASSERT_TRUE(tagged.ok());
  EXPECT_EQ(tagged->o.lang, "fr");
}

TEST(NTriplesTest, ParsesEscapes) {
  auto r = ParseNTriplesLine("<a> <p> \"line\\nbreak \\\"q\\\" \\\\\" .");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->o.lexical, "line\nbreak \"q\" \\");
}

TEST(NTriplesTest, ParsesBlankNodes) {
  auto r = ParseNTriplesLine("_:b1 <p> _:b2 .");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->s.is_blank());
  EXPECT_EQ(r->s.lexical, "b1");
  EXPECT_TRUE(r->o.is_blank());
}

TEST(NTriplesTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> <b>").ok());   // missing dot
  EXPECT_FALSE(ParseNTriplesLine("<a> \"lit\" <b> .").ok());  // literal pred
  EXPECT_FALSE(ParseNTriplesLine("<a <p> <b> .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<a> <p> \"unterminated .").ok());
}

TEST(NTriplesTest, SkipsCommentsAndBlanks) {
  TripleStore store;
  auto n = LoadNTriples("# comment\n\n<a> <p> <b> .\n  \n<a> <p> <c> .\n",
                        &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
}

TEST(NTriplesTest, ReportsLineNumberOnError) {
  TripleStore store;
  auto n = LoadNTriples("<a> <p> <b> .\ngarbage here\n", &store);
  ASSERT_FALSE(n.ok());
  EXPECT_NE(n.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RoundTripsThroughSerialization) {
  TripleStore store;
  store.Insert(Term::Iri("http://s"), Term::Iri("http://p"),
               Term::Literal("v with \"quotes\" and\nnewline"));
  store.Insert(Term::Iri("http://s"), Term::Iri("http://p"),
               Term::IntLiteral(7));
  store.Insert(Term::Blank("x"), Term::Iri("http://p"), Term::Iri("http://o"));

  std::ostringstream os;
  ASSERT_TRUE(WriteNTriples(store, os).ok());

  TripleStore reloaded;
  auto n = LoadNTriples(os.str(), &reloaded);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, store.size());
  // Every original triple survives the round trip.
  store.Scan(TriplePattern(), [&](const Triple& t) {
    Triple mapped(reloaded.dict().Find(store.dict().Lookup(t.s)),
                  reloaded.dict().Find(store.dict().Lookup(t.p)),
                  reloaded.dict().Find(store.dict().Lookup(t.o)));
    EXPECT_TRUE(reloaded.Contains(mapped));
    return true;
  });
}

}  // namespace
}  // namespace kgnet::rdf
