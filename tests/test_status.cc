#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace kgnet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::ParseError("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kUnimplemented, StatusCode::kParseError,
        StatusCode::kInternal, StatusCode::kCancelled,
        StatusCode::kDeadlineExceeded, StatusCode::kUnavailable}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, ResilienceCodes) {
  const Status cancelled = Status::Cancelled("stopped");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: stopped");
  const Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: too slow");
  const Status unavailable = Status::Unavailable("try later");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(unavailable.ToString(), "Unavailable: try later");
}

Status Fails() { return Status::OutOfRange("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  KGNET_RETURN_IF_ERROR(Succeeds());
  if (fail) KGNET_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kOutOfRange);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValueOrError) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-1), -1);
}

Result<int> Quarter(int x) {
  KGNET_ASSIGN_OR_RETURN(int half, Half(x));
  KGNET_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace kgnet
