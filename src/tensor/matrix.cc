#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

namespace kgnet::tensor {

void Matrix::Zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

void Matrix::XavierInit(Rng* rng) {
  const float s = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
  for (float& v : data_) v = rng->NextUniform(-s, s);
}

void Matrix::UniformInit(Rng* rng, float lo, float hi) {
  for (float& v : data_) v = rng->NextUniform(lo, hi);
}

void Matrix::Add(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Scale(float s) {
  for (float& v : data_) v *= s;
}

void Matrix::Axpy(float s, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

void Matrix::Hadamard(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::ReluInPlace(Matrix* mask) {
  if (mask != nullptr && (mask->rows() != rows_ || mask->cols() != cols_))
    *mask = Matrix(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    bool active = data_[i] > 0.0f;
    if (!active) data_[i] = 0.0f;
    if (mask != nullptr) mask->data()[i] = active ? 1.0f : 0.0f;
  }
}

void Matrix::SoftmaxRowsInPlace() {
  for (size_t r = 0; r < rows_; ++r) {
    float* row = Row(r);
    float mx = row[0];
    for (size_t c = 1; c < cols_; ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < cols_; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
    for (size_t c = 0; c < cols_; ++c) row[c] *= inv;
  }
}

float Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

Matrix Matrix::GatherRows(const std::vector<size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (size_t i = 0; i < idx.size(); ++i) {
    const float* src = Row(idx[i]);
    std::copy(src, src + cols_, out.Row(i));
  }
  return out;
}

void Matrix::ScatterAddRows(const std::vector<size_t>& idx,
                            const Matrix& src) {
  assert(idx.size() == src.rows() && cols_ == src.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    float* dst = Row(idx[i]);
    const float* s = src.Row(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] += s[c];
  }
}

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix Matrix::MatMulTransA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  const size_t m = a.cols(), k = a.rows(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = a.Row(p);
    const float* brow = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.Row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Matrix Matrix::MatMulTransB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = static_cast<float>(acc);
    }
  }
  return c;
}

}  // namespace kgnet::tensor
