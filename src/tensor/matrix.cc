#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace kgnet::tensor {

namespace {

// Output rows per GEMM task. Each task accumulates its tile in a local
// double buffer (tile_rows x n), so a B row fetched from memory once
// serves the whole tile (cache blocking) and every output element still
// sums its k terms in ascending-p order — the result is bitwise
// identical for any tiling and any thread count.
constexpr size_t kGemmRowTile = 16;

}  // namespace

void Matrix::Zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

void Matrix::XavierInit(Rng* rng) {
  const float s = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
  for (float& v : data_) v = rng->NextUniform(-s, s);
}

void Matrix::UniformInit(Rng* rng, float lo, float hi) {
  for (float& v : data_) v = rng->NextUniform(lo, hi);
}

void Matrix::Add(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Sub(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Scale(float s) {
  for (float& v : data_) v *= s;
}

void Matrix::Axpy(float s, const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
}

void Matrix::Hadamard(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
}

void Matrix::ReluInPlace(Matrix* mask) {
  if (mask != nullptr && (mask->rows() != rows_ || mask->cols() != cols_))
    *mask = Matrix(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    bool active = data_[i] > 0.0f;
    if (!active) data_[i] = 0.0f;
    if (mask != nullptr) mask->data()[i] = active ? 1.0f : 0.0f;
  }
}

void Matrix::SoftmaxRowsInPlace() {
  for (size_t r = 0; r < rows_; ++r) {
    float* row = Row(r);
    float mx = row[0];
    for (size_t c = 1; c < cols_; ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (size_t c = 0; c < cols_; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
    for (size_t c = 0; c < cols_; ++c) row[c] *= inv;
  }
}

float Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Matrix::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

Matrix Matrix::GatherRows(const std::vector<size_t>& idx) const {
  Matrix out(idx.size(), cols_);
  for (size_t i = 0; i < idx.size(); ++i) {
    const float* src = Row(idx[i]);
    std::copy(src, src + cols_, out.Row(i));
  }
  return out;
}

void Matrix::ScatterAddRows(const std::vector<size_t>& idx,
                            const Matrix& src) {
  assert(idx.size() == src.rows() && cols_ == src.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    float* dst = Row(idx[i]);
    const float* s = src.Row(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] += s[c];
  }
}

// All three GEMM variants partition the *output* rows across the shared
// pool (each element is written by exactly one thread) and accumulate in
// double with a fixed, ascending-p term order, so results are bitwise
// identical for any KGNET_NUM_THREADS. The dense inner loops carry no
// per-element zero test: skipping zeros costs a branch per element on
// dense inputs, and genuinely sparse products belong to CsrMatrix.

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  const size_t k = a.cols(), n = b.cols();
  if (c.rows() == 0 || n == 0 || k == 0) return c;
  common::ParallelFor(0, c.rows(), kGemmRowTile, [&](size_t r0, size_t r1) {
    std::vector<double> acc((r1 - r0) * n, 0.0);
    for (size_t p = 0; p < k; ++p) {
      const float* brow = b.Row(p);
      for (size_t i = r0; i < r1; ++i) {
        const double av = a.Row(i)[p];
        double* out = acc.data() + (i - r0) * n;
        for (size_t j = 0; j < n; ++j) out[j] += av * brow[j];
      }
    }
    for (size_t i = r0; i < r1; ++i) {
      float* crow = c.Row(i);
      const double* out = acc.data() + (i - r0) * n;
      for (size_t j = 0; j < n; ++j) crow[j] = static_cast<float>(out[j]);
    }
  });
  return c;
}

Matrix Matrix::MatMulTransA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  const size_t k = a.rows(), n = b.cols();
  if (c.rows() == 0 || n == 0 || k == 0) return c;
  common::ParallelFor(0, c.rows(), kGemmRowTile, [&](size_t i0, size_t i1) {
    std::vector<double> acc((i1 - i0) * n, 0.0);
    for (size_t p = 0; p < k; ++p) {
      const float* arow = a.Row(p);
      const float* brow = b.Row(p);
      for (size_t i = i0; i < i1; ++i) {
        const double av = arow[i];
        double* out = acc.data() + (i - i0) * n;
        for (size_t j = 0; j < n; ++j) out[j] += av * brow[j];
      }
    }
    for (size_t i = i0; i < i1; ++i) {
      float* crow = c.Row(i);
      const double* out = acc.data() + (i - i0) * n;
      for (size_t j = 0; j < n; ++j) crow[j] = static_cast<float>(out[j]);
    }
  });
  return c;
}

Matrix Matrix::MatMulTransB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const size_t k = a.cols(), n = b.rows();
  if (c.rows() == 0 || n == 0) return c;
  common::ParallelFor(0, c.rows(), kGemmRowTile, [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a.Row(i);
      float* crow = c.Row(i);
      for (size_t j = 0; j < n; ++j) {
        const float* brow = b.Row(j);
        double acc = 0.0;
        for (size_t p = 0; p < k; ++p)
          acc += static_cast<double>(arow[p]) * brow[p];
        crow[j] = static_cast<float>(acc);
      }
    }
  });
  return c;
}

}  // namespace kgnet::tensor
