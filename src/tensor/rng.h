// Deterministic pseudo-random number generation for training pipelines.
#ifndef KGNET_TENSOR_RNG_H_
#define KGNET_TENSOR_RNG_H_

#include <cstdint>
#include <random>

namespace kgnet::tensor {

/// A small, fast, deterministic RNG (xoshiro-style via std::mt19937_64
/// wrapper) used for weight init, sampling and splits.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : gen_(seed) {}

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextUint(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(gen_);
  }

  /// Uniform float in [0, 1).
  float NextFloat() {
    return std::uniform_real_distribution<float>(0.0f, 1.0f)(gen_);
  }

  /// Uniform float in [lo, hi).
  float NextUniform(float lo, float hi) {
    return std::uniform_real_distribution<float>(lo, hi)(gen_);
  }

  /// Standard normal sample.
  float NextGaussian() {
    return std::normal_distribution<float>(0.0f, 1.0f)(gen_);
  }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace kgnet::tensor

#endif  // KGNET_TENSOR_RNG_H_
