// Deterministic accounting of live tensor memory.
//
// The paper reports peak *training memory* per pipeline. Process RSS is
// too noisy for a shared test binary, so every Matrix/CsrMatrix
// registers its payload bytes with the process-wide MemoryMeter.
// Benchmarks snapshot the peak between Reset() and Peak(). The meter is
// shared by every thread — kernels run tiles on the common ThreadPool
// and the triple store rebuilds its permutation runs in parallel — so
// all counters are atomics and the peak updates via a CAS-max loop.
//
// Static-analysis note (docs/STATIC_ANALYSIS.md): this class is
// deliberately mutex-free, so it carries no KGNET_GUARDED_BY
// annotations — every member is a std::atomic and every compound update
// (peak CAS-max, clamped release) is a single CAS retry loop. Reset()
// is the one non-atomic compound (load of current_, store to peak_); it
// is only meaningful between parallel regions and is documented as such
// rather than locked.
#ifndef KGNET_TENSOR_MEMORY_METER_H_
#define KGNET_TENSOR_MEMORY_METER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace kgnet::tensor {

/// Tracks current and peak live bytes of tensor payloads across the
/// whole process, plus a separate per-tag pool for RDF permutation-index
/// storage. Thread-safe: concurrent Allocate/Release from pool workers
/// keep the counters exact (the peak is the maximum over the serialized
/// modification order of `current_`).
class MemoryMeter {
 public:
  /// The process-wide meter used by Matrix/CsrMatrix.
  static MemoryMeter& Instance();

  /// Registers an allocation of `bytes`.
  void Allocate(size_t bytes) {
    const size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  /// Registers a release of `bytes` (clamped at zero).
  void Release(size_t bytes) {
    size_t cur = current_.load(std::memory_order_relaxed);
    while (!current_.compare_exchange_weak(cur, bytes > cur ? 0 : cur - bytes,
                                           std::memory_order_relaxed)) {
    }
  }

  /// Live bytes right now.
  size_t Current() const { return current_.load(std::memory_order_relaxed); }

  /// Peak live bytes since the last Reset().
  size_t Peak() const { return peak_.load(std::memory_order_relaxed); }

  /// Resets the peak to the current level.
  void Reset() { peak_.store(Current(), std::memory_order_relaxed); }

  // ------------------------------------------------ index-storage pool --
  // Live bytes of compressed RDF permutation indexes, accounted per
  // index-order tag (0..kNumIndexTags-1; the rdf layer passes its
  // IndexOrder enum value). Kept separate from the tensor current/peak
  // numbers above so training-memory scopes stay comparable no matter
  // how large the triple store's indexes are.

  /// Index-order tags the meter can track (covers rdf's six orders).
  static constexpr int kNumIndexTags = 8;

  /// Registers `bytes` of index storage under `tag`.
  void AllocateIndex(int tag, size_t bytes) {
    index_bytes_[Tag(tag)].fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Registers the release of `bytes` of index storage under `tag`.
  void ReleaseIndex(int tag, size_t bytes) {
    std::atomic<size_t>& cell = index_bytes_[Tag(tag)];
    size_t cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, bytes > cur ? 0 : cur - bytes,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Live index bytes under `tag`, summed across stores in this process.
  size_t IndexBytes(int tag) const {
    return index_bytes_[Tag(tag)].load(std::memory_order_relaxed);
  }

  /// Live index bytes across every tag.
  size_t TotalIndexBytes() const {
    size_t total = 0;
    for (const std::atomic<size_t>& b : index_bytes_)
      total += b.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static size_t Tag(int tag) {
    return tag >= 0 && tag < kNumIndexTags ? static_cast<size_t>(tag)
                                           : kNumIndexTags - 1;
  }

  std::atomic<size_t> current_{0};
  std::atomic<size_t> peak_{0};
  std::array<std::atomic<size_t>, kNumIndexTags> index_bytes_{};
};

/// RAII helper: reports the peak *additional* bytes allocated during its
/// lifetime, relative to the live bytes at construction. Using the delta
/// keeps measurements independent of unrelated tensors (e.g. previously
/// trained models still held by the model store).
class PeakMemoryScope {
 public:
  PeakMemoryScope() : baseline_(MemoryMeter::Instance().Current()) {
    MemoryMeter::Instance().Reset();
  }
  /// Peak bytes above the construction-time baseline.
  size_t PeakBytes() const {
    const size_t peak = MemoryMeter::Instance().Peak();
    return peak > baseline_ ? peak - baseline_ : 0;
  }

 private:
  size_t baseline_;
};

}  // namespace kgnet::tensor

#endif  // KGNET_TENSOR_MEMORY_METER_H_
