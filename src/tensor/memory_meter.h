// Deterministic accounting of live tensor memory.
//
// The paper reports peak *training memory* per pipeline. Process RSS is too
// noisy for a shared test binary, so every Matrix/CsrMatrix registers its
// payload bytes with the thread-local MemoryMeter. Benchmarks snapshot the
// peak between Reset() and Peak().
#ifndef KGNET_TENSOR_MEMORY_METER_H_
#define KGNET_TENSOR_MEMORY_METER_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace kgnet::tensor {

/// Tracks current and peak live bytes of tensor payloads on this thread,
/// plus a separate per-tag pool for RDF permutation-index storage.
class MemoryMeter {
 public:
  /// The per-thread meter used by Matrix/CsrMatrix.
  static MemoryMeter& Instance();

  /// Registers an allocation of `bytes`.
  void Allocate(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Registers a release of `bytes`.
  void Release(size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  /// Live bytes right now.
  size_t Current() const { return current_; }

  /// Peak live bytes since the last Reset().
  size_t Peak() const { return peak_; }

  /// Resets the peak to the current level.
  void Reset() { peak_ = current_; }

  // ------------------------------------------------ index-storage pool --
  // Live bytes of compressed RDF permutation indexes, accounted per
  // index-order tag (0..kNumIndexTags-1; the rdf layer passes its
  // IndexOrder enum value). Kept separate from the tensor current/peak
  // numbers above so training-memory scopes stay comparable no matter
  // how large the triple store's indexes are.

  /// Index-order tags the meter can track (covers rdf's six orders).
  static constexpr int kNumIndexTags = 8;

  /// Registers `bytes` of index storage under `tag`.
  void AllocateIndex(int tag, size_t bytes) {
    index_bytes_[Tag(tag)] += bytes;
  }

  /// Registers the release of `bytes` of index storage under `tag`.
  void ReleaseIndex(int tag, size_t bytes) {
    size_t& cell = index_bytes_[Tag(tag)];
    cell = bytes > cell ? 0 : cell - bytes;
  }

  /// Live index bytes under `tag`, summed across stores on this thread.
  size_t IndexBytes(int tag) const { return index_bytes_[Tag(tag)]; }

  /// Live index bytes across every tag.
  size_t TotalIndexBytes() const {
    size_t total = 0;
    for (size_t b : index_bytes_) total += b;
    return total;
  }

 private:
  static size_t Tag(int tag) {
    return tag >= 0 && tag < kNumIndexTags ? static_cast<size_t>(tag)
                                           : kNumIndexTags - 1;
  }

  size_t current_ = 0;
  size_t peak_ = 0;
  std::array<size_t, kNumIndexTags> index_bytes_{};
};

/// RAII helper: reports the peak *additional* bytes allocated during its
/// lifetime, relative to the live bytes at construction. Using the delta
/// keeps measurements independent of unrelated tensors (e.g. previously
/// trained models still held by the model store).
class PeakMemoryScope {
 public:
  PeakMemoryScope() : baseline_(MemoryMeter::Instance().Current()) {
    MemoryMeter::Instance().Reset();
  }
  /// Peak bytes above the construction-time baseline.
  size_t PeakBytes() const {
    const size_t peak = MemoryMeter::Instance().Peak();
    return peak > baseline_ ? peak - baseline_ : 0;
  }

 private:
  size_t baseline_;
};

}  // namespace kgnet::tensor

#endif  // KGNET_TENSOR_MEMORY_METER_H_
