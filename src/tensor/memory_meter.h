// Deterministic accounting of live tensor memory.
//
// The paper reports peak *training memory* per pipeline. Process RSS is too
// noisy for a shared test binary, so every Matrix/CsrMatrix registers its
// payload bytes with the thread-local MemoryMeter. Benchmarks snapshot the
// peak between Reset() and Peak().
#ifndef KGNET_TENSOR_MEMORY_METER_H_
#define KGNET_TENSOR_MEMORY_METER_H_

#include <cstddef>
#include <cstdint>

namespace kgnet::tensor {

/// Tracks current and peak live bytes of tensor payloads on this thread.
class MemoryMeter {
 public:
  /// The per-thread meter used by Matrix/CsrMatrix.
  static MemoryMeter& Instance();

  /// Registers an allocation of `bytes`.
  void Allocate(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Registers a release of `bytes`.
  void Release(size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  /// Live bytes right now.
  size_t Current() const { return current_; }

  /// Peak live bytes since the last Reset().
  size_t Peak() const { return peak_; }

  /// Resets the peak to the current level.
  void Reset() { peak_ = current_; }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

/// RAII helper: reports the peak *additional* bytes allocated during its
/// lifetime, relative to the live bytes at construction. Using the delta
/// keeps measurements independent of unrelated tensors (e.g. previously
/// trained models still held by the model store).
class PeakMemoryScope {
 public:
  PeakMemoryScope() : baseline_(MemoryMeter::Instance().Current()) {
    MemoryMeter::Instance().Reset();
  }
  /// Peak bytes above the construction-time baseline.
  size_t PeakBytes() const {
    const size_t peak = MemoryMeter::Instance().Peak();
    return peak > baseline_ ? peak - baseline_ : 0;
  }

 private:
  size_t baseline_;
};

}  // namespace kgnet::tensor

#endif  // KGNET_TENSOR_MEMORY_METER_H_
