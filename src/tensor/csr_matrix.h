// Compressed-sparse-row matrices for graph adjacency and message passing.
#ifndef KGNET_TENSOR_CSR_MATRIX_H_
#define KGNET_TENSOR_CSR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/memory_meter.h"

namespace kgnet::tensor {

/// A (row, col, value) coordinate entry used to build CSR matrices.
struct CooEntry {
  uint32_t row;
  uint32_t col;
  float value;
};

/// An immutable CSR float32 sparse matrix.
///
/// Built once from COO entries (duplicates are summed); supports the two
/// products GNN training needs: Y = A·X (SpMM) and Y = Aᵀ·X, plus row-sum
/// and degree-based normalization used by GCN/RGCN propagation rules.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from COO entries. Duplicate coordinates are summed.
  CsrMatrix(size_t rows, size_t cols, std::vector<CooEntry> entries);

  CsrMatrix(const CsrMatrix& o);
  CsrMatrix(CsrMatrix&& o) noexcept;
  CsrMatrix& operator=(CsrMatrix o) noexcept;
  ~CsrMatrix();

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return col_idx_.size(); }
  size_t ByteSize() const {
    return row_ptr_.size() * sizeof(uint64_t) +
           col_idx_.size() * sizeof(uint32_t) + values_.size() * sizeof(float);
  }

  const std::vector<uint64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Y = this · X  (rows x cols · cols x d -> rows x d).
  Matrix SpMM(const Matrix& x) const;

  /// Y = thisᵀ · X (cols x rows · rows x d -> cols x d).
  Matrix SpMMTransposed(const Matrix& x) const;

  /// Per-row sum of values (out-degree when values are 1).
  std::vector<float> RowSums() const;

  /// Returns a copy with each row scaled to sum 1 (random-walk
  /// normalization \hat A = D^{-1} A). Zero rows stay zero.
  CsrMatrix RowNormalized() const;

  /// Returns a copy with symmetric normalization D^{-1/2} A D^{-1/2}.
  CsrMatrix SymNormalized() const;

 private:
  void Account();
  void Unaccount();

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint64_t> row_ptr_;
  std::vector<uint32_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace kgnet::tensor

#endif  // KGNET_TENSOR_CSR_MATRIX_H_
