// Dense row-major float32 matrices with the operations GNN/KGE training
// needs: GEMM, elementwise ops, row gather/scatter, softmax, init schemes.
#ifndef KGNET_TENSOR_MATRIX_H_
#define KGNET_TENSOR_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "tensor/memory_meter.h"
#include "tensor/rng.h"

namespace kgnet::tensor {

/// A dense row-major float32 matrix. Payload bytes are tracked by the
/// process-wide MemoryMeter.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    MemoryMeter::Instance().Allocate(ByteSize());
  }
  Matrix(const Matrix& o) : rows_(o.rows_), cols_(o.cols_), data_(o.data_) {
    MemoryMeter::Instance().Allocate(ByteSize());
  }
  Matrix(Matrix&& o) noexcept
      : rows_(o.rows_), cols_(o.cols_), data_(std::move(o.data_)) {
    o.rows_ = o.cols_ = 0;
    o.data_.clear();
  }
  Matrix& operator=(const Matrix& o) {
    if (this == &o) return *this;
    MemoryMeter::Instance().Release(ByteSize());
    rows_ = o.rows_;
    cols_ = o.cols_;
    data_ = o.data_;
    MemoryMeter::Instance().Allocate(ByteSize());
    return *this;
  }
  Matrix& operator=(Matrix&& o) noexcept {
    if (this == &o) return *this;
    MemoryMeter::Instance().Release(ByteSize());
    rows_ = o.rows_;
    cols_ = o.cols_;
    data_ = std::move(o.data_);
    o.rows_ = o.cols_ = 0;
    o.data_.clear();
    return *this;
  }
  ~Matrix() { MemoryMeter::Instance().Release(ByteSize()); }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  size_t ByteSize() const { return data_.size() * sizeof(float); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Fills with zeros.
  void Zero();

  /// Fills with Xavier/Glorot uniform values: U(-s, s), s = sqrt(6/(fan_in +
  /// fan_out)). The paper initializes node features this way.
  void XavierInit(Rng* rng);

  /// Fills with U(lo, hi).
  void UniformInit(Rng* rng, float lo, float hi);

  /// this += other (same shape).
  void Add(const Matrix& other);
  /// this -= other.
  void Sub(const Matrix& other);
  /// this *= scalar.
  void Scale(float s);
  /// this += scalar * other (axpy).
  void Axpy(float s, const Matrix& other);
  /// Elementwise product: this *= other.
  void Hadamard(const Matrix& other);

  /// ReLU in place; if `mask` is non-null it records 1/0 activations for the
  /// backward pass.
  void ReluInPlace(Matrix* mask = nullptr);

  /// Row-wise softmax in place (numerically stabilized).
  void SoftmaxRowsInPlace();

  /// L2 norm of all entries.
  float FrobeniusNorm() const;

  /// Sum of all entries.
  float Sum() const;

  /// Returns rows indexed by `idx` as a new (idx.size() x cols) matrix.
  Matrix GatherRows(const std::vector<size_t>& idx) const;

  /// Adds each row of `src` into this->Row(idx[i]).
  void ScatterAddRows(const std::vector<size_t>& idx, const Matrix& src);

  /// C = A * B.
  static Matrix MatMul(const Matrix& a, const Matrix& b);
  /// C = A^T * B.
  static Matrix MatMulTransA(const Matrix& a, const Matrix& b);
  /// C = A * B^T.
  static Matrix MatMulTransB(const Matrix& a, const Matrix& b);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace kgnet::tensor

#endif  // KGNET_TENSOR_MATRIX_H_
