// First-order optimizers for training GML models.
#ifndef KGNET_TENSOR_OPTIMIZER_H_
#define KGNET_TENSOR_OPTIMIZER_H_

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"

namespace kgnet::tensor {

/// Adam optimizer over a fixed set of parameter matrices.
///
/// Parameters are registered once; Step() applies one update per parameter
/// from the matching gradient. State (first/second moments) is kept per
/// parameter.
class AdamOptimizer {
 public:
  struct Options {
    float lr = 1e-2f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  AdamOptimizer() = default;
  explicit AdamOptimizer(Options opts) : opts_(opts) {}

  /// Registers a parameter; returns its handle.
  size_t Register(Matrix* param);

  /// Applies one Adam update: params[i] -= update(grads[i]).
  /// `grads` must be aligned with registration order.
  void Step(const std::vector<Matrix*>& grads);

  /// Resets moments and the step counter.
  void Reset();

  const Options& options() const { return opts_; }
  void set_lr(float lr) { opts_.lr = lr; }

 private:
  Options opts_;
  std::vector<Matrix*> params_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  size_t t_ = 0;
};

/// Plain SGD with optional momentum.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(float lr = 1e-2f, float momentum = 0.0f)
      : lr_(lr), momentum_(momentum) {}

  size_t Register(Matrix* param);
  void Step(const std::vector<Matrix*>& grads);

 private:
  float lr_;
  float momentum_;
  std::vector<Matrix*> params_;
  std::vector<Matrix> velocity_;
};

/// Cross-entropy loss over softmax probabilities.
///
/// `logits` is (n x num_classes); `labels[i]` in [0, num_classes). Rows with
/// label == kIgnoreLabel are skipped. Returns mean loss over counted rows
/// and writes dL/dlogits into `grad` (same shape, already divided by n).
inline constexpr int kIgnoreLabel = -1;
float SoftmaxCrossEntropy(const Matrix& logits, const std::vector<int>& labels,
                          Matrix* grad);

/// Binary logistic loss for link-prediction scores with +-1 targets.
/// Returns mean softplus(-target * score); writes d/dscore into grad_scores.
float LogisticLoss(const std::vector<float>& scores,
                   const std::vector<float>& targets,
                   std::vector<float>* grad_scores);

}  // namespace kgnet::tensor

#endif  // KGNET_TENSOR_OPTIMIZER_H_
