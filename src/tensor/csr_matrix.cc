#include "tensor/csr_matrix.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace kgnet::tensor {

CsrMatrix::CsrMatrix(size_t rows, size_t cols, std::vector<CooEntry> entries)
    : rows_(rows), cols_(cols) {
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    size_t j = i;
    float acc = 0.0f;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      acc += entries[j].value;
      ++j;
    }
    col_idx_.push_back(entries[i].col);
    values_.push_back(acc);
    ++row_ptr_[entries[i].row + 1];
    i = j;
  }
  for (size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
  Account();
}

CsrMatrix::CsrMatrix(const CsrMatrix& o)
    : rows_(o.rows_),
      cols_(o.cols_),
      row_ptr_(o.row_ptr_),
      col_idx_(o.col_idx_),
      values_(o.values_) {
  Account();
}

CsrMatrix::CsrMatrix(CsrMatrix&& o) noexcept
    : rows_(o.rows_),
      cols_(o.cols_),
      row_ptr_(std::move(o.row_ptr_)),
      col_idx_(std::move(o.col_idx_)),
      values_(std::move(o.values_)) {
  o.rows_ = o.cols_ = 0;
  o.row_ptr_.clear();
  o.col_idx_.clear();
  o.values_.clear();
}

CsrMatrix& CsrMatrix::operator=(CsrMatrix o) noexcept {
  Unaccount();
  rows_ = o.rows_;
  cols_ = o.cols_;
  row_ptr_ = std::move(o.row_ptr_);
  col_idx_ = std::move(o.col_idx_);
  values_ = std::move(o.values_);
  o.rows_ = o.cols_ = 0;
  o.row_ptr_.clear();
  o.col_idx_.clear();
  o.values_.clear();
  // The payload bytes were accounted when `o` was constructed and transfer
  // to this object; `o` now holds nothing and its destructor releases zero.
  return *this;
}

CsrMatrix::~CsrMatrix() { Unaccount(); }

void CsrMatrix::Account() { MemoryMeter::Instance().Allocate(ByteSize()); }

void CsrMatrix::Unaccount() { MemoryMeter::Instance().Release(ByteSize()); }

Matrix CsrMatrix::SpMM(const Matrix& x) const {
  Matrix y(rows_, x.cols());
  const size_t d = x.cols();
  for (size_t r = 0; r < rows_; ++r) {
    float* yrow = y.Row(r);
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const float v = values_[e];
      const float* xrow = x.Row(col_idx_[e]);
      for (size_t c = 0; c < d; ++c) yrow[c] += v * xrow[c];
    }
  }
  return y;
}

Matrix CsrMatrix::SpMMTransposed(const Matrix& x) const {
  Matrix y(cols_, x.cols());
  const size_t d = x.cols();
  for (size_t r = 0; r < rows_; ++r) {
    const float* xrow = x.Row(r);
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const float v = values_[e];
      float* yrow = y.Row(col_idx_[e]);
      for (size_t c = 0; c < d; ++c) yrow[c] += v * xrow[c];
    }
  }
  return y;
}

std::vector<float> CsrMatrix::RowSums() const {
  std::vector<float> sums(rows_, 0.0f);
  for (size_t r = 0; r < rows_; ++r)
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e)
      sums[r] += values_[e];
  return sums;
}

CsrMatrix CsrMatrix::RowNormalized() const {
  std::vector<float> sums = RowSums();
  CsrMatrix out(*this);
  for (size_t r = 0; r < rows_; ++r) {
    if (sums[r] == 0.0f) continue;
    const float inv = 1.0f / sums[r];
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e)
      out.values_[e] *= inv;
  }
  return out;
}

CsrMatrix CsrMatrix::SymNormalized() const {
  // In-degree per column.
  std::vector<float> col_sums(cols_, 0.0f);
  for (size_t r = 0; r < rows_; ++r)
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e)
      col_sums[col_idx_[e]] += values_[e];
  std::vector<float> row_sums = RowSums();
  CsrMatrix out(*this);
  for (size_t r = 0; r < rows_; ++r) {
    const float dr = row_sums[r];
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const float dc = col_sums[col_idx_[e]];
      const float denom = std::sqrt(dr) * std::sqrt(dc);
      out.values_[e] = denom > 0.0f ? out.values_[e] / denom : 0.0f;
    }
  }
  return out;
}

}  // namespace kgnet::tensor
