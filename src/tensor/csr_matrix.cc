#include "tensor/csr_matrix.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/thread_pool.h"

namespace kgnet::tensor {

namespace {

// Rows per parallel task in the row-partitioned sparse products.
constexpr size_t kSpmmGrain = 64;

// SpMMTransposed scatters into shared output rows, so its parallel path
// accumulates per-partition partial outputs and reduces them in fixed
// ascending partition order. The partition count is a pure function of
// the matrix shape — never of the thread count — which keeps results
// bitwise identical for any KGNET_NUM_THREADS (partitioning only pays
// for itself on large inputs; small ones take the serial path).
constexpr size_t kMaxTransposePartitions = 8;
constexpr size_t kMinRowsPerTransposePartition = 256;

size_t TransposePartitions(size_t rows) {
  return std::max<size_t>(
      1, std::min(kMaxTransposePartitions,
                  rows / kMinRowsPerTransposePartition));
}

}  // namespace

CsrMatrix::CsrMatrix(size_t rows, size_t cols, std::vector<CooEntry> entries)
    : rows_(rows), cols_(cols) {
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    size_t j = i;
    float acc = 0.0f;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      acc += entries[j].value;
      ++j;
    }
    col_idx_.push_back(entries[i].col);
    values_.push_back(acc);
    ++row_ptr_[entries[i].row + 1];
    i = j;
  }
  for (size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
  Account();
}

CsrMatrix::CsrMatrix(const CsrMatrix& o)
    : rows_(o.rows_),
      cols_(o.cols_),
      row_ptr_(o.row_ptr_),
      col_idx_(o.col_idx_),
      values_(o.values_) {
  Account();
}

CsrMatrix::CsrMatrix(CsrMatrix&& o) noexcept
    : rows_(o.rows_),
      cols_(o.cols_),
      row_ptr_(std::move(o.row_ptr_)),
      col_idx_(std::move(o.col_idx_)),
      values_(std::move(o.values_)) {
  o.rows_ = o.cols_ = 0;
  o.row_ptr_.clear();
  o.col_idx_.clear();
  o.values_.clear();
}

CsrMatrix& CsrMatrix::operator=(CsrMatrix o) noexcept {
  Unaccount();
  rows_ = o.rows_;
  cols_ = o.cols_;
  row_ptr_ = std::move(o.row_ptr_);
  col_idx_ = std::move(o.col_idx_);
  values_ = std::move(o.values_);
  o.rows_ = o.cols_ = 0;
  o.row_ptr_.clear();
  o.col_idx_.clear();
  o.values_.clear();
  // The payload bytes were accounted when `o` was constructed and transfer
  // to this object; `o` now holds nothing and its destructor releases zero.
  return *this;
}

CsrMatrix::~CsrMatrix() { Unaccount(); }

void CsrMatrix::Account() { MemoryMeter::Instance().Allocate(ByteSize()); }

void CsrMatrix::Unaccount() { MemoryMeter::Instance().Release(ByteSize()); }

Matrix CsrMatrix::SpMM(const Matrix& x) const {
  Matrix y(rows_, x.cols());
  const size_t d = x.cols();
  // Row-partitioned: each output row is accumulated serially, in CSR
  // entry order, by exactly one thread — bitwise-deterministic for any
  // thread count.
  common::ParallelFor(0, rows_, kSpmmGrain, [&](size_t r0, size_t r1) {
    for (size_t r = r0; r < r1; ++r) {
      float* yrow = y.Row(r);
      for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
        const float v = values_[e];
        const float* xrow = x.Row(col_idx_[e]);
        for (size_t c = 0; c < d; ++c) yrow[c] += v * xrow[c];
      }
    }
  });
  return y;
}

Matrix CsrMatrix::SpMMTransposed(const Matrix& x) const {
  Matrix y(cols_, x.cols());
  const size_t d = x.cols();
  const size_t parts = TransposePartitions(rows_);
  if (parts <= 1 || d == 0) {
    for (size_t r = 0; r < rows_; ++r) {
      const float* xrow = x.Row(r);
      for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
        const float v = values_[e];
        float* yrow = y.Row(col_idx_[e]);
        for (size_t c = 0; c < d; ++c) yrow[c] += v * xrow[c];
      }
    }
    return y;
  }
  // Every entry of row r scatters into y.Row(col); two input rows on
  // different threads may hit the same output row, so each fixed
  // partition of the input rows accumulates a private full-size partial.
  const size_t span = (rows_ + parts - 1) / parts;
  std::vector<std::vector<float>> partials(parts);
  common::ParallelFor(0, parts, 1, [&](size_t p0, size_t p1) {
    for (size_t pi = p0; pi < p1; ++pi) {
      std::vector<float>& buf = partials[pi];
      buf.assign(y.size(), 0.0f);
      const size_t r_end = std::min(rows_, (pi + 1) * span);
      for (size_t r = pi * span; r < r_end; ++r) {
        const float* xrow = x.Row(r);
        for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
          const float v = values_[e];
          float* yrow = buf.data() + static_cast<size_t>(col_idx_[e]) * d;
          for (size_t c = 0; c < d; ++c) yrow[c] += v * xrow[c];
        }
      }
    }
  });
  // Reduce the partials in ascending partition order. The reduction is
  // row-partitioned, so parallelizing it does not change any element's
  // addition order.
  common::ParallelFor(0, cols_, kSpmmGrain, [&](size_t r0, size_t r1) {
    for (size_t pi = 0; pi < parts; ++pi) {
      const float* src = partials[pi].data();
      for (size_t r = r0; r < r1; ++r) {
        float* yrow = y.Row(r);
        const float* srow = src + r * d;
        for (size_t c = 0; c < d; ++c) yrow[c] += srow[c];
      }
    }
  });
  return y;
}

std::vector<float> CsrMatrix::RowSums() const {
  std::vector<float> sums(rows_, 0.0f);
  for (size_t r = 0; r < rows_; ++r)
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e)
      sums[r] += values_[e];
  return sums;
}

CsrMatrix CsrMatrix::RowNormalized() const {
  std::vector<float> sums = RowSums();
  CsrMatrix out(*this);
  for (size_t r = 0; r < rows_; ++r) {
    if (sums[r] == 0.0f) continue;
    const float inv = 1.0f / sums[r];
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e)
      out.values_[e] *= inv;
  }
  return out;
}

CsrMatrix CsrMatrix::SymNormalized() const {
  // In-degree per column.
  std::vector<float> col_sums(cols_, 0.0f);
  for (size_t r = 0; r < rows_; ++r)
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e)
      col_sums[col_idx_[e]] += values_[e];
  std::vector<float> row_sums = RowSums();
  CsrMatrix out(*this);
  for (size_t r = 0; r < rows_; ++r) {
    const float dr = row_sums[r];
    for (uint64_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      const float dc = col_sums[col_idx_[e]];
      const float denom = std::sqrt(dr) * std::sqrt(dc);
      out.values_[e] = denom > 0.0f ? out.values_[e] / denom : 0.0f;
    }
  }
  return out;
}

}  // namespace kgnet::tensor
