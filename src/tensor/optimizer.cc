#include "tensor/optimizer.h"

#include <cassert>
#include <cmath>

namespace kgnet::tensor {

size_t AdamOptimizer::Register(Matrix* param) {
  params_.push_back(param);
  m_.emplace_back(param->rows(), param->cols());
  v_.emplace_back(param->rows(), param->cols());
  return params_.size() - 1;
}

void AdamOptimizer::Step(const std::vector<Matrix*>& grads) {
  assert(grads.size() == params_.size());
  ++t_;
  const float b1 = opts_.beta1;
  const float b2 = opts_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Matrix& p = *params_[k];
    const Matrix& g = *grads[k];
    Matrix& m = m_[k];
    Matrix& v = v_[k];
    const size_t n = p.size();
    for (size_t i = 0; i < n; ++i) {
      float gi = g.data()[i];
      if (opts_.weight_decay > 0.0f) gi += opts_.weight_decay * p.data()[i];
      m.data()[i] = b1 * m.data()[i] + (1.0f - b1) * gi;
      v.data()[i] = b2 * v.data()[i] + (1.0f - b2) * gi * gi;
      const float mhat = m.data()[i] / bias1;
      const float vhat = v.data()[i] / bias2;
      p.data()[i] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
  }
}

void AdamOptimizer::Reset() {
  for (auto& m : m_) m.Zero();
  for (auto& v : v_) v.Zero();
  t_ = 0;
}

size_t SgdOptimizer::Register(Matrix* param) {
  params_.push_back(param);
  velocity_.emplace_back(param->rows(), param->cols());
  return params_.size() - 1;
}

void SgdOptimizer::Step(const std::vector<Matrix*>& grads) {
  assert(grads.size() == params_.size());
  for (size_t k = 0; k < params_.size(); ++k) {
    Matrix& p = *params_[k];
    const Matrix& g = *grads[k];
    Matrix& vel = velocity_[k];
    const size_t n = p.size();
    for (size_t i = 0; i < n; ++i) {
      vel.data()[i] = momentum_ * vel.data()[i] - lr_ * g.data()[i];
      p.data()[i] += vel.data()[i];
    }
  }
}

float SoftmaxCrossEntropy(const Matrix& logits, const std::vector<int>& labels,
                          Matrix* grad) {
  assert(labels.size() == logits.rows());
  const size_t n = logits.rows();
  const size_t c = logits.cols();
  *grad = logits;  // copy, then softmax in place
  grad->SoftmaxRowsInPlace();
  double loss = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == kIgnoreLabel) {
      float* row = grad->Row(i);
      for (size_t j = 0; j < c; ++j) row[j] = 0.0f;
      continue;
    }
    ++counted;
    float* row = grad->Row(i);
    const float p = row[labels[i]];
    loss += -std::log(std::max(p, 1e-12f));
    row[labels[i]] -= 1.0f;
  }
  const float inv = counted > 0 ? 1.0f / static_cast<float>(counted) : 0.0f;
  grad->Scale(inv);
  return counted > 0 ? static_cast<float>(loss / counted) : 0.0f;
}

float LogisticLoss(const std::vector<float>& scores,
                   const std::vector<float>& targets,
                   std::vector<float>* grad_scores) {
  assert(scores.size() == targets.size());
  const size_t n = scores.size();
  grad_scores->assign(n, 0.0f);
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const float z = -targets[i] * scores[i];
    // softplus(z) = log(1 + e^z), stable form.
    const float sp = z > 0 ? z + std::log1p(std::exp(-z))
                           : std::log1p(std::exp(z));
    loss += sp;
    const float sigma = 1.0f / (1.0f + std::exp(-z));
    (*grad_scores)[i] = -targets[i] * sigma / static_cast<float>(n);
  }
  return static_cast<float>(loss / (n > 0 ? n : 1));
}

}  // namespace kgnet::tensor
