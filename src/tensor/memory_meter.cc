#include "tensor/memory_meter.h"

namespace kgnet::tensor {

MemoryMeter& MemoryMeter::Instance() {
  thread_local MemoryMeter meter;
  return meter;
}

}  // namespace kgnet::tensor
