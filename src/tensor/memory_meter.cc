#include "tensor/memory_meter.h"

namespace kgnet::tensor {

MemoryMeter& MemoryMeter::Instance() {
  // One shared meter for the whole process: tensors are allocated on the
  // caller's thread but filled by pool workers, and the triple store's
  // parallel flush reports index bytes from worker threads — a per-thread
  // meter would scatter those bytes across meters nobody reads.
  static MemoryMeter meter;
  return meter;
}

}  // namespace kgnet::tensor
