#include "rdf/ntriples.h"

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace kgnet::rdf {

namespace {

/// Hex digit value, or -1 for a non-hex character.
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Appends the UTF-8 encoding of `cp` to `out`. False for code points
/// outside Unicode (> U+10FFFF) or in the surrogate range, which UCHAR
/// escapes must not denote.
bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

/// Decodes a UCHAR escape (\uXXXX or \UXXXXXXXX) whose digits start at
/// s[*i]; appends the code point as UTF-8 and advances *i past the
/// digits.
Status DecodeUchar(std::string_view s, size_t* i, int ndigits,
                   std::string* out) {
  if (*i + static_cast<size_t>(ndigits) > s.size())
    return Status::ParseError("truncated \\u escape in literal");
  uint32_t cp = 0;
  for (int k = 0; k < ndigits; ++k) {
    const int v = HexValue(s[*i + static_cast<size_t>(k)]);
    if (v < 0)
      return Status::ParseError("non-hex digit in \\u escape");
    cp = (cp << 4) | static_cast<uint32_t>(v);
  }
  if (!AppendUtf8(cp, out))
    return Status::ParseError("\\u escape denotes an invalid code point");
  *i += static_cast<size_t>(ndigits);
  return Status::OK();
}

// Consumes one term starting at s[pos]; advances pos past the term.
Result<Term> ParseTermAt(std::string_view s, size_t* pos) {
  while (*pos < s.size() && std::isspace(static_cast<unsigned char>(s[*pos])))
    ++*pos;
  if (*pos >= s.size())
    return Status::ParseError("unexpected end of line while reading term");

  char c = s[*pos];
  if (c == '<') {
    size_t end = s.find('>', *pos + 1);
    if (end == std::string_view::npos)
      return Status::ParseError("unterminated IRI");
    Term t = Term::Iri(std::string(s.substr(*pos + 1, end - *pos - 1)));
    *pos = end + 1;
    return t;
  }
  if (c == '_') {
    if (*pos + 1 >= s.size() || s[*pos + 1] != ':')
      return Status::ParseError("malformed blank node");
    size_t end = *pos + 2;
    while (end < s.size() &&
           !std::isspace(static_cast<unsigned char>(s[end])) && s[end] != '.')
      ++end;
    Term t = Term::Blank(std::string(s.substr(*pos + 2, end - *pos - 2)));
    *pos = end;
    return t;
  }
  if (c == '"') {
    std::string value;
    size_t i = *pos + 1;
    bool closed = false;
    while (i < s.size()) {
      char d = s[i];
      if (d == '\\') {
        if (i + 1 >= s.size()) return Status::ParseError("dangling escape");
        char e = s[i + 1];
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 'r':
            value += '\r';
            break;
          case 't':
            value += '\t';
            break;
          case '"':
            value += '"';
            break;
          case '\'':
            value += '\'';
            break;
          case 'b':
            value += '\b';
            break;
          case 'f':
            value += '\f';
            break;
          case '\\':
            value += '\\';
            break;
          case 'u':
          case 'U': {
            // UCHAR: \uXXXX / \UXXXXXXXX, decoded to UTF-8.
            size_t digits = i + 2;
            KGNET_RETURN_IF_ERROR(
                DecodeUchar(s, &digits, e == 'u' ? 4 : 8, &value));
            i = digits;
            continue;
          }
          default:
            return Status::ParseError("unsupported escape in literal");
        }
        i += 2;
        continue;
      }
      if (d == '"') {
        closed = true;
        ++i;
        break;
      }
      value += d;
      ++i;
    }
    if (!closed) return Status::ParseError("unterminated literal");
    Term t = Term::Literal(std::move(value));
    if (i < s.size() && s[i] == '@') {
      size_t end = i + 1;
      while (end < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[end])) ||
              s[end] == '-'))
        ++end;
      t.lang = std::string(s.substr(i + 1, end - i - 1));
      i = end;
    } else if (i + 1 < s.size() && s[i] == '^' && s[i + 1] == '^') {
      if (i + 2 >= s.size() || s[i + 2] != '<')
        return Status::ParseError("malformed datatype");
      size_t end = s.find('>', i + 3);
      if (end == std::string_view::npos)
        return Status::ParseError("unterminated datatype IRI");
      t.datatype = std::string(s.substr(i + 3, end - i - 3));
      i = end + 1;
    }
    *pos = i;
    return t;
  }
  return Status::ParseError("unrecognised term start '" + std::string(1, c) +
                            "'");
}

}  // namespace

Result<ParsedTriple> ParseNTriplesLine(std::string_view line) {
  std::string_view body = StripWhitespace(line);
  if (body.empty() || body[0] == '#')
    return Status::NotFound("blank or comment line");

  size_t pos = 0;
  KGNET_ASSIGN_OR_RETURN(Term s, ParseTermAt(body, &pos));
  KGNET_ASSIGN_OR_RETURN(Term p, ParseTermAt(body, &pos));
  if (!p.is_iri()) return Status::ParseError("predicate must be an IRI");
  KGNET_ASSIGN_OR_RETURN(Term o, ParseTermAt(body, &pos));

  while (pos < body.size() &&
         std::isspace(static_cast<unsigned char>(body[pos])))
    ++pos;
  if (pos >= body.size() || body[pos] != '.')
    return Status::ParseError("missing terminating '.'");
  return ParsedTriple{std::move(s), std::move(p), std::move(o)};
}

Result<size_t> LoadNTriples(std::string_view document, TripleStore* store) {
  // Bulk load in bounded windows: split the next kWindow lines off the
  // document (serial, cheap), parse them in parallel on the shared pool
  // (term parsing dominates and touches no shared state), then intern
  // and insert serially in document order — dictionary ids, insertion
  // results and the partial-load-before-a-parse-error behavior are all
  // identical to a line-at-a-time load. The window bounds peak memory
  // (one window of views + parsed terms, never the whole document) and
  // stops all parse work at the first failing window.
  constexpr size_t kGrain = 512;    // lines per parallel chunk
  constexpr size_t kWindow = 16 * kGrain;  // lines per window
  struct ChunkError {
    size_t line_no = 0;  // 1-based; 0 = chunk parsed clean
    std::string message;
  };
  std::vector<std::string_view> lines;
  std::vector<std::optional<ParsedTriple>> parsed;
  std::vector<ChunkError> errors;

  size_t added = 0;
  size_t window_first_line = 1;  // 1-based line number of lines[0]
  size_t start = 0;
  bool more = true;
  while (more) {
    lines.clear();
    while (lines.size() < kWindow) {
      if (start > document.size()) {
        more = false;
        break;
      }
      size_t end = document.find('\n', start);
      if (end == std::string_view::npos) end = document.size();
      lines.push_back(document.substr(start, end - start));
      if (end == document.size()) {
        more = false;
        break;
      }
      start = end + 1;
    }
    if (lines.empty()) break;

    // Parallel parse; each chunk records its first error into its own
    // slot (chunk bounds are a fixed function of the grain, so slot
    // indexing is deterministic).
    parsed.assign(lines.size(), std::nullopt);
    errors.assign((lines.size() + kGrain - 1) / kGrain, ChunkError{});
    common::ParallelFor(0, lines.size(), kGrain, [&](size_t b, size_t e) {
      ChunkError& err = errors[b / kGrain];
      for (size_t i = b; i < e; ++i) {
        if (StripWhitespace(lines[i]).empty()) continue;
        auto r = ParseNTriplesLine(lines[i]);
        if (r.ok()) {
          parsed[i] = std::move(*r);
        } else if (r.status().code() != StatusCode::kNotFound) {
          err.line_no = window_first_line + i;
          err.message = r.status().message();
          return;  // a serial load never reaches past its first error
        }
      }
    });

    // First failing line of this window, in document order.
    const ChunkError* first_error = nullptr;
    for (const ChunkError& err : errors) {
      if (err.line_no != 0) {
        first_error = &err;
        break;
      }
    }

    // Serial insert in document order, up to the first error.
    for (size_t i = 0; i < parsed.size(); ++i) {
      if (first_error != nullptr &&
          window_first_line + i >= first_error->line_no)
        break;
      if (!parsed[i]) continue;
      if (store->Insert(parsed[i]->s, parsed[i]->p, parsed[i]->o)) ++added;
    }
    if (first_error != nullptr)
      return Status::ParseError("line " +
                                std::to_string(first_error->line_no) + ": " +
                                first_error->message);
    window_first_line += lines.size();
  }
  return added;
}

Result<size_t> LoadNTriplesFile(const std::string& path, TripleStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  return LoadNTriples(content, store);
}

Status WriteNTriples(const TripleStore& store, std::ostream& os) {
  const Dictionary& dict = store.dict();
  store.Scan(TriplePattern(), [&](const Triple& t) {
    os << dict.Lookup(t.s).ToNTriples() << ' ' << dict.Lookup(t.p).ToNTriples()
       << ' ' << dict.Lookup(t.o).ToNTriples() << " .\n";
    return true;
  });
  return Status::OK();
}

}  // namespace kgnet::rdf
