// Schema-level statistics over a TripleStore (Table I of the paper).
#ifndef KGNET_RDF_GRAPH_STATS_H_
#define KGNET_RDF_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rdf/triple_store.h"

namespace kgnet::rdf {

/// Aggregate statistics for a knowledge graph, in the shape the paper's
/// Table I reports.
struct GraphStats {
  size_t num_triples = 0;
  size_t num_subjects = 0;
  size_t num_objects = 0;
  /// Distinct predicate IRIs ("edge types" in the paper).
  size_t num_edge_types = 0;
  /// Distinct classes, i.e. distinct objects of rdf:type ("node types").
  size_t num_node_types = 0;
  /// Number of literal-valued triples.
  size_t num_literal_triples = 0;
  /// Per-predicate triple counts, keyed by predicate IRI.
  std::map<std::string, size_t> predicate_counts;
  /// Per-class instance counts, keyed by class IRI.
  std::map<std::string, size_t> class_counts;
};

/// Computes GraphStats for `store`.
GraphStats ComputeGraphStats(const TripleStore& store);

/// Formats stats as an aligned text table (used by bench_table1).
std::string FormatStatsTable(const std::string& kg_name,
                             const GraphStats& stats);

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_GRAPH_STATS_H_
