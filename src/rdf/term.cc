#include "rdf/term.h"

#include <charconv>
#include <cstdio>

namespace kgnet::rdf {

Term Term::IntLiteral(int64_t value) {
  return TypedLiteral(std::to_string(value), std::string(kXsdInteger));
}

Term Term::DoubleLiteral(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return TypedLiteral(buf, std::string(kXsdDouble));
}

bool Term::AsDouble(double* out) const {
  if (!is_literal() || lexical.empty()) return false;
  const char* begin = lexical.data();
  const char* end = begin + lexical.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kUndef:
      return "";  // an unbound cell renders as nothing, like SPARQL UNDEF
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"";
      for (char c : lexical) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
      }
      out += '"';
      if (!lang.empty()) {
        out += '@';
        out += lang;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return "";
}

std::string Term::EncodeKey() const {
  // A compact tagged encoding; tags cannot collide with IRI content because
  // they appear in a fixed leading position.
  std::string key;
  key.reserve(lexical.size() + datatype.size() + lang.size() + 4);
  switch (kind) {
    case TermKind::kIri:
      key += 'I';
      break;
    case TermKind::kLiteral:
      key += 'L';
      break;
    case TermKind::kBlank:
      key += 'B';
      break;
    case TermKind::kUndef:
      // Distinct from 'L' so DISTINCT cannot merge an unbound cell with
      // a genuine empty-string literal.
      key += 'U';
      break;
  }
  key += lexical;
  key += '\x01';
  key += datatype;
  key += '\x01';
  key += lang;
  return key;
}

}  // namespace kgnet::rdf
