// Block-structured, delta-compressed storage for one permutation index.
//
// A CompressedRun holds a strictly increasing sequence of 3-part keys
// (the permuted (s,p,o) of one IndexOrder) as fixed-size blocks of
// varint-encoded deltas plus a skip table. Each skip entry stores the
// first key of its block uncompressed together with the byte offset of
// the block's payload, so
//
//   - prefix lookups binary-search the skip table and decode at most one
//     boundary block per bound (O(log #blocks + block_size)), exactly
//     like the old flat-vector binary search but over ~3-5 bytes/key
//     instead of 12; and
//   - cursors decode only the blocks inside their [lo, hi) row range.
//
// Within a block, each key is encoded against its predecessor in the
// RDF-3X gap style: varint(delta of key slot 0), then — because the run
// is sorted — only the slots right of the first changed slot follow
// (full varints after a slot-0 change, a further delta chain when slot 0
// repeats). Sorted runs repeat their leading slots heavily, so the
// common encodings are 2-4 bytes per key.
#ifndef KGNET_RDF_INDEX_BLOCK_H_
#define KGNET_RDF_INDEX_BLOCK_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "rdf/term.h"

namespace kgnet::rdf {

/// A permuted triple key: the three TermIds of one triple arranged in
/// the key order of some permutation index.
using IndexKey = std::array<TermId, 3>;

/// Default rows per block. A skip entry costs 16 bytes, so 128-row
/// blocks keep the skip table at ~0.13 bytes/row while bounding every
/// lookup's decode work to 128 keys.
inline constexpr size_t kDefaultIndexBlockSize = 128;

class CompressedRun;

/// Streaming decoder over a row range [pos, end) of a CompressedRun.
/// Borrows the run's storage: valid only while the run is not rebuilt.
class RunCursor {
 public:
  RunCursor() = default;

  /// Decodes the next key. Returns false at the end of the range.
  bool Next(IndexKey* out);

  /// Rows left in the range (exact).
  size_t remaining() const { return end_ - pos_; }

  /// A fresh cursor over `count` rows starting `offset` rows past this
  /// cursor's current position (clamped to the cursor's end). The slice
  /// seeks via the skip table like any new cursor; this cursor is not
  /// advanced. Morsel-parallel scans carve one range cursor into
  /// per-morsel slices with this.
  RunCursor Slice(size_t offset, size_t count) const {
    const size_t lo = pos_ + std::min(offset, end_ - pos_);
    const size_t hi = lo + std::min(count, end_ - lo);
    return RunCursor(run_, lo, hi);
  }

 private:
  friend class CompressedRun;
  RunCursor(const CompressedRun* run, size_t pos, size_t end)
      : run_(run), pos_(pos), end_(end) {}

  const CompressedRun* run_ = nullptr;
  size_t pos_ = 0;  // next row to emit
  size_t end_ = 0;
  // Decode state, valid once primed_: prev_ is the key of row pos_ - 1
  // and ptr_ addresses the encoding of row pos_ (both refreshed from the
  // skip table whenever pos_ crosses a block boundary).
  bool primed_ = false;
  const uint8_t* ptr_ = nullptr;
  IndexKey prev_ = {0, 0, 0};
};

/// One compressed sorted run. Immutable between Assign() calls; the
/// TripleStore rebuilds the run when buffered mutations flush.
class CompressedRun {
 public:
  explicit CompressedRun(size_t block_size = kDefaultIndexBlockSize)
      : block_size_(block_size == 0 ? 1 : block_size) {}

  /// Rebuilds the run from strictly increasing keys.
  void Assign(const std::vector<IndexKey>& keys);

  /// Number of keys stored.
  size_t size() const { return size_; }

  /// Rows per block (immutable after construction).
  size_t block_size() const { return block_size_; }

  /// Compressed footprint: payload bytes plus the skip table.
  size_t ByteSize() const {
    return bytes_.size() + skip_.size() * sizeof(SkipEntry);
  }

  /// Row range [lo, hi) of keys whose first `prefix_len` slots equal the
  /// first `prefix_len` slots of `prefix` (0 selects the whole run).
  /// Exact; costs two skip-table binary searches plus the decode of at
  /// most one block per bound.
  std::pair<size_t, size_t> PrefixRange(int prefix_len,
                                        const IndexKey& prefix) const;

  /// Opens a decoding cursor over rows [lo, hi).
  RunCursor Cursor(size_t lo, size_t hi) const {
    return RunCursor(this, lo, hi);
  }

  /// Decodes every key back into `out` (appended; used by rebuilds).
  void DecodeAll(std::vector<IndexKey>* out) const;

 private:
  friend class RunCursor;

  struct SkipEntry {
    IndexKey first;        // key of the block's first row (not in payload)
    uint64_t byte_offset;  // where the block's delta payload starts
                           // (64-bit: one run's payload can pass 4 GiB
                           // at billion-triple scale)
  };

  /// First row with key >= `key` / key > `key` (lexicographic).
  size_t LowerBound(const IndexKey& key) const;
  size_t UpperBound(const IndexKey& key) const;

  static void EncodeOne(const IndexKey& prev, const IndexKey& cur,
                        std::vector<uint8_t>* out);
  static void DecodeOne(const uint8_t** p, IndexKey* key);

  size_t block_size_;
  size_t size_ = 0;
  std::vector<uint8_t> bytes_;
  std::vector<SkipEntry> skip_;
};

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_INDEX_BLOCK_H_
