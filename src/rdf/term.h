// RDF terms: IRIs, literals and blank nodes.
#ifndef KGNET_RDF_TERM_H_
#define KGNET_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace kgnet::rdf {

/// Dense integer handle for an interned Term. Id 0 is reserved and never
/// refers to a term; pattern-matching code uses it as the wildcard.
using TermId = uint32_t;

/// The reserved "no term / any term" id.
inline constexpr TermId kNullTermId = 0;

/// The syntactic category of an RDF term.
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
  /// Not a term: an explicitly-unbound solution cell (SPARQL's UNDEF).
  /// Projection produces it for variables a row leaves unbound, so an
  /// unbound cell can never be confused with a genuine empty-string
  /// literal — DISTINCT, serialization and downstream consumers all see
  /// the difference. Undef terms are never stored in a TripleStore.
  kUndef = 3,
};

/// An RDF term value.
///
/// `lexical` holds the IRI string (without angle brackets), the literal
/// lexical form (without quotes) or the blank-node label (without "_:").
/// For literals, `datatype` optionally holds the datatype IRI and `lang`
/// the language tag; both are empty when absent.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;
  std::string datatype;
  std::string lang;

  Term() = default;
  Term(TermKind k, std::string lex) : kind(k), lexical(std::move(lex)) {}

  /// Creates an IRI term.
  static Term Iri(std::string iri) {
    return Term(TermKind::kIri, std::move(iri));
  }
  /// Creates a plain string literal.
  static Term Literal(std::string value) {
    return Term(TermKind::kLiteral, std::move(value));
  }
  /// Creates a typed literal.
  static Term TypedLiteral(std::string value, std::string datatype_iri) {
    Term t(TermKind::kLiteral, std::move(value));
    t.datatype = std::move(datatype_iri);
    return t;
  }
  /// Creates an xsd:integer literal.
  static Term IntLiteral(int64_t value);
  /// Creates an xsd:double literal.
  static Term DoubleLiteral(double value);
  /// Creates a blank node.
  static Term Blank(std::string label) {
    return Term(TermKind::kBlank, std::move(label));
  }
  /// Creates an unbound solution cell (see TermKind::kUndef).
  static Term Undef() { return Term(TermKind::kUndef, std::string()); }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_undef() const { return kind == TermKind::kUndef; }

  /// Attempts to read the literal as a double; returns false for non-numeric
  /// content or non-literals.
  bool AsDouble(double* out) const;

  /// N-Triples serialization of this term (e.g. `<iri>`, `"lit"^^<dt>`).
  std::string ToNTriples() const;

  /// Canonical single-string key used for dictionary interning.
  std::string EncodeKey() const;

  bool operator==(const Term& o) const {
    return kind == o.kind && lexical == o.lexical && datatype == o.datatype &&
           lang == o.lang;
  }
};

/// Well-known IRIs.
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_TERM_H_
