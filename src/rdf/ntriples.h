// N-Triples serialization: parsing and writing line-oriented RDF.
#ifndef KGNET_RDF_NTRIPLES_H_
#define KGNET_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "rdf/triple_store.h"

namespace kgnet::rdf {

/// A decoded N-Triples line.
struct ParsedTriple {
  Term s;
  Term p;
  Term o;
};

/// Parses one N-Triples line ("<s> <p> <o> ." with literal/blank forms).
/// Comment lines (leading '#') and blank lines yield kNotFound, which callers
/// should skip.
Result<ParsedTriple> ParseNTriplesLine(std::string_view line);

/// Parses an entire N-Triples document into `store`.
/// Returns the number of triples added.
Result<size_t> LoadNTriples(std::string_view document, TripleStore* store);

/// Reads an N-Triples file from disk into `store`.
Result<size_t> LoadNTriplesFile(const std::string& path, TripleStore* store);

/// Writes every triple in `store` to `os` in N-Triples syntax
/// (SPO order, deterministic).
Status WriteNTriples(const TripleStore& store, std::ostream& os);

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_NTRIPLES_H_
