// An in-memory dictionary-encoded triple store with three permuted indexes.
#ifndef KGNET_RDF_TRIPLE_STORE_H_
#define KGNET_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace kgnet::rdf {

/// Which of the three collation orders an index stores.
enum class IndexOrder { kSpo, kPos, kOsp };

/// An in-memory triple store.
///
/// Triples are dictionary-encoded (see Dictionary) and maintained in three
/// sorted permutation indexes — SPO, POS and OSP — mirroring the layout of
/// classical RDF engines (RDF-3X, Virtuoso). Lookups with any combination of
/// bound positions are answered by a binary-searched range scan on the most
/// selective index. Inserts are buffered and merged lazily so that bulk
/// loading stays O(n log n).
///
/// The store is single-writer; readers must not run concurrently with
/// mutation (the KGNet pipeline is phase-structured, so this suffices).
class TripleStore {
 public:
  TripleStore();

  /// The dictionary used to encode all triples in this store.
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Inserts an encoded triple. Duplicate inserts are ignored.
  /// Returns true if the triple was new.
  bool Insert(const Triple& t);

  /// Encodes and inserts a (subject, predicate, object) of Terms.
  bool Insert(const Term& s, const Term& p, const Term& o);

  /// Convenience for IRI-only triples.
  bool InsertIris(std::string_view s, std::string_view p, std::string_view o);

  /// Removes a triple. Returns true if it was present.
  bool Erase(const Triple& t);

  /// Removes every triple matching `pattern`; returns the number removed.
  size_t EraseMatching(const TriplePattern& pattern);

  /// True if the exact triple is present.
  bool Contains(const Triple& t) const;

  /// Calls `fn` for every triple matching `pattern`. If `fn` returns false,
  /// iteration stops early.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Collects all triples matching `pattern`.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Exact number of triples matching `pattern` (counted by scan).
  size_t Count(const TriplePattern& pattern) const;

  /// O(log n) cardinality estimate for a pattern; used by the SPARQL
  /// optimizer. Exact for fully-bound/unbound patterns and for (s,p,?),
  /// (?,p,o), (s,?,?), (?,?,o), (?,p,?) prefixes of an index.
  size_t EstimateCardinality(const TriplePattern& pattern) const;

  /// Total number of triples.
  size_t size() const;

  /// Number of distinct subjects / predicates / objects (exact, O(n)).
  size_t NumDistinctSubjects() const;
  size_t NumDistinctPredicates() const;
  size_t NumDistinctObjects() const;

  /// Forces pending inserts into the sorted indexes. Called automatically by
  /// read operations; exposed for benchmarks that want to exclude merge time.
  void FlushInserts() const;

 private:
  struct Index {
    IndexOrder order;
    // Sorted in permuted order.
    mutable std::vector<Triple> rows;
  };

  static std::array<TermId, 3> Permute(IndexOrder order, const Triple& t);
  static Triple Unpermute(IndexOrder order, const std::array<TermId, 3>& k);

  // Returns [lo, hi) bounds in `idx` for the bound prefix of `pattern`
  // (after permutation); remaining free positions are filtered by caller.
  std::pair<size_t, size_t> PrefixRange(const Index& idx, TermId k0,
                                        TermId k1) const;

  void ScanIndex(const Index& idx, const TriplePattern& pattern,
                 const std::function<bool(const Triple&)>& fn) const;

  Dictionary dict_;
  mutable Index spo_;
  mutable Index pos_;
  mutable Index osp_;
  mutable std::vector<Triple> pending_;
  mutable std::unordered_set<Triple, TripleHash> membership_;
};

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_TRIPLE_STORE_H_
