// An in-memory dictionary-encoded triple store with versioned (MVCC)
// compressed permutation indexes: immutable run generations, an
// in-memory delta layer, and epoch-stamped snapshots.
#ifndef KGNET_RDF_TRIPLE_STORE_H_
#define KGNET_RDF_TRIPLE_STORE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "rdf/dictionary.h"
#include "rdf/index_block.h"
#include "rdf/triple.h"

namespace kgnet::rdf {

/// Which of the six collation orders an index stores. With the full set,
/// every combination of bound positions has an index whose seekable
/// prefix covers it AND every triple position can stream in sorted order
/// under any single bound position — e.g. kPso streams subjects in order
/// within one predicate, the case merge joins on subject-position join
/// variables need.
enum class IndexOrder { kSpo, kPos, kOsp, kPso, kOps, kSop };

/// Number of IndexOrder values (= permutations of three positions).
inline constexpr int kNumIndexOrders = 6;

/// Lower-case index name ("spo", "pos", ..., "sop") for plan rendering.
const char* IndexOrderName(IndexOrder order);

/// The triple positions (0 = s, 1 = p, 2 = o) occupying each key slot of
/// an index order; e.g. kPos -> {1, 2, 0} (keys are p, o, s).
std::array<int, 3> IndexOrderPositions(IndexOrder order);

/// Permutes a triple into the key order of `order`. Derived from
/// IndexOrderPositions so seek/sort keys and the planner's ordered-slot
/// logic agree on every permutation.
IndexKey PermuteTriple(IndexOrder order, const Triple& t);

/// Inverse of PermuteTriple: key slot i holds triple position
/// IndexOrderPositions(order)[i].
Triple UnpermuteKey(IndexOrder order, const IndexKey& k);

/// Built-in delta size at which a writer triggers an automatic
/// Compact(); overridable per store (TripleStore::Options) or process-
/// wide via KGNET_DELTA_COMPACT_THRESHOLD.
inline constexpr size_t kDefaultDeltaCompactThreshold = 4096;

/// One immutable generation of compressed permutation runs, sealed at a
/// mutation epoch and never modified afterwards. Generations are shared
/// (std::shared_ptr) between the store and every open Snapshot; when the
/// last pinning snapshot drops, the destructor releases the generation's
/// MemoryMeter bytes — that release *is* the version garbage collection:
/// no list of dead versions, no sweeper, just shared ownership.
class Generation {
 public:
  struct Run {
    IndexOrder order = IndexOrder::kSpo;
    bool present = true;
    CompressedRun run;
  };

  /// Takes ownership of fully-built runs, registers their bytes with the
  /// process-wide MemoryMeter index pools and bumps `live` (both undone
  /// in the destructor). `epoch` is the mutation epoch this generation
  /// reflects; `num_triples` its exact triple count.
  Generation(std::array<Run, kNumIndexOrders> runs, size_t num_triples,
             uint64_t epoch, std::shared_ptr<std::atomic<int64_t>> live);
  ~Generation();
  Generation(const Generation&) = delete;
  Generation& operator=(const Generation&) = delete;

  const Run& run(IndexOrder order) const {
    return runs_[static_cast<size_t>(order)];
  }
  size_t num_triples() const { return num_triples_; }
  uint64_t epoch() const { return epoch_; }

 private:
  std::array<Run, kNumIndexOrders> runs_;
  size_t num_triples_ = 0;
  uint64_t epoch_ = 0;
  std::shared_ptr<std::atomic<int64_t>> live_;
};

/// The sorted per-order view of a store's uncompacted mutation log at
/// one epoch, built against one generation. Every entry is *definite*:
/// an insert key is absent from the generation, a tombstone key is
/// present in it (no-op pairs — an erase of a never-merged insert, a
/// re-insert of an erased generation key — cancel at build time). Each
/// entry therefore adjusts any containing range count by exactly +-1,
/// which is what keeps EstimateRange exact on a dirty store. Immutable
/// once built and shared by every snapshot at its epoch.
class DeltaView {
 public:
  /// One permutation order's delta: permuted keys in that order's sort
  /// order, parallel tombstone flags, and an insert-count prefix sum.
  struct OrderDelta {
    std::vector<IndexKey> keys;
    /// tombstone[i] != 0: keys[i] erases a generation key; otherwise it
    /// inserts a key the generation lacks.
    std::vector<uint8_t> tombstone;
    /// ins_before[i] = inserts among keys[0..i); keys.size() + 1 long.
    /// Inserts in [lo, hi) = ins_before[hi] - ins_before[lo]; tombstones
    /// are the remainder of the range length.
    std::vector<uint32_t> ins_before;

    /// Row range [lo, hi) of keys whose first `prefix_len` slots equal
    /// those of `prefix` (0 selects everything); mirrors
    /// CompressedRun::PrefixRange.
    std::pair<size_t, size_t> PrefixRange(int prefix_len,
                                          const IndexKey& prefix) const;
    size_t InsertsIn(size_t lo, size_t hi) const {
      return ins_before[hi] - ins_before[lo];
    }
  };

  const OrderDelta& order_delta(IndexOrder order) const {
    return orders_[static_cast<size_t>(order)];
  }
  /// The mutation epoch this view reflects.
  uint64_t epoch() const { return epoch_; }
  size_t num_inserts() const { return num_inserts_; }
  size_t num_tombstones() const { return num_tombstones_; }
  /// Total definite entries (inserts + tombstones).
  size_t size() const { return num_inserts_ + num_tombstones_; }

 private:
  friend class TripleStore;
  std::array<OrderDelta, kNumIndexOrders> orders_;
  uint64_t epoch_ = 0;
  size_t num_inserts_ = 0;
  size_t num_tombstones_ = 0;
};

/// A streaming cursor over the triples matching a pattern, yielded in
/// the sorted order of one permutation index (see Snapshot::OpenCursor):
/// a merge of the pinned generation's compressed run range with the
/// snapshot's delta range, suppressing tombstoned rows. The cursor
/// shares ownership of both, so it stays valid across store mutation,
/// compaction, even store destruction.
class TripleCursor {
 public:
  TripleCursor() = default;

  /// Advances to the next matching triple. Returns false at end.
  bool Next(Triple* out) {
    for (;;) {
      if (!has_run_) has_run_ = run_.Next(&run_key_);
      const bool has_delta = dpos_ < dend_;
      if (!has_run_ && !has_delta) return false;
      IndexKey key;
      if (has_delta && (!has_run_ || !(run_key_ < delta_->keys[dpos_]))) {
        const IndexKey& dk = delta_->keys[dpos_];
        if (has_run_ && run_key_ == dk) {
          // Keys collide only for tombstones (a delta insert key is
          // never in the generation): consume both, emit nothing.
          ++dpos_;
          has_run_ = false;
          continue;
        }
        // Delta-only key: a definite insert.
        key = dk;
        ++dpos_;
      } else {
        key = run_key_;
        has_run_ = false;
      }
      // Un-permute: key slot i holds triple position positions_[i].
      std::array<TermId, 3> spo = {0, 0, 0};
      for (int i = 0; i < 3; ++i) spo[positions_[i]] = key[i];
      const Triple t(spo[0], spo[1], spo[2]);
      if (pattern_.Matches(t)) {
        *out = t;
        return true;
      }
    }
  }

  /// Upper bound on the remaining results: rest of the index range
  /// (run rows + delta inserts - tombstones, each tombstone cancelling
  /// exactly one run row), including rows the non-prefix positions will
  /// filter out. Exact as a range size at every point of consumption.
  size_t remaining() const {
    const size_t run_rem = run_.remaining() + (has_run_ ? 1 : 0);
    if (dpos_ >= dend_) return run_rem;
    const size_t ins = delta_->InsertsIn(dpos_, dend_);
    const size_t tomb = (dend_ - dpos_) - ins;
    return run_rem + ins - tomb;
  }

  /// True when the remaining range carries no delta entries, i.e. it is
  /// exactly a generation run range. Only then is Slice() meaningful —
  /// the morsel-parallel executor checks this before carving the range.
  bool sliceable() const { return dpos_ >= dend_; }

  /// A fresh cursor over `count` index rows starting `offset` rows past
  /// this cursor's position (clamped), with the same pattern filter and
  /// un-permutation. This cursor is not advanced. Offsets count index
  /// rows, not matches: concatenating Slice(0, k), Slice(k, k), ...
  /// yields exactly this cursor's stream, which is what the executor's
  /// morsel-parallel scan relies on. Precondition: sliceable().
  TripleCursor Slice(size_t offset, size_t count) const {
    TripleCursor c;
    c.run_ = run_.Slice(offset, count);
    c.positions_ = positions_;
    c.pattern_ = pattern_;
    c.gen_ = gen_;
    return c;
  }

 private:
  friend class Snapshot;
  RunCursor run_;
  std::array<int, 3> positions_ = {0, 1, 2};
  TriplePattern pattern_;
  // Run-side lookahead for the merge: run_key_ is the next undecoded-
  // into-output run row when has_run_.
  bool has_run_ = false;
  IndexKey run_key_ = {0, 0, 0};
  // Delta range [dpos_, dend_) into delta_ (null when the range is
  // empty; dend_ == 0 then, so the merge never dereferences it).
  const DeltaView::OrderDelta* delta_ = nullptr;
  size_t dpos_ = 0;
  size_t dend_ = 0;
  // Ownership pins: run_ borrows gen_'s storage and delta_ points into
  // view_, so the cursor keeps both alive.
  std::shared_ptr<const Generation> gen_;
  std::shared_ptr<const DeltaView> view_;
};

/// An immutable, epoch-stamped read view of a TripleStore: one pinned
/// generation plus the delta view at the snapshot's epoch. Opening one
/// is two shared_ptr copies under a short lock (no index is rebuilt on
/// any read path); every query runs against a single snapshot so it
/// sees one consistent epoch end-to-end. Snapshots are values — copy
/// them freely, keep them across mutations, outlive the store; results
/// stay bitwise-identical to the moment the snapshot was opened.
class Snapshot {
 public:
  /// An empty snapshot behaves like an empty store at epoch 0.
  Snapshot() = default;

  /// The mutation epoch this snapshot observes (one Insert/Erase = one
  /// epoch tick).
  uint64_t epoch() const { return epoch_; }

  /// Uncompacted delta entries (inserts + tombstones) this snapshot
  /// merges over its generation.
  size_t delta_size() const { return view_ ? view_->size() : 0; }

  /// Exact number of triples visible.
  size_t size() const;

  /// True if the exact triple is visible in this snapshot.
  bool Contains(const Triple& t) const;

  /// True when the permutation index `order` is maintained.
  bool has_index(IndexOrder order) const;

  /// The index Scan() picks for `pattern` (longest useful bound prefix).
  /// Only ever selects from the classic trio, which every configuration
  /// maintains.
  IndexOrder ChooseIndex(const TriplePattern& pattern) const;

  /// Opens a streaming cursor over `pattern` on the index with collation
  /// `order`. Rows arrive in that index's sort order: after the bound
  /// key prefix (binary-seeked over the block skip table), they are
  /// ordered by the first unbound key position; bound positions outside
  /// the prefix are filtered row by row. If `order` is not maintained,
  /// the scan falls back to ChooseIndex(pattern): results stay correct
  /// but the stream order is unspecified — order-sensitive callers
  /// (merge joins) check has_index() first, as the planner does.
  TripleCursor OpenCursor(IndexOrder order, const TriplePattern& pattern) const;

  /// Size of the index range OpenCursor(order, pattern) would walk: an
  /// O(log n) upper bound on its result count, exact when every bound
  /// position lies in the seekable prefix — delta entries included, so
  /// it stays exact on a dirty store. Falls back like OpenCursor when
  /// `order` is absent.
  size_t EstimateRange(IndexOrder order, const TriplePattern& pattern) const;

  /// O(log n) cardinality estimate for a pattern; exact for every
  /// pattern (each bound combination has a full index prefix).
  size_t EstimateCardinality(const TriplePattern& pattern) const;

  /// Calls `fn` for every visible triple matching `pattern`; stops early
  /// when `fn` returns false.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Collects all visible triples matching `pattern`.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Exact number of visible triples matching `pattern` (by scan).
  size_t Count(const TriplePattern& pattern) const;

 private:
  friend class TripleStore;
  std::shared_ptr<const Generation> gen_;
  std::shared_ptr<const DeltaView> view_;
  uint64_t epoch_ = 0;
};

/// An in-memory triple store.
///
/// Triples are dictionary-encoded (see Dictionary) and maintained in
/// sorted permutation indexes stored as block-structured, delta-
/// compressed runs (see rdf/index_block.h). Options picks the index set
/// — all six permutations (SPO POS OSP PSO OPS SOP, the RDF-3X layout,
/// default) or the classic SPO/POS/OSP trio at half the memory — and
/// the block size.
///
/// Storage is versioned (MVCC): the compressed runs live in an
/// immutable Generation; Insert/Erase append to a small in-memory
/// mutation log under `mu_` and *never* rebuild an index on the read
/// path. Reads go through OpenSnapshot(), which pins the current
/// generation and the delta view of the log at the current epoch;
/// cursors merge run + delta with tombstone suppression, preserving
/// index sort order. Compact() — triggered by the writer once the log
/// passes the compaction threshold, or called explicitly — merges the
/// delta into a fresh generation on the shared thread pool (one task
/// per order) off the read path and swaps it in; superseded generations
/// are reclaimed when their last pinning snapshot drops. No reader ever
/// blocks on (or observes) a partial rebuild.
///
/// Concurrency: any number of concurrent readers are safe against one
/// concurrent writer and a concurrent Compact(). Mutations themselves
/// are single-writer (Insert/Erase from one thread at a time). The
/// Dictionary is safe under the same regime: Lookup is lock-free
/// against concurrent interning (terms live in blocks that never move
/// once published), and Intern/Find serialize internally, so readers
/// may intern query constants while the writer interns new terms (see
/// rdf/dictionary.h).
class TripleStore {
 public:
  /// Index configuration knobs, fixed at construction.
  struct Options {
    /// Which permutation indexes to maintain.
    enum class IndexSet {
      /// SPO POS OSP PSO OPS SOP: every bound combination is an exact
      /// index prefix AND every position can stream in sorted order
      /// under any bound prefix (merge-join friendly). Default.
      kAllSix,
      /// SPO POS OSP only: half the index memory. Every bound
      /// combination is still an exact prefix (cardinality estimates
      /// stay exact), but fewer sort orders are available, so the
      /// planner falls back to hash/bind joins where a merge join
      /// needed a missing permutation.
      kClassicTrio,
    };
    IndexSet index_set = IndexSet::kAllSix;
    /// Rows per compressed index block (see rdf/index_block.h).
    size_t block_size = kDefaultIndexBlockSize;
    /// Log length at which the writer triggers an automatic Compact()
    /// (the effective trigger also scales with the generation size so
    /// bulk loads stay O(n log n) amortized). 0 resolves the process
    /// default: KGNET_DELTA_COMPACT_THRESHOLD when set and valid, else
    /// kDefaultDeltaCompactThreshold.
    size_t delta_compact_threshold = 0;
  };

  /// Per-store storage introspection (see kgnet_shell's `.stats`).
  /// Reported as-is — taking stats never compacts the store.
  struct Stats {
    /// Compressed bytes per maintained permutation run, and their sum.
    std::array<size_t, kNumIndexOrders> run_bytes{};
    size_t total_run_bytes = 0;
    /// Live triples (generation + delta net).
    size_t num_triples = 0;
    /// Current mutation epoch and the epoch of the live generation.
    uint64_t epoch = 0;
    uint64_t generation_epoch = 0;
    /// Triples in the live generation's runs.
    size_t generation_triples = 0;
    /// Raw uncompacted log entries, and their definite split (the
    /// inserts / tombstones a snapshot opened now would merge).
    size_t delta_ops = 0;
    size_t delta_inserts = 0;
    size_t delta_tombstones = 0;
    /// Generations still alive: the live one plus any pinned by open
    /// snapshots awaiting reclamation.
    int64_t live_generations = 0;
    /// Completed compaction cycles.
    uint64_t compactions = 0;
  };

  TripleStore() : TripleStore(Options()) {}
  explicit TripleStore(const Options& options);
  ~TripleStore() = default;

  // Index byte accounting travels with the Generation (registered with
  // the process-wide MemoryMeter on construction, released when the last
  // pin drops): moves hand the generation over, leaving the source
  // empty; copies are disallowed.
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&& other) noexcept;
  TripleStore& operator=(TripleStore&& other) noexcept;

  /// The configuration this store was built with.
  const Options& options() const { return options_; }

  /// True when the permutation index `order` is maintained.
  bool has_index(IndexOrder order) const {
    return static_cast<int>(order) < 3 ||
           options_.index_set == Options::IndexSet::kAllSix;
  }

  /// Number of maintained permutation indexes (3 or 6).
  int num_indexes() const {
    return options_.index_set == Options::IndexSet::kAllSix ? kNumIndexOrders
                                                            : 3;
  }

  /// The dictionary used to encode all triples in this store.
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Inserts an encoded triple. Duplicate inserts are ignored.
  /// Returns true if the triple was new. Appends to the mutation log —
  /// no index rebuild; may trigger an automatic Compact() once the log
  /// passes the compaction threshold.
  bool Insert(const Triple& t);

  /// Encodes and inserts a (subject, predicate, object) of Terms.
  bool Insert(const Term& s, const Term& p, const Term& o);

  /// Convenience for IRI-only triples.
  bool InsertIris(std::string_view s, std::string_view p, std::string_view o);

  /// Removes a triple. Returns true if it was present. Appends a
  /// tombstone to the mutation log — no index rebuild.
  bool Erase(const Triple& t);

  /// Removes every triple matching `pattern`; returns the number removed.
  size_t EraseMatching(const TriplePattern& pattern);

  /// True if the exact triple is present.
  bool Contains(const Triple& t) const;

  /// Opens an epoch-stamped snapshot of the store: the pinned current
  /// generation plus the delta view of the uncompacted log. O(1) plus a
  /// one-off O(delta) view build per epoch (cached and shared across
  /// snapshots of the same epoch). All the read methods below are
  /// conveniences for OpenSnapshot().<method>().
  Snapshot OpenSnapshot() const;

  /// Calls `fn` for every triple matching `pattern`. If `fn` returns
  /// false, iteration stops early.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Collects all triples matching `pattern`.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Exact number of triples matching `pattern` (counted by scan).
  size_t Count(const TriplePattern& pattern) const;

  /// O(log n) cardinality estimate for a pattern; used by the SPARQL
  /// optimizer. Both index sets give every bound combination a full
  /// index prefix, so the estimate is exact for every pattern — delta
  /// entries included.
  size_t EstimateCardinality(const TriplePattern& pattern) const;

  /// Snapshot-at-call-time cursor; see Snapshot::OpenCursor. The cursor
  /// pins its snapshot, so it stays valid across later mutations.
  TripleCursor OpenCursor(IndexOrder order, const TriplePattern& pattern) const;

  /// Snapshot-at-call-time range size; see Snapshot::EstimateRange.
  size_t EstimateRange(IndexOrder order, const TriplePattern& pattern) const;

  /// The index Scan() picks for `pattern` (longest useful bound prefix).
  /// Only ever selects from the classic trio, which every Options
  /// configuration maintains.
  IndexOrder ChooseIndex(const TriplePattern& pattern) const;

  /// Total number of triples.
  size_t size() const;

  /// Compressed bytes held by the permutation index `order` (payload
  /// plus skip table), zero when the order is not maintained. Compacts
  /// first so the number reflects every inserted triple.
  size_t IndexBytes(IndexOrder order) const;

  /// Compressed bytes across all maintained permutation indexes.
  size_t TotalIndexBytes() const;

  /// Number of distinct subjects / predicates / objects (exact, O(n)).
  size_t NumDistinctSubjects() const;
  size_t NumDistinctPredicates() const;
  size_t NumDistinctObjects() const;

  /// Merges the uncompacted delta into a fresh run generation — in
  /// parallel on the shared thread pool, one task per maintained order
  /// — and swaps it in. Runs entirely off the read path: concurrent
  /// snapshots keep streaming their pinned generation; the superseded
  /// generation is reclaimed when its last pin drops. Safe to call
  /// concurrently with readers and with the (single) writer; concurrent
  /// Compact() calls serialize. A no-op when the log is empty.
  void Compact() const;

  /// Synonym for Compact(), kept for callers of the pre-MVCC API (and
  /// benchmarks that want merge time excluded from a measurement).
  void FlushInserts() const { Compact(); }

  /// Storage introspection at the current epoch; never compacts.
  Stats GetStats() const;

  /// Strictly parses a KGNET_DELTA_COMPACT_THRESHOLD value: optional
  /// surrounding whitespace around a positive decimal integer that fits
  /// in size_t. Returns 0 for anything else (empty, garbage, trailing
  /// junk, zero, negative, overflow) — the caller falls back to
  /// kDefaultDeltaCompactThreshold. Exposed so the validation is
  /// unit-testable; the environment itself is read once and cached.
  static size_t ParseCompactThresholdEnv(const char* text);

 private:
  /// One buffered mutation; the log is strictly append-only between
  /// compactions and chronological (epoch of log_[i] = log_base_ + i).
  struct LogEntry {
    Triple triple;
    bool erase = false;
  };

  /// Builds the definite delta view of `log` against `gen` (see
  /// DeltaView). Pure; callers pass the guarded members under mu_.
  static std::shared_ptr<const DeltaView> BuildDeltaView(
      const Generation& gen, const std::vector<LogEntry>& log,
      uint64_t epoch);

  /// The empty generation every store starts from (epoch 0).
  std::shared_ptr<const Generation> MakeEmptyGeneration() const;

  /// Ensures view_cache_ matches the current epoch; returns it.
  std::shared_ptr<const DeltaView> ViewAtCurrentEpochLocked() const
      KGNET_REQUIRES(mu_);

  /// Log length at which the writer compacts: the configured threshold,
  /// scaled up geometrically with the generation so bulk loading stays
  /// O(n log n) amortized.
  size_t CompactTrigger(size_t generation_triples) const {
    return std::max(compact_threshold_, generation_triples / 4);
  }

  Options options_;
  size_t compact_threshold_ = kDefaultDeltaCompactThreshold;
  Dictionary dict_;
  /// Live-generation counter, shared with every Generation (outlives
  /// the store while snapshots do).
  std::shared_ptr<std::atomic<int64_t>> live_generations_;
  /// Completed compaction cycles.
  mutable std::atomic<uint64_t> compactions_{0};

  /// Guards the mutable storage state below: the generation pointer,
  /// the mutation log, membership, and the view cache. Held only for
  /// short pointer/append/lookup sections — never across an index
  /// merge (Compact() does its merging outside, under compact_mu_).
  mutable common::Mutex mu_;
  /// The live generation (never null; empty generation at epoch 0).
  mutable std::shared_ptr<const Generation> gen_ KGNET_GUARDED_BY(mu_);
  /// Uncompacted mutations; entry i happened at epoch log_base_ + i.
  mutable std::vector<LogEntry> log_ KGNET_GUARDED_BY(mu_);
  mutable uint64_t log_base_ KGNET_GUARDED_BY(mu_) = 0;
  /// Exact current membership (duplicate-insert / missing-erase checks
  /// and size() in O(1)).
  std::unordered_set<Triple, TripleHash> membership_ KGNET_GUARDED_BY(mu_);
  /// Delta view of log_ at the current epoch, built lazily on the first
  /// snapshot of each epoch and shared by all of them.
  mutable std::shared_ptr<const DeltaView> view_cache_ KGNET_GUARDED_BY(mu_);
  /// Serializes compaction cycles (writer-triggered and explicit).
  mutable common::Mutex compact_mu_;
};

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_TRIPLE_STORE_H_
