// An in-memory dictionary-encoded triple store with compressed,
// configurable permutation indexes.
#ifndef KGNET_RDF_TRIPLE_STORE_H_
#define KGNET_RDF_TRIPLE_STORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "rdf/dictionary.h"
#include "rdf/index_block.h"
#include "rdf/triple.h"

namespace kgnet::rdf {

/// Which of the six collation orders an index stores. With the full set,
/// every combination of bound positions has an index whose seekable
/// prefix covers it AND every triple position can stream in sorted order
/// under any single bound position — e.g. kPso streams subjects in order
/// within one predicate, the case merge joins on subject-position join
/// variables need.
enum class IndexOrder { kSpo, kPos, kOsp, kPso, kOps, kSop };

/// Number of IndexOrder values (= permutations of three positions).
inline constexpr int kNumIndexOrders = 6;

/// Lower-case index name ("spo", "pos", ..., "sop") for plan rendering.
const char* IndexOrderName(IndexOrder order);

/// The triple positions (0 = s, 1 = p, 2 = o) occupying each key slot of
/// an index order; e.g. kPos -> {1, 2, 0} (keys are p, o, s).
std::array<int, 3> IndexOrderPositions(IndexOrder order);

/// A streaming cursor over the triples matching a pattern, yielded in the
/// sorted order of one permutation index (see TripleStore::OpenCursor).
/// The cursor borrows the store's index storage, so it is valid only while
/// the store is not mutated (the store is single-writer; see below).
class TripleCursor {
 public:
  TripleCursor() = default;

  /// Advances to the next matching triple. Returns false at end of range.
  bool Next(Triple* out) {
    IndexKey key;
    while (run_.Next(&key)) {
      // Un-permute: key slot i holds triple position positions_[i].
      std::array<TermId, 3> spo = {0, 0, 0};
      for (int i = 0; i < 3; ++i) spo[positions_[i]] = key[i];
      const Triple t(spo[0], spo[1], spo[2]);
      if (pattern_.Matches(t)) {
        *out = t;
        return true;
      }
    }
    return false;
  }

  /// Upper bound on the remaining results (rest of the index range,
  /// including rows the non-prefix positions will filter out).
  size_t remaining() const { return run_.remaining(); }

  /// A fresh cursor over `count` index rows starting `offset` rows past
  /// this cursor's position (clamped), with the same pattern filter and
  /// un-permutation. This cursor is not advanced. Offsets count index
  /// rows, not matches: concatenating Slice(0, k), Slice(k, k), ...
  /// yields exactly this cursor's stream, which is what the executor's
  /// morsel-parallel scan relies on.
  TripleCursor Slice(size_t offset, size_t count) const {
    TripleCursor c;
    c.run_ = run_.Slice(offset, count);
    c.positions_ = positions_;
    c.pattern_ = pattern_;
    return c;
  }

 private:
  friend class TripleStore;
  RunCursor run_;
  std::array<int, 3> positions_ = {0, 1, 2};
  TriplePattern pattern_;
};

/// An in-memory triple store.
///
/// Triples are dictionary-encoded (see Dictionary) and maintained in
/// sorted permutation indexes stored as block-structured, delta-
/// compressed runs (see rdf/index_block.h): fixed-size blocks of varint
/// deltas on the permuted key order plus a skip table, so every lookup
/// still binary-searches block boundaries and decodes only the blocks in
/// range. Options picks the index set — all six permutations (SPO POS
/// OSP PSO OPS SOP, the RDF-3X full-permutation layout, default) or the
/// classic SPO/POS/OSP trio at half the memory — and the block size.
/// Compressed runs typically cost ~2x the raw triple bytes for the full
/// six-order set, versus 6x for flat sorted rows.
///
/// Inserts and erases are buffered and merged lazily so that bulk
/// loading stays O(n log n); each flush rebuilds the affected runs.
/// The store is single-writer; readers must not run concurrently with
/// mutation (the KGNet pipeline is phase-structured, so this suffices).
/// Concurrent *readers* are safe, including the lazy flush they may
/// trigger: the pending buffers are guarded by an annotated mutex
/// (KGNET_GUARDED_BY below, machine-checked under Clang
/// -Wthread-safety), so the first reader through FlushInserts rebuilds
/// the runs while later readers block on the lock and then see empty
/// buffers. A flush rebuilds the maintained permutation runs in
/// parallel on the shared thread pool — one task per order. Index bytes
/// are also reported per order to the process-wide tensor::MemoryMeter
/// index pool.
class TripleStore {
 public:
  /// Index configuration knobs, fixed at construction.
  struct Options {
    /// Which permutation indexes to maintain.
    enum class IndexSet {
      /// SPO POS OSP PSO OPS SOP: every bound combination is an exact
      /// index prefix AND every position can stream in sorted order
      /// under any bound prefix (merge-join friendly). Default.
      kAllSix,
      /// SPO POS OSP only: half the index memory. Every bound
      /// combination is still an exact prefix (cardinality estimates
      /// stay exact), but fewer sort orders are available, so the
      /// planner falls back to hash/bind joins where a merge join
      /// needed a missing permutation.
      kClassicTrio,
    };
    IndexSet index_set = IndexSet::kAllSix;
    /// Rows per compressed index block (see rdf/index_block.h).
    size_t block_size = kDefaultIndexBlockSize;
  };

  TripleStore() : TripleStore(Options()) {}
  explicit TripleStore(const Options& options);
  ~TripleStore();

  // Index byte accounting registers with the process-wide MemoryMeter:
  // moves hand the registered bytes over (the source is left empty);
  // copies are disallowed.
  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&& other) noexcept;
  TripleStore& operator=(TripleStore&& other) noexcept;

  /// The configuration this store was built with.
  const Options& options() const { return options_; }

  /// True when the permutation index `order` is maintained.
  bool has_index(IndexOrder order) const {
    return indexes_[static_cast<size_t>(order)].present;
  }

  /// Number of maintained permutation indexes (3 or 6).
  int num_indexes() const;

  /// The dictionary used to encode all triples in this store.
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Inserts an encoded triple. Duplicate inserts are ignored.
  /// Returns true if the triple was new.
  bool Insert(const Triple& t);

  /// Encodes and inserts a (subject, predicate, object) of Terms.
  bool Insert(const Term& s, const Term& p, const Term& o);

  /// Convenience for IRI-only triples.
  bool InsertIris(std::string_view s, std::string_view p, std::string_view o);

  /// Removes a triple. Returns true if it was present. Removal is
  /// buffered like inserts; the runs rebuild on the next read.
  bool Erase(const Triple& t);

  /// Removes every triple matching `pattern`; returns the number removed.
  size_t EraseMatching(const TriplePattern& pattern);

  /// True if the exact triple is present.
  bool Contains(const Triple& t) const;

  /// Calls `fn` for every triple matching `pattern`. If `fn` returns false,
  /// iteration stops early.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Collects all triples matching `pattern`.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Exact number of triples matching `pattern` (counted by scan).
  size_t Count(const TriplePattern& pattern) const;

  /// O(log n) cardinality estimate for a pattern; used by the SPARQL
  /// optimizer. Both index sets give every bound combination a full
  /// index prefix, so the estimate is exact for every pattern.
  size_t EstimateCardinality(const TriplePattern& pattern) const;

  /// Opens a streaming cursor over `pattern` on the index with collation
  /// `order`. Rows arrive in that index's sort order: after the bound key
  /// prefix (binary-seeked over the block skip table), they are ordered
  /// by the first unbound key position. Bound positions outside the
  /// prefix are filtered row by row. If `order` is not maintained under
  /// this store's Options, the scan falls back to ChooseIndex(pattern):
  /// results stay correct but the stream order is unspecified — callers
  /// that rely on the order (merge joins) must check has_index() first,
  /// as the streaming planner does.
  TripleCursor OpenCursor(IndexOrder order, const TriplePattern& pattern) const;

  /// Size of the index range OpenCursor(order, pattern) would walk: an
  /// O(log n) upper bound on its result count, exact when every bound
  /// position lies in the seekable prefix. The streaming planner uses this
  /// as the scan cost of each candidate index. Falls back like OpenCursor
  /// when `order` is absent.
  size_t EstimateRange(IndexOrder order, const TriplePattern& pattern) const;

  /// The index Scan() picks for `pattern` (longest useful bound prefix).
  /// Only ever selects from the classic trio, which every Options
  /// configuration maintains.
  IndexOrder ChooseIndex(const TriplePattern& pattern) const;

  /// Total number of triples.
  size_t size() const;

  /// Compressed bytes held by the permutation index `order` (payload plus
  /// skip table), zero when the order is not maintained. Flushes pending
  /// mutations first so the number reflects every inserted triple.
  size_t IndexBytes(IndexOrder order) const;

  /// Compressed bytes across all maintained permutation indexes.
  size_t TotalIndexBytes() const;

  /// Number of distinct subjects / predicates / objects (exact, O(n)).
  size_t NumDistinctSubjects() const;
  size_t NumDistinctPredicates() const;
  size_t NumDistinctObjects() const;

  /// Forces pending inserts/erases into the compressed runs. Called
  /// automatically by read operations; exposed for benchmarks that want
  /// to exclude merge time.
  void FlushInserts() const;

 private:
  struct Index {
    IndexOrder order = IndexOrder::kSpo;
    bool present = true;
    mutable CompressedRun run;
  };

  static IndexKey Permute(IndexOrder order, const Triple& t);
  static Triple Unpermute(IndexOrder order, const IndexKey& k);

  const Index& IndexFor(IndexOrder order) const;

  /// Replaces `idx`'s run with `keys`, keeping the MemoryMeter's
  /// per-order index pool in sync.
  void RebuildRun(const Index& idx, const std::vector<IndexKey>& keys) const;

  Options options_;
  Dictionary dict_;
  // Guarded by the single-writer rule, not a mutex: runs are rebuilt
  // only inside FlushInserts (under pending_mu_) and borrowed by
  // cursors only while no mutation is in flight.
  mutable std::array<Index, kNumIndexOrders> indexes_;
  /// Serializes the pending-mutation buffers across the concurrent
  /// readers that may race to trigger the lazy flush.
  mutable common::Mutex pending_mu_;
  mutable std::vector<Triple> pending_ KGNET_GUARDED_BY(pending_mu_);
  mutable std::unordered_set<Triple, TripleHash> pending_erase_
      KGNET_GUARDED_BY(pending_mu_);
  // Written only by the single writer (Insert/Erase), read by readers
  // after mutation quiesces; the phase contract covers it without a lock.
  mutable std::unordered_set<Triple, TripleHash> membership_;
};

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_TRIPLE_STORE_H_
