// An in-memory dictionary-encoded triple store with six permuted indexes.
#ifndef KGNET_RDF_TRIPLE_STORE_H_
#define KGNET_RDF_TRIPLE_STORE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace kgnet::rdf {

/// Which of the six collation orders an index stores. All permutations of
/// (s, p, o) are kept, so every combination of bound positions has an
/// index whose seekable prefix covers it AND every triple position can
/// stream in sorted order under any single bound position — e.g. kPso
/// streams subjects in order within one predicate, the case merge joins
/// on subject-position join variables need.
enum class IndexOrder { kSpo, kPos, kOsp, kPso, kOps, kSop };

/// Number of IndexOrder values (= permutations of three positions).
inline constexpr int kNumIndexOrders = 6;

/// Lower-case index name ("spo", "pos", ..., "sop") for plan rendering.
const char* IndexOrderName(IndexOrder order);

/// The triple positions (0 = s, 1 = p, 2 = o) occupying each key slot of
/// an index order; e.g. kPos -> {1, 2, 0} (keys are p, o, s).
std::array<int, 3> IndexOrderPositions(IndexOrder order);

/// A streaming cursor over the triples matching a pattern, yielded in the
/// sorted order of one permutation index (see TripleStore::OpenCursor).
/// The cursor borrows the store's index storage, so it is valid only while
/// the store is not mutated (the store is single-writer; see above).
class TripleCursor {
 public:
  TripleCursor() = default;

  /// Advances to the next matching triple. Returns false at end of range.
  bool Next(Triple* out) {
    while (pos_ < end_) {
      const Triple& t = (*rows_)[pos_++];
      if (pattern_.Matches(t)) {
        *out = t;
        return true;
      }
    }
    return false;
  }

  /// Upper bound on the remaining results (rest of the index range,
  /// including rows the non-prefix positions will filter out).
  size_t remaining() const { return end_ - pos_; }

 private:
  friend class TripleStore;
  const std::vector<Triple>* rows_ = nullptr;
  size_t pos_ = 0;
  size_t end_ = 0;
  TriplePattern pattern_;
};

/// An in-memory triple store.
///
/// Triples are dictionary-encoded (see Dictionary) and maintained in all
/// six sorted permutation indexes — SPO, POS, OSP, PSO, OPS and SOP —
/// mirroring the layout of full-permutation RDF engines (RDF-3X). The
/// cost is 6x the raw triple storage (up from 3x with the classical
/// SPO/POS/OSP trio), bought so that every (bound positions -> stream
/// order) lookup is a binary-searched prefix range instead of a full
/// scan. Inserts are buffered and merged lazily so that bulk loading
/// stays O(n log n).
///
/// The store is single-writer; readers must not run concurrently with
/// mutation (the KGNet pipeline is phase-structured, so this suffices).
class TripleStore {
 public:
  TripleStore();

  /// The dictionary used to encode all triples in this store.
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Inserts an encoded triple. Duplicate inserts are ignored.
  /// Returns true if the triple was new.
  bool Insert(const Triple& t);

  /// Encodes and inserts a (subject, predicate, object) of Terms.
  bool Insert(const Term& s, const Term& p, const Term& o);

  /// Convenience for IRI-only triples.
  bool InsertIris(std::string_view s, std::string_view p, std::string_view o);

  /// Removes a triple. Returns true if it was present.
  bool Erase(const Triple& t);

  /// Removes every triple matching `pattern`; returns the number removed.
  size_t EraseMatching(const TriplePattern& pattern);

  /// True if the exact triple is present.
  bool Contains(const Triple& t) const;

  /// Calls `fn` for every triple matching `pattern`. If `fn` returns false,
  /// iteration stops early.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Collects all triples matching `pattern`.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Exact number of triples matching `pattern` (counted by scan).
  size_t Count(const TriplePattern& pattern) const;

  /// O(log n) cardinality estimate for a pattern; used by the SPARQL
  /// optimizer. With all six permutation indexes every bound combination
  /// is a full index prefix, so the estimate is exact for every pattern.
  size_t EstimateCardinality(const TriplePattern& pattern) const;

  /// Opens a streaming cursor over `pattern` on the index with collation
  /// `order`. Rows arrive in that index's sort order: after the bound key
  /// prefix (binary-seeked), they are ordered by the first unbound key
  /// position. Bound positions outside the prefix are filtered row by row.
  TripleCursor OpenCursor(IndexOrder order, const TriplePattern& pattern) const;

  /// Size of the index range OpenCursor(order, pattern) would walk: an
  /// O(log n) upper bound on its result count, exact when every bound
  /// position lies in the seekable prefix. The streaming planner uses this
  /// as the scan cost of each candidate index.
  size_t EstimateRange(IndexOrder order, const TriplePattern& pattern) const;

  /// The index Scan() picks for `pattern` (longest useful bound prefix).
  static IndexOrder ChooseIndex(const TriplePattern& pattern);

  /// Total number of triples.
  size_t size() const;

  /// Number of distinct subjects / predicates / objects (exact, O(n)).
  size_t NumDistinctSubjects() const;
  size_t NumDistinctPredicates() const;
  size_t NumDistinctObjects() const;

  /// Forces pending inserts into the sorted indexes. Called automatically by
  /// read operations; exposed for benchmarks that want to exclude merge time.
  void FlushInserts() const;

 private:
  struct Index {
    IndexOrder order;
    // Sorted in permuted order.
    mutable std::vector<Triple> rows;
  };

  static std::array<TermId, 3> Permute(IndexOrder order, const Triple& t);
  static Triple Unpermute(IndexOrder order, const std::array<TermId, 3>& k);

  const Index& IndexFor(IndexOrder order) const;

  // Returns [lo, hi) bounds in `idx` for the bound prefix of `pattern`
  // (after permutation); remaining free positions are filtered by caller.
  std::pair<size_t, size_t> PrefixRange(const Index& idx, TermId k0,
                                        TermId k1) const;

  void ScanIndex(const Index& idx, const TriplePattern& pattern,
                 const std::function<bool(const Triple&)>& fn) const;

  Dictionary dict_;
  mutable std::array<Index, kNumIndexOrders> indexes_;
  mutable std::vector<Triple> pending_;
  mutable std::unordered_set<Triple, TripleHash> membership_;
};

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_TRIPLE_STORE_H_
