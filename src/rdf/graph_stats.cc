#include "rdf/graph_stats.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace kgnet::rdf {

GraphStats ComputeGraphStats(const TripleStore& store) {
  GraphStats stats;
  const Dictionary& dict = store.dict();
  stats.num_triples = store.size();
  stats.num_subjects = store.NumDistinctSubjects();
  stats.num_objects = store.NumDistinctObjects();
  stats.num_edge_types = store.NumDistinctPredicates();

  TermId type_pred = dict.FindIri(kRdfType);
  std::unordered_map<TermId, size_t> per_pred;
  std::unordered_map<TermId, size_t> per_class;
  size_t literal_triples = 0;
  store.Scan(TriplePattern(), [&](const Triple& t) {
    ++per_pred[t.p];
    if (dict.Lookup(t.o).is_literal()) ++literal_triples;
    if (type_pred != kNullTermId && t.p == type_pred) ++per_class[t.o];
    return true;
  });
  stats.num_literal_triples = literal_triples;
  stats.num_node_types = per_class.size();
  for (const auto& [pid, n] : per_pred)
    stats.predicate_counts[dict.Lookup(pid).lexical] = n;
  for (const auto& [cid, n] : per_class)
    stats.class_counts[dict.Lookup(cid).lexical] = n;
  return stats;
}

std::string FormatStatsTable(const std::string& kg_name,
                             const GraphStats& stats) {
  std::ostringstream os;
  os << "Knowledge Graph: " << kg_name << "\n";
  os << "  #Triples      " << stats.num_triples << "\n";
  os << "  #Subjects     " << stats.num_subjects << "\n";
  os << "  #Objects      " << stats.num_objects << "\n";
  os << "  #Edge Types   " << stats.num_edge_types << "\n";
  os << "  #Node Types   " << stats.num_node_types << "\n";
  os << "  #Literals     " << stats.num_literal_triples << "\n";
  return os.str();
}

}  // namespace kgnet::rdf
