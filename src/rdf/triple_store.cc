#include "rdf/triple_store.h"

#include <algorithm>
#include <array>

#include "common/thread_pool.h"
#include "tensor/memory_meter.h"

namespace kgnet::rdf {

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return "spo";
    case IndexOrder::kPos:
      return "pos";
    case IndexOrder::kOsp:
      return "osp";
    case IndexOrder::kPso:
      return "pso";
    case IndexOrder::kOps:
      return "ops";
    case IndexOrder::kSop:
      return "sop";
  }
  return "?";
}

std::array<int, 3> IndexOrderPositions(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return {0, 1, 2};
    case IndexOrder::kPos:
      return {1, 2, 0};
    case IndexOrder::kOsp:
      return {2, 0, 1};
    case IndexOrder::kPso:
      return {1, 0, 2};
    case IndexOrder::kOps:
      return {2, 1, 0};
    case IndexOrder::kSop:
      return {0, 2, 1};
  }
  return {0, 1, 2};
}

TripleStore::TripleStore(const Options& options) : options_(options) {
  for (int i = 0; i < kNumIndexOrders; ++i) {
    Index& idx = indexes_[static_cast<size_t>(i)];
    idx.order = static_cast<IndexOrder>(i);
    // The classic trio occupies the first three IndexOrder values.
    idx.present = options_.index_set == Options::IndexSet::kAllSix || i < 3;
    idx.run = CompressedRun(options_.block_size);
  }
}

TripleStore::~TripleStore() {
  auto& meter = tensor::MemoryMeter::Instance();
  for (const Index& idx : indexes_)
    if (idx.present)
      meter.ReleaseIndex(static_cast<int>(idx.order), idx.run.ByteSize());
}

TripleStore::TripleStore(TripleStore&& other) noexcept
    : options_(other.options_),
      dict_(std::move(other.dict_)),
      membership_(std::move(other.membership_)) {
  {
    // Moving requires exclusive access to both stores (no concurrent
    // reader can hold a cursor into either), but the guarded members
    // still move under their locks so the annotation invariant holds.
    common::MutexLock self(&pending_mu_);
    common::MutexLock theirs(&other.pending_mu_);
    pending_ = std::move(other.pending_);
    pending_erase_ = std::move(other.pending_erase_);
  }
  for (size_t i = 0; i < indexes_.size(); ++i) {
    indexes_[i].order = other.indexes_[i].order;
    indexes_[i].present = other.indexes_[i].present;
    indexes_[i].run = std::move(other.indexes_[i].run);
    // Leave the source with a deterministically empty run so its
    // destructor releases zero bytes — the registered bytes now belong
    // to this store.
    other.indexes_[i].run = CompressedRun(options_.block_size);
  }
}

TripleStore& TripleStore::operator=(TripleStore&& other) noexcept {
  if (this == &other) return *this;
  auto& meter = tensor::MemoryMeter::Instance();
  for (const Index& idx : indexes_)
    if (idx.present)
      meter.ReleaseIndex(static_cast<int>(idx.order), idx.run.ByteSize());
  options_ = other.options_;
  dict_ = std::move(other.dict_);
  {
    common::MutexLock self(&pending_mu_);
    common::MutexLock theirs(&other.pending_mu_);
    pending_ = std::move(other.pending_);
    pending_erase_ = std::move(other.pending_erase_);
  }
  membership_ = std::move(other.membership_);
  for (size_t i = 0; i < indexes_.size(); ++i) {
    indexes_[i].order = other.indexes_[i].order;
    indexes_[i].present = other.indexes_[i].present;
    indexes_[i].run = std::move(other.indexes_[i].run);
    other.indexes_[i].run = CompressedRun(options_.block_size);
  }
  return *this;
}

IndexKey TripleStore::Permute(IndexOrder order, const Triple& t) {
  // Derived from IndexOrderPositions so the two stay consistent by
  // construction (seek/sort keys and the planner's ordered-slot logic
  // must agree on every permutation).
  const std::array<int, 3> positions = IndexOrderPositions(order);
  auto at = [&](int pos) { return pos == 0 ? t.s : (pos == 1 ? t.p : t.o); };
  return {at(positions[0]), at(positions[1]), at(positions[2])};
}

Triple TripleStore::Unpermute(IndexOrder order, const IndexKey& k) {
  // Inverse of Permute: key slot i holds triple position
  // IndexOrderPositions(order)[i].
  std::array<TermId, 3> spo = {0, 0, 0};
  const std::array<int, 3> positions = IndexOrderPositions(order);
  for (int i = 0; i < 3; ++i) spo[positions[i]] = k[i];
  return Triple(spo[0], spo[1], spo[2]);
}

bool TripleStore::Insert(const Triple& t) {
  if (!membership_.insert(t).second) return false;
  common::MutexLock lk(&pending_mu_);
  pending_.push_back(t);
  return true;
}

bool TripleStore::Insert(const Term& s, const Term& p, const Term& o) {
  return Insert(Triple(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)));
}

bool TripleStore::InsertIris(std::string_view s, std::string_view p,
                             std::string_view o) {
  return Insert(Triple(dict_.InternIri(s), dict_.InternIri(p),
                       dict_.InternIri(o)));
}

void TripleStore::RebuildRun(const Index& idx,
                             const std::vector<IndexKey>& keys) const {
  auto& meter = tensor::MemoryMeter::Instance();
  const int tag = static_cast<int>(idx.order);
  meter.ReleaseIndex(tag, idx.run.ByteSize());
  idx.run.Assign(keys);
  meter.AllocateIndex(tag, idx.run.ByteSize());
}

void TripleStore::FlushInserts() const {
  // pending_mu_ is held for the whole rebuild: when several readers race
  // to trigger the lazy flush, the first does the work and the rest
  // block here, then observe empty buffers and return. (Before the lock
  // existed, two concurrent readers could both enter the rebuild and
  // race on the runs — caught by the annotation pass for this gate.)
  common::MutexLock lk(&pending_mu_);
  if (pending_.empty() && pending_erase_.empty()) return;
  // Local aliases for the ParallelFor body: the thread-safety analysis
  // does not propagate held locks into lambdas, so the lambda reads
  // through these references bound while pending_mu_ is held.
  const std::vector<Triple>& pending = pending_;
  const std::unordered_set<Triple, TripleHash>& pending_erase =
      pending_erase_;
  // The per-order rebuilds are independent — each task reads the shared
  // pending buffers (const) and writes only its own index's run and
  // MemoryMeter pool slot — so the six sorts + run encodes fan out on
  // the shared pool, one task per maintained order. Safe under the
  // store's single-writer rule (no reader runs concurrently with a
  // mutation, and the flush is the mutation).
  common::ParallelFor(0, indexes_.size(), 1, [&](size_t b, size_t e) {
    for (size_t oi = b; oi < e; ++oi) {
      const Index& idx = indexes_[oi];
      if (!idx.present) continue;
      // Decode the old run minus the buffered erases, then merge the
      // buffered inserts in permuted sort order and re-encode. One O(n)
      // rebuild per flush, the same asymptotics as the old in-place
      // merge of flat sorted rows.
      std::vector<IndexKey> keys;
      keys.reserve(idx.run.size() + pending.size());
      RunCursor c = idx.run.Cursor(0, idx.run.size());
      IndexKey k;
      while (c.Next(&k)) {
        if (!pending_erase.empty() &&
            pending_erase.count(Unpermute(idx.order, k)) > 0)
          continue;
        keys.push_back(k);
      }
      const auto old_end = static_cast<std::ptrdiff_t>(keys.size());
      for (const Triple& t : pending) keys.push_back(Permute(idx.order, t));
      std::sort(keys.begin() + old_end, keys.end());
      std::inplace_merge(keys.begin(), keys.begin() + old_end, keys.end());
      RebuildRun(idx, keys);
    }
  });
  pending_.clear();
  pending_erase_.clear();
}

bool TripleStore::Erase(const Triple& t) {
  if (membership_.erase(t) == 0) return false;
  common::MutexLock lk(&pending_mu_);
  // A still-pending insert of t never reached the runs: drop it directly.
  auto it = std::find(pending_.begin(), pending_.end(), t);
  if (it != pending_.end()) {
    pending_.erase(it);
    return true;
  }
  pending_erase_.insert(t);
  return true;
}

size_t TripleStore::EraseMatching(const TriplePattern& pattern) {
  std::vector<Triple> victims = Match(pattern);
  for (const Triple& t : victims) Erase(t);
  return victims.size();
}

bool TripleStore::Contains(const Triple& t) const {
  return membership_.count(t) > 0;
}

IndexOrder TripleStore::ChooseIndex(const TriplePattern& pattern) const {
  // Pick an index whose permuted key has the longest bound prefix. The
  // classic trio — maintained under every Options configuration — covers
  // all bound combinations; the full set only adds more sort orders.
  const bool s = pattern.s != kNullTermId;
  const bool p = pattern.p != kNullTermId;
  const bool o = pattern.o != kNullTermId;
  if (s) {
    // (s,?,?), (s,p,?), (s,p,o) -> SPO; (s,?,o) -> OSP (prefix o,s)
    return (o && !p) ? IndexOrder::kOsp : IndexOrder::kSpo;
  }
  if (p) return IndexOrder::kPos;  // (?,p,?), (?,p,o)
  if (o) return IndexOrder::kOsp;  // (?,?,o)
  return IndexOrder::kSpo;
}

const TripleStore::Index& TripleStore::IndexFor(IndexOrder order) const {
  return indexes_[static_cast<size_t>(order)];
}

int TripleStore::num_indexes() const {
  int n = 0;
  for (const Index& idx : indexes_)
    if (idx.present) ++n;
  return n;
}

void TripleStore::Scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  TripleCursor c = OpenCursor(ChooseIndex(pattern), pattern);
  Triple t;
  while (c.Next(&t))
    if (!fn(t)) return;
}

TripleCursor TripleStore::OpenCursor(IndexOrder order,
                                     const TriplePattern& pattern) const {
  FlushInserts();
  const Index* idx = &IndexFor(order);
  if (!idx->present) idx = &IndexFor(ChooseIndex(pattern));
  const IndexKey key =
      Permute(idx->order, Triple(pattern.s, pattern.p, pattern.o));
  // Seekable prefix: leading bound key slots (the first unbound slot ends
  // it; later bound slots are filtered row by row).
  int prefix_len = 0;
  while (prefix_len < 3 && key[static_cast<size_t>(prefix_len)] != kNullTermId)
    ++prefix_len;
  auto [lo, hi] = idx->run.PrefixRange(prefix_len, key);
  TripleCursor c;
  c.run_ = idx->run.Cursor(lo, hi);
  c.positions_ = IndexOrderPositions(idx->order);
  c.pattern_ = pattern;
  return c;
}

size_t TripleStore::EstimateRange(IndexOrder order,
                                  const TriplePattern& pattern) const {
  TripleCursor c = OpenCursor(order, pattern);
  return c.remaining();
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Scan(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t TripleStore::Count(const TriplePattern& pattern) const {
  size_t n = 0;
  Scan(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

size_t TripleStore::EstimateCardinality(const TriplePattern& pattern) const {
  FlushInserts();
  const bool s = pattern.s != kNullTermId;
  const bool p = pattern.p != kNullTermId;
  const bool o = pattern.o != kNullTermId;
  if (s && p && o)
    return Contains(Triple(pattern.s, pattern.p, pattern.o)) ? 1 : 0;
  if (!s && !p && !o) return size();
  // ChooseIndex covers every partially-bound pattern with a full-prefix
  // index, so the range size is the exact cardinality.
  return EstimateRange(ChooseIndex(pattern), pattern);
}

size_t TripleStore::size() const {
  return membership_.size();
}

size_t TripleStore::IndexBytes(IndexOrder order) const {
  FlushInserts();
  const Index& idx = IndexFor(order);
  return idx.present ? idx.run.ByteSize() : 0;
}

size_t TripleStore::TotalIndexBytes() const {
  size_t total = 0;
  for (int i = 0; i < kNumIndexOrders; ++i)
    total += IndexBytes(static_cast<IndexOrder>(i));
  return total;
}

namespace {

/// Distinct values of triple position `pos` (0=s, 1=p, 2=o), counted by
/// streaming the index whose first key slot is that position.
size_t CountDistinct(const TripleStore& store, IndexOrder order, int pos) {
  TripleCursor c = store.OpenCursor(order, TriplePattern());
  size_t n = 0;
  TermId prev = kNullTermId;
  bool first = true;
  Triple t;
  while (c.Next(&t)) {
    const TermId v = pos == 0 ? t.s : (pos == 1 ? t.p : t.o);
    if (first || v != prev) {
      ++n;
      prev = v;
      first = false;
    }
  }
  return n;
}

}  // namespace

size_t TripleStore::NumDistinctSubjects() const {
  return CountDistinct(*this, IndexOrder::kSpo, 0);
}

size_t TripleStore::NumDistinctPredicates() const {
  return CountDistinct(*this, IndexOrder::kPos, 1);
}

size_t TripleStore::NumDistinctObjects() const {
  return CountDistinct(*this, IndexOrder::kOsp, 2);
}

}  // namespace kgnet::rdf
