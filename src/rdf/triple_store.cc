#include "rdf/triple_store.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/thread_pool.h"
#include "tensor/memory_meter.h"

namespace kgnet::rdf {

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return "spo";
    case IndexOrder::kPos:
      return "pos";
    case IndexOrder::kOsp:
      return "osp";
    case IndexOrder::kPso:
      return "pso";
    case IndexOrder::kOps:
      return "ops";
    case IndexOrder::kSop:
      return "sop";
  }
  return "?";
}

std::array<int, 3> IndexOrderPositions(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return {0, 1, 2};
    case IndexOrder::kPos:
      return {1, 2, 0};
    case IndexOrder::kOsp:
      return {2, 0, 1};
    case IndexOrder::kPso:
      return {1, 0, 2};
    case IndexOrder::kOps:
      return {2, 1, 0};
    case IndexOrder::kSop:
      return {0, 2, 1};
  }
  return {0, 1, 2};
}

IndexKey PermuteTriple(IndexOrder order, const Triple& t) {
  const std::array<int, 3> positions = IndexOrderPositions(order);
  auto at = [&](int pos) { return pos == 0 ? t.s : (pos == 1 ? t.p : t.o); };
  return {at(positions[0]), at(positions[1]), at(positions[2])};
}

Triple UnpermuteKey(IndexOrder order, const IndexKey& k) {
  std::array<TermId, 3> spo = {0, 0, 0};
  const std::array<int, 3> positions = IndexOrderPositions(order);
  for (int i = 0; i < 3; ++i) spo[positions[i]] = k[i];
  return Triple(spo[0], spo[1], spo[2]);
}

namespace {

/// Pick an index whose permuted key has the longest bound prefix. The
/// classic trio — maintained under every Options configuration — covers
/// all bound combinations; the full set only adds more sort orders.
IndexOrder ChooseIndexForPattern(const TriplePattern& pattern) {
  const bool s = pattern.s != kNullTermId;
  const bool p = pattern.p != kNullTermId;
  const bool o = pattern.o != kNullTermId;
  if (s) {
    // (s,?,?), (s,p,?), (s,p,o) -> SPO; (s,?,o) -> OSP (prefix o,s)
    return (o && !p) ? IndexOrder::kOsp : IndexOrder::kSpo;
  }
  if (p) return IndexOrder::kPos;  // (?,p,?), (?,p,o)
  if (o) return IndexOrder::kOsp;  // (?,?,o)
  return IndexOrder::kSpo;
}

/// Resolves the effective compaction threshold: an explicit Options
/// value wins; otherwise KGNET_DELTA_COMPACT_THRESHOLD, read and
/// validated once per process with a warn-once fallback to the
/// built-in default (same contract as KGNET_NUM_THREADS).
size_t ResolveCompactThreshold(size_t from_options) {
  if (from_options > 0) return from_options;
  static const size_t kEnvDefault = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("KGNET_DELTA_COMPACT_THRESHOLD");
    if (env == nullptr) return kDefaultDeltaCompactThreshold;
    const size_t parsed = TripleStore::ParseCompactThresholdEnv(env);
    if (parsed > 0) return parsed;
    std::fprintf(stderr,
                 "kgnet: ignoring invalid KGNET_DELTA_COMPACT_THRESHOLD=\"%s\" "
                 "(want a positive integer); using %zu\n",
                 env, kDefaultDeltaCompactThreshold);
    return kDefaultDeltaCompactThreshold;
  }();
  return kEnvDefault;
}

}  // namespace

size_t TripleStore::ParseCompactThresholdEnv(const char* text) {
  if (text == nullptr) return 0;
  const char* p = text;
  while (*p == ' ' || *p == '\t') ++p;
  // A leading non-digit (including '+', '-', or end of string) is
  // invalid: the accepted grammar is digits only.
  if (*p < '0' || *p > '9') return 0;
  size_t value = 0;
  while (*p >= '0' && *p <= '9') {
    const auto digit = static_cast<size_t>(*p - '0');
    if (value > (std::numeric_limits<size_t>::max() - digit) / 10) return 0;
    value = value * 10 + digit;
    ++p;
  }
  while (*p == ' ' || *p == '\t') ++p;
  if (*p != '\0') return 0;
  // "0" parses but is not a positive threshold; 0 is the error value.
  return value;
}

// ---------------------------------------------------------------------------
// Generation

Generation::Generation(std::array<Run, kNumIndexOrders> runs,
                       size_t num_triples, uint64_t epoch,
                       std::shared_ptr<std::atomic<int64_t>> live)
    : runs_(std::move(runs)),
      num_triples_(num_triples),
      epoch_(epoch),
      live_(std::move(live)) {
  auto& meter = tensor::MemoryMeter::Instance();
  for (const Run& r : runs_)
    if (r.present)
      meter.AllocateIndex(static_cast<int>(r.order), r.run.ByteSize());
  if (live_) live_->fetch_add(1);
}

Generation::~Generation() {
  auto& meter = tensor::MemoryMeter::Instance();
  for (const Run& r : runs_)
    if (r.present)
      meter.ReleaseIndex(static_cast<int>(r.order), r.run.ByteSize());
  if (live_) live_->fetch_sub(1);
}

// ---------------------------------------------------------------------------
// DeltaView

std::pair<size_t, size_t> DeltaView::OrderDelta::PrefixRange(
    int prefix_len, const IndexKey& prefix) const {
  if (prefix_len <= 0) return {0, keys.size()};
  const auto cmp = [prefix_len](const IndexKey& a, const IndexKey& b) {
    for (int i = 0; i < prefix_len; ++i) {
      const auto slot = static_cast<size_t>(i);
      if (a[slot] != b[slot]) return a[slot] < b[slot];
    }
    return false;
  };
  const auto lo = std::lower_bound(keys.begin(), keys.end(), prefix, cmp);
  const auto hi = std::upper_bound(lo, keys.end(), prefix, cmp);
  return {static_cast<size_t>(lo - keys.begin()),
          static_cast<size_t>(hi - keys.begin())};
}

std::shared_ptr<const DeltaView> TripleStore::BuildDeltaView(
    const Generation& gen, const std::vector<LogEntry>& log, uint64_t epoch) {
  auto view = std::make_shared<DeltaView>();
  view->epoch_ = epoch;
  if (log.empty()) return view;
  // Last-op-wins collapse: scan newest-to-oldest and keep the first
  // occurrence of each triple. The set serves keyed lookups only; the
  // surviving entries are re-sorted per order below, so no result
  // depends on hash iteration order.
  std::vector<std::pair<Triple, bool>> ops;  // (triple, is_erase)
  ops.reserve(log.size());
  {
    std::unordered_set<Triple, TripleHash> seen;
    seen.reserve(log.size());
    for (size_t i = log.size(); i > 0; --i) {
      const LogEntry& e = log[i - 1];
      if (seen.insert(e.triple).second) ops.emplace_back(e.triple, e.erase);
    }
  }
  // Keep only definite entries — an insert the generation lacks, an
  // erase of a key the generation has. Insert-then-erase of a new
  // triple and erase-then-reinsert of a generation key net out here,
  // which is what makes every surviving entry worth exactly +-1 in any
  // range count.
  const CompressedRun& spo = gen.run(IndexOrder::kSpo).run;
  std::vector<std::pair<Triple, bool>> entries;
  entries.reserve(ops.size());
  for (const auto& [t, is_erase] : ops) {
    const IndexKey key = PermuteTriple(IndexOrder::kSpo, t);
    const auto [lo, hi] = spo.PrefixRange(3, key);
    const bool in_gen = lo < hi;
    if (is_erase != in_gen) continue;
    entries.emplace_back(t, is_erase);
    if (is_erase)
      ++view->num_tombstones_;
    else
      ++view->num_inserts_;
  }
  for (int oi = 0; oi < kNumIndexOrders; ++oi) {
    const auto order = static_cast<IndexOrder>(oi);
    if (!gen.run(order).present) continue;
    DeltaView::OrderDelta& od = view->orders_[static_cast<size_t>(oi)];
    std::vector<std::pair<IndexKey, uint8_t>> rows;
    rows.reserve(entries.size());
    for (const auto& [t, is_erase] : entries)
      rows.emplace_back(PermuteTriple(order, t), is_erase ? 1 : 0);
    std::sort(rows.begin(), rows.end());
    od.keys.reserve(rows.size());
    od.tombstone.reserve(rows.size());
    od.ins_before.reserve(rows.size() + 1);
    od.ins_before.push_back(0);
    for (const auto& [k, tomb] : rows) {
      od.keys.push_back(k);
      od.tombstone.push_back(tomb);
      od.ins_before.push_back(od.ins_before.back() + (tomb != 0 ? 0u : 1u));
    }
  }
  return view;
}

// ---------------------------------------------------------------------------
// Snapshot

size_t Snapshot::size() const {
  if (!gen_) return 0;
  size_t n = gen_->num_triples();
  if (view_) n = n + view_->num_inserts() - view_->num_tombstones();
  return n;
}

bool Snapshot::Contains(const Triple& t) const {
  if (!gen_) return false;
  const IndexKey key = PermuteTriple(IndexOrder::kSpo, t);
  if (view_) {
    const DeltaView::OrderDelta& od = view_->order_delta(IndexOrder::kSpo);
    const auto it = std::lower_bound(od.keys.begin(), od.keys.end(), key);
    if (it != od.keys.end() && *it == key)
      return od.tombstone[static_cast<size_t>(it - od.keys.begin())] == 0;
  }
  const auto [lo, hi] = gen_->run(IndexOrder::kSpo).run.PrefixRange(3, key);
  return lo < hi;
}

bool Snapshot::has_index(IndexOrder order) const {
  return gen_ != nullptr && gen_->run(order).present;
}

IndexOrder Snapshot::ChooseIndex(const TriplePattern& pattern) const {
  return ChooseIndexForPattern(pattern);
}

TripleCursor Snapshot::OpenCursor(IndexOrder order,
                                  const TriplePattern& pattern) const {
  TripleCursor c;
  c.pattern_ = pattern;
  c.positions_ = IndexOrderPositions(order);
  if (!gen_) return c;
  const Generation::Run* run = &gen_->run(order);
  if (!run->present) run = &gen_->run(ChooseIndexForPattern(pattern));
  const IndexOrder eff = run->order;
  const IndexKey key =
      PermuteTriple(eff, Triple(pattern.s, pattern.p, pattern.o));
  // Seekable prefix: leading bound key slots (the first unbound slot
  // ends it; later bound slots are filtered row by row).
  int prefix_len = 0;
  while (prefix_len < 3 && key[static_cast<size_t>(prefix_len)] != kNullTermId)
    ++prefix_len;
  const auto [lo, hi] = run->run.PrefixRange(prefix_len, key);
  c.run_ = run->run.Cursor(lo, hi);
  c.positions_ = IndexOrderPositions(eff);
  c.gen_ = gen_;
  if (view_) {
    const DeltaView::OrderDelta& od = view_->order_delta(eff);
    if (!od.keys.empty()) {
      const auto [dlo, dhi] = od.PrefixRange(prefix_len, key);
      if (dlo < dhi) {
        c.delta_ = &od;
        c.dpos_ = dlo;
        c.dend_ = dhi;
        c.view_ = view_;
      }
    }
  }
  return c;
}

size_t Snapshot::EstimateRange(IndexOrder order,
                               const TriplePattern& pattern) const {
  return OpenCursor(order, pattern).remaining();
}

size_t Snapshot::EstimateCardinality(const TriplePattern& pattern) const {
  const bool s = pattern.s != kNullTermId;
  const bool p = pattern.p != kNullTermId;
  const bool o = pattern.o != kNullTermId;
  if (s && p && o)
    return Contains(Triple(pattern.s, pattern.p, pattern.o)) ? 1 : 0;
  if (!s && !p && !o) return size();
  // ChooseIndex covers every partially-bound pattern with a full-prefix
  // index, so the range size is the exact cardinality.
  return EstimateRange(ChooseIndexForPattern(pattern), pattern);
}

void Snapshot::Scan(const TriplePattern& pattern,
                    const std::function<bool(const Triple&)>& fn) const {
  TripleCursor c = OpenCursor(ChooseIndexForPattern(pattern), pattern);
  Triple t;
  while (c.Next(&t))
    if (!fn(t)) return;
}

std::vector<Triple> Snapshot::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Scan(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t Snapshot::Count(const TriplePattern& pattern) const {
  size_t n = 0;
  Scan(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

// ---------------------------------------------------------------------------
// TripleStore

TripleStore::TripleStore(const Options& options)
    : options_(options),
      compact_threshold_(
          ResolveCompactThreshold(options.delta_compact_threshold)),
      live_generations_(std::make_shared<std::atomic<int64_t>>(0)) {
  gen_ = MakeEmptyGeneration();
}

std::shared_ptr<const Generation> TripleStore::MakeEmptyGeneration() const {
  std::array<Generation::Run, kNumIndexOrders> runs;
  for (int i = 0; i < kNumIndexOrders; ++i) {
    Generation::Run& r = runs[static_cast<size_t>(i)];
    r.order = static_cast<IndexOrder>(i);
    // The classic trio occupies the first three IndexOrder values.
    r.present = options_.index_set == Options::IndexSet::kAllSix || i < 3;
    r.run = CompressedRun(options_.block_size);
  }
  return std::make_shared<const Generation>(std::move(runs), 0, 0,
                                            live_generations_);
}

// Moves require exclusive access to both stores (no concurrent reader,
// writer, or compactor in either), but the guarded members still move
// under their locks so the annotation invariant holds. Snapshots and
// cursors opened before the move stay valid — they pin their own
// generation, not the store.
TripleStore::TripleStore(TripleStore&& other) noexcept
    : options_(other.options_),
      compact_threshold_(other.compact_threshold_),
      dict_(std::move(other.dict_)),
      live_generations_(std::move(other.live_generations_)),
      compactions_(other.compactions_.load()) {
  common::MutexLock theirs(&other.mu_);
  gen_ = std::move(other.gen_);
  log_ = std::move(other.log_);
  log_base_ = other.log_base_;
  membership_ = std::move(other.membership_);
  view_cache_ = std::move(other.view_cache_);
  // Leave the source empty but valid: a fresh counter and a fresh empty
  // generation at epoch 0. The moved generation (and its MemoryMeter
  // bytes) now belongs to this store.
  other.live_generations_ = std::make_shared<std::atomic<int64_t>>(0);
  other.gen_ = other.MakeEmptyGeneration();
  other.log_.clear();
  other.log_base_ = 0;
  other.compactions_.store(0);
}

TripleStore& TripleStore::operator=(TripleStore&& other) noexcept {
  if (this == &other) return *this;
  options_ = other.options_;
  compact_threshold_ = other.compact_threshold_;
  dict_ = std::move(other.dict_);
  compactions_.store(other.compactions_.load());
  {
    common::MutexLock self(&mu_);
    common::MutexLock theirs(&other.mu_);
    // Dropping our old generation releases its bytes now unless a
    // snapshot still pins it (then: when the last pin drops).
    gen_ = std::move(other.gen_);
    log_ = std::move(other.log_);
    log_base_ = other.log_base_;
    membership_ = std::move(other.membership_);
    view_cache_ = std::move(other.view_cache_);
    live_generations_ = std::move(other.live_generations_);
    other.live_generations_ = std::make_shared<std::atomic<int64_t>>(0);
    other.gen_ = other.MakeEmptyGeneration();
    other.log_.clear();
    other.log_base_ = 0;
    other.view_cache_.reset();
  }
  other.compactions_.store(0);
  return *this;
}

bool TripleStore::Insert(const Triple& t) {
  size_t log_len = 0;
  size_t gen_triples = 0;
  {
    common::MutexLock lk(&mu_);
    if (!membership_.insert(t).second) return false;
    log_.push_back({t, false});
    log_len = log_.size();
    gen_triples = gen_->num_triples();
  }
  // The compaction trigger runs on the writer, outside mu_ — never on a
  // read path.
  if (log_len >= CompactTrigger(gen_triples)) Compact();
  return true;
}

bool TripleStore::Insert(const Term& s, const Term& p, const Term& o) {
  return Insert(Triple(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)));
}

bool TripleStore::InsertIris(std::string_view s, std::string_view p,
                             std::string_view o) {
  return Insert(
      Triple(dict_.InternIri(s), dict_.InternIri(p), dict_.InternIri(o)));
}

bool TripleStore::Erase(const Triple& t) {
  size_t log_len = 0;
  size_t gen_triples = 0;
  {
    common::MutexLock lk(&mu_);
    if (membership_.erase(t) == 0) return false;
    log_.push_back({t, true});
    log_len = log_.size();
    gen_triples = gen_->num_triples();
  }
  if (log_len >= CompactTrigger(gen_triples)) Compact();
  return true;
}

size_t TripleStore::EraseMatching(const TriplePattern& pattern) {
  std::vector<Triple> victims = Match(pattern);
  for (const Triple& t : victims) Erase(t);
  return victims.size();
}

bool TripleStore::Contains(const Triple& t) const {
  common::MutexLock lk(&mu_);
  return membership_.count(t) > 0;
}

std::shared_ptr<const DeltaView> TripleStore::ViewAtCurrentEpochLocked()
    const {
  const uint64_t epoch = log_base_ + log_.size();
  if (!view_cache_ || view_cache_->epoch() != epoch)
    view_cache_ = BuildDeltaView(*gen_, log_, epoch);
  return view_cache_;
}

Snapshot TripleStore::OpenSnapshot() const {
  common::MutexLock lk(&mu_);
  Snapshot s;
  s.gen_ = gen_;
  s.view_ = ViewAtCurrentEpochLocked();
  s.epoch_ = log_base_ + log_.size();
  return s;
}

void TripleStore::Compact() const {
  // One compaction cycle at a time: writer-triggered and explicit calls
  // serialize here, without ever holding mu_ across the merge — readers
  // keep opening snapshots of the outgoing generation throughout.
  common::MutexLock cycle(&compact_mu_);
  std::shared_ptr<const Generation> gen;
  std::shared_ptr<const DeltaView> view;
  uint64_t watermark = 0;
  {
    common::MutexLock lk(&mu_);
    if (log_.empty()) return;
    watermark = log_base_ + log_.size();
    view = ViewAtCurrentEpochLocked();
    gen = gen_;
  }
  // Merge run + delta per maintained order, one task per order on the
  // shared pool (each task writes only its own slot). The single writer
  // may keep appending meanwhile: entries at epoch >= watermark are not
  // part of `view` and survive the log trim below.
  auto runs = std::make_shared<std::array<Generation::Run, kNumIndexOrders>>();
  const size_t block_size = options_.block_size;
  common::ParallelFor(0, kNumIndexOrders, 1, [&](size_t b, size_t e) {
    for (size_t oi = b; oi < e; ++oi) {
      const auto order = static_cast<IndexOrder>(oi);
      const Generation::Run& src = gen->run(order);
      Generation::Run& dst = (*runs)[oi];
      dst.order = order;
      dst.present = src.present;
      dst.run = CompressedRun(block_size);
      if (!src.present) continue;
      const DeltaView::OrderDelta& od = view->order_delta(order);
      std::vector<IndexKey> keys;
      keys.reserve(src.run.size() + od.keys.size());
      RunCursor c = src.run.Cursor(0, src.run.size());
      IndexKey k;
      size_t di = 0;
      while (c.Next(&k)) {
        while (di < od.keys.size() && od.keys[di] < k) {
          // Strictly-smaller pending delta entries are inserts: a
          // tombstone's key exists in the run, so the merge meets it at
          // equality below.
          keys.push_back(od.keys[di]);
          ++di;
        }
        if (di < od.keys.size() && od.keys[di] == k) {
          const bool tomb = od.tombstone[di] != 0;
          ++di;
          if (tomb) continue;  // suppressed row
        }
        keys.push_back(k);
      }
      for (; di < od.keys.size(); ++di) keys.push_back(od.keys[di]);
      dst.run.Assign(keys);
    }
  });
  auto next = std::make_shared<const Generation>(
      std::move(*runs),
      gen->num_triples() + view->num_inserts() - view->num_tombstones(),
      watermark, live_generations_);
  {
    common::MutexLock lk(&mu_);
    gen_ = std::move(next);
    const auto consumed = static_cast<std::ptrdiff_t>(watermark - log_base_);
    log_.erase(log_.begin(), log_.begin() + consumed);
    log_base_ = watermark;
    // Any cached view was built against the superseded generation.
    view_cache_.reset();
  }
  compactions_.fetch_add(1);
  // The superseded generation frees its runs (and MemoryMeter bytes)
  // right here if nothing pins it — otherwise when its last snapshot
  // drops. That release is the whole GC.
}

void TripleStore::Scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  OpenSnapshot().Scan(pattern, fn);
}

TripleCursor TripleStore::OpenCursor(IndexOrder order,
                                     const TriplePattern& pattern) const {
  return OpenSnapshot().OpenCursor(order, pattern);
}

size_t TripleStore::EstimateRange(IndexOrder order,
                                  const TriplePattern& pattern) const {
  return OpenSnapshot().EstimateRange(order, pattern);
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  return OpenSnapshot().Match(pattern);
}

size_t TripleStore::Count(const TriplePattern& pattern) const {
  return OpenSnapshot().Count(pattern);
}

size_t TripleStore::EstimateCardinality(const TriplePattern& pattern) const {
  return OpenSnapshot().EstimateCardinality(pattern);
}

IndexOrder TripleStore::ChooseIndex(const TriplePattern& pattern) const {
  return ChooseIndexForPattern(pattern);
}

size_t TripleStore::size() const {
  common::MutexLock lk(&mu_);
  return membership_.size();
}

size_t TripleStore::IndexBytes(IndexOrder order) const {
  Compact();
  std::shared_ptr<const Generation> gen;
  {
    common::MutexLock lk(&mu_);
    gen = gen_;
  }
  const Generation::Run& r = gen->run(order);
  return r.present ? r.run.ByteSize() : 0;
}

size_t TripleStore::TotalIndexBytes() const {
  Compact();
  std::shared_ptr<const Generation> gen;
  {
    common::MutexLock lk(&mu_);
    gen = gen_;
  }
  size_t total = 0;
  for (int i = 0; i < kNumIndexOrders; ++i) {
    const Generation::Run& r = gen->run(static_cast<IndexOrder>(i));
    if (r.present) total += r.run.ByteSize();
  }
  return total;
}

TripleStore::Stats TripleStore::GetStats() const {
  Stats st;
  std::shared_ptr<const Generation> gen;
  std::shared_ptr<const DeltaView> view;
  {
    common::MutexLock lk(&mu_);
    gen = gen_;
    view = ViewAtCurrentEpochLocked();
    st.epoch = log_base_ + log_.size();
    st.delta_ops = log_.size();
    st.num_triples = membership_.size();
  }
  st.generation_epoch = gen->epoch();
  st.generation_triples = gen->num_triples();
  for (int i = 0; i < kNumIndexOrders; ++i) {
    const Generation::Run& r = gen->run(static_cast<IndexOrder>(i));
    if (!r.present) continue;
    st.run_bytes[static_cast<size_t>(i)] = r.run.ByteSize();
    st.total_run_bytes += r.run.ByteSize();
  }
  st.delta_inserts = view->num_inserts();
  st.delta_tombstones = view->num_tombstones();
  st.live_generations = live_generations_->load();
  st.compactions = compactions_.load();
  return st;
}

namespace {

/// Distinct values of triple position `pos` (0=s, 1=p, 2=o), counted by
/// streaming the index whose first key slot is that position.
size_t CountDistinct(const TripleStore& store, IndexOrder order, int pos) {
  TripleCursor c = store.OpenCursor(order, TriplePattern());
  size_t n = 0;
  TermId prev = kNullTermId;
  bool first = true;
  Triple t;
  while (c.Next(&t)) {
    const TermId v = pos == 0 ? t.s : (pos == 1 ? t.p : t.o);
    if (first || v != prev) {
      ++n;
      prev = v;
      first = false;
    }
  }
  return n;
}

}  // namespace

size_t TripleStore::NumDistinctSubjects() const {
  return CountDistinct(*this, IndexOrder::kSpo, 0);
}

size_t TripleStore::NumDistinctPredicates() const {
  return CountDistinct(*this, IndexOrder::kPos, 1);
}

size_t TripleStore::NumDistinctObjects() const {
  return CountDistinct(*this, IndexOrder::kOsp, 2);
}

}  // namespace kgnet::rdf
