#include "rdf/triple_store.h"

#include <algorithm>
#include <array>

namespace kgnet::rdf {

namespace {

// Comparator over permuted key order.
struct KeyLess {
  IndexOrder order;
  bool operator()(const Triple& a, const Triple& b) const {
    auto ka = Permute(order, a);
    auto kb = Permute(order, b);
    return ka < kb;
  }
  static std::array<TermId, 3> Permute(IndexOrder order, const Triple& t) {
    switch (order) {
      case IndexOrder::kSpo:
        return {t.s, t.p, t.o};
      case IndexOrder::kPos:
        return {t.p, t.o, t.s};
      case IndexOrder::kOsp:
        return {t.o, t.s, t.p};
    }
    return {0, 0, 0};
  }
};

}  // namespace

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return "spo";
    case IndexOrder::kPos:
      return "pos";
    case IndexOrder::kOsp:
      return "osp";
  }
  return "?";
}

std::array<int, 3> IndexOrderPositions(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return {0, 1, 2};
    case IndexOrder::kPos:
      return {1, 2, 0};
    case IndexOrder::kOsp:
      return {2, 0, 1};
  }
  return {0, 1, 2};
}

TripleStore::TripleStore() {
  spo_.order = IndexOrder::kSpo;
  pos_.order = IndexOrder::kPos;
  osp_.order = IndexOrder::kOsp;
}

std::array<TermId, 3> TripleStore::Permute(IndexOrder order, const Triple& t) {
  return KeyLess::Permute(order, t);
}

Triple TripleStore::Unpermute(IndexOrder order,
                              const std::array<TermId, 3>& k) {
  switch (order) {
    case IndexOrder::kSpo:
      return Triple(k[0], k[1], k[2]);
    case IndexOrder::kPos:
      return Triple(k[2], k[0], k[1]);
    case IndexOrder::kOsp:
      return Triple(k[1], k[2], k[0]);
  }
  return Triple();
}

bool TripleStore::Insert(const Triple& t) {
  if (!membership_.insert(t).second) return false;
  pending_.push_back(t);
  return true;
}

bool TripleStore::Insert(const Term& s, const Term& p, const Term& o) {
  return Insert(Triple(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)));
}

bool TripleStore::InsertIris(std::string_view s, std::string_view p,
                             std::string_view o) {
  return Insert(Triple(dict_.InternIri(s), dict_.InternIri(p),
                       dict_.InternIri(o)));
}

void TripleStore::FlushInserts() const {
  if (pending_.empty()) return;
  for (Index* idx : {&spo_, &pos_, &osp_}) {
    size_t old_size = idx->rows.size();
    idx->rows.insert(idx->rows.end(), pending_.begin(), pending_.end());
    KeyLess less{idx->order};
    std::sort(idx->rows.begin() + old_size, idx->rows.end(), less);
    std::inplace_merge(idx->rows.begin(), idx->rows.begin() + old_size,
                       idx->rows.end(), less);
  }
  pending_.clear();
}

bool TripleStore::Erase(const Triple& t) {
  auto it = membership_.find(t);
  if (it == membership_.end()) return false;
  membership_.erase(it);
  FlushInserts();
  for (Index* idx : {&spo_, &pos_, &osp_}) {
    KeyLess less{idx->order};
    auto range = std::equal_range(idx->rows.begin(), idx->rows.end(), t, less);
    idx->rows.erase(range.first, range.second);
  }
  return true;
}

size_t TripleStore::EraseMatching(const TriplePattern& pattern) {
  std::vector<Triple> victims = Match(pattern);
  for (const Triple& t : victims) Erase(t);
  return victims.size();
}

bool TripleStore::Contains(const Triple& t) const {
  return membership_.count(t) > 0;
}

std::pair<size_t, size_t> TripleStore::PrefixRange(const Index& idx, TermId k0,
                                                   TermId k1) const {
  const auto& rows = idx.rows;
  auto key_of = [&](const Triple& t) { return KeyLess::Permute(idx.order, t); };

  auto lo_it = rows.begin();
  auto hi_it = rows.end();
  if (k0 != kNullTermId) {
    lo_it = std::lower_bound(rows.begin(), rows.end(), k0,
                             [&](const Triple& t, TermId v) {
                               return key_of(t)[0] < v;
                             });
    hi_it = std::upper_bound(lo_it, rows.end(), k0,
                             [&](TermId v, const Triple& t) {
                               return v < key_of(t)[0];
                             });
    if (k1 != kNullTermId) {
      auto lo2 = std::lower_bound(lo_it, hi_it, k1,
                                  [&](const Triple& t, TermId v) {
                                    return key_of(t)[1] < v;
                                  });
      auto hi2 = std::upper_bound(lo2, hi_it, k1,
                                  [&](TermId v, const Triple& t) {
                                    return v < key_of(t)[1];
                                  });
      lo_it = lo2;
      hi_it = hi2;
    }
  }
  return {static_cast<size_t>(lo_it - rows.begin()),
          static_cast<size_t>(hi_it - rows.begin())};
}

void TripleStore::ScanIndex(const Index& idx, const TriplePattern& pattern,
                            const std::function<bool(const Triple&)>& fn) const {
  std::array<TermId, 3> key =
      KeyLess::Permute(idx.order, Triple(pattern.s, pattern.p, pattern.o));
  auto [lo, hi] = PrefixRange(idx, key[0], key[0] ? key[1] : kNullTermId);
  for (size_t i = lo; i < hi; ++i) {
    const Triple& t = idx.rows[i];
    if (pattern.Matches(t)) {
      if (!fn(t)) return;
    }
  }
}

IndexOrder TripleStore::ChooseIndex(const TriplePattern& pattern) {
  // Pick the index whose permuted key has the longest bound prefix.
  const bool s = pattern.s != kNullTermId;
  const bool p = pattern.p != kNullTermId;
  const bool o = pattern.o != kNullTermId;
  if (s) {
    // (s,?,?), (s,p,?), (s,p,o) -> SPO; (s,?,o) -> OSP
    return (o && !p) ? IndexOrder::kOsp : IndexOrder::kSpo;
  }
  if (p) return IndexOrder::kPos;  // (?,p,?), (?,p,o)
  if (o) return IndexOrder::kOsp;  // (?,?,o)
  return IndexOrder::kSpo;
}

const TripleStore::Index& TripleStore::IndexFor(IndexOrder order) const {
  switch (order) {
    case IndexOrder::kSpo:
      return spo_;
    case IndexOrder::kPos:
      return pos_;
    case IndexOrder::kOsp:
      return osp_;
  }
  return spo_;
}

void TripleStore::Scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  FlushInserts();
  ScanIndex(IndexFor(ChooseIndex(pattern)), pattern, fn);
}

TripleCursor TripleStore::OpenCursor(IndexOrder order,
                                     const TriplePattern& pattern) const {
  FlushInserts();
  const Index& idx = IndexFor(order);
  std::array<TermId, 3> key =
      KeyLess::Permute(order, Triple(pattern.s, pattern.p, pattern.o));
  auto [lo, hi] = PrefixRange(idx, key[0], key[0] ? key[1] : kNullTermId);
  TripleCursor c;
  c.rows_ = &idx.rows;
  c.pos_ = lo;
  c.end_ = hi;
  c.pattern_ = pattern;
  return c;
}

size_t TripleStore::EstimateRange(IndexOrder order,
                                  const TriplePattern& pattern) const {
  FlushInserts();
  const Index& idx = IndexFor(order);
  std::array<TermId, 3> key =
      KeyLess::Permute(order, Triple(pattern.s, pattern.p, pattern.o));
  auto [lo, hi] = PrefixRange(idx, key[0], key[0] ? key[1] : kNullTermId);
  return hi - lo;
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Scan(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t TripleStore::Count(const TriplePattern& pattern) const {
  size_t n = 0;
  Scan(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

size_t TripleStore::EstimateCardinality(const TriplePattern& pattern) const {
  FlushInserts();
  const bool s = pattern.s != kNullTermId;
  const bool p = pattern.p != kNullTermId;
  const bool o = pattern.o != kNullTermId;
  if (s && p && o) return Contains(Triple(pattern.s, pattern.p, pattern.o)) ? 1 : 0;
  if (!s && !p && !o) return size();

  const Index* idx = nullptr;
  TermId k0 = kNullTermId, k1 = kNullTermId;
  if (s && p) {
    idx = &spo_;
    k0 = pattern.s;
    k1 = pattern.p;
  } else if (p && o) {
    idx = &pos_;
    k0 = pattern.p;
    k1 = pattern.o;
  } else if (s && o) {
    idx = &osp_;
    k0 = pattern.o;
    k1 = pattern.s;
  } else if (s) {
    idx = &spo_;
    k0 = pattern.s;
  } else if (p) {
    idx = &pos_;
    k0 = pattern.p;
  } else {
    idx = &osp_;
    k0 = pattern.o;
  }
  auto [lo, hi] = PrefixRange(*idx, k0, k1);
  return hi - lo;
}

size_t TripleStore::size() const {
  return membership_.size();
}

size_t TripleStore::NumDistinctSubjects() const {
  FlushInserts();
  size_t n = 0;
  TermId prev = kNullTermId;
  bool first = true;
  for (const Triple& t : spo_.rows) {
    if (first || t.s != prev) {
      ++n;
      prev = t.s;
      first = false;
    }
  }
  return n;
}

size_t TripleStore::NumDistinctPredicates() const {
  FlushInserts();
  size_t n = 0;
  TermId prev = kNullTermId;
  bool first = true;
  for (const Triple& t : pos_.rows) {
    if (first || t.p != prev) {
      ++n;
      prev = t.p;
      first = false;
    }
  }
  return n;
}

size_t TripleStore::NumDistinctObjects() const {
  FlushInserts();
  size_t n = 0;
  TermId prev = kNullTermId;
  bool first = true;
  for (const Triple& t : osp_.rows) {
    if (first || t.o != prev) {
      ++n;
      prev = t.o;
      first = false;
    }
  }
  return n;
}

}  // namespace kgnet::rdf
