#include "rdf/triple_store.h"

#include <algorithm>
#include <array>

namespace kgnet::rdf {

namespace {

// Comparator over permuted key order.
struct KeyLess {
  IndexOrder order;
  bool operator()(const Triple& a, const Triple& b) const {
    auto ka = Permute(order, a);
    auto kb = Permute(order, b);
    return ka < kb;
  }
  // Derived from IndexOrderPositions so the two stay consistent by
  // construction (seek/sort keys and the planner's ordered-slot logic
  // must agree on every permutation).
  static std::array<TermId, 3> Permute(IndexOrder order, const Triple& t) {
    const std::array<int, 3> positions = IndexOrderPositions(order);
    auto at = [&](int pos) { return pos == 0 ? t.s : (pos == 1 ? t.p : t.o); };
    return {at(positions[0]), at(positions[1]), at(positions[2])};
  }
};

}  // namespace

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return "spo";
    case IndexOrder::kPos:
      return "pos";
    case IndexOrder::kOsp:
      return "osp";
    case IndexOrder::kPso:
      return "pso";
    case IndexOrder::kOps:
      return "ops";
    case IndexOrder::kSop:
      return "sop";
  }
  return "?";
}

std::array<int, 3> IndexOrderPositions(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return {0, 1, 2};
    case IndexOrder::kPos:
      return {1, 2, 0};
    case IndexOrder::kOsp:
      return {2, 0, 1};
    case IndexOrder::kPso:
      return {1, 0, 2};
    case IndexOrder::kOps:
      return {2, 1, 0};
    case IndexOrder::kSop:
      return {0, 2, 1};
  }
  return {0, 1, 2};
}

TripleStore::TripleStore() {
  for (int i = 0; i < kNumIndexOrders; ++i)
    indexes_[i].order = static_cast<IndexOrder>(i);
}

std::array<TermId, 3> TripleStore::Permute(IndexOrder order, const Triple& t) {
  return KeyLess::Permute(order, t);
}

Triple TripleStore::Unpermute(IndexOrder order,
                              const std::array<TermId, 3>& k) {
  // Inverse of Permute: key slot i holds triple position
  // IndexOrderPositions(order)[i].
  std::array<TermId, 3> spo = {0, 0, 0};
  const std::array<int, 3> positions = IndexOrderPositions(order);
  for (int i = 0; i < 3; ++i) spo[positions[i]] = k[i];
  return Triple(spo[0], spo[1], spo[2]);
}

bool TripleStore::Insert(const Triple& t) {
  if (!membership_.insert(t).second) return false;
  pending_.push_back(t);
  return true;
}

bool TripleStore::Insert(const Term& s, const Term& p, const Term& o) {
  return Insert(Triple(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)));
}

bool TripleStore::InsertIris(std::string_view s, std::string_view p,
                             std::string_view o) {
  return Insert(Triple(dict_.InternIri(s), dict_.InternIri(p),
                       dict_.InternIri(o)));
}

void TripleStore::FlushInserts() const {
  if (pending_.empty()) return;
  for (Index& idx : indexes_) {
    size_t old_size = idx.rows.size();
    idx.rows.insert(idx.rows.end(), pending_.begin(), pending_.end());
    KeyLess less{idx.order};
    std::sort(idx.rows.begin() + old_size, idx.rows.end(), less);
    std::inplace_merge(idx.rows.begin(), idx.rows.begin() + old_size,
                       idx.rows.end(), less);
  }
  pending_.clear();
}

bool TripleStore::Erase(const Triple& t) {
  auto it = membership_.find(t);
  if (it == membership_.end()) return false;
  membership_.erase(it);
  FlushInserts();
  for (Index& idx : indexes_) {
    KeyLess less{idx.order};
    auto range = std::equal_range(idx.rows.begin(), idx.rows.end(), t, less);
    idx.rows.erase(range.first, range.second);
  }
  return true;
}

size_t TripleStore::EraseMatching(const TriplePattern& pattern) {
  std::vector<Triple> victims = Match(pattern);
  for (const Triple& t : victims) Erase(t);
  return victims.size();
}

bool TripleStore::Contains(const Triple& t) const {
  return membership_.count(t) > 0;
}

std::pair<size_t, size_t> TripleStore::PrefixRange(const Index& idx, TermId k0,
                                                   TermId k1) const {
  const auto& rows = idx.rows;
  auto key_of = [&](const Triple& t) { return KeyLess::Permute(idx.order, t); };

  auto lo_it = rows.begin();
  auto hi_it = rows.end();
  if (k0 != kNullTermId) {
    lo_it = std::lower_bound(rows.begin(), rows.end(), k0,
                             [&](const Triple& t, TermId v) {
                               return key_of(t)[0] < v;
                             });
    hi_it = std::upper_bound(lo_it, rows.end(), k0,
                             [&](TermId v, const Triple& t) {
                               return v < key_of(t)[0];
                             });
    if (k1 != kNullTermId) {
      auto lo2 = std::lower_bound(lo_it, hi_it, k1,
                                  [&](const Triple& t, TermId v) {
                                    return key_of(t)[1] < v;
                                  });
      auto hi2 = std::upper_bound(lo2, hi_it, k1,
                                  [&](TermId v, const Triple& t) {
                                    return v < key_of(t)[1];
                                  });
      lo_it = lo2;
      hi_it = hi2;
    }
  }
  return {static_cast<size_t>(lo_it - rows.begin()),
          static_cast<size_t>(hi_it - rows.begin())};
}

void TripleStore::ScanIndex(const Index& idx, const TriplePattern& pattern,
                            const std::function<bool(const Triple&)>& fn) const {
  std::array<TermId, 3> key =
      KeyLess::Permute(idx.order, Triple(pattern.s, pattern.p, pattern.o));
  auto [lo, hi] = PrefixRange(idx, key[0], key[0] ? key[1] : kNullTermId);
  for (size_t i = lo; i < hi; ++i) {
    const Triple& t = idx.rows[i];
    if (pattern.Matches(t)) {
      if (!fn(t)) return;
    }
  }
}

IndexOrder TripleStore::ChooseIndex(const TriplePattern& pattern) {
  // Pick an index whose permuted key has the longest bound prefix. Every
  // bound combination has a full-prefix index; ties keep the classical
  // SPO/POS/OSP trio for stable plan rendering.
  const bool s = pattern.s != kNullTermId;
  const bool p = pattern.p != kNullTermId;
  const bool o = pattern.o != kNullTermId;
  if (s) {
    // (s,?,?), (s,p,?), (s,p,o) -> SPO; (s,?,o) -> OSP (prefix o,s)
    return (o && !p) ? IndexOrder::kOsp : IndexOrder::kSpo;
  }
  if (p) return IndexOrder::kPos;  // (?,p,?), (?,p,o)
  if (o) return IndexOrder::kOsp;  // (?,?,o)
  return IndexOrder::kSpo;
}

const TripleStore::Index& TripleStore::IndexFor(IndexOrder order) const {
  return indexes_[static_cast<size_t>(order)];
}

void TripleStore::Scan(const TriplePattern& pattern,
                       const std::function<bool(const Triple&)>& fn) const {
  FlushInserts();
  ScanIndex(IndexFor(ChooseIndex(pattern)), pattern, fn);
}

TripleCursor TripleStore::OpenCursor(IndexOrder order,
                                     const TriplePattern& pattern) const {
  FlushInserts();
  const Index& idx = IndexFor(order);
  std::array<TermId, 3> key =
      KeyLess::Permute(order, Triple(pattern.s, pattern.p, pattern.o));
  auto [lo, hi] = PrefixRange(idx, key[0], key[0] ? key[1] : kNullTermId);
  TripleCursor c;
  c.rows_ = &idx.rows;
  c.pos_ = lo;
  c.end_ = hi;
  c.pattern_ = pattern;
  return c;
}

size_t TripleStore::EstimateRange(IndexOrder order,
                                  const TriplePattern& pattern) const {
  FlushInserts();
  const Index& idx = IndexFor(order);
  std::array<TermId, 3> key =
      KeyLess::Permute(order, Triple(pattern.s, pattern.p, pattern.o));
  auto [lo, hi] = PrefixRange(idx, key[0], key[0] ? key[1] : kNullTermId);
  return hi - lo;
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Scan(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t TripleStore::Count(const TriplePattern& pattern) const {
  size_t n = 0;
  Scan(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

size_t TripleStore::EstimateCardinality(const TriplePattern& pattern) const {
  FlushInserts();
  const bool s = pattern.s != kNullTermId;
  const bool p = pattern.p != kNullTermId;
  const bool o = pattern.o != kNullTermId;
  if (s && p && o) return Contains(Triple(pattern.s, pattern.p, pattern.o)) ? 1 : 0;
  if (!s && !p && !o) return size();
  // ChooseIndex covers every partially-bound pattern with a full-prefix
  // index, so the range size is the exact cardinality.
  return EstimateRange(ChooseIndex(pattern), pattern);
}

size_t TripleStore::size() const {
  return membership_.size();
}

size_t TripleStore::NumDistinctSubjects() const {
  FlushInserts();
  size_t n = 0;
  TermId prev = kNullTermId;
  bool first = true;
  for (const Triple& t : IndexFor(IndexOrder::kSpo).rows) {
    if (first || t.s != prev) {
      ++n;
      prev = t.s;
      first = false;
    }
  }
  return n;
}

size_t TripleStore::NumDistinctPredicates() const {
  FlushInserts();
  size_t n = 0;
  TermId prev = kNullTermId;
  bool first = true;
  for (const Triple& t : IndexFor(IndexOrder::kPos).rows) {
    if (first || t.p != prev) {
      ++n;
      prev = t.p;
      first = false;
    }
  }
  return n;
}

size_t TripleStore::NumDistinctObjects() const {
  FlushInserts();
  size_t n = 0;
  TermId prev = kNullTermId;
  bool first = true;
  for (const Triple& t : IndexFor(IndexOrder::kOsp).rows) {
    if (first || t.o != prev) {
      ++n;
      prev = t.o;
      first = false;
    }
  }
  return n;
}

}  // namespace kgnet::rdf
