// Dictionary-encoding of RDF terms: Term <-> dense TermId.
#ifndef KGNET_RDF_DICTIONARY_H_
#define KGNET_RDF_DICTIONARY_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "rdf/term.h"

namespace kgnet::rdf {

/// Bidirectional mapping between Terms and dense TermIds.
///
/// Ids start at 1; 0 is the reserved wildcard (kNullTermId). The
/// dictionary owns the Term storage; `Lookup` returns stable references
/// valid for the dictionary's lifetime.
///
/// Concurrency (the MVCC read-path contract, docs/STORAGE.md): `Lookup`,
/// `Contains`, `size` and `num_terms` are lock-free and safe against
/// concurrent `Intern` calls — terms live in doubling-size blocks that
/// are never moved once published, so a reference handed out by `Lookup`
/// survives any amount of later interning. `Intern` and `Find` serialize
/// on an internal mutex (they share the string index, whose rehash is
/// not concurrency-safe); both are off the per-row hot path — constants
/// intern at plan/bind time, not per row.
///
/// Visibility: a reader may `Lookup` any id it obtained from a
/// `TripleStore` snapshot or a `Find`/`Intern` result. Snapshot-carried
/// ids are published via the store's mutation log mutex and `Find`
/// results via the dictionary mutex, so the corresponding Term write
/// always happens-before the read; `size()` pairs its acquire with the
/// release store in `Intern` for callers probing ids directly.
class Dictionary {
 public:
  Dictionary();
  ~Dictionary();
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  /// Moves require exclusive access to both dictionaries (same contract
  /// as TripleStore's moves). The source is left empty but valid.
  Dictionary(Dictionary&& other) noexcept;
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// Interns `term`, returning its id (existing or newly assigned).
  TermId Intern(const Term& term);

  /// Convenience: interns an IRI.
  TermId InternIri(std::string_view iri) {
    return Intern(Term::Iri(std::string(iri)));
  }

  /// Returns the id of `term` or kNullTermId if it was never interned.
  TermId Find(const Term& term) const;

  /// Returns the id of the IRI `iri` or kNullTermId.
  TermId FindIri(std::string_view iri) const {
    return Find(Term::Iri(std::string(iri)));
  }

  /// Returns the term for a valid id. Precondition: 1 <= id < size().
  const Term& Lookup(TermId id) const {
    const size_t b = BlockIndex(id);
    return blocks_[b].load(std::memory_order_acquire)[OffsetInBlock(id, b)];
  }

  /// True if `id` names an interned term.
  bool Contains(TermId id) const { return id >= 1 && id < size(); }

  /// Number of slots including the reserved id 0.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Number of interned terms.
  size_t num_terms() const { return size() - 1; }

 private:
  /// Block b holds ids [kBase*(2^b - 1), kBase*(2^(b+1) - 1)) — 4096
  /// slots in block 0, doubling per block. 21 blocks cover every value
  /// a 32-bit TermId can take; the pointer array is 168 bytes.
  static constexpr size_t kBaseShift = 12;
  static constexpr size_t kBase = size_t{1} << kBaseShift;
  static constexpr size_t kNumBlocks = 21;

  static size_t BlockIndex(TermId id) {
    const size_t m = (static_cast<size_t>(id) >> kBaseShift) + 1;
    return static_cast<size_t>(63 - __builtin_clzll(m));
  }
  static size_t OffsetInBlock(TermId id, size_t block) {
    return static_cast<size_t>(id) - kBase * ((size_t{1} << block) - 1);
  }
  static size_t BlockCapacity(size_t block) { return kBase << block; }

  /// Published term count; the release store in Intern is the read
  /// barrier for the slot written just before it.
  std::atomic<size_t> size_{0};
  /// Lock-free reader view of the blocks. Allocated by Intern under
  /// mu_, published with a release store, never freed or moved until
  /// destruction (ownership lives in owned_).
  std::atomic<Term*> blocks_[kNumBlocks] = {};

  mutable common::Mutex mu_;
  std::unique_ptr<Term[]> owned_[kNumBlocks] KGNET_GUARDED_BY(mu_);
  std::unordered_map<std::string, TermId> index_ KGNET_GUARDED_BY(mu_);
};

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_DICTIONARY_H_
