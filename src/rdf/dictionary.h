// Dictionary-encoding of RDF terms: Term <-> dense TermId.
#ifndef KGNET_RDF_DICTIONARY_H_
#define KGNET_RDF_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace kgnet::rdf {

/// Bidirectional mapping between Terms and dense TermIds.
///
/// Ids start at 1; 0 is the reserved wildcard (kNullTermId). The dictionary
/// owns the Term storage; `Lookup` returns stable references valid for the
/// dictionary's lifetime.
class Dictionary {
 public:
  Dictionary() { terms_.emplace_back(); /* slot for id 0 */ }

  /// Interns `term`, returning its id (existing or newly assigned).
  TermId Intern(const Term& term);

  /// Convenience: interns an IRI.
  TermId InternIri(std::string_view iri) {
    return Intern(Term::Iri(std::string(iri)));
  }

  /// Returns the id of `term` or kNullTermId if it was never interned.
  TermId Find(const Term& term) const;

  /// Returns the id of the IRI `iri` or kNullTermId.
  TermId FindIri(std::string_view iri) const {
    return Find(Term::Iri(std::string(iri)));
  }

  /// Returns the term for a valid id. Precondition: 1 <= id < size().
  const Term& Lookup(TermId id) const { return terms_[id]; }

  /// True if `id` names an interned term.
  bool Contains(TermId id) const { return id >= 1 && id < terms_.size(); }

  /// Number of slots including the reserved id 0.
  size_t size() const { return terms_.size(); }

  /// Number of interned terms.
  size_t num_terms() const { return terms_.size() - 1; }

 private:
  std::vector<Term> terms_;
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_DICTIONARY_H_
