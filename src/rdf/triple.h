// Dictionary-encoded triples and triple patterns.
#ifndef KGNET_RDF_TRIPLE_H_
#define KGNET_RDF_TRIPLE_H_

#include <array>
#include <cstdint>
#include <functional>

#include "rdf/term.h"

namespace kgnet::rdf {

/// A dictionary-encoded RDF triple.
struct Triple {
  TermId s = kNullTermId;
  TermId p = kNullTermId;
  TermId o = kNullTermId;

  Triple() = default;
  Triple(TermId subject, TermId predicate, TermId object)
      : s(subject), p(predicate), o(object) {}

  bool operator==(const Triple& t) const {
    return s == t.s && p == t.p && o == t.o;
  }
  bool operator<(const Triple& t) const {
    if (s != t.s) return s < t.s;
    if (p != t.p) return p < t.p;
    return o < t.o;
  }
};

/// A triple pattern: kNullTermId in any position matches every term.
struct TriplePattern {
  TermId s = kNullTermId;
  TermId p = kNullTermId;
  TermId o = kNullTermId;

  TriplePattern() = default;
  TriplePattern(TermId subject, TermId predicate, TermId object)
      : s(subject), p(predicate), o(object) {}

  bool Matches(const Triple& t) const {
    return (s == kNullTermId || s == t.s) &&
           (p == kNullTermId || p == t.p) &&
           (o == kNullTermId || o == t.o);
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    size_t h = std::hash<uint64_t>()(
        (static_cast<uint64_t>(t.s) << 32) | t.p);
    return h * 1000003u ^ std::hash<uint32_t>()(t.o);
  }
};

}  // namespace kgnet::rdf

#endif  // KGNET_RDF_TRIPLE_H_
