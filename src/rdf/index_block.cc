#include "rdf/index_block.h"

#include <algorithm>
#include <limits>

namespace kgnet::rdf {

namespace {

void PutVarint(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint32_t GetVarint(const uint8_t** p) {
  uint32_t v = 0;
  int shift = 0;
  for (;;) {
    const uint8_t b = *(*p)++;
    v |= static_cast<uint32_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

}  // namespace

// Gap encoding against the previous key. The run is sorted, so the
// first slot that differs from `prev` increased; everything left of it
// is equal and omitted, everything right of it restarts as full values.
void CompressedRun::EncodeOne(const IndexKey& prev, const IndexKey& cur,
                              std::vector<uint8_t>* out) {
  const TermId d0 = cur[0] - prev[0];
  PutVarint(d0, out);
  if (d0 != 0) {
    PutVarint(cur[1], out);
    PutVarint(cur[2], out);
    return;
  }
  const TermId d1 = cur[1] - prev[1];
  PutVarint(d1, out);
  if (d1 != 0) {
    PutVarint(cur[2], out);
    return;
  }
  PutVarint(cur[2] - prev[2], out);
}

void CompressedRun::DecodeOne(const uint8_t** p, IndexKey* key) {
  const uint32_t d0 = GetVarint(p);
  if (d0 != 0) {
    (*key)[0] += d0;
    (*key)[1] = GetVarint(p);
    (*key)[2] = GetVarint(p);
    return;
  }
  const uint32_t d1 = GetVarint(p);
  if (d1 != 0) {
    (*key)[1] += d1;
    (*key)[2] = GetVarint(p);
    return;
  }
  (*key)[2] += GetVarint(p);
}

void CompressedRun::Assign(const std::vector<IndexKey>& keys) {
  bytes_.clear();
  skip_.clear();
  size_ = keys.size();
  skip_.reserve((size_ + block_size_ - 1) / block_size_);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % block_size_ == 0)
      skip_.push_back({keys[i], static_cast<uint64_t>(bytes_.size())});
    else
      EncodeOne(keys[i - 1], keys[i], &bytes_);
  }
  bytes_.shrink_to_fit();
}

bool RunCursor::Next(IndexKey* out) {
  if (pos_ >= end_) return false;
  const size_t bs = run_->block_size_;
  const size_t in_block = pos_ % bs;
  if (in_block == 0) {
    // Block starts resync from the skip table (also covers pos_ == 0).
    const CompressedRun::SkipEntry& blk = run_->skip_[pos_ / bs];
    prev_ = blk.first;
    ptr_ = run_->bytes_.data() + blk.byte_offset;
  } else if (!primed_) {
    // First call lands mid-block: decode forward from the block start.
    const CompressedRun::SkipEntry& blk = run_->skip_[pos_ / bs];
    prev_ = blk.first;
    ptr_ = run_->bytes_.data() + blk.byte_offset;
    for (size_t skip = 0; skip < in_block; ++skip)
      CompressedRun::DecodeOne(&ptr_, &prev_);
  } else {
    CompressedRun::DecodeOne(&ptr_, &prev_);
  }
  primed_ = true;
  *out = prev_;
  ++pos_;
  return true;
}

size_t CompressedRun::LowerBound(const IndexKey& key) const {
  if (size_ == 0) return 0;
  // Candidate block: the last one whose first key is < `key` (earlier
  // blocks hold only smaller keys; later blocks start at >= `key`).
  auto it = std::lower_bound(
      skip_.begin(), skip_.end(), key,
      [](const SkipEntry& e, const IndexKey& k) { return e.first < k; });
  const size_t b =
      it == skip_.begin() ? 0 : static_cast<size_t>(it - skip_.begin()) - 1;
  const size_t start = b * block_size_;
  const size_t stop = std::min(start + block_size_, size_);
  RunCursor c = Cursor(start, stop);
  IndexKey k;
  size_t row = start;
  while (c.Next(&k)) {
    if (!(k < key)) return row;
    ++row;
  }
  return row;  // every key of the block is smaller: next block starts >=
}

size_t CompressedRun::UpperBound(const IndexKey& key) const {
  if (size_ == 0) return 0;
  // Candidate block: the last one whose first key is <= `key`.
  auto it = std::upper_bound(
      skip_.begin(), skip_.end(), key,
      [](const IndexKey& k, const SkipEntry& e) { return k < e.first; });
  const size_t b =
      it == skip_.begin() ? 0 : static_cast<size_t>(it - skip_.begin()) - 1;
  const size_t start = b * block_size_;
  const size_t stop = std::min(start + block_size_, size_);
  RunCursor c = Cursor(start, stop);
  IndexKey k;
  size_t row = start;
  while (c.Next(&k)) {
    if (key < k) return row;
    ++row;
  }
  return row;
}

std::pair<size_t, size_t> CompressedRun::PrefixRange(
    int prefix_len, const IndexKey& prefix) const {
  if (prefix_len <= 0) return {0, size_};
  constexpr TermId kMax = std::numeric_limits<TermId>::max();
  IndexKey lo = {prefix[0], 0, 0};
  IndexKey hi = {prefix[0], kMax, kMax};
  if (prefix_len >= 2) {
    lo[1] = hi[1] = prefix[1];
    if (prefix_len >= 3) lo[2] = hi[2] = prefix[2];
  }
  return {LowerBound(lo), UpperBound(hi)};
}

void CompressedRun::DecodeAll(std::vector<IndexKey>* out) const {
  out->reserve(out->size() + size_);
  RunCursor c = Cursor(0, size_);
  IndexKey k;
  while (c.Next(&k)) out->push_back(k);
}

}  // namespace kgnet::rdf
