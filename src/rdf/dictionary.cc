#include "rdf/dictionary.h"

namespace kgnet::rdf {

TermId Dictionary::Intern(const Term& term) {
  std::string key = term.EncodeKey();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::Find(const Term& term) const {
  auto it = index_.find(term.EncodeKey());
  return it == index_.end() ? kNullTermId : it->second;
}

}  // namespace kgnet::rdf
