#include "rdf/dictionary.h"

namespace kgnet::rdf {

Dictionary::Dictionary() {
  // Slot for the reserved wildcard id 0.
  common::MutexLock lock(&mu_);
  owned_[0] = std::make_unique<Term[]>(BlockCapacity(0));
  blocks_[0].store(owned_[0].get(), std::memory_order_release);
  size_.store(1, std::memory_order_release);
}

Dictionary::~Dictionary() = default;

Dictionary::Dictionary(Dictionary&& other) noexcept {
  common::MutexLock theirs(&other.mu_);
  common::MutexLock mine(&mu_);
  for (size_t b = 0; b < kNumBlocks; ++b) {
    owned_[b] = std::move(other.owned_[b]);
    blocks_[b].store(owned_[b].get(), std::memory_order_release);
    other.blocks_[b].store(nullptr, std::memory_order_release);
  }
  index_ = std::move(other.index_);
  size_.store(other.size_.load(std::memory_order_relaxed),
              std::memory_order_release);
  other.index_.clear();
  other.owned_[0] = std::make_unique<Term[]>(BlockCapacity(0));
  other.blocks_[0].store(other.owned_[0].get(), std::memory_order_release);
  other.size_.store(1, std::memory_order_release);
}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this == &other) return *this;
  common::MutexLock mine(&mu_);
  common::MutexLock theirs(&other.mu_);
  for (size_t b = 0; b < kNumBlocks; ++b) {
    owned_[b] = std::move(other.owned_[b]);
    blocks_[b].store(owned_[b].get(), std::memory_order_release);
    other.blocks_[b].store(nullptr, std::memory_order_release);
  }
  index_ = std::move(other.index_);
  size_.store(other.size_.load(std::memory_order_relaxed),
              std::memory_order_release);
  other.index_.clear();
  other.owned_[0] = std::make_unique<Term[]>(BlockCapacity(0));
  other.blocks_[0].store(other.owned_[0].get(), std::memory_order_release);
  other.size_.store(1, std::memory_order_release);
  return *this;
}

TermId Dictionary::Intern(const Term& term) {
  std::string key = term.EncodeKey();
  common::MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const size_t id = size_.load(std::memory_order_relaxed);
  const size_t b = BlockIndex(static_cast<TermId>(id));
  if (owned_[b] == nullptr) {
    owned_[b] = std::make_unique<Term[]>(BlockCapacity(b));
    blocks_[b].store(owned_[b].get(), std::memory_order_release);
  }
  owned_[b][OffsetInBlock(static_cast<TermId>(id), b)] = term;
  size_.store(id + 1, std::memory_order_release);
  index_.emplace(std::move(key), static_cast<TermId>(id));
  return static_cast<TermId>(id);
}

TermId Dictionary::Find(const Term& term) const {
  const std::string key = term.EncodeKey();
  common::MutexLock lock(&mu_);
  auto it = index_.find(key);
  return it == index_.end() ? kNullTermId : it->second;
}

}  // namespace kgnet::rdf
