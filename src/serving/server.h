// kgnet_serve: the network front end of the platform (docs/SERVING.md).
//
// A KgServer exposes one SparqlMlService over TCP (loopback by default)
// speaking the framed-JSON protocol of serving/protocol.h. Threading
// model:
//
//   - one acceptor thread accepts connections and pushes them onto a
//     bounded queue (admission control: a full queue is answered with an
//     immediate ResourceExhausted response and a close);
//   - a fixed pool of session workers each pop a connection and serve
//     its requests one at a time until the peer closes or idles out. A
//     connection that waited in the queue longer than the request
//     deadline is answered with an overload response instead of served.
//
// Request execution:
//
//   - plain SPARQL reads (SELECT/ASK with no ML constructs) run
//     CONCURRENTLY: each request opens one MVCC snapshot and executes on
//     the shared QueryEngine; the response reports the snapshot's
//     epoch/delta, and snapshot isolation guarantees it never observes a
//     torn write (tests/test_serving_stress.cc).
//   - updates, TrainGML and SPARQL-ML queries route to the serialized
//     service path (SparqlMlService keeps per-query mutable state and
//     the TripleStore has a single-writer contract), guarded by one
//     server mutex.
//   - infer_* requests run concurrently through the InferBatcher /
//     EmbedRowCache (serving/infer_batcher.h): one batched model call
//     per window, bitwise-identical answers.
#ifndef KGNET_SERVING_SERVER_H_
#define KGNET_SERVING_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <list>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/thread_annotations.h"
#include "core/sparqlml.h"
#include "serving/circuit_breaker.h"
#include "serving/infer_batcher.h"
#include "serving/protocol.h"

namespace kgnet::serving {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back with
  /// port() after Start).
  int port = 0;
  /// Session workers = max concurrently served connections.
  int num_workers = 4;
  /// Accepted connections waiting for a worker beyond this are rejected
  /// immediately with ResourceExhausted.
  int queue_depth = 64;
  /// Hard cap on request frame bodies.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// A connection with no complete request for this long is dropped, so
  /// idle or half-closed peers cannot pin a session worker forever.
  int idle_timeout_ms = 30000;
  /// Max time a connection may wait in the accept queue before it is
  /// answered with an overload response instead of being served.
  int request_deadline_ms = 2000;
  /// Inference batching window (see BatcherOptions).
  BatcherOptions batcher;
  /// Capacity (rows) of the hot embedding-row LRU; 0 disables it.
  size_t embed_cache_rows = 256;
  /// Circuit breaker around the inference / SPARQL-ML path
  /// (serving/circuit_breaker.h, docs/RESILIENCE.md).
  BreakerOptions breaker;
  /// How long Drain() waits for in-flight requests before hard-cancelling
  /// them through their CancelSources.
  int drain_timeout_ms = 5000;
  /// Entries in the at-most-once response cache keyed by request "rid"
  /// (deduplicates retried mutating requests); 0 disables deduplication.
  size_t rid_cache_entries = 256;
};

/// Applies KGNET_SERVE_PORT / KGNET_SERVE_WORKERS /
/// KGNET_SERVE_QUEUE_DEPTH / KGNET_DRAIN_TIMEOUT_MS on top of `base`.
/// Malformed values are rejected with a once-per-process stderr warning
/// and the base value kept — same contract as KGNET_NUM_THREADS
/// (common/thread_pool.h).
ServerOptions ApplyServerEnv(ServerOptions base);

/// Whether a mutating request's outcome may enter the rid dedup cache.
/// Only definitive outcomes qualify: success, or a deterministic request
/// error (parse failure, invalid argument) that every retry would
/// reproduce. Transient classes — Unavailable, ResourceExhausted,
/// Cancelled, DeadlineExceeded — mean the update did not definitively
/// execute; caching one would replay the error to every retry carrying
/// the same rid, so the request could never succeed.
bool CacheableRidOutcome(const Status& status);

/// The TCP server. Start() spawns the acceptor and workers; Stop() (or
/// destruction) shuts them down and closes every connection.
class KgServer {
 public:
  /// `service` must outlive the server.
  KgServer(core::SparqlMlService* service, ServerOptions options);
  ~KgServer();
  KgServer(const KgServer&) = delete;
  KgServer& operator=(const KgServer&) = delete;

  Status Start();
  void Stop();

  /// Graceful shutdown (docs/RESILIENCE.md): flips the server into
  /// draining mode (new connections and newly read requests are answered
  /// with Unavailable("server draining")), waits up to
  /// options.drain_timeout_ms for in-flight requests to finish, then
  /// hard-cancels the stragglers through their CancelSources and calls
  /// Stop(). Idempotent; kgnet_serve wires SIGTERM to it.
  void Drain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// The bound port (resolved when options.port was 0). Valid after a
  /// successful Start().
  int port() const { return port_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t requests_served = 0;
    uint64_t error_responses = 0;
    uint64_t overload_rejects = 0;
    uint64_t malformed_frames = 0;
    /// Deadline outcomes by where the budget ran out (docs/RESILIENCE.md):
    /// deadline_ms=0 (never had budget), expired while queued / between
    /// requests, expired mid-execution (cancel token tripped).
    uint64_t deadline_immediate = 0;
    uint64_t deadline_queue_expired = 0;
    uint64_t deadline_exec_expired = 0;
    /// Queries stopped by a non-deadline cancellation (client vanished,
    /// drain hard-cancel).
    uint64_t cancelled = 0;
    /// Requests fast-failed by the open inference circuit breaker.
    uint64_t breaker_fast_fails = 0;
    /// Retried mutating requests answered from the rid cache instead of
    /// being applied a second time.
    uint64_t rid_replays = 0;
    /// Faults fired by the deterministic injector at server-side sites.
    uint64_t injected_faults = 0;
    /// Connections / requests turned away because the server is draining.
    uint64_t drain_rejects = 0;
  };
  Stats stats() const;

  InferBatcher& batcher() { return batcher_; }
  EmbedRowCache& embed_cache() { return embed_cache_; }
  CircuitBreaker& breaker() { return breaker_; }
  const ServerOptions& options() const { return options_; }

  /// True when a query must run on the serialized SPARQL-ML service
  /// path: updates (single-writer contract), TrainGML, queries with a
  /// variable in predicate position anywhere in the pattern (potential
  /// SPARQL-ML), and rewritten queries calling sql:UDFS.* (they touch
  /// per-service dictionary state). Everything else is a plain read and
  /// executes concurrently against its own snapshot. Exposed so the
  /// differential test harness routes exactly like the server.
  static bool RoutesToService(const sparql::Query& query,
                              std::string_view text);

  /// Digit-only env parsers (shared warn-once contract; exposed for the
  /// garbage-value unit tests). Return 0 on absent/invalid input.
  static int ParsePortEnv(const char* text);          // valid: 1..65535
  static int ParseWorkersEnv(const char* text);       // valid: 1..1024
  static int ParseQueueDepthEnv(const char* text);    // valid: 1..1000000
  static int ParseDrainTimeoutEnv(const char* text);  // valid: 1..600000

 private:
  struct PendingConn {
    int fd = -1;
    std::chrono::steady_clock::time_point enqueued;
  };
  friend class ScopedActiveSource;

  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd, std::chrono::steady_clock::time_point enqueued);
  /// Executes one request body and returns the response body. `anchor`
  /// is when the request arrived (enqueue time for a connection's first
  /// request, frame-read time after that); deadline_ms budgets are
  /// measured from it, so queue wait counts against the deadline.
  std::string HandleBody(int fd, const std::string& body,
                         std::chrono::steady_clock::time_point anchor);
  std::string HandleQuery(int fd, const Request& req,
                          std::chrono::steady_clock::time_point anchor);
  std::string HandleInfer(const Request& req);
  std::string HandleHealth(const Request& req);
  void BumpError() {
    common::MutexLock lock(&stats_mu_);
    ++stats_.error_responses;
  }
  void BumpStat(uint64_t Stats::* field) {
    common::MutexLock lock(&stats_mu_);
    ++(stats_.*field);
  }
  /// rid cache: returns the cached response for `rid` (refreshing its LRU
  /// position) or empty; Store inserts/overwrites and evicts LRU entries
  /// beyond options.rid_cache_entries.
  std::string LookupRidResponse(const std::string& rid);
  void StoreRidResponse(const std::string& rid, const std::string& response);

  core::SparqlMlService* service_;
  const ServerOptions options_;
  InferBatcher batcher_;
  EmbedRowCache embed_cache_;
  CircuitBreaker breaker_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  // Written by Start(), joined by Stop(); workers never touch the
  // vectors themselves.
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  common::Mutex queue_mu_;
  common::CondVar queue_cv_;
  std::deque<PendingConn> queue_ KGNET_GUARDED_BY(queue_mu_);

  /// Serializes the SPARQL-ML / update path (see RoutesToService).
  common::Mutex ml_mu_;

  /// In-flight request accounting for Drain(): every request being
  /// handled bumps inflight_, and each query — plain reads and
  /// serialized service-path requests alike — registers its CancelSource
  /// here so a timed-out drain can hard-cancel it. A source is only
  /// unregistered under active_mu_, so Drain() never touches a destroyed
  /// source.
  common::Mutex active_mu_;
  common::CondVar active_cv_;
  int inflight_ KGNET_GUARDED_BY(active_mu_) = 0;
  std::vector<common::CancelSource*> active_sources_
      KGNET_GUARDED_BY(active_mu_);

  /// At-most-once response cache: rid -> (LRU position, response bytes).
  common::Mutex rid_mu_;
  std::list<std::string> rid_lru_ KGNET_GUARDED_BY(rid_mu_);
  std::unordered_map<std::string,
                     std::pair<std::list<std::string>::iterator, std::string>>
      rid_cache_ KGNET_GUARDED_BY(rid_mu_);

  mutable common::Mutex stats_mu_;
  Stats stats_ KGNET_GUARDED_BY(stats_mu_);
};

}  // namespace kgnet::serving

#endif  // KGNET_SERVING_SERVER_H_
