// Blocking client for the KGNet serving protocol (docs/SERVING.md).
// Used by the shell's .connect mode, bench_serving, and the loopback
// differential tests. One KgClient wraps one TCP connection; it is NOT
// thread-safe (requests on a connection are strictly sequential — open
// one client per concurrent caller).
#ifndef KGNET_SERVING_CLIENT_H_
#define KGNET_SERVING_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "serving/protocol.h"

namespace kgnet::serving {

/// Client-side retry policy (docs/RESILIENCE.md). Disabled by default
/// (max_attempts = 1); KGNET_RETRY_MAX or set_retry_options() arm it.
struct RetryOptions {
  /// Total tries including the first; 1 = no retries.
  int max_attempts = 1;
  /// Backoff before attempt n (1-based retry index) starts at
  /// initial_backoff_ms and doubles, capped at max_backoff_ms, with
  /// seeded jitter on top (RetryBackoffMs is the pure schedule).
  int initial_backoff_ms = 10;
  int max_backoff_ms = 500;
  /// Budget across all attempts, sleeps included; exceeded -> give up
  /// with the last attempt's status.
  int total_deadline_ms = 10000;
  /// Seeds the backoff jitter, so a chaos run's retry schedule replays
  /// exactly. Auto-generated request ids mix in a per-client nonce on
  /// top of this seed (see KgClient::rid_nonce()) — two clients sharing
  /// a jitter_seed still never collide on rids.
  uint64_t jitter_seed = 1;
};

/// The per-class retry policy: only transport faults (Unavailable —
/// connect refused, frame truncation, peer reset) and server pushback
/// (ResourceExhausted — admission queue full, overload) are safe and
/// useful to retry. Parse errors, invalid arguments, and genuine
/// execution failures are deterministic: retrying replays the failure.
bool RetryableStatus(const Status& status);

/// Backoff before retry `attempt` (1 = first retry): exponential from
/// initial_backoff_ms, capped, plus deterministic jitter in [0, base/2]
/// derived from (jitter_seed, attempt). Pure function, exposed so tests
/// can pin the schedule.
int RetryBackoffMs(const RetryOptions& options, int attempt);

class KgClient {
 public:
  KgClient();
  ~KgClient() { Close(); }
  KgClient(const KgClient&) = delete;
  KgClient& operator=(const KgClient&) = delete;

  /// Connects to a serving endpoint ("127.0.0.1", port).
  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Runs a SPARQL / SPARQL-ML query; the Result carries the decoded
  /// response, or the server-sent error Status verbatim. When a request
  /// deadline is set it rides along on the wire; when retries are armed
  /// the request carries an auto-generated "rid" so a retried update is
  /// applied at most once (the request bytes — id and rid included —
  /// are identical across attempts).
  Result<QueryResponse> Query(const std::string& text);

  /// Inference ops (served by the batched path).
  Result<std::string> NodeClass(const std::string& model,
                                const std::string& node);
  Result<std::vector<std::string>> TopKLinks(const std::string& model,
                                             const std::string& node,
                                             size_t k);
  Result<std::vector<std::string>> SimilarEntities(const std::string& model,
                                                   const std::string& node,
                                                   size_t k);
  Status Ping();

  /// Server degradation state (`.health` verb): breaker, queue, epoch.
  Result<HealthInfo> Health();

  /// One framed round-trip: sends `body`, returns the raw response body.
  /// The building block of the typed calls; the differential harness
  /// uses it to compare response bytes directly. Never retries.
  Result<std::string> Call(const std::string& body);

  /// Call() under the retry policy: on a retryable failure (see
  /// RetryableStatus) the connection is torn down, the backoff slept,
  /// and the exact same bytes re-sent over a fresh connection — up to
  /// max_attempts tries within total_deadline_ms. All typed calls route
  /// through here (with the default options it is exactly one Call()).
  Result<std::string> CallRetrying(const std::string& body);

  /// Writes raw bytes with no framing (hardening tests: truncated
  /// frames, garbage prefixes, half-closed sockets).
  Status SendRaw(const void* data, size_t size);
  /// Reads one framed response (hardening tests).
  Result<std::string> ReadResponse();

  /// Per-request timeout waiting for the response; default 30s.
  void set_timeout_ms(int ms) { timeout_ms_ = ms; }

  /// Arms the retry policy for subsequent typed calls.
  void set_retry_options(const RetryOptions& options) { retry_ = options; }
  const RetryOptions& retry_options() const { return retry_; }

  /// Folds KGNET_RETRY_MAX into the current options (strict digits,
  /// 1..100; anything else warns once on stderr and leaves the policy
  /// unchanged).
  void ApplyRetryEnv();

  /// Attaches "deadline_ms" to subsequent queries (-1 detaches).
  void set_request_deadline_ms(int64_t ms) { request_deadline_ms_ = ms; }

  /// Per-client component of auto-generated rids, unique across client
  /// instances and processes (pid + wall time + a process-global
  /// counter, mixed). The server's rid dedup cache is keyed by rid
  /// alone, so rids from *different* clients must never collide — two
  /// processes running the identical program would otherwise generate
  /// identical rid sequences and silently swallow each other's updates.
  /// Overridable for harnesses that need fully reproducible wire bytes.
  uint64_t rid_nonce() const { return rid_nonce_; }
  void set_rid_nonce(uint64_t nonce) { rid_nonce_ = nonce; }

 private:
  int fd_ = -1;
  int timeout_ms_ = 30000;
  double next_id_ = 1;
  uint64_t rid_nonce_ = 0;
  RetryOptions retry_;
  int64_t request_deadline_ms_ = -1;
  // Reconnect target for retries, recorded by Connect().
  std::string host_;
  int port_ = -1;
};

}  // namespace kgnet::serving

#endif  // KGNET_SERVING_CLIENT_H_
