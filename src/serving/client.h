// Blocking client for the KGNet serving protocol (docs/SERVING.md).
// Used by the shell's .connect mode, bench_serving, and the loopback
// differential tests. One KgClient wraps one TCP connection; it is NOT
// thread-safe (requests on a connection are strictly sequential — open
// one client per concurrent caller).
#ifndef KGNET_SERVING_CLIENT_H_
#define KGNET_SERVING_CLIENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "serving/protocol.h"

namespace kgnet::serving {

class KgClient {
 public:
  KgClient() = default;
  ~KgClient() { Close(); }
  KgClient(const KgClient&) = delete;
  KgClient& operator=(const KgClient&) = delete;

  /// Connects to a serving endpoint ("127.0.0.1", port).
  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Runs a SPARQL / SPARQL-ML query; the Result carries the decoded
  /// response, or the server-sent error Status verbatim.
  Result<QueryResponse> Query(const std::string& text);

  /// Inference ops (served by the batched path).
  Result<std::string> NodeClass(const std::string& model,
                                const std::string& node);
  Result<std::vector<std::string>> TopKLinks(const std::string& model,
                                             const std::string& node,
                                             size_t k);
  Result<std::vector<std::string>> SimilarEntities(const std::string& model,
                                                   const std::string& node,
                                                   size_t k);
  Status Ping();

  /// One framed round-trip: sends `body`, returns the raw response body.
  /// The building block of the typed calls; the differential harness
  /// uses it to compare response bytes directly.
  Result<std::string> Call(const std::string& body);

  /// Writes raw bytes with no framing (hardening tests: truncated
  /// frames, garbage prefixes, half-closed sockets).
  Status SendRaw(const void* data, size_t size);
  /// Reads one framed response (hardening tests).
  Result<std::string> ReadResponse();

  /// Per-request timeout waiting for the response; default 30s.
  void set_timeout_ms(int ms) { timeout_ms_ = ms; }

 private:
  int fd_ = -1;
  int timeout_ms_ = 30000;
  double next_id_ = 1;
};

}  // namespace kgnet::serving

#endif  // KGNET_SERVING_CLIENT_H_
