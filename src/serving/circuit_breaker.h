// Circuit breaker for the SPARQL-ML inference path (docs/RESILIENCE.md).
//
// The serving layer wraps every InferBatcher / InferenceManager call in
// Admit()/Record(). After `failure_threshold` consecutive infrastructure
// failures the breaker opens: SPARQL-ML requests fail fast with
// Unavailable (carrying a retry-after hint) instead of queueing behind a
// wedged model, while plain reads — which never touch the breaker —
// keep serving byte-identical results. After `cooldown_ms` the breaker
// half-opens and lets exactly one probe request through: a success
// closes it, a failure re-opens it and restarts the cooldown.
//
// Only infrastructure failures (Internal, Unavailable) trip the breaker;
// a client asking for a nonexistent model (NotFound/InvalidArgument) is
// the request's fault, not the model runtime's.
#ifndef KGNET_SERVING_CIRCUIT_BREAKER_H_
#define KGNET_SERVING_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace kgnet::serving {

struct BreakerOptions {
  /// Consecutive infrastructure failures that open the breaker.
  int failure_threshold = 5;
  /// Open-state dwell time before the next half-open probe.
  int cooldown_ms = 1000;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const BreakerOptions& options = {})
      : options_(options) {}

  /// Gate at the top of a protected call. OK admits the call (and, past
  /// the cooldown of an open breaker, marks it as the half-open probe);
  /// otherwise a fast Unavailable with a retry-after hint. Every
  /// admitted call must be paired with exactly one Record().
  Status Admit();

  /// Reports the outcome of an admitted call.
  void Record(const Status& status);

  /// Releases an admitted call that never reached the model (e.g. its
  /// deadline expired first) without a verdict: a half-open probe slot
  /// is freed for the next request, and no state changes otherwise.
  void Abort();

  State state() const;
  /// Closed -> Open transitions since construction.
  uint64_t opens() const;
  /// Requests rejected without reaching the model.
  uint64_t fast_fails() const;
  /// Milliseconds until an open breaker probes again (0 otherwise);
  /// the `.health` verb reports this.
  int64_t retry_after_ms() const;

 private:
  static bool IsInfraFailure(const Status& status) {
    return status.code() == StatusCode::kInternal ||
           status.code() == StatusCode::kUnavailable;
  }

  const BreakerOptions options_;
  mutable common::Mutex mu_;
  State state_ KGNET_GUARDED_BY(mu_) = State::kClosed;
  int consecutive_failures_ KGNET_GUARDED_BY(mu_) = 0;
  /// An admitted half-open probe is in flight; concurrent requests keep
  /// fast-failing until its Record() arrives.
  bool probe_inflight_ KGNET_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point opened_at_ KGNET_GUARDED_BY(mu_);
  uint64_t opens_ KGNET_GUARDED_BY(mu_) = 0;
  uint64_t fast_fails_ KGNET_GUARDED_BY(mu_) = 0;
};

/// Stable state name for `.health` and logs.
const char* BreakerStateName(CircuitBreaker::State state);

}  // namespace kgnet::serving

#endif  // KGNET_SERVING_CIRCUIT_BREAKER_H_
