#include "serving/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace kgnet::serving {

Status KgClient::Connect(const std::string& host, int port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st =
        Status::Internal(std::string("connect: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  fd_ = fd;
  return Status::OK();
}

void KgClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status KgClient::SendRaw(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t w = send(fd_, p + done, size - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<std::string> KgClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string body;
  KGNET_RETURN_IF_ERROR(ReadFrame(fd_, kDefaultMaxFrameBytes, timeout_ms_,
                                  nullptr, &body));
  return body;
}

Result<std::string> KgClient::Call(const std::string& body) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  KGNET_RETURN_IF_ERROR(WriteFrame(fd_, body));
  return ReadResponse();
}

Result<QueryResponse> KgClient::Query(const std::string& text) {
  KGNET_ASSIGN_OR_RETURN(std::string body,
                         Call(BuildQueryRequest(next_id_++, text)));
  return ParseQueryResponse(body);
}

Result<std::string> KgClient::NodeClass(const std::string& model,
                                        const std::string& node) {
  KGNET_ASSIGN_OR_RETURN(
      std::string body,
      Call(BuildInferRequest(next_id_++, "infer_class", model, node, 0)));
  return ParseValueResponse(body);
}

Result<std::vector<std::string>> KgClient::TopKLinks(const std::string& model,
                                                     const std::string& node,
                                                     size_t k) {
  KGNET_ASSIGN_OR_RETURN(
      std::string body,
      Call(BuildInferRequest(next_id_++, "infer_links", model, node, k)));
  return ParseValuesResponse(body);
}

Result<std::vector<std::string>> KgClient::SimilarEntities(
    const std::string& model, const std::string& node, size_t k) {
  KGNET_ASSIGN_OR_RETURN(
      std::string body,
      Call(BuildInferRequest(next_id_++, "infer_similar", model, node, k)));
  return ParseValuesResponse(body);
}

Status KgClient::Ping() {
  auto body = Call(BuildPingRequest(next_id_++));
  if (!body.ok()) return body.status();
  return ParsePongResponse(*body);
}

}  // namespace kgnet::serving
