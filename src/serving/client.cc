#include "serving/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace kgnet::serving {

namespace {

/// splitmix64, the project-standard mixer (KL002): the backoff jitter
/// must be a deterministic function of the configured seed.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A nonce unique across client instances and processes: pid and wall
/// time separate processes (including identically-seeded ones started
/// at once — pids differ), the counter separates clients within one.
uint64_t NextClientNonce() {
  static std::atomic<uint64_t> counter{0};
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const uint64_t t = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
  return SplitMix64(SplitMix64(static_cast<uint64_t>(getpid())) ^
                    SplitMix64(t) ^
                    counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

KgClient::KgClient() : rid_nonce_(NextClientNonce()) {}

bool RetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kResourceExhausted;
}

int RetryBackoffMs(const RetryOptions& options, int attempt) {
  int64_t base = options.initial_backoff_ms;
  for (int i = 1; i < attempt && base < options.max_backoff_ms; ++i)
    base *= 2;
  if (base > options.max_backoff_ms) base = options.max_backoff_ms;
  if (base < 0) base = 0;
  const uint64_t h =
      SplitMix64(options.jitter_seed ^ static_cast<uint64_t>(attempt));
  const int64_t jitter = base > 0 ? static_cast<int64_t>(h % (base / 2 + 1)) : 0;
  return static_cast<int>(base + jitter);
}

Status KgClient::Connect(const std::string& host, int port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  // A signal can interrupt connect() mid-handshake; the connection keeps
  // establishing in the background, so retry with EALREADY/EISCONN until
  // it resolves (EINTR satellite, docs/RESILIENCE.md).
  for (;;) {
    if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) == 0)
      break;
    if (errno == EINTR || errno == EALREADY) continue;
    if (errno == EISCONN) break;
    // Connect failures (refused, unreachable, timeout) are the
    // retryable transport class.
    const Status st =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  fd_ = fd;
  host_ = host;
  port_ = port;
  return Status::OK();
}

void KgClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status KgClient::SendRaw(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t w = send(fd_, p + done, size - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<std::string> KgClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string body;
  Status st =
      ReadFrame(fd_, kDefaultMaxFrameBytes, timeout_ms_, nullptr, &body);
  // ReadFrame's NotFound means "clean EOF before a frame" — fine for a
  // server between requests, but a client awaiting its response lost the
  // connection: a transport fault, hence retryable.
  if (st.code() == StatusCode::kNotFound)
    return Status::Unavailable("connection closed before response");
  KGNET_RETURN_IF_ERROR(st);
  return body;
}

Result<std::string> KgClient::Call(const std::string& body) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  KGNET_RETURN_IF_ERROR(WriteFrame(fd_, body));
  return ReadResponse();
}

void KgClient::ApplyRetryEnv() {
  static bool warned = false;
  const char* text = std::getenv("KGNET_RETRY_MAX");
  if (text == nullptr) return;
  long value = 0;
  bool valid = *text != '\0';
  for (const char* p = text; valid && *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      valid = false;
      break;
    }
    value = value * 10 + (*p - '0');
    if (value > 100) valid = false;
  }
  if (!valid || value < 1) {
    if (!warned) {
      std::fprintf(stderr,
                   "kgnet: ignoring KGNET_RETRY_MAX=\"%s\" (want an integer "
                   "in [1, 100]); keeping max_attempts=%d\n",
                   text, retry_.max_attempts);
      warned = true;
    }
    return;
  }
  retry_.max_attempts = static_cast<int>(value);
}

Result<std::string> KgClient::CallRetrying(const std::string& body) {
  const auto start = std::chrono::steady_clock::now();
  Result<std::string> last = Status::FailedPrecondition("not connected");
  for (int attempt = 1; attempt <= retry_.max_attempts; ++attempt) {
    if (attempt > 1) {
      Close();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(RetryBackoffMs(retry_, attempt - 1)));
    }
    if (fd_ < 0) {
      if (host_.empty()) return Status::FailedPrecondition("not connected");
      Status st = Connect(host_, port_);
      if (!st.ok()) {
        last = std::move(st);
        continue;
      }
    }
    last = Call(body);
    if (last.ok() || !RetryableStatus(last.status())) return last;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (elapsed >= retry_.total_deadline_ms) break;
  }
  return last;
}

Result<QueryResponse> KgClient::Query(const std::string& text) {
  const double id = next_id_++;
  // With retries armed, a stable per-request id rides along so the
  // server can deduplicate a replayed mutating request (the response it
  // cached for the first application is returned instead). Derived from
  // (rid_nonce, jitter_seed, id): identical on every attempt of this
  // request, but distinct across clients — the server cache is keyed by
  // rid alone, so a collision with another client's rid would answer
  // this request with that client's cached response and silently drop
  // the update.
  std::string rid;
  if (retry_.max_attempts > 1) {
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(SplitMix64(
                      rid_nonce_ ^
                      SplitMix64(retry_.jitter_seed ^
                                 static_cast<uint64_t>(id)))));
    rid = buf;
  }
  KGNET_ASSIGN_OR_RETURN(
      std::string body,
      CallRetrying(BuildQueryRequest(id, text, request_deadline_ms_, rid)));
  return ParseQueryResponse(body);
}

Result<std::string> KgClient::NodeClass(const std::string& model,
                                        const std::string& node) {
  KGNET_ASSIGN_OR_RETURN(
      std::string body,
      CallRetrying(BuildInferRequest(next_id_++, "infer_class", model, node,
                                     0)));
  return ParseValueResponse(body);
}

Result<std::vector<std::string>> KgClient::TopKLinks(const std::string& model,
                                                     const std::string& node,
                                                     size_t k) {
  KGNET_ASSIGN_OR_RETURN(
      std::string body,
      CallRetrying(BuildInferRequest(next_id_++, "infer_links", model, node,
                                     k)));
  return ParseValuesResponse(body);
}

Result<std::vector<std::string>> KgClient::SimilarEntities(
    const std::string& model, const std::string& node, size_t k) {
  KGNET_ASSIGN_OR_RETURN(
      std::string body,
      CallRetrying(BuildInferRequest(next_id_++, "infer_similar", model, node,
                                     k)));
  return ParseValuesResponse(body);
}

Status KgClient::Ping() {
  auto body = CallRetrying(BuildPingRequest(next_id_++));
  if (!body.ok()) return body.status();
  return ParsePongResponse(*body);
}

Result<HealthInfo> KgClient::Health() {
  KGNET_ASSIGN_OR_RETURN(std::string body,
                         CallRetrying(BuildHealthRequest(next_id_++)));
  return ParseHealthResponse(body);
}

}  // namespace kgnet::serving
