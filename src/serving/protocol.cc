#include "serving/protocol.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace kgnet::serving {

namespace {

/// Poll slice: how long a blocked read sleeps between checks of the stop
/// flag. Short enough that shutdown and idle-timeout stay responsive.
constexpr int kPollSliceMs = 50;

/// Reads exactly `n` bytes. `first_byte` tells the caller whether the
/// peer closed cleanly before the frame started (EOF at byte 0) or died
/// mid-frame.
Status ReadExact(int fd, size_t n, int idle_timeout_ms,
                 const std::atomic<bool>* stop, char* out, bool* got_any) {
  size_t done = 0;
  int waited_ms = 0;
  while (done < n) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = poll(&pfd, 1, kPollSliceMs);
    if (stop != nullptr && stop->load(std::memory_order_relaxed))
      return Status::OutOfRange("server stopping");
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("poll: ") + std::strerror(errno));
    }
    if (pr == 0) {
      waited_ms += kPollSliceMs;
      if (idle_timeout_ms > 0 && waited_ms >= idle_timeout_ms)
        return Status::OutOfRange("read timed out");
      continue;
    }
    const ssize_t r = recv(fd, out + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (done == 0 && !*got_any) return Status::NotFound("peer closed");
      return Status::Unavailable("connection closed mid-frame");
    }
    *got_any = true;
    done += static_cast<size_t>(r);
    waited_ms = 0;  // progress resets the idle clock
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(std::string_view body) {
  const uint32_t n = static_cast<uint32_t>(body.size());
  std::string out;
  out.reserve(4 + body.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out.append(body);
  return out;
}

Status ReadFrame(int fd, size_t max_frame_bytes, int idle_timeout_ms,
                 const std::atomic<bool>* stop, std::string* body) {
  char hdr[4];
  bool got_any = false;
  KGNET_RETURN_IF_ERROR(
      ReadExact(fd, 4, idle_timeout_ms, stop, hdr, &got_any));
  const uint32_t n = (static_cast<uint32_t>(static_cast<uint8_t>(hdr[0]))
                      << 24) |
                     (static_cast<uint32_t>(static_cast<uint8_t>(hdr[1]))
                      << 16) |
                     (static_cast<uint32_t>(static_cast<uint8_t>(hdr[2]))
                      << 8) |
                     static_cast<uint32_t>(static_cast<uint8_t>(hdr[3]));
  if (n > max_frame_bytes)
    return Status::InvalidArgument("frame length " + std::to_string(n) +
                                   " exceeds cap of " +
                                   std::to_string(max_frame_bytes) + " bytes");
  body->resize(n);
  if (n == 0) return Status::OK();
  return ReadExact(fd, n, idle_timeout_ms, stop, body->data(), &got_any);
}

Status WriteFrame(int fd, std::string_view body) {
  const std::string frame = EncodeFrame(body);
  size_t done = 0;
  while (done < frame.size()) {
    const ssize_t w =
        send(fd, frame.data() + done, frame.size() - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

std::string BuildQueryRequest(double id, const std::string& query,
                              int64_t deadline_ms, const std::string& rid) {
  core::JsonValue req = core::JsonValue::Object();
  req.Set("op", core::JsonValue(std::string("query")));
  req.Set("id", core::JsonValue(id));
  req.Set("query", core::JsonValue(query));
  // Both keys appear only when set: a request without resilience fields
  // serializes to the exact pre-resilience bytes (the loopback
  // differential tests compare responses byte-for-byte, and requests
  // feed the at-most-once cache keyed by rid).
  if (deadline_ms >= 0)
    req.Set("deadline_ms", core::JsonValue(static_cast<double>(deadline_ms)));
  if (!rid.empty()) req.Set("rid", core::JsonValue(rid));
  return core::DumpJson(req);
}

std::string BuildInferRequest(double id, const char* op,
                              const std::string& model,
                              const std::string& node, size_t k) {
  core::JsonValue req = core::JsonValue::Object();
  req.Set("op", core::JsonValue(std::string(op)));
  req.Set("id", core::JsonValue(id));
  req.Set("model", core::JsonValue(model));
  req.Set("node", core::JsonValue(node));
  req.Set("k", core::JsonValue(static_cast<double>(k)));
  return core::DumpJson(req);
}

std::string BuildPingRequest(double id) {
  core::JsonValue req = core::JsonValue::Object();
  req.Set("op", core::JsonValue(std::string("ping")));
  req.Set("id", core::JsonValue(id));
  return core::DumpJson(req);
}

std::string BuildHealthRequest(double id) {
  core::JsonValue req = core::JsonValue::Object();
  req.Set("op", core::JsonValue(std::string("health")));
  req.Set("id", core::JsonValue(id));
  return core::DumpJson(req);
}

namespace {

/// A required string field; wrong type or absence is InvalidArgument
/// (not a disconnect — the server answers the error and keeps reading).
Result<std::string> RequireString(const core::JsonValue& obj,
                                  const char* field) {
  const core::JsonValue* v = obj.Find(field);
  if (v == nullptr)
    return Status::InvalidArgument(std::string("request missing \"") + field +
                                   "\" field");
  if (!v->is_string())
    return Status::InvalidArgument(std::string("request field \"") + field +
                                   "\" must be a string");
  return v->AsString();
}

}  // namespace

Result<Request> ParseRequest(const std::string& body) {
  auto parsed = core::ParseJson(body);
  if (!parsed.ok())
    return Status::InvalidArgument("request is not valid JSON: " +
                                   parsed.status().message());
  const core::JsonValue& obj = *parsed;
  if (!obj.is_object())
    return Status::InvalidArgument("request must be a JSON object");
  Request req;
  const core::JsonValue* id = obj.Find("id");
  if (id != nullptr) {
    if (!id->is_number())
      return Status::InvalidArgument("request field \"id\" must be a number");
    req.id = id->AsNumber();
  }
  const core::JsonValue* deadline = obj.Find("deadline_ms");
  if (deadline != nullptr) {
    // 0 is legal (already-expired: fails fast with DeadlineExceeded);
    // cap at 24h so the value survives the double round-trip exactly.
    if (!deadline->is_number() || deadline->AsNumber() < 0 ||
        deadline->AsNumber() > 86400000)
      return Status::InvalidArgument(
          "request field \"deadline_ms\" must be a number in [0, 86400000]");
    req.deadline_ms = static_cast<int64_t>(deadline->AsNumber());
  }
  const core::JsonValue* rid = obj.Find("rid");
  if (rid != nullptr) {
    if (!rid->is_string())
      return Status::InvalidArgument("request field \"rid\" must be a string");
    req.rid = rid->AsString();
  }
  KGNET_ASSIGN_OR_RETURN(std::string op, RequireString(obj, "op"));
  if (op == "ping") {
    req.op = Request::Op::kPing;
    return req;
  }
  if (op == "health") {
    req.op = Request::Op::kHealth;
    return req;
  }
  if (op == "query") {
    req.op = Request::Op::kQuery;
    KGNET_ASSIGN_OR_RETURN(req.query, RequireString(obj, "query"));
    return req;
  }
  if (op == "infer_class" || op == "infer_links" || op == "infer_similar") {
    req.op = op == "infer_class"   ? Request::Op::kInferClass
             : op == "infer_links" ? Request::Op::kInferLinks
                                   : Request::Op::kInferSimilar;
    KGNET_ASSIGN_OR_RETURN(req.model, RequireString(obj, "model"));
    KGNET_ASSIGN_OR_RETURN(req.node, RequireString(obj, "node"));
    const core::JsonValue* k = obj.Find("k");
    if (k != nullptr) {
      if (!k->is_number() || k->AsNumber() < 0 || k->AsNumber() > 1e9)
        return Status::InvalidArgument(
            "request field \"k\" must be a small non-negative number");
      req.k = static_cast<size_t>(k->AsNumber());
    }
    return req;
  }
  return Status::InvalidArgument("unknown request op \"" + op + "\"");
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

core::JsonValue EncodeTerm(const rdf::Term& term) {
  core::JsonValue arr = core::JsonValue::Array();
  switch (term.kind) {
    case rdf::TermKind::kIri:
      arr.Push(core::JsonValue(std::string("i")));
      arr.Push(core::JsonValue(term.lexical));
      break;
    case rdf::TermKind::kLiteral:
      arr.Push(core::JsonValue(std::string("l")));
      arr.Push(core::JsonValue(term.lexical));
      arr.Push(core::JsonValue(term.datatype));
      arr.Push(core::JsonValue(term.lang));
      break;
    case rdf::TermKind::kBlank:
      arr.Push(core::JsonValue(std::string("b")));
      arr.Push(core::JsonValue(term.lexical));
      break;
    case rdf::TermKind::kUndef:
      arr.Push(core::JsonValue(std::string("u")));
      break;
  }
  return arr;
}

Result<rdf::Term> DecodeTerm(const core::JsonValue& value) {
  if (value.kind() != core::JsonValue::Kind::kArray ||
      value.AsArray().empty() || !value.AsArray()[0].is_string())
    return Status::ParseError("malformed term encoding");
  const auto& arr = value.AsArray();
  const std::string& tag = arr[0].AsString();
  auto lex = [&](size_t i) -> std::string {
    return i < arr.size() && arr[i].is_string() ? arr[i].AsString()
                                                : std::string();
  };
  if (tag == "i") return rdf::Term::Iri(lex(1));
  if (tag == "b") return rdf::Term(rdf::TermKind::kBlank, lex(1));
  if (tag == "u") return rdf::Term(rdf::TermKind::kUndef, std::string());
  if (tag == "l") {
    rdf::Term t(rdf::TermKind::kLiteral, lex(1));
    t.datatype = lex(2);
    t.lang = lex(3);
    return t;
  }
  return Status::ParseError("unknown term tag \"" + tag + "\"");
}

std::string BuildQueryResponse(double id, const sparql::QueryResult& result,
                               const sparql::ExecInfo* info) {
  core::JsonValue resp = core::JsonValue::Object();
  resp.Set("ok", core::JsonValue(true));
  resp.Set("id", core::JsonValue(id));
  core::JsonValue cols = core::JsonValue::Array();
  for (const std::string& c : result.columns) cols.Push(core::JsonValue(c));
  resp.Set("columns", std::move(cols));
  core::JsonValue rows = core::JsonValue::Array();
  for (const std::vector<rdf::Term>& row : result.rows) {
    core::JsonValue r = core::JsonValue::Array();
    for (const rdf::Term& t : row) r.Push(EncodeTerm(t));
    rows.Push(std::move(r));
  }
  resp.Set("rows", std::move(rows));
  resp.Set("ask", core::JsonValue(result.ask_result));
  resp.Set("inserted",
           core::JsonValue(static_cast<double>(result.num_inserted)));
  resp.Set("deleted",
           core::JsonValue(static_cast<double>(result.num_deleted)));
  if (info != nullptr) {
    resp.Set("epoch",
             core::JsonValue(static_cast<double>(info->snapshot_epoch)));
    resp.Set("delta",
             core::JsonValue(static_cast<double>(info->snapshot_delta)));
  }
  return core::DumpJson(resp);
}

std::string BuildErrorResponse(double id, const Status& status) {
  core::JsonValue resp = core::JsonValue::Object();
  resp.Set("ok", core::JsonValue(false));
  resp.Set("id", core::JsonValue(id));
  resp.Set("code",
           core::JsonValue(std::string(StatusCodeToString(status.code()))));
  resp.Set("error", core::JsonValue(status.message()));
  return core::DumpJson(resp);
}

std::string BuildValueResponse(double id, const std::string& value) {
  core::JsonValue resp = core::JsonValue::Object();
  resp.Set("ok", core::JsonValue(true));
  resp.Set("id", core::JsonValue(id));
  resp.Set("value", core::JsonValue(value));
  return core::DumpJson(resp);
}

std::string BuildValuesResponse(double id,
                                const std::vector<std::string>& values) {
  core::JsonValue resp = core::JsonValue::Object();
  resp.Set("ok", core::JsonValue(true));
  resp.Set("id", core::JsonValue(id));
  core::JsonValue arr = core::JsonValue::Array();
  for (const std::string& v : values) arr.Push(core::JsonValue(v));
  resp.Set("values", std::move(arr));
  return core::DumpJson(resp);
}

std::string BuildPongResponse(double id) {
  core::JsonValue resp = core::JsonValue::Object();
  resp.Set("ok", core::JsonValue(true));
  resp.Set("id", core::JsonValue(id));
  resp.Set("pong", core::JsonValue(true));
  return core::DumpJson(resp);
}

std::string BuildHealthResponse(double id, const HealthInfo& info) {
  core::JsonValue resp = core::JsonValue::Object();
  resp.Set("ok", core::JsonValue(true));
  resp.Set("id", core::JsonValue(id));
  resp.Set("breaker", core::JsonValue(info.breaker));
  resp.Set("retry_after_ms",
           core::JsonValue(static_cast<double>(info.retry_after_ms)));
  resp.Set("queue_depth",
           core::JsonValue(static_cast<double>(info.queue_depth)));
  resp.Set("queue_capacity",
           core::JsonValue(static_cast<double>(info.queue_capacity)));
  resp.Set("epoch", core::JsonValue(static_cast<double>(info.epoch)));
  resp.Set("draining", core::JsonValue(info.draining));
  resp.Set("served",
           core::JsonValue(static_cast<double>(info.requests_served)));
  return core::DumpJson(resp);
}


StatusCode StatusCodeFromString(const std::string& name) {
  static const struct {
    const char* name;
    StatusCode code;
  } kTable[] = {
      {"OK", StatusCode::kOk},
      {"InvalidArgument", StatusCode::kInvalidArgument},
      {"NotFound", StatusCode::kNotFound},
      {"AlreadyExists", StatusCode::kAlreadyExists},
      {"OutOfRange", StatusCode::kOutOfRange},
      {"FailedPrecondition", StatusCode::kFailedPrecondition},
      {"ResourceExhausted", StatusCode::kResourceExhausted},
      {"Unimplemented", StatusCode::kUnimplemented},
      {"ParseError", StatusCode::kParseError},
      {"Internal", StatusCode::kInternal},
      {"Cancelled", StatusCode::kCancelled},
      {"DeadlineExceeded", StatusCode::kDeadlineExceeded},
      {"Unavailable", StatusCode::kUnavailable},
  };
  for (const auto& entry : kTable)
    if (name == entry.name) return entry.code;
  return StatusCode::kInternal;
}

namespace {

/// Parses a response envelope; returns the payload object, or the
/// server-sent error as a Status.
Result<core::JsonValue> ParseEnvelope(const std::string& body) {
  auto parsed = core::ParseJson(body);
  if (!parsed.ok())
    return Status::ParseError("response is not valid JSON: " +
                              parsed.status().message());
  const core::JsonValue& obj = *parsed;
  if (!obj.is_object())
    return Status::ParseError("response must be a JSON object");
  const core::JsonValue* ok = obj.Find("ok");
  if (ok == nullptr || ok->kind() != core::JsonValue::Kind::kBool)
    return Status::ParseError("response missing \"ok\" field");
  if (!ok->AsBool()) {
    const core::JsonValue* code = obj.Find("code");
    const core::JsonValue* error = obj.Find("error");
    return Status(StatusCodeFromString(
                      code != nullptr && code->is_string() ? code->AsString()
                                                           : "Internal"),
                  error != nullptr && error->is_string() ? error->AsString()
                                                         : "unknown error");
  }
  return *parsed;
}

}  // namespace

Result<QueryResponse> ParseQueryResponse(const std::string& body) {
  KGNET_ASSIGN_OR_RETURN(core::JsonValue obj, ParseEnvelope(body));
  QueryResponse out;
  const core::JsonValue* cols = obj.Find("columns");
  if (cols == nullptr || cols->kind() != core::JsonValue::Kind::kArray)
    return Status::ParseError("query response missing \"columns\"");
  for (const core::JsonValue& c : cols->AsArray()) {
    if (!c.is_string())
      return Status::ParseError("column names must be strings");
    out.result.columns.push_back(c.AsString());
  }
  const core::JsonValue* rows = obj.Find("rows");
  if (rows == nullptr || rows->kind() != core::JsonValue::Kind::kArray)
    return Status::ParseError("query response missing \"rows\"");
  for (const core::JsonValue& row : rows->AsArray()) {
    if (row.kind() != core::JsonValue::Kind::kArray)
      return Status::ParseError("rows must be arrays");
    std::vector<rdf::Term> terms;
    terms.reserve(row.AsArray().size());
    for (const core::JsonValue& cell : row.AsArray()) {
      KGNET_ASSIGN_OR_RETURN(rdf::Term t, DecodeTerm(cell));
      terms.push_back(std::move(t));
    }
    out.result.rows.push_back(std::move(terms));
  }
  const core::JsonValue* ask = obj.Find("ask");
  if (ask != nullptr && ask->kind() == core::JsonValue::Kind::kBool)
    out.result.ask_result = ask->AsBool();
  out.result.num_inserted =
      static_cast<size_t>(obj.GetNumber("inserted", 0));
  out.result.num_deleted = static_cast<size_t>(obj.GetNumber("deleted", 0));
  const core::JsonValue* epoch = obj.Find("epoch");
  if (epoch != nullptr && epoch->is_number()) {
    out.has_snapshot = true;
    out.epoch = static_cast<uint64_t>(epoch->AsNumber());
    out.delta = static_cast<size_t>(obj.GetNumber("delta", 0));
  }
  return out;
}

Result<std::string> ParseValueResponse(const std::string& body) {
  KGNET_ASSIGN_OR_RETURN(core::JsonValue obj, ParseEnvelope(body));
  const core::JsonValue* v = obj.Find("value");
  if (v == nullptr || !v->is_string())
    return Status::ParseError("response missing \"value\"");
  return v->AsString();
}

Result<std::vector<std::string>> ParseValuesResponse(const std::string& body) {
  KGNET_ASSIGN_OR_RETURN(core::JsonValue obj, ParseEnvelope(body));
  const core::JsonValue* v = obj.Find("values");
  if (v == nullptr || v->kind() != core::JsonValue::Kind::kArray)
    return Status::ParseError("response missing \"values\"");
  std::vector<std::string> out;
  out.reserve(v->AsArray().size());
  for (const core::JsonValue& item : v->AsArray()) {
    if (!item.is_string())
      return Status::ParseError("\"values\" entries must be strings");
    out.push_back(item.AsString());
  }
  return out;
}

Status ParsePongResponse(const std::string& body) {
  auto env = ParseEnvelope(body);
  return env.ok() ? Status::OK() : env.status();
}

Result<HealthInfo> ParseHealthResponse(const std::string& body) {
  KGNET_ASSIGN_OR_RETURN(core::JsonValue obj, ParseEnvelope(body));
  HealthInfo info;
  const core::JsonValue* breaker = obj.Find("breaker");
  if (breaker == nullptr || !breaker->is_string())
    return Status::ParseError("health response missing \"breaker\"");
  info.breaker = breaker->AsString();
  info.retry_after_ms =
      static_cast<int64_t>(obj.GetNumber("retry_after_ms", 0));
  info.queue_depth = static_cast<size_t>(obj.GetNumber("queue_depth", 0));
  info.queue_capacity =
      static_cast<size_t>(obj.GetNumber("queue_capacity", 0));
  info.epoch = static_cast<uint64_t>(obj.GetNumber("epoch", 0));
  const core::JsonValue* draining = obj.Find("draining");
  if (draining != nullptr && draining->kind() == core::JsonValue::Kind::kBool)
    info.draining = draining->AsBool();
  info.requests_served = static_cast<uint64_t>(obj.GetNumber("served", 0));
  return info;
}

}  // namespace kgnet::serving
