#include "serving/infer_batcher.h"

#include <chrono>

namespace kgnet::serving {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

template <typename T, typename BatchFn>
Result<T> InferBatcher::RunBatched(int task, const std::string& model,
                                   size_t k, const std::string& node,
                                   const BatchFn& batch_fn) {
  const std::tuple<int, std::string, size_t> key{task, model, k};
  std::shared_ptr<Group<T>> g;
  size_t slot = 0;
  {
    common::MutexLock lock(&mu_);
    auto& groups = GroupsFor<T>();
    auto it = groups.find(key);
    if (it != groups.end()) {
      // Follower: join the open window and wait for the leader's batch.
      g = it->second;
      g->nodes.push_back(node);
      slot = g->nodes.size() - 1;
      if (g->nodes.size() >= options_.max_batch) {
        groups.erase(it);  // full: close early, wake the leader
        g->closed = true;
        g->cv.NotifyAll();
      }
      while (!g->done) g->cv.Wait(mu_);
      if (!g->outer.ok()) return g->outer;
      return std::move(g->results[slot]);
    }
    // Leader: publish a fresh group and hold the window open.
    g = std::make_shared<Group<T>>();
    g->nodes.push_back(node);
    groups[key] = g;
    const auto deadline =
        Clock::now() + std::chrono::microseconds(options_.window_us);
    while (!g->closed && g->nodes.size() < options_.max_batch) {
      const auto now = Clock::now();
      if (now >= deadline) break;
      g->cv.WaitFor(mu_, std::chrono::duration_cast<std::chrono::microseconds>(
                             deadline - now));
    }
    if (!g->closed) {
      groups.erase(key);
      g->closed = true;
    }
    ++batched_calls_;
    if (g->nodes.size() > 1) coalesced_requests_ += g->nodes.size();
  }
  // The group is unpublished, so nodes is frozen; run the one batched
  // call outside the lock.
  auto batch = batch_fn(g->nodes);
  {
    common::MutexLock lock(&mu_);
    if (!batch.ok())
      g->outer = batch.status();
    else
      g->results = std::move(*batch);
    g->done = true;
    g->cv.NotifyAll();
    if (!g->outer.ok()) return g->outer;
    return std::move(g->results[0]);
  }
}

Result<std::string> InferBatcher::NodeClass(const std::string& model,
                                            const std::string& node) {
  if (options_.window_us <= 0) return inference_->GetNodeClass(model, node);
  return RunBatched<std::string>(
      0, model, 0, node, [&](const std::vector<std::string>& nodes) {
        return inference_->GetNodeClassBatch(model, nodes);
      });
}

Result<std::vector<std::string>> InferBatcher::TopKLinks(
    const std::string& model, const std::string& node, size_t k) {
  if (options_.window_us <= 0)
    return inference_->GetTopKLinks(model, node, k);
  return RunBatched<std::vector<std::string>>(
      1, model, k, node, [&](const std::vector<std::string>& nodes) {
        return inference_->GetTopKLinksBatch(model, nodes, k);
      });
}

uint64_t InferBatcher::batched_calls() const {
  common::MutexLock lock(&mu_);
  return batched_calls_;
}

uint64_t InferBatcher::coalesced_requests() const {
  common::MutexLock lock(&mu_);
  return coalesced_requests_;
}

std::optional<std::vector<float>> EmbedRowCache::Get(const std::string& model,
                                                     const std::string& node) {
  const std::string key = model + '\n' + node;
  common::MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void EmbedRowCache::Put(const std::string& model, const std::string& node,
                        std::vector<float> row) {
  if (capacity_ == 0) return;
  const std::string key = model + '\n' + node;
  common::MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(row);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(row));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void EmbedRowCache::Clear() {
  common::MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
}

uint64_t EmbedRowCache::hits() const {
  common::MutexLock lock(&mu_);
  return hits_;
}

uint64_t EmbedRowCache::misses() const {
  common::MutexLock lock(&mu_);
  return misses_;
}

size_t EmbedRowCache::size() const {
  common::MutexLock lock(&mu_);
  return lru_.size();
}

}  // namespace kgnet::serving
