// Wire protocol of the KGNet serving front end (docs/SERVING.md).
//
// Framing: every message is a 4-byte big-endian length N followed by N
// bytes of JSON. The JSON is produced by core::DumpJson, which is
// deterministic (std::map key order, fixed escaping, fixed number
// formatting), so a given request or response always serializes to the
// same bytes — the loopback differential tests compare server responses
// byte-for-byte against locally built ones.
//
// Requests are JSON objects with an "op" field:
//
//   {"op":"query","id":7,"query":"SELECT ..."}        run SPARQL/SPARQL-ML
//   {"op":"infer_class","id":8,"model":u,"node":n}    node classification
//   {"op":"infer_links","id":9,"model":u,"node":n,"k":3}
//   {"op":"infer_similar","id":10,"model":u,"node":n,"k":3}
//   {"op":"ping","id":11}
//   {"op":"health","id":12}                           breaker/queue/epoch
//
// Any request may carry two optional resilience fields
// (docs/RESILIENCE.md): "deadline_ms" (number, 0..86400000) bounds the
// request's total server-side time — queue wait included — after which
// it fails with DeadlineExceeded; "rid" (string, at-most-once request
// id) lets the server deduplicate a retried mutating request instead of
// applying it twice. Both keys are omitted entirely when unset, so
// requests without them serialize to the exact pre-resilience bytes.
//
// Responses echo "id" and carry "ok":
//
//   {"ok":true,"id":7,"columns":[...],"rows":[[t,...],...],
//    "ask":b,"inserted":n,"deleted":n,"epoch":e,"delta":d}
//   {"ok":true,"id":8,"value":"..."}       /  {"ok":true,"values":[...]}
//   {"ok":false,"id":7,"code":"NotFound","error":"..."}
//
// "epoch"/"delta" (the MVCC snapshot the query observed) appear only on
// the concurrent plain-read path; requests routed through the serialized
// SPARQL-ML service omit them. Solution terms encode as small arrays:
// ["i",iri] / ["l",lexical,datatype,lang] / ["b",label] / ["u"].
#ifndef KGNET_SERVING_PROTOCOL_H_
#define KGNET_SERVING_PROTOCOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/json.h"
#include "sparql/engine.h"

namespace kgnet::serving {

/// Frames a server never accepts beyond this many body bytes (guards the
/// length prefix against garbage / hostile values). Options can lower it.
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// 4-byte big-endian length prefix + body.
std::string EncodeFrame(std::string_view body);

/// Blocking frame I/O over a connected socket. ReadFrame polls in short
/// slices so a server worker notices `stop` (set on shutdown) and the
/// idle timeout without being stuck in recv() on a silent peer.
///
/// Non-OK returns and how the server treats them:
///   NotFound           clean EOF before any byte of a frame (peer done)
///   OutOfRange         idle timeout expired, or stop flag set
///   InvalidArgument    length prefix exceeds `max_frame_bytes`
///   Unavailable        socket error / EOF mid-frame (transport fault —
///                      the retryable class, see docs/RESILIENCE.md)
Status ReadFrame(int fd, size_t max_frame_bytes, int idle_timeout_ms,
                 const std::atomic<bool>* stop, std::string* body);

/// Writes EncodeFrame(body); loops over short writes, suppresses SIGPIPE.
Status WriteFrame(int fd, std::string_view body);

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A decoded client request. Strictly validated: unknown "op", missing
/// or wrong-typed fields all fail with InvalidArgument — the server
/// answers with an error response and keeps the connection alive.
struct Request {
  enum class Op {
    kQuery,
    kInferClass,
    kInferLinks,
    kInferSimilar,
    kPing,
    kHealth
  };
  Op op = Op::kPing;
  double id = 0;        // echoed back verbatim
  std::string query;    // kQuery
  std::string model;    // kInfer*
  std::string node;     // kInfer*
  size_t k = 1;         // kInferLinks / kInferSimilar
  /// Total server-side budget in ms (queue wait included); -1 = none.
  int64_t deadline_ms = -1;
  /// At-most-once request id; empty = no deduplication.
  std::string rid;
};

/// `deadline_ms` < 0 and an empty `rid` omit their keys, preserving the
/// pre-resilience request bytes.
std::string BuildQueryRequest(double id, const std::string& query,
                              int64_t deadline_ms = -1,
                              const std::string& rid = std::string());
std::string BuildInferRequest(double id, const char* op,
                              const std::string& model,
                              const std::string& node, size_t k);
std::string BuildPingRequest(double id);
std::string BuildHealthRequest(double id);

Result<Request> ParseRequest(const std::string& body);

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Term <-> JSON array encoding.
core::JsonValue EncodeTerm(const rdf::Term& term);
Result<rdf::Term> DecodeTerm(const core::JsonValue& value);

/// Serialized success response for a query. `info` non-null attaches the
/// "epoch"/"delta" keys (plain concurrent-read path only).
std::string BuildQueryResponse(double id, const sparql::QueryResult& result,
                               const sparql::ExecInfo* info);
/// {"ok":false,...} from a Status (any request kind).
std::string BuildErrorResponse(double id, const Status& status);
std::string BuildValueResponse(double id, const std::string& value);
std::string BuildValuesResponse(double id,
                                const std::vector<std::string>& values);
std::string BuildPongResponse(double id);

/// Payload of the `.health` verb: degradation-relevant server state.
struct HealthInfo {
  std::string breaker;        // "closed" / "open" / "half_open"
  int64_t retry_after_ms = 0;  // until an open breaker probes again
  size_t queue_depth = 0;      // admission queue occupancy
  size_t queue_capacity = 0;
  uint64_t epoch = 0;  // current storage epoch
  bool draining = false;
  uint64_t requests_served = 0;
};

std::string BuildHealthResponse(double id, const HealthInfo& info);
Result<HealthInfo> ParseHealthResponse(const std::string& body);

/// A decoded query response (client side).
struct QueryResponse {
  sparql::QueryResult result;
  bool has_snapshot = false;  // epoch/delta present (plain-read path)
  uint64_t epoch = 0;
  size_t delta = 0;
};

/// Each parser returns the server-sent error Status verbatim when the
/// body is {"ok":false,...} (code string mapped back to StatusCode).
Result<QueryResponse> ParseQueryResponse(const std::string& body);
Result<std::string> ParseValueResponse(const std::string& body);
Result<std::vector<std::string>> ParseValuesResponse(const std::string& body);
/// OK when the body is a well-formed pong (or any ok:true response).
Status ParsePongResponse(const std::string& body);

/// Inverse of StatusCodeToString; unknown strings map to kInternal.
StatusCode StatusCodeFromString(const std::string& name);

}  // namespace kgnet::serving

#endif  // KGNET_SERVING_PROTOCOL_H_
