// Request batching and caching in front of the InferenceManager.
//
// The paper's bottleneck (Section IV-B3) is the number of inference API
// calls a SPARQL-ML plan issues. The serving front end adds a second
// source of call pressure: many concurrent client connections asking
// about the same model. InferBatcher coalesces those: the first caller
// for a (model, task, k) group becomes the *leader* and holds the batch
// window open (a few hundred microseconds, or until the batch is full);
// every concurrent caller for the same group joins as a *follower*. The
// leader then issues ONE batched InferenceManager call — one model
// forward / one GEMM-shaped score kernel — and distributes the
// per-element results. Element results are bitwise-identical to the
// unbatched single-node calls (tests/test_serving.cc asserts this), so
// batching is purely a throughput knob.
//
// EmbedRowCache is the companion for similarity search: an LRU of hot
// embedding rows keyed by (model, node). A hit turns GetSimilarEntities
// (resolve + row fetch + search) into GetSimilarByRow (search only) with
// byte-identical output; a miss falls back to the uncached call, so the
// cache can never change a response.
#ifndef KGNET_SERVING_INFER_BATCHER_H_
#define KGNET_SERVING_INFER_BATCHER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/inference_manager.h"

namespace kgnet::serving {

struct BatcherOptions {
  /// How long the leader keeps the window open for followers. 0 disables
  /// batching (every call goes straight through, still one API call per
  /// request — the differential baseline).
  int window_us = 300;
  /// Window closes early once this many requests joined.
  size_t max_batch = 32;
};

/// Coalesces concurrent single-node inference calls into batched
/// InferenceManager calls. Thread-safe; one instance per server.
class InferBatcher {
 public:
  InferBatcher(core::InferenceManager* inference, BatcherOptions options)
      : inference_(inference), options_(options) {}

  /// Same value/error as inference->GetNodeClass(model, node).
  Result<std::string> NodeClass(const std::string& model,
                                const std::string& node);

  /// Same value/error as inference->GetTopKLinks(model, node, k).
  Result<std::vector<std::string>> TopKLinks(const std::string& model,
                                             const std::string& node,
                                             size_t k);

  /// Batched API calls issued (each replaced >= 1 single calls).
  uint64_t batched_calls() const;
  /// Requests that rode along in a batch of size > 1.
  uint64_t coalesced_requests() const;

 private:
  /// One in-flight batch window. Plain members: every access happens
  /// with the batcher's mu_ held (the struct cannot name that mutex in
  /// annotations), except the leader's nodes snapshot taken after the
  /// group is unpublished.
  template <typename T>
  struct Group {
    std::vector<std::string> nodes;
    std::vector<Result<T>> results;
    Status outer = Status::OK();
    bool closed = false;  // unpublished from the map; no more joiners
    bool done = false;    // results / outer are filled
    common::CondVar cv;
  };

  /// The open-window map for result type T (one per task family so the
  /// group's result slots are typed).
  template <typename T>
  auto& GroupsFor() KGNET_REQUIRES(mu_) {
    if constexpr (std::is_same_v<T, std::string>)
      return class_groups_;
    else
      return links_groups_;
  }

  template <typename T, typename BatchFn>
  Result<T> RunBatched(int task, const std::string& model, size_t k,
                       const std::string& node, const BatchFn& batch_fn);

  core::InferenceManager* inference_;
  const BatcherOptions options_;
  mutable common::Mutex mu_;
  std::map<std::tuple<int, std::string, size_t>,
           std::shared_ptr<Group<std::string>>>
      class_groups_ KGNET_GUARDED_BY(mu_);
  std::map<std::tuple<int, std::string, size_t>,
           std::shared_ptr<Group<std::vector<std::string>>>>
      links_groups_ KGNET_GUARDED_BY(mu_);
  uint64_t batched_calls_ KGNET_GUARDED_BY(mu_) = 0;
  uint64_t coalesced_requests_ KGNET_GUARDED_BY(mu_) = 0;
};

/// LRU cache of embedding rows keyed by (model URI, node IRI).
/// Thread-safe. Capacity is in rows; Clear() is called by the server
/// whenever a request may have changed the model set.
class EmbedRowCache {
 public:
  explicit EmbedRowCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached row and refreshes its recency, or nullopt.
  std::optional<std::vector<float>> Get(const std::string& model,
                                        const std::string& node);
  void Put(const std::string& model, const std::string& node,
           std::vector<float> row);
  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;

 private:
  using Entry = std::pair<std::string, std::vector<float>>;  // key, row

  const size_t capacity_;
  mutable common::Mutex mu_;
  std::list<Entry> lru_ KGNET_GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      KGNET_GUARDED_BY(mu_);
  uint64_t hits_ KGNET_GUARDED_BY(mu_) = 0;
  uint64_t misses_ KGNET_GUARDED_BY(mu_) = 0;
};

}  // namespace kgnet::serving

#endif  // KGNET_SERVING_INFER_BATCHER_H_
