#include "serving/circuit_breaker.h"

#include <algorithm>
#include <string>

namespace kgnet::serving {

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

Status CircuitBreaker::Admit() {
  common::MutexLock lock(&mu_);
  switch (state_) {
    case State::kClosed:
      return Status::OK();
    case State::kOpen: {
      const auto now = std::chrono::steady_clock::now();
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                                opened_at_)
              .count();
      if (elapsed >= options_.cooldown_ms) {
        state_ = State::kHalfOpen;
        probe_inflight_ = true;
        return Status::OK();
      }
      ++fast_fails_;
      return Status::Unavailable(
          "inference unavailable (breaker open), retry after " +
          std::to_string(options_.cooldown_ms - elapsed) + "ms");
    }
    case State::kHalfOpen:
      if (!probe_inflight_) {
        probe_inflight_ = true;
        return Status::OK();
      }
      ++fast_fails_;
      return Status::Unavailable(
          "inference unavailable (breaker half-open, probe in flight), "
          "retry after " +
          std::to_string(options_.cooldown_ms) + "ms");
  }
  return Status::OK();
}

void CircuitBreaker::Record(const Status& status) {
  common::MutexLock lock(&mu_);
  const bool failure = IsInfraFailure(status);
  switch (state_) {
    case State::kClosed:
      if (!failure) {
        consecutive_failures_ = 0;
        return;
      }
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_ = std::chrono::steady_clock::now();
        ++opens_;
      }
      return;
    case State::kHalfOpen:
      probe_inflight_ = false;
      if (failure) {
        state_ = State::kOpen;
        opened_at_ = std::chrono::steady_clock::now();
        ++opens_;
      } else {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
      }
      return;
    case State::kOpen:
      // A straggler admitted before the breaker opened; its outcome says
      // nothing the open state doesn't already know.
      return;
  }
}

void CircuitBreaker::Abort() {
  common::MutexLock lock(&mu_);
  if (state_ == State::kHalfOpen) probe_inflight_ = false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  common::MutexLock lock(&mu_);
  return state_;
}

uint64_t CircuitBreaker::opens() const {
  common::MutexLock lock(&mu_);
  return opens_;
}

uint64_t CircuitBreaker::fast_fails() const {
  common::MutexLock lock(&mu_);
  return fast_fails_;
}

int64_t CircuitBreaker::retry_after_ms() const {
  common::MutexLock lock(&mu_);
  if (state_ != State::kOpen) return 0;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - opened_at_)
                           .count();
  return std::max<int64_t>(0, options_.cooldown_ms - elapsed);
}

}  // namespace kgnet::serving
