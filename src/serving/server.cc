#include "serving/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/fault_injection.h"
#include "sparql/parser.h"

namespace kgnet::serving {

namespace {

constexpr int kPollSliceMs = 50;

using SteadyClock = std::chrono::steady_clock;

/// Fires the deterministic fault injector at a server-side site and
/// keeps the per-server count (the injector itself is process-global).
bool InjectFault(common::FaultSite site) {
  return common::FaultInjector::Instance().ShouldFail(site);
}

/// Strict digit-only parse (the KGNET_NUM_THREADS contract): optional
/// surrounding blanks, digits only, bounded range; anything else is 0.
int ParseBoundedEnv(const char* text, long long max_value) {
  if (text == nullptr) return 0;
  const char* p = text;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p < '0' || *p > '9') return 0;  // also rejects "+4", "-2"
  long long n = 0;
  while (*p >= '0' && *p <= '9') {
    n = n * 10 + (*p - '0');
    if (n > max_value) return 0;
    ++p;
  }
  while (*p == ' ' || *p == '\t') ++p;
  if (*p != '\0') return 0;  // trailing junk ("8abc", "4.5")
  return n > 0 ? static_cast<int>(n) : 0;
}

int EnvOverride(const char* name, int (*parse)(const char*), int fallback,
                const char* want, std::atomic<bool>* warned) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const int v = parse(env);
  if (v > 0) return v;
  // One-time warning: a malformed value silently falling back is a
  // misconfiguration the operator should hear about.
  if (!warned->exchange(true))
    std::fprintf(stderr,
                 "kgnet: ignoring invalid %s=\"%s\" (want %s); using %d\n",
                 name, env, want, fallback);
  return fallback;
}

std::atomic<bool> g_port_warned{false};
std::atomic<bool> g_workers_warned{false};
std::atomic<bool> g_queue_warned{false};
std::atomic<bool> g_drain_warned{false};

/// True when the peer behind `fd` is gone: a clean EOF or a hard reset
/// visible to a non-blocking MSG_PEEK. Pending request bytes (r > 0) and
/// transient conditions (EAGAIN, EINTR) mean "still there".
///
/// EOF is *deliberately* read as abandonment: in this request/response
/// protocol a FIN from a fully-closed and a half-closed (SHUT_WR) peer
/// is indistinguishable, the bundled KgClient never half-closes, and
/// tolerating EOF would let every orderly-closed client keep burning a
/// worker until its query finishes. The trade-off — a third-party client
/// that half-closes after sending its request gets its query cancelled —
/// is documented in docs/RESILIENCE.md ("client abandonment").
bool PeerGone(int fd) {
  char byte;
  const ssize_t r = recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (r == 0) return true;  // orderly shutdown from the client
  if (r < 0 &&
      (errno == ECONNRESET || errno == EPIPE || errno == ENOTCONN ||
       errno == EBADF))
    return true;
  return false;
}

/// Any variable in predicate position, anywhere in the pattern tree?
bool HasVariablePredicate(const sparql::GraphPattern& pattern) {
  for (const sparql::PatternTriple& t : pattern.triples)
    if (t.p.is_var) return true;
  for (const auto& chain : pattern.unions)
    for (const sparql::GraphPattern& alt : chain)
      if (HasVariablePredicate(alt)) return true;
  for (const sparql::GraphPattern& opt : pattern.optionals)
    if (HasVariablePredicate(opt)) return true;
  for (const auto& sub : pattern.subselects)
    if (sub != nullptr && HasVariablePredicate(sub->where)) return true;
  return false;
}

}  // namespace

/// Registers one in-flight request (and, when a query — plain read or
/// serialized service-path — carries a CancelSource, that source) with
/// the server for the scope of its handling, so Drain() can wait for it
/// and hard-cancel it on timeout.
class ScopedActiveSource {
 public:
  ScopedActiveSource(KgServer* server, common::CancelSource* source)
      : server_(server), source_(source) {
    common::MutexLock lock(&server_->active_mu_);
    ++server_->inflight_;
    if (source_ != nullptr) server_->active_sources_.push_back(source_);
  }
  ~ScopedActiveSource() {
    common::MutexLock lock(&server_->active_mu_);
    --server_->inflight_;
    if (source_ != nullptr) {
      auto& v = server_->active_sources_;
      for (size_t i = 0; i < v.size(); ++i) {
        if (v[i] == source_) {
          v[i] = v.back();
          v.pop_back();
          break;
        }
      }
    }
    if (server_->inflight_ == 0) server_->active_cv_.NotifyAll();
  }
  ScopedActiveSource(const ScopedActiveSource&) = delete;
  ScopedActiveSource& operator=(const ScopedActiveSource&) = delete;

 private:
  KgServer* server_;
  common::CancelSource* source_;
};

int KgServer::ParsePortEnv(const char* text) {
  return ParseBoundedEnv(text, 65535);
}

int KgServer::ParseWorkersEnv(const char* text) {
  return ParseBoundedEnv(text, 1024);
}

int KgServer::ParseQueueDepthEnv(const char* text) {
  return ParseBoundedEnv(text, 1000000);
}

int KgServer::ParseDrainTimeoutEnv(const char* text) {
  return ParseBoundedEnv(text, 600000);
}

bool CacheableRidOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
      return false;
    default:
      return true;
  }
}

ServerOptions ApplyServerEnv(ServerOptions base) {
  base.port = EnvOverride("KGNET_SERVE_PORT", &KgServer::ParsePortEnv,
                          base.port, "a port in 1..65535", &g_port_warned);
  base.num_workers =
      EnvOverride("KGNET_SERVE_WORKERS", &KgServer::ParseWorkersEnv,
                  base.num_workers, "a worker count in 1..1024",
                  &g_workers_warned);
  base.queue_depth =
      EnvOverride("KGNET_SERVE_QUEUE_DEPTH", &KgServer::ParseQueueDepthEnv,
                  base.queue_depth, "a queue depth in 1..1000000",
                  &g_queue_warned);
  base.drain_timeout_ms = EnvOverride(
      "KGNET_DRAIN_TIMEOUT_MS", &KgServer::ParseDrainTimeoutEnv,
      base.drain_timeout_ms, "a timeout in ms in 1..600000", &g_drain_warned);
  return base;
}

bool KgServer::RoutesToService(const sparql::Query& query,
                               std::string_view text) {
  if (query.kind != sparql::QueryKind::kSelect &&
      query.kind != sparql::QueryKind::kAsk)
    return true;  // updates: single-writer contract
  if (text.find("TrainGML") != std::string_view::npos) return true;
  if (text.find("sql:UDFS") != std::string_view::npos) return true;
  return HasVariablePredicate(query.where);
}

KgServer::KgServer(core::SparqlMlService* service, ServerOptions options)
    : service_(service),
      options_(options),
      batcher_(&service->inference_manager(), options.batcher),
      embed_cache_(options.embed_cache_rows),
      breaker_(options.breaker) {}

KgServer::~KgServer() { Stop(); }

Status KgServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  if (options_.num_workers < 1 || options_.queue_depth < 1)
    return Status::InvalidArgument(
        "num_workers and queue_depth must be positive");
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, 128) < 0) {
    const Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    const Status st =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
  return Status::OK();
}

void KgServer::Drain() {
  if (listen_fd_ < 0) return;
  draining_.store(true, std::memory_order_relaxed);
  const auto deadline =
      SteadyClock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);
  {
    common::MutexLock lock(&active_mu_);
    while (inflight_ > 0) {
      const auto now = SteadyClock::now();
      if (now >= deadline) break;
      active_cv_.WaitFor(
          active_mu_,
          std::chrono::duration_cast<std::chrono::microseconds>(deadline - now));
    }
    if (inflight_ > 0) {
      // Stragglers past the drain deadline: hard-cancel through their
      // registered sources. Their workers observe the token at the next
      // poll, answer Cancelled, and exit via the stop flag below.
      for (common::CancelSource* source : active_sources_)
        source->Cancel(common::CancelReason::kDrain);
    }
  }
  Stop();
}

void KgServer::Stop() {
  if (listen_fd_ < 0) return;
  {
    // The store must happen under queue_mu_: a worker that just evaluated
    // its wait predicate but has not yet blocked would otherwise miss both
    // the flag and the wakeup and sleep forever (join() then deadlocks).
    common::MutexLock lock(&queue_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  queue_cv_.NotifyAll();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    common::MutexLock lock(&queue_mu_);
    for (const PendingConn& c : queue_) close(c.fd);
    queue_.clear();
  }
  close(listen_fd_);
  listen_fd_ = -1;
}

void KgServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = poll(&pfd, 1, kPollSliceMs);
    if (pr <= 0) continue;  // timeout slice or EINTR: re-check stop flag
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      common::MutexLock lock(&stats_mu_);
      ++stats_.connections_accepted;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      WriteFrame(fd, BuildErrorResponse(
                         0, Status::Unavailable("server draining")));
      close(fd);
      BumpStat(&Stats::drain_rejects);
      continue;
    }
    if (InjectFault(common::FaultSite::kAdmissionQueue)) {
      BumpStat(&Stats::injected_faults);
      WriteFrame(fd, BuildErrorResponse(
                         0, Status::ResourceExhausted(
                                "injected fault: admission queue")));
      close(fd);
      continue;
    }
    bool admitted = false;
    {
      common::MutexLock lock(&queue_mu_);
      if (queue_.size() < static_cast<size_t>(options_.queue_depth)) {
        queue_.push_back({fd, std::chrono::steady_clock::now()});
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.NotifyOne();
      continue;
    }
    // Admission control: a full queue answers immediately instead of
    // stalling the client until some worker frees up. Count before the
    // reply write so a client that sees the reject never reads a stale
    // counter.
    BumpStat(&Stats::overload_rejects);
    WriteFrame(fd, BuildErrorResponse(
                       0, Status::ResourceExhausted(
                              "server overloaded: request queue full")));
    close(fd);
  }
}

void KgServer::WorkerLoop() {
  for (;;) {
    PendingConn conn;
    {
      common::MutexLock lock(&queue_mu_);
      while (queue_.empty() && !stop_.load(std::memory_order_relaxed))
        queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // stopping
      conn = queue_.front();
      queue_.pop_front();
    }
    if (draining_.load(std::memory_order_relaxed)) {
      WriteFrame(conn.fd, BuildErrorResponse(
                              0, Status::Unavailable("server draining")));
      close(conn.fd);
      BumpStat(&Stats::drain_rejects);
      continue;
    }
    if (InjectFault(common::FaultSite::kTaskDispatch)) {
      BumpStat(&Stats::injected_faults);
      WriteFrame(conn.fd, BuildErrorResponse(
                              0, Status::ResourceExhausted(
                                     "injected fault: task dispatch")));
      close(conn.fd);
      continue;
    }
    const auto waited = std::chrono::steady_clock::now() - conn.enqueued;
    if (options_.request_deadline_ms > 0 &&
        waited >= std::chrono::milliseconds(options_.request_deadline_ms)) {
      // The client already waited past its deadline; answering now with
      // real work would only add tail latency for everyone behind it.
      // Count before the reply write (see the acceptor-side reject).
      BumpStat(&Stats::overload_rejects);
      WriteFrame(conn.fd,
                 BuildErrorResponse(
                     0, Status::ResourceExhausted(
                            "server overloaded: queue wait exceeded deadline")));
      close(conn.fd);
      continue;
    }
    ServeConnection(conn.fd, conn.enqueued);
  }
}

void KgServer::ServeConnection(int fd,
                               std::chrono::steady_clock::time_point enqueued) {
  bool first_request = true;
  for (;;) {
    if (InjectFault(common::FaultSite::kSocketRead)) {
      // A read-side transport fault: the connection dies without a
      // byte of explanation, exactly like a mid-request peer reset.
      BumpStat(&Stats::injected_faults);
      break;
    }
    std::string body;
    const Status rs = ReadFrame(fd, options_.max_frame_bytes,
                                options_.idle_timeout_ms, &stop_, &body);
    if (!rs.ok()) {
      if (rs.code() == StatusCode::kInvalidArgument) {
        // Over-cap length prefix: tell the client why, then drop the
        // connection (the stream cannot be re-synchronized).
        WriteFrame(fd, BuildErrorResponse(0, rs));
        common::MutexLock lock(&stats_mu_);
        ++stats_.malformed_frames;
        ++stats_.error_responses;
      }
      break;  // clean close, idle timeout, stop, or socket error
    }
    if (draining_.load(std::memory_order_relaxed)) {
      WriteFrame(fd, BuildErrorResponse(
                         0, Status::Unavailable("server draining")));
      BumpStat(&Stats::drain_rejects);
      break;
    }
    // Deadline budgets start when the request arrived: a connection's
    // first request was already waiting while queued, later ones arrive
    // with the frame just read.
    const auto anchor =
        first_request ? enqueued : std::chrono::steady_clock::now();
    first_request = false;
    std::string resp;
    {
      // Every in-flight request is visible to Drain(), whatever its op.
      ScopedActiveSource active(this, nullptr);
      resp = HandleBody(fd, body, anchor);
    }
    {
      // Count before the write: once a client has read its response, the
      // counter must already include it (tests sample stats right after
      // their last reply arrives).
      common::MutexLock lock(&stats_mu_);
      ++stats_.requests_served;
    }
    if (InjectFault(common::FaultSite::kSocketWrite)) {
      // Write-side transport fault: the request executed but the
      // response evaporates — the ambiguity the "rid" dedup cache
      // exists to make retry-safe.
      BumpStat(&Stats::injected_faults);
      break;
    }
    if (!WriteFrame(fd, resp).ok()) break;
    if (draining_.load(std::memory_order_relaxed)) break;
  }
  close(fd);
}

std::string KgServer::HandleBody(
    int fd, const std::string& body,
    std::chrono::steady_clock::time_point anchor) {
  if (InjectFault(common::FaultSite::kFrameParse)) {
    BumpStat(&Stats::injected_faults);
    BumpError();
    return BuildErrorResponse(
        0, Status::InvalidArgument("injected fault: frame parse"));
  }
  auto req = ParseRequest(body);
  if (!req.ok()) {
    BumpError();
    return BuildErrorResponse(0, req.status());
  }
  switch (req->op) {
    case Request::Op::kPing:
      return BuildPongResponse(req->id);
    case Request::Op::kHealth:
      return HandleHealth(*req);
    case Request::Op::kQuery:
      return HandleQuery(fd, *req, anchor);
    case Request::Op::kInferClass:
    case Request::Op::kInferLinks:
    case Request::Op::kInferSimilar:
      return HandleInfer(*req);
  }
  BumpError();
  return BuildErrorResponse(req->id, Status::Internal("unhandled op"));
}

std::string KgServer::HandleQuery(
    int fd, const Request& req,
    std::chrono::steady_clock::time_point anchor) {
  auto parsed = sparql::ParseQuery(req.query);
  if (!parsed.ok()) {
    BumpError();
    return BuildErrorResponse(req.id, parsed.status());
  }
  // Deadline triage before any execution: a zero budget never had a
  // chance, and a budget that queue wait already consumed fails here
  // instead of burning a snapshot (satellite 3, docs/RESILIENCE.md).
  const bool has_deadline = req.deadline_ms >= 0;
  const auto deadline_at = anchor + std::chrono::milliseconds(
                                        has_deadline ? req.deadline_ms : 0);
  if (has_deadline) {
    if (req.deadline_ms == 0) {
      BumpStat(&Stats::deadline_immediate);
      BumpError();
      return BuildErrorResponse(
          req.id,
          Status::DeadlineExceeded("deadline_ms=0: request has no budget"));
    }
    if (std::chrono::steady_clock::now() >= deadline_at) {
      BumpStat(&Stats::deadline_queue_expired);
      BumpError();
      return BuildErrorResponse(
          req.id, Status::DeadlineExceeded(
                      "deadline expired before execution started"));
    }
  }
  if (RoutesToService(*parsed, req.query)) {
    const bool mutating = parsed->kind != sparql::QueryKind::kSelect &&
                          parsed->kind != sparql::QueryKind::kAsk;
    if (mutating && !req.rid.empty() && options_.rid_cache_entries > 0) {
      // At-most-once: a retried mutating request is answered with the
      // response cached when it was first applied.
      std::string cached = LookupRidResponse(req.rid);
      if (!cached.empty()) {
        BumpStat(&Stats::rid_replays);
        return cached;
      }
    }
    if (!mutating) {
      // SPARQL-ML reads sit behind the inference circuit breaker: with
      // the model runtime wedged they fail fast with a retry-after hint
      // instead of queueing on ml_mu_ (plain reads never come here).
      Status admit = breaker_.Admit();
      if (!admit.ok()) {
        BumpStat(&Stats::breaker_fast_fails);
        BumpError();
        return BuildErrorResponse(req.id, admit);
      }
    }
    // The serialized path carries a CancelSource of its own: the deadline
    // trips it mid-execution (the engine polls per pulled row, trainers
    // per epoch), and a timed-out Drain() hard-cancels it — so SIGTERM
    // shutdown stays bounded even under a long training run. No abandon
    // probe here: an update whose client vanished still runs to its
    // atomic completion rather than being torn mid-request.
    common::CancelSource source;
    if (has_deadline) source.set_deadline(deadline_at);
    Result<sparql::QueryResult> result = Status::Internal("pending");
    {
      ScopedActiveSource active(this, &source);
      common::MutexLock lock(&ml_mu_);
      // The budget (or the whole server) may have run out while this
      // request waited for the serialized path; the model was never
      // called, so release the admission without a verdict.
      const Status waited = source.token().Check();
      if (!waited.ok()) {
        if (!mutating) breaker_.Abort();
        BumpStat(waited.code() == StatusCode::kDeadlineExceeded
                     ? &Stats::deadline_exec_expired
                     : &Stats::cancelled);
        BumpError();
        return BuildErrorResponse(req.id, waited);
      }
      result = service_->Execute(req.query, nullptr, source.token());
    }
    const StatusCode rc = result.status().code();
    const bool cancelled_class =
        rc == StatusCode::kCancelled || rc == StatusCode::kDeadlineExceeded;
    if (!mutating) {
      // A cancelled or deadline-expired run is no verdict on the model
      // runtime: release the admission instead of recording it.
      if (cancelled_class)
        breaker_.Abort();
      else
        breaker_.Record(result.status());
    }
    // Training and model deletes change what the inference ops may
    // serve; drop cached rows rather than risk a stale model's.
    if (mutating) embed_cache_.Clear();
    std::string resp;
    if (!result.ok()) {
      if (rc == StatusCode::kDeadlineExceeded)
        BumpStat(&Stats::deadline_exec_expired);
      else if (rc == StatusCode::kCancelled)
        BumpStat(&Stats::cancelled);
      BumpError();
      resp = BuildErrorResponse(req.id, result.status());
    } else {
      resp = BuildQueryResponse(req.id, *result, nullptr);
    }
    // Only definitive outcomes enter the dedup cache: a transient error
    // must stay retryable under the same rid (see CacheableRidOutcome).
    if (mutating && !req.rid.empty() && options_.rid_cache_entries > 0 &&
        CacheableRidOutcome(result.status()))
      StoreRidResponse(req.rid, resp);
    return resp;
  }
  // Concurrent plain-read path: one MVCC snapshot per request, one
  // CancelSource wired for the deadline, the peer vanishing, and a
  // drain hard-cancel.
  common::CancelSource source;
  if (has_deadline) source.set_deadline(deadline_at);
  source.set_abandon_probe([fd] { return PeerGone(fd); });
  sparql::ExecInfo info;
  const rdf::Snapshot snapshot = service_->engine().store()->OpenSnapshot();
  Result<sparql::QueryResult> result = Status::Internal("pending");
  {
    ScopedActiveSource active(this, &source);
    result =
        service_->engine().Execute(*parsed, snapshot, &info, source.token());
  }
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kDeadlineExceeded)
      BumpStat(&Stats::deadline_exec_expired);
    else if (result.status().code() == StatusCode::kCancelled)
      BumpStat(&Stats::cancelled);
    BumpError();
    return BuildErrorResponse(req.id, result.status());
  }
  return BuildQueryResponse(req.id, *result, &info);
}

std::string KgServer::HandleHealth(const Request& req) {
  HealthInfo h;
  h.breaker = BreakerStateName(breaker_.state());
  h.retry_after_ms = breaker_.retry_after_ms();
  {
    common::MutexLock lock(&queue_mu_);
    h.queue_depth = queue_.size();
  }
  h.queue_capacity = static_cast<size_t>(options_.queue_depth);
  h.epoch = service_->engine().store()->OpenSnapshot().epoch();
  h.draining = draining_.load(std::memory_order_relaxed);
  {
    // Served count as of before this health request (it is counted
    // after HandleBody returns).
    common::MutexLock lock(&stats_mu_);
    h.requests_served = stats_.requests_served;
  }
  return BuildHealthResponse(req.id, h);
}

std::string KgServer::LookupRidResponse(const std::string& rid) {
  common::MutexLock lock(&rid_mu_);
  auto it = rid_cache_.find(rid);
  if (it == rid_cache_.end()) return std::string();
  rid_lru_.splice(rid_lru_.begin(), rid_lru_, it->second.first);
  return it->second.second;
}

void KgServer::StoreRidResponse(const std::string& rid,
                                const std::string& response) {
  common::MutexLock lock(&rid_mu_);
  auto it = rid_cache_.find(rid);
  if (it != rid_cache_.end()) {
    rid_lru_.splice(rid_lru_.begin(), rid_lru_, it->second.first);
    it->second.second = response;
    return;
  }
  rid_lru_.push_front(rid);
  rid_cache_.emplace(rid, std::make_pair(rid_lru_.begin(), response));
  while (rid_cache_.size() > options_.rid_cache_entries) {
    rid_cache_.erase(rid_lru_.back());
    rid_lru_.pop_back();
  }
}

std::string KgServer::HandleInfer(const Request& req) {
  // Every inference op passes the circuit breaker: Admit() -> model
  // call -> Record(outcome). Wedged-model failures (Internal /
  // Unavailable) accumulate and open it; client mistakes (NotFound,
  // InvalidArgument) do not.
  {
    Status admit = breaker_.Admit();
    if (!admit.ok()) {
      BumpStat(&Stats::breaker_fast_fails);
      BumpError();
      return BuildErrorResponse(req.id, admit);
    }
  }
  if (InjectFault(common::FaultSite::kModelCall)) {
    const Status st = Status::Internal("injected fault: model call");
    breaker_.Record(st);
    BumpStat(&Stats::injected_faults);
    BumpError();
    return BuildErrorResponse(req.id, st);
  }
  core::InferenceManager& im = service_->inference_manager();
  if (req.op == Request::Op::kInferClass) {
    auto r = batcher_.NodeClass(req.model, req.node);
    breaker_.Record(r.status());
    if (!r.ok()) {
      BumpError();
      return BuildErrorResponse(req.id, r.status());
    }
    return BuildValueResponse(req.id, *r);
  }
  if (req.op == Request::Op::kInferLinks) {
    auto r = batcher_.TopKLinks(req.model, req.node, req.k);
    breaker_.Record(r.status());
    if (!r.ok()) {
      BumpError();
      return BuildErrorResponse(req.id, r.status());
    }
    return BuildValuesResponse(req.id, *r);
  }
  // infer_similar: serve the query row from the LRU when possible. A
  // miss (or a model without a row for this node) falls back to the
  // uncached call, which re-derives the row — and re-produces the exact
  // error — itself, so the cache never changes a response.
  Result<std::vector<std::string>> r = Status::Internal("pending");
  std::optional<std::vector<float>> row =
      options_.embed_cache_rows > 0 ? embed_cache_.Get(req.model, req.node)
                                    : std::nullopt;
  if (!row.has_value() && options_.embed_cache_rows > 0) {
    auto fetched = im.GetEmbeddingRow(req.model, req.node);
    if (fetched.ok()) {
      embed_cache_.Put(req.model, req.node, *fetched);
      row = std::move(*fetched);
    }
  }
  if (row.has_value())
    r = im.GetSimilarByRow(req.model, req.node, *row, req.k);
  else
    r = im.GetSimilarEntities(req.model, req.node, req.k);
  breaker_.Record(r.status());
  if (!r.ok()) {
    BumpError();
    return BuildErrorResponse(req.id, r.status());
  }
  return BuildValuesResponse(req.id, *r);
}

KgServer::Stats KgServer::stats() const {
  common::MutexLock lock(&stats_mu_);
  return stats_;
}

}  // namespace kgnet::serving
