#include "serving/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "sparql/parser.h"

namespace kgnet::serving {

namespace {

constexpr int kPollSliceMs = 50;

/// Strict digit-only parse (the KGNET_NUM_THREADS contract): optional
/// surrounding blanks, digits only, bounded range; anything else is 0.
int ParseBoundedEnv(const char* text, long long max_value) {
  if (text == nullptr) return 0;
  const char* p = text;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p < '0' || *p > '9') return 0;  // also rejects "+4", "-2"
  long long n = 0;
  while (*p >= '0' && *p <= '9') {
    n = n * 10 + (*p - '0');
    if (n > max_value) return 0;
    ++p;
  }
  while (*p == ' ' || *p == '\t') ++p;
  if (*p != '\0') return 0;  // trailing junk ("8abc", "4.5")
  return n > 0 ? static_cast<int>(n) : 0;
}

int EnvOverride(const char* name, int (*parse)(const char*), int fallback,
                const char* want, std::atomic<bool>* warned) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const int v = parse(env);
  if (v > 0) return v;
  // One-time warning: a malformed value silently falling back is a
  // misconfiguration the operator should hear about.
  if (!warned->exchange(true))
    std::fprintf(stderr,
                 "kgnet: ignoring invalid %s=\"%s\" (want %s); using %d\n",
                 name, env, want, fallback);
  return fallback;
}

std::atomic<bool> g_port_warned{false};
std::atomic<bool> g_workers_warned{false};
std::atomic<bool> g_queue_warned{false};

/// Any variable in predicate position, anywhere in the pattern tree?
bool HasVariablePredicate(const sparql::GraphPattern& pattern) {
  for (const sparql::PatternTriple& t : pattern.triples)
    if (t.p.is_var) return true;
  for (const auto& chain : pattern.unions)
    for (const sparql::GraphPattern& alt : chain)
      if (HasVariablePredicate(alt)) return true;
  for (const sparql::GraphPattern& opt : pattern.optionals)
    if (HasVariablePredicate(opt)) return true;
  for (const auto& sub : pattern.subselects)
    if (sub != nullptr && HasVariablePredicate(sub->where)) return true;
  return false;
}

}  // namespace

int KgServer::ParsePortEnv(const char* text) {
  return ParseBoundedEnv(text, 65535);
}

int KgServer::ParseWorkersEnv(const char* text) {
  return ParseBoundedEnv(text, 1024);
}

int KgServer::ParseQueueDepthEnv(const char* text) {
  return ParseBoundedEnv(text, 1000000);
}

ServerOptions ApplyServerEnv(ServerOptions base) {
  base.port = EnvOverride("KGNET_SERVE_PORT", &KgServer::ParsePortEnv,
                          base.port, "a port in 1..65535", &g_port_warned);
  base.num_workers =
      EnvOverride("KGNET_SERVE_WORKERS", &KgServer::ParseWorkersEnv,
                  base.num_workers, "a worker count in 1..1024",
                  &g_workers_warned);
  base.queue_depth =
      EnvOverride("KGNET_SERVE_QUEUE_DEPTH", &KgServer::ParseQueueDepthEnv,
                  base.queue_depth, "a queue depth in 1..1000000",
                  &g_queue_warned);
  return base;
}

bool KgServer::RoutesToService(const sparql::Query& query,
                               std::string_view text) {
  if (query.kind != sparql::QueryKind::kSelect &&
      query.kind != sparql::QueryKind::kAsk)
    return true;  // updates: single-writer contract
  if (text.find("TrainGML") != std::string_view::npos) return true;
  if (text.find("sql:UDFS") != std::string_view::npos) return true;
  return HasVariablePredicate(query.where);
}

KgServer::KgServer(core::SparqlMlService* service, ServerOptions options)
    : service_(service),
      options_(options),
      batcher_(&service->inference_manager(), options.batcher),
      embed_cache_(options.embed_cache_rows) {}

KgServer::~KgServer() { Stop(); }

Status KgServer::Start() {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  if (options_.num_workers < 1 || options_.queue_depth < 1)
    return Status::InvalidArgument(
        "num_workers and queue_depth must be positive");
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, 128) < 0) {
    const Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    const Status st =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
  return Status::OK();
}

void KgServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.NotifyAll();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  {
    common::MutexLock lock(&queue_mu_);
    for (const PendingConn& c : queue_) close(c.fd);
    queue_.clear();
  }
  close(listen_fd_);
  listen_fd_ = -1;
}

void KgServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = poll(&pfd, 1, kPollSliceMs);
    if (pr <= 0) continue;  // timeout slice or EINTR: re-check stop flag
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    {
      common::MutexLock lock(&stats_mu_);
      ++stats_.connections_accepted;
    }
    bool admitted = false;
    {
      common::MutexLock lock(&queue_mu_);
      if (queue_.size() < static_cast<size_t>(options_.queue_depth)) {
        queue_.push_back({fd, std::chrono::steady_clock::now()});
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.NotifyOne();
      continue;
    }
    // Admission control: a full queue answers immediately instead of
    // stalling the client until some worker frees up.
    WriteFrame(fd, BuildErrorResponse(
                       0, Status::ResourceExhausted(
                              "server overloaded: request queue full")));
    close(fd);
    common::MutexLock lock(&stats_mu_);
    ++stats_.overload_rejects;
  }
}

void KgServer::WorkerLoop() {
  for (;;) {
    PendingConn conn;
    {
      common::MutexLock lock(&queue_mu_);
      while (queue_.empty() && !stop_.load(std::memory_order_relaxed))
        queue_cv_.Wait(queue_mu_);
      if (queue_.empty()) return;  // stopping
      conn = queue_.front();
      queue_.pop_front();
    }
    const auto waited = std::chrono::steady_clock::now() - conn.enqueued;
    if (options_.request_deadline_ms > 0 &&
        waited >= std::chrono::milliseconds(options_.request_deadline_ms)) {
      // The client already waited past its deadline; answering now with
      // real work would only add tail latency for everyone behind it.
      WriteFrame(conn.fd,
                 BuildErrorResponse(
                     0, Status::ResourceExhausted(
                            "server overloaded: queue wait exceeded deadline")));
      close(conn.fd);
      common::MutexLock lock(&stats_mu_);
      ++stats_.overload_rejects;
      continue;
    }
    ServeConnection(conn.fd);
  }
}

void KgServer::ServeConnection(int fd) {
  for (;;) {
    std::string body;
    const Status rs = ReadFrame(fd, options_.max_frame_bytes,
                                options_.idle_timeout_ms, &stop_, &body);
    if (!rs.ok()) {
      if (rs.code() == StatusCode::kInvalidArgument) {
        // Over-cap length prefix: tell the client why, then drop the
        // connection (the stream cannot be re-synchronized).
        WriteFrame(fd, BuildErrorResponse(0, rs));
        common::MutexLock lock(&stats_mu_);
        ++stats_.malformed_frames;
        ++stats_.error_responses;
      }
      break;  // clean close, idle timeout, stop, or socket error
    }
    const std::string resp = HandleBody(body);
    {
      // Count before the write: once a client has read its response, the
      // counter must already include it (tests sample stats right after
      // their last reply arrives).
      common::MutexLock lock(&stats_mu_);
      ++stats_.requests_served;
    }
    if (!WriteFrame(fd, resp).ok()) break;
  }
  close(fd);
}

std::string KgServer::HandleBody(const std::string& body) {
  auto req = ParseRequest(body);
  if (!req.ok()) {
    BumpError();
    return BuildErrorResponse(0, req.status());
  }
  switch (req->op) {
    case Request::Op::kPing:
      return BuildPongResponse(req->id);
    case Request::Op::kQuery:
      return HandleQuery(*req);
    case Request::Op::kInferClass:
    case Request::Op::kInferLinks:
    case Request::Op::kInferSimilar:
      return HandleInfer(*req);
  }
  BumpError();
  return BuildErrorResponse(req->id, Status::Internal("unhandled op"));
}

std::string KgServer::HandleQuery(const Request& req) {
  auto parsed = sparql::ParseQuery(req.query);
  if (!parsed.ok()) {
    BumpError();
    return BuildErrorResponse(req.id, parsed.status());
  }
  if (RoutesToService(*parsed, req.query)) {
    Result<sparql::QueryResult> result = Status::Internal("pending");
    {
      common::MutexLock lock(&ml_mu_);
      result = service_->Execute(req.query);
    }
    // Training and model deletes change what the inference ops may
    // serve; drop cached rows rather than risk a stale model's.
    if (parsed->kind != sparql::QueryKind::kSelect &&
        parsed->kind != sparql::QueryKind::kAsk)
      embed_cache_.Clear();
    if (!result.ok()) {
      BumpError();
      return BuildErrorResponse(req.id, result.status());
    }
    return BuildQueryResponse(req.id, *result, nullptr);
  }
  // Concurrent plain-read path: one MVCC snapshot per request.
  sparql::ExecInfo info;
  const rdf::Snapshot snapshot = service_->engine().store()->OpenSnapshot();
  auto result = service_->engine().Execute(*parsed, snapshot, &info);
  if (!result.ok()) {
    BumpError();
    return BuildErrorResponse(req.id, result.status());
  }
  return BuildQueryResponse(req.id, *result, &info);
}

std::string KgServer::HandleInfer(const Request& req) {
  core::InferenceManager& im = service_->inference_manager();
  if (req.op == Request::Op::kInferClass) {
    auto r = batcher_.NodeClass(req.model, req.node);
    if (!r.ok()) {
      BumpError();
      return BuildErrorResponse(req.id, r.status());
    }
    return BuildValueResponse(req.id, *r);
  }
  if (req.op == Request::Op::kInferLinks) {
    auto r = batcher_.TopKLinks(req.model, req.node, req.k);
    if (!r.ok()) {
      BumpError();
      return BuildErrorResponse(req.id, r.status());
    }
    return BuildValuesResponse(req.id, *r);
  }
  // infer_similar: serve the query row from the LRU when possible. A
  // miss (or a model without a row for this node) falls back to the
  // uncached call, which re-derives the row — and re-produces the exact
  // error — itself, so the cache never changes a response.
  Result<std::vector<std::string>> r = Status::Internal("pending");
  std::optional<std::vector<float>> row =
      options_.embed_cache_rows > 0 ? embed_cache_.Get(req.model, req.node)
                                    : std::nullopt;
  if (!row.has_value() && options_.embed_cache_rows > 0) {
    auto fetched = im.GetEmbeddingRow(req.model, req.node);
    if (fetched.ok()) {
      embed_cache_.Put(req.model, req.node, *fetched);
      row = std::move(*fetched);
    }
  }
  if (row.has_value())
    r = im.GetSimilarByRow(req.model, req.node, *row, req.k);
  else
    r = im.GetSimilarEntities(req.model, req.node, req.k);
  if (!r.ok()) {
    BumpError();
    return BuildErrorResponse(req.id, r.status());
  }
  return BuildValuesResponse(req.id, *r);
}

KgServer::Stats KgServer::stats() const {
  common::MutexLock lock(&stats_mu_);
  return stats_;
}

}  // namespace kgnet::serving
