#include "workload/dblp_gen.h"

#include <string>
#include <vector>

#include "rdf/term.h"
#include "tensor/rng.h"

namespace kgnet::workload {

using rdf::Term;
using rdf::TripleStore;

namespace {

std::string Iri(const std::string& kind, size_t i) {
  return std::string(kDblpNs) + kind + "/" + std::to_string(i);
}

}  // namespace

Status GenerateDblp(const DblpOptions& o, TripleStore* store) {
  if (o.num_venues == 0 || o.num_papers == 0 || o.num_authors == 0 ||
      o.num_affiliations == 0)
    return Status::InvalidArgument("DBLP generator requires non-zero sizes");
  tensor::Rng rng(o.seed);
  const std::string type = std::string(rdf::kRdfType);

  // --- Venues ---
  std::vector<std::string> venues(o.num_venues);
  for (size_t v = 0; v < o.num_venues; ++v) {
    venues[v] = Iri("venue", v);
    store->InsertIris(venues[v], type, DblpSchema::Venue());
    if (o.include_literals) {
      store->Insert(Term::Iri(venues[v]), Term::Iri(DblpSchema::Pred("label")),
                    Term::Literal("Venue " + std::to_string(v)));
    }
  }

  // --- Affiliations: each belongs to a venue community ---
  std::vector<std::string> affiliations(o.num_affiliations);
  for (size_t a = 0; a < o.num_affiliations; ++a) {
    affiliations[a] = Iri("affiliation", a);
    store->InsertIris(affiliations[a], type, DblpSchema::Affiliation());
    // Country periphery (irrelevant to both tasks).
    if (o.include_periphery) {
      store->InsertIris(affiliations[a], DblpSchema::Pred("locatedIn"),
                        Iri("country", a % 25));
    }
  }
  if (o.include_periphery) {
    for (size_t c = 0; c < 25; ++c)
      store->InsertIris(Iri("country", c), type, DblpSchema::Class("Country"));
  }

  // --- Authors ---
  // Community of author i: i % num_venues. Affiliation drawn from the
  // affiliations of the same community (affiliation a belongs to community
  // a % num_venues).
  std::vector<std::string> authors(o.num_authors);
  std::vector<size_t> author_comm(o.num_authors);
  std::vector<std::vector<size_t>> comm_affils(o.num_venues);
  for (size_t a = 0; a < o.num_affiliations; ++a)
    comm_affils[a % o.num_venues].push_back(a);
  for (size_t i = 0; i < o.num_authors; ++i) {
    authors[i] = Iri("person", i);
    author_comm[i] = i % o.num_venues;
    store->InsertIris(authors[i], type, DblpSchema::Person());
    // Affiliation link: community-biased with probability
    // affiliation_community_bias, else uniform.
    size_t aff;
    const auto& pool = comm_affils[author_comm[i]];
    if (!pool.empty() &&
        rng.NextFloat() < static_cast<float>(o.affiliation_community_bias)) {
      aff = pool[rng.NextUint(pool.size())];
    } else {
      aff = rng.NextUint(o.num_affiliations);
    }
    store->InsertIris(authors[i], DblpSchema::PrimaryAffiliation(),
                      affiliations[aff]);
    for (size_t k = 0; k < o.past_affiliations_per_author; ++k) {
      store->InsertIris(authors[i], DblpSchema::Pred("pastAffiliation"),
                        affiliations[rng.NextUint(o.num_affiliations)]);
    }
    if (o.include_literals) {
      store->Insert(Term::Iri(authors[i]),
                    Term::Iri(DblpSchema::Pred("name")),
                    Term::Literal("Author " + std::to_string(i)));
    }
  }

  // Cross-community social structure: generic collaboration and membership
  // edges drawn uniformly, i.e. carrying no venue signal. They are two hops
  // from any paper, so d1h1 sampling drops them while full-KG training
  // mixes communities through them.
  if (o.social_edges_per_author > 0) {
    const size_t n_societies = std::max<size_t>(8, o.num_authors / 12);
    for (size_t s = 0; s < n_societies; ++s)
      store->InsertIris(Iri("society", s), type,
                        DblpSchema::Class("Society"));
    for (size_t i = 0; i < o.num_authors; ++i) {
      for (size_t k = 0; k < o.social_edges_per_author; ++k) {
        const size_t j = rng.NextUint(o.num_authors);
        if (j != i)
          store->InsertIris(authors[i], DblpSchema::Pred("coworkerOf"),
                            authors[j]);
      }
      store->InsertIris(authors[i], DblpSchema::Pred("societyMember"),
                        Iri("society", rng.NextUint(n_societies)));
    }
  }

  // Authors per community for fast sampling.
  std::vector<std::vector<size_t>> comm_authors(o.num_venues);
  for (size_t i = 0; i < o.num_authors; ++i)
    comm_authors[author_comm[i]].push_back(i);

  // --- Papers ---
  std::vector<std::string> papers(o.num_papers);
  std::vector<size_t> paper_venue(o.num_papers);
  for (size_t p = 0; p < o.num_papers; ++p) {
    papers[p] = Iri("publication", p);
    const size_t v = p % o.num_venues;  // balanced classes
    paper_venue[p] = v;
    store->InsertIris(papers[p], type, DblpSchema::Publication());
    store->InsertIris(papers[p], DblpSchema::PublishedIn(), venues[v]);
    // Authors: from the venue community, with noise.
    for (size_t k = 0; k < o.authors_per_paper; ++k) {
      size_t who;
      const auto& pool = comm_authors[v];
      if (!pool.empty() && rng.NextFloat() >= o.noise) {
        who = pool[rng.NextUint(pool.size())];
      } else {
        who = rng.NextUint(o.num_authors);
      }
      store->InsertIris(papers[p], DblpSchema::AuthoredBy(), authors[who]);
    }
    // Citations: to earlier papers, mostly same venue.
    if (p > 0) {
      for (size_t k = 0; k < o.citations_per_paper; ++k) {
        size_t q;
        if (rng.NextFloat() >= o.noise) {
          // Pick an earlier paper of the same venue if one exists.
          const size_t venue_papers = p / o.num_venues;
          if (venue_papers == 0) continue;
          q = rng.NextUint(venue_papers) * o.num_venues + v;
          if (q >= p) continue;
        } else {
          q = rng.NextUint(p);
        }
        store->InsertIris(papers[p], DblpSchema::Cites(), papers[q]);
      }
    }
    if (o.include_literals) {
      store->Insert(Term::Iri(papers[p]),
                    Term::Iri(DblpSchema::Pred("title")),
                    Term::Literal("Paper " + std::to_string(p)));
      store->Insert(Term::Iri(papers[p]),
                    Term::Iri(DblpSchema::Pred("yearOfPublication")),
                    Term::IntLiteral(1990 + static_cast<int64_t>(p % 35)));
    }
  }

  // --- Task-irrelevant periphery ---
  // A topic taxonomy, editorial records and conference logistics: reachable
  // only via venues or >1 hop from papers/authors, so d1h1/d2h1 sampling
  // drops almost all of it. This is the structure that inflates full-KG
  // training in Figures 13-15.
  if (o.include_periphery) {
    const size_t n_topics =
        static_cast<size_t>(o.num_papers * o.periphery_scale * 0.4);
    const size_t n_editors =
        static_cast<size_t>(o.num_venues * 10 * o.periphery_scale);
    const size_t n_events =
        static_cast<size_t>(o.num_venues * 20 * o.periphery_scale);
    for (size_t t = 0; t < n_topics; ++t) {
      store->InsertIris(Iri("topic", t), type, DblpSchema::Class("Topic"));
      if (t > 0) {
        store->InsertIris(Iri("topic", t), DblpSchema::Pred("broaderTopic"),
                          Iri("topic", rng.NextUint(t)));
      }
      // Topics hang off venues, not papers.
      store->InsertIris(venues[t % o.num_venues],
                        DblpSchema::Pred("hasTopic"), Iri("topic", t));
    }
    for (size_t e = 0; e < n_editors; ++e) {
      store->InsertIris(Iri("editor", e), type, DblpSchema::Class("Editor"));
      store->InsertIris(Iri("editor", e), DblpSchema::Pred("editorOf"),
                        venues[e % o.num_venues]);
      store->InsertIris(Iri("editor", e), DblpSchema::Pred("memberOf"),
                        Iri("committee", e % 50));
    }
    for (size_t c = 0; c < 50; ++c)
      store->InsertIris(Iri("committee", c), type,
                        DblpSchema::Class("Committee"));
    for (size_t ev = 0; ev < n_events; ++ev) {
      store->InsertIris(Iri("event", ev), type, DblpSchema::Class("Event"));
      store->InsertIris(venues[ev % o.num_venues],
                        DblpSchema::Pred("hasEvent"), Iri("event", ev));
      store->InsertIris(Iri("event", ev), DblpSchema::Pred("heldIn"),
                        Iri("city", ev % 40));
    }
    for (size_t c = 0; c < 40; ++c)
      store->InsertIris(Iri("city", c), type, DblpSchema::Class("City"));
  }
  return Status::OK();
}

}  // namespace kgnet::workload
