// Synthetic YAGO4-style encyclopedic KG generator.
//
// Mirrors the paper's second benchmark (Table I: YAGO4, 400M triples, 98
// edge types, 104 node types, NC task place->country) at laptop scale. The
// planted signal: places cluster into regions; a place's neighbours (cities,
// organizations, people, events) are mostly same-region, so place->country
// is predictable from structure. A wide periphery of creative works, and
// taxonomic noise plays the role of the task-irrelevant mass.
#ifndef KGNET_WORKLOAD_YAGO_GEN_H_
#define KGNET_WORKLOAD_YAGO_GEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace kgnet::workload {

/// Size and shape knobs for the YAGO4-style generator.
struct YagoOptions {
  size_t num_places = 2500;
  size_t num_countries = 20;
  size_t num_people = 1500;
  size_t num_orgs = 500;
  size_t neighbors_per_place = 3;
  double noise = 0.10;
  bool include_periphery = true;
  double periphery_scale = 1.0;
  bool include_literals = true;
  uint64_t seed = 99;
};

inline constexpr char kYagoNs[] = "http://yago-knowledge.org/resource/";

/// Well-known YAGO-mini IRIs.
struct YagoSchema {
  static std::string Name(const std::string& n) {
    return std::string(kYagoNs) + n;
  }
  static std::string Place() { return Name("Place"); }
  static std::string Country() { return Name("Country"); }
  static std::string Person() { return Name("Person"); }
  static std::string Organization() { return Name("Organization"); }
  /// NC label predicate: place -> country.
  static std::string InCountry() { return Name("inCountry"); }
  static std::string NeighborOf() { return Name("neighborOf"); }
  static std::string LocatedIn() { return Name("locatedIn"); }
};

/// Generates the KG into `store`. Deterministic for a fixed seed.
Status GenerateYago(const YagoOptions& options, rdf::TripleStore* store);

}  // namespace kgnet::workload

#endif  // KGNET_WORKLOAD_YAGO_GEN_H_
