// Synthetic DBLP-style scholarly KG generator.
//
// Mimics the schema the paper evaluates on (Table I: DBLP, 252M triples, 48
// edge types, 42 node types, tasks NC paper->venue, LP author->affiliation,
// ES), scaled to laptop size. The generator plants the learnable structure
// those tasks rely on:
//   * venues define topical communities; a paper's authors and citations
//     stay mostly within its venue community, so paper->venue is predictable
//     from graph structure;
//   * an author's affiliation correlates with their community, so
//     author->affiliation links are predictable;
//   * a large task-irrelevant periphery (topic taxonomy, editor records,
//     conference logistics, literal metadata) inflates the full KG without
//     helping either task — the mass the meta-sampler prunes.
#ifndef KGNET_WORKLOAD_DBLP_GEN_H_
#define KGNET_WORKLOAD_DBLP_GEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "rdf/triple_store.h"

namespace kgnet::workload {

/// Size and shape knobs for the DBLP-style generator.
struct DblpOptions {
  size_t num_papers = 3000;
  size_t num_authors = 1200;
  size_t num_venues = 20;
  size_t num_affiliations = 60;
  size_t authors_per_paper = 3;
  size_t citations_per_paper = 3;
  /// Probability that an author/citation breaks community (label noise).
  double noise = 0.10;
  /// Random cross-community author-author and author-society edges. These
  /// sit two hops from papers: a d1h1 meta-sample excludes them, while
  /// full-KG training aggregates them and suffers the over-smoothing the
  /// paper attributes to task-irrelevant structure (Section IV-B2).
  size_t social_edges_per_author = 1;
  /// Historic affiliation edges per author, drawn uniformly (career moves).
  /// They share the affiliation nodes with the task predicate but carry no
  /// community signal, so they pollute the 2-hop neighbourhood of papers
  /// that full-KG training aggregates.
  size_t past_affiliations_per_author = 1;
  /// Probability that an author's primary affiliation is drawn from their
  /// venue community rather than uniformly. Kept low by default so the
  /// affiliation neighbourhood is *task-irrelevant* for venue
  /// classification (the paper's premise for meta-sampling) while link
  /// prediction retains partial structure.
  double affiliation_community_bias = 0.45;
  /// Emit the task-irrelevant periphery (topics, editors, logistics).
  bool include_periphery = true;
  /// Relative size of the periphery (nodes per paper, roughly).
  double periphery_scale = 1.0;
  /// Emit literal metadata (titles, years, abstracts).
  bool include_literals = true;
  uint64_t seed = 42;
};

/// Namespace IRIs used by the generator.
inline constexpr char kDblpNs[] = "https://dblp.org/rdf/";

/// Well-known DBLP-mini IRIs (classes and predicates).
struct DblpSchema {
  static std::string Class(const std::string& name) {
    return std::string(kDblpNs) + name;
  }
  static std::string Pred(const std::string& name) {
    return std::string(kDblpNs) + name;
  }
  // Classes.
  static std::string Publication() { return Class("Publication"); }
  static std::string Person() { return Class("Person"); }
  static std::string Venue() { return Class("Venue"); }
  static std::string Affiliation() { return Class("Affiliation"); }
  // Task predicates.
  static std::string PublishedIn() { return Pred("publishedIn"); }
  static std::string PrimaryAffiliation() {
    return Pred("primaryAffiliation");
  }
  static std::string AuthoredBy() { return Pred("authoredBy"); }
  static std::string Cites() { return Pred("cites"); }
};

/// Generates the KG into `store`. Deterministic for a fixed seed.
Status GenerateDblp(const DblpOptions& options, rdf::TripleStore* store);

}  // namespace kgnet::workload

#endif  // KGNET_WORKLOAD_DBLP_GEN_H_
