#include "workload/yago_gen.h"

#include <string>
#include <vector>

#include "rdf/term.h"
#include "tensor/rng.h"

namespace kgnet::workload {

using rdf::Term;
using rdf::TripleStore;

namespace {

std::string Iri(const std::string& kind, size_t i) {
  return std::string(kYagoNs) + kind + "_" + std::to_string(i);
}

}  // namespace

Status GenerateYago(const YagoOptions& o, TripleStore* store) {
  if (o.num_places == 0 || o.num_countries == 0)
    return Status::InvalidArgument("YAGO generator requires non-zero sizes");
  tensor::Rng rng(o.seed);
  const std::string type = std::string(rdf::kRdfType);

  // --- Countries ---
  std::vector<std::string> countries(o.num_countries);
  for (size_t c = 0; c < o.num_countries; ++c) {
    countries[c] = Iri("country", c);
    store->InsertIris(countries[c], type, YagoSchema::Country());
  }

  // --- Places: region = country; neighbours mostly same country ---
  std::vector<std::string> places(o.num_places);
  std::vector<size_t> place_country(o.num_places);
  for (size_t p = 0; p < o.num_places; ++p) {
    places[p] = Iri("place", p);
    place_country[p] = p % o.num_countries;
    store->InsertIris(places[p], type, YagoSchema::Place());
    store->InsertIris(places[p], YagoSchema::InCountry(),
                      countries[place_country[p]]);
    if (o.include_literals) {
      store->Insert(Term::Iri(places[p]),
                    Term::Iri(YagoSchema::Name("label")),
                    Term::Literal("Place " + std::to_string(p)));
      store->Insert(Term::Iri(places[p]),
                    Term::Iri(YagoSchema::Name("population")),
                    Term::IntLiteral(static_cast<int64_t>(
                        1000 + rng.NextUint(1000000))));
    }
  }
  for (size_t p = 0; p < o.num_places; ++p) {
    const size_t c = place_country[p];
    for (size_t k = 0; k < o.neighbors_per_place; ++k) {
      size_t q;
      if (rng.NextFloat() >= o.noise) {
        // Same-country neighbour: places are laid out round-robin, so peers
        // are congruent mod num_countries.
        const size_t peers = o.num_places / o.num_countries;
        if (peers <= 1) continue;
        q = rng.NextUint(peers) * o.num_countries + c;
        if (q >= o.num_places || q == p) continue;
      } else {
        q = rng.NextUint(o.num_places);
        if (q == p) continue;
      }
      store->InsertIris(places[p], YagoSchema::NeighborOf(), places[q]);
    }
  }

  // --- People: birth place weakly country-biased; residence uniform
  // (migration). People sit two hops from any place-to-place path, so
  // their edges are mostly task-irrelevant for the country task.
  for (size_t i = 0; i < o.num_people; ++i) {
    const std::string person = Iri("person", i);
    store->InsertIris(person, type, YagoSchema::Person());
    const size_t peers = std::max<size_t>(1, o.num_places / o.num_countries);
    size_t born;
    if (rng.NextFloat() < 0.3f) {
      const size_t c = i % o.num_countries;
      born = std::min(o.num_places - 1,
                      rng.NextUint(peers) * o.num_countries + c);
    } else {
      born = rng.NextUint(o.num_places);
    }
    store->InsertIris(person, YagoSchema::Name("birthPlace"), places[born]);
    if (rng.NextFloat() < 0.5f) {
      store->InsertIris(person, YagoSchema::Name("residence"),
                        places[rng.NextUint(o.num_places)]);
    }
  }

  // --- Organizations: multinational, headquarters uniform ---
  for (size_t i = 0; i < o.num_orgs; ++i) {
    const std::string org = Iri("org", i);
    store->InsertIris(org, type, YagoSchema::Organization());
    store->InsertIris(org, YagoSchema::Name("headquarters"),
                      places[rng.NextUint(o.num_places)]);
  }

  // --- Periphery: creative works, events, taxonomy (task-irrelevant) ---
  // YAGO4 is schema-rich (104 node types, 98 edge types in Table I); the
  // periphery spreads entities over many subtypes and predicates so the
  // mini KG keeps that shape.
  if (o.include_periphery) {
    static const char* kWorkTypes[] = {"Movie",    "Book",   "Song",
                                       "Painting", "Play",   "Sculpture",
                                       "VideoGame", "Album", "Poem",
                                       "TVSeries"};
    static const char* kWorkPreds[] = {"author", "director", "composer",
                                       "illustrator", "producer"};
    const size_t n_works =
        static_cast<size_t>(o.num_places * o.periphery_scale);
    for (size_t w = 0; w < n_works; ++w) {
      const std::string work = Iri("work", w);
      store->InsertIris(work, type, YagoSchema::Name(kWorkTypes[w % 10]));
      store->InsertIris(work, YagoSchema::Name(kWorkPreds[w % 5]),
                        Iri("person", w % std::max<size_t>(1, o.num_people)));
      if (w > 0 && rng.NextFloat() < 0.3f) {
        store->InsertIris(work, YagoSchema::Name("derivedFrom"),
                          Iri("work", rng.NextUint(w)));
      }
      if (o.include_literals) {
        store->Insert(Term::Iri(work), Term::Iri(YagoSchema::Name("title")),
                      Term::Literal("Work " + std::to_string(w)));
      }
    }
    static const char* kEventTypes[] = {"Festival",   "Election",
                                        "SportsEvent", "Conference",
                                        "Battle",      "Exhibition"};
    static const char* kEventPreds[] = {"participant", "winner",
                                        "organizer"};
    const size_t n_events =
        static_cast<size_t>(o.num_countries * 15 * o.periphery_scale);
    for (size_t e = 0; e < n_events; ++e) {
      const std::string event = Iri("event", e);
      store->InsertIris(event, type, YagoSchema::Name(kEventTypes[e % 6]));
      store->InsertIris(event, YagoSchema::Name(kEventPreds[e % 3]),
                        Iri("person", e % std::max<size_t>(1, o.num_people)));
    }
    // Taxonomies with no connection to geography: genres, occupations,
    // languages, awards.
    static const char* kTaxa[] = {"Genre", "Occupation", "Language",
                                  "Award", "AcademicDegree", "Instrument"};
    static const char* kTaxaPreds[] = {"subGenreOf",   "specializes",
                                       "dialectOf",    "succeededBy",
                                       "prerequisite", "derivedInstrument"};
    for (size_t taxon = 0; taxon < 6; ++taxon) {
      for (size_t g = 0; g < 25; ++g) {
        const std::string node =
            Iri(std::string(kTaxa[taxon]) + "_item", g);
        store->InsertIris(node, type, YagoSchema::Name(kTaxa[taxon]));
        if (g > 0)
          store->InsertIris(node, YagoSchema::Name(kTaxaPreds[taxon]),
                            Iri(std::string(kTaxa[taxon]) + "_item",
                                rng.NextUint(g)));
      }
    }
    // People link into the taxonomies (still task-irrelevant).
    for (size_t i = 0; i < o.num_people; ++i) {
      const std::string person = Iri("person", i);
      store->InsertIris(person, YagoSchema::Name("occupation"),
                        Iri("Occupation_item", rng.NextUint(25)));
      if (rng.NextFloat() < 0.4f)
        store->InsertIris(person, YagoSchema::Name("speaks"),
                          Iri("Language_item", rng.NextUint(25)));
      if (rng.NextFloat() < 0.2f)
        store->InsertIris(person, YagoSchema::Name("received"),
                          Iri("Award_item", rng.NextUint(25)));
    }
  }
  return Status::OK();
}

}  // namespace kgnet::workload
