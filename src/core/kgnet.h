// KgNet: the platform facade (paper Figure 3).
//
// Owns the data KG (an RDF triple store), the SPARQL-ML service with its
// KGMeta / model store / training and inference managers, and exposes the
// handful of entry points an application needs:
//
//   KgNet kg;
//   kg.LoadNTriples(...); or generate into kg.store()
//   kg.Execute("SPARQL or SPARQL-ML text")
//   kg.TrainTask(spec)          // programmatic alternative to TrainGML
//   kg.GetSimilarEntities(...)  // entity-similarity search
#ifndef KGNET_CORE_KGNET_H_
#define KGNET_CORE_KGNET_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/sparqlml.h"

namespace kgnet::core {

/// The GML-enabled knowledge-graph platform.
class KgNet {
 public:
  KgNet() : service_(std::make_unique<SparqlMlService>(&store_)) {}

  /// The data KG.
  rdf::TripleStore& store() { return store_; }
  const rdf::TripleStore& store() const { return store_; }

  /// Loads N-Triples text into the KG; returns triples added.
  Result<size_t> LoadNTriples(std::string_view document);

  /// Executes a SPARQL or SPARQL-ML query (SELECT / ASK / INSERT / DELETE /
  /// TrainGML).
  Result<sparql::QueryResult> Execute(std::string_view text,
                                      ExecutionStats* stats = nullptr);

  /// Trains a task programmatically (same pipeline as TrainGML).
  Result<TrainOutcome> TrainTask(const TrainTaskSpec& spec) {
    return service_->training_manager().TrainTask(spec);
  }

  /// Entity-similarity search against a trained LP model's embeddings.
  Result<std::vector<std::string>> GetSimilarEntities(
      const std::string& model_uri, const std::string& node_iri, size_t k) {
    return service_->inference_manager().GetSimilarEntities(model_uri,
                                                            node_iri, k);
  }

  SparqlMlService& service() { return *service_; }

 private:
  rdf::TripleStore store_;
  std::unique_ptr<SparqlMlService> service_;
};

}  // namespace kgnet::core

#endif  // KGNET_CORE_KGNET_H_
