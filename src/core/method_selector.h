// Budget-aware GML method selection (paper Section IV-A, "Optimal GML
// Method Selection").
//
// For each applicable method the selector predicts the training-time memory
// footprint and wall-clock cost from the graph's dimensions using analytic
// cost formulas (sparse-matrix sizes, GEMM flop counts, epoch counts), then
// picks the method that maximizes an accuracy prior subject to the user's
// memory/time budget — the small integer program of the paper solved
// exactly by enumeration (the candidate set is tiny).
#ifndef KGNET_CORE_METHOD_SELECTOR_H_
#define KGNET_CORE_METHOD_SELECTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "gml/graph_data.h"
#include "gml/model.h"

namespace kgnet::core {

/// What the user is optimizing for when several methods fit the budget.
enum class BudgetPriority {
  kModelScore,  // highest expected accuracy (paper's Priority:ModelScore)
  kTime,        // fastest training
  kMemory,      // smallest footprint
};

/// A training budget (0 = unconstrained), as carried by TrainGML queries.
struct TaskBudget {
  size_t max_memory_bytes = 0;
  double max_seconds = 0.0;
  BudgetPriority priority = BudgetPriority::kModelScore;
};

/// The graph dimensions that drive the cost model.
struct GraphSummary {
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_relations = 0;
  size_t num_classes = 2;
  size_t feature_dim = 32;

  static GraphSummary FromGraph(const gml::GraphData& g) {
    GraphSummary s;
    s.num_nodes = g.num_nodes;
    s.num_edges = g.edges.size();
    s.num_relations = g.num_relations;
    s.num_classes = g.num_classes > 0 ? g.num_classes : 2;
    s.feature_dim = g.feature_dim;
    return s;
  }
};

/// Predicted cost of training one method on one graph.
struct ResourceEstimate {
  gml::GmlMethod method;
  size_t memory_bytes = 0;
  double seconds = 0.0;
  /// Prior expected accuracy rank in [0,1]; higher = better expected score.
  double accuracy_prior = 0.0;
  bool fits_budget = true;
};

/// The outcome of a selection.
struct Selection {
  gml::GmlMethod method;
  ResourceEstimate estimate;
  /// All candidates considered, sorted by the chosen priority.
  std::vector<ResourceEstimate> candidates;
  /// False if no method satisfied the budget and the cheapest was returned.
  bool within_budget = true;
};

/// Analytic estimator + enumerative selector.
class MethodSelector {
 public:
  /// Methods applicable to `task`.
  static std::vector<gml::GmlMethod> ApplicableMethods(gml::TaskType task);

  /// Cost model for one method.
  static ResourceEstimate Estimate(gml::GmlMethod method,
                                   const GraphSummary& summary,
                                   const gml::TrainConfig& config);

  /// Picks the near-optimal method for `task` under `budget`.
  static Result<Selection> Select(gml::TaskType task,
                                  const GraphSummary& summary,
                                  const gml::TrainConfig& config,
                                  const TaskBudget& budget);

  /// Empirical refinement: runs `probe_epochs` epochs of `method` on the
  /// graph and rescales the analytic time estimate (paper: "running a few
  /// epochs" on sampled matrices).
  static Result<ResourceEstimate> Probe(gml::GmlMethod method,
                                        const gml::GraphData& graph,
                                        const gml::TrainConfig& config,
                                        size_t probe_epochs = 2);
};

/// Parses budget strings like "50GB", "512MB", "1h", "90s", "15m".
Result<size_t> ParseMemoryBudget(const std::string& text);
Result<double> ParseTimeBudget(const std::string& text);

}  // namespace kgnet::core

#endif  // KGNET_CORE_METHOD_SELECTOR_H_
