// Model persistence (paper Figure 6: "GNN Model Saving" and "Model
// Loader").
//
// A trained model is exported as a self-contained *serving bundle*: the
// KGMeta record plus everything inference needs —
//   * node classifiers: the per-instance prediction dictionary,
//   * link predictors / similarity models: entity embeddings aligned with
//     node IRIs, the task-relation translation vector and the candidate
//     rows of the destination type.
// Bundles restore through the ModelStore and serve through the
// InferenceManager exactly like freshly trained models; the format is a
// simple framed little-endian binary ("KGNM1").
#ifndef KGNET_CORE_MODEL_IO_H_
#define KGNET_CORE_MODEL_IO_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model_store.h"

namespace kgnet::core {

/// Builds the serving bundle from a live trained model (runs batch
/// inference for classifiers; exports embeddings for predictors).
Result<ServingBundle> BuildServingBundle(const TrainedModel& model);

/// Writes `model` (its ModelInfo + serving bundle) to `path`.
Status SaveTrainedModel(const TrainedModel& model, const std::string& path);

/// Reads a model saved by SaveTrainedModel. The returned TrainedModel has
/// `bundle` set and no live classifier/predictor objects; the
/// InferenceManager serves it from the bundle.
Result<std::shared_ptr<TrainedModel>> LoadTrainedModel(
    const std::string& path);

/// Saves every model in `store` into `dir` as <n>.kgm files plus the
/// KGMeta graph as kgmeta.nt. Returns the number of models written.
Result<size_t> SaveModelStore(const ModelStore& store, const KgMeta& kgmeta,
                              const std::string& dir);

/// Loads every *.kgm under `dir` into `store` and kgmeta.nt into `kgmeta`
/// (skipping models whose URIs are already registered). Returns the number
/// of models loaded.
Result<size_t> LoadModelStore(const std::string& dir, ModelStore* store,
                              KgMeta* kgmeta);

/// TransE-style score between two embedding rows of a bundle, using the
/// bundle's task-relation vector.
float ServingScore(const ServingBundle& bundle, size_t src_row,
                   size_t dst_row);

}  // namespace kgnet::core

#endif  // KGNET_CORE_MODEL_IO_H_
