#include "core/sparqlml.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/string_util.h"
#include "core/json.h"
#include "gml/train_util.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"

namespace kgnet::core {

using rdf::Term;
using sparql::Expr;
using sparql::NodeRef;
using sparql::PatternTriple;
using sparql::Query;
using sparql::QueryKind;
using sparql::QueryResult;

namespace {

/// UDF names used by the rewritten queries.
constexpr char kUdfGetNodeClass[] = "sql:UDFS.getNodeClass";
constexpr char kUdfGetNodeClassDict[] = "sql:UDFS.getNodeClassDict";
constexpr char kUdfGetKeyValue[] = "sql:UDFS.getKeyValue";
constexpr char kUdfGetLinkPred[] = "sql:UDFS.getLinkPred";
constexpr char kUdfGetSimilarEntity[] = "sql:UDFS.getSimilarEntity";

bool IsKgnetIri(const std::string& iri) {
  return StartsWith(iri, kKgnetNs);
}

}  // namespace

SparqlMlService::SparqlMlService(rdf::TripleStore* kg) : kg_(kg) {
  engine_ = std::make_unique<sparql::QueryEngine>(kg_);
  inference_ = std::make_unique<InferenceManager>(&models_);
  training_ = std::make_unique<GmlTrainingManager>(kg_, &kgmeta_, &models_);
  RegisterUdfs();
}

void SparqlMlService::RegisterUdfs() {
  // Figure 11 plan: one call per instance.
  engine_->udfs().Register(
      kUdfGetNodeClass,
      [this](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 2 || !args[0].is_iri() || !args[1].is_iri())
          return Status::InvalidArgument(
              "getNodeClass(model IRI, node IRI) expected");
        KGNET_ASSIGN_OR_RETURN(
            std::string cls,
            inference_->GetNodeClass(args[0].lexical, args[1].lexical));
        return Term::Iri(cls);
      });
  // Figure 12 plan: one call building the whole dictionary; returns a
  // handle IRI the getKeyValue UDF resolves locally.
  engine_->udfs().Register(
      kUdfGetNodeClassDict,
      [this](const std::vector<Term>& args) -> Result<Term> {
        if (args.empty() || !args[0].is_iri())
          return Status::InvalidArgument(
              "getNodeClassDict(model IRI) expected");
        KGNET_ASSIGN_OR_RETURN(
            auto dict, inference_->GetNodeClassDictionary(args[0].lexical));
        const std::string handle =
            KgnetVocab::Name("dict/" + std::to_string(next_dict_id_++));
        dicts_[handle] = std::move(dict);
        return Term::Iri(handle);
      });
  engine_->udfs().Register(
      kUdfGetKeyValue,
      [this](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() != 2 || !args[0].is_iri() || !args[1].is_iri())
          return Status::InvalidArgument(
              "getKeyValue(dict handle, key IRI) expected");
        auto dit = dicts_.find(args[0].lexical);
        if (dit == dicts_.end())
          return Status::NotFound("unknown dictionary handle " +
                                  args[0].lexical);
        auto vit = dit->second.find(args[1].lexical);
        if (vit == dit->second.end()) return Term::Literal("");
        return Term::Iri(vit->second);
      });
  // Entity similarity: most similar entity by embedding distance.
  engine_->udfs().Register(
      kUdfGetSimilarEntity,
      [this](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() < 2 || !args[0].is_iri() || !args[1].is_iri())
          return Status::InvalidArgument(
              "getSimilarEntity(model IRI, node IRI[, k]) expected");
        size_t k = 1;
        if (args.size() >= 3) {
          double kd = 1;
          if (args[2].AsDouble(&kd) && kd >= 1) k = static_cast<size_t>(kd);
        }
        KGNET_ASSIGN_OR_RETURN(
            auto similar,
            inference_->GetSimilarEntities(args[0].lexical, args[1].lexical,
                                           k));
        if (similar.empty()) return Term::Literal("");
        return Term::Iri(similar.back());
      });
  // Link prediction: top-1 predicted destination for an instance.
  engine_->udfs().Register(
      kUdfGetLinkPred,
      [this](const std::vector<Term>& args) -> Result<Term> {
        if (args.size() < 2 || !args[0].is_iri() || !args[1].is_iri())
          return Status::InvalidArgument(
              "getLinkPred(model IRI, node IRI[, k]) expected");
        size_t k = 1;
        if (args.size() >= 3) {
          double kd = 1;
          if (args[2].AsDouble(&kd) && kd >= 1) k = static_cast<size_t>(kd);
        }
        KGNET_ASSIGN_OR_RETURN(auto links,
                               inference_->GetTopKLinks(args[0].lexical,
                                                        args[1].lexical, k));
        if (links.empty()) return Term::Literal("");
        return Term::Iri(links.front());
      });
}

Result<SparqlMlAnalysis> SparqlMlService::Analyze(const Query& query) const {
  SparqlMlAnalysis analysis;
  analysis.query = query;
  const auto& triples = query.where.triples;

  // Pass 1: find candidate variables — those used in predicate position
  // whose metadata triples type them with a kgnet: class.
  for (size_t i = 0; i < triples.size(); ++i) {
    const PatternTriple& t = triples[i];
    if (!t.p.is_var) continue;
    const std::string& var = t.p.var;
    // Find "?var a kgnet:NodeClassifier / kgnet:LinkPredictor".
    gml::TaskType task = gml::TaskType::kNodeClassification;
    bool typed = false;
    for (const PatternTriple& m : triples) {
      if (!m.s.is_var || m.s.var != var || m.p.is_var || m.o.is_var)
        continue;
      if (m.p.term.lexical == rdf::kRdfType && IsKgnetIri(m.o.term.lexical)) {
        typed = true;
        task = m.o.term.lexical == KgnetVocab::LinkPredictor()
                   ? gml::TaskType::kLinkPrediction
               : m.o.term.lexical == KgnetVocab::SimilarEntities()
                   ? gml::TaskType::kEntitySimilarity
                   : gml::TaskType::kNodeClassification;
      }
    }
    if (!typed) continue;

    UserDefinedPredicate udp;
    udp.var = var;
    udp.task = task;
    udp.usage_triple = i;
    if (!t.s.is_var || !t.o.is_var)
      return Status::Unimplemented(
          "user-defined predicate requires variable subject and object");
    udp.subject_var = t.s.var;
    udp.object_var = t.o.var;
    udp.constraints.task = task;

    // Pass 2: harvest constraint triples about ?var.
    for (size_t j = 0; j < triples.size(); ++j) {
      const PatternTriple& m = triples[j];
      if (!m.s.is_var || m.s.var != var) continue;
      if (j == i) continue;
      udp.meta_triples.push_back(j);
      if (m.p.is_var) continue;
      const std::string& pred = m.p.term.lexical;
      const std::string value = m.o.is_var ? "" : m.o.term.lexical;
      if (pred == KgnetVocab::TargetNode()) {
        if (task == gml::TaskType::kNodeClassification) {
          udp.constraints.target_type_iri = value;
        } else {
          udp.constraints.source_type_iri = value;
        }
      } else if (pred == KgnetVocab::NodeLabel()) {
        udp.constraints.label_predicate_iri = value;
      } else if (pred == KgnetVocab::SourceNode()) {
        udp.constraints.source_type_iri = value;
      } else if (pred == KgnetVocab::DestinationNode()) {
        udp.constraints.destination_type_iri = value;
      } else if (pred == KgnetVocab::TaskPredicate()) {
        udp.constraints.task_predicate_iri = value;
      } else if (pred == KgnetVocab::TopKLinks()) {
        if (!m.o.is_var) {
          double k = 1;
          if (m.o.term.AsDouble(&k) && k >= 1)
            udp.topk = static_cast<size_t>(k);
        }
      }
    }
    analysis.udps.push_back(std::move(udp));
  }
  return analysis;
}

Result<ModelInfo> SparqlMlService::SelectModel(
    const UserDefinedPredicate& udp) const {
  std::vector<ModelInfo> candidates = kgmeta_.FindModels(udp.constraints);
  if (candidates.empty())
    return Status::NotFound(
        "no trained model in KGMeta matches predicate ?" + udp.var);
  // The optimizer's objective (Section IV-B3): maximize accuracy; among
  // models within 1% of the best accuracy, minimize inference time. This is
  // the exact solution of the 0/1 selection program for a single predicate.
  double best_acc = 0.0;
  for (const ModelInfo& m : candidates) best_acc = std::max(best_acc, m.accuracy);
  const ModelInfo* best = nullptr;
  for (const ModelInfo& m : candidates) {
    if (m.accuracy + 0.01 < best_acc) continue;
    if (best == nullptr || m.inference_us < best->inference_us) best = &m;
  }
  return *best;
}

RewritePlan SparqlMlService::ChoosePlan(const SparqlMlAnalysis& analysis,
                                        const UserDefinedPredicate& udp,
                                        const ModelInfo& model) const {
  // Estimate the number of instances the subject variable binds to: the
  // cardinality of its most selective non-meta triple pattern.
  size_t instances = SIZE_MAX;
  const auto& triples = analysis.query.where.triples;
  for (size_t j = 0; j < triples.size(); ++j) {
    if (j == udp.usage_triple) continue;
    const PatternTriple& t = triples[j];
    if (!t.s.is_var || t.s.var != udp.subject_var) continue;
    rdf::TriplePattern p;
    if (!t.p.is_var) p.p = kg_->dict().Find(t.p.term);
    if (!t.o.is_var) p.o = kg_->dict().Find(t.o.term);
    instances = std::min(instances, kg_->EstimateCardinality(p));
  }
  if (instances == SIZE_MAX) instances = model.cardinality;

  // Cost model: per-instance = |instances| HTTP calls; dictionary = 1 call
  // + |model.cardinality| dictionary entries whose local lookup is ~1000x
  // cheaper than an HTTP round trip.
  const double call_cost = 1000.0;
  const double per_instance = static_cast<double>(instances) * call_cost;
  const double dictionary =
      call_cost + static_cast<double>(model.cardinality);
  return per_instance <= dictionary ? RewritePlan::kPerInstance
                                    : RewritePlan::kDictionary;
}

Result<Query> SparqlMlService::Rewrite(const SparqlMlAnalysis& analysis,
                                       const UserDefinedPredicate& udp,
                                       const ModelInfo& model,
                                       RewritePlan plan) const {
  Query out = analysis.query;

  // Strip the usage triple and every metadata triple.
  std::vector<bool> drop(out.where.triples.size(), false);
  drop[udp.usage_triple] = true;
  for (size_t j : udp.meta_triples) drop[j] = true;
  std::vector<PatternTriple> kept;
  for (size_t j = 0; j < out.where.triples.size(); ++j)
    if (!drop[j]) kept.push_back(out.where.triples[j]);
  out.where.triples = std::move(kept);

  // Replace projections of the object variable with the UDF expression.
  auto make_projection = [&]() -> sparql::SelectItem {
    sparql::SelectItem item;
    item.alias = udp.object_var;
    if (udp.task == gml::TaskType::kLinkPrediction) {
      item.expr = Expr::Call(
          kUdfGetLinkPred,
          {Expr::Const(Term::Iri(model.uri)), Expr::Var(udp.subject_var),
           Expr::Const(Term::IntLiteral(static_cast<int64_t>(udp.topk)))});
    } else if (udp.task == gml::TaskType::kEntitySimilarity) {
      item.expr = Expr::Call(
          kUdfGetSimilarEntity,
          {Expr::Const(Term::Iri(model.uri)), Expr::Var(udp.subject_var),
           Expr::Const(Term::IntLiteral(static_cast<int64_t>(udp.topk)))});
    } else if (plan == RewritePlan::kPerInstance) {
      // Figure 11: sql:UDFS.getNodeClass($m, ?paper) AS ?venue
      item.expr = Expr::Call(kUdfGetNodeClass,
                             {Expr::Const(Term::Iri(model.uri)),
                              Expr::Var(udp.subject_var)});
    } else {
      // Figure 12: inner sub-select builds ?venues_dic once, then
      // sql:UDFS.getKeyValue(?venues_dic, ?paper) AS ?venue.
      item.expr = Expr::Call(
          kUdfGetKeyValue,
          {Expr::Var(udp.object_var + "_dic"), Expr::Var(udp.subject_var)});
    }
    return item;
  };

  bool replaced = false;
  for (auto& item : out.select) {
    if (item.expr->op == sparql::ExprOp::kVar &&
        item.expr->var == udp.object_var) {
      const std::string alias = item.alias;
      item = make_projection();
      item.alias = alias;
      replaced = true;
    }
  }
  if (out.select_all) {
    return Status::Unimplemented(
        "SELECT * with user-defined predicates is not supported; project "
        "explicit variables");
  }
  if (!replaced) {
    // Object var not projected: still evaluate the UDF so the pattern's
    // semantics (prediction exists) are preserved.
    out.select.push_back(make_projection());
  }

  if (udp.task == gml::TaskType::kNodeClassification &&
      plan == RewritePlan::kDictionary) {
    // Add the inner sub-select: { SELECT getNodeClassDict($m) AS ?o_dic
    // WHERE { } }
    auto sub = std::make_shared<Query>();
    sub->kind = QueryKind::kSelect;
    sub->prefixes = out.prefixes;
    sparql::SelectItem dict_item;
    dict_item.alias = udp.object_var + "_dic";
    dict_item.expr =
        Expr::Call(kUdfGetNodeClassDict, {Expr::Const(Term::Iri(model.uri))});
    sub->select.push_back(std::move(dict_item));
    out.where.subselects.push_back(std::move(sub));
  }
  return out;
}

Result<QueryResult> SparqlMlService::ExecuteSelectMl(
    const SparqlMlAnalysis& analysis, RewritePlan forced_plan,
    bool use_forced, ExecutionStats* stats, common::CancelToken cancel) {
  gml::Stopwatch opt_timer;
  Query rewritten = analysis.query;
  RewritePlan chosen = RewritePlan::kPerInstance;
  std::string model_uri;

  // Rewrite iteratively, one user-defined predicate at a time. Analysis
  // indexes refer to the current query, so re-analyze after each rewrite.
  Query current = analysis.query;
  while (true) {
    KGNET_ASSIGN_OR_RETURN(SparqlMlAnalysis a, Analyze(current));
    if (!a.is_sparql_ml()) break;
    const UserDefinedPredicate& udp = a.udps.front();
    KGNET_ASSIGN_OR_RETURN(ModelInfo model, SelectModel(udp));
    chosen = use_forced ? forced_plan : ChoosePlan(a, udp, model);
    model_uri = model.uri;
    KGNET_ASSIGN_OR_RETURN(current, Rewrite(a, udp, model, chosen));
  }
  const double opt_seconds = opt_timer.Seconds();

  gml::Stopwatch exec_timer;
  const uint64_t calls_before = inference_->http_calls();
  KGNET_ASSIGN_OR_RETURN(
      QueryResult result,
      engine_->Execute(current, kg_->OpenSnapshot(), nullptr,
                       std::move(cancel)));
  if (stats != nullptr) {
    stats->plan = chosen;
    stats->http_calls = inference_->http_calls() - calls_before;
    stats->chosen_model_uri = model_uri;
    stats->optimizer_seconds = opt_seconds;
    stats->execution_seconds = exec_timer.Seconds();
    stats->dictionary_entries = 0;
    if (chosen == RewritePlan::kDictionary && !dicts_.empty())
      stats->dictionary_entries = dicts_.rbegin()->second.size();
  }
  return result;
}

Result<QueryResult> SparqlMlService::Execute(std::string_view text,
                                             ExecutionStats* stats,
                                             common::CancelToken cancel) {
  if (text.find("TrainGML") != std::string_view::npos)
    return ExecuteTrainGml(text, std::move(cancel));
  KGNET_ASSIGN_OR_RETURN(Query query, sparql::ParseQuery(text));
  if (query.kind == QueryKind::kDeleteWhere) {
    // kgnet: metadata deletes manage models; anything else runs on the KG.
    bool targets_kgmeta = false;
    for (const PatternTriple& t : query.where.triples)
      if (!t.o.is_var && IsKgnetIri(t.o.term.lexical)) targets_kgmeta = true;
    if (targets_kgmeta) return ExecuteDelete(query);
  }
  KGNET_ASSIGN_OR_RETURN(SparqlMlAnalysis analysis, Analyze(query));
  if (!analysis.is_sparql_ml())
    return engine_->Execute(query, kg_->OpenSnapshot(), nullptr,
                            std::move(cancel));
  return ExecuteSelectMl(analysis, RewritePlan::kPerInstance, false, stats,
                         std::move(cancel));
}

Result<SparqlMlService::ExplainResult> SparqlMlService::Explain(
    std::string_view text) const {
  KGNET_ASSIGN_OR_RETURN(Query query, sparql::ParseQuery(text));
  ExplainResult out;
  Query current = query;
  while (true) {
    KGNET_ASSIGN_OR_RETURN(SparqlMlAnalysis a, Analyze(current));
    if (!a.is_sparql_ml()) break;
    out.is_sparql_ml = true;
    const UserDefinedPredicate& udp = a.udps.front();
    KGNET_ASSIGN_OR_RETURN(ModelInfo model, SelectModel(udp));
    out.plan = ChoosePlan(a, udp, model);
    out.model_uris.push_back(model.uri);
    KGNET_ASSIGN_OR_RETURN(current, Rewrite(a, udp, model, out.plan));
  }
  out.rewritten_sparql = sparql::SerializeQuery(current);
  return out;
}

Result<QueryResult> SparqlMlService::ExecuteWithPlan(std::string_view text,
                                                     RewritePlan plan,
                                                     ExecutionStats* stats) {
  KGNET_ASSIGN_OR_RETURN(Query query, sparql::ParseQuery(text));
  KGNET_ASSIGN_OR_RETURN(SparqlMlAnalysis analysis, Analyze(query));
  if (!analysis.is_sparql_ml()) return engine_->Execute(query);
  return ExecuteSelectMl(analysis, plan, true, stats, {});
}

Result<TrainTaskSpec> SparqlMlService::ParseTrainSpec(
    const std::string& json_text,
    const std::map<std::string, std::string>& prefixes) const {
  KGNET_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json_text));
  if (!root.is_object())
    return Status::InvalidArgument("TrainGML payload must be a JSON object");

  auto resolve = [&prefixes](const std::string& name) -> std::string {
    if (name.empty() || name.find("://") != std::string::npos) return name;
    const size_t colon = name.find(':');
    if (colon == std::string::npos) return name;
    auto it = prefixes.find(name.substr(0, colon));
    if (it == prefixes.end()) return name;
    return it->second + name.substr(colon + 1);
  };

  TrainTaskSpec spec;
  spec.model_name = root.GetString("Name");

  const JsonValue* task = root.FindRelaxed("GML-Task");
  if (task == nullptr || !task->is_object())
    return Status::InvalidArgument("TrainGML payload requires GML-Task{}");
  const std::string task_type = resolve(task->GetString("TaskType"));
  if (task_type == KgnetVocab::SimilarEntities() ||
      task_type.find("SimilarEntities") != std::string::npos) {
    spec.task = gml::TaskType::kEntitySimilarity;
    spec.target_type_iri = resolve(task->GetString("SourceNode"));
    if (spec.target_type_iri.empty())
      spec.target_type_iri = resolve(task->GetString("TargetNode"));
    spec.destination_type_iri = resolve(task->GetString("DestinationNode"));
    spec.task_predicate_iri = resolve(task->GetString("TaskPredicate"));
  } else if (task_type == KgnetVocab::LinkPredictor() ||
             task_type.find("LinkPredictor") != std::string::npos) {
    spec.task = gml::TaskType::kLinkPrediction;
    spec.target_type_iri = resolve(task->GetString("SourceNode"));
    spec.destination_type_iri = resolve(task->GetString("DestinationNode"));
    spec.task_predicate_iri = resolve(task->GetString("TaskPredicate"));
    if (spec.task_predicate_iri.empty())
      spec.task_predicate_iri = resolve(task->GetString("NodeLabel"));
  } else {
    spec.task = gml::TaskType::kNodeClassification;
    spec.target_type_iri = resolve(task->GetString("TargetNode"));
    spec.label_predicate_iri = resolve(task->GetString("NodeLabel"));
    if (spec.label_predicate_iri.empty())
      spec.label_predicate_iri = resolve(task->GetString("NodeLable"));
  }

  if (const JsonValue* budget = root.FindRelaxed("TaskBudget");
      budget != nullptr && budget->is_object()) {
    const std::string mem = budget->GetString("MaxMemory");
    if (!mem.empty()) {
      KGNET_ASSIGN_OR_RETURN(spec.budget.max_memory_bytes,
                             ParseMemoryBudget(mem));
    }
    const std::string time = budget->GetString("MaxTime");
    if (!time.empty()) {
      KGNET_ASSIGN_OR_RETURN(spec.budget.max_seconds, ParseTimeBudget(time));
    }
    const std::string prio = budget->GetString("Priority");
    if (prio == "Time") {
      spec.budget.priority = BudgetPriority::kTime;
    } else if (prio == "Memory") {
      spec.budget.priority = BudgetPriority::kMemory;
    } else {
      spec.budget.priority = BudgetPriority::kModelScore;
    }
  }

  if (const JsonValue* hp = root.FindRelaxed("Hyperparameters");
      hp != nullptr && hp->is_object()) {
    spec.config.epochs = static_cast<size_t>(
        hp->GetNumber("Epochs", static_cast<double>(spec.config.epochs)));
    spec.config.lr = static_cast<float>(
        hp->GetNumber("LearningRate", spec.config.lr));
    spec.config.hidden_dim = static_cast<size_t>(hp->GetNumber(
        "HiddenDim", static_cast<double>(spec.config.hidden_dim)));
    spec.config.embed_dim = static_cast<size_t>(hp->GetNumber(
        "EmbedDim", static_cast<double>(spec.config.embed_dim)));
    spec.config.patience = static_cast<size_t>(hp->GetNumber(
        "Patience", static_cast<double>(spec.config.patience)));
  }

  const std::string method = root.GetString("Method");
  if (!method.empty()) {
    const std::string lower = AsciiToLower(method);
    if (lower == "gcn") spec.forced_method = gml::GmlMethod::kGcn;
    else if (lower == "rgcn") spec.forced_method = gml::GmlMethod::kRgcn;
    else if (lower == "graphsaint" || lower == "graph-saint")
      spec.forced_method = gml::GmlMethod::kGraphSaint;
    else if (lower == "shadowsaint" || lower == "shadow-saint")
      spec.forced_method = gml::GmlMethod::kShadowSaint;
    else if (lower == "graphsage" || lower == "graph-sage" || lower == "sage")
      spec.forced_method = gml::GmlMethod::kGraphSage;
    else if (lower == "morse") spec.forced_method = gml::GmlMethod::kMorse;
    else if (lower == "transe") spec.forced_method = gml::GmlMethod::kTransE;
    else if (lower == "distmult")
      spec.forced_method = gml::GmlMethod::kDistMult;
    else if (lower == "complex")
      spec.forced_method = gml::GmlMethod::kComplEx;
    else if (lower == "rotate") spec.forced_method = gml::GmlMethod::kRotatE;
    else return Status::InvalidArgument("unknown GML method: " + method);
  }

  if (const JsonValue* sampling = root.FindRelaxed("MetaSampling");
      sampling != nullptr && sampling->is_object()) {
    const double d = sampling->GetNumber("Direction", 0);
    if (d == 1) spec.direction = SampleDirection::kOutgoing;
    if (d == 2) spec.direction = SampleDirection::kBidirectional;
    spec.hops = static_cast<uint32_t>(sampling->GetNumber("Hops", 1));
    const JsonValue* enabled = sampling->FindRelaxed("Enabled");
    if (enabled != nullptr && enabled->kind() == JsonValue::Kind::kBool)
      spec.use_meta_sampling = enabled->AsBool();
  }
  return spec;
}

Result<QueryResult> SparqlMlService::ExecuteTrainGml(
    std::string_view text, common::CancelToken cancel) {
  // Extract prefixes from the prologue (the full query may not parse as
  // standard SPARQL, so scan for PREFIX declarations directly).
  std::map<std::string, std::string> prefixes;
  {
    std::string lower;
    for (char c : text)
      lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    size_t pos = 0;
    while ((pos = lower.find("prefix", pos)) != std::string::npos) {
      size_t name_start = pos + 6;
      while (name_start < text.size() &&
             std::isspace(static_cast<unsigned char>(text[name_start])))
        ++name_start;
      size_t colon = text.find(':', name_start);
      size_t lt = text.find('<', colon);
      size_t gt = text.find('>', lt);
      if (colon == std::string::npos || lt == std::string::npos ||
          gt == std::string::npos)
        break;
      std::string prefix(
          StripWhitespace(text.substr(name_start, colon - name_start)));
      prefixes[prefix] = std::string(text.substr(lt + 1, gt - lt - 1));
      pos = gt;
    }
  }

  // Extract the balanced-parenthesis argument of TrainGML(...).
  const size_t fn = text.find("TrainGML");
  size_t open = text.find('(', fn);
  if (open == std::string_view::npos)
    return Status::ParseError("TrainGML requires a parenthesized payload");
  int depth = 0;
  size_t close = open;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) {
        close = i;
        break;
      }
    }
  }
  if (close == open)
    return Status::ParseError("unbalanced parentheses in TrainGML payload");
  const std::string payload(
      StripWhitespace(text.substr(open + 1, close - open - 1)));

  KGNET_ASSIGN_OR_RETURN(TrainTaskSpec spec,
                         ParseTrainSpec(payload, prefixes));
  // A tripped token aborts training at the next epoch boundary and the
  // pipeline returns before anything is registered (gml::TrainConfig).
  spec.config.cancel = std::move(cancel);
  KGNET_ASSIGN_OR_RETURN(TrainOutcome outcome, training_->TrainTask(spec));

  // The INSERT materializes the model's KGMeta triples; report them.
  QueryResult result;
  result.columns = {"model", "metric", "method"};
  result.rows.push_back({Term::Iri(outcome.model_uri),
                         Term::DoubleLiteral(outcome.report.metric),
                         Term::Literal(outcome.report.method)});
  result.num_inserted = kgmeta_.store().size();
  return result;
}

Result<QueryResult> SparqlMlService::ExecuteDelete(const Query& query) {
  // Evaluate the WHERE clause against the KGMeta graph to find the model
  // URIs, then delete their metadata and artifacts.
  sparql::QueryEngine meta_engine(&kgmeta_.mutable_store());
  Query select;
  select.kind = QueryKind::kSelect;
  select.prefixes = query.prefixes;
  select.where = query.where;
  select.distinct = true;
  // Project the subject variable of the first template triple.
  std::string model_var;
  if (!query.update_template.empty() && query.update_template[0].s.is_var) {
    model_var = query.update_template[0].s.var;
  } else if (!query.where.triples.empty() &&
             query.where.triples[0].s.is_var) {
    model_var = query.where.triples[0].s.var;
  } else {
    return Status::InvalidArgument(
        "DELETE over kgnet: metadata requires a model variable");
  }
  sparql::SelectItem item;
  item.expr = Expr::Var(model_var);
  item.alias = model_var;
  select.select.push_back(std::move(item));

  KGNET_ASSIGN_OR_RETURN(QueryResult found, meta_engine.Execute(select));
  QueryResult result;
  for (const auto& row : found.rows) {
    if (row.empty() || !row[0].is_iri()) continue;
    const std::string& uri = row[0].lexical;
    Status st = kgmeta_.DeleteModel(uri);
    if (st.ok()) {
      (void)models_.Remove(uri);
      ++result.num_deleted;
    }
  }
  return result;
}

}  // namespace kgnet::core
