#include "core/inference_manager.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"
#include "core/model_io.h"

namespace kgnet::core {

using rdf::kNullTermId;
using rdf::TermId;

Result<uint32_t> InferenceManager::ResolveNodeIn(const TrainedModel& model,
                                                 const std::string& model_uri,
                                                 const std::string& node_iri) {
  const rdf::TripleStore* enc = model.EncodingStore();
  if (enc == nullptr)
    return Status::Internal("model has no encoding store: " + model_uri);
  TermId term = enc->dict().FindIri(node_iri);
  if (term == kNullTermId)
    return Status::NotFound("node not in model's training graph: " +
                            node_iri);
  uint32_t node;
  if (!model.graph->FindNode(term, &node))
    return Status::NotFound("node not in encoded graph: " + node_iri);
  return node;
}

Result<InferenceManager::ResolvedNode> InferenceManager::Resolve(
    const std::string& model_uri, const std::string& node_iri) {
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  KGNET_ASSIGN_OR_RETURN(uint32_t node,
                         ResolveNodeIn(*model, model_uri, node_iri));
  return ResolvedNode{std::move(model), node};
}

Result<std::string> InferenceManager::NodeClassImpl(
    const std::shared_ptr<TrainedModel>& model, const std::string& model_uri,
    const std::string& node_iri) {
  if (model->bundle != nullptr) {
    auto it = model->bundle->nc_predictions.find(node_iri);
    if (it == model->bundle->nc_predictions.end())
      return Status::NotFound("no prediction for node " + node_iri);
    return it->second;
  }
  KGNET_ASSIGN_OR_RETURN(uint32_t node,
                         ResolveNodeIn(*model, model_uri, node_iri));
  if (model->classifier == nullptr)
    return Status::FailedPrecondition(model_uri +
                                      " is not a node classifier");
  std::vector<int> pred = model->classifier->Predict(*model->graph, {node});
  if (pred.empty() || pred[0] < 0 ||
      static_cast<size_t>(pred[0]) >= model->graph->class_terms.size())
    return Status::NotFound("no prediction for node " + node_iri);
  const rdf::TripleStore* enc = model->EncodingStore();
  return enc->dict().Lookup(model->graph->class_terms[pred[0]]).lexical;
}

Result<std::string> InferenceManager::GetNodeClass(
    const std::string& model_uri, const std::string& node_iri) {
  CountCall();
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  return NodeClassImpl(model, model_uri, node_iri);
}

Result<std::vector<Result<std::string>>> InferenceManager::GetNodeClassBatch(
    const std::string& model_uri, const std::vector<std::string>& node_iris) {
  CountCall();
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  std::vector<Result<std::string>> out(
      node_iris.size(), Result<std::string>(Status::Internal("pending")));
  if (model->bundle != nullptr) {
    for (size_t i = 0; i < node_iris.size(); ++i) {
      auto it = model->bundle->nc_predictions.find(node_iris[i]);
      if (it == model->bundle->nc_predictions.end())
        out[i] = Status::NotFound("no prediction for node " + node_iris[i]);
      else
        out[i] = it->second;
    }
    return out;
  }
  // Resolve every node up front (per-element errors stay identical to the
  // single-node path), then answer all resolvable nodes with ONE forward.
  std::vector<uint32_t> nodes;
  std::vector<size_t> slots;
  for (size_t i = 0; i < node_iris.size(); ++i) {
    Result<uint32_t> rn = ResolveNodeIn(*model, model_uri, node_iris[i]);
    if (!rn.ok()) {
      out[i] = rn.status();
      continue;
    }
    if (model->classifier == nullptr) {
      out[i] = Status::FailedPrecondition(model_uri +
                                          " is not a node classifier");
      continue;
    }
    nodes.push_back(*rn);
    slots.push_back(i);
  }
  if (!nodes.empty()) {
    // Predict is per-node independent for every classifier (a cached-
    // prediction lookup), so element j of the batched call is bitwise-
    // identical to Predict(graph, {nodes[j]})[0].
    std::vector<int> preds = model->classifier->Predict(*model->graph, nodes);
    const rdf::TripleStore* enc = model->EncodingStore();
    for (size_t j = 0; j < nodes.size(); ++j) {
      const int cls = preds[j];
      if (cls < 0 ||
          static_cast<size_t>(cls) >= model->graph->class_terms.size())
        out[slots[j]] =
            Status::NotFound("no prediction for node " + node_iris[slots[j]]);
      else
        out[slots[j]] =
            enc->dict().Lookup(model->graph->class_terms[cls]).lexical;
    }
  }
  return out;
}

Result<std::map<std::string, std::string>>
InferenceManager::GetNodeClassDictionary(const std::string& model_uri) {
  CountCall();
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  if (model->bundle != nullptr) return model->bundle->nc_predictions;
  if (model->classifier == nullptr)
    return Status::FailedPrecondition(model_uri +
                                      " is not a node classifier");
  const rdf::TripleStore* enc = model->EncodingStore();
  const gml::GraphData& graph = *model->graph;
  std::vector<int> preds =
      model->classifier->Predict(graph, graph.target_nodes);
  std::map<std::string, std::string> out;
  for (size_t i = 0; i < graph.target_nodes.size(); ++i) {
    const int cls = preds[i];
    if (cls < 0 || static_cast<size_t>(cls) >= graph.class_terms.size())
      continue;
    const std::string& node_iri =
        enc->dict().Lookup(graph.node_terms[graph.target_nodes[i]]).lexical;
    out[node_iri] = enc->dict().Lookup(graph.class_terms[cls]).lexical;
  }
  return out;
}

Result<std::vector<std::string>> InferenceManager::TopKLinksImpl(
    const std::shared_ptr<TrainedModel>& model, const std::string& model_uri,
    const std::string& node_iri, size_t k) {
  const std::shared_ptr<ServingBundle>& b = model->bundle;
  if (b != nullptr) {
    if (b->embed_dim == 0)
      return Status::FailedPrecondition(model_uri +
                                        " is not a link predictor");
    auto sit = std::find(b->node_iris.begin(), b->node_iris.end(),
                         node_iri);
    if (sit == b->node_iris.end())
      return Status::NotFound("node not in model bundle: " + node_iri);
    const size_t src = static_cast<size_t>(sit - b->node_iris.begin());
    std::vector<std::pair<float, uint32_t>> scored;
    const std::vector<uint32_t>* pool = &b->destination_rows;
    std::vector<uint32_t> all_rows;
    if (pool->empty()) {
      all_rows.resize(b->node_iris.size());
      for (uint32_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
      pool = &all_rows;
    }
    for (uint32_t row : *pool)
      scored.emplace_back(ServingScore(*b, src, row), row);
    const size_t kk = std::min(k, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                      [](const auto& a, const auto& c) {
                        return a.first > c.first;
                      });
    std::vector<std::string> out;
    for (size_t i = 0; i < kk; ++i)
      out.push_back(b->node_iris[scored[i].second]);
    return out;
  }
  KGNET_ASSIGN_OR_RETURN(uint32_t node,
                         ResolveNodeIn(*model, model_uri, node_iri));
  if (model->predictor == nullptr)
    return Status::FailedPrecondition(model_uri + " is not a link predictor");
  const gml::GraphData& graph = *model->graph;
  if (graph.task_relation == UINT32_MAX)
    return Status::FailedPrecondition("model has no task relation");
  const rdf::TripleStore* enc = model->EncodingStore();

  // Rank candidate tails; restrict to instances of the destination type
  // when the metadata specifies one.
  TermId dest_type = model->info.destination_type_iri.empty()
                         ? kNullTermId
                         : enc->dict().FindIri(
                               model->info.destination_type_iri);
  TermId type_pred = enc->dict().FindIri(rdf::kRdfType);
  std::vector<uint32_t> ranked = model->predictor->TopKTails(
      node, graph.task_relation,
      dest_type == kNullTermId ? k : graph.num_nodes);
  std::vector<std::string> out;
  for (uint32_t t : ranked) {
    if (out.size() >= k) break;
    TermId term = graph.node_terms[t];
    if (dest_type != kNullTermId &&
        !enc->Contains(rdf::Triple(term, type_pred, dest_type)))
      continue;
    out.push_back(enc->dict().Lookup(term).lexical);
  }
  return out;
}

Result<std::vector<std::string>> InferenceManager::GetTopKLinks(
    const std::string& model_uri, const std::string& node_iri, size_t k) {
  CountCall();
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  return TopKLinksImpl(model, model_uri, node_iri, k);
}

Result<std::vector<Result<std::vector<std::string>>>>
InferenceManager::GetTopKLinksBatch(const std::string& model_uri,
                                    const std::vector<std::string>& node_iris,
                                    size_t k) {
  using Links = std::vector<std::string>;
  CountCall();
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  std::vector<Result<Links>> out(node_iris.size(),
                                 Result<Links>(Status::Internal("pending")));
  const std::shared_ptr<ServingBundle>& b = model->bundle;
  if (b == nullptr) {
    // In-memory models answer through the predictor's own TopKTails; run
    // the single-node body per element (still one counted API call).
    for (size_t i = 0; i < node_iris.size(); ++i)
      out[i] = TopKLinksImpl(model, model_uri, node_iris[i], k);
    return out;
  }
  if (b->embed_dim == 0)
    return Status::FailedPrecondition(model_uri + " is not a link predictor");
  std::vector<size_t> srcs;
  std::vector<size_t> slots;
  for (size_t i = 0; i < node_iris.size(); ++i) {
    auto sit =
        std::find(b->node_iris.begin(), b->node_iris.end(), node_iris[i]);
    if (sit == b->node_iris.end()) {
      out[i] = Status::NotFound("node not in model bundle: " + node_iris[i]);
      continue;
    }
    srcs.push_back(static_cast<size_t>(sit - b->node_iris.begin()));
    slots.push_back(i);
  }
  // Candidate pool built exactly as the single-node path builds it.
  const std::vector<uint32_t>* pool = &b->destination_rows;
  std::vector<uint32_t> all_rows;
  if (pool->empty()) {
    all_rows.resize(b->node_iris.size());
    for (uint32_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
    pool = &all_rows;
  }
  // One GEMM-shaped kernel for the whole batch: the |srcs| x |pool| score
  // matrix, each cell the same ServingScore call the single-node path
  // makes, so every row is bitwise-identical at any thread count (cells
  // are independent and each is written by exactly one chunk).
  const size_t width = pool->size();
  std::vector<float> scores(srcs.size() * width);
  common::ParallelFor(0, srcs.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* row = scores.data() + i * width;
      for (size_t j = 0; j < width; ++j)
        row[j] = ServingScore(*b, srcs[i], (*pool)[j]);
    }
  });
  for (size_t i = 0; i < srcs.size(); ++i) {
    std::vector<std::pair<float, uint32_t>> scored;
    scored.reserve(width);
    for (size_t j = 0; j < width; ++j)
      scored.emplace_back(scores[i * width + j], (*pool)[j]);
    const size_t kk = std::min(k, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                      [](const auto& a, const auto& c) {
                        return a.first > c.first;
                      });
    Links links;
    links.reserve(kk);
    for (size_t m = 0; m < kk; ++m)
      links.push_back(b->node_iris[scored[m].second]);
    out[slots[i]] = std::move(links);
  }
  return out;
}

Result<std::vector<float>> InferenceManager::EmbeddingRowImpl(
    const std::string& model_uri, const std::string& node_iri) {
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  const std::shared_ptr<ServingBundle>& b = model->bundle;
  if (b != nullptr) {
    if (model->embeddings == nullptr)
      return Status::FailedPrecondition(model_uri +
                                        " has no embedding store");
    auto sit = std::find(b->node_iris.begin(), b->node_iris.end(),
                         node_iri);
    if (sit == b->node_iris.end())
      return Status::NotFound("node not in model bundle: " + node_iri);
    const size_t src = static_cast<size_t>(sit - b->node_iris.begin());
    return std::vector<float>(
        b->embeddings.begin() + src * b->embed_dim,
        b->embeddings.begin() + (src + 1) * b->embed_dim);
  }
  KGNET_ASSIGN_OR_RETURN(ResolvedNode rn, Resolve(model_uri, node_iri));
  if (rn.model->embeddings == nullptr)
    return Status::FailedPrecondition(model_uri +
                                      " has no embedding store");
  std::vector<float> query =
      rn.model->predictor != nullptr
          ? rn.model->predictor->EntityEmbedding(rn.node)
          : std::vector<float>();
  if (query.size() != rn.model->embeddings->dim())
    return Status::Internal("embedding dimension mismatch");
  return query;
}

Result<std::vector<std::string>> InferenceManager::SimilarByRowImpl(
    const std::string& model_uri, const std::string& node_iri,
    const std::vector<float>& row, size_t k) {
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  const std::shared_ptr<ServingBundle>& b = model->bundle;
  if (b != nullptr) {
    if (model->embeddings == nullptr)
      return Status::FailedPrecondition(model_uri +
                                        " has no embedding store");
    auto sit = std::find(b->node_iris.begin(), b->node_iris.end(),
                         node_iri);
    if (sit == b->node_iris.end())
      return Status::NotFound("node not in model bundle: " + node_iri);
    const size_t src = static_cast<size_t>(sit - b->node_iris.begin());
    std::vector<std::string> out;
    for (const SearchHit& hit : model->embeddings->SearchIvf(row, k + 1)) {
      if (hit.id == src) continue;
      if (out.size() >= k) break;
      out.push_back(b->node_iris[hit.id]);
    }
    return out;
  }
  KGNET_ASSIGN_OR_RETURN(ResolvedNode rn, Resolve(model_uri, node_iri));
  if (rn.model->embeddings == nullptr)
    return Status::FailedPrecondition(model_uri +
                                      " has no embedding store");
  if (row.size() != rn.model->embeddings->dim())
    return Status::Internal("embedding dimension mismatch");
  const rdf::TripleStore* enc = rn.model->EncodingStore();
  std::vector<std::string> out;
  for (const SearchHit& hit :
       rn.model->embeddings->SearchIvf(row, k + 1)) {
    const uint32_t node = static_cast<uint32_t>(hit.id);
    if (node == rn.node) continue;  // skip self
    if (out.size() >= k) break;
    out.push_back(
        enc->dict().Lookup(rn.model->graph->node_terms[node]).lexical);
  }
  return out;
}

Result<std::vector<std::string>> InferenceManager::GetSimilarEntities(
    const std::string& model_uri, const std::string& node_iri, size_t k) {
  CountCall();
  KGNET_ASSIGN_OR_RETURN(std::vector<float> row,
                         EmbeddingRowImpl(model_uri, node_iri));
  return SimilarByRowImpl(model_uri, node_iri, row, k);
}

Result<std::vector<float>> InferenceManager::GetEmbeddingRow(
    const std::string& model_uri, const std::string& node_iri) {
  return EmbeddingRowImpl(model_uri, node_iri);
}

Result<std::vector<std::string>> InferenceManager::GetSimilarByRow(
    const std::string& model_uri, const std::string& node_iri,
    const std::vector<float>& row, size_t k) {
  CountCall();
  return SimilarByRowImpl(model_uri, node_iri, row, k);
}

}  // namespace kgnet::core
