#include "core/inference_manager.h"

#include <algorithm>

#include "core/model_io.h"

namespace kgnet::core {

using rdf::kNullTermId;
using rdf::TermId;

Result<InferenceManager::ResolvedNode> InferenceManager::Resolve(
    const std::string& model_uri, const std::string& node_iri) {
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  const rdf::TripleStore* enc = model->EncodingStore();
  if (enc == nullptr)
    return Status::Internal("model has no encoding store: " + model_uri);
  TermId term = enc->dict().FindIri(node_iri);
  if (term == kNullTermId)
    return Status::NotFound("node not in model's training graph: " +
                            node_iri);
  uint32_t node;
  if (!model->graph->FindNode(term, &node))
    return Status::NotFound("node not in encoded graph: " + node_iri);
  return ResolvedNode{std::move(model), node};
}

Result<std::string> InferenceManager::GetNodeClass(
    const std::string& model_uri, const std::string& node_iri) {
  CountCall();
  {
    KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
    if (model->bundle != nullptr) {
      auto it = model->bundle->nc_predictions.find(node_iri);
      if (it == model->bundle->nc_predictions.end())
        return Status::NotFound("no prediction for node " + node_iri);
      return it->second;
    }
  }
  KGNET_ASSIGN_OR_RETURN(ResolvedNode rn, Resolve(model_uri, node_iri));
  if (rn.model->classifier == nullptr)
    return Status::FailedPrecondition(model_uri +
                                      " is not a node classifier");
  std::vector<int> pred =
      rn.model->classifier->Predict(*rn.model->graph, {rn.node});
  if (pred.empty() || pred[0] < 0 ||
      static_cast<size_t>(pred[0]) >= rn.model->graph->class_terms.size())
    return Status::NotFound("no prediction for node " + node_iri);
  const rdf::TripleStore* enc = rn.model->EncodingStore();
  return enc->dict().Lookup(rn.model->graph->class_terms[pred[0]]).lexical;
}

Result<std::map<std::string, std::string>>
InferenceManager::GetNodeClassDictionary(const std::string& model_uri) {
  CountCall();
  KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
  if (model->bundle != nullptr) return model->bundle->nc_predictions;
  if (model->classifier == nullptr)
    return Status::FailedPrecondition(model_uri +
                                      " is not a node classifier");
  const rdf::TripleStore* enc = model->EncodingStore();
  const gml::GraphData& graph = *model->graph;
  std::vector<int> preds =
      model->classifier->Predict(graph, graph.target_nodes);
  std::map<std::string, std::string> out;
  for (size_t i = 0; i < graph.target_nodes.size(); ++i) {
    const int cls = preds[i];
    if (cls < 0 || static_cast<size_t>(cls) >= graph.class_terms.size())
      continue;
    const std::string& node_iri =
        enc->dict().Lookup(graph.node_terms[graph.target_nodes[i]]).lexical;
    out[node_iri] = enc->dict().Lookup(graph.class_terms[cls]).lexical;
  }
  return out;
}

Result<std::vector<std::string>> InferenceManager::GetTopKLinks(
    const std::string& model_uri, const std::string& node_iri, size_t k) {
  CountCall();
  {
    KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
    const std::shared_ptr<ServingBundle>& b = model->bundle;
    if (b != nullptr) {
      if (b->embed_dim == 0)
        return Status::FailedPrecondition(model_uri +
                                          " is not a link predictor");
      auto sit = std::find(b->node_iris.begin(), b->node_iris.end(),
                           node_iri);
      if (sit == b->node_iris.end())
        return Status::NotFound("node not in model bundle: " + node_iri);
      const size_t src = static_cast<size_t>(sit - b->node_iris.begin());
      std::vector<std::pair<float, uint32_t>> scored;
      const std::vector<uint32_t>* pool = &b->destination_rows;
      std::vector<uint32_t> all_rows;
      if (pool->empty()) {
        all_rows.resize(b->node_iris.size());
        for (uint32_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
        pool = &all_rows;
      }
      for (uint32_t row : *pool)
        scored.emplace_back(ServingScore(*b, src, row), row);
      const size_t kk = std::min(k, scored.size());
      std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                        [](const auto& a, const auto& c) {
                          return a.first > c.first;
                        });
      std::vector<std::string> out;
      for (size_t i = 0; i < kk; ++i)
        out.push_back(b->node_iris[scored[i].second]);
      return out;
    }
  }
  KGNET_ASSIGN_OR_RETURN(ResolvedNode rn, Resolve(model_uri, node_iri));
  if (rn.model->predictor == nullptr)
    return Status::FailedPrecondition(model_uri + " is not a link predictor");
  const gml::GraphData& graph = *rn.model->graph;
  if (graph.task_relation == UINT32_MAX)
    return Status::FailedPrecondition("model has no task relation");
  const rdf::TripleStore* enc = rn.model->EncodingStore();

  // Rank candidate tails; restrict to instances of the destination type
  // when the metadata specifies one.
  TermId dest_type = rn.model->info.destination_type_iri.empty()
                         ? kNullTermId
                         : enc->dict().FindIri(
                               rn.model->info.destination_type_iri);
  TermId type_pred = enc->dict().FindIri(rdf::kRdfType);
  std::vector<uint32_t> ranked = rn.model->predictor->TopKTails(
      rn.node, graph.task_relation,
      dest_type == kNullTermId ? k : graph.num_nodes);
  std::vector<std::string> out;
  for (uint32_t t : ranked) {
    if (out.size() >= k) break;
    TermId term = graph.node_terms[t];
    if (dest_type != kNullTermId &&
        !enc->Contains(rdf::Triple(term, type_pred, dest_type)))
      continue;
    out.push_back(enc->dict().Lookup(term).lexical);
  }
  return out;
}

Result<std::vector<std::string>> InferenceManager::GetSimilarEntities(
    const std::string& model_uri, const std::string& node_iri, size_t k) {
  CountCall();
  {
    KGNET_ASSIGN_OR_RETURN(auto model, models_->Get(model_uri));
    const std::shared_ptr<ServingBundle>& b = model->bundle;
    if (b != nullptr) {
      if (model->embeddings == nullptr)
        return Status::FailedPrecondition(model_uri +
                                          " has no embedding store");
      auto sit = std::find(b->node_iris.begin(), b->node_iris.end(),
                           node_iri);
      if (sit == b->node_iris.end())
        return Status::NotFound("node not in model bundle: " + node_iri);
      const size_t src = static_cast<size_t>(sit - b->node_iris.begin());
      std::vector<float> query(
          b->embeddings.begin() + src * b->embed_dim,
          b->embeddings.begin() + (src + 1) * b->embed_dim);
      std::vector<std::string> out;
      for (const SearchHit& hit : model->embeddings->SearchIvf(query, k + 1)) {
        if (hit.id == src) continue;
        if (out.size() >= k) break;
        out.push_back(b->node_iris[hit.id]);
      }
      return out;
    }
  }
  KGNET_ASSIGN_OR_RETURN(ResolvedNode rn, Resolve(model_uri, node_iri));
  if (rn.model->embeddings == nullptr)
    return Status::FailedPrecondition(model_uri +
                                      " has no embedding store");
  std::vector<float> query =
      rn.model->predictor != nullptr
          ? rn.model->predictor->EntityEmbedding(rn.node)
          : std::vector<float>();
  if (query.size() != rn.model->embeddings->dim())
    return Status::Internal("embedding dimension mismatch");
  const rdf::TripleStore* enc = rn.model->EncodingStore();
  std::vector<std::string> out;
  for (const SearchHit& hit :
       rn.model->embeddings->SearchIvf(query, k + 1)) {
    const uint32_t node = static_cast<uint32_t>(hit.id);
    if (node == rn.node) continue;  // skip self
    if (out.size() >= k) break;
    out.push_back(
        enc->dict().Lookup(rn.model->graph->node_terms[node]).lexical);
  }
  return out;
}

}  // namespace kgnet::core
