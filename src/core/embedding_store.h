// Embedding store for entity-similarity search (the paper uses FAISS).
//
// Two index types with the same Search() contract:
//   * flat  — exact brute-force scan;
//   * IVF   — k-means coarse quantizer; queries probe the `nprobe` closest
//             cells, trading recall for latency (FAISS IndexIVFFlat).
#ifndef KGNET_CORE_EMBEDDING_STORE_H_
#define KGNET_CORE_EMBEDDING_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace kgnet::core {

/// Distance metrics supported by the store.
enum class Metric {
  kL2,      // squared euclidean, smaller = closer
  kCosine,  // 1 - cosine similarity, smaller = closer
};

/// One search hit.
struct SearchHit {
  uint64_t id;
  float distance;
};

/// A vector index over fixed-dimension float embeddings.
class EmbeddingStore {
 public:
  explicit EmbeddingStore(size_t dim, Metric metric = Metric::kCosine)
      : dim_(dim), metric_(metric) {}

  size_t dim() const { return dim_; }
  size_t size() const { return ids_.size(); }
  Metric metric() const { return metric_; }

  /// Adds a vector under `id`. Fails on dimension mismatch.
  Status Add(uint64_t id, const std::vector<float>& vec);

  /// Removes `id`; returns NotFound when absent. Invalidates the IVF index.
  Status Remove(uint64_t id);

  /// Exact top-k by brute force.
  std::vector<SearchHit> SearchFlat(const std::vector<float>& query,
                                    size_t k) const;

  /// Builds an IVF index with `nlist` cells (k-means, `iters` iterations).
  Status BuildIvf(size_t nlist, size_t iters = 8, uint64_t seed = 1);

  /// Approximate top-k probing the `nprobe` closest cells. Falls back to
  /// flat search if the IVF index is absent or stale.
  std::vector<SearchHit> SearchIvf(const std::vector<float>& query, size_t k,
                                   size_t nprobe = 4) const;

  /// True if an up-to-date IVF index exists.
  bool HasIvf() const { return ivf_valid_; }

 private:
  float Distance(const float* a, const float* b) const;

  size_t dim_;
  Metric metric_;
  std::vector<uint64_t> ids_;
  std::vector<float> data_;  // row-major, ids_.size() x dim_

  // IVF state.
  bool ivf_valid_ = false;
  std::vector<float> centroids_;            // nlist x dim_
  std::vector<std::vector<uint32_t>> cells_;  // row indexes per cell
};

}  // namespace kgnet::core

#endif  // KGNET_CORE_EMBEDDING_STORE_H_
