#include "core/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace kgnet::core {

namespace {

std::string NormalizeKey(std::string_view key) {
  std::string out;
  for (char c : key) {
    if (c == '-' || c == '_' || c == ' ' || c == ':') continue;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  Result<JsonValue> Parse() {
    KGNET_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != s_.size())
      return Status::ParseError("trailing characters after JSON value");
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool Accept(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(char c) {
    if (!Accept(c))
      return Status::ParseError(std::string("expected '") + c +
                                "' at offset " + std::to_string(pos_));
    return Status::OK();
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= s_.size()) return Status::ParseError("unexpected end of JSON");
    const char c = s_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"' || c == '\'') {
      KGNET_ASSIGN_OR_RETURN(std::string str, ParseString());
      return JsonValue(std::move(str));
    }
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      if (s_.substr(pos_, 4) == "null") {
        pos_ += 4;
        return JsonValue();
      }
      return Status::ParseError("bad literal at offset " +
                                std::to_string(pos_));
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return ParseNumber();
    // Bare word value (e.g. 50GB, 1h, ModelScore): read until delimiter and
    // treat as a string. This accommodates the paper's informal syntax.
    size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}' &&
           s_[pos_] != ']' && !std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ == start)
      return Status::ParseError("cannot parse JSON value at offset " +
                                std::to_string(pos_));
    return JsonValue(std::string(s_.substr(start, pos_ - start)));
  }

  Result<JsonValue> ParseObject() {
    KGNET_RETURN_IF_ERROR(Expect('{'));
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Accept('}')) return obj;
    while (true) {
      KGNET_ASSIGN_OR_RETURN(std::string key, ParseKey());
      KGNET_RETURN_IF_ERROR(Expect(':'));
      KGNET_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.Set(std::move(key), std::move(v));
      if (Accept(',')) continue;
      KGNET_RETURN_IF_ERROR(Expect('}'));
      return obj;
    }
  }

  Result<JsonValue> ParseArray() {
    KGNET_RETURN_IF_ERROR(Expect('['));
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Accept(']')) return arr;
    while (true) {
      KGNET_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Push(std::move(v));
      if (Accept(',')) continue;
      KGNET_RETURN_IF_ERROR(Expect(']'));
      return arr;
    }
  }

  Result<std::string> ParseKey() {
    SkipWs();
    if (pos_ < s_.size() && (s_[pos_] == '"' || s_[pos_] == '\''))
      return ParseString();
    // Unquoted key: identifier characters plus '-', '.' and spaces inside
    // (e.g. "Task Budget"); the ':' separator ends the key.
    size_t start = pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.' || c == ' ') {
        ++pos_;
      } else {
        break;
      }
    }
    while (pos_ > start && s_[pos_ - 1] == ' ') --pos_;  // rstrip
    if (pos_ == start)
      return Status::ParseError("expected object key at offset " +
                                std::to_string(pos_));
    return std::string(s_.substr(start, pos_ - start));
  }

  Result<std::string> ParseString() {
    SkipWs();
    const char quote = s_[pos_];
    ++pos_;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\' && pos_ + 1 < s_.size()) {
        const char e = s_[pos_ + 1];
        out += (e == 'n' ? '\n' : e == 't' ? '\t' : e);
        pos_ += 2;
        continue;
      }
      if (c == quote) {
        ++pos_;
        return out;
      }
      out += c;
      ++pos_;
    }
    return Status::ParseError("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    if (s_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return JsonValue(true);
    }
    if (s_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return JsonValue(false);
    }
    return Status::ParseError("bad literal at offset " + std::to_string(pos_));
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    // A trailing unit (e.g. 50GB, 1h) turns the token into a string.
    if (pos_ < s_.size() &&
        std::isalpha(static_cast<unsigned char>(s_[pos_]))) {
      while (pos_ < s_.size() &&
             std::isalnum(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
      return JsonValue(std::string(s_.substr(start, pos_ - start)));
    }
    return JsonValue(std::atof(std::string(s_.substr(start, pos_ - start)).c_str()));
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::FindRelaxed(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = obj_.find(key);
  if (it != obj_.end()) return &it->second;
  const std::string want = NormalizeKey(key);
  for (const auto& [k, v] : obj_) {
    if (NormalizeKey(k) == want) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  // Integral values within int64 range print without a decimal point so
  // counts and sizes look like integers on the wire.
  if (d >= -9.2e18 && d <= 9.2e18 &&
      d == static_cast<double>(static_cast<long long>(d))) {
    *out += std::to_string(static_cast<long long>(d));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void DumpValue(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      AppendNumber(v.AsNumber(), out);
      break;
    case JsonValue::Kind::kString:
      AppendEscaped(v.AsString(), out);
      break;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.AsArray()) {
        if (!first) out->push_back(',');
        first = false;
        DumpValue(item, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, item] : v.AsObject()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(key, out);
        out->push_back(':');
        DumpValue(item, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string DumpJson(const JsonValue& value) {
  std::string out;
  DumpValue(value, &out);
  return out;
}

}  // namespace kgnet::core
