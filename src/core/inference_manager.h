// GML inference manager: the GMLaaS inference endpoint of Figure 3.
//
// In the paper the RDF engine reaches trained models through HTTP calls to
// a RESTful service; the number of calls dominates SPARQL-ML execution cost
// (Section IV-B3). Here each public method is one simulated API call: it
// increments a call counter and can add a configurable per-call latency so
// the query-optimizer benchmarks reproduce the Figure 11 vs Figure 12
// trade-off faithfully.
//
// The *Batch methods are the serving-path counterparts: one API call
// answers a whole batch of nodes against the same model (one forward /
// one score-kernel invocation), and per-node results are guaranteed to
// be bitwise-identical to a serial loop of the single-node calls. The
// serving layer's InferBatcher (src/serving/infer_batcher.h) collects
// concurrent network requests into these calls.
//
// Thread safety: all methods may be called concurrently (the serving
// front end does); the call counters are mutex-guarded and models are
// fetched as shared_ptr copies from the (locked) ModelStore.
#ifndef KGNET_CORE_INFERENCE_MANAGER_H_
#define KGNET_CORE_INFERENCE_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/model_store.h"

namespace kgnet::core {

/// Serves predictions from stored models; counts simulated HTTP calls.
class InferenceManager {
 public:
  explicit InferenceManager(ModelStore* models) : models_(models) {}

  /// Predicted class IRI for one node (one API call).
  Result<std::string> GetNodeClass(const std::string& model_uri,
                                   const std::string& node_iri);

  /// Predicted class IRIs for a batch of nodes (one API call, one model
  /// forward). Element i is the exact value — or the exact error —
  /// GetNodeClass(model_uri, node_iris[i]) would have produced.
  Result<std::vector<Result<std::string>>> GetNodeClassBatch(
      const std::string& model_uri, const std::vector<std::string>& node_iris);

  /// Predicted class IRIs for every target node of the model (one API
  /// call returning the whole dictionary — the Figure 12 plan).
  Result<std::map<std::string, std::string>> GetNodeClassDictionary(
      const std::string& model_uri);

  /// Top-k predicted destination IRIs for one source node (one API call).
  Result<std::vector<std::string>> GetTopKLinks(const std::string& model_uri,
                                                const std::string& node_iri,
                                                size_t k);

  /// Top-k links for a batch of source nodes (one API call). For
  /// bundle-served models the whole batch is scored through one
  /// GEMM-shaped kernel (|batch| x |candidates| score matrix, computed
  /// on the shared thread pool with fixed chunking); each row uses the
  /// identical per-cell scoring as the single-node path, so element i is
  /// bitwise-identical to GetTopKLinks(model_uri, node_iris[i], k) at
  /// any thread count.
  Result<std::vector<Result<std::vector<std::string>>>> GetTopKLinksBatch(
      const std::string& model_uri, const std::vector<std::string>& node_iris,
      size_t k);

  /// Top-k most similar entities by embedding distance (one API call).
  Result<std::vector<std::string>> GetSimilarEntities(
      const std::string& model_uri, const std::string& node_iri, size_t k);

  /// The embedding row Search would use for `node_iri` — a helper for
  /// serving-side row caches, NOT an API call (no counter bump). The
  /// returned vector is bitwise-stable for a given (model, node) until
  /// the model is replaced.
  Result<std::vector<float>> GetEmbeddingRow(const std::string& model_uri,
                                             const std::string& node_iri);

  /// GetSimilarEntities with a caller-supplied query row (one API call):
  /// the serving layer passes a cached GetEmbeddingRow result here and
  /// gets bitwise-identical output to the uncached call.
  Result<std::vector<std::string>> GetSimilarByRow(
      const std::string& model_uri, const std::string& node_iri,
      const std::vector<float>& row, size_t k);

  /// Number of simulated HTTP calls since the last reset.
  uint64_t http_calls() const {
    common::MutexLock lock(&counters_mu_);
    return http_calls_;
  }
  void ResetCounters() {
    common::MutexLock lock(&counters_mu_);
    http_calls_ = 0;
  }

  /// Simulated per-call latency in microseconds added to every call's
  /// accounting (not slept; accumulated in simulated_latency_us()).
  void set_per_call_latency_us(double us) {
    common::MutexLock lock(&counters_mu_);
    per_call_latency_us_ = us;
  }
  double simulated_latency_us() const {
    common::MutexLock lock(&counters_mu_);
    return simulated_latency_us_;
  }

 private:
  struct ResolvedNode {
    std::shared_ptr<TrainedModel> model;
    uint32_t node = 0;
  };
  Result<ResolvedNode> Resolve(const std::string& model_uri,
                               const std::string& node_iri);
  /// Resolve against an already-fetched model, so a batch touches the
  /// ModelStore exactly once and every element sees the same model.
  Result<uint32_t> ResolveNodeIn(const TrainedModel& model,
                                 const std::string& model_uri,
                                 const std::string& node_iri);
  /// GetNodeClass body minus the call accounting.
  Result<std::string> NodeClassImpl(const std::shared_ptr<TrainedModel>& model,
                                    const std::string& model_uri,
                                    const std::string& node_iri);
  /// GetTopKLinks body minus the call accounting.
  Result<std::vector<std::string>> TopKLinksImpl(
      const std::shared_ptr<TrainedModel>& model, const std::string& model_uri,
      const std::string& node_iri, size_t k);
  /// GetSimilarByRow minus the call accounting (shared by the counted
  /// entry points).
  Result<std::vector<std::string>> SimilarByRowImpl(
      const std::string& model_uri, const std::string& node_iri,
      const std::vector<float>& row, size_t k);
  /// GetEmbeddingRow body (uncounted).
  Result<std::vector<float>> EmbeddingRowImpl(const std::string& model_uri,
                                              const std::string& node_iri);
  void CountCall() {
    common::MutexLock lock(&counters_mu_);
    ++http_calls_;
    simulated_latency_us_ += per_call_latency_us_;
  }

  ModelStore* models_;
  mutable common::Mutex counters_mu_;
  uint64_t http_calls_ KGNET_GUARDED_BY(counters_mu_) = 0;
  double per_call_latency_us_ KGNET_GUARDED_BY(counters_mu_) = 0.0;
  double simulated_latency_us_ KGNET_GUARDED_BY(counters_mu_) = 0.0;
};

}  // namespace kgnet::core

#endif  // KGNET_CORE_INFERENCE_MANAGER_H_
