// GML inference manager: the GMLaaS inference endpoint of Figure 3.
//
// In the paper the RDF engine reaches trained models through HTTP calls to
// a RESTful service; the number of calls dominates SPARQL-ML execution cost
// (Section IV-B3). Here each public method is one simulated API call: it
// increments a call counter and can add a configurable per-call latency so
// the query-optimizer benchmarks reproduce the Figure 11 vs Figure 12
// trade-off faithfully.
#ifndef KGNET_CORE_INFERENCE_MANAGER_H_
#define KGNET_CORE_INFERENCE_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/model_store.h"

namespace kgnet::core {

/// Serves predictions from stored models; counts simulated HTTP calls.
class InferenceManager {
 public:
  explicit InferenceManager(ModelStore* models) : models_(models) {}

  /// Predicted class IRI for one node (one API call).
  Result<std::string> GetNodeClass(const std::string& model_uri,
                                   const std::string& node_iri);

  /// Predicted class IRIs for every target node of the model (one API
  /// call returning the whole dictionary — the Figure 12 plan).
  Result<std::map<std::string, std::string>> GetNodeClassDictionary(
      const std::string& model_uri);

  /// Top-k predicted destination IRIs for one source node (one API call).
  Result<std::vector<std::string>> GetTopKLinks(const std::string& model_uri,
                                                const std::string& node_iri,
                                                size_t k);

  /// Top-k most similar entities by embedding distance (one API call).
  Result<std::vector<std::string>> GetSimilarEntities(
      const std::string& model_uri, const std::string& node_iri, size_t k);

  /// Number of simulated HTTP calls since the last reset.
  uint64_t http_calls() const { return http_calls_; }
  void ResetCounters() { http_calls_ = 0; }

  /// Simulated per-call latency in microseconds added to every call's
  /// accounting (not slept; accumulated in simulated_latency_us()).
  void set_per_call_latency_us(double us) { per_call_latency_us_ = us; }
  double simulated_latency_us() const { return simulated_latency_us_; }

 private:
  struct ResolvedNode {
    std::shared_ptr<TrainedModel> model;
    uint32_t node = 0;
  };
  Result<ResolvedNode> Resolve(const std::string& model_uri,
                               const std::string& node_iri);
  void CountCall() {
    ++http_calls_;
    simulated_latency_us_ += per_call_latency_us_;
  }

  ModelStore* models_;
  uint64_t http_calls_ = 0;
  double per_call_latency_us_ = 0.0;
  double simulated_latency_us_ = 0.0;
};

}  // namespace kgnet::core

#endif  // KGNET_CORE_INFERENCE_MANAGER_H_
