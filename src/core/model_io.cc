#include "core/model_io.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "rdf/ntriples.h"

namespace kgnet::core {

namespace {

constexpr char kMagic[5] = {'K', 'G', 'N', 'M', '1'};

// ---- framed little-endian writers/readers ----

void WriteU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteStr(std::ostream& os, const std::string& s) {
  WriteU64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void WriteFloats(std::ostream& os, const std::vector<float>& v) {
  WriteU64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

bool ReadU64(std::istream& is, uint64_t* v) {
  return static_cast<bool>(
      is.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadF64(std::istream& is, double* v) {
  return static_cast<bool>(
      is.read(reinterpret_cast<char*>(v), sizeof(*v)));
}
bool ReadStr(std::istream& is, std::string* s) {
  uint64_t n = 0;
  if (!ReadU64(is, &n) || n > (1ull << 32)) return false;
  s->resize(n);
  return static_cast<bool>(
      is.read(s->data(), static_cast<std::streamsize>(n)));
}
bool ReadFloats(std::istream& is, std::vector<float>* v) {
  uint64_t n = 0;
  if (!ReadU64(is, &n) || n > (1ull << 32)) return false;
  v->resize(n);
  return static_cast<bool>(
      is.read(reinterpret_cast<char*>(v->data()),
              static_cast<std::streamsize>(n * sizeof(float))));
}

}  // namespace

Result<ServingBundle> BuildServingBundle(const TrainedModel& model) {
  ServingBundle bundle;
  const rdf::TripleStore* enc = model.EncodingStore();
  if (model.graph == nullptr || enc == nullptr)
    return Status::FailedPrecondition(
        "model has no graph/encoding store (already a loaded bundle?)");
  const gml::GraphData& graph = *model.graph;

  if (model.classifier != nullptr) {
    std::vector<int> preds =
        model.classifier->Predict(graph, graph.target_nodes);
    for (size_t i = 0; i < graph.target_nodes.size(); ++i) {
      const int cls = preds[i];
      if (cls < 0 || static_cast<size_t>(cls) >= graph.class_terms.size())
        continue;
      bundle.nc_predictions.emplace(
          enc->dict().Lookup(graph.node_terms[graph.target_nodes[i]]).lexical,
          enc->dict().Lookup(graph.class_terms[cls]).lexical);
    }
    return bundle;
  }

  if (model.predictor != nullptr) {
    bundle.node_iris.reserve(graph.num_nodes);
    for (uint32_t v = 0; v < graph.num_nodes; ++v) {
      std::vector<float> emb = model.predictor->EntityEmbedding(v);
      if (bundle.embed_dim == 0) bundle.embed_dim = emb.size();
      if (emb.size() != bundle.embed_dim)
        return Status::Internal("inconsistent embedding dimensions");
      bundle.node_iris.push_back(
          enc->dict().Lookup(graph.node_terms[v]).lexical);
      bundle.embeddings.insert(bundle.embeddings.end(), emb.begin(),
                               emb.end());
    }
    // Approximate the task-relation vector from training edges: the mean
    // of (tail - head) in embedding space — exact for TransE, a serviceable
    // translation estimate for the other scorers.
    if (!graph.train_edges.empty() && bundle.embed_dim > 0) {
      bundle.task_relation.assign(bundle.embed_dim, 0.0f);
      for (const gml::Edge& e : graph.train_edges) {
        const float* h = &bundle.embeddings[e.src * bundle.embed_dim];
        const float* t = &bundle.embeddings[e.dst * bundle.embed_dim];
        for (size_t k = 0; k < bundle.embed_dim; ++k)
          bundle.task_relation[k] += t[k] - h[k];
      }
      const float inv = 1.0f / static_cast<float>(graph.train_edges.size());
      for (float& x : bundle.task_relation) x *= inv;
    }
    bundle.destination_rows = graph.destination_candidates;
    return bundle;
  }
  if (model.bundle != nullptr) return *model.bundle;  // already a bundle
  return Status::FailedPrecondition("model has no servable artifact");
}

Status SaveTrainedModel(const TrainedModel& model, const std::string& path) {
  KGNET_ASSIGN_OR_RETURN(ServingBundle bundle, BuildServingBundle(model));
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::Internal("cannot open for writing: " + path);
  os.write(kMagic, sizeof(kMagic));

  const ModelInfo& info = model.info;
  WriteStr(os, info.uri);
  WriteU64(os, static_cast<uint64_t>(info.task));
  WriteStr(os, info.method);
  WriteStr(os, info.target_type_iri);
  WriteStr(os, info.label_predicate_iri);
  WriteStr(os, info.source_type_iri);
  WriteStr(os, info.destination_type_iri);
  WriteStr(os, info.task_predicate_iri);
  WriteStr(os, info.sampler_label);
  WriteF64(os, info.accuracy);
  WriteF64(os, info.mrr);
  WriteF64(os, info.inference_us);
  WriteU64(os, info.cardinality);
  WriteF64(os, info.train_seconds);
  WriteU64(os, info.train_memory_bytes);

  WriteU64(os, bundle.nc_predictions.size());
  for (const auto& [node, cls] : bundle.nc_predictions) {
    WriteStr(os, node);
    WriteStr(os, cls);
  }
  WriteU64(os, bundle.node_iris.size());
  for (const auto& iri : bundle.node_iris) WriteStr(os, iri);
  WriteU64(os, bundle.embed_dim);
  WriteFloats(os, bundle.embeddings);
  WriteFloats(os, bundle.task_relation);
  WriteU64(os, bundle.destination_rows.size());
  for (uint32_t row : bundle.destination_rows)
    WriteU64(os, row);
  if (!os) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<std::shared_ptr<TrainedModel>> LoadTrainedModel(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::NotFound("cannot open: " + path);
  char magic[sizeof(kMagic)];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return Status::ParseError("not a KGNet model bundle: " + path);

  auto model = std::make_shared<TrainedModel>();
  ModelInfo& info = model->info;
  uint64_t task = 0, cardinality = 0, mem = 0;
  double acc = 0, mrr = 0, infer = 0, secs = 0;
  if (!ReadStr(is, &info.uri) || !ReadU64(is, &task) ||
      !ReadStr(is, &info.method) || !ReadStr(is, &info.target_type_iri) ||
      !ReadStr(is, &info.label_predicate_iri) ||
      !ReadStr(is, &info.source_type_iri) ||
      !ReadStr(is, &info.destination_type_iri) ||
      !ReadStr(is, &info.task_predicate_iri) ||
      !ReadStr(is, &info.sampler_label) || !ReadF64(is, &acc) ||
      !ReadF64(is, &mrr) || !ReadF64(is, &infer) ||
      !ReadU64(is, &cardinality) || !ReadF64(is, &secs) ||
      !ReadU64(is, &mem))
    return Status::ParseError("truncated model bundle: " + path);
  info.task = static_cast<gml::TaskType>(task);
  info.accuracy = acc;
  info.mrr = mrr;
  info.inference_us = infer;
  info.cardinality = cardinality;
  info.train_seconds = secs;
  info.train_memory_bytes = mem;

  auto bundle = std::make_shared<ServingBundle>();
  uint64_t n = 0;
  if (!ReadU64(is, &n)) return Status::ParseError("truncated bundle");
  for (uint64_t i = 0; i < n; ++i) {
    std::string node, cls;
    if (!ReadStr(is, &node) || !ReadStr(is, &cls))
      return Status::ParseError("truncated prediction table");
    bundle->nc_predictions.emplace(std::move(node), std::move(cls));
  }
  if (!ReadU64(is, &n)) return Status::ParseError("truncated bundle");
  bundle->node_iris.resize(n);
  for (auto& iri : bundle->node_iris)
    if (!ReadStr(is, &iri)) return Status::ParseError("truncated iri table");
  uint64_t dim = 0;
  if (!ReadU64(is, &dim) || !ReadFloats(is, &bundle->embeddings) ||
      !ReadFloats(is, &bundle->task_relation))
    return Status::ParseError("truncated embeddings");
  bundle->embed_dim = dim;
  if (bundle->embeddings.size() != bundle->node_iris.size() * dim)
    return Status::ParseError("embedding table size mismatch");
  if (!ReadU64(is, &n)) return Status::ParseError("truncated bundle");
  bundle->destination_rows.resize(n);
  for (auto& row : bundle->destination_rows) {
    uint64_t v = 0;
    if (!ReadU64(is, &v)) return Status::ParseError("truncated candidates");
    row = static_cast<uint32_t>(v);
  }
  model->bundle = std::move(bundle);

  // Rebuild the similarity index for LP/ES bundles.
  if (model->bundle->embed_dim > 0 && !model->bundle->node_iris.empty()) {
    auto store = std::make_shared<EmbeddingStore>(model->bundle->embed_dim);
    for (size_t row = 0; row < model->bundle->node_iris.size(); ++row) {
      std::vector<float> v(
          model->bundle->embeddings.begin() + row * model->bundle->embed_dim,
          model->bundle->embeddings.begin() +
              (row + 1) * model->bundle->embed_dim);
      (void)store->Add(row, v);
    }
    model->embeddings = std::move(store);
  }
  return model;
}

Result<size_t> SaveModelStore(const ModelStore& store, const KgMeta& kgmeta,
                              const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create directory: " + dir);
  size_t written = 0;
  for (const std::string& uri : store.ListUris()) {
    auto model = store.Get(uri);
    if (!model.ok()) continue;
    // Derive a filesystem-safe name from the URI tail.
    std::string name = uri.substr(uri.rfind('/') + 1);
    for (char& c : name)
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
          c != '_')
        c = '_';
    KGNET_RETURN_IF_ERROR(
        SaveTrainedModel(**model, dir + "/" + name + ".kgm"));
    ++written;
  }
  std::ofstream meta(dir + "/kgmeta.nt", std::ios::trunc);
  if (!meta) return Status::Internal("cannot write kgmeta.nt");
  KGNET_RETURN_IF_ERROR(rdf::WriteNTriples(kgmeta.store(), meta));
  return written;
}

Result<size_t> LoadModelStore(const std::string& dir, ModelStore* store,
                              KgMeta* kgmeta) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec))
    return Status::NotFound("not a directory: " + dir);
  size_t loaded = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".kgm") continue;
    KGNET_ASSIGN_OR_RETURN(auto model, LoadTrainedModel(entry.path().string()));
    const std::string uri = model->info.uri;
    store->Put(std::move(model));
    // Re-register metadata unless already present.
    if (!kgmeta->Get(uri).ok()) {
      auto restored = store->Get(uri);
      if (restored.ok())
        KGNET_RETURN_IF_ERROR(kgmeta->RegisterModel((*restored)->info));
    }
    ++loaded;
  }
  return loaded;
}

}  // namespace kgnet::core

namespace kgnet::core {
// ServingBundle-based scoring helper used by the inference manager.
float ServingScore(const ServingBundle& b, size_t src_row, size_t dst_row) {
  float s = 0.0f;
  const float* h = &b.embeddings[src_row * b.embed_dim];
  const float* t = &b.embeddings[dst_row * b.embed_dim];
  for (size_t k = 0; k < b.embed_dim; ++k) {
    const float r = k < b.task_relation.size() ? b.task_relation[k] : 0.0f;
    s -= std::fabs(h[k] + r - t[k]);
  }
  return s;
}
}  // namespace kgnet::core
