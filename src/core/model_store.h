// In-memory registry of trained model artifacts (the GMLaaS "model and
// embedding storage" of Figure 3).
#ifndef KGNET_CORE_MODEL_STORE_H_
#define KGNET_CORE_MODEL_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/embedding_store.h"
#include "core/kgmeta.h"
#include "gml/model.h"

namespace kgnet::core {

/// The self-contained inference payload a model can be persisted and
/// served from (see core/model_io.h). NC models carry their prediction
/// dictionary; LP/ES models carry aligned entity embeddings, the task
/// relation vector and the destination-candidate rows.
struct ServingBundle {
  std::map<std::string, std::string> nc_predictions;
  std::vector<std::string> node_iris;
  size_t embed_dim = 0;
  std::vector<float> embeddings;  // node_iris.size() x embed_dim
  std::vector<float> task_relation;
  std::vector<uint32_t> destination_rows;
};

/// A trained model plus everything needed to serve inference for it: the
/// graph encoding it was trained on (node-id <-> IRI mapping lives there)
/// and the sampled subgraph store when meta-sampling was used. Models
/// restored from disk carry only `info` and `bundle`.
struct TrainedModel {
  ModelInfo info;
  std::shared_ptr<gml::NodeClassifier> classifier;  // NC models
  std::shared_ptr<gml::LinkPredictor> predictor;    // LP models
  std::shared_ptr<gml::GraphData> graph;
  /// The store `graph` was encoded from (KG' when sampled, else the data
  /// KG). Needed to translate IRIs to graph node ids.
  std::shared_ptr<rdf::TripleStore> subgraph;
  const rdf::TripleStore* source_store = nullptr;
  /// Entity embeddings for similarity search (LP models).
  std::shared_ptr<EmbeddingStore> embeddings;
  /// Persisted serving payload (set for models loaded from disk).
  std::shared_ptr<ServingBundle> bundle;

  const rdf::TripleStore* EncodingStore() const {
    return subgraph != nullptr ? subgraph.get() : source_store;
  }
};

/// Maps model URIs to trained artifacts.
///
/// Thread-safe: the serving front end reads models from session worker
/// threads while training (serialized by the server) may register new
/// ones. Get hands out a shared_ptr copy, so a fetched model stays valid
/// even if it is replaced or removed concurrently.
class ModelStore {
 public:
  /// Stores `model` under its URI; replaces any previous entry.
  void Put(std::shared_ptr<TrainedModel> model) {
    common::MutexLock lock(&mu_);
    models_[model->info.uri] = std::move(model);
  }

  /// Fetches a model.
  Result<std::shared_ptr<TrainedModel>> Get(const std::string& uri) const {
    common::MutexLock lock(&mu_);
    auto it = models_.find(uri);
    if (it == models_.end())
      return Status::NotFound("no trained model stored for " + uri);
    return it->second;
  }

  /// Drops a model; returns NotFound when absent.
  Status Remove(const std::string& uri) {
    common::MutexLock lock(&mu_);
    return models_.erase(uri) > 0
               ? Status::OK()
               : Status::NotFound("no trained model stored for " + uri);
  }

  std::vector<std::string> ListUris() const {
    common::MutexLock lock(&mu_);
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto& [uri, m] : models_) out.push_back(uri);
    return out;
  }

  size_t size() const {
    common::MutexLock lock(&mu_);
    return models_.size();
  }

 private:
  mutable common::Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<TrainedModel>> models_
      KGNET_GUARDED_BY(mu_);
};

}  // namespace kgnet::core

#endif  // KGNET_CORE_MODEL_STORE_H_
