#include "core/embedding_store.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

namespace kgnet::core {

namespace {

float Dot(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

float L2(const float* a, const float* b, size_t d) {
  float acc = 0.0f;
  for (size_t i = 0; i < d; ++i) {
    const float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

float EmbeddingStore::Distance(const float* a, const float* b) const {
  if (metric_ == Metric::kL2) return L2(a, b, dim_);
  const float na = std::sqrt(Dot(a, a, dim_)) + 1e-12f;
  const float nb = std::sqrt(Dot(b, b, dim_)) + 1e-12f;
  return 1.0f - Dot(a, b, dim_) / (na * nb);
}

Status EmbeddingStore::Add(uint64_t id, const std::vector<float>& vec) {
  if (vec.size() != dim_)
    return Status::InvalidArgument(
        "dimension mismatch: expected " + std::to_string(dim_) + ", got " +
        std::to_string(vec.size()));
  ids_.push_back(id);
  data_.insert(data_.end(), vec.begin(), vec.end());
  ivf_valid_ = false;
  return Status::OK();
}

Status EmbeddingStore::Remove(uint64_t id) {
  auto it = std::find(ids_.begin(), ids_.end(), id);
  if (it == ids_.end())
    return Status::NotFound("id not in store: " + std::to_string(id));
  const size_t row = static_cast<size_t>(it - ids_.begin());
  ids_.erase(it);
  data_.erase(data_.begin() + row * dim_, data_.begin() + (row + 1) * dim_);
  ivf_valid_ = false;
  return Status::OK();
}

std::vector<SearchHit> EmbeddingStore::SearchFlat(
    const std::vector<float>& query, size_t k) const {
  std::vector<SearchHit> hits;
  if (query.size() != dim_) return hits;
  hits.reserve(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i)
    hits.push_back({ids_[i], Distance(query.data(), &data_[i * dim_])});
  const size_t kk = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + kk, hits.end(),
                    [](const SearchHit& a, const SearchHit& b) {
                      return a.distance < b.distance;
                    });
  hits.resize(kk);
  return hits;
}

Status EmbeddingStore::BuildIvf(size_t nlist, size_t iters, uint64_t seed) {
  if (nlist == 0 || ids_.empty())
    return Status::InvalidArgument("need nlist > 0 and a non-empty store");
  nlist = std::min(nlist, ids_.size());
  std::mt19937_64 gen(seed);

  // k-means++ style init: pick distinct random rows.
  std::vector<uint32_t> perm(ids_.size());
  for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), gen);
  centroids_.assign(nlist * dim_, 0.0f);
  for (size_t c = 0; c < nlist; ++c)
    std::copy(&data_[perm[c] * dim_], &data_[perm[c] * dim_] + dim_,
              &centroids_[c * dim_]);

  std::vector<uint32_t> assign(ids_.size(), 0);
  for (size_t iter = 0; iter < iters; ++iter) {
    // Assignment step.
    for (size_t i = 0; i < ids_.size(); ++i) {
      float best = std::numeric_limits<float>::max();
      uint32_t arg = 0;
      for (size_t c = 0; c < nlist; ++c) {
        const float d =
            Distance(&data_[i * dim_], &centroids_[c * dim_]);
        if (d < best) {
          best = d;
          arg = static_cast<uint32_t>(c);
        }
      }
      assign[i] = arg;
    }
    // Update step.
    std::vector<float> sums(nlist * dim_, 0.0f);
    std::vector<size_t> counts(nlist, 0);
    for (size_t i = 0; i < ids_.size(); ++i) {
      const uint32_t c = assign[i];
      ++counts[c];
      for (size_t k = 0; k < dim_; ++k)
        sums[c * dim_ + k] += data_[i * dim_ + k];
    }
    for (size_t c = 0; c < nlist; ++c) {
      if (counts[c] == 0) continue;
      const float inv = 1.0f / static_cast<float>(counts[c]);
      for (size_t k = 0; k < dim_; ++k)
        centroids_[c * dim_ + k] = sums[c * dim_ + k] * inv;
    }
  }
  cells_.assign(nlist, {});
  for (size_t i = 0; i < ids_.size(); ++i) cells_[assign[i]].push_back(i);
  ivf_valid_ = true;
  return Status::OK();
}

std::vector<SearchHit> EmbeddingStore::SearchIvf(
    const std::vector<float>& query, size_t k, size_t nprobe) const {
  if (!ivf_valid_) return SearchFlat(query, k);
  if (query.size() != dim_) return {};
  const size_t nlist = cells_.size();
  nprobe = std::min(nprobe, nlist);

  // Rank cells by centroid distance.
  std::vector<std::pair<float, uint32_t>> cell_order;
  cell_order.reserve(nlist);
  for (size_t c = 0; c < nlist; ++c)
    cell_order.emplace_back(Distance(query.data(), &centroids_[c * dim_]),
                            static_cast<uint32_t>(c));
  std::partial_sort(cell_order.begin(), cell_order.begin() + nprobe,
                    cell_order.end());

  std::vector<SearchHit> hits;
  for (size_t p = 0; p < nprobe; ++p) {
    for (uint32_t row : cells_[cell_order[p].second]) {
      hits.push_back(
          {ids_[row], Distance(query.data(), &data_[row * dim_])});
    }
  }
  const size_t kk = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + kk, hits.end(),
                    [](const SearchHit& a, const SearchHit& b) {
                      return a.distance < b.distance;
                    });
  hits.resize(kk);
  return hits;
}

}  // namespace kgnet::core
