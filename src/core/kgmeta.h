// KGMeta: the RDF graph of trained-model metadata (paper Figure 7).
//
// Every trained model is described by triples in a dedicated TripleStore —
// its task type, target/label (NC) or source/destination (LP) nodes, the
// GML method, the sampler configuration, and the optimizer statistics
// (accuracy, inference time, cardinality). The SPARQL-ML optimizer reads
// this graph to pick a model for a user-defined predicate, and the KGMeta
// governor keeps it in sync as models are added and deleted.
#ifndef KGNET_CORE_KGMETA_H_
#define KGNET_CORE_KGMETA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "gml/model.h"
#include "rdf/triple_store.h"

namespace kgnet::core {

/// The kgnet: vocabulary.
inline constexpr char kKgnetNs[] = "https://www.kgnet.com/";

struct KgnetVocab {
  static std::string Name(const std::string& n) {
    return std::string(kKgnetNs) + n;
  }
  static std::string NodeClassifier() { return Name("NodeClassifier"); }
  static std::string LinkPredictor() { return Name("LinkPredictor"); }
  static std::string SimilarEntities() { return Name("SimilarEntities"); }
  static std::string TargetNode() { return Name("TargetNode"); }
  static std::string NodeLabel() { return Name("NodeLabel"); }
  static std::string SourceNode() { return Name("SourceNode"); }
  static std::string DestinationNode() { return Name("DestinationNode"); }
  static std::string TaskPredicate() { return Name("TaskPredicate"); }
  static std::string GmlMethod() { return Name("GMLMethod"); }
  static std::string Accuracy() { return Name("modelAccuracy"); }
  static std::string Mrr() { return Name("mrrScore"); }
  static std::string InferenceTime() { return Name("inferenceTimeUs"); }
  static std::string Cardinality() { return Name("modelCardinality"); }
  static std::string TrainTime() { return Name("trainTimeSeconds"); }
  static std::string MemoryUsed() { return Name("trainMemoryBytes"); }
  static std::string Sampler() { return Name("sampler"); }
  static std::string TopKLinks() { return Name("TopK-Links"); }
};

/// Flat description of one trained model (round-trips through the RDF
/// representation).
struct ModelInfo {
  std::string uri;
  gml::TaskType task = gml::TaskType::kNodeClassification;
  std::string method;
  /// NC: target type and label predicate.
  std::string target_type_iri;
  std::string label_predicate_iri;
  /// LP: source/destination types and task predicate.
  std::string source_type_iri;
  std::string destination_type_iri;
  std::string task_predicate_iri;
  /// Optimizer statistics.
  double accuracy = 0.0;       // NC accuracy or LP Hits@10
  double mrr = 0.0;
  double inference_us = 0.0;   // mean per-instance inference latency
  size_t cardinality = 0;      // number of instances the model can label
  double train_seconds = 0.0;
  size_t train_memory_bytes = 0;
  std::string sampler_label;   // "d1h1", "full", ...
};

/// Governor of the KGMeta graph.
class KgMeta {
 public:
  KgMeta() = default;

  /// Adds `info` to the graph. Fails if the URI is already registered.
  Status RegisterModel(const ModelInfo& info);

  /// Removes every triple about `uri`. Returns NotFound if absent.
  Status DeleteModel(const std::string& uri);

  /// Reconstructs a ModelInfo from the graph.
  Result<ModelInfo> Get(const std::string& uri) const;

  /// All models of `task` whose NC target/label (or LP source/destination)
  /// match the non-empty constraint fields of `pattern`.
  std::vector<ModelInfo> FindModels(const ModelInfo& pattern) const;

  /// Every registered model URI.
  std::vector<std::string> ListModelUris() const;

  size_t NumModels() const;

  /// Read access for SPARQL queries over KGMeta.
  const rdf::TripleStore& store() const { return store_; }
  rdf::TripleStore& mutable_store() { return store_; }

 private:
  rdf::TripleStore store_;
};

}  // namespace kgnet::core

#endif  // KGNET_CORE_KGMETA_H_
