#include "core/method_selector.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

namespace kgnet::core {

using gml::GmlMethod;
using gml::TaskType;

namespace {

/// Calibrated per-FLOP cost of this substrate's single-threaded kernels.
constexpr double kSecondsPerFlop = 1.2e-9;

/// Accuracy priors per method (heterogeneous-KG node classification /
/// link prediction), reflecting the ordering in the paper's Figures 13-15:
/// decoupled-scope sampling > subgraph sampling > full-batch relational >
/// homogeneous; MorsE leads the LP methods.
double AccuracyPrior(GmlMethod m) {
  switch (m) {
    case GmlMethod::kShadowSaint:
      return 0.95;
    case GmlMethod::kGraphSaint:
      return 0.90;
    case GmlMethod::kRgcn:
      return 0.80;
    case GmlMethod::kGcn:
      return 0.60;
    case GmlMethod::kGraphSage:
      return 0.70;  // homogeneous, but sampled and regularized
    case GmlMethod::kMorse:
      return 0.92;
    case GmlMethod::kComplEx:
      return 0.85;
    case GmlMethod::kRotatE:
      return 0.84;
    case GmlMethod::kTransE:
      return 0.78;
    case GmlMethod::kDistMult:
      return 0.76;
  }
  return 0.5;
}

}  // namespace

std::vector<GmlMethod> MethodSelector::ApplicableMethods(TaskType task) {
  switch (task) {
    case TaskType::kNodeClassification:
      return {GmlMethod::kGcn, GmlMethod::kGraphSage, GmlMethod::kRgcn,
              GmlMethod::kGraphSaint, GmlMethod::kShadowSaint};
    case TaskType::kLinkPrediction:
    case TaskType::kEntitySimilarity:
      return {GmlMethod::kTransE, GmlMethod::kDistMult, GmlMethod::kComplEx,
              GmlMethod::kRotatE, GmlMethod::kMorse};
  }
  return {};
}

ResourceEstimate MethodSelector::Estimate(GmlMethod method,
                                          const GraphSummary& s,
                                          const gml::TrainConfig& config) {
  ResourceEstimate est;
  est.method = method;
  est.accuracy_prior = AccuracyPrior(method);

  const double n = static_cast<double>(std::max<size_t>(s.num_nodes, 1));
  const double e = static_cast<double>(std::max<size_t>(s.num_edges, 1));
  const double r2 = 2.0 * std::max<size_t>(s.num_relations, 1);
  const double f = static_cast<double>(s.feature_dim);
  const double h = static_cast<double>(config.hidden_dim);
  const double c = static_cast<double>(std::max<size_t>(s.num_classes, 2));
  const double d = static_cast<double>(config.embed_dim);
  const double epochs = static_cast<double>(config.epochs);
  constexpr double kF = 4.0;  // sizeof(float)

  switch (method) {
    case GmlMethod::kGcn: {
      // Activations: Z0, H1, Z1 (n x f / n x h) + adjacency.
      est.memory_bytes = static_cast<size_t>(
          kF * (n * f * 2 + n * h * 2 + e * 2) + kF * (f * h + h * c));
      est.seconds =
          epochs * 2.0 * (e * (f + h) + n * (f * h + h * c)) *
          kSecondsPerFlop * 2.0;
      break;
    }
    case GmlMethod::kRgcn: {
      // Cached per-relation messages dominate: 2 layers x 2R x n x dim.
      est.memory_bytes = static_cast<size_t>(
          kF * (r2 * n * (f + h) * 0.25 + n * (f + h) * 2 + e * 2) +
          kF * r2 * (f * h + h * c));
      // Per epoch: spmm over edges per relation + per-relation GEMMs on the
      // rows each relation actually touches (~e/r2 each, min n).
      est.seconds = epochs * 2.0 *
                    (e * (f + h) + r2 * n * (f * h / 4.0 + h * c / 4.0) +
                     n * (f * h + h * c)) *
                    kSecondsPerFlop * 2.0;
      break;
    }
    case GmlMethod::kGraphSaint: {
      const double m = std::min(n, static_cast<double>(
                                       config.saint_sample_nodes));
      const double batches = std::max(1.0, n / m);
      const double me = e * (m / n) * (m / n);  // induced edge count
      est.memory_bytes = static_cast<size_t>(
          kF * (r2 * m * (f + h) * 0.25 + m * (f + h) * 2 + me * 2 +
                n * f) +
          kF * r2 * (f * h + h * c));
      est.seconds = epochs * batches * 2.0 *
                    (me * (f + h) + r2 * m * (f * h / 4.0 + h * c / 4.0) +
                     m * (f * h + h * c)) *
                    kSecondsPerFlop * 2.0;
      break;
    }
    case GmlMethod::kShadowSaint: {
      const double ego =
          static_cast<double>(config.batch_size) *
          std::pow(static_cast<double>(config.shadow_neighbor_budget),
                   static_cast<double>(config.shadow_hops)) *
          0.2;  // dedup factor
      const double m = std::min(n, ego);
      const double batches =
          std::max(1.0, n * 0.4 / static_cast<double>(config.batch_size));
      const double me = std::min(e, m * 4.0);
      est.memory_bytes = static_cast<size_t>(
          kF * (r2 * m * (f + h) * 0.25 + m * (f + h) * 2 + me * 2 +
                n * f) +
          kF * r2 * (f * h + h * c));
      est.seconds = epochs * batches * 2.0 *
                    (me * (f + h) + r2 * m * (f * h / 4.0 + h * c / 4.0) +
                     m * (f * h + h * c)) *
                    kSecondsPerFlop * 2.0;
      break;
    }
    case GmlMethod::kGraphSage: {
      // Homogeneous two-weight layers over bounded ego-nets: the cheapest
      // sampled GNN (no per-relation parameters or messages).
      const double ego =
          static_cast<double>(config.batch_size) *
          std::pow(static_cast<double>(config.shadow_neighbor_budget),
                   2.0) *
          0.2;
      const double m = std::min(n, ego);
      const double batches =
          std::max(1.0, n * 0.4 / static_cast<double>(config.batch_size));
      const double me = std::min(e, m * 4.0);
      est.memory_bytes = static_cast<size_t>(
          kF * (m * (f + h) * 3 + me * 2 + n * f) +
          kF * 2 * (f * h + h * c));
      est.seconds = epochs * batches * 2.0 *
                    (me * (f + h) + m * 2.0 * (f * h + h * c)) *
                    kSecondsPerFlop * 2.0;
      break;
    }
    case GmlMethod::kTransE:
    case GmlMethod::kDistMult:
    case GmlMethod::kComplEx:
    case GmlMethod::kRotatE: {
      est.memory_bytes =
          static_cast<size_t>(kF * (n * d + r2 / 2.0 * d + e * 2));
      const double negs = 1.0 + config.negatives_per_positive;
      est.seconds = epochs * e * negs * d * 6.0 * kSecondsPerFlop * 2.0;
      break;
    }
    case GmlMethod::kMorse: {
      // No entity table: relation types + anchors + incident lists.
      est.memory_bytes = static_cast<size_t>(
          kF * (r2 * d + 4096.0 * d + d * d) + e * 8.0);
      const double train_edges = std::max(1.0, e * 0.05);
      const double negs = 1.0 + config.negatives_per_positive;
      est.seconds = epochs * train_edges * negs *
                    (2.0 * 32.0 * d + 3.0 * d * d) * kSecondsPerFlop * 2.0;
      break;
    }
  }
  return est;
}

Result<Selection> MethodSelector::Select(TaskType task,
                                         const GraphSummary& summary,
                                         const gml::TrainConfig& config,
                                         const TaskBudget& budget) {
  std::vector<GmlMethod> methods = ApplicableMethods(task);
  if (methods.empty())
    return Status::InvalidArgument("no methods applicable to task");

  Selection sel;
  for (GmlMethod m : methods) {
    ResourceEstimate est = Estimate(m, summary, config);
    est.fits_budget =
        (budget.max_memory_bytes == 0 ||
         est.memory_bytes <= budget.max_memory_bytes) &&
        (budget.max_seconds == 0.0 || est.seconds <= budget.max_seconds);
    sel.candidates.push_back(est);
  }

  auto better = [&](const ResourceEstimate& a, const ResourceEstimate& b) {
    if (a.fits_budget != b.fits_budget) return a.fits_budget;
    switch (budget.priority) {
      case BudgetPriority::kModelScore:
        if (a.accuracy_prior != b.accuracy_prior)
          return a.accuracy_prior > b.accuracy_prior;
        return a.seconds < b.seconds;
      case BudgetPriority::kTime:
        if (a.seconds != b.seconds) return a.seconds < b.seconds;
        return a.accuracy_prior > b.accuracy_prior;
      case BudgetPriority::kMemory:
        if (a.memory_bytes != b.memory_bytes)
          return a.memory_bytes < b.memory_bytes;
        return a.accuracy_prior > b.accuracy_prior;
    }
    return false;
  };
  std::sort(sel.candidates.begin(), sel.candidates.end(), better);
  sel.estimate = sel.candidates.front();
  sel.method = sel.estimate.method;
  sel.within_budget = sel.estimate.fits_budget;
  return sel;
}

Result<ResourceEstimate> MethodSelector::Probe(GmlMethod method,
                                               const gml::GraphData& graph,
                                               const gml::TrainConfig& config,
                                               size_t probe_epochs) {
  gml::TrainConfig probe_cfg = config;
  probe_cfg.epochs = probe_epochs;
  probe_cfg.patience = 0;
  gml::TrainReport report;
  if (graph.num_classes > 0) {
    KGNET_ASSIGN_OR_RETURN(auto model, gml::MakeNodeClassifier(method));
    KGNET_RETURN_IF_ERROR(model->Train(graph, probe_cfg, &report));
  } else {
    KGNET_ASSIGN_OR_RETURN(auto model, gml::MakeLinkPredictor(method));
    KGNET_RETURN_IF_ERROR(model->Train(graph, probe_cfg, &report));
  }
  ResourceEstimate est =
      Estimate(method, GraphSummary::FromGraph(graph), config);
  // Rescale the analytic time by the measured per-epoch cost.
  if (report.epochs_run > 0) {
    est.seconds = report.train_seconds / report.epochs_run * config.epochs;
    est.memory_bytes = report.peak_memory_bytes;
  }
  return est;
}

Result<size_t> ParseMemoryBudget(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str())
    return Status::InvalidArgument("bad memory budget: " + text);
  std::string unit(end);
  for (char& ch : unit)
    ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
  double mul = 1.0;
  if (unit == "KB" || unit == "K") {
    mul = 1e3;
  } else if (unit == "MB" || unit == "M") {
    mul = 1e6;
  } else if (unit == "GB" || unit == "G") {
    mul = 1e9;
  } else if (unit == "TB" || unit == "T") {
    mul = 1e12;
  } else if (!unit.empty() && unit != "B") {
    return Status::InvalidArgument("unknown memory unit: " + unit);
  }
  return static_cast<size_t>(v * mul);
}

Result<double> ParseTimeBudget(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str())
    return Status::InvalidArgument("bad time budget: " + text);
  std::string unit(end);
  for (char& ch : unit)
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  if (unit.empty() || unit == "s" || unit == "sec" || unit == "seconds")
    return v;
  if (unit == "m" || unit == "min" || unit == "minutes") return v * 60.0;
  if (unit == "h" || unit == "hr" || unit == "hours") return v * 3600.0;
  return Status::InvalidArgument("unknown time unit: " + unit);
}

}  // namespace kgnet::core
