#include "core/kgnet.h"

#include "rdf/ntriples.h"

namespace kgnet::core {

Result<size_t> KgNet::LoadNTriples(std::string_view document) {
  return rdf::LoadNTriples(document, &store_);
}

Result<sparql::QueryResult> KgNet::Execute(std::string_view text,
                                           ExecutionStats* stats) {
  return service_->Execute(text, stats);
}

}  // namespace kgnet::core
