// GML training manager: the end-to-end automated pipeline of Figure 6.
//
// One TrainTask() call performs: meta-sampling (task-specific subgraph
// extraction), data transformation (GraphData encoding, splits, Xavier
// features), budget-aware method selection, training with the time budget
// enforced, metadata collection into KGMeta, and artifact registration in
// the ModelStore (including entity embeddings for LP models).
#ifndef KGNET_CORE_TRAINING_MANAGER_H_
#define KGNET_CORE_TRAINING_MANAGER_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "core/kgmeta.h"
#include "core/meta_sampler.h"
#include "core/method_selector.h"
#include "core/model_store.h"
#include "gml/model.h"

namespace kgnet::core {

/// Everything needed to train one task.
struct TrainTaskSpec {
  gml::TaskType task = gml::TaskType::kNodeClassification;
  /// NC: type whose instances are classified; also the meta-sampling seed
  /// type. LP: the source node type.
  std::string target_type_iri;
  /// NC: the label predicate (e.g. dblp:publishedIn).
  std::string label_predicate_iri;
  /// LP: destination type and task predicate.
  std::string destination_type_iri;
  std::string task_predicate_iri;
  /// Optional user-forced method (experienced-user path of Figure 8).
  std::optional<gml::GmlMethod> forced_method;
  /// Meta-sampling scope. Defaults follow the paper: d1h1 for NC, d2h1 for
  /// LP. use_meta_sampling=false trains on the full KG (the baseline
  /// pipeline in Figures 13-15).
  bool use_meta_sampling = true;
  std::optional<SampleDirection> direction;
  uint32_t hops = 1;
  /// Hyperparameters; config.max_seconds is overridden by budget.
  gml::TrainConfig config;
  TaskBudget budget;
  /// Optional human-readable model name used in the URI.
  std::string model_name;
};

/// What TrainTask() produced.
struct TrainOutcome {
  std::string model_uri;
  ModelInfo info;
  gml::TrainReport report;
  Selection selection;
  MetaSampleStats sample_stats;
  /// Sampler label used ("d1h1" / "full").
  std::string sampler_label;
};

/// Drives the automated training pipeline against one data KG.
class GmlTrainingManager {
 public:
  GmlTrainingManager(const rdf::TripleStore* kg, KgMeta* kgmeta,
                     ModelStore* models)
      : kg_(kg), kgmeta_(kgmeta), models_(models) {}

  /// Runs the full pipeline; registers the model and returns its outcome.
  Result<TrainOutcome> TrainTask(const TrainTaskSpec& spec);

 private:
  const rdf::TripleStore* kg_;
  KgMeta* kgmeta_;
  ModelStore* models_;
  size_t next_model_id_ = 1;
};

}  // namespace kgnet::core

#endif  // KGNET_CORE_TRAINING_MANAGER_H_
