// Meta-sampling: extraction of a task-specific subgraph KG' (Section IV-B2).
//
// The sampler starts from the task's target nodes (e.g. all instances of
// dblp:Publication) and collects every triple reachable within `hops` hops,
// following outgoing edges only (direction = kOutgoing, the paper's d=1) or
// both directions (kBidirectional, d=2). Type triples of every included
// node and the supervision edges (label / task predicate) of target nodes
// are always preserved, since the downstream transformer needs them.
//
// The paper reports d1h1 as the best configuration for node classification
// and d2h1 for link prediction; bench_metasampling sweeps the grid.
#ifndef KGNET_CORE_META_SAMPLER_H_
#define KGNET_CORE_META_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"

namespace kgnet::core {

/// Edge-following direction during expansion.
enum class SampleDirection {
  kOutgoing = 1,       // paper's d = 1
  kBidirectional = 2,  // paper's d = 2
};

/// Scope parameters of one meta-sampling run.
struct MetaSampleSpec {
  /// IRI of the target node type (instances seed the expansion).
  std::string target_type_iri;
  /// Supervision predicates always kept for target nodes (label predicate
  /// for NC, task predicate for LP).
  std::vector<std::string> supervision_predicate_iris;
  SampleDirection direction = SampleDirection::kOutgoing;
  uint32_t hops = 1;
};

/// Summary of an extraction.
struct MetaSampleStats {
  size_t seed_nodes = 0;
  size_t visited_nodes = 0;
  size_t extracted_triples = 0;
  size_t original_triples = 0;
  double reduction_ratio() const {
    return original_triples == 0
               ? 0.0
               : 1.0 - static_cast<double>(extracted_triples) /
                           static_cast<double>(original_triples);
  }
};

/// Extracts task-specific subgraphs from a knowledge graph.
class MetaSampler {
 public:
  explicit MetaSampler(const rdf::TripleStore* store) : store_(store) {}

  /// Runs the extraction; returns the subgraph as a new TripleStore
  /// (dictionary-encoded independently).
  Result<std::unique_ptr<rdf::TripleStore>> Extract(
      const MetaSampleSpec& spec, MetaSampleStats* stats = nullptr) const;

  /// The SPARQL CONSTRUCT-style query text that describes this extraction
  /// (the paper calls meta-sampling "a search query against a KG"). Purely
  /// informational: Extract() evaluates the same semantics directly on the
  /// index for speed.
  static std::string DescribeAsSparql(const MetaSampleSpec& spec);

 private:
  const rdf::TripleStore* store_;
};

/// Short name like "d1h1" / "d2h2" for reports.
std::string SampleSpecLabel(const MetaSampleSpec& spec);

}  // namespace kgnet::core

#endif  // KGNET_CORE_META_SAMPLER_H_
