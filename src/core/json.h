// A minimal JSON value type and recursive-descent parser, used for the
// TrainGML(...) payload in SPARQL-ML INSERT queries (paper Figure 8).
//
// Extensions over strict JSON, matching the paper's examples: object keys
// may be unquoted identifiers (including '-' and ':'), and string values
// may be single-quoted.
#ifndef KGNET_CORE_JSON_H_
#define KGNET_CORE_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace kgnet::core {

/// A JSON value (null / bool / number / string / array / object).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), str_(std::move(s)) {}

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return num_; }
  const std::string& AsString() const { return str_; }
  const std::vector<JsonValue>& AsArray() const { return arr_; }
  const std::map<std::string, JsonValue>& AsObject() const { return obj_; }

  /// Object field access; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
  }

  /// Case-insensitive, separator-insensitive field lookup: "GML-Task",
  /// "gmltask" and "GML_Task" all match. Useful because the paper's
  /// examples are inconsistent about key spelling.
  const JsonValue* FindRelaxed(const std::string& key) const;

  /// String field with fallback.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const {
    const JsonValue* v = FindRelaxed(key);
    return v != nullptr && v->is_string() ? v->AsString() : fallback;
  }
  /// Numeric field with fallback.
  double GetNumber(const std::string& key, double fallback) const {
    const JsonValue* v = FindRelaxed(key);
    return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
  }

  void Push(JsonValue v) { arr_.push_back(std::move(v)); }
  void Set(std::string key, JsonValue v) {
    obj_[std::move(key)] = std::move(v);
  }

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Parses `text` into a JsonValue.
Result<JsonValue> ParseJson(std::string_view text);

/// Serializes `value` as strict, deterministic JSON: object keys are
/// emitted in std::map order with double quotes, strings are escaped
/// (\" \\ \n \t \r, \u00XX for other control bytes), and numbers print
/// as decimal integers when integral (else %.17g, enough digits to
/// round-trip a double). The serving protocol relies on this
/// determinism: the same JsonValue always produces the same bytes, so
/// responses can be compared byte-for-byte in differential tests.
std::string DumpJson(const JsonValue& value);

}  // namespace kgnet::core

#endif  // KGNET_CORE_JSON_H_
