#include "core/meta_sampler.h"

#include <sstream>
#include <unordered_set>

namespace kgnet::core {

using rdf::kNullTermId;
using rdf::TermId;
using rdf::Triple;
using rdf::TriplePattern;
using rdf::TripleStore;

Result<std::unique_ptr<TripleStore>> MetaSampler::Extract(
    const MetaSampleSpec& spec, MetaSampleStats* stats) const {
  const rdf::Dictionary& dict = store_->dict();
  TermId type_pred = dict.FindIri(rdf::kRdfType);
  TermId target_type = dict.FindIri(spec.target_type_iri);
  if (target_type == kNullTermId)
    return Status::NotFound("target type not found in KG: " +
                            spec.target_type_iri);

  std::vector<TermId> supervision;
  for (const std::string& iri : spec.supervision_predicate_iris) {
    TermId p = dict.FindIri(iri);
    if (p == kNullTermId)
      return Status::NotFound("supervision predicate not found in KG: " + iri);
    supervision.push_back(p);
  }

  // Seeds: instances of the target type.
  std::vector<TermId> frontier;
  std::unordered_set<TermId> visited;
  store_->Scan(TriplePattern(kNullTermId, type_pred, target_type),
               [&](const Triple& t) {
                 if (visited.insert(t.s).second) frontier.push_back(t.s);
                 return true;
               });
  if (frontier.empty())
    return Status::InvalidArgument("no instances of target type " +
                                   spec.target_type_iri);
  const size_t seed_count = frontier.size();

  auto out = std::make_unique<TripleStore>();
  std::unordered_set<TermId> included_nodes(visited);
  size_t extracted = 0;

  auto emit = [&](const Triple& t) {
    if (out->Insert(dict.Lookup(t.s), dict.Lookup(t.p), dict.Lookup(t.o)))
      ++extracted;
  };

  // Supervision edges of seeds are always kept.
  for (TermId seed : frontier) {
    for (TermId p : supervision) {
      store_->Scan(TriplePattern(seed, p, kNullTermId),
                   [&](const Triple& t) {
                     emit(t);
                     included_nodes.insert(t.o);
                     return true;
                   });
    }
  }

  // h-hop expansion.
  for (uint32_t hop = 0; hop < spec.hops; ++hop) {
    std::vector<TermId> next;
    for (TermId v : frontier) {
      // Outgoing edges (v, p, o).
      store_->Scan(TriplePattern(v, kNullTermId, kNullTermId),
                   [&](const Triple& t) {
                     emit(t);
                     const rdf::Term& obj = dict.Lookup(t.o);
                     if (!obj.is_literal()) {
                       included_nodes.insert(t.o);
                       if (visited.insert(t.o).second) next.push_back(t.o);
                     }
                     return true;
                   });
      if (spec.direction == SampleDirection::kBidirectional) {
        // Incoming edges (s, p, v).
        store_->Scan(TriplePattern(kNullTermId, kNullTermId, v),
                     [&](const Triple& t) {
                       emit(t);
                       included_nodes.insert(t.s);
                       if (visited.insert(t.s).second) next.push_back(t.s);
                       return true;
                     });
      }
    }
    frontier = std::move(next);
  }

  // Type triples of every included node (schema signal for the
  // transformer).
  for (TermId v : included_nodes) {
    store_->Scan(TriplePattern(v, type_pred, kNullTermId),
                 [&](const Triple& t) {
                   emit(t);
                   return true;
                 });
  }

  if (stats != nullptr) {
    stats->seed_nodes = seed_count;
    stats->visited_nodes = visited.size();
    stats->extracted_triples = out->size();
    stats->original_triples = store_->size();
  }
  return out;
}

std::string MetaSampler::DescribeAsSparql(const MetaSampleSpec& spec) {
  std::ostringstream os;
  os << "CONSTRUCT { ?s ?p ?o }\nWHERE {\n";
  os << "  ?seed a <" << spec.target_type_iri << "> .\n";
  if (spec.hops == 1) {
    if (spec.direction == SampleDirection::kOutgoing) {
      os << "  ?seed ?p ?o .  BIND(?seed AS ?s)\n";
    } else {
      os << "  { ?seed ?p ?o . BIND(?seed AS ?s) }\n"
         << "  UNION { ?s ?p ?seed . BIND(?seed AS ?o) }\n";
    }
  } else {
    os << "  # " << spec.hops << "-hop expansion, direction="
       << (spec.direction == SampleDirection::kOutgoing ? "outgoing"
                                                        : "bidirectional")
       << "\n  ?seed (!<>){1," << spec.hops << "} ?s .  ?s ?p ?o .\n";
  }
  for (const std::string& sup : spec.supervision_predicate_iris)
    os << "  # supervision kept: <" << sup << ">\n";
  os << "}";
  return os.str();
}

std::string SampleSpecLabel(const MetaSampleSpec& spec) {
  return "d" +
         std::to_string(spec.direction == SampleDirection::kOutgoing ? 1
                                                                     : 2) +
         "h" + std::to_string(spec.hops);
}

}  // namespace kgnet::core
