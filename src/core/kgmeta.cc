#include "core/kgmeta.h"

#include <cstdlib>

namespace kgnet::core {

using rdf::kNullTermId;
using rdf::Term;
using rdf::TermId;
using rdf::Triple;
using rdf::TriplePattern;

Status KgMeta::RegisterModel(const ModelInfo& info) {
  if (info.uri.empty())
    return Status::InvalidArgument("model URI must not be empty");
  {
    TermId uri = store_.dict().FindIri(info.uri);
    if (uri != kNullTermId &&
        store_.Count(TriplePattern(uri, kNullTermId, kNullTermId)) > 0)
      return Status::AlreadyExists("model already registered: " + info.uri);
  }
  const Term subject = Term::Iri(info.uri);
  auto add_iri = [&](const std::string& pred, const std::string& value) {
    if (!value.empty())
      store_.Insert(subject, Term::Iri(pred), Term::Iri(value));
  };
  auto add_num = [&](const std::string& pred, double value) {
    store_.Insert(subject, Term::Iri(pred), Term::DoubleLiteral(value));
  };

  add_iri(std::string(rdf::kRdfType),
          info.task == gml::TaskType::kNodeClassification
              ? KgnetVocab::NodeClassifier()
          : info.task == gml::TaskType::kEntitySimilarity
              ? KgnetVocab::SimilarEntities()
              : KgnetVocab::LinkPredictor());
  if (info.task == gml::TaskType::kNodeClassification) {
    add_iri(KgnetVocab::TargetNode(), info.target_type_iri);
    add_iri(KgnetVocab::NodeLabel(), info.label_predicate_iri);
  } else {
    add_iri(KgnetVocab::SourceNode(), info.source_type_iri);
    add_iri(KgnetVocab::DestinationNode(), info.destination_type_iri);
    add_iri(KgnetVocab::TaskPredicate(), info.task_predicate_iri);
  }
  if (!info.method.empty())
    store_.Insert(subject, Term::Iri(KgnetVocab::GmlMethod()),
                  Term::Literal(info.method));
  if (!info.sampler_label.empty())
    store_.Insert(subject, Term::Iri(KgnetVocab::Sampler()),
                  Term::Literal(info.sampler_label));
  add_num(KgnetVocab::Accuracy(), info.accuracy);
  add_num(KgnetVocab::Mrr(), info.mrr);
  add_num(KgnetVocab::InferenceTime(), info.inference_us);
  add_num(KgnetVocab::Cardinality(), static_cast<double>(info.cardinality));
  add_num(KgnetVocab::TrainTime(), info.train_seconds);
  add_num(KgnetVocab::MemoryUsed(),
          static_cast<double>(info.train_memory_bytes));
  return Status::OK();
}

Status KgMeta::DeleteModel(const std::string& uri) {
  TermId id = store_.dict().FindIri(uri);
  if (id == kNullTermId)
    return Status::NotFound("model not registered: " + uri);
  size_t removed =
      store_.EraseMatching(TriplePattern(id, kNullTermId, kNullTermId));
  if (removed == 0) return Status::NotFound("model not registered: " + uri);
  return Status::OK();
}

Result<ModelInfo> KgMeta::Get(const std::string& uri) const {
  TermId id = store_.dict().FindIri(uri);
  if (id == kNullTermId)
    return Status::NotFound("model not registered: " + uri);
  ModelInfo info;
  info.uri = uri;
  bool found = false;
  const rdf::Dictionary& dict = store_.dict();
  store_.Scan(TriplePattern(id, kNullTermId, kNullTermId),
              [&](const Triple& t) {
                found = true;
                const std::string& pred = dict.Lookup(t.p).lexical;
                const Term& obj = dict.Lookup(t.o);
                double num = 0.0;
                obj.AsDouble(&num);
                if (pred == rdf::kRdfType) {
                  info.task = obj.lexical == KgnetVocab::NodeClassifier()
                                  ? gml::TaskType::kNodeClassification
                              : obj.lexical == KgnetVocab::SimilarEntities()
                                  ? gml::TaskType::kEntitySimilarity
                                  : gml::TaskType::kLinkPrediction;
                } else if (pred == KgnetVocab::TargetNode()) {
                  info.target_type_iri = obj.lexical;
                } else if (pred == KgnetVocab::NodeLabel()) {
                  info.label_predicate_iri = obj.lexical;
                } else if (pred == KgnetVocab::SourceNode()) {
                  info.source_type_iri = obj.lexical;
                } else if (pred == KgnetVocab::DestinationNode()) {
                  info.destination_type_iri = obj.lexical;
                } else if (pred == KgnetVocab::TaskPredicate()) {
                  info.task_predicate_iri = obj.lexical;
                } else if (pred == KgnetVocab::GmlMethod()) {
                  info.method = obj.lexical;
                } else if (pred == KgnetVocab::Sampler()) {
                  info.sampler_label = obj.lexical;
                } else if (pred == KgnetVocab::Accuracy()) {
                  info.accuracy = num;
                } else if (pred == KgnetVocab::Mrr()) {
                  info.mrr = num;
                } else if (pred == KgnetVocab::InferenceTime()) {
                  info.inference_us = num;
                } else if (pred == KgnetVocab::Cardinality()) {
                  info.cardinality = static_cast<size_t>(num);
                } else if (pred == KgnetVocab::TrainTime()) {
                  info.train_seconds = num;
                } else if (pred == KgnetVocab::MemoryUsed()) {
                  info.train_memory_bytes = static_cast<size_t>(num);
                }
                return true;
              });
  if (!found) return Status::NotFound("model not registered: " + uri);
  return info;
}

std::vector<std::string> KgMeta::ListModelUris() const {
  std::vector<std::string> uris;
  const rdf::Dictionary& dict = store_.dict();
  TermId type_pred = dict.FindIri(rdf::kRdfType);
  if (type_pred == kNullTermId) return uris;
  store_.Scan(TriplePattern(kNullTermId, type_pred, kNullTermId),
              [&](const Triple& t) {
                const std::string& cls = dict.Lookup(t.o).lexical;
                if (cls == KgnetVocab::NodeClassifier() ||
                    cls == KgnetVocab::LinkPredictor() ||
                    cls == KgnetVocab::SimilarEntities())
                  uris.push_back(dict.Lookup(t.s).lexical);
                return true;
              });
  return uris;
}

size_t KgMeta::NumModels() const { return ListModelUris().size(); }

std::vector<ModelInfo> KgMeta::FindModels(const ModelInfo& pattern) const {
  std::vector<ModelInfo> out;
  for (const std::string& uri : ListModelUris()) {
    auto info = Get(uri);
    if (!info.ok()) continue;
    if (info->task != pattern.task) continue;
    auto match = [](const std::string& want, const std::string& have) {
      return want.empty() || want == have;
    };
    if (pattern.task == gml::TaskType::kNodeClassification) {
      if (!match(pattern.target_type_iri, info->target_type_iri)) continue;
      if (!match(pattern.label_predicate_iri, info->label_predicate_iri))
        continue;
    } else {
      if (!match(pattern.source_type_iri, info->source_type_iri)) continue;
      if (!match(pattern.destination_type_iri, info->destination_type_iri))
        continue;
      if (!match(pattern.task_predicate_iri, info->task_predicate_iri))
        continue;
    }
    out.push_back(std::move(*info));
  }
  return out;
}

}  // namespace kgnet::core
