// SPARQL-ML as a Service (paper Section IV-B): the query manager that
// parses, optimizes, rewrites and executes GML-enabled SPARQL queries.
//
// A SPARQL-ML SELECT is ordinary SPARQL whose pattern contains a variable
// in *predicate position* — a user-defined predicate — typed by kgnet:
// metadata triples:
//
//     ?paper ?NodeClassifier ?venue .
//     ?NodeClassifier a kgnet:NodeClassifier .
//     ?NodeClassifier kgnet:TargetNode dblp:Publication .
//     ?NodeClassifier kgnet:NodeLabel dblp:venue .
//
// Execution:
//  1. Analyze: find user-defined predicates and their constraint triples.
//  2. Optimize: select the near-optimal model from KGMeta (the paper's
//     integer program; solved exactly by enumeration over the candidate
//     set) and pick an execution plan — per-instance UDF calls (Figure 11)
//     or a single dictionary-building call (Figure 12) — by comparing the
//     estimated number of HTTP calls with the dictionary size.
//  3. Rewrite into plain SPARQL with sql:UDFS.* calls.
//  4. Execute on the RDF engine; UDFs hit the GML inference manager.
//
// INSERT queries containing kgnet.TrainGML({...}) trigger the automated
// training pipeline; DELETE queries over kgnet: metadata drop models.
#ifndef KGNET_CORE_SPARQLML_H_
#define KGNET_CORE_SPARQLML_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "core/inference_manager.h"
#include "core/kgmeta.h"
#include "core/model_store.h"
#include "core/training_manager.h"
#include "sparql/engine.h"

namespace kgnet::core {

/// Which rewritten query template the optimizer chose.
enum class RewritePlan {
  kPerInstance,  // Figure 11: one UDF call per bound instance
  kDictionary,   // Figure 12: one UDF call building a lookup dictionary
};

/// One user-defined predicate occurrence inside a query.
struct UserDefinedPredicate {
  std::string var;          // variable appearing in predicate position
  gml::TaskType task = gml::TaskType::kNodeClassification;
  size_t usage_triple = 0;  // index of "?s ?udp ?o" in where.triples
  std::string subject_var;
  std::string object_var;
  /// Constraints harvested from kgnet: triples.
  ModelInfo constraints;
  size_t topk = 1;  // kgnet:TopK-Links for link predictors
  /// Indexes of all metadata triples to strip during rewriting.
  std::vector<size_t> meta_triples;
};

/// The analysis of a SPARQL-ML query.
struct SparqlMlAnalysis {
  sparql::Query query;
  std::vector<UserDefinedPredicate> udps;
  bool is_sparql_ml() const { return !udps.empty(); }
};

/// Statistics of one executed SPARQL-ML query (for benchmarks).
struct ExecutionStats {
  RewritePlan plan = RewritePlan::kPerInstance;
  uint64_t http_calls = 0;
  size_t dictionary_entries = 0;
  std::string chosen_model_uri;
  double optimizer_seconds = 0.0;
  double execution_seconds = 0.0;
};

/// The SPARQL-ML query service bound to one data KG.
class SparqlMlService {
 public:
  /// `kg` must outlive the service. The service owns the SPARQL engine,
  /// KGMeta, model store, inference and training managers.
  explicit SparqlMlService(rdf::TripleStore* kg);

  /// Parses and executes any SPARQL or SPARQL-ML query. `cancel`, when
  /// valid, makes the run cooperatively cancellable: the engine polls it
  /// per pulled row, trainers poll it at epoch boundaries, and a tripped
  /// token unwinds with Cancelled/DeadlineExceeded — a cancelled TrainGML
  /// registers nothing, and a cancelled update aborts during its WHERE
  /// scan, before any triple is applied. This is how KgServer::Drain()
  /// bounds the serialized service path (docs/RESILIENCE.md).
  Result<sparql::QueryResult> Execute(std::string_view text,
                                      ExecutionStats* stats = nullptr,
                                      common::CancelToken cancel = {});

  /// Forces a specific plan (benchmarks); kAuto = optimizer decides.
  Result<sparql::QueryResult> ExecuteWithPlan(std::string_view text,
                                              RewritePlan plan,
                                              ExecutionStats* stats);

  // --- individual pipeline stages, exposed for tests and benches ---

  /// Finds user-defined predicates in a parsed query.
  Result<SparqlMlAnalysis> Analyze(const sparql::Query& query) const;

  /// The optimizer's model selection for one user-defined predicate:
  /// maximizes accuracy, breaking ties by lower inference time (the
  /// paper's integer program over KGMeta statistics).
  Result<ModelInfo> SelectModel(const UserDefinedPredicate& udp) const;

  /// Chooses the plan by cost: per-instance costs |instances| calls;
  /// dictionary costs 1 call plus a dictionary of `model.cardinality`
  /// entries.
  RewritePlan ChoosePlan(const SparqlMlAnalysis& analysis,
                         const UserDefinedPredicate& udp,
                         const ModelInfo& model) const;

  /// Rewrites the SPARQL-ML query into plain SPARQL for (udp, model, plan).
  Result<sparql::Query> Rewrite(const SparqlMlAnalysis& analysis,
                                const UserDefinedPredicate& udp,
                                const ModelInfo& model,
                                RewritePlan plan) const;

  // --- service components ---
  GmlTrainingManager& training_manager() { return *training_; }
  InferenceManager& inference_manager() { return *inference_; }
  KgMeta& kgmeta() { return kgmeta_; }
  ModelStore& model_store() { return models_; }
  sparql::QueryEngine& engine() { return *engine_; }

  /// Parses a TrainGML JSON payload into a TrainTaskSpec (public for
  /// tests). `prefixes` resolves prefixed names inside the payload.
  Result<TrainTaskSpec> ParseTrainSpec(
      const std::string& json_text,
      const std::map<std::string, std::string>& prefixes) const;

  /// What Explain() reports about a SPARQL-ML query without executing it.
  struct ExplainResult {
    bool is_sparql_ml = false;
    /// Model chosen for each user-defined predicate, in rewrite order.
    std::vector<std::string> model_uris;
    RewritePlan plan = RewritePlan::kPerInstance;
    /// The final plain-SPARQL text (Figures 11/12), serialized.
    std::string rewritten_sparql;
  };

  /// Runs analysis, model selection, plan choice and rewriting — but not
  /// execution — and reports the outcome. The GML analogue of EXPLAIN.
  Result<ExplainResult> Explain(std::string_view text) const;

 private:
  Result<sparql::QueryResult> ExecuteTrainGml(std::string_view text,
                                              common::CancelToken cancel);
  Result<sparql::QueryResult> ExecuteDelete(const sparql::Query& query);
  Result<sparql::QueryResult> ExecuteSelectMl(const SparqlMlAnalysis& analysis,
                                              RewritePlan forced_plan,
                                              bool use_forced,
                                              ExecutionStats* stats,
                                              common::CancelToken cancel);
  void RegisterUdfs();

  rdf::TripleStore* kg_;
  std::unique_ptr<sparql::QueryEngine> engine_;
  KgMeta kgmeta_;
  ModelStore models_;
  std::unique_ptr<InferenceManager> inference_;
  std::unique_ptr<GmlTrainingManager> training_;
  /// Handles for dictionary-plan lookup tables.
  mutable std::map<std::string, std::map<std::string, std::string>> dicts_;
  mutable size_t next_dict_id_ = 1;
};

}  // namespace kgnet::core

#endif  // KGNET_CORE_SPARQLML_H_
