#include "core/training_manager.h"

#include <utility>

namespace kgnet::core {

using gml::GmlMethod;
using gml::TaskType;

Result<TrainOutcome> GmlTrainingManager::TrainTask(const TrainTaskSpec& spec) {
  if (spec.target_type_iri.empty())
    return Status::InvalidArgument("target_type_iri is required");
  if (spec.task == TaskType::kNodeClassification &&
      spec.label_predicate_iri.empty())
    return Status::InvalidArgument(
        "label_predicate_iri is required for node classification");
  if (spec.task != TaskType::kNodeClassification &&
      spec.task_predicate_iri.empty())
    return Status::InvalidArgument(
        "task_predicate_iri is required for link prediction");

  TrainOutcome outcome;

  // ---- 1. Meta-sampling: extract the task-specific subgraph KG'. ----
  const rdf::TripleStore* train_store = kg_;
  std::shared_ptr<rdf::TripleStore> subgraph;
  if (spec.use_meta_sampling) {
    MetaSampleSpec ms;
    ms.target_type_iri = spec.target_type_iri;
    if (spec.task == TaskType::kNodeClassification) {
      ms.supervision_predicate_iris = {spec.label_predicate_iri};
      ms.direction = spec.direction.value_or(SampleDirection::kOutgoing);
    } else {
      ms.supervision_predicate_iris = {spec.task_predicate_iri};
      ms.direction = spec.direction.value_or(SampleDirection::kBidirectional);
    }
    ms.hops = spec.hops;
    MetaSampler sampler(kg_);
    KGNET_ASSIGN_OR_RETURN(auto extracted,
                           sampler.Extract(ms, &outcome.sample_stats));
    subgraph = std::shared_ptr<rdf::TripleStore>(std::move(extracted));
    train_store = subgraph.get();
    outcome.sampler_label = SampleSpecLabel(ms);
  } else {
    outcome.sampler_label = "full";
  }

  // ---- 2. Data transformation (Figure 6 "Dataset Transformer"). ----
  gml::TransformOptions topts;
  topts.target_type_iri = spec.target_type_iri;
  if (spec.task == TaskType::kNodeClassification) {
    topts.label_predicate_iri = spec.label_predicate_iri;
  } else {
    topts.task_predicate_iri = spec.task_predicate_iri;
    topts.destination_type_iri = spec.destination_type_iri;
  }
  topts.feature_dim = spec.config.embed_dim;
  topts.seed = spec.config.seed;
  KGNET_ASSIGN_OR_RETURN(gml::GraphData graph,
                         gml::BuildGraphData(*train_store, topts));
  auto graph_ptr = std::make_shared<gml::GraphData>(std::move(graph));

  // ---- 3. Budget-aware method selection. ----
  gml::TrainConfig config = spec.config;
  if (spec.budget.max_seconds > 0) config.max_seconds = spec.budget.max_seconds;
  GraphSummary summary = GraphSummary::FromGraph(*graph_ptr);
  KGNET_ASSIGN_OR_RETURN(
      Selection selection,
      MethodSelector::Select(spec.task, summary, config, spec.budget));
  if (spec.forced_method.has_value()) {
    selection.method = *spec.forced_method;
    selection.estimate =
        MethodSelector::Estimate(selection.method, summary, config);
    selection.within_budget = true;
  }
  outcome.selection = selection;

  // ---- 4. Training. ----
  auto model = std::make_shared<TrainedModel>();
  model->graph = graph_ptr;
  model->subgraph = subgraph;
  model->source_store = kg_;
  if (spec.task == TaskType::kNodeClassification) {
    KGNET_ASSIGN_OR_RETURN(auto classifier,
                           gml::MakeNodeClassifier(selection.method));
    KGNET_RETURN_IF_ERROR(
        classifier->Train(*graph_ptr, config, &outcome.report));
    model->classifier = std::shared_ptr<gml::NodeClassifier>(
        std::move(classifier));
  } else {
    KGNET_ASSIGN_OR_RETURN(auto predictor,
                           gml::MakeLinkPredictor(selection.method));
    KGNET_RETURN_IF_ERROR(
        predictor->Train(*graph_ptr, config, &outcome.report));
    model->predictor =
        std::shared_ptr<gml::LinkPredictor>(std::move(predictor));
    // Populate the embedding store for similarity search; the dimension
    // comes from the first embedding (complex models may round it up).
    std::shared_ptr<EmbeddingStore> store;
    for (uint32_t v = 0; v < graph_ptr->num_nodes; ++v) {
      std::vector<float> emb = model->predictor->EntityEmbedding(v);
      if (emb.empty()) continue;
      if (store == nullptr)
        store = std::make_shared<EmbeddingStore>(emb.size());
      (void)store->Add(v, emb);
    }
    if (store != nullptr && store->size() > 0) model->embeddings = store;
  }

  // ---- 5. Metadata collection into KGMeta. ----
  std::string name = spec.model_name.empty()
                         ? std::string(gml::TaskTypeName(spec.task))
                         : spec.model_name;
  outcome.model_uri = KgnetVocab::Name("model/" + name + "-" +
                                       std::to_string(next_model_id_++));
  ModelInfo& info = outcome.info;
  info.uri = outcome.model_uri;
  info.task = spec.task;
  info.method = outcome.report.method;
  info.sampler_label = outcome.sampler_label;
  info.accuracy = outcome.report.metric;
  info.mrr = outcome.report.mrr;
  info.inference_us = outcome.report.inference_us;
  info.train_seconds = outcome.report.train_seconds;
  info.train_memory_bytes = outcome.report.peak_memory_bytes;
  if (spec.task == TaskType::kNodeClassification) {
    info.target_type_iri = spec.target_type_iri;
    info.label_predicate_iri = spec.label_predicate_iri;
    info.cardinality = graph_ptr->target_nodes.size();
  } else {
    info.source_type_iri = spec.target_type_iri;
    info.destination_type_iri = spec.destination_type_iri;
    info.task_predicate_iri = spec.task_predicate_iri;
    info.cardinality = graph_ptr->train_edges.size() +
                       graph_ptr->valid_edges.size() +
                       graph_ptr->test_edges.size();
  }
  model->info = info;
  KGNET_RETURN_IF_ERROR(kgmeta_->RegisterModel(info));
  models_->Put(std::move(model));
  return outcome;
}

}  // namespace kgnet::core
