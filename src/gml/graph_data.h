// GraphData: the dense-graph view of a KG that GML methods train on.
//
// This is the output of the paper's "Data Transformer" step (Figure 6): the
// RDF triples are dictionary-encoded into node/relation index spaces, literal
// triples and target-label edges are removed, features are initialized with
// Xavier weights, and train/valid/test splits are generated.
#ifndef KGNET_GML_GRAPH_DATA_H_
#define KGNET_GML_GRAPH_DATA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"
#include "tensor/csr_matrix.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace kgnet::gml {

/// One directed, typed edge in the encoded graph.
struct Edge {
  uint32_t src;
  uint32_t rel;
  uint32_t dst;
};

/// Strategies for generating splits.
enum class SplitStrategy {
  kRandom,     // uniform shuffle
  kCommunity,  // connected components assigned greedily to folds
};

/// The encoded graph plus task supervision.
struct GraphData {
  // --- structure ---
  size_t num_nodes = 0;
  size_t num_relations = 0;
  std::vector<Edge> edges;

  // --- node classification supervision ---
  /// Node ids that carry labels (instances of the target type).
  std::vector<uint32_t> target_nodes;
  /// labels[node] in [0, num_classes) or -1.
  std::vector<int> labels;
  size_t num_classes = 0;
  /// Indices into `target_nodes` per fold.
  std::vector<uint32_t> train_idx, valid_idx, test_idx;

  // --- link prediction supervision ---
  /// The relation id of the task predicate (e.g. affiliation), or
  /// UINT32_MAX when the task is not link prediction.
  uint32_t task_relation = UINT32_MAX;
  /// Task edges per fold (these are removed from `edges`).
  std::vector<Edge> train_edges, valid_edges, test_edges;
  /// Candidate tail nodes for LP ranking: instances of the destination
  /// type when one was given, else empty (= rank against all nodes).
  /// Using a fixed candidate type makes full-KG and KG' evaluations
  /// comparable: both rank the true tail against the same kind of entity.
  std::vector<uint32_t> destination_candidates;

  // --- features ---
  size_t feature_dim = 0;
  tensor::Matrix features;  // num_nodes x feature_dim

  // --- provenance ---
  std::vector<rdf::TermId> node_terms;      // node id -> dictionary term
  std::vector<rdf::TermId> relation_terms;  // rel id -> dictionary term
  std::vector<rdf::TermId> class_terms;     // class label -> dictionary term

  /// Builds the homogeneous symmetric-normalized adjacency (with self
  /// loops) used by GCN: Â = D^-1/2 (A + Aᵀ + I) D^-1/2.
  tensor::CsrMatrix BuildGcnAdjacency() const;

  /// Builds one row-normalized adjacency per relation (plus one per inverse
  /// relation), used by RGCN. adj[r] aggregates messages dst <- src over
  /// relation r; adj[num_relations + r] is the inverse direction.
  std::vector<tensor::CsrMatrix> BuildRelationalAdjacencies() const;

  /// Node id lookup from a dictionary term; returns false if absent.
  bool FindNode(rdf::TermId term, uint32_t* node) const;

  /// Total bytes of the encoded structure (edges + features), the base
  /// footprint a training pipeline must hold in memory.
  size_t StructureBytes() const;

 private:
  mutable std::unordered_map<rdf::TermId, uint32_t> node_index_;
};

/// Options controlling the transformation from triples to GraphData.
struct TransformOptions {
  /// IRI of the target node class (rdf:type object), e.g. dblp:Publication.
  std::string target_type_iri;
  /// IRI of the label predicate for node classification (removed from the
  /// message-passing graph), e.g. dblp:publishedIn. Empty for LP tasks.
  std::string label_predicate_iri;
  /// IRI of the task predicate for link prediction (its edges become
  /// supervision, removed from message passing). Empty for NC tasks.
  std::string task_predicate_iri;
  /// IRI of the LP destination type; instances become the ranking
  /// candidates (optional).
  std::string destination_type_iri;
  /// Dimensionality of Xavier-initialized node features.
  size_t feature_dim = 32;
  /// Split fractions (remainder is test).
  double train_fraction = 0.6;
  double valid_fraction = 0.2;
  SplitStrategy split = SplitStrategy::kRandom;
  /// Seed for features and splits.
  uint64_t seed = 13;
  /// Drop literal-valued triples (the paper's transformer does).
  bool drop_literals = true;
};

/// Encodes `store` into a GraphData according to `options`.
///
/// For node classification (label_predicate_iri set): nodes of the target
/// type with a label edge become target_nodes; label edges are excluded from
/// message passing.
/// For link prediction (task_predicate_iri set): edges of the task predicate
/// are split into train/valid/test supervision and removed from the graph.
Result<GraphData> BuildGraphData(const rdf::TripleStore& store,
                                 const TransformOptions& options);

}  // namespace kgnet::gml

#endif  // KGNET_GML_GRAPH_DATA_H_
