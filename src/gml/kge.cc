#include "gml/kge.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "gml/metrics.h"
#include "gml/train_util.h"
#include "tensor/memory_meter.h"
#include "tensor/optimizer.h"
#include "tensor/rng.h"

namespace kgnet::gml {

using tensor::Matrix;

namespace {

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

float KgeModel::ScoreWithGrad(const float* h, const float* r, const float* t,
                              float* gh, float* gr, float* gt) const {
  const size_t d = dim_;
  switch (score_) {
    case KgeScore::kTransE: {
      float s = 0.0f;
      for (size_t i = 0; i < d; ++i) {
        const float diff = h[i] + r[i] - t[i];
        s -= std::fabs(diff);
        const float sign = diff > 0 ? 1.0f : (diff < 0 ? -1.0f : 0.0f);
        if (gh) {
          gh[i] = -sign;
          gr[i] = -sign;
          gt[i] = sign;
        }
      }
      return s;
    }
    case KgeScore::kDistMult: {
      float s = 0.0f;
      for (size_t i = 0; i < d; ++i) {
        s += h[i] * r[i] * t[i];
        if (gh) {
          gh[i] = r[i] * t[i];
          gr[i] = h[i] * t[i];
          gt[i] = h[i] * r[i];
        }
      }
      return s;
    }
    case KgeScore::kComplEx: {
      // First half = real part, second half = imaginary part.
      const size_t m = d / 2;
      float s = 0.0f;
      for (size_t i = 0; i < m; ++i) {
        const float hr = h[i], hi = h[m + i];
        const float rr = r[i], ri = r[m + i];
        const float tr = t[i], ti = t[m + i];
        // Re(<h, r, conj(t)>) expanded:
        s += hr * rr * tr + hi * rr * ti + hr * ri * ti - hi * ri * tr;
        if (gh) {
          gh[i] = rr * tr + ri * ti;
          gh[m + i] = rr * ti - ri * tr;
          gr[i] = hr * tr + hi * ti;
          gr[m + i] = hr * ti - hi * tr;
          gt[i] = hr * rr - hi * ri;
          gt[m + i] = hi * rr + hr * ri;
        }
      }
      return s;
    }
    case KgeScore::kRotatE: {
      // Relation stores phases in its first half; h, t are complex.
      const size_t m = d / 2;
      float s = 0.0f;
      for (size_t i = 0; i < m; ++i) {
        const float hr = h[i], hi = h[m + i];
        const float tr = t[i], ti = t[m + i];
        const float theta = r[i];
        const float c = std::cos(theta), sn = std::sin(theta);
        // h rotated by theta.
        const float xr = hr * c - hi * sn;
        const float xi = hr * sn + hi * c;
        const float dr = xr - tr;
        const float di = xi - ti;
        const float norm = std::sqrt(dr * dr + di * di) + 1e-9f;
        s -= norm;
        if (gh) {
          const float ddr = dr / norm;  // d norm / d dr
          const float ddi = di / norm;
          // d(-norm)/d h = -(ddr * dxr/dh + ddi * dxi/dh)
          gh[i] = -(ddr * c + ddi * sn);
          gh[m + i] = -(-ddr * sn + ddi * c);
          // d xr/d theta = -hr sn - hi c = -xi ; d xi/d theta = xr
          gr[i] = -(ddr * (-xi) + ddi * xr);
          gr[m + i] = 0.0f;
          gt[i] = ddr;
          gt[m + i] = ddi;
        }
      }
      return s;
    }
  }
  return 0.0f;
}

Status KgeModel::Train(const GraphData& graph, const TrainConfig& config,
                       TrainReport* report) {
  if (graph.train_edges.empty())
    return Status::InvalidArgument("graph carries no link-prediction edges");
  tensor::PeakMemoryScope mem_scope;
  Stopwatch timer;
  tensor::Rng rng(config.seed);

  dim_ = config.embed_dim;
  if ((score_ == KgeScore::kComplEx || score_ == KgeScore::kRotatE) &&
      dim_ % 2 != 0)
    ++dim_;  // complex models need an even dimension
  entities_ = Matrix(graph.num_nodes, dim_);
  entities_.XavierInit(&rng);
  relations_ = Matrix(graph.num_relations, dim_);
  relations_.XavierInit(&rng);

  // All message-passing edges plus training task edges supervise the
  // embeddings (the task edges are already appended to graph.edges by the
  // transformer, so graph.edges suffices).
  const std::vector<Edge>& pos_edges = graph.edges;
  std::vector<float> gh(dim_), gr(dim_), gt(dim_);

  const float lr = config.lr;
  float loss_acc = 0.0f;
  size_t epoch = 0;
  EarlyStopper stopper(config.patience);
  Matrix best_entities, best_relations;
  bool have_best = false;
  for (; epoch < config.epochs; ++epoch) {
    KGNET_RETURN_IF_ERROR(config.cancel.CheckNow());
    if (config.max_seconds > 0 && timer.Seconds() >= config.max_seconds) break;
    loss_acc = 0.0f;
    size_t steps = 0;
    for (size_t bstart = 0; bstart < pos_edges.size();
         bstart += config.batch_size) {
      const size_t bend =
          std::min(bstart + config.batch_size, pos_edges.size());
      for (size_t i = bstart; i < bend; ++i) {
        const Edge& e = pos_edges[i];
        // One positive + negatives.
        for (size_t neg = 0; neg <= config.negatives_per_positive; ++neg) {
          uint32_t h = e.src, t = e.dst;
          float target = 1.0f;
          if (neg > 0) {
            target = -1.0f;
            if (rng.NextFloat() < 0.5f) {
              h = static_cast<uint32_t>(rng.NextUint(graph.num_nodes));
            } else if (e.rel == graph.task_relation &&
                       !graph.destination_candidates.empty() &&
                       rng.NextFloat() < 0.5f) {
              // Type-constrained (hard) negative: corrupt the tail within
              // the destination type, forcing discrimination among the
              // candidates evaluation actually ranks over.
              t = graph.destination_candidates[rng.NextUint(
                  graph.destination_candidates.size())];
            } else {
              t = static_cast<uint32_t>(rng.NextUint(graph.num_nodes));
            }
          }
          float* hv = entities_.Row(h);
          float* rv = relations_.Row(e.rel);
          float* tv = entities_.Row(t);
          const float s =
              ScoreWithGrad(hv, rv, tv, gh.data(), gr.data(), gt.data());
          // Logistic loss: L = softplus(-target * s).
          const float sigma = Sigmoid(-target * s);
          const float dL_ds = -target * sigma;
          loss_acc += std::log1p(std::exp(-std::fabs(target * s))) +
                      std::max(-target * s, 0.0f);
          ++steps;
          for (size_t k = 0; k < dim_; ++k) {
            hv[k] -= lr * dL_ds * gh[k];
            rv[k] -= lr * dL_ds * gr[k];
            tv[k] -= lr * dL_ds * gt[k];
          }
        }
      }
    }
    // Validation MRR on sampled candidates (never full ranking; the
    // budget should go to training).
    if (!graph.valid_edges.empty()) {
      const size_t valid_candidates =
          config.eval_candidates == 0 ? 100 : config.eval_candidates;
      std::vector<size_t> ranks = RankTestEdges(
          *this, graph, graph.valid_edges, valid_candidates,
          config.seed + epoch, config.eval_within_type);
      if (stopper.Update(MeanReciprocalRank(ranks))) {
        // Keep the best-validation parameters (restored after the loop).
        best_entities = entities_;
        best_relations = relations_;
        have_best = true;
      }
      if (stopper.Stop()) {
        ++epoch;
        break;
      }
    }
    (void)steps;
  }
  if (have_best) {
    entities_ = std::move(best_entities);
    relations_ = std::move(best_relations);
  }

  report->method = score_ == KgeScore::kTransE     ? "TransE"
                   : score_ == KgeScore::kDistMult ? "DistMult"
                   : score_ == KgeScore::kComplEx  ? "ComplEx"
                                                   : "RotatE";
  report->epochs_run = epoch;
  report->final_loss = loss_acc;
  report->train_seconds = timer.Seconds();
  report->peak_memory_bytes =
      mem_scope.PeakBytes() + graph.StructureBytes();
  report->valid_metric = stopper.best();

  // Test metrics.
  Stopwatch infer_timer;
  std::vector<size_t> ranks = RankTestEdges(*this, graph, graph.test_edges,
                                            config.eval_candidates,
                                            config.seed + 7919,
                                            config.eval_within_type);
  report->metric = HitsAtK(ranks, 10);
  report->mrr = MeanReciprocalRank(ranks);
  const size_t denom = graph.test_edges.empty() ? 1 : graph.test_edges.size();
  report->inference_us = infer_timer.Micros() / denom;
  return Status::OK();
}

float KgeModel::Score(uint32_t src, uint32_t rel, uint32_t dst) const {
  return ScoreWithGrad(entities_.Row(src), relations_.Row(rel),
                       entities_.Row(dst), nullptr, nullptr, nullptr);
}

std::vector<uint32_t> KgeModel::TopKTails(uint32_t src, uint32_t rel,
                                          size_t k) const {
  std::vector<std::pair<float, uint32_t>> scored;
  scored.reserve(entities_.rows());
  for (uint32_t t = 0; t < entities_.rows(); ++t)
    scored.emplace_back(Score(src, rel, t), t);
  const size_t kk = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<uint32_t> out;
  out.reserve(kk);
  for (size_t i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<float> KgeModel::EntityEmbedding(uint32_t node) const {
  if (node >= entities_.rows()) return {};
  return std::vector<float>(entities_.Row(node),
                            entities_.Row(node) + dim_);
}

std::vector<size_t> RankTestEdges(const LinkPredictor& model,
                                  const GraphData& graph,
                                  const std::vector<Edge>& test_edges,
                                  size_t eval_candidates, uint64_t seed,
                                  bool within_type) {
  tensor::Rng rng(seed);
  // When the transformer knows the destination type (and within_type is
  // requested), rank against its instances: the candidate pool is then
  // identical in meaning across the full-KG and KG' pipelines.
  static const std::vector<uint32_t> kEmptyPool;
  const std::vector<uint32_t>& pool =
      within_type ? graph.destination_candidates : kEmptyPool;
  auto draw = [&]() -> uint32_t {
    if (!pool.empty())
      return pool[rng.NextUint(pool.size())];
    return static_cast<uint32_t>(rng.NextUint(graph.num_nodes));
  };
  std::vector<size_t> ranks;
  ranks.reserve(test_edges.size());
  for (const Edge& e : test_edges) {
    const float true_score = model.Score(e.src, e.rel, e.dst);
    size_t better = 0;
    size_t tied = 0;
    auto consider = [&](uint32_t t) {
      if (t == e.dst) return;
      const float s = model.Score(e.src, e.rel, t);
      if (s > true_score) {
        ++better;
      } else if (s == true_score) {
        ++tied;
      }
    };
    if (eval_candidates == 0) {
      // Full ranking over the candidate pool (or all entities).
      if (!pool.empty()) {
        for (uint32_t t : pool) consider(t);
      } else {
        for (uint32_t t = 0; t < graph.num_nodes; ++t) consider(t);
      }
    } else {
      for (size_t c = 0; c < eval_candidates; ++c) consider(draw());
    }
    // Ties take the expected (mid) rank, so degenerate models that score
    // every candidate equally cannot fake rank 1.
    ranks.push_back(better + tied / 2 + 1);
  }
  return ranks;
}

}  // namespace kgnet::gml
