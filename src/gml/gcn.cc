#include "gml/gcn.h"

#include "gml/metrics.h"
#include "gml/train_util.h"
#include "tensor/memory_meter.h"
#include "tensor/optimizer.h"
#include "tensor/rng.h"

namespace kgnet::gml {

using tensor::CsrMatrix;
using tensor::Matrix;

Matrix GcnClassifier::Logits(const CsrMatrix& adj, const Matrix& x) const {
  Matrix z0 = adj.SpMM(x);
  Matrix h1 = Matrix::MatMul(z0, w0_);
  h1.ReluInPlace();
  Matrix z1 = adj.SpMM(h1);
  return Matrix::MatMul(z1, w1_);
}

Status GcnClassifier::Train(const GraphData& graph, const TrainConfig& config,
                            TrainReport* report) {
  if (graph.num_classes == 0)
    return Status::InvalidArgument("graph carries no classification labels");
  tensor::PeakMemoryScope mem_scope;
  Stopwatch timer;
  tensor::Rng rng(config.seed);

  const CsrMatrix adj = graph.BuildGcnAdjacency();
  const Matrix& x = graph.features;
  w0_ = Matrix(graph.feature_dim, config.hidden_dim);
  w0_.XavierInit(&rng);
  w1_ = Matrix(config.hidden_dim, graph.num_classes);
  w1_.XavierInit(&rng);

  tensor::AdamOptimizer::Options aopts;
  aopts.lr = config.lr;
  tensor::AdamOptimizer opt(aopts);
  opt.Register(&w0_);
  opt.Register(&w1_);

  const std::vector<int> train_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.train_idx);
  const std::vector<int> valid_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.valid_idx);

  EarlyStopper stopper(config.patience);
  float loss = 0.0f;
  size_t epoch = 0;
  for (; epoch < config.epochs; ++epoch) {
    KGNET_RETURN_IF_ERROR(config.cancel.CheckNow());
    if (config.max_seconds > 0 && timer.Seconds() >= config.max_seconds) break;
    // ---- forward with caches ----
    Matrix z0 = adj.SpMM(x);
    Matrix pre1 = Matrix::MatMul(z0, w0_);
    Matrix mask;
    Matrix h1 = pre1;
    h1.ReluInPlace(&mask);
    Matrix z1 = adj.SpMM(h1);
    Matrix logits = Matrix::MatMul(z1, w1_);

    Matrix dlogits;
    loss = tensor::SoftmaxCrossEntropy(logits, train_labels, &dlogits);

    // ---- backward ----
    Matrix dw1 = Matrix::MatMulTransA(z1, dlogits);
    Matrix dz1 = Matrix::MatMulTransB(dlogits, w1_);
    Matrix dh1 = adj.SpMMTransposed(dz1);
    dh1.Hadamard(mask);
    Matrix dw0 = Matrix::MatMulTransA(z0, dh1);

    opt.Step({&dw0, &dw1});

    // ---- validation ----
    std::vector<int> preds = ArgmaxRows(logits);
    double vacc = Accuracy(preds, valid_labels);
    stopper.Update(vacc);
    if (stopper.Stop()) {
      ++epoch;
      break;
    }
  }

  report->method = "GCN";
  report->epochs_run = epoch;
  report->final_loss = loss;
  report->train_seconds = timer.Seconds();
  report->peak_memory_bytes =
      mem_scope.PeakBytes() + graph.StructureBytes();
  report->valid_metric = stopper.best();

  // Test evaluation + cached predictions for inference.
  Stopwatch infer_timer;
  Matrix logits = Logits(adj, x);
  cached_predictions_ = ArgmaxRows(logits);
  const std::vector<int> test_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.test_idx);
  report->metric = Accuracy(cached_predictions_, test_labels);
  report->macro_f1 =
      MacroF1(cached_predictions_, test_labels, graph.num_classes);
  const size_t denom = graph.target_nodes.empty() ? 1 : graph.target_nodes.size();
  report->inference_us = infer_timer.Micros() / denom;
  return Status::OK();
}

std::vector<int> GcnClassifier::Predict(const GraphData& graph,
                                        const std::vector<uint32_t>& nodes) {
  std::vector<int> out;
  out.reserve(nodes.size());
  for (uint32_t v : nodes)
    out.push_back(v < cached_predictions_.size() ? cached_predictions_[v]
                                                 : -1);
  (void)graph;
  return out;
}

}  // namespace kgnet::gml
