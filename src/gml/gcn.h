// Full-batch two-layer GCN node classifier (Kipf & Welling).
#ifndef KGNET_GML_GCN_H_
#define KGNET_GML_GCN_H_

#include "gml/model.h"
#include "tensor/csr_matrix.h"
#include "tensor/matrix.h"

namespace kgnet::gml {

/// Homogeneous GCN: logits = Â ReLU(Â X W0) W1 with Â the symmetric
/// normalized adjacency (self loops added). Relations are ignored — this is
/// the weakest but cheapest baseline in the taxonomy.
class GcnClassifier : public NodeClassifier {
 public:
  Status Train(const GraphData& graph, const TrainConfig& config,
               TrainReport* report) override;

  std::vector<int> Predict(const GraphData& graph,
                           const std::vector<uint32_t>& nodes) override;

 private:
  tensor::Matrix Logits(const tensor::CsrMatrix& adj,
                        const tensor::Matrix& x) const;

  tensor::Matrix w0_, w1_;
  // Cached full-graph predictions after training.
  std::vector<int> cached_predictions_;
};

}  // namespace kgnet::gml

#endif  // KGNET_GML_GCN_H_
