// GraphSAGE-mean node classifier (Hamilton et al., NeurIPS'17) — the
// node/layer-sampling family of the paper's Figure 5 taxonomy.
#ifndef KGNET_GML_SAGE_H_
#define KGNET_GML_SAGE_H_

#include "gml/model.h"
#include "gml/sampler.h"
#include "tensor/matrix.h"

namespace kgnet::gml {

/// Two-layer GraphSAGE with the mean aggregator:
///   H1 = ReLU(X·Wself0 + Â·X·Wnbr0)
///   Z  = H1·Wself1 + Â·H1·Wnbr1
/// where Â is the row-normalized undirected adjacency of a *sampled*
/// neighborhood subgraph around each training batch (relation types are
/// ignored — SAGE is homogeneous). Cheap and memory-light, but weaker than
/// relational methods on heterogeneous KGs.
class SageClassifier : public NodeClassifier {
 public:
  Status Train(const GraphData& graph, const TrainConfig& config,
               TrainReport* report) override;

  std::vector<int> Predict(const GraphData& graph,
                           const std::vector<uint32_t>& nodes) override;

 private:
  struct Cache;
  /// Forward over an adjacency + features; fills `cache` when training.
  tensor::Matrix Forward(const tensor::CsrMatrix& adj,
                         const tensor::Matrix& x, Cache* cache) const;

  tensor::Matrix wself0_, wnbr0_, wself1_, wnbr1_;
  std::vector<int> cached_predictions_;
};

/// Builds the row-normalized undirected homogeneous adjacency of `sub`.
tensor::CsrMatrix BuildHomogeneousSubgraphAdjacency(const Subgraph& sub);

}  // namespace kgnet::gml

#endif  // KGNET_GML_SAGE_H_
