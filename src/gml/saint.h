// Mini-batch GNN classifiers: GraphSAINT and ShadowSAINT.
#ifndef KGNET_GML_SAINT_H_
#define KGNET_GML_SAINT_H_

#include <memory>

#include "gml/model.h"
#include "gml/rgcn_net.h"
#include "gml/sampler.h"

namespace kgnet::gml {

/// GraphSAINT (Zeng et al., ICLR'20): each step trains relational GCN
/// layers on an induced subgraph drawn by a degree-biased node sampler.
/// Memory stays proportional to the sample, not the full graph.
class GraphSaintClassifier : public NodeClassifier {
 public:
  Status Train(const GraphData& graph, const TrainConfig& config,
               TrainReport* report) override;

  std::vector<int> Predict(const GraphData& graph,
                           const std::vector<uint32_t>& nodes) override;

 private:
  std::unique_ptr<RgcnNet> net_;
  std::vector<int> cached_predictions_;
};

/// ShadowSAINT / shaDow-GNN (Zeng et al.'22): decouples depth and scope by
/// training on bounded ego-nets around each batch of target nodes; the loss
/// is applied to the batch seeds only.
class ShadowSaintClassifier : public NodeClassifier {
 public:
  Status Train(const GraphData& graph, const TrainConfig& config,
               TrainReport* report) override;

  std::vector<int> Predict(const GraphData& graph,
                           const std::vector<uint32_t>& nodes) override;

 private:
  std::unique_ptr<RgcnNet> net_;
  std::vector<int> cached_predictions_;
};

}  // namespace kgnet::gml

#endif  // KGNET_GML_SAINT_H_
