#include "gml/metrics.h"

#include <algorithm>

namespace kgnet::gml {

double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected) {
  size_t n = 0, correct = 0;
  const size_t m = std::min(predicted.size(), expected.size());
  for (size_t i = 0; i < m; ++i) {
    if (expected[i] < 0) continue;
    ++n;
    if (predicted[i] == expected[i]) ++correct;
  }
  return n > 0 ? static_cast<double>(correct) / n : 0.0;
}

double MacroF1(const std::vector<int>& predicted,
               const std::vector<int>& expected, size_t num_classes) {
  std::vector<size_t> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0);
  const size_t m = std::min(predicted.size(), expected.size());
  for (size_t i = 0; i < m; ++i) {
    if (expected[i] < 0) continue;
    const int e = expected[i];
    const int p = predicted[i];
    if (p == e) {
      ++tp[e];
    } else {
      if (p >= 0 && static_cast<size_t>(p) < num_classes) ++fp[p];
      ++fn[e];
    }
  }
  double f1_sum = 0.0;
  size_t counted = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    const size_t denom_p = tp[c] + fp[c];
    const size_t denom_r = tp[c] + fn[c];
    if (denom_r == 0) continue;  // class absent from eval set
    ++counted;
    const double precision =
        denom_p > 0 ? static_cast<double>(tp[c]) / denom_p : 0.0;
    const double recall = static_cast<double>(tp[c]) / denom_r;
    if (precision + recall > 0)
      f1_sum += 2.0 * precision * recall / (precision + recall);
  }
  return counted > 0 ? f1_sum / counted : 0.0;
}

double MeanReciprocalRank(const std::vector<size_t>& ranks) {
  if (ranks.empty()) return 0.0;
  double acc = 0.0;
  for (size_t r : ranks) acc += r > 0 ? 1.0 / static_cast<double>(r) : 0.0;
  return acc / ranks.size();
}

double HitsAtK(const std::vector<size_t>& ranks, size_t k) {
  if (ranks.empty()) return 0.0;
  size_t hits = 0;
  for (size_t r : ranks)
    if (r >= 1 && r <= k) ++hits;
  return static_cast<double>(hits) / ranks.size();
}

}  // namespace kgnet::gml
