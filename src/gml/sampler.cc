#include "gml/sampler.h"

#include <algorithm>

namespace kgnet::gml {

using tensor::CooEntry;
using tensor::CsrMatrix;

AdjacencyList::AdjacencyList(const GraphData& graph)
    : edges_(&graph.edges),
      out_(graph.num_nodes),
      in_(graph.num_nodes) {
  for (uint32_t e = 0; e < graph.edges.size(); ++e) {
    out_[graph.edges[e].src].push_back(e);
    in_[graph.edges[e].dst].push_back(e);
  }
}

namespace {

/// Fills sub->local_of / sub->nodes from a set of original ids.
void FinalizeNodes(const std::vector<uint32_t>& picked, Subgraph* sub) {
  sub->nodes = picked;
  std::sort(sub->nodes.begin(), sub->nodes.end());
  sub->nodes.erase(std::unique(sub->nodes.begin(), sub->nodes.end()),
                   sub->nodes.end());
  sub->local_of.reserve(sub->nodes.size());
  for (uint32_t i = 0; i < sub->nodes.size(); ++i)
    sub->local_of.emplace(sub->nodes[i], i);
}

/// Induces edges among sub->nodes from the full edge list.
void InduceEdges(const GraphData& graph, Subgraph* sub) {
  for (const Edge& e : graph.edges) {
    auto s = sub->local_of.find(e.src);
    if (s == sub->local_of.end()) continue;
    auto d = sub->local_of.find(e.dst);
    if (d == sub->local_of.end()) continue;
    sub->edges.push_back(Edge{s->second, e.rel, d->second});
  }
}

}  // namespace

Subgraph SampleSaintSubgraph(const GraphData& graph, const AdjacencyList& adj,
                             size_t num_nodes, tensor::Rng* rng) {
  Subgraph sub;
  if (graph.num_nodes == 0) return sub;
  // Degree-proportional sampling with replacement, via the edge list: pick a
  // random edge endpoint. This is the standard GraphSAINT node sampler.
  std::vector<uint32_t> picked;
  picked.reserve(num_nodes);
  const size_t draws = std::min(num_nodes, graph.num_nodes);
  if (graph.edges.empty()) {
    for (size_t i = 0; i < draws; ++i)
      picked.push_back(static_cast<uint32_t>(rng->NextUint(graph.num_nodes)));
  } else {
    for (size_t i = 0; i < draws; ++i) {
      const Edge& e = graph.edges[rng->NextUint(graph.edges.size())];
      picked.push_back(rng->NextFloat() < 0.5f ? e.src : e.dst);
    }
  }
  FinalizeNodes(picked, &sub);
  InduceEdges(graph, &sub);
  (void)adj;
  return sub;
}

Subgraph SampleShadowSubgraph(const GraphData& graph, const AdjacencyList& adj,
                              const std::vector<uint32_t>& seeds, size_t hops,
                              size_t neighbor_budget, tensor::Rng* rng) {
  Subgraph sub;
  std::vector<uint32_t> picked(seeds);
  std::vector<uint32_t> frontier(seeds);
  std::unordered_map<uint32_t, bool> visited;
  for (uint32_t s : seeds) visited[s] = true;

  for (size_t h = 0; h < hops; ++h) {
    std::vector<uint32_t> next;
    for (uint32_t v : frontier) {
      // Sample up to neighbor_budget incident edges of v.
      const auto& outs = adj.OutEdges(v);
      const auto& ins = adj.InEdges(v);
      const size_t deg = outs.size() + ins.size();
      if (deg == 0) continue;
      const size_t take = std::min(neighbor_budget, deg);
      for (size_t i = 0; i < take; ++i) {
        const size_t pick = deg <= neighbor_budget
                                ? i
                                : rng->NextUint(deg);
        const Edge& e = adj.edges()[pick < outs.size()
                                        ? outs[pick]
                                        : ins[pick - outs.size()]];
        const uint32_t nb = e.src == v ? e.dst : e.src;
        if (!visited[nb]) {
          visited[nb] = true;
          picked.push_back(nb);
          next.push_back(nb);
        }
      }
    }
    frontier = std::move(next);
  }
  FinalizeNodes(picked, &sub);
  InduceEdges(graph, &sub);
  return sub;
}

std::vector<tensor::CsrMatrix> BuildSubgraphAdjacencies(
    const Subgraph& sub, size_t num_relations) {
  std::vector<std::vector<CooEntry>> buckets(num_relations * 2);
  for (const Edge& e : sub.edges) {
    buckets[e.rel].push_back({e.dst, e.src, 1.0f});
    buckets[num_relations + e.rel].push_back({e.src, e.dst, 1.0f});
  }
  std::vector<CsrMatrix> out;
  out.reserve(buckets.size());
  const size_t n = sub.nodes.size();
  for (auto& b : buckets) {
    CsrMatrix a(n, n, std::move(b));
    out.push_back(a.RowNormalized());
  }
  return out;
}

}  // namespace kgnet::gml
