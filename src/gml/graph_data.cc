#include "gml/graph_data.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace kgnet::gml {

using rdf::kNullTermId;
using rdf::TermId;
using rdf::Triple;
using rdf::TriplePattern;
using tensor::CooEntry;
using tensor::CsrMatrix;
using tensor::Matrix;
using tensor::Rng;

tensor::CsrMatrix GraphData::BuildGcnAdjacency() const {
  std::vector<CooEntry> entries;
  entries.reserve(edges.size() * 2 + num_nodes);
  for (const Edge& e : edges) {
    entries.push_back({e.dst, e.src, 1.0f});
    entries.push_back({e.src, e.dst, 1.0f});
  }
  for (uint32_t v = 0; v < num_nodes; ++v) entries.push_back({v, v, 1.0f});
  CsrMatrix a(num_nodes, num_nodes, std::move(entries));
  return a.SymNormalized();
}

std::vector<tensor::CsrMatrix> GraphData::BuildRelationalAdjacencies() const {
  std::vector<std::vector<CooEntry>> buckets(num_relations * 2);
  for (const Edge& e : edges) {
    // Forward: messages flow src -> dst, so row = dst, col = src.
    buckets[e.rel].push_back({e.dst, e.src, 1.0f});
    // Inverse direction.
    buckets[num_relations + e.rel].push_back({e.src, e.dst, 1.0f});
  }
  std::vector<CsrMatrix> out;
  out.reserve(buckets.size());
  for (auto& b : buckets) {
    CsrMatrix a(num_nodes, num_nodes, std::move(b));
    out.push_back(a.RowNormalized());
  }
  return out;
}

bool GraphData::FindNode(rdf::TermId term, uint32_t* node) const {
  if (node_index_.empty() && !node_terms.empty()) {
    node_index_.reserve(node_terms.size());
    for (size_t i = 0; i < node_terms.size(); ++i)
      node_index_.emplace(node_terms[i], static_cast<uint32_t>(i));
  }
  auto it = node_index_.find(term);
  if (it == node_index_.end()) return false;
  *node = it->second;
  return true;
}

size_t GraphData::StructureBytes() const {
  return edges.size() * sizeof(Edge) + features.ByteSize() +
         labels.size() * sizeof(int);
}

namespace {

/// Assigns indices 0..n-1 to folds. For kCommunity, `component` gives a
/// community id per item; whole communities go to one fold.
void SplitIndices(size_t n, double train_frac, double valid_frac, Rng* rng,
                  SplitStrategy strategy, const std::vector<uint32_t>* component,
                  std::vector<uint32_t>* train, std::vector<uint32_t>* valid,
                  std::vector<uint32_t>* test) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::shuffle(order.begin(), order.end(), rng->generator());

  const size_t target_train = static_cast<size_t>(n * train_frac);
  const size_t target_valid = static_cast<size_t>(n * valid_frac);

  if (strategy == SplitStrategy::kCommunity && component != nullptr) {
    // Group by community, then fill folds greedily in shuffled community
    // order. Keeps communities intact (graph-partition-aware splitting).
    std::unordered_map<uint32_t, std::vector<uint32_t>> groups;
    for (uint32_t i : order) (*groups.try_emplace((*component)[i]).first).second.push_back(i);
    std::vector<std::vector<uint32_t>> comms;
    comms.reserve(groups.size());
    for (auto& [id, members] : groups) comms.push_back(std::move(members));
    std::shuffle(comms.begin(), comms.end(), rng->generator());
    for (auto& c : comms) {
      if (train->size() < target_train) {
        train->insert(train->end(), c.begin(), c.end());
      } else if (valid->size() < target_valid) {
        valid->insert(valid->end(), c.begin(), c.end());
      } else {
        test->insert(test->end(), c.begin(), c.end());
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (i < target_train) {
      train->push_back(order[i]);
    } else if (i < target_train + target_valid) {
      valid->push_back(order[i]);
    } else {
      test->push_back(order[i]);
    }
  }
}

/// Connected components over an undirected view of the edges, restricted to
/// n nodes. Returns a component id per node.
std::vector<uint32_t> ConnectedComponents(size_t n,
                                          const std::vector<Edge>& edges) {
  std::vector<uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    uint32_t a = find(e.src), b = find(e.dst);
    if (a != b) parent[a] = b;
  }
  std::vector<uint32_t> comp(n);
  for (uint32_t v = 0; v < n; ++v) comp[v] = find(v);
  return comp;
}

}  // namespace

Result<GraphData> BuildGraphData(const rdf::TripleStore& store,
                                 const TransformOptions& options) {
  const rdf::Dictionary& dict = store.dict();
  GraphData g;

  TermId type_pred = dict.FindIri(rdf::kRdfType);
  TermId target_type = options.target_type_iri.empty()
                           ? kNullTermId
                           : dict.FindIri(options.target_type_iri);
  TermId label_pred = options.label_predicate_iri.empty()
                          ? kNullTermId
                          : dict.FindIri(options.label_predicate_iri);
  TermId task_pred = options.task_predicate_iri.empty()
                         ? kNullTermId
                         : dict.FindIri(options.task_predicate_iri);
  if (!options.target_type_iri.empty() && target_type == kNullTermId)
    return Status::NotFound("target type not in KG: " +
                            options.target_type_iri);
  if (!options.label_predicate_iri.empty() && label_pred == kNullTermId)
    return Status::NotFound("label predicate not in KG: " +
                            options.label_predicate_iri);
  if (!options.task_predicate_iri.empty() && task_pred == kNullTermId)
    return Status::NotFound("task predicate not in KG: " +
                            options.task_predicate_iri);

  // Pass 1: assign node and relation ids. Literal objects are dropped
  // (paper: "removing literal data"); label/task predicate edges are
  // excluded from message passing.
  std::unordered_map<TermId, uint32_t> node_of;
  std::unordered_map<TermId, uint32_t> rel_of;
  auto intern_node = [&](TermId t) -> uint32_t {
    auto it = node_of.find(t);
    if (it != node_of.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(g.node_terms.size());
    node_of.emplace(t, id);
    g.node_terms.push_back(t);
    return id;
  };
  auto intern_rel = [&](TermId t) -> uint32_t {
    auto it = rel_of.find(t);
    if (it != rel_of.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(g.relation_terms.size());
    rel_of.emplace(t, id);
    g.relation_terms.push_back(t);
    return id;
  };

  std::vector<Triple> label_triples;
  std::vector<Triple> task_triples;
  store.Scan(TriplePattern(), [&](const Triple& t) {
    if (options.drop_literals && dict.Lookup(t.o).is_literal()) return true;
    if (label_pred != kNullTermId && t.p == label_pred) {
      label_triples.push_back(t);
      return true;
    }
    if (task_pred != kNullTermId && t.p == task_pred) {
      task_triples.push_back(t);
      return true;
    }
    if (t.p == type_pred) {
      // Type edges stay in the graph (they carry schema signal) but the
      // class nodes are regular nodes.
      Edge e{intern_node(t.s), intern_rel(t.p), intern_node(t.o)};
      g.edges.push_back(e);
      return true;
    }
    Edge e{intern_node(t.s), intern_rel(t.p), intern_node(t.o)};
    g.edges.push_back(e);
    return true;
  });

  g.num_nodes = g.node_terms.size();
  g.num_relations = g.relation_terms.size();
  if (g.num_nodes == 0)
    return Status::InvalidArgument("empty graph after transformation");

  tensor::Rng rng(options.seed);

  // Node classification supervision.
  if (label_pred != kNullTermId) {
    g.labels.assign(g.num_nodes, -1);
    std::unordered_map<TermId, int> class_of;
    for (const Triple& t : label_triples) {
      auto nit = node_of.find(t.s);
      if (nit == node_of.end()) continue;  // subject had no graph edges
      // Restrict to instances of the target type if one was given.
      if (target_type != kNullTermId &&
          !store.Contains(Triple(t.s, type_pred, target_type)))
        continue;
      auto cit = class_of.find(t.o);
      int cls;
      if (cit == class_of.end()) {
        cls = static_cast<int>(g.class_terms.size());
        class_of.emplace(t.o, cls);
        g.class_terms.push_back(t.o);
      } else {
        cls = cit->second;
      }
      if (g.labels[nit->second] == -1) {
        g.labels[nit->second] = cls;
        g.target_nodes.push_back(nit->second);
      }
    }
    g.num_classes = g.class_terms.size();
    if (g.target_nodes.empty())
      return Status::InvalidArgument(
          "no labeled target nodes found for node classification");

    const std::vector<uint32_t>* comp_ptr = nullptr;
    std::vector<uint32_t> target_comp;
    std::vector<uint32_t> comp;
    if (options.split == SplitStrategy::kCommunity) {
      // Components over non-type edges: rdf:type edges hub every instance
      // through its class node and would merge all communities.
      std::vector<Edge> structural;
      structural.reserve(g.edges.size());
      for (const Edge& e : g.edges)
        if (g.relation_terms[e.rel] != type_pred) structural.push_back(e);
      comp = ConnectedComponents(g.num_nodes, structural);
      target_comp.reserve(g.target_nodes.size());
      for (uint32_t v : g.target_nodes) target_comp.push_back(comp[v]);
      comp_ptr = &target_comp;
    }
    SplitIndices(g.target_nodes.size(), options.train_fraction,
                 options.valid_fraction, &rng, options.split, comp_ptr,
                 &g.train_idx, &g.valid_idx, &g.test_idx);
  } else {
    g.labels.assign(g.num_nodes, -1);
  }

  // Link prediction supervision.
  if (task_pred != kNullTermId) {
    std::vector<Edge> task_edges;
    for (const Triple& t : task_triples) {
      auto sit = node_of.find(t.s);
      auto oit = node_of.find(t.o);
      if (sit == node_of.end() || oit == node_of.end()) continue;
      task_edges.push_back(
          Edge{sit->second, intern_rel(task_pred), oit->second});
    }
    // intern_rel may have grown the relation table.
    g.num_relations = g.relation_terms.size();
    if (task_edges.empty())
      return Status::InvalidArgument(
          "no task edges found for link prediction");
    g.task_relation = task_edges.front().rel;
    std::vector<uint32_t> tr, va, te;
    SplitIndices(task_edges.size(), options.train_fraction,
                 options.valid_fraction, &rng, SplitStrategy::kRandom, nullptr,
                 &tr, &va, &te);
    for (uint32_t i : tr) g.train_edges.push_back(task_edges[i]);
    for (uint32_t i : va) g.valid_edges.push_back(task_edges[i]);
    for (uint32_t i : te) g.test_edges.push_back(task_edges[i]);
    // Training task edges participate in message passing; valid/test do not.
    for (const Edge& e : g.train_edges) g.edges.push_back(e);

    // Destination-type candidates for ranking.
    if (!options.destination_type_iri.empty()) {
      TermId dest_type = dict.FindIri(options.destination_type_iri);
      if (dest_type == kNullTermId)
        return Status::NotFound("destination type not in KG: " +
                                options.destination_type_iri);
      store.Scan(TriplePattern(kNullTermId, type_pred, dest_type),
                 [&](const Triple& t) {
                   auto it = node_of.find(t.s);
                   if (it != node_of.end())
                     g.destination_candidates.push_back(it->second);
                   return true;
                 });
    }
  }

  // Features.
  g.feature_dim = options.feature_dim;
  g.features = Matrix(g.num_nodes, g.feature_dim);
  g.features.XavierInit(&rng);

  return g;
}

}  // namespace kgnet::gml
