#include "gml/rgcn_net.h"

#include <cassert>

namespace kgnet::gml {

using tensor::CsrMatrix;
using tensor::Matrix;

RgcnNet::RgcnNet(size_t in_dim, size_t hidden_dim, size_t out_dim,
                 size_t num_adj, tensor::Rng* rng)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      out_dim_(out_dim),
      num_adj_(num_adj) {
  wself0_ = Matrix(in_dim_, hidden_dim_);
  wself0_.XavierInit(rng);
  wself1_ = Matrix(hidden_dim_, out_dim_);
  wself1_.XavierInit(rng);
  wrel0_.reserve(num_adj_);
  wrel1_.reserve(num_adj_);
  for (size_t r = 0; r < num_adj_; ++r) {
    wrel0_.emplace_back(in_dim_, hidden_dim_);
    wrel0_.back().XavierInit(rng);
    wrel1_.emplace_back(hidden_dim_, out_dim_);
    wrel1_.back().XavierInit(rng);
  }
}

void RgcnNet::RegisterParams(tensor::AdamOptimizer* opt) {
  opt->Register(&wself0_);
  opt->Register(&wself1_);
  for (auto& w : wrel0_) opt->Register(&w);
  for (auto& w : wrel1_) opt->Register(&w);
}

size_t RgcnNet::ParamBytes() const {
  size_t bytes = wself0_.ByteSize() + wself1_.ByteSize();
  for (const auto& w : wrel0_) bytes += w.ByteSize();
  for (const auto& w : wrel1_) bytes += w.ByteSize();
  return bytes;
}

Matrix RgcnNet::Forward(const std::vector<CsrMatrix>& adj,
                        const Matrix& x) const {
  assert(adj.size() == num_adj_);
  // Layer 1 (messages are discarded immediately: inference is lean).
  Matrix h1 = Matrix::MatMul(x, wself0_);
  for (size_t r = 0; r < num_adj_; ++r) {
    if (adj[r].nnz() == 0) continue;
    Matrix msg = adj[r].SpMM(x);
    h1.Add(Matrix::MatMul(msg, wrel0_[r]));
  }
  h1.ReluInPlace();
  // Layer 2.
  Matrix z = Matrix::MatMul(h1, wself1_);
  for (size_t r = 0; r < num_adj_; ++r) {
    if (adj[r].nnz() == 0) continue;
    Matrix msg = adj[r].SpMM(h1);
    z.Add(Matrix::MatMul(msg, wrel1_[r]));
  }
  return z;
}

float RgcnNet::TrainStep(const std::vector<CsrMatrix>& adj, const Matrix& x,
                         const std::vector<int>& labels,
                         tensor::AdamOptimizer* opt) {
  assert(adj.size() == num_adj_);
  const size_t n = x.rows();

  // ---- Forward with cached per-relation messages (the memory hog). ----
  std::vector<Matrix> msg0(num_adj_);  // Â_r · X
  Matrix pre1 = Matrix::MatMul(x, wself0_);
  for (size_t r = 0; r < num_adj_; ++r) {
    if (adj[r].nnz() == 0) continue;
    msg0[r] = adj[r].SpMM(x);
    pre1.Add(Matrix::MatMul(msg0[r], wrel0_[r]));
  }
  Matrix relu_mask;
  Matrix h1 = pre1;
  h1.ReluInPlace(&relu_mask);

  std::vector<Matrix> msg1(num_adj_);  // Â_r · H1
  Matrix logits = Matrix::MatMul(h1, wself1_);
  for (size_t r = 0; r < num_adj_; ++r) {
    if (adj[r].nnz() == 0) continue;
    msg1[r] = adj[r].SpMM(h1);
    logits.Add(Matrix::MatMul(msg1[r], wrel1_[r]));
  }

  // ---- Loss ----
  Matrix dlogits;
  const float loss = tensor::SoftmaxCrossEntropy(logits, labels, &dlogits);

  // ---- Backward ----
  Matrix dwself1 = Matrix::MatMulTransA(h1, dlogits);
  Matrix dh1 = Matrix::MatMulTransB(dlogits, wself1_);
  std::vector<Matrix> dwrel1(num_adj_);
  for (size_t r = 0; r < num_adj_; ++r) {
    if (adj[r].nnz() == 0) {
      dwrel1[r] = Matrix(hidden_dim_, out_dim_);
      continue;
    }
    dwrel1[r] = Matrix::MatMulTransA(msg1[r], dlogits);
    // dh1 += Â_rᵀ (dlogits · Wr1ᵀ)
    Matrix tmp = Matrix::MatMulTransB(dlogits, wrel1_[r]);
    dh1.Add(adj[r].SpMMTransposed(tmp));
  }
  msg1.clear();

  // Through ReLU.
  dh1.Hadamard(relu_mask);

  Matrix dwself0 = Matrix::MatMulTransA(x, dh1);
  std::vector<Matrix> dwrel0(num_adj_);
  for (size_t r = 0; r < num_adj_; ++r) {
    if (adj[r].nnz() == 0) {
      dwrel0[r] = Matrix(in_dim_, hidden_dim_);
      continue;
    }
    dwrel0[r] = Matrix::MatMulTransA(msg0[r], dh1);
  }
  msg0.clear();
  (void)n;

  // ---- Update ----
  std::vector<Matrix*> grads;
  grads.push_back(&dwself0);
  grads.push_back(&dwself1);
  for (auto& g : dwrel0) grads.push_back(&g);
  for (auto& g : dwrel1) grads.push_back(&g);
  opt->Step(grads);
  return loss;
}

}  // namespace kgnet::gml
