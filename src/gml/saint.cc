#include "gml/saint.h"

#include <algorithm>
#include <numeric>

#include "gml/metrics.h"
#include "gml/train_util.h"
#include "tensor/memory_meter.h"
#include "tensor/optimizer.h"
#include "tensor/rng.h"

namespace kgnet::gml {

using tensor::CsrMatrix;
using tensor::Matrix;

namespace {

/// Labels for subgraph-local rows restricted to `allowed` original nodes
/// (-1 elsewhere).
std::vector<int> SubgraphLabels(const Subgraph& sub,
                                const std::vector<int>& full_labels,
                                const std::vector<int>& allowed_mask) {
  std::vector<int> out(sub.nodes.size(), -1);
  for (uint32_t i = 0; i < sub.nodes.size(); ++i) {
    const uint32_t orig = sub.nodes[i];
    if (allowed_mask[orig] >= 0) out[i] = full_labels[orig];
  }
  return out;
}

/// Shared post-training evaluation: full-graph forward pass.
void Evaluate(const GraphData& graph, const RgcnNet& net,
              std::vector<int>* cached, TrainReport* report) {
  const std::vector<CsrMatrix> adj = graph.BuildRelationalAdjacencies();
  Stopwatch infer_timer;
  Matrix logits = net.Forward(adj, graph.features);
  *cached = ArgmaxRows(logits);
  const std::vector<int> test_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.test_idx);
  report->metric = Accuracy(*cached, test_labels);
  report->macro_f1 = MacroF1(*cached, test_labels, graph.num_classes);
  const size_t denom =
      graph.target_nodes.empty() ? 1 : graph.target_nodes.size();
  report->inference_us = infer_timer.Micros() / denom;
}

}  // namespace

Status GraphSaintClassifier::Train(const GraphData& graph,
                                   const TrainConfig& config,
                                   TrainReport* report) {
  if (graph.num_classes == 0)
    return Status::InvalidArgument("graph carries no classification labels");
  tensor::PeakMemoryScope mem_scope;
  Stopwatch timer;
  tensor::Rng rng(config.seed);

  AdjacencyList adj_list(graph);
  net_ = std::make_unique<RgcnNet>(graph.feature_dim, config.hidden_dim,
                                   graph.num_classes,
                                   graph.num_relations * 2, &rng);
  tensor::AdamOptimizer::Options aopts;
  aopts.lr = config.lr;
  tensor::AdamOptimizer opt(aopts);
  net_->RegisterParams(&opt);

  const std::vector<int> train_mask =
      MaskLabels(graph.labels, graph.target_nodes, graph.train_idx);
  const std::vector<int> valid_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.valid_idx);

  // Enough sampled subgraphs per epoch to cover the graph once in
  // expectation.
  const size_t sample_size =
      std::min<size_t>(config.saint_sample_nodes, graph.num_nodes);
  const size_t batches_per_epoch =
      std::max<size_t>(1, graph.num_nodes / std::max<size_t>(1, sample_size));

  EarlyStopper stopper(config.patience);
  float loss = 0.0f;
  size_t epoch = 0;
  for (; epoch < config.epochs; ++epoch) {
    KGNET_RETURN_IF_ERROR(config.cancel.CheckNow());
    if (config.max_seconds > 0 && timer.Seconds() >= config.max_seconds) break;
    for (size_t b = 0; b < batches_per_epoch; ++b) {
      Subgraph sub =
          SampleSaintSubgraph(graph, adj_list, sample_size, &rng);
      if (sub.nodes.empty()) continue;
      std::vector<CsrMatrix> sub_adj =
          BuildSubgraphAdjacencies(sub, graph.num_relations);
      std::vector<size_t> idx(sub.nodes.begin(), sub.nodes.end());
      Matrix sub_x = graph.features.GatherRows(idx);
      std::vector<int> sub_labels =
          SubgraphLabels(sub, graph.labels, train_mask);
      loss = net_->TrainStep(sub_adj, sub_x, sub_labels, &opt);
    }
    // Validation on a fresh sample (cheap proxy for full-graph eval).
    Subgraph vsub = SampleSaintSubgraph(graph, adj_list,
                                        sample_size * 2, &rng);
    if (!vsub.nodes.empty()) {
      std::vector<CsrMatrix> sub_adj =
          BuildSubgraphAdjacencies(vsub, graph.num_relations);
      std::vector<size_t> idx(vsub.nodes.begin(), vsub.nodes.end());
      Matrix sub_x = graph.features.GatherRows(idx);
      Matrix logits = net_->Forward(sub_adj, sub_x);
      std::vector<int> preds = ArgmaxRows(logits);
      std::vector<int> vlabels = SubgraphLabels(vsub, graph.labels,
                                                valid_labels);
      stopper.Update(Accuracy(preds, vlabels));
      if (stopper.Stop()) {
        ++epoch;
        break;
      }
    }
  }

  report->method = "Graph-SAINT";
  report->epochs_run = epoch;
  report->final_loss = loss;
  report->train_seconds = timer.Seconds();
  report->peak_memory_bytes =
      mem_scope.PeakBytes() + graph.StructureBytes();
  report->valid_metric = stopper.best();
  Evaluate(graph, *net_, &cached_predictions_, report);
  return Status::OK();
}

std::vector<int> GraphSaintClassifier::Predict(
    const GraphData& graph, const std::vector<uint32_t>& nodes) {
  std::vector<int> out;
  out.reserve(nodes.size());
  for (uint32_t v : nodes)
    out.push_back(v < cached_predictions_.size() ? cached_predictions_[v]
                                                 : -1);
  (void)graph;
  return out;
}

Status ShadowSaintClassifier::Train(const GraphData& graph,
                                    const TrainConfig& config,
                                    TrainReport* report) {
  if (graph.num_classes == 0)
    return Status::InvalidArgument("graph carries no classification labels");
  tensor::PeakMemoryScope mem_scope;
  Stopwatch timer;
  tensor::Rng rng(config.seed);

  AdjacencyList adj_list(graph);
  net_ = std::make_unique<RgcnNet>(graph.feature_dim, config.hidden_dim,
                                   graph.num_classes,
                                   graph.num_relations * 2, &rng);
  tensor::AdamOptimizer::Options aopts;
  aopts.lr = config.lr;
  tensor::AdamOptimizer opt(aopts);
  net_->RegisterParams(&opt);

  const std::vector<int> train_mask =
      MaskLabels(graph.labels, graph.target_nodes, graph.train_idx);
  const std::vector<int> valid_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.valid_idx);

  // Batch seeds: the labeled training nodes.
  std::vector<uint32_t> train_nodes;
  for (uint32_t idx : graph.train_idx)
    train_nodes.push_back(graph.target_nodes[idx]);

  EarlyStopper stopper(config.patience);
  float loss = 0.0f;
  size_t epoch = 0;
  for (; epoch < config.epochs; ++epoch) {
    KGNET_RETURN_IF_ERROR(config.cancel.CheckNow());
    if (config.max_seconds > 0 && timer.Seconds() >= config.max_seconds) break;
    std::shuffle(train_nodes.begin(), train_nodes.end(), rng.generator());
    for (size_t start = 0; start < train_nodes.size();
         start += config.batch_size) {
      const size_t end =
          std::min(start + config.batch_size, train_nodes.size());
      std::vector<uint32_t> seeds(train_nodes.begin() + start,
                                  train_nodes.begin() + end);
      Subgraph sub = SampleShadowSubgraph(graph, adj_list, seeds,
                                          config.shadow_hops,
                                          config.shadow_neighbor_budget,
                                          &rng);
      if (sub.nodes.empty()) continue;
      std::vector<CsrMatrix> sub_adj =
          BuildSubgraphAdjacencies(sub, graph.num_relations);
      std::vector<size_t> idx(sub.nodes.begin(), sub.nodes.end());
      Matrix sub_x = graph.features.GatherRows(idx);
      // Loss only on the seeds of this batch.
      std::vector<int> sub_labels(sub.nodes.size(), -1);
      for (uint32_t s : seeds) {
        auto it = sub.local_of.find(s);
        if (it != sub.local_of.end()) sub_labels[it->second] =
            graph.labels[s];
      }
      loss = net_->TrainStep(sub_adj, sub_x, sub_labels, &opt);
    }
    // Validation on ego-nets of validation nodes.
    std::vector<uint32_t> vnodes;
    for (uint32_t idx : graph.valid_idx)
      vnodes.push_back(graph.target_nodes[idx]);
    if (!vnodes.empty()) {
      Subgraph vsub = SampleShadowSubgraph(graph, adj_list, vnodes,
                                           config.shadow_hops,
                                           config.shadow_neighbor_budget,
                                           &rng);
      std::vector<CsrMatrix> sub_adj =
          BuildSubgraphAdjacencies(vsub, graph.num_relations);
      std::vector<size_t> idx(vsub.nodes.begin(), vsub.nodes.end());
      Matrix sub_x = graph.features.GatherRows(idx);
      Matrix logits = net_->Forward(sub_adj, sub_x);
      std::vector<int> preds = ArgmaxRows(logits);
      std::vector<int> vlabels = SubgraphLabels(vsub, graph.labels,
                                                valid_labels);
      stopper.Update(Accuracy(preds, vlabels));
      if (stopper.Stop()) {
        ++epoch;
        break;
      }
    }
  }

  report->method = "Shadow-SAINT";
  report->epochs_run = epoch;
  report->final_loss = loss;
  report->train_seconds = timer.Seconds();
  report->peak_memory_bytes =
      mem_scope.PeakBytes() + graph.StructureBytes();
  report->valid_metric = stopper.best();
  Evaluate(graph, *net_, &cached_predictions_, report);
  return Status::OK();
}

std::vector<int> ShadowSaintClassifier::Predict(
    const GraphData& graph, const std::vector<uint32_t>& nodes) {
  std::vector<int> out;
  out.reserve(nodes.size());
  for (uint32_t v : nodes)
    out.push_back(v < cached_predictions_.size() ? cached_predictions_[v]
                                                 : -1);
  (void)graph;
  return out;
}

}  // namespace kgnet::gml
