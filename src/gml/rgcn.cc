#include "gml/rgcn.h"

#include "gml/metrics.h"
#include "gml/train_util.h"
#include "tensor/memory_meter.h"
#include "tensor/optimizer.h"
#include "tensor/rng.h"

namespace kgnet::gml {

using tensor::CsrMatrix;
using tensor::Matrix;

Status RgcnClassifier::Train(const GraphData& graph,
                             const TrainConfig& config, TrainReport* report) {
  if (graph.num_classes == 0)
    return Status::InvalidArgument("graph carries no classification labels");
  tensor::PeakMemoryScope mem_scope;
  Stopwatch timer;
  tensor::Rng rng(config.seed);

  const std::vector<CsrMatrix> adj = graph.BuildRelationalAdjacencies();
  const Matrix& x = graph.features;

  net_ = std::make_unique<RgcnNet>(graph.feature_dim, config.hidden_dim,
                                   graph.num_classes, adj.size(), &rng);
  tensor::AdamOptimizer::Options aopts;
  aopts.lr = config.lr;
  tensor::AdamOptimizer opt(aopts);
  net_->RegisterParams(&opt);

  const std::vector<int> train_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.train_idx);
  const std::vector<int> valid_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.valid_idx);

  EarlyStopper stopper(config.patience);
  float loss = 0.0f;
  size_t epoch = 0;
  for (; epoch < config.epochs; ++epoch) {
    KGNET_RETURN_IF_ERROR(config.cancel.CheckNow());
    if (config.max_seconds > 0 && timer.Seconds() >= config.max_seconds) break;
    loss = net_->TrainStep(adj, x, train_labels, &opt);
    Matrix logits = net_->Forward(adj, x);
    std::vector<int> preds = ArgmaxRows(logits);
    stopper.Update(Accuracy(preds, valid_labels));
    if (stopper.Stop()) {
      ++epoch;
      break;
    }
  }

  report->method = "RGCN";
  report->epochs_run = epoch;
  report->final_loss = loss;
  report->train_seconds = timer.Seconds();
  report->peak_memory_bytes =
      mem_scope.PeakBytes() + graph.StructureBytes();
  report->valid_metric = stopper.best();

  Stopwatch infer_timer;
  Matrix logits = net_->Forward(adj, x);
  cached_predictions_ = ArgmaxRows(logits);
  const std::vector<int> test_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.test_idx);
  report->metric = Accuracy(cached_predictions_, test_labels);
  report->macro_f1 =
      MacroF1(cached_predictions_, test_labels, graph.num_classes);
  const size_t denom =
      graph.target_nodes.empty() ? 1 : graph.target_nodes.size();
  report->inference_us = infer_timer.Micros() / denom;
  return Status::OK();
}

std::vector<int> RgcnClassifier::Predict(const GraphData& graph,
                                         const std::vector<uint32_t>& nodes) {
  std::vector<int> out;
  out.reserve(nodes.size());
  for (uint32_t v : nodes)
    out.push_back(v < cached_predictions_.size() ? cached_predictions_[v]
                                                 : -1);
  (void)graph;
  return out;
}

}  // namespace kgnet::gml
