#include "gml/morse.h"

#include <algorithm>
#include <cmath>

#include "gml/kge.h"
#include "gml/metrics.h"
#include "gml/train_util.h"
#include "tensor/memory_meter.h"
#include "tensor/rng.h"

namespace kgnet::gml {

using tensor::Matrix;

namespace {
/// Maximum incident roles aggregated per entity (keeps steps O(1)).
constexpr size_t kMaxIncident = 32;
/// Number of hashed anchor buckets.
constexpr size_t kAnchorBuckets = 4096;

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

uint32_t AnchorBucket(uint32_t v) {
  return (v * 2654435761u) % kAnchorBuckets;
}
}  // namespace

void MorseModel::ComputeEntityEmbedding(uint32_t v, float* out) const {
  const size_t d = dim_;
  std::vector<float> agg(d, 0.0f);
  const auto& inc = incident_[v];
  const size_t n = std::min(inc.size(), kMaxIncident);
  if (n > 0) {
    for (size_t i = 0; i < n; ++i) {
      const float* row = rel_types_.Row(inc[i]);
      for (size_t k = 0; k < d; ++k) agg[k] += row[k];
    }
    const float inv = 1.0f / static_cast<float>(n);
    for (size_t k = 0; k < d; ++k) agg[k] *= inv;
  }
  const float* anchor = anchors_.Row(AnchorBucket(v));
  for (size_t k = 0; k < d; ++k) agg[k] += anchor[k];
  if (v < neighbors_.size() && !neighbors_[v].empty()) {
    const auto& nbs = neighbors_[v];
    const float inv = 1.0f / static_cast<float>(nbs.size());
    for (const Neighbor& nb : nbs) {
      const float g = role_gate_[nb.role];
      const float* na = anchors_.Row(AnchorBucket(nb.node));
      for (size_t k = 0; k < d; ++k) agg[k] += inv * g * na[k];
    }
  }
  // out = W · agg (linear refinement; a saturating nonlinearity traps
  // optimization on the type-discrimination plateau).
  for (size_t i = 0; i < d; ++i) {
    const float* wrow = w_.Row(i);
    float acc = 0.0f;
    for (size_t k = 0; k < d; ++k) acc += wrow[k] * agg[k];
    out[i] = acc;
  }
}

Status MorseModel::Train(const GraphData& graph, const TrainConfig& config,
                         TrainReport* report) {
  if (graph.train_edges.empty())
    return Status::InvalidArgument("graph carries no link-prediction edges");
  tensor::PeakMemoryScope mem_scope;
  Stopwatch timer;
  tensor::Rng rng(config.seed);

  dim_ = config.embed_dim;
  num_relations_ = graph.num_relations;
  rel_types_ = Matrix(num_relations_ * 2, dim_);
  rel_types_.XavierInit(&rng);
  rel_scoring_ = Matrix(num_relations_, dim_);
  rel_scoring_.XavierInit(&rng);
  // W starts as the identity and is refined slowly: the aggregate is
  // already in the embedding space (TransE-style), and a randomly
  // initialized mixing matrix makes optimization dominated by W-alignment
  // instead of anchor clustering.
  w_ = Matrix(dim_, dim_);
  for (size_t i = 0; i < dim_; ++i) w_.At(i, i) = 1.0f;
  // Anchors start at zero: initial embeddings depend only on the relation
  // signature, and per-entity structure grows from gradients. Random
  // anchor init makes convergence depend heavily on hash-layout luck.
  anchors_ = Matrix(kAnchorBuckets, dim_);

  // Incidence lists (entity-independent signature of each node) and
  // sampled neighbor lists (capped; reservoir-free truncation suffices
  // since edge order is arbitrary).
  constexpr size_t kMaxNeighbors = 16;
  incident_.assign(graph.num_nodes, {});
  neighbors_.assign(graph.num_nodes, {});
  role_gate_.assign(num_relations_ * 2, 1.0f);
  for (const Edge& e : graph.edges) {
    const uint32_t out_role = e.rel;
    const uint32_t in_role = static_cast<uint32_t>(num_relations_ + e.rel);
    incident_[e.src].push_back(out_role);
    incident_[e.dst].push_back(in_role);
    if (neighbors_[e.src].size() < kMaxNeighbors)
      neighbors_[e.src].push_back(Neighbor{e.dst, out_role});
    if (neighbors_[e.dst].size() < kMaxNeighbors)
      neighbors_[e.dst].push_back(Neighbor{e.src, in_role});
  }

  const float lr = config.lr;
  const size_t d = dim_;
  std::vector<float> eh(d), et(d), gh(d), gt(d), gr(d);
  std::vector<float> agg_h(d), agg_t(d), pre_h(d), pre_t(d);

  // Edge-sampled training over *all* message-passing edges (MorsE
  // meta-trains over sampled sub-KGs spanning every relation; the training
  // task edges are already part of graph.edges). Per-epoch cost therefore
  // scales with the KG size — the mechanism behind the paper's Figure 15
  // full-KG vs KG' gap under a fixed budget.
  //
  // The task relation is oversampled so that roughly a third of the
  // training steps exercise it: MorsE's meta-objective is the downstream
  // task, and without the boost the target relation receives only its
  // frequency share of the updates and rarely escapes the type-
  // discrimination plateau.
  std::vector<Edge> pos = graph.edges;
  if (graph.task_relation != UINT32_MAX && !graph.train_edges.empty()) {
    const size_t non_task = graph.edges.size() - graph.train_edges.size();
    const size_t repeats = non_task / (2 * graph.train_edges.size());
    for (size_t r = 0; r < repeats; ++r)
      pos.insert(pos.end(), graph.train_edges.begin(),
                 graph.train_edges.end());
  }
  std::shuffle(pos.begin(), pos.end(), rng.generator());
  EarlyStopper stopper(config.patience);
  float loss_acc = 0.0f;
  size_t epoch = 0;
  Matrix best_rel_types, best_rel_scoring, best_w, best_anchors;
  std::vector<float> best_gates;
  bool have_best = false;

  auto aggregate = [&](uint32_t v, float* agg, float* pre, float* emb) {
    std::fill(agg, agg + d, 0.0f);
    const auto& inc = incident_[v];
    const size_t n = std::min(inc.size(), kMaxIncident);
    if (n > 0) {
      for (size_t i = 0; i < n; ++i) {
        const float* row = rel_types_.Row(inc[i]);
        for (size_t k = 0; k < d; ++k) agg[k] += row[k];
      }
      const float inv = 1.0f / static_cast<float>(n);
      for (size_t k = 0; k < d; ++k) agg[k] *= inv;
    }
    const float* anchor = anchors_.Row(AnchorBucket(v));
    for (size_t k = 0; k < d; ++k) agg[k] += anchor[k];
    const auto& nbs = neighbors_[v];
    if (!nbs.empty()) {
      const float inv = 1.0f / static_cast<float>(nbs.size());
      for (const Neighbor& nb : nbs) {
        const float g = role_gate_[nb.role];
        const float* na = anchors_.Row(AnchorBucket(nb.node));
        for (size_t k = 0; k < d; ++k) agg[k] += inv * g * na[k];
      }
    }
    for (size_t i = 0; i < d; ++i) {
      const float* wrow = w_.Row(i);
      float acc = 0.0f;
      for (size_t k = 0; k < d; ++k) acc += wrow[k] * agg[k];
      pre[i] = acc;
      emb[i] = acc;
    }
  };

  // Backprops d(loss)/d(emb) into rel_types_ and w_ for node v.
  auto backprop_entity = [&](uint32_t v, const float* agg, const float* pre,
                             const float* demb) {
    std::vector<float> dpre(demb, demb + d);
    (void)pre;
    // dW[i][k] += dpre[i] * agg[k]; dagg[k] = sum_i dpre[i] * W[i][k]
    std::vector<float> dagg(d, 0.0f);
    const float w_lr = 0.1f * lr;  // refine W slowly
    for (size_t i = 0; i < d; ++i) {
      float* wrow = w_.Row(i);
      const float dp = dpre[i];
      for (size_t k = 0; k < d; ++k) {
        dagg[k] += dp * wrow[k];
        wrow[k] -= w_lr * dp * agg[k];
      }
    }
    float* anchor = anchors_.Row(AnchorBucket(v));
    for (size_t k = 0; k < d; ++k) anchor[k] -= lr * dagg[k];
    const auto& nbs = neighbors_[v];
    if (!nbs.empty()) {
      const float ninv = 1.0f / static_cast<float>(nbs.size());
      for (const Neighbor& nb : nbs) {
        float* na = anchors_.Row(AnchorBucket(nb.node));
        const float g = role_gate_[nb.role];
        float ggrad = 0.0f;
        for (size_t k = 0; k < d; ++k) {
          ggrad += ninv * dagg[k] * na[k];
          na[k] -= lr * ninv * g * dagg[k];
        }
        role_gate_[nb.role] -= lr * ggrad;
      }
    }
    const auto& inc = incident_[v];
    const size_t n = std::min(inc.size(), kMaxIncident);
    if (n == 0) return;
    const float inv = 1.0f / static_cast<float>(n);
    for (size_t i = 0; i < n; ++i) {
      float* row = rel_types_.Row(inc[i]);
      for (size_t k = 0; k < d; ++k) row[k] -= lr * inv * dagg[k];
    }
  };

  for (; epoch < config.epochs; ++epoch) {
    KGNET_RETURN_IF_ERROR(config.cancel.CheckNow());
    if (config.max_seconds > 0 && timer.Seconds() >= config.max_seconds) break;
    loss_acc = 0.0f;
    for (const Edge& e : pos) {
      for (size_t neg = 0; neg <= config.negatives_per_positive; ++neg) {
        uint32_t h = e.src, t = e.dst;
        float target = 1.0f;
        if (neg > 0) {
          target = -1.0f;
          if (rng.NextFloat() < 0.5f) {
            h = static_cast<uint32_t>(rng.NextUint(graph.num_nodes));
          } else {
            t = static_cast<uint32_t>(rng.NextUint(graph.num_nodes));
          }
        }
        aggregate(h, agg_h.data(), pre_h.data(), eh.data());
        aggregate(t, agg_t.data(), pre_t.data(), et.data());
        float* rv = rel_scoring_.Row(e.rel);
        // TransE score and gradients wrt derived embeddings.
        float s = 0.0f;
        for (size_t k = 0; k < d; ++k) {
          const float diff = eh[k] + rv[k] - et[k];
          s -= std::fabs(diff);
          const float sign = diff > 0 ? 1.0f : (diff < 0 ? -1.0f : 0.0f);
          gh[k] = -sign;
          gr[k] = -sign;
          gt[k] = sign;
        }
        const float sigma = Sigmoid(-target * s);
        const float dL_ds = -target * sigma;
        loss_acc += std::log1p(std::exp(-std::fabs(target * s))) +
                    std::max(-target * s, 0.0f);
        for (size_t k = 0; k < d; ++k) {
          rv[k] -= lr * dL_ds * gr[k];
          gh[k] *= dL_ds;
          gt[k] *= dL_ds;
        }
        backprop_entity(h, agg_h.data(), pre_h.data(), gh.data());
        backprop_entity(t, agg_t.data(), pre_t.data(), gt.data());
      }
    }
    if (!graph.valid_edges.empty()) {
      // Per-epoch validation uses sampled candidates even when the final
      // evaluation does full ranking, so the budget is spent on training.
      const size_t valid_candidates =
          config.eval_candidates == 0 ? 100 : config.eval_candidates;
      std::vector<size_t> ranks = RankTestEdges(
          *this, graph, graph.valid_edges, valid_candidates,
          config.seed + epoch, config.eval_within_type);
      if (stopper.Update(MeanReciprocalRank(ranks))) {
        // Snapshot the best-validation parameters; restored after the
        // loop so late-epoch collapse cannot hurt the served model.
        best_rel_types = rel_types_;
        best_rel_scoring = rel_scoring_;
        best_w = w_;
        best_anchors = anchors_;
        best_gates = role_gate_;
        have_best = true;
      }
      if (stopper.Stop()) {
        ++epoch;
        break;
      }
    }
  }
  if (have_best) {
    rel_types_ = std::move(best_rel_types);
    rel_scoring_ = std::move(best_rel_scoring);
    w_ = std::move(best_w);
    anchors_ = std::move(best_anchors);
    role_gate_ = std::move(best_gates);
  }

  report->method = "MorsE";
  report->epochs_run = epoch;
  report->final_loss = loss_acc;
  report->train_seconds = timer.Seconds();
  report->peak_memory_bytes =
      mem_scope.PeakBytes() + graph.StructureBytes();
  report->valid_metric = stopper.best();

  // Materialize entity embeddings for fast inference.
  entity_cache_ = Matrix(graph.num_nodes, d);
  for (uint32_t v = 0; v < graph.num_nodes; ++v)
    ComputeEntityEmbedding(v, entity_cache_.Row(v));

  Stopwatch infer_timer;
  std::vector<size_t> ranks = RankTestEdges(*this, graph, graph.test_edges,
                                            config.eval_candidates,
                                            config.seed + 7919,
                                            config.eval_within_type);
  report->metric = HitsAtK(ranks, 10);
  report->mrr = MeanReciprocalRank(ranks);
  const size_t denom = graph.test_edges.empty() ? 1 : graph.test_edges.size();
  report->inference_us = infer_timer.Micros() / denom;
  return Status::OK();
}

float MorseModel::Score(uint32_t src, uint32_t rel, uint32_t dst) const {
  const size_t d = dim_;
  std::vector<float> eh(d), et(d);
  if (entity_cache_.rows() > src && entity_cache_.rows() > dst) {
    std::copy(entity_cache_.Row(src), entity_cache_.Row(src) + d, eh.begin());
    std::copy(entity_cache_.Row(dst), entity_cache_.Row(dst) + d, et.begin());
  } else {
    ComputeEntityEmbedding(src, eh.data());
    ComputeEntityEmbedding(dst, et.data());
  }
  const float* rv = rel_scoring_.Row(rel);
  float s = 0.0f;
  for (size_t k = 0; k < d; ++k)
    s -= std::fabs(eh[k] + rv[k] - et[k]);
  return s;
}

std::vector<uint32_t> MorseModel::TopKTails(uint32_t src, uint32_t rel,
                                            size_t k) const {
  std::vector<std::pair<float, uint32_t>> scored;
  const size_t n = entity_cache_.rows() > 0 ? entity_cache_.rows()
                                            : incident_.size();
  scored.reserve(n);
  for (uint32_t t = 0; t < n; ++t)
    scored.emplace_back(Score(src, rel, t), t);
  const size_t kk = std::min(k, scored.size());
  std::partial_sort(
      scored.begin(), scored.begin() + kk, scored.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<uint32_t> out;
  out.reserve(kk);
  for (size_t i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<float> MorseModel::EntityEmbedding(uint32_t node) const {
  const size_t d = dim_;
  std::vector<float> out(d);
  if (entity_cache_.rows() > node) {
    std::copy(entity_cache_.Row(node), entity_cache_.Row(node) + d,
              out.begin());
  } else if (node < incident_.size()) {
    ComputeEntityEmbedding(node, out.data());
  }
  return out;
}

}  // namespace kgnet::gml
