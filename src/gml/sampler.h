// Graph samplers: GraphSAINT-style induced subgraphs and ShadowSAINT-style
// ego-net extraction.
#ifndef KGNET_GML_SAMPLER_H_
#define KGNET_GML_SAMPLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gml/graph_data.h"
#include "tensor/rng.h"

namespace kgnet::gml {

/// A node-induced subgraph with local ids 0..nodes.size()-1.
struct Subgraph {
  /// Local -> original node id.
  std::vector<uint32_t> nodes;
  /// Edges with local endpoints (relation ids stay global).
  std::vector<Edge> edges;
  /// Original -> local.
  std::unordered_map<uint32_t, uint32_t> local_of;

  bool Contains(uint32_t orig) const { return local_of.count(orig) > 0; }
};

/// Precomputed incidence lists for fast neighbor expansion.
class AdjacencyList {
 public:
  explicit AdjacencyList(const GraphData& graph);

  /// Outgoing (src==v) and incoming (dst==v) edge indexes of `v`.
  const std::vector<uint32_t>& OutEdges(uint32_t v) const {
    return out_[v];
  }
  const std::vector<uint32_t>& InEdges(uint32_t v) const { return in_[v]; }

  /// Degree (in + out) of `v`.
  size_t Degree(uint32_t v) const { return out_[v].size() + in_[v].size(); }

  const std::vector<Edge>& edges() const { return *edges_; }

 private:
  const std::vector<Edge>* edges_;
  std::vector<std::vector<uint32_t>> out_;
  std::vector<std::vector<uint32_t>> in_;
};

/// GraphSAINT node sampler: draws `num_nodes` nodes with probability
/// proportional to degree (with replacement, deduplicated) and induces the
/// subgraph on them.
Subgraph SampleSaintSubgraph(const GraphData& graph, const AdjacencyList& adj,
                             size_t num_nodes, tensor::Rng* rng);

/// ShadowSAINT ego-net sampler: for each seed, performs a bounded
/// breadth-first expansion (`hops` levels, at most `neighbor_budget`
/// sampled neighbors per node) and unions the ego nets into one subgraph.
Subgraph SampleShadowSubgraph(const GraphData& graph, const AdjacencyList& adj,
                              const std::vector<uint32_t>& seeds, size_t hops,
                              size_t neighbor_budget, tensor::Rng* rng);

/// Builds per-relation row-normalized adjacencies local to `sub`
/// (2 x num_relations matrices of size |sub| x |sub|).
std::vector<tensor::CsrMatrix> BuildSubgraphAdjacencies(
    const Subgraph& sub, size_t num_relations);

}  // namespace kgnet::gml

#endif  // KGNET_GML_SAMPLER_H_
