// A two-layer relational graph convolutional network (RGCN) with manual
// gradients, reusable for full-batch training and for sampled subgraphs
// (GraphSAINT / ShadowSAINT mini-batches).
#ifndef KGNET_GML_RGCN_NET_H_
#define KGNET_GML_RGCN_NET_H_

#include <vector>

#include "tensor/csr_matrix.h"
#include "tensor/matrix.h"
#include "tensor/optimizer.h"
#include "tensor/rng.h"

namespace kgnet::gml {

/// RGCN propagation:
///   H1 = ReLU(X·Wself0 + Σ_r Â_r X·Wr0)
///   Z  = H1·Wself1 + Σ_r Â_r H1·Wr1
///
/// Â_r are row-normalized per-relation adjacencies (forward and inverse
/// directions are separate relations, as in Schlichtkrull et al.). The
/// classic implementation caches the per-relation messages Â_r·H for the
/// backward pass, which is what makes full-batch RGCN memory-hungry — the
/// behaviour the paper's Figures 13–15 measure.
class RgcnNet {
 public:
  /// `num_adj` is the number of adjacency matrices (2 x relations).
  RgcnNet(size_t in_dim, size_t hidden_dim, size_t out_dim, size_t num_adj,
          tensor::Rng* rng);

  /// Forward pass without gradient caching (inference).
  tensor::Matrix Forward(const std::vector<tensor::CsrMatrix>& adj,
                         const tensor::Matrix& x) const;

  /// One training step: forward with caches, softmax-CE loss on labeled
  /// rows, backward, Adam update. Returns the loss.
  float TrainStep(const std::vector<tensor::CsrMatrix>& adj,
                  const tensor::Matrix& x, const std::vector<int>& labels,
                  tensor::AdamOptimizer* opt);

  /// Registers all parameters with `opt`. Call once before TrainStep.
  void RegisterParams(tensor::AdamOptimizer* opt);

  size_t in_dim() const { return in_dim_; }
  size_t hidden_dim() const { return hidden_dim_; }
  size_t out_dim() const { return out_dim_; }
  size_t num_adj() const { return num_adj_; }

  /// Total parameter bytes.
  size_t ParamBytes() const;

 private:
  size_t in_dim_, hidden_dim_, out_dim_, num_adj_;
  tensor::Matrix wself0_, wself1_;
  std::vector<tensor::Matrix> wrel0_, wrel1_;
};

}  // namespace kgnet::gml

#endif  // KGNET_GML_RGCN_NET_H_
