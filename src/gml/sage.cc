#include "gml/sage.h"

#include <algorithm>

#include "gml/metrics.h"
#include "gml/train_util.h"
#include "tensor/memory_meter.h"
#include "tensor/optimizer.h"
#include "tensor/rng.h"

namespace kgnet::gml {

using tensor::CooEntry;
using tensor::CsrMatrix;
using tensor::Matrix;

tensor::CsrMatrix BuildHomogeneousSubgraphAdjacency(const Subgraph& sub) {
  std::vector<CooEntry> entries;
  entries.reserve(sub.edges.size() * 2);
  for (const Edge& e : sub.edges) {
    entries.push_back({e.dst, e.src, 1.0f});
    entries.push_back({e.src, e.dst, 1.0f});
  }
  CsrMatrix adj(sub.nodes.size(), sub.nodes.size(), std::move(entries));
  return adj.RowNormalized();
}

struct SageClassifier::Cache {
  Matrix z0;    // Â·X
  Matrix pre1;  // pre-activation of layer 1
  Matrix mask;  // ReLU mask
  Matrix h1;    // activations
  Matrix z1;    // Â·H1
};

Matrix SageClassifier::Forward(const CsrMatrix& adj, const Matrix& x,
                               Cache* cache) const {
  Matrix z0 = adj.SpMM(x);
  Matrix pre1 = Matrix::MatMul(x, wself0_);
  pre1.Add(Matrix::MatMul(z0, wnbr0_));
  Matrix mask;
  Matrix h1 = pre1;
  h1.ReluInPlace(&mask);
  Matrix z1 = adj.SpMM(h1);
  Matrix logits = Matrix::MatMul(h1, wself1_);
  logits.Add(Matrix::MatMul(z1, wnbr1_));
  if (cache != nullptr) {
    cache->z0 = std::move(z0);
    cache->pre1 = std::move(pre1);
    cache->mask = std::move(mask);
    cache->h1 = std::move(h1);
    cache->z1 = std::move(z1);
  }
  return logits;
}

Status SageClassifier::Train(const GraphData& graph,
                             const TrainConfig& config, TrainReport* report) {
  if (graph.num_classes == 0)
    return Status::InvalidArgument("graph carries no classification labels");
  tensor::PeakMemoryScope mem_scope;
  Stopwatch timer;
  tensor::Rng rng(config.seed);

  wself0_ = Matrix(graph.feature_dim, config.hidden_dim);
  wself0_.XavierInit(&rng);
  wnbr0_ = Matrix(graph.feature_dim, config.hidden_dim);
  wnbr0_.XavierInit(&rng);
  wself1_ = Matrix(config.hidden_dim, graph.num_classes);
  wself1_.XavierInit(&rng);
  wnbr1_ = Matrix(config.hidden_dim, graph.num_classes);
  wnbr1_.XavierInit(&rng);

  tensor::AdamOptimizer::Options aopts;
  aopts.lr = config.lr;
  tensor::AdamOptimizer opt(aopts);
  opt.Register(&wself0_);
  opt.Register(&wnbr0_);
  opt.Register(&wself1_);
  opt.Register(&wnbr1_);

  AdjacencyList adj_list(graph);
  const std::vector<int> valid_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.valid_idx);
  std::vector<uint32_t> train_nodes;
  for (uint32_t idx : graph.train_idx)
    train_nodes.push_back(graph.target_nodes[idx]);

  EarlyStopper stopper(config.patience);
  float loss = 0.0f;
  size_t epoch = 0;
  for (; epoch < config.epochs; ++epoch) {
    KGNET_RETURN_IF_ERROR(config.cancel.CheckNow());
    if (config.max_seconds > 0 && timer.Seconds() >= config.max_seconds)
      break;
    std::shuffle(train_nodes.begin(), train_nodes.end(), rng.generator());
    for (size_t start = 0; start < train_nodes.size();
         start += config.batch_size) {
      const size_t end =
          std::min(start + config.batch_size, train_nodes.size());
      std::vector<uint32_t> seeds(train_nodes.begin() + start,
                                  train_nodes.begin() + end);
      // Two-hop sampled neighborhood (SAGE fanout via neighbor budget).
      Subgraph sub =
          SampleShadowSubgraph(graph, adj_list, seeds, 2,
                               config.shadow_neighbor_budget, &rng);
      if (sub.nodes.empty()) continue;
      CsrMatrix adj = BuildHomogeneousSubgraphAdjacency(sub);
      std::vector<size_t> idx(sub.nodes.begin(), sub.nodes.end());
      Matrix x = graph.features.GatherRows(idx);
      std::vector<int> labels(sub.nodes.size(), -1);
      for (uint32_t s : seeds) {
        auto it = sub.local_of.find(s);
        if (it != sub.local_of.end()) labels[it->second] = graph.labels[s];
      }

      // ---- forward / backward ----
      Cache cache;
      Matrix logits = Forward(adj, x, &cache);
      Matrix dlogits;
      loss = tensor::SoftmaxCrossEntropy(logits, labels, &dlogits);

      Matrix dwself1 = Matrix::MatMulTransA(cache.h1, dlogits);
      Matrix dwnbr1 = Matrix::MatMulTransA(cache.z1, dlogits);
      // dH1 = dlogits·Wself1ᵀ + Âᵀ(dlogits·Wnbr1ᵀ)
      Matrix dh1 = Matrix::MatMulTransB(dlogits, wself1_);
      Matrix tmp = Matrix::MatMulTransB(dlogits, wnbr1_);
      dh1.Add(adj.SpMMTransposed(tmp));
      dh1.Hadamard(cache.mask);
      Matrix dwself0 = Matrix::MatMulTransA(x, dh1);
      Matrix dwnbr0 = Matrix::MatMulTransA(cache.z0, dh1);

      opt.Step({&dwself0, &dwnbr0, &dwself1, &dwnbr1});
    }

    // Validation on the valid nodes' sampled neighborhoods.
    std::vector<uint32_t> vnodes;
    for (uint32_t idx2 : graph.valid_idx)
      vnodes.push_back(graph.target_nodes[idx2]);
    if (!vnodes.empty()) {
      Subgraph vsub =
          SampleShadowSubgraph(graph, adj_list, vnodes, 2,
                               config.shadow_neighbor_budget, &rng);
      CsrMatrix adj = BuildHomogeneousSubgraphAdjacency(vsub);
      std::vector<size_t> idx(vsub.nodes.begin(), vsub.nodes.end());
      Matrix x = graph.features.GatherRows(idx);
      Matrix logits = Forward(adj, x, nullptr);
      std::vector<int> preds = ArgmaxRows(logits);
      std::vector<int> vlabels(vsub.nodes.size(), -1);
      for (uint32_t i = 0; i < vsub.nodes.size(); ++i) {
        const uint32_t orig = vsub.nodes[i];
        if (valid_labels[orig] >= 0) vlabels[i] = valid_labels[orig];
      }
      stopper.Update(Accuracy(preds, vlabels));
      if (stopper.Stop()) {
        ++epoch;
        break;
      }
    }
  }

  report->method = "Graph-SAGE";
  report->epochs_run = epoch;
  report->final_loss = loss;
  report->train_seconds = timer.Seconds();
  report->peak_memory_bytes =
      mem_scope.PeakBytes() + graph.StructureBytes();
  report->valid_metric = stopper.best();

  // Full-graph evaluation: the whole graph is one "subgraph".
  Subgraph full;
  full.nodes.resize(graph.num_nodes);
  for (uint32_t v = 0; v < graph.num_nodes; ++v) {
    full.nodes[v] = v;
    full.local_of.emplace(v, v);
  }
  full.edges = graph.edges;
  CsrMatrix adj = BuildHomogeneousSubgraphAdjacency(full);
  Stopwatch infer_timer;
  Matrix logits = Forward(adj, graph.features, nullptr);
  cached_predictions_ = ArgmaxRows(logits);
  const std::vector<int> test_labels =
      MaskLabels(graph.labels, graph.target_nodes, graph.test_idx);
  report->metric = Accuracy(cached_predictions_, test_labels);
  report->macro_f1 =
      MacroF1(cached_predictions_, test_labels, graph.num_classes);
  const size_t denom =
      graph.target_nodes.empty() ? 1 : graph.target_nodes.size();
  report->inference_us = infer_timer.Micros() / denom;
  return Status::OK();
}

std::vector<int> SageClassifier::Predict(const GraphData& graph,
                                         const std::vector<uint32_t>& nodes) {
  std::vector<int> out;
  out.reserve(nodes.size());
  for (uint32_t v : nodes)
    out.push_back(v < cached_predictions_.size() ? cached_predictions_[v]
                                                 : -1);
  (void)graph;
  return out;
}

}  // namespace kgnet::gml
