// MorsE-style inductive link prediction (Chen et al., SIGIR'22).
//
// MorsE learns *entity-independent* meta knowledge: an entity's embedding is
// produced from the relations incident to it, so the model transfers to
// unseen entities and can be trained on sampled sub-KGs. This implementation
// keeps that essence: e(v) = W · mean over incident (relation, direction)
// pairs of the relation type embedding, scored with TransE. Training uses
// edge-sampled mini-batches with negative sampling — cheap in memory, which
// is why the paper's Figure 15 shows such large full-KG vs KG' gaps.
#ifndef KGNET_GML_MORSE_H_
#define KGNET_GML_MORSE_H_

#include <vector>

#include "gml/model.h"
#include "tensor/matrix.h"

namespace kgnet::gml {

/// Inductive relation-meta link predictor.
class MorseModel : public LinkPredictor {
 public:
  Status Train(const GraphData& graph, const TrainConfig& config,
               TrainReport* report) override;

  float Score(uint32_t src, uint32_t rel, uint32_t dst) const override;

  std::vector<uint32_t> TopKTails(uint32_t src, uint32_t rel,
                                  size_t k) const override;

  std::vector<float> EntityEmbedding(uint32_t node) const override;

 private:
  /// Recomputes the derived entity embedding of `v` into `out`.
  void ComputeEntityEmbedding(uint32_t v, float* out) const;

  size_t dim_ = 0;
  size_t num_relations_ = 0;
  /// Relation type embeddings: row r = outgoing role, row R + r = incoming.
  tensor::Matrix rel_types_;
  /// Hashed structural anchor embeddings: node v contributes
  /// anchors_[hash(v) % kAnchorBuckets] to its aggregate. This stands in for
  /// MorsE's subgraph-conditioned GNN refinement, giving entities with equal
  /// relation signatures distinct embeddings while staying inductive in
  /// expectation (buckets are features of the node id hash, not learned per
  /// entity).
  tensor::Matrix anchors_;
  /// Relation embeddings used in scoring (TransE translation vectors).
  tensor::Matrix rel_scoring_;
  /// Linear refinement of aggregated embeddings (dim x dim).
  tensor::Matrix w_;
  /// Incident (role) relation lists per node; role = rel for outgoing,
  /// num_relations + rel for incoming.
  std::vector<std::vector<uint32_t>> incident_;
  /// Sampled (neighbor node, relation role) pairs per node. Neighbor
  /// anchor embeddings join the aggregation — the one-layer analogue of
  /// MorsE's GNN refinement — letting connected entities (e.g. co-authors
  /// through a shared paper) develop correlated embeddings, so link
  /// knowledge transfers to entities whose own task edges are held out.
  struct Neighbor {
    uint32_t node;
    uint32_t role;  // rel for outgoing, num_relations + rel for incoming
  };
  std::vector<std::vector<Neighbor>> neighbors_;
  /// Learned scalar gate per relation role: how much a neighbor reached
  /// through that role contributes. This is the scalar form of relational
  /// attention; it lets training silence uninformative edge types.
  std::vector<float> role_gate_;
  /// Materialized entity embeddings after training (for fast inference).
  tensor::Matrix entity_cache_;
};

}  // namespace kgnet::gml

#endif  // KGNET_GML_MORSE_H_
