// Small helpers shared by the trainers.
#ifndef KGNET_GML_TRAIN_UTIL_H_
#define KGNET_GML_TRAIN_UTIL_H_

#include <chrono>
#include <vector>

#include "tensor/matrix.h"

namespace kgnet::gml {

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Micros() const { return Seconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Row-wise argmax of a logits matrix.
inline std::vector<int> ArgmaxRows(const tensor::Matrix& logits) {
  std::vector<int> out(logits.rows());
  for (size_t i = 0; i < logits.rows(); ++i) {
    const float* row = logits.Row(i);
    int best = 0;
    for (size_t c = 1; c < logits.cols(); ++c)
      if (row[c] > row[best]) best = static_cast<int>(c);
    out[i] = best;
  }
  return out;
}

/// Builds a per-node label vector that keeps only the given fold
/// (indices into target_nodes); everything else is ignore (-1).
inline std::vector<int> MaskLabels(const std::vector<int>& labels,
                                   const std::vector<uint32_t>& target_nodes,
                                   const std::vector<uint32_t>& fold) {
  std::vector<int> out(labels.size(), -1);
  for (uint32_t idx : fold) {
    const uint32_t node = target_nodes[idx];
    out[node] = labels[node];
  }
  return out;
}

/// Early-stopping tracker: call Update(metric) per epoch; Stop() turns true
/// after `patience` epochs without improvement.
class EarlyStopper {
 public:
  explicit EarlyStopper(size_t patience) : patience_(patience) {}
  /// Returns true if `metric` improved the best value.
  bool Update(double metric) {
    if (metric > best_) {
      best_ = metric;
      stale_ = 0;
      return true;
    }
    ++stale_;
    return false;
  }
  bool Stop() const { return patience_ > 0 && stale_ >= patience_; }
  double best() const { return best_; }

 private:
  size_t patience_;
  size_t stale_ = 0;
  double best_ = -1.0;
};

}  // namespace kgnet::gml

#endif  // KGNET_GML_TRAIN_UTIL_H_
