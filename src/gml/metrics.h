// Evaluation metrics for GML tasks.
#ifndef KGNET_GML_METRICS_H_
#define KGNET_GML_METRICS_H_

#include <cstddef>
#include <vector>

namespace kgnet::gml {

/// Fraction of positions where predicted == expected (expected == -1 rows
/// are skipped).
double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected);

/// Macro-averaged F1 over `num_classes` classes.
double MacroF1(const std::vector<int>& predicted,
               const std::vector<int>& expected, size_t num_classes);

/// Mean reciprocal rank given 1-based ranks of the true answers.
double MeanReciprocalRank(const std::vector<size_t>& ranks);

/// Fraction of 1-based ranks <= k.
double HitsAtK(const std::vector<size_t>& ranks, size_t k);

}  // namespace kgnet::gml

#endif  // KGNET_GML_METRICS_H_
