// Full-batch RGCN node classifier.
#ifndef KGNET_GML_RGCN_H_
#define KGNET_GML_RGCN_H_

#include <memory>

#include "gml/model.h"
#include "gml/rgcn_net.h"

namespace kgnet::gml {

/// Full-propagation RGCN (Schlichtkrull et al.): trains a two-layer
/// relational GCN on the whole graph every epoch. Most accurate per epoch
/// on heterogeneous KGs but the heaviest in memory, since the per-relation
/// messages of the full graph are materialized for the backward pass.
class RgcnClassifier : public NodeClassifier {
 public:
  Status Train(const GraphData& graph, const TrainConfig& config,
               TrainReport* report) override;

  std::vector<int> Predict(const GraphData& graph,
                           const std::vector<uint32_t>& nodes) override;

 private:
  std::unique_ptr<RgcnNet> net_;
  std::vector<int> cached_predictions_;
};

}  // namespace kgnet::gml

#endif  // KGNET_GML_RGCN_H_
