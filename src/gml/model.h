// Common model interfaces and the training report shared by all methods.
#ifndef KGNET_GML_MODEL_H_
#define KGNET_GML_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "gml/graph_data.h"

namespace kgnet::gml {

/// The GML methods the platform can train (paper Figure 5 taxonomy subset
/// plus KGE methods).
enum class GmlMethod {
  kGcn,          // full-batch, homogeneous
  kRgcn,         // full-batch, relational
  kGraphSaint,   // sampled subgraph mini-batch (relational layers)
  kShadowSaint,  // ego-subgraph mini-batch (decoupled depth/scope)
  kGraphSage,    // homogeneous neighbor-sampling mini-batch (SAGE-mean)
  kMorse,        // inductive edge-sampling KGE (meta relation encoder)
  kTransE,       // translational KGE
  kDistMult,     // semantic-matching KGE
  kComplEx,      // complex-valued KGE
  kRotatE,       // rotational KGE
};

/// The GML task types KGNet supports.
enum class TaskType {
  kNodeClassification,
  kLinkPrediction,
  kEntitySimilarity,
};

const char* GmlMethodName(GmlMethod m);
const char* TaskTypeName(TaskType t);

/// Hyperparameters for one training run.
struct TrainConfig {
  size_t epochs = 40;
  float lr = 0.01f;
  size_t hidden_dim = 32;
  size_t embed_dim = 32;
  /// Mini-batch knobs (SAINT / Shadow / KGE / MorsE).
  size_t batch_size = 512;
  size_t saint_sample_nodes = 2048;
  size_t shadow_hops = 2;
  size_t shadow_neighbor_budget = 10;
  size_t negatives_per_positive = 4;
  /// Early stopping patience in epochs (0 disables).
  size_t patience = 8;
  uint64_t seed = 17;
  /// LP evaluation: number of sampled negative candidates per test edge
  /// (0 = rank against all entities).
  size_t eval_candidates = 100;
  /// LP evaluation scope: true ranks the true tail against
  /// destination-type instances only (hard, type-restricted protocol);
  /// false ranks against the whole entity set (OGB-style protocol, the
  /// one the paper's Figure 15 uses).
  bool eval_within_type = true;
  /// Wall-clock training budget in seconds (0 = unlimited). Trainers stop
  /// at the first epoch boundary past the budget — this is how KGNet's
  /// task *time budget* reaches the pipeline.
  double max_seconds = 0.0;
  /// Cooperative cancellation (common/cancel.h), polled (CheckNow, so a
  /// deadline is evaluated every epoch rather than on the per-row
  /// stride) at the same epoch boundaries as max_seconds; the default
  /// token is inert. Unlike
  /// the budget — which *keeps* the partially trained model — a tripped
  /// token makes Train() return its Cancelled/DeadlineExceeded status,
  /// so the pipeline registers nothing. This is how a draining server
  /// bounds an in-flight TrainGML (docs/RESILIENCE.md).
  common::CancelToken cancel;
};

/// What a training run produced (feeds KGMeta and the experiment tables).
struct TrainReport {
  std::string method;
  /// Primary metric: NC accuracy or LP Hits@10, in [0,1].
  double metric = 0.0;
  /// Secondary metrics.
  double macro_f1 = 0.0;
  double mrr = 0.0;
  double valid_metric = 0.0;
  double final_loss = 0.0;
  size_t epochs_run = 0;
  /// Wall-clock training seconds.
  double train_seconds = 0.0;
  /// Peak live tensor bytes during training (MemoryMeter).
  size_t peak_memory_bytes = 0;
  /// Mean per-instance inference latency in microseconds.
  double inference_us = 0.0;
};

/// A trained node classifier.
class NodeClassifier {
 public:
  virtual ~NodeClassifier() = default;

  /// Trains on `graph` (uses its splits); fills `report`.
  virtual Status Train(const GraphData& graph, const TrainConfig& config,
                       TrainReport* report) = 0;

  /// Predicted class per node in `nodes`.
  virtual std::vector<int> Predict(const GraphData& graph,
                                   const std::vector<uint32_t>& nodes) = 0;
};

/// A trained link predictor.
class LinkPredictor {
 public:
  virtual ~LinkPredictor() = default;

  virtual Status Train(const GraphData& graph, const TrainConfig& config,
                       TrainReport* report) = 0;

  /// Plausibility score of edge (src, rel, dst); higher is better.
  virtual float Score(uint32_t src, uint32_t rel, uint32_t dst) const = 0;

  /// Top-k most plausible tails for (src, rel, ?).
  virtual std::vector<uint32_t> TopKTails(uint32_t src, uint32_t rel,
                                          size_t k) const = 0;

  /// Entity embedding (for the embedding store); empty if unsupported.
  virtual std::vector<float> EntityEmbedding(uint32_t node) const = 0;
};

/// Factory: creates an untrained classifier for `method`
/// (kGcn/kRgcn/kGraphSaint/kShadowSaint).
Result<std::unique_ptr<NodeClassifier>> MakeNodeClassifier(GmlMethod method);

/// Factory: creates an untrained link predictor
/// (kTransE/kDistMult/kComplEx/kRotatE/kMorse).
Result<std::unique_ptr<LinkPredictor>> MakeLinkPredictor(GmlMethod method);

}  // namespace kgnet::gml

#endif  // KGNET_GML_MODEL_H_
