// Knowledge-graph-embedding link predictors: TransE, DistMult, ComplEx,
// RotatE — trained with negative sampling and manual sparse gradients.
#ifndef KGNET_GML_KGE_H_
#define KGNET_GML_KGE_H_

#include <vector>

#include "gml/model.h"
#include "tensor/matrix.h"

namespace kgnet::gml {

/// Scoring functions implemented by KgeModel.
enum class KgeScore {
  kTransE,    // -||h + r - t||_1
  kDistMult,  // <h, r, t>
  kComplEx,   // Re(<h, r, conj(t)>), dims split (real | imag)
  kRotatE,    // -||h ∘ e^{iθ_r} - t||_2, dims split (real | imag)
};

/// Shallow KGE link predictor with entity and relation embedding tables.
///
/// Training: for each positive training edge, draw
/// `negatives_per_positive` corrupted edges (tail or head replaced
/// uniformly) and minimize the logistic loss on +-1 targets. Updates are
/// sparse SGD touching only the sampled rows, which keeps the per-step cost
/// independent of graph size.
class KgeModel : public LinkPredictor {
 public:
  explicit KgeModel(KgeScore score) : score_(score) {}

  Status Train(const GraphData& graph, const TrainConfig& config,
               TrainReport* report) override;

  float Score(uint32_t src, uint32_t rel, uint32_t dst) const override;

  std::vector<uint32_t> TopKTails(uint32_t src, uint32_t rel,
                                  size_t k) const override;

  std::vector<float> EntityEmbedding(uint32_t node) const override;

  KgeScore score_kind() const { return score_; }

 private:
  /// Gradient of the score wrt h, r, t; returns the score.
  float ScoreWithGrad(const float* h, const float* r, const float* t,
                      float* gh, float* gr, float* gt) const;

  KgeScore score_;
  size_t dim_ = 0;
  tensor::Matrix entities_;   // num_nodes x dim
  tensor::Matrix relations_;  // num_relations x dim
};

/// Ranks of true tails among corrupted candidates; shared by KGE and MorsE
/// evaluation. Candidates come from graph.destination_candidates when
/// `within_type` is set and the pool is non-empty, else from all entities.
/// Ties receive their expected (mid) rank. Returns 1-based ranks per edge.
std::vector<size_t> RankTestEdges(
    const LinkPredictor& model, const GraphData& graph,
    const std::vector<Edge>& test_edges, size_t eval_candidates,
    uint64_t seed, bool within_type = true);

}  // namespace kgnet::gml

#endif  // KGNET_GML_KGE_H_
