#include "gml/model.h"

#include <memory>

#include "gml/gcn.h"
#include "gml/kge.h"
#include "gml/morse.h"
#include "gml/rgcn.h"
#include "gml/sage.h"
#include "gml/saint.h"

namespace kgnet::gml {

const char* GmlMethodName(GmlMethod m) {
  switch (m) {
    case GmlMethod::kGcn:
      return "GCN";
    case GmlMethod::kRgcn:
      return "RGCN";
    case GmlMethod::kGraphSaint:
      return "Graph-SAINT";
    case GmlMethod::kShadowSaint:
      return "Shadow-SAINT";
    case GmlMethod::kGraphSage:
      return "Graph-SAGE";
    case GmlMethod::kMorse:
      return "MorsE";
    case GmlMethod::kTransE:
      return "TransE";
    case GmlMethod::kDistMult:
      return "DistMult";
    case GmlMethod::kComplEx:
      return "ComplEx";
    case GmlMethod::kRotatE:
      return "RotatE";
  }
  return "unknown";
}

const char* TaskTypeName(TaskType t) {
  switch (t) {
    case TaskType::kNodeClassification:
      return "NodeClassification";
    case TaskType::kLinkPrediction:
      return "LinkPrediction";
    case TaskType::kEntitySimilarity:
      return "EntitySimilarity";
  }
  return "unknown";
}

Result<std::unique_ptr<NodeClassifier>> MakeNodeClassifier(GmlMethod method) {
  switch (method) {
    case GmlMethod::kGcn:
      return std::unique_ptr<NodeClassifier>(std::make_unique<GcnClassifier>());
    case GmlMethod::kRgcn:
      return std::unique_ptr<NodeClassifier>(std::make_unique<RgcnClassifier>());
    case GmlMethod::kGraphSaint:
      return std::unique_ptr<NodeClassifier>(
          std::make_unique<GraphSaintClassifier>());
    case GmlMethod::kShadowSaint:
      return std::unique_ptr<NodeClassifier>(
          std::make_unique<ShadowSaintClassifier>());
    case GmlMethod::kGraphSage:
      return std::unique_ptr<NodeClassifier>(std::make_unique<SageClassifier>());
    default:
      return Status::InvalidArgument(
          std::string(GmlMethodName(method)) +
          " is not a node-classification method");
  }
}

Result<std::unique_ptr<LinkPredictor>> MakeLinkPredictor(GmlMethod method) {
  switch (method) {
    case GmlMethod::kTransE:
      return std::unique_ptr<LinkPredictor>(
          std::make_unique<KgeModel>(KgeScore::kTransE));
    case GmlMethod::kDistMult:
      return std::unique_ptr<LinkPredictor>(
          std::make_unique<KgeModel>(KgeScore::kDistMult));
    case GmlMethod::kComplEx:
      return std::unique_ptr<LinkPredictor>(
          std::make_unique<KgeModel>(KgeScore::kComplEx));
    case GmlMethod::kRotatE:
      return std::unique_ptr<LinkPredictor>(
          std::make_unique<KgeModel>(KgeScore::kRotatE));
    case GmlMethod::kMorse:
      return std::unique_ptr<LinkPredictor>(std::make_unique<MorseModel>());
    default:
      return Status::InvalidArgument(std::string(GmlMethodName(method)) +
                                     " is not a link-prediction method");
  }
}

}  // namespace kgnet::gml
