// Query engine: executes parsed queries against a TripleStore.
#ifndef KGNET_SPARQL_ENGINE_H_
#define KGNET_SPARQL_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/udf_registry.h"

namespace kgnet::sparql {

/// The materialized answer of a query.
struct QueryResult {
  /// Projected column names (without '?').
  std::vector<std::string> columns;
  /// One row per solution; decoded terms, aligned with `columns`.
  std::vector<std::vector<rdf::Term>> rows;
  /// For ASK queries.
  bool ask_result = false;
  /// For updates: triples added / removed.
  size_t num_inserted = 0;
  size_t num_deleted = 0;

  size_t NumRows() const { return rows.size(); }

  /// Index of a column or -1.
  int ColumnIndex(std::string_view name) const;

  /// Renders an aligned table (tests / examples).
  std::string ToTable() const;
};

/// Executes SPARQL queries against a single TripleStore.
///
/// The engine plans basic graph patterns greedily: at each step it picks the
/// remaining triple pattern with the lowest estimated cardinality given the
/// variables already bound, then performs an indexed nested-loop join.
/// FILTERs are applied as soon as every variable they mention is bound.
class QueryEngine {
 public:
  explicit QueryEngine(rdf::TripleStore* store) : store_(store) {}

  /// Parses and executes `text`.
  Result<QueryResult> ExecuteString(std::string_view text);

  /// Executes an already-parsed query.
  Result<QueryResult> Execute(const Query& query);

  /// Estimated number of solutions of the WHERE clause of `query`
  /// (product of per-pattern estimates after greedy ordering; an upper
  /// bound used by the SPARQL-ML optimizer).
  size_t EstimateWhereCardinality(const Query& query) const;

  UdfRegistry& udfs() { return udfs_; }
  rdf::TripleStore* store() { return store_; }

 private:
  rdf::TripleStore* store_;
  UdfRegistry udfs_;
};

}  // namespace kgnet::sparql

#endif  // KGNET_SPARQL_ENGINE_H_
