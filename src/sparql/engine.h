// Query engine: executes parsed queries against a TripleStore.
#ifndef KGNET_SPARQL_ENGINE_H_
#define KGNET_SPARQL_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/udf_registry.h"

namespace kgnet::sparql {

/// The materialized answer of a query.
struct QueryResult {
  /// Projected column names (without '?').
  std::vector<std::string> columns;
  /// One row per solution; decoded terms, aligned with `columns`.
  std::vector<std::vector<rdf::Term>> rows;
  /// For ASK queries.
  bool ask_result = false;
  /// For updates: triples added / removed.
  size_t num_inserted = 0;
  size_t num_deleted = 0;

  size_t NumRows() const { return rows.size(); }

  /// Index of a column or -1.
  int ColumnIndex(std::string_view name) const;

  /// Renders an aligned table (tests / examples).
  std::string ToTable() const;
};

/// How Execute() evaluates basic graph patterns.
enum class ExecMode {
  /// Volcano-style streaming operator tree from the cost-based planner
  /// (sparql/plan.h): merge/hash/bind joins over sorted index cursors,
  /// LIMIT stops the scans early. The default.
  kStreaming,
  /// The legacy evaluator: greedy indexed nested-loop joins with fully
  /// materialized intermediates. Kept as a reference implementation for
  /// differential tests and old-vs-new benchmarks.
  kMaterialized,
};

/// Per-query execution report: the EXPLAIN-style plan plus runtime
/// counters (tests assert that LIMIT short-circuits rows_scanned).
struct ExecInfo {
  /// Rendered operator tree of the WHERE clause. Only populated on the
  /// streaming SELECT/ASK path (UNION/OPTIONAL included); empty in
  /// kMaterialized mode and for updates.
  std::string plan;
  /// Matching triples pulled out of index cursors across the whole query.
  size_t rows_scanned = 0;
  /// The storage epoch the query's snapshot observed and the number of
  /// uncompacted delta entries it merged over the run generation (see
  /// rdf::Snapshot) — every read in the query saw exactly this epoch.
  uint64_t snapshot_epoch = 0;
  size_t snapshot_delta = 0;
  /// Cancellation polls performed during execution (0 when the caller
  /// supplied no token). Tests assert that long scans poll often enough
  /// for a deadline to bite mid-query (docs/RESILIENCE.md).
  uint64_t cancel_checks = 0;
};

/// Executes SPARQL queries against a single TripleStore.
///
/// Basic graph patterns are compiled by a cost-based planner into a
/// streaming operator tree (IndexScan over the six sorted permutation
/// indexes, SortMergeJoin when both inputs stream in the same
/// shared-variable order, BindJoin for selective outers, a lazily-built
/// symmetric HashJoin as the fallback). FILTERs apply at the lowest
/// operator where every variable they mention is bound; SELECT/ASK
/// results stream — UNION and OPTIONAL groups included, via UnionAll and
/// LeftOuterJoin operators — so LIMIT queries stop scanning early.
///
/// Single-triple-pattern SELECT/ASK queries (no FILTER/UNION/OPTIONAL/
/// sub-SELECT) skip the operator tree entirely and answer from one
/// index cursor — planning such a query costs more than running it.
/// Pass an ExecInfo to see (and execute) the full planned tree instead.
class QueryEngine {
 public:
  explicit QueryEngine(rdf::TripleStore* store) : store_(store) {}

  /// Parses and executes `text`.
  Result<QueryResult> ExecuteString(std::string_view text);

  /// Executes an already-parsed query against a snapshot opened at call
  /// time. `info`, when non-null, receives the chosen plan and runtime
  /// counters.
  Result<QueryResult> Execute(const Query& query, ExecInfo* info = nullptr);

  /// Executes an already-parsed query against an explicit storage
  /// snapshot — all reads (planner estimates, scans, sub-SELECTs) see
  /// that epoch even if the store has mutated since it was opened.
  /// Updates (INSERT/DELETE) still apply to the live store. `cancel`,
  /// when valid, is polled per pulled row: a tripped token aborts the
  /// query with Cancelled/DeadlineExceeded instead of finishing the
  /// scan (the serving layer's deadline/drain path).
  Result<QueryResult> Execute(const Query& query, const rdf::Snapshot& snapshot,
                              ExecInfo* info = nullptr,
                              common::CancelToken cancel = {});

  /// Renders the physical plan the streaming executor would use for the
  /// WHERE clause of `query` (plus Project/Limit wrappers for SELECT)
  /// without executing it — the plain-SPARQL analogue of EXPLAIN.
  Result<std::string> Explain(const Query& query);

  /// Parses `text` and renders its plan.
  Result<std::string> ExplainString(std::string_view text);

  /// Estimated number of solutions of the WHERE clause of `query`
  /// (product of per-pattern estimates after greedy ordering; an upper
  /// bound used by the SPARQL-ML optimizer).
  size_t EstimateWhereCardinality(const Query& query) const;

  ExecMode exec_mode() const { return mode_; }
  void set_exec_mode(ExecMode mode) { mode_ = mode; }

  UdfRegistry& udfs() { return udfs_; }
  rdf::TripleStore* store() { return store_; }

 private:
  rdf::TripleStore* store_;
  UdfRegistry udfs_;
  ExecMode mode_ = ExecMode::kStreaming;
};

}  // namespace kgnet::sparql

#endif  // KGNET_SPARQL_ENGINE_H_
