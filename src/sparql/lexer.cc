#include "sparql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace kgnet::sparql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  // A function-local magic static (not a leaked `new`): nothing in this
  // process touches keywords during static destruction, and the in-place
  // value keeps kgnet_lint's naked-new rule meaningful for arena code.
  static const std::unordered_set<std::string> kKeywords{
      "SELECT", "WHERE",  "PREFIX", "FILTER", "INSERT", "DELETE",
      "DISTINCT", "LIMIT", "OFFSET", "ASK",   "AS",     "DATA",
      "INTO",   "FROM",   "ORDER",  "BY",     "ASC",    "DESC",
      "COUNT",  "TRUE",   "FALSE",  "OPTIONAL", "UNION", "A",
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
// Characters allowed inside the local part of a prefixed name. Dots are
// allowed mid-name (sql:UDFS.getNodeClass) but a trailing dot terminates a
// triple, so the caller trims it.
bool IsPnameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view in) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = in.size();
  while (i < n) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments run to end of line.
    if (c == '#') {
      while (i < n && in[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (c == '<') {
      // IRI if a '>' appears before any whitespace; otherwise an operator.
      size_t j = i + 1;
      bool is_iri = false;
      while (j < n && !std::isspace(static_cast<unsigned char>(in[j]))) {
        if (in[j] == '>') {
          is_iri = true;
          break;
        }
        ++j;
      }
      if (is_iri) {
        out.push_back({TokenKind::kIri,
                       std::string(in.substr(i + 1, j - i - 1)), start, ""});
        i = j + 1;
        continue;
      }
      if (i + 1 < n && in[i + 1] == '=') {
        out.push_back({TokenKind::kPunct, "<=", start, ""});
        i += 2;
      } else {
        out.push_back({TokenKind::kPunct, "<", start, ""});
        ++i;
      }
      continue;
    }
    if (c == '?' || c == '$') {
      size_t j = i + 1;
      while (j < n && IsIdentChar(in[j])) ++j;
      if (j == i + 1)
        return Status::ParseError("empty variable name at offset " +
                                  std::to_string(i));
      out.push_back({TokenKind::kVar,
                     std::string(in.substr(i + 1, j - i - 1)), start, ""});
      i = j;
      continue;
    }
    if (c == '"') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (in[j] == '\\' && j + 1 < n) {
          char e = in[j + 1];
          value += (e == 'n' ? '\n' : e == 't' ? '\t' : e == 'r' ? '\r' : e);
          j += 2;
          continue;
        }
        if (in[j] == '"') {
          closed = true;
          ++j;
          break;
        }
        value += in[j];
        ++j;
      }
      if (!closed)
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(i));
      std::string extra;
      if (j + 2 < n && in[j] == '^' && in[j + 1] == '^' && in[j + 2] == '<') {
        const size_t close_iri = in.find('>', j + 3);
        if (close_iri == std::string_view::npos)
          return Status::ParseError("unterminated datatype IRI at offset " +
                                    std::to_string(j));
        extra = std::string(in.substr(j + 3, close_iri - j - 3));
        j = close_iri + 1;
      } else if (j < n && in[j] == '@') {
        size_t end_tag = j + 1;
        while (end_tag < n &&
               (std::isalnum(static_cast<unsigned char>(in[end_tag])) ||
                in[end_tag] == '-'))
          ++end_tag;
        extra = "@" + std::string(in.substr(j + 1, end_tag - j - 1));
        j = end_tag;
      }
      out.push_back({TokenKind::kString, std::move(value), start,
                     std::move(extra)});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      size_t j = i + 1;
      bool seen_dot = false;
      while (j < n) {
        if (in[j] == '.' && !seen_dot && j + 1 < n &&
            std::isdigit(static_cast<unsigned char>(in[j + 1]))) {
          seen_dot = true;
          ++j;
        } else if (std::isdigit(static_cast<unsigned char>(in[j]))) {
          ++j;
        } else {
          break;
        }
      }
      out.push_back({TokenKind::kNumber, std::string(in.substr(i, j - i)),
                     start, ""});
      i = j;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(in[j])) ++j;
      // Prefixed name? ident ':' pname-local
      if (j < n && in[j] == ':') {
        size_t k = j + 1;
        while (k < n && IsPnameChar(in[k])) ++k;
        // A trailing '.' belongs to the triple terminator, not the name.
        while (k > j + 1 && in[k - 1] == '.') --k;
        out.push_back({TokenKind::kPname,
                       std::string(in.substr(i, k - i)), start, ""});
        i = k;
        continue;
      }
      std::string word(in.substr(i, j - i));
      std::string upper;
      for (char w : word)
        upper += static_cast<char>(std::toupper(static_cast<unsigned char>(w)));
      if (Keywords().count(upper)) {
        out.push_back({TokenKind::kKeyword, upper, start, ""});
      } else {
        out.push_back({TokenKind::kIdent, std::move(word), start, ""});
      }
      i = j;
      continue;
    }
    // Bare ':' starts a default-prefixed name (":local").
    if (c == ':') {
      size_t k = i + 1;
      while (k < n && IsPnameChar(in[k])) ++k;
      while (k > i + 1 && in[k - 1] == '.') --k;
      out.push_back({TokenKind::kPname, std::string(in.substr(i, k - i)),
                     start, ""});
      i = k;
      continue;
    }
    // Multi-char operators.
    if (c == '!' && i + 1 < n && in[i + 1] == '=') {
      out.push_back({TokenKind::kPunct, "!=", start, ""});
      i += 2;
      continue;
    }
    if (c == '>' && i + 1 < n && in[i + 1] == '=') {
      out.push_back({TokenKind::kPunct, ">=", start, ""});
      i += 2;
      continue;
    }
    if (c == '&' && i + 1 < n && in[i + 1] == '&') {
      out.push_back({TokenKind::kPunct, "&&", start, ""});
      i += 2;
      continue;
    }
    if (c == '|' && i + 1 < n && in[i + 1] == '|') {
      out.push_back({TokenKind::kPunct, "||", start, ""});
      i += 2;
      continue;
    }
    if (std::string_view("{}().,;*=>!").find(c) != std::string_view::npos) {
      out.push_back({TokenKind::kPunct, std::string(1, c), start, ""});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  out.push_back({TokenKind::kEof, "", n, ""});
  return out;
}

}  // namespace kgnet::sparql
