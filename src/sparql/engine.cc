#include "sparql/engine.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "sparql/exec.h"
#include "sparql/parser.h"
#include "sparql/plan.h"

namespace kgnet::sparql {

namespace {

using rdf::kNullTermId;
using rdf::Term;
using rdf::TermId;
using rdf::Triple;
using rdf::TriplePattern;

/// Legacy evaluator: the BGP of `gp` (with eager FILTER application)
/// starting from `seeds`, by greedy indexed nested-loop joins with fully
/// materialized intermediates. Kept verbatim as the reference
/// implementation behind ExecMode::kMaterialized.
Status EvalPatternsLegacy(const GraphPattern& gp, EvalContext* ctx,
                          std::vector<Solution> seeds,
                          std::vector<Solution>* out) {
  std::vector<CompiledPattern> patterns;
  patterns.reserve(gp.triples.size());
  for (const auto& pt : gp.triples)
    patterns.push_back(CompilePattern(pt, ctx));

  // Pre-resolve filter variable slots.
  struct CompiledFilter {
    ExprPtr expr;
    std::vector<int> slots;
    bool applied = false;
  };
  std::vector<CompiledFilter> filters;
  for (const auto& f : gp.filters) {
    CompiledFilter cf;
    cf.expr = f;
    std::set<std::string> names;
    CollectExprVars(f, &names);
    for (const auto& n : names) cf.slots.push_back(ctx->vars.SlotOf(n));
    filters.push_back(std::move(cf));
  }

  // Resize seed solutions to the full variable count.
  const size_t nvars = ctx->vars.size();
  for (auto& s : seeds) s.resize(nvars, kNullTermId);

  std::vector<bool> used(patterns.size(), false);

  // Recursive greedy join.
  struct Rec {
    EvalContext* ctx;
    const std::vector<CompiledPattern>& patterns;
    std::vector<CompiledFilter>& filters;
    std::vector<bool>& used;
    std::vector<Solution>* out;
    Status status = Status::OK();

    bool FiltersPass(Solution& sol, std::vector<bool>& applied) {
      for (size_t i = 0; i < filters.size(); ++i) {
        if (applied[i]) continue;
        bool ready = true;
        for (int slot : filters[i].slots) {
          if (sol[slot] == kNullTermId) {
            ready = false;
            break;
          }
        }
        if (!ready) continue;
        auto v = EvalExpr(filters[i].expr, ctx, sol);
        if (!v.ok()) {
          status = v.status();
          return false;
        }
        applied[i] = true;
        if (!EffectiveBool(*v)) return false;
      }
      return true;
    }

    void Run(Solution& sol, std::vector<bool>& applied, size_t remaining) {
      if (!status.ok()) return;
      if (remaining == 0) {
        out->push_back(sol);
        return;
      }
      // Pick the cheapest unused pattern under the current bindings.
      int best = -1;
      size_t best_card = SIZE_MAX;
      for (size_t i = 0; i < patterns.size(); ++i) {
        if (used[i]) continue;
        TriplePattern bound = BindPattern(patterns[i], sol);
        size_t card = ctx->snapshot.EstimateCardinality(bound);
        if (card < best_card) {
          best_card = card;
          best = static_cast<int>(i);
        }
      }
      const CompiledPattern& cp = patterns[best];
      used[best] = true;
      TriplePattern bound = BindPattern(cp, sol);
      ctx->snapshot.Scan(bound, [&](const Triple& t) {
        // Cancellation poll: the legacy evaluator's only long-running
        // loop is this scan callback.
        Status cs = ctx->cancel.Check();
        if (!cs.ok()) {
          status = std::move(cs);
          return false;
        }
        // Bind free positions; check join consistency for repeated vars.
        TermId olds = cp.s_slot >= 0 ? sol[cp.s_slot] : kNullTermId;
        TermId oldp = cp.p_slot >= 0 ? sol[cp.p_slot] : kNullTermId;
        TermId oldo = cp.o_slot >= 0 ? sol[cp.o_slot] : kNullTermId;
        if (cp.s_slot >= 0) sol[cp.s_slot] = t.s;
        if (cp.p_slot >= 0) sol[cp.p_slot] = t.p;
        if (cp.o_slot >= 0) sol[cp.o_slot] = t.o;
        // Repeated-variable consistency (e.g. ?x <cites> ?x): after all
        // assignments, every position must still see its own value.
        bool consistent = (cp.s_slot < 0 || sol[cp.s_slot] == t.s) &&
                          (cp.p_slot < 0 || sol[cp.p_slot] == t.p) &&
                          (cp.o_slot < 0 || sol[cp.o_slot] == t.o);
        if (consistent) {
          std::vector<bool> applied_copy = applied;
          if (FiltersPass(sol, applied_copy)) {
            Run(sol, applied_copy, remaining - 1);
          }
        }
        if (cp.s_slot >= 0) sol[cp.s_slot] = olds;
        if (cp.p_slot >= 0) sol[cp.p_slot] = oldp;
        if (cp.o_slot >= 0) sol[cp.o_slot] = oldo;
        return status.ok();
      });
      used[best] = false;
    }
  };

  Rec rec{ctx, patterns, filters, used, out};
  for (auto& seed : seeds) {
    std::vector<bool> applied(filters.size(), false);
    if (patterns.empty()) {
      // Filters may still apply to seed bindings.
      std::vector<bool> ac = applied;
      if (rec.FiltersPass(seed, ac)) out->push_back(seed);
    } else {
      rec.Run(seed, applied, patterns.size());
    }
    if (!rec.status.ok()) return rec.status;
  }
  return Status::OK();
}

/// Streaming evaluator: plans the BGP with the cost-based planner and
/// drains the operator tree into `out`. Nobody renders this plan, so the
/// description tree is skipped.
Status EvalPatternsStreaming(const GraphPattern& gp, EvalContext* ctx,
                             const std::vector<Solution>& seeds,
                             std::vector<Solution>* out, ExecStats* stats) {
  Plan plan =
      PlanBasicGraphPattern(gp, ctx, &seeds, stats, /*build_desc=*/false);
  plan.exec->Open(Solution(plan.width, kNullTermId));
  Solution row(plan.width, kNullTermId);
  while (plan.exec->Next(&row)) out->push_back(row);
  return plan.exec->status();
}

Status EvalPatterns(const GraphPattern& gp, EvalContext* ctx,
                    std::vector<Solution> seeds, std::vector<Solution>* out,
                    bool streaming, ExecStats* stats) {
  if (streaming) return EvalPatternsStreaming(gp, ctx, seeds, out, stats);
  return EvalPatternsLegacy(gp, ctx, std::move(seeds), out);
}

/// Evaluates a full group pattern: BGP + filters, then UNION chains, then
/// OPTIONAL left-joins. Returns the solution set (each padded to the
/// current variable-table size).
Status EvalGroup(const GraphPattern& gp, EvalContext* ctx,
                 std::vector<Solution> seeds, std::vector<Solution>* out,
                 bool streaming, ExecStats* stats) {
  std::vector<Solution> sols;
  KGNET_RETURN_IF_ERROR(
      EvalPatterns(gp, ctx, std::move(seeds), &sols, streaming, stats));

  // UNION chains: each group multiplies the solution set by its matching
  // alternatives.
  for (const auto& alternatives : gp.unions) {
    std::vector<Solution> merged;
    for (const GraphPattern& alt : alternatives) {
      std::vector<Solution> branch;
      KGNET_RETURN_IF_ERROR(
          EvalGroup(alt, ctx, sols, &branch, streaming, stats));
      merged.insert(merged.end(), branch.begin(), branch.end());
    }
    sols = std::move(merged);
  }

  // OPTIONAL groups: left join — keep the original solution when the
  // optional pattern has no match.
  for (const GraphPattern& opt : gp.optionals) {
    std::vector<Solution> joined;
    for (auto& sol : sols) {
      std::vector<Solution> ext;
      KGNET_RETURN_IF_ERROR(
          EvalGroup(opt, ctx, {sol}, &ext, streaming, stats));
      if (ext.empty()) {
        joined.push_back(std::move(sol));
      } else {
        joined.insert(joined.end(), ext.begin(), ext.end());
      }
    }
    sols = std::move(joined);
  }

  // Nested evaluation may have grown the variable table.
  const size_t nvars = ctx->vars.size();
  for (auto& s : sols) s.resize(nvars, kNullTermId);
  out->insert(out->end(), sols.begin(), sols.end());
  return Status::OK();
}

/// Binds the free positions of `cp` from `t` into `sol`; false when a
/// repeated variable (e.g. ?x <p> ?x) sees two different ids.
bool BindTripleIntoSolution(const CompiledPattern& cp, const Triple& t,
                            Solution* sol) {
  if (cp.s_slot >= 0) (*sol)[cp.s_slot] = t.s;
  if (cp.p_slot >= 0) (*sol)[cp.p_slot] = t.p;
  if (cp.o_slot >= 0) (*sol)[cp.o_slot] = t.o;
  return (cp.s_slot < 0 || (*sol)[cp.s_slot] == t.s) &&
         (cp.p_slot < 0 || (*sol)[cp.p_slot] == t.p) &&
         (cp.o_slot < 0 || (*sol)[cp.o_slot] == t.o);
}

std::string RowKey(const std::vector<Term>& row) {
  std::string key;
  for (const Term& t : row) {
    key += t.EncodeKey();
    key += '\x02';
  }
  return key;
}

/// The effective projection list: explicit SELECT items, or one bare-var
/// item per registered variable for SELECT *.
std::vector<SelectItem> ProjectionItems(const Query& query,
                                        const EvalContext& ctx) {
  std::vector<SelectItem> items = query.select;
  if (query.select_all) {
    for (size_t i = 0; i < ctx.vars.size(); ++i) {
      SelectItem it;
      it.expr = Expr::Var(ctx.vars.name(static_cast<int>(i)));
      it.alias = ctx.vars.name(static_cast<int>(i));
      items.push_back(std::move(it));
    }
  }
  return items;
}

/// Evaluates one projected row; unbound variables become explicit
/// Term::Undef() cells — never an empty literal, which a row could
/// genuinely bind (DISTINCT and serialization must tell them apart).
Result<std::vector<Term>> ProjectRow(const std::vector<SelectItem>& items,
                                     EvalContext* ctx, const Solution& sol) {
  std::vector<Term> row;
  row.reserve(items.size());
  for (const auto& it : items) {
    auto v = EvalExpr(it.expr, ctx, sol);
    if (!v.ok()) {
      if (v.status().code() == StatusCode::kFailedPrecondition) {
        // Unbound variable in projection: explicit unbound cell.
        row.push_back(Term::Undef());
        continue;
      }
      return v.status();
    }
    row.push_back(std::move(*v));
  }
  return row;
}

/// Drains `next` (one full-width solution per call) into `result`,
/// applying the query's projection, then DISTINCT, then OFFSET, then
/// LIMIT — in that order. Shared by the operator-tree streaming path and
/// the single-pattern fast path below, so the two row pipelines cannot
/// drift apart semantically.
Status DrainSelectRows(const Query& query, EvalContext* ctx,
                       const std::vector<SelectItem>& items,
                       const std::function<bool(Solution*)>& next,
                       Solution* sol, QueryResult* result) {
  std::unordered_set<std::string> seen;
  size_t skipped = 0;
  while ((query.limit < 0 ||
          result->rows.size() < static_cast<size_t>(query.limit)) &&
         next(sol)) {
    // Cancellation poll per drained row: covers the single-pattern fast
    // path (whose cursor loop has no operator underneath) and catches a
    // trip between operator pulls on the streaming path.
    KGNET_RETURN_IF_ERROR(ctx->cancel.Check());
    auto row = ProjectRow(items, ctx, *sol);
    if (!row.ok()) return row.status();
    if (query.distinct && !seen.insert(RowKey(*row)).second) continue;
    if (static_cast<int64_t>(skipped) < query.offset) {
      ++skipped;
      continue;
    }
    result->rows.push_back(std::move(*row));
  }
  return Status::OK();
}

/// Single-pattern fast path: a streaming SELECT/ASK whose WHERE clause
/// is one triple pattern — fully or near bound in practice — and no
/// FILTER/UNION/OPTIONAL/sub-SELECT needs no operator tree: the answer
/// is exactly one index range. For such queries the planner's work
/// (per-index range probes, operator and description allocation) costs
/// more than the scan itself — BENCH_queryopt's `selective` shape lost
/// to the legacy evaluator on planning overhead alone — so Execute()
/// answers them straight from a TripleStore cursor. Semantics are
/// identical to the operator tree: repeated-variable consistency,
/// DISTINCT-before-OFFSET, LIMIT, and projection all mirror the
/// streaming path (the differential oracle suite covers this path for
/// every single-pattern case it generates).
Result<QueryResult> ExecuteSinglePattern(const Query& query,
                                         EvalContext* ctx) {
  const CompiledPattern cp = CompilePattern(query.where.triples[0], ctx);
  const size_t width = ctx->vars.size();
  Solution sol(width, kNullTermId);
  const TriplePattern consts = BindPattern(cp, sol);
  const rdf::Snapshot& snapshot = ctx->snapshot;
  rdf::TripleCursor cursor =
      snapshot.OpenCursor(snapshot.ChooseIndex(consts), consts);

  // One matching, consistently-bound solution per call.
  auto next = [&](Solution* s) {
    Triple t;
    while (cursor.Next(&t)) {
      std::fill(s->begin(), s->end(), kNullTermId);
      if (BindTripleIntoSolution(cp, t, s)) return true;
    }
    return false;
  };

  QueryResult result;
  if (query.kind == QueryKind::kAsk) {
    result.ask_result = next(&sol);
    return result;
  }

  std::vector<SelectItem> items = ProjectionItems(query, *ctx);
  for (const auto& it : items) result.columns.push_back(it.alias);
  KGNET_RETURN_IF_ERROR(
      DrainSelectRows(query, ctx, items, next, &sol, &result));
  return result;
}

/// Wraps the WHERE-clause plan in Project/Limit nodes and renders it.
std::string DescribePlan(std::unique_ptr<PlanNode> desc, const Query& query) {
  std::unique_ptr<PlanNode> root = std::move(desc);
  if (query.kind == QueryKind::kSelect) {
    std::string cols;
    if (query.distinct) cols = "distinct ";
    if (query.select_all) {
      cols += "*";
    } else {
      for (size_t i = 0; i < query.select.size(); ++i) {
        if (i > 0) cols += ' ';
        cols += '?';
        cols += query.select[i].alias;
      }
    }
    root = MakePlanNode(PlanNode::Kind::kProject, "Project(" + cols + ")",
                        std::move(root));
    if (query.limit >= 0 || query.offset > 0) {
      std::string label = "Limit(";
      label += query.limit >= 0 ? std::to_string(query.limit) : "all";
      if (query.offset > 0)
        label += " offset=" + std::to_string(query.offset);
      label += ")";
      root = MakePlanNode(PlanNode::Kind::kLimit, std::move(label),
                          std::move(root));
    }
  }
  return RenderPlanTree(*root);
}

}  // namespace

int QueryResult::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i)
    if (columns[i] == name) return static_cast<int>(i);
  return -1;
}

std::string QueryResult::ToTable() const {
  std::vector<size_t> width(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t i = 0; i < columns.size(); ++i) width[i] = columns[i].size();
  for (const auto& row : rows) {
    std::vector<std::string> line;
    // A hand-built result may carry rows wider than `columns`; clamp so
    // the width bookkeeping never indexes past the column count.
    const size_t ncells = std::min(row.size(), columns.size());
    for (size_t i = 0; i < ncells; ++i) {
      line.push_back(row[i].ToNTriples());
      width[i] = std::max(width[i], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream os;
  for (size_t i = 0; i < columns.size(); ++i) {
    os << (i ? " | " : "");
    os << columns[i] << std::string(width[i] - columns[i].size(), ' ');
  }
  os << "\n";
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) {
      os << (i ? " | " : "");
      os << line[i] << std::string(width[i] - line[i].size(), ' ');
    }
    os << "\n";
  }
  return os.str();
}

Result<QueryResult> QueryEngine::ExecuteString(std::string_view text) {
  KGNET_ASSIGN_OR_RETURN(Query q, ParseQuery(text));
  return Execute(q);
}

size_t QueryEngine::EstimateWhereCardinality(const Query& query) const {
  // Product of the per-pattern estimates with all variables free; an upper
  // bound that is cheap to compute.
  size_t est = 1;
  for (const auto& pt : query.where.triples) {
    TriplePattern p;
    // A constant that was never interned cannot match anything.
    if (!pt.s.is_var) {
      p.s = store_->dict().Find(pt.s.term);
      if (p.s == kNullTermId) return 0;
    }
    if (!pt.p.is_var) {
      p.p = store_->dict().Find(pt.p.term);
      if (p.p == kNullTermId) return 0;
    }
    if (!pt.o.is_var) {
      p.o = store_->dict().Find(pt.o.term);
      if (p.o == kNullTermId) return 0;
    }
    size_t card = store_->EstimateCardinality(p);
    if (card == 0) return 0;
    // Saturating multiply.
    if (est > SIZE_MAX / card) return SIZE_MAX;
    est *= card;
  }
  return est;
}

Result<std::string> QueryEngine::Explain(const Query& query) {
  EvalContext ctx;
  ctx.store = store_;
  ctx.snapshot = store_->OpenSnapshot();
  ctx.udfs = &udfs_;
  // Pre-register variables in the same order Execute() would, so the plan
  // shows the slots a real execution uses. Sub-SELECT columns come first.
  for (const auto& sub : query.where.subselects)
    for (const auto& it : ProjectionItems(*sub, ctx)) ctx.vars.SlotOf(it.alias);
  for (const auto& pt : query.where.triples) {
    if (pt.s.is_var) ctx.vars.SlotOf(pt.s.var);
    if (pt.p.is_var) ctx.vars.SlotOf(pt.p.var);
    if (pt.o.is_var) ctx.vars.SlotOf(pt.o.var);
  }
  ExecStats stats;
  Plan plan = PlanGroupPattern(query.where, &ctx, nullptr, &stats);
  std::string out = DescribePlan(std::move(plan.desc), query);
  if (!query.where.subselects.empty())
    out += "(+ " + std::to_string(query.where.subselects.size()) +
           " sub-SELECT seed(s))\n";
  out += "Snapshot(epoch=" + std::to_string(ctx.snapshot.epoch()) +
         " delta=" + std::to_string(ctx.snapshot.delta_size()) + ")\n";
  return out;
}

Result<std::string> QueryEngine::ExplainString(std::string_view text) {
  KGNET_ASSIGN_OR_RETURN(Query q, ParseQuery(text));
  return Explain(q);
}

Result<QueryResult> QueryEngine::Execute(const Query& query, ExecInfo* info) {
  return Execute(query, store_->OpenSnapshot(), info);
}

Result<QueryResult> QueryEngine::Execute(const Query& query,
                                         const rdf::Snapshot& snapshot,
                                         ExecInfo* info,
                                         common::CancelToken cancel) {
  EvalContext ctx;
  ctx.store = store_;
  ctx.snapshot = snapshot;
  ctx.udfs = &udfs_;
  ctx.cancel = std::move(cancel);
  if (info != nullptr) {
    info->snapshot_epoch = snapshot.epoch();
    info->snapshot_delta = snapshot.delta_size();
  }
  ExecStats stats;
  const bool streaming = mode_ == ExecMode::kStreaming;

  // 0. Single-pattern fast path (see ExecuteSinglePattern). Skipped when
  // the caller asked for an ExecInfo so plan introspection and the
  // rows_scanned counter still reflect the full operator tree.
  if (streaming && info == nullptr &&
      (query.kind == QueryKind::kSelect || query.kind == QueryKind::kAsk) &&
      query.where.triples.size() == 1 && query.where.subselects.empty() &&
      query.where.filters.empty() && query.where.unions.empty() &&
      query.where.optionals.empty()) {
    return ExecuteSinglePattern(query, &ctx);
  }

  // 1. Evaluate sub-SELECTs; seed the outer BGP with their solutions.
  std::vector<Solution> seeds;
  seeds.emplace_back();  // one empty solution
  for (const auto& sub : query.where.subselects) {
    ExecInfo sub_info;
    // Sub-SELECTs read through the same snapshot, so the whole query —
    // outer BGP and seeds alike — observes one storage epoch.
    KGNET_ASSIGN_OR_RETURN(QueryResult sub_result,
                           Execute(*sub, ctx.snapshot, &sub_info, ctx.cancel));
    stats.rows_scanned += sub_info.rows_scanned;
    // Register subselect output columns as variables.
    std::vector<int> slots;
    for (const auto& col : sub_result.columns)
      slots.push_back(ctx.vars.SlotOf(col));
    std::vector<Solution> joined;
    for (const auto& seed : seeds) {
      for (const auto& row : sub_result.rows) {
        Solution s = seed;
        s.resize(ctx.vars.size(), kNullTermId);
        bool consistent = true;
        for (size_t i = 0; i < slots.size(); ++i) {
          // A cell the sub-SELECT left unbound seeds nothing: the outer
          // slot stays free instead of being interned as a bogus term.
          if (row[i].is_undef()) continue;
          TermId id = store_->dict().Intern(row[i]);
          if (s[slots[i]] != kNullTermId && s[slots[i]] != id) {
            consistent = false;
            break;
          }
          s[slots[i]] = id;
        }
        if (consistent) joined.push_back(std::move(s));
      }
    }
    seeds = std::move(joined);
  }

  // Pre-register variables from triples so solution vectors are sized.
  for (const auto& pt : query.where.triples) {
    if (pt.s.is_var) ctx.vars.SlotOf(pt.s.var);
    if (pt.p.is_var) ctx.vars.SlotOf(pt.p.var);
    if (pt.o.is_var) ctx.vars.SlotOf(pt.o.var);
  }

  // 2a. Streaming fast path: SELECT/ASK pulls rows out of the operator
  // tree one at a time — UNION and OPTIONAL groups included, via the
  // streaming UnionAll/LeftOuterJoin operators — so LIMIT (and ASK's
  // first hit) stop the underlying scans early instead of materializing
  // everything.
  if (streaming &&
      (query.kind == QueryKind::kSelect || query.kind == QueryKind::kAsk)) {
    // The description tree is only built when the caller wants it.
    Plan plan = PlanGroupPattern(query.where, &ctx, &seeds, &stats,
                                 /*build_desc=*/info != nullptr);
    if (info != nullptr) {
      // DescribePlan consumes the description tree; render it up front.
      info->plan = DescribePlan(std::move(plan.desc), query);
    }
    QueryResult result;
    plan.exec->Open(Solution(plan.width, kNullTermId));
    Solution sol(plan.width, kNullTermId);

    if (query.kind == QueryKind::kAsk) {
      result.ask_result = plan.exec->Next(&sol);
      KGNET_RETURN_IF_ERROR(plan.exec->status());
      if (info != nullptr) {
        info->rows_scanned = stats.rows_scanned;
        info->cancel_checks = ctx.cancel.checks();
      }
      return result;
    }

    std::vector<SelectItem> items = ProjectionItems(query, ctx);
    for (const auto& it : items) result.columns.push_back(it.alias);
    KGNET_RETURN_IF_ERROR(DrainSelectRows(
        query, &ctx, items, [&](Solution* s) { return plan.exec->Next(s); },
        &sol, &result));
    KGNET_RETURN_IF_ERROR(plan.exec->status());
    if (info != nullptr) {
      info->rows_scanned = stats.rows_scanned;
      info->cancel_checks = ctx.cancel.checks();
    }
    return result;
  }

  // 2b. Materialized path: updates (which need the full solution set
  // before mutating the store) or the legacy executor. Each inner BGP
  // still streams when in streaming mode.
  std::vector<Solution> solutions;
  KGNET_RETURN_IF_ERROR(EvalGroup(query.where, &ctx, std::move(seeds),
                                  &solutions, streaming, &stats));
  for (auto& s : solutions) s.resize(ctx.vars.size(), kNullTermId);
  if (info != nullptr) {
    info->rows_scanned = stats.rows_scanned;
    info->cancel_checks = ctx.cancel.checks();
  }

  QueryResult result;

  switch (query.kind) {
    case QueryKind::kAsk: {
      result.ask_result = !solutions.empty();
      return result;
    }
    case QueryKind::kInsertData: {
      for (const auto& pt : query.update_template) {
        if (pt.s.is_var || pt.p.is_var || pt.o.is_var)
          return Status::InvalidArgument(
              "INSERT DATA requires ground triples");
        if (store_->Insert(pt.s.term, pt.p.term, pt.o.term))
          ++result.num_inserted;
      }
      return result;
    }
    case QueryKind::kInsertWhere:
    case QueryKind::kDeleteWhere: {
      const bool inserting = query.kind == QueryKind::kInsertWhere;
      std::vector<Triple> batch;
      for (const auto& sol : solutions) {
        for (const auto& pt : query.update_template) {
          auto resolve = [&](const NodeRef& n) -> TermId {
            if (!n.is_var) return store_->dict().Intern(n.term);
            int slot = ctx.vars.Find(n.var);
            return slot < 0 ? kNullTermId : sol[slot];
          };
          Triple t(resolve(pt.s), resolve(pt.p), resolve(pt.o));
          if (t.s == kNullTermId || t.p == kNullTermId || t.o == kNullTermId)
            return Status::InvalidArgument(
                "update template variable not bound by WHERE clause");
          batch.push_back(t);
        }
      }
      for (const Triple& t : batch) {
        if (inserting) {
          if (store_->Insert(t)) ++result.num_inserted;
        } else {
          if (store_->Erase(t)) ++result.num_deleted;
        }
      }
      return result;
    }
    case QueryKind::kSelect:
      break;
  }

  // 3. Projection.
  std::vector<SelectItem> items = ProjectionItems(query, ctx);
  for (const auto& it : items) result.columns.push_back(it.alias);

  std::unordered_set<std::string> seen;
  for (const auto& sol : solutions) {
    KGNET_ASSIGN_OR_RETURN(std::vector<Term> row,
                           ProjectRow(items, &ctx, sol));
    if (query.distinct) {
      std::string key = RowKey(row);
      if (!seen.insert(key).second) continue;
    }
    result.rows.push_back(std::move(row));
  }

  // 4. OFFSET / LIMIT.
  if (query.offset > 0) {
    size_t off = std::min<size_t>(query.offset, result.rows.size());
    result.rows.erase(result.rows.begin(), result.rows.begin() + off);
  }
  if (query.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(query.limit)) {
    result.rows.resize(query.limit);
  }
  return result;
}

}  // namespace kgnet::sparql
